package radixsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fpgapart/workload"
)

func randTuples(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i)<<32 | uint64(rng.Uint32())
	}
	return data
}

func TestSortsRandomData(t *testing.T) {
	for _, threads := range []int{1, 2, 7} {
		data := randTuples(100000, 3)
		Tuples(data, threads)
		if !IsSortedByKey(data) {
			t.Fatalf("threads=%d: not sorted", threads)
		}
	}
}

func TestMatchesStdlibSort(t *testing.T) {
	data := randTuples(50000, 5)
	want := append([]uint64(nil), data...)
	sort.Slice(want, func(i, j int) bool {
		if uint32(want[i]) != uint32(want[j]) {
			return uint32(want[i]) < uint32(want[j])
		}
		// Stable by original position (payload carries the index).
		return want[i]>>32 < want[j]>>32
	})
	Tuples(data, 4)
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("mismatch at %d: %#x vs %#x", i, data[i], want[i])
		}
	}
}

func TestStability(t *testing.T) {
	// Equal keys must keep their input order; payloads record positions.
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = uint64(i)<<32 | uint64(i%7) // 7 distinct keys
	}
	Tuples(data, 3)
	var prevKey, prevPos uint64
	for i, v := range data {
		key, pos := uint64(uint32(v)), v>>32
		if key == prevKey && pos < prevPos && i > 0 {
			t.Fatalf("stability violated at %d: key %d pos %d after pos %d", i, key, pos, prevPos)
		}
		prevKey, prevPos = key, pos
	}
}

func TestEdgeCases(t *testing.T) {
	Tuples(nil, 4)          // no panic
	Tuples([]uint64{42}, 4) // single element
	data := []uint64{2, 1}  // two elements
	Tuples(data, 4)
	if data[0] != 1 || data[1] != 2 {
		t.Errorf("two-element sort: %v", data)
	}
	// All-equal keys.
	same := make([]uint64, 100)
	for i := range same {
		same[i] = uint64(i)<<32 | 5
	}
	Tuples(same, 2)
	for i, v := range same {
		if v>>32 != uint64(i) {
			t.Fatalf("all-equal keys reordered at %d", i)
		}
	}
}

func TestExtremeKeys(t *testing.T) {
	data := []uint64{0xFFFFFFFF, 0, 0x80000000, 0x7FFFFFFF, 1}
	Tuples(data, 1)
	want := []uint64{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("extreme keys: %v", data)
		}
	}
}

func TestMoreThreadsThanElements(t *testing.T) {
	data := randTuples(5, 9)
	Tuples(data, 64)
	if !IsSortedByKey(data) {
		t.Fatal("not sorted with excess threads")
	}
}

func TestRelationSort(t *testing.T) {
	rel, err := workload.NewGenerator(11).Relation(workload.Random, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := Relation(rel, 2); err != nil {
		t.Fatal(err)
	}
	if !IsSortedByKey(rel.Data) {
		t.Fatal("relation not sorted")
	}
	wide, _ := workload.NewRelation(workload.RowLayout, 16, 4)
	if err := Relation(wide, 1); err == nil {
		t.Error("16-byte relation accepted")
	}
	col, _ := workload.NewRelation(workload.ColumnLayout, 8, 4)
	if err := Relation(col, 1); err == nil {
		t.Error("column relation accepted")
	}
}

func TestPropertySortIsPermutationAndSorted(t *testing.T) {
	f := func(seed int64, nRaw uint16, threads uint8) bool {
		n := int(nRaw) % 5000
		th := int(threads)%8 + 1
		data := randTuples(n, seed)
		sum := uint64(0)
		for _, v := range data {
			sum += v
		}
		Tuples(data, th)
		if !IsSortedByKey(data) {
			return false
		}
		got := uint64(0)
		for _, v := range data {
			got += v
		}
		return got == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsSortedByKey(t *testing.T) {
	if !IsSortedByKey([]uint64{1, 2, 2, 3}) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSortedByKey([]uint64{2, 1}) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSortedByKey(nil) {
		t.Error("empty slice should be sorted")
	}
	// Only the low 32 bits (the key) matter.
	if !IsSortedByKey([]uint64{0xFF00000001, 0x0000000002}) {
		t.Error("payload bits must not affect ordering")
	}
}

func BenchmarkRadixSort(b *testing.B) {
	const n = 1 << 20
	orig := randTuples(n, 1)
	data := make([]uint64, n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		Tuples(data, 1)
	}
}

func BenchmarkStdlibSort(b *testing.B) {
	const n = 1 << 20
	orig := randTuples(n, 1)
	data := make([]uint64, n)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		sort.Slice(data, func(x, y int) bool { return uint32(data[x]) < uint32(data[y]) })
	}
}
