// Package radixsort applies the partitioning machinery to sorting — the
// other large-scale use of radix partitioning the paper builds on
// (Polychroniou & Ross study partitioning for radix sort; the
// software-managed buffer idea the CPU baseline uses was introduced for
// radix sort by Satish et al.).
//
// The sort is a parallel LSD (least-significant-digit) radix sort over the
// 32-bit keys of 8-byte <key, payload> tuples: each pass is exactly one
// stable partitioning scatter at a cache-friendly fan-out, reusing the
// histogram/prefix-sum/scatter structure of the partitioners in
// internal/cpupart.
package radixsort

import (
	"fmt"
	"runtime"
	"sync"

	"fpgapart/workload"
)

// digitBits is the per-pass fan-out (2^11 = 2048 partitions, three passes
// for 32-bit keys: 11 + 11 + 10).
const digitBits = 11

// Tuples sorts 8-byte packed tuples by their 32-bit key, ascending and
// stable. threads ≤ 0 uses all cores.
func Tuples(data []uint64, threads int) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if len(data) < 2 {
		return
	}
	scratch := make([]uint64, len(data))
	src, dst := data, scratch
	for shift := uint(0); shift < 32; shift += digitBits {
		bits := uint(digitBits)
		if shift+bits > 32 {
			bits = 32 - shift
		}
		scatterPass(src, dst, shift, bits, threads)
		src, dst = dst, src
	}
	// 32 bits = 11 + 11 + 10: three passes, so src == scratch holds the
	// sorted data after the final swap and must be copied back.
	if &src[0] != &data[0] {
		copy(data, src)
	}
}

// Relation sorts a row-layout relation of 8-byte tuples in place.
func Relation(rel *workload.Relation, threads int) error {
	if rel.Layout != workload.RowLayout || rel.Width != 8 {
		return fmt.Errorf("radixsort: need row-layout 8-byte tuples, got %v %dB", rel.Layout, rel.Width)
	}
	Tuples(rel.Data, threads)
	return nil
}

// scatterPass performs one stable counting-sort pass on the digit at shift.
// It is the same histogram → prefix sum → scatter structure as the
// partitioners: per-thread histograms give every thread private output
// cursors, preserving stability (threads own contiguous input chunks and
// their cursor ranges are ordered).
func scatterPass(src, dst []uint64, shift, bits uint, threads int) {
	parts := 1 << bits
	mask := uint64(parts - 1)
	n := len(src)
	if threads > n {
		threads = n
	}
	bounds := make([]int, threads+1)
	for i := 0; i <= threads; i++ {
		bounds[i] = n * i / threads
	}

	hists := make([][]int32, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int32, parts)
			for _, v := range src[bounds[t]:bounds[t+1]] {
				h[uint32(v)>>shift&uint32(mask)]++
			}
			hists[t] = h
		}(t)
	}
	wg.Wait()

	cursors := make([][]int32, threads)
	for t := range cursors {
		cursors[t] = make([]int32, parts)
	}
	var pos int32
	for d := 0; d < parts; d++ {
		for t := 0; t < threads; t++ {
			cursors[t][d] = pos
			pos += hists[t][d]
		}
	}

	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cur := cursors[t]
			for _, v := range src[bounds[t]:bounds[t+1]] {
				d := uint32(v) >> shift & uint32(mask)
				dst[cur[d]] = v
				cur[d]++
			}
		}(t)
	}
	wg.Wait()
}

// IsSortedByKey reports whether data is sorted ascending by its 32-bit key.
func IsSortedByKey(data []uint64) bool {
	for i := 1; i < len(data); i++ {
		if uint32(data[i]) < uint32(data[i-1]) {
			return false
		}
	}
	return true
}
