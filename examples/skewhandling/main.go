// Skewhandling shows the PAD/HIST trade-off of Section 5.4: PAD mode
// partitions in a single pass but preassigns fixed partition sizes, so a
// Zipf-skewed relation overflows it and the system falls back to the CPU;
// HIST mode pays a second pass for a histogram and survives any skew.
package main

import (
	"fmt"
	"log"

	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	const n = 1 << 20
	g := workload.NewGenerator(3)

	for _, zipf := range []float64{0.0, 0.5, 1.0} {
		var rel *workload.Relation
		var err error
		if zipf == 0 {
			rel, err = g.Relation(workload.Random, workload.Width8, n)
		} else {
			rel, err = g.ZipfRelation(zipf, n, workload.Width8, n)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- Zipf factor %.2f ---\n", zipf)

		pad, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions:  8192,
			Hash:        true,
			Format:      partition.PadMode,
			PadFraction: 0.15, // a realistic padding size
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pad.Partition(rel)
		if err != nil {
			log.Fatal(err)
		}
		if res.FellBack() {
			fmt.Printf("PAD:  overflowed after %d cycles — fell back to the CPU partitioner (total %v)\n",
				res.Stats.Cycles, res.Elapsed())
		} else {
			fmt.Printf("PAD:  single pass, %v (%d dummy tuples padding)\n", res.Elapsed(), res.Stats.Dummies)
		}

		hist, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions: 8192,
			Hash:       true,
			Format:     partition.HistMode,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err = hist.Partition(rel)
		if err != nil {
			log.Fatal(err)
		}
		max := int64(0)
		for p := 0; p < res.NumPartitions(); p++ {
			if c := res.Count(p); c > max {
				max = c
			}
		}
		fmt.Printf("HIST: two passes, %v — handles the skew (largest partition: %d of %d tuples)\n\n",
			res.Elapsed(), max, n)
	}
	fmt.Println("paper: PAD fails for realistic padding beyond Zipf 0.25; HIST handles any factor")
}
