// Hybridjoin walks through the paper's headline use case: a radix hash join
// where the partitioning runs on the (simulated) FPGA and the build+probe
// phases run on the CPU — including the cache-coherence penalty the CPU pays
// for reading FPGA-written memory (Table 1 / Section 2.2).
package main

import (
	"fmt"
	"log"

	"fpgapart/hashjoin"
	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	// Workload A at 1/64 of paper scale: 2 M ⋈ 2 M tuples, linear keys —
	// a foreign-key join where every probe matches exactly once.
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		log.Fatal(err)
	}
	spec = spec.Scaled(1.0 / 64)
	in, err := spec.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload A @ 1/64 scale: R %d ⋈ S %d\n\n", spec.TuplesR, spec.TuplesS)

	opts := hashjoin.Options{
		Partitions: 8192,
		Hash:       true,
		Format:     partition.PadMode,
	}

	cpu, err := hashjoin.CPU(in.R, in.S, opts)
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := hashjoin.Hybrid(in.R, in.S, opts)
	if err != nil {
		log.Fatal(err)
	}

	if cpu.Matches != hybrid.Matches || cpu.Checksum != hybrid.Checksum {
		log.Fatalf("joins disagree: %d/%d vs %d/%d", cpu.Matches, cpu.Checksum, hybrid.Matches, hybrid.Checksum)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "pure CPU", "hybrid")
	fmt.Printf("%-22s %12v %12v\n", "partition R+S", cpu.PartitionTime(), hybrid.PartitionTime())
	fmt.Printf("%-22s %12v %12v\n", "build", cpu.Build, hybrid.Build)
	fmt.Printf("%-22s %12v %12v\n", "probe", cpu.Probe, hybrid.Probe)
	fmt.Printf("%-22s %12v %12v\n", "total", cpu.Total, hybrid.Total)
	fmt.Printf("\nmatches: %d (both), checksum %#x\n", cpu.Matches, cpu.Checksum)
	fmt.Println("\nnotes:")
	fmt.Println(" - hybrid partitioning time is simulated FPGA time (cycles at 200 MHz behind QPI)")
	fmt.Println(" - hybrid build+probe is measured on this host, then inflated by the snoop")
	fmt.Printf("   penalty (build ×%.2f sequential, probe carries the random-read penalty)\n", 0.1533/0.1381)
	fmt.Println(" - the CPU partitioning time depends on this machine; the paper's 10-core Xeon")
	fmt.Println("   reaches ~506 Mtuples/s, on par with the FPGA behind its 6.5 GB/s link")
}
