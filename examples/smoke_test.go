// Smoke tests for the runnable examples: each one must build, exit zero and
// print something. They execute via `go run` exactly as the README tells
// users to, so a broken example fails CI instead of a reader's first try.
package examples_test

import (
	"bytes"
	"os"
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations; skipped with -short")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s: %v\n%s", dir, err, out)
			}
			if len(bytes.TrimSpace(out)) == 0 {
				t.Errorf("go run ./%s produced no output", dir)
			}
		})
	}
}
