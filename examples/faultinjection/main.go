// Faultinjection demonstrates the fault-tolerant distributed join: the same
// join is run fault-free and under a seeded fault scenario (a node crash
// mid-exchange, 1% message corruption, one degraded link) and the results are
// compared. The fault run must produce the identical match count and checksum
// — the exchange retries corrupt pieces and the survivors take over the
// crashed node's partitions — it just takes longer and reports Degraded.
//
// Everything is deterministic: re-running with the same -seed reproduces the
// retry counts and simulated times byte for byte.
package main

import (
	"fmt"
	"log"

	"fpgapart/distjoin"
	"fpgapart/internal/faults"
	"fpgapart/workload"
)

func main() {
	const n = 1 << 20
	const nodes = 4
	spec := workload.WorkloadSpec{ID: "faults", TuplesR: n, TuplesS: n, Distribution: workload.Linear}
	in, err := spec.Generate(8)
	if err != nil {
		log.Fatal(err)
	}
	opts := distjoin.Options{
		Nodes:             nodes,
		PartitionsPerNode: 8192 / nodes,
		Threads:           2,
	}

	clean, err := distjoin.Join(in.R, in.S, opts)
	if err != nil {
		log.Fatal(err)
	}

	scenario := &faults.Scenario{
		Seed:        7,
		CorruptProb: 0.01,
		Links:       []faults.Link{{Src: 0, Dst: 2, Factor: 0.25}},
		Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.5}},
	}
	faulty, err := distjoin.Join(in.R, in.S, distjoin.Options{
		Nodes:             opts.Nodes,
		PartitionsPerNode: opts.PartitionsPerNode,
		Threads:           opts.Threads,
		Faults:            scenario,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed join of %d ⋈ %d tuples on %d nodes\n", n, n, nodes)
	fmt.Printf("scenario: seed %d, %.0f%% corruption, link 0→2 at %.0f%% bandwidth, node %d crashes at %.0f%%\n\n",
		scenario.Seed, scenario.CorruptProb*100, scenario.Links[0].Factor*100,
		scenario.Crashes[0].Node, scenario.Crashes[0].AfterFraction*100)

	fmt.Printf("%-12s %14s %14s\n", "", "fault-free", "with faults")
	fmt.Printf("%-12s %14d %14d\n", "matches", clean.Matches, faulty.Matches)
	fmt.Printf("%-12s %#14x %#14x\n", "checksum", clean.Checksum, faulty.Checksum)
	fmt.Printf("%-12s %14v %14v\n", "exchange", clean.ExchangeTime, faulty.ExchangeTime)
	fmt.Printf("%-12s %11.1f MB %11.1f MB\n", "payload",
		float64(clean.BytesExchanged)/1e6, float64(faulty.BytesExchanged)/1e6)
	fmt.Printf("%-12s %11.1f MB %11.1f MB\n", "resent",
		float64(clean.ResentBytes)/1e6, float64(faulty.ResentBytes)/1e6)
	fmt.Printf("%-12s %14d %14d\n", "retries", clean.Retries, faulty.Retries)
	fmt.Printf("%-12s %14d %14d\n", "corrupt", clean.CorruptPieces, faulty.CorruptPieces)
	fmt.Printf("%-12s %14v %14v\n", "degraded", clean.Degraded, faulty.Degraded)

	if faulty.Matches != clean.Matches || faulty.Checksum != clean.Checksum {
		log.Fatal("FAIL: fault run changed the join result")
	}
	if !faulty.Degraded {
		log.Fatal("FAIL: crash scenario not reported as degraded")
	}
	fmt.Printf("\nresult preserved under faults; node(s) %v crashed and survivors took over their partitions\n",
		faulty.FailedNodes)
}
