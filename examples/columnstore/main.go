// Columnstore demonstrates VRID mode (Section 4.5): a column-store engine
// hands the FPGA only the key column; the circuit appends a virtual record
// ID to every key, partitions the <key, VRID> pairs, and the engine
// materializes full tuples afterwards via the VRIDs. Reading half the bytes
// raises partitioning throughput — the PAD/VRID bar is the fastest
// end-to-end configuration in Figure 9.
package main

import (
	"fmt"
	"log"

	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	// A column-store relation: keys and payloads in separate arrays.
	const n = 1 << 21
	g := workload.NewGenerator(7)
	rowRel, err := g.Relation(workload.Grid, workload.Width8, n)
	if err != nil {
		log.Fatal(err)
	}
	cols := rowRel.ToColumns()

	run := func(layout partition.Layout, rel *workload.Relation) *partition.Result {
		p, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions: 8192,
			Hash:       true, // grid keys would wreck radix partitioning (Figure 3a)
			Format:     partition.PadMode,
			Layout:     layout,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Partition(rel)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	rid := run(partition.RowStore, rowRel)
	vrid := run(partition.ColumnStore, cols)

	fmt.Printf("%-10s %12s %14s %12s\n", "mode", "elapsed", "Mtuples/s", "lines read")
	for _, r := range []*partition.Result{rid, vrid} {
		mode := "PAD/RID"
		if r.Stats.LinesRead < rid.Stats.LinesRead {
			mode = "PAD/VRID"
		}
		fmt.Printf("%-10s %12v %14.1f %12d\n",
			mode, r.Elapsed(), float64(n)/r.Elapsed().Seconds()/1e6, r.Stats.LinesRead)
	}
	fmt.Printf("\nVRID reads %.1fx fewer cache lines (keys only)\n",
		float64(rid.Stats.LinesRead)/float64(vrid.Stats.LinesRead))

	// Materialization: the partitions contain <key, VRID>; the engine joins
	// them back to the payload column. This is the extra cost VRID defers —
	// the same late materialization a column store performs anyway.
	var sample []string
	materialized := 0
	for p := 0; p < vrid.NumPartitions() && len(sample) < 3; p++ {
		vrid.Each(p, func(key, v uint32) {
			payload := cols.Payloads[v]
			if len(sample) < 3 {
				sample = append(sample, fmt.Sprintf("partition %d: key=%#x VRID=%d payload=%d", p, key, v, payload))
			}
			materialized++
		})
	}
	fmt.Println("\nmaterialization through VRIDs:")
	for _, s := range sample {
		fmt.Println("  " + s)
	}

	// Verify the full materialization round-trips.
	total := 0
	for p := 0; p < vrid.NumPartitions(); p++ {
		vrid.Each(p, func(key, v uint32) {
			if cols.Keys[v] != key {
				log.Fatalf("VRID %d: key %#x does not match column %#x", v, key, cols.Keys[v])
			}
			total++
		})
	}
	fmt.Printf("\nmaterialized and verified all %d tuples\n", total)
}
