// Quickstart: partition one million tuples with the CPU baseline and with
// the simulated FPGA circuit, and compare the two.
package main

import (
	"fmt"
	"log"

	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	// One million 8-byte <key, payload> tuples with random keys.
	const n = 1 << 20
	rel, err := workload.NewGenerator(1).Relation(workload.Random, workload.Width8, n)
	if err != nil {
		log.Fatal(err)
	}

	// The software baseline: single-pass radix/hash partitioning with
	// software-managed buffers (Balkesen et al.), measured on this machine.
	cpu, err := partition.NewCPU(partition.CPUOptions{
		Partitions: 8192,
		Hash:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cpuRes, err := cpu.Partition(rel)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's circuit: a cycle-level simulation on the Xeon+FPGA
	// platform model, single pass (PAD mode).
	fpga, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions: 8192,
		Hash:       true,
		Format:     partition.PadMode,
	})
	if err != nil {
		log.Fatal(err)
	}
	fpgaRes, err := fpga.Partition(rel.Clone())
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []*partition.Result{cpuRes, fpgaRes} {
		kind := "measured on this host"
		if r.Simulated() {
			kind = "simulated at 200 MHz behind QPI"
		}
		fmt.Printf("%-14s %10v  %7.1f Mtuples/s  (%s)\n",
			name(r), r.Elapsed(), float64(n)/r.Elapsed().Seconds()/1e6, kind)
	}

	// Both backends assign every key to the same partition, so results are
	// interchangeable for downstream operators.
	for p := 0; p < 8192; p++ {
		if cpuRes.Count(p) != fpgaRes.Count(p) {
			log.Fatalf("partition %d differs: CPU %d vs FPGA %d", p, cpuRes.Count(p), fpgaRes.Count(p))
		}
	}
	fmt.Println("all 8192 partition counts agree across backends")
	fmt.Printf("FPGA run: %d cycles, %d cache lines read, %d written, %d hazards forwarded, 0 stalls\n",
		fpgaRes.Stats.Cycles, fpgaRes.Stats.LinesRead, fpgaRes.Stats.LinesWritten, fpgaRes.Stats.ForwardedHazards)
}

func name(r *partition.Result) string {
	if r.Simulated() {
		return "FPGA PAD/RID"
	}
	return "CPU hash"
}
