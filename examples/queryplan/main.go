// Queryplan shows the DBMS-integration story of the paper's Section 6: the
// partitioner invoked as a sub-operator inside relational operators, with a
// planner that uses the paper's cost model to decide per input whether to
// offload partitioning to the FPGA.
//
// Query: SELECT key, COUNT(*) FROM (R ⋈ S on key WHERE S.key % 4 == 0)
//
//	GROUP BY key LIMIT 5
package main

import (
	"fmt"
	"log"

	"fpgapart/engine"
	"fpgapart/workload"
)

func main() {
	const n = 1 << 20
	g := workload.NewGenerator(5)
	r, err := g.Relation(workload.Linear, workload.Width8, n)
	if err != nil {
		log.Fatal(err)
	}
	sKeys := make([]uint32, 2*n)
	for i := range sKeys {
		sKeys[i] = uint32(i%n + 1)
	}
	s, err := workload.FromKeys(sKeys, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The planner calibrates this host's partitioning rate once, then
	// compares it against the cost model's FPGA prediction per input.
	planner := engine.NewPlanner(engine.PlannerConfig{
		Partitions: 4096,
		Threads:    4,
		Hash:       true,
	})
	fmt.Printf("planner estimates for %d tuples: CPU %v, FPGA %v → offload: %v\n",
		n, planner.CPUEstimate(n), planner.FPGAEstimate(n), planner.ShouldOffload(n))

	scanR, err := engine.NewScan(r, 0)
	if err != nil {
		log.Fatal(err)
	}
	scanS, err := engine.NewScan(s, 0)
	if err != nil {
		log.Fatal(err)
	}
	filtered := engine.NewFilter(scanS, func(key, _ uint32) bool { return key%4 == 0 })
	join := engine.NewHashJoin(scanR, filtered, planner, 4096, 4)
	group := engine.NewGroupBy(join, planner, 4096, 4, engine.AggCount)
	limit := engine.NewLimit(group, 5)

	rows, err := engine.Collect(limit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin partitioned by: %s\n", join.ChosenPartitioner)
	fmt.Printf("group-by partitioned by: %s\n\n", group.ChosenPartitioner)
	fmt.Println("key   count(*)")
	for _, row := range rows {
		fmt.Printf("%-5d %d\n", uint32(row), uint32(row>>32))
	}
	fmt.Println("\n(each surviving S key appears twice in S and matches one R tuple → count 2)")
}
