// Distributed demonstrates the paper's rack-scale outlook (Section 6): the
// FPGA partitioner attached to the network distributes data across machines
// over RDMA for a distributed radix join. The cluster and fabric are
// simulated; per-node partitioning is the simulated circuit and the local
// joins run for real.
package main

import (
	"fmt"
	"log"

	"fpgapart/distjoin"
	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	const n = 1 << 21
	spec := workload.WorkloadSpec{ID: "dist", TuplesR: n, TuplesS: n, Distribution: workload.Linear}
	in, err := spec.Generate(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed join of %d ⋈ %d tuples over FDR InfiniBand (6.8 GB/s/port)\n\n", n, n)
	fmt.Printf("%-6s %-6s %12s %12s %12s %12s %14s\n",
		"nodes", "part.", "partition", "exchange", "local join", "total", "net traffic")

	for _, nodes := range []int{1, 2, 4, 8} {
		for _, fpga := range []bool{false, true} {
			res, err := distjoin.Join(in.R, in.S, distjoin.Options{
				Nodes:             nodes,
				PartitionsPerNode: 8192 / nodes,
				Threads:           2,
				UseFPGA:           fpga,
				Format:            partition.HistMode,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Matches != n {
				log.Fatalf("nodes=%d fpga=%v: %d matches, want %d", nodes, fpga, res.Matches, n)
			}
			kind := "cpu"
			if fpga {
				kind = "fpga"
			}
			fmt.Printf("%-6d %-6s %12v %12v %12v %12v %11.1f MB\n",
				nodes, kind, res.PartitionTime, res.ExchangeTime, res.JoinTime,
				res.Total, float64(res.BytesExchanged)/1e6)
		}
	}
	fmt.Println("\nnotes:")
	fmt.Println(" - partitioning is per-node (slowest node); fpga rows are simulated circuit time")
	fmt.Println(" - the exchange moves the off-node fraction (n-1)/n of both relations")
	fmt.Println(" - fpga local joins carry the remote-writer probe penalty (Table 1)")
}
