package aggregate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgapart/partition"
	"fpgapart/workload"
)

// refAggregate computes the expected groups with a plain map.
func refAggregate(rel *workload.Relation) map[uint32]Group {
	ref := map[uint32]Group{}
	for i := 0; i < rel.NumTuples; i++ {
		k, p := rel.Key(i), rel.Payload(i)
		g, ok := ref[k]
		if !ok {
			g = Group{Key: k, Min: p, Max: p}
		}
		g.Count++
		g.Sum += uint64(p)
		if p < g.Min {
			g.Min = p
		}
		if p > g.Max {
			g.Max = p
		}
		ref[k] = g
	}
	return ref
}

func assertMatchesRef(t *testing.T, res *Result, ref map[uint32]Group, n int) {
	t.Helper()
	if len(res.Groups) != len(ref) {
		t.Fatalf("%d groups, want %d", len(res.Groups), len(ref))
	}
	var total int64
	var prev int64 = -1
	for _, g := range res.Groups {
		if int64(g.Key) <= prev {
			t.Fatal("groups not sorted by key")
		}
		prev = int64(g.Key)
		want := ref[g.Key]
		if g != want {
			t.Fatalf("group %d: got %+v, want %+v", g.Key, g, want)
		}
		total += g.Count
	}
	if total != int64(n) {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
}

func zipfRel(t *testing.T, n, alphabet int, factor float64) *workload.Relation {
	t.Helper()
	rel, err := workload.NewGenerator(5).ZipfRelation(factor, alphabet, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestCPUAggregationMatchesReference(t *testing.T) {
	rel := zipfRel(t, 30000, 2000, 0.8)
	res, err := CPU(rel, Options{Partitions: 64, Hash: true, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesRef(t, res, refAggregate(rel), 30000)
	if res.PartitionTime <= 0 || res.AggregateTime <= 0 {
		t.Error("missing phase times")
	}
	if res.CoherencePenalized {
		t.Error("CPU run penalized")
	}
}

func TestHybridAggregationMatchesCPU(t *testing.T) {
	rel := zipfRel(t, 20000, 1000, 0.5)
	cpu, err := CPU(rel, Options{Partitions: 128, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Hybrid(rel, Options{Partitions: 128, Hash: true, Threads: 2, Format: partition.HistMode})
	if err != nil {
		t.Fatal(err)
	}
	if !hyb.CoherencePenalized {
		t.Error("hybrid aggregation should carry the sequential snoop penalty")
	}
	if len(cpu.Groups) != len(hyb.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(cpu.Groups), len(hyb.Groups))
	}
	for i := range cpu.Groups {
		if cpu.Groups[i] != hyb.Groups[i] {
			t.Fatalf("group %d differs: %+v vs %+v", i, cpu.Groups[i], hyb.Groups[i])
		}
	}
}

func TestGlobalBaselineMatches(t *testing.T) {
	rel := zipfRel(t, 15000, 500, 1.0)
	global, err := Global(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesRef(t, global, refAggregate(rel), 15000)
}

func TestHybridPadFallbackStillCorrect(t *testing.T) {
	// Heavy skew overflows PAD; the fallback must keep results exact.
	rel := zipfRel(t, 30000, 30000, 1.2)
	res, err := Hybrid(rel, Options{Partitions: 256, Hash: true, Threads: 2,
		Format: partition.PadMode, PadFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesRef(t, res, refAggregate(rel), 30000)
}

func TestFindGroup(t *testing.T) {
	rel, err := workload.FromKeys([]uint32{5, 5, 9, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPU(rel, Options{Partitions: 4, Hash: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := res.Find(5)
	if !ok || g.Count != 3 {
		t.Fatalf("Find(5) = %+v, %v", g, ok)
	}
	if _, ok := res.Find(6); ok {
		t.Error("Find(6) found a missing key")
	}
}

func TestAvg(t *testing.T) {
	g := Group{Count: 4, Sum: 10}
	if g.Avg() != 2.5 {
		t.Errorf("Avg = %v", g.Avg())
	}
	if (Group{}).Avg() != 0 {
		t.Error("empty group Avg should be 0")
	}
}

func TestSingleGroup(t *testing.T) {
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = 7
	}
	rel, _ := workload.FromKeys(keys, 8)
	res, err := CPU(rel, Options{Partitions: 16, Hash: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Count != 1000 {
		t.Fatalf("groups: %+v", res.Groups)
	}
}

func TestEmptyRelation(t *testing.T) {
	rel, _ := workload.NewRelation(workload.RowLayout, 8, 0)
	res, err := CPU(rel, Options{Partitions: 16, Hash: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("groups on empty input: %d", len(res.Groups))
	}
}

func TestPropertyPartitionedEqualsGlobal(t *testing.T) {
	f := func(seed int64, nRaw uint16, alphabetRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		alphabet := int(alphabetRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(rng.Intn(alphabet)) + 1
		}
		rel, err := workload.FromKeys(keys, 8)
		if err != nil {
			return false
		}
		part, err := CPU(rel, Options{Partitions: 32, Hash: true, Threads: 2})
		if err != nil {
			return false
		}
		global, err := Global(rel, Options{})
		if err != nil {
			return false
		}
		if len(part.Groups) != len(global.Groups) {
			return false
		}
		for i := range part.Groups {
			if part.Groups[i] != global.Groups[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	rel, _ := workload.FromKeys([]uint32{1, 2}, 8)
	if _, err := CPU(rel, Options{Partitions: 3}); err == nil {
		t.Error("bad fan-out accepted")
	}
	if _, err := Hybrid(rel, Options{Partitions: 0}); err == nil {
		t.Error("zero fan-out accepted")
	}
}
