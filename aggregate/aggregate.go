// Package aggregate implements hardware-conscious group-by aggregation on
// top of the data partitioner — the first broader use the paper proposes for
// its circuit (Section 6, following Absalyamov et al., DaMoN 2016): the
// relation is partitioned by group key so that each partition's aggregation
// hash table is cache-resident, then partitions are aggregated in parallel.
//
// Like the join, the operator is backend-agnostic: partition on the CPU or
// on the simulated FPGA; the per-partition aggregation always runs (and is
// measured) on the CPU, with the coherence penalty applied when the FPGA
// wrote the partitions.
package aggregate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Group is one aggregation result row: per distinct key, the count and the
// running sum/min/max of the 4-byte payload.
type Group struct {
	Key   uint32
	Count int64
	Sum   uint64
	Min   uint32
	Max   uint32
}

// Avg returns the mean payload of the group.
func (g Group) Avg() float64 {
	if g.Count == 0 {
		return 0
	}
	return float64(g.Sum) / float64(g.Count)
}

// Options configures an aggregation run.
type Options struct {
	// Partitions is the fan-out (power of two).
	Partitions int
	// Threads ≤ 0 uses all cores.
	Threads int
	// Hash selects murmur partitioning (recommended: group keys are
	// frequently skewed or structured).
	Hash bool
	// Format selects the FPGA partitioner mode for Hybrid runs.
	Format partition.Format
	// PadFraction is the PAD headroom for Hybrid runs.
	PadFraction float64
	// Platform supplies the coherence model; defaults to XeonFPGA.
	Platform *platform.Platform
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Platform == nil {
		o.Platform = platform.XeonFPGA()
	}
	return o
}

// Result is an aggregation run: groups sorted by key, plus the phase
// breakdown.
type Result struct {
	Groups []Group

	// PartitionTime is measured (CPU) or simulated (FPGA).
	PartitionTime time.Duration
	// AggregateTime is measured; for hybrid runs it includes the sequential
	// snoop penalty (aggregation scans FPGA-written partitions).
	AggregateTime time.Duration
	Total         time.Duration

	PartitionerName    string
	CoherencePenalized bool
	Threads            int
}

// Find returns the group for key, if present.
func (r *Result) Find(key uint32) (Group, bool) {
	i := sort.Search(len(r.Groups), func(i int) bool { return r.Groups[i].Key >= key })
	if i < len(r.Groups) && r.Groups[i].Key == key {
		return r.Groups[i], true
	}
	return Group{}, false
}

// Partitioned aggregates rel's payloads grouped by key, partitioning with p
// first.
func Partitioned(rel *workload.Relation, p partition.Partitioner, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	parted, err := p.Partition(rel)
	if err != nil {
		return nil, fmt.Errorf("aggregate: partitioning: %w", err)
	}

	start := time.Now()
	perPart := make([][]Group, parted.NumPartitions())
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < opts.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var table aggTable
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= parted.NumPartitions() {
					return
				}
				table.reset(parted.SlotCount(i))
				parted.Each(i, func(key, payload uint32) { table.add(key, payload) })
				perPart[i] = table.groups()
			}
		}()
	}
	wg.Wait()
	aggElapsed := time.Since(start)

	var groups []Group
	for _, g := range perPart {
		groups = append(groups, g...)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })

	res := &Result{
		Groups:          groups,
		PartitionTime:   parted.Elapsed(),
		AggregateTime:   aggElapsed,
		PartitionerName: p.Name(),
		Threads:         opts.Threads,
	}
	if parted.FPGAWritten() {
		// Aggregation scans the partitions sequentially, so the sequential
		// snoop penalty of Table 1 applies.
		res.AggregateTime = time.Duration(float64(aggElapsed) * opts.Platform.Coherence.BuildPenalty())
		res.CoherencePenalized = true
	}
	res.Total = res.PartitionTime + res.AggregateTime
	return res, nil
}

// CPU aggregates with the software partitioner.
func CPU(rel *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	p, err := partition.NewCPU(partition.CPUOptions{
		Partitions: opts.Partitions,
		Hash:       opts.Hash,
		Threads:    opts.Threads,
	})
	if err != nil {
		return nil, err
	}
	return Partitioned(rel, p, opts)
}

// Hybrid aggregates with the simulated FPGA partitioner.
func Hybrid(rel *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions:      opts.Partitions,
		Hash:            opts.Hash,
		Format:          opts.Format,
		PadFraction:     opts.PadFraction,
		Platform:        opts.Platform,
		FallbackThreads: opts.Threads,
	})
	if err != nil {
		return nil, err
	}
	return Partitioned(rel, p, opts)
}

// Global is the unpartitioned baseline: one big hash table over the whole
// relation, single pass. It wins for few groups (table stays cached) and
// loses once the group state spills past the caches — the trade-off that
// motivates partitioned aggregation.
func Global(rel *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	var table aggTable
	table.reset(rel.NumTuples)
	for i := 0; i < rel.NumTuples; i++ {
		table.add(rel.Key(i), rel.Payload(i))
	}
	groups := table.groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	elapsed := time.Since(start)
	return &Result{
		Groups:          groups,
		AggregateTime:   elapsed,
		Total:           elapsed,
		PartitionerName: "none",
		Threads:         1,
	}, nil
}

// aggTable is an open-chaining aggregation hash table, reused across
// partitions.
type aggTable struct {
	head []int32
	next []int32
	rows []Group
	mask uint32
}

func (t *aggTable) reset(expected int) {
	buckets := 16
	for buckets < expected {
		buckets <<= 1
	}
	if cap(t.head) >= buckets {
		t.head = t.head[:buckets]
		for i := range t.head {
			t.head[i] = 0
		}
	} else {
		t.head = make([]int32, buckets)
	}
	t.mask = uint32(buckets - 1)
	t.next = t.next[:0]
	t.rows = t.rows[:0]
}

func (t *aggTable) add(key, payload uint32) {
	b := hashutil.Murmur32Finalizer(key) & t.mask
	for slot := t.head[b]; slot != 0; slot = t.next[slot-1] {
		g := &t.rows[slot-1]
		if g.Key == key {
			g.Count++
			g.Sum += uint64(payload)
			if payload < g.Min {
				g.Min = payload
			}
			if payload > g.Max {
				g.Max = payload
			}
			return
		}
	}
	t.rows = append(t.rows, Group{Key: key, Count: 1, Sum: uint64(payload), Min: payload, Max: payload})
	t.next = append(t.next, t.head[b])
	t.head[b] = int32(len(t.rows))
}

func (t *aggTable) groups() []Group {
	return append([]Group(nil), t.rows...)
}
