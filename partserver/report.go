package partserver

import (
	"fmt"
	"io"
)

// WriteJSON renders the report as deterministic JSON, written field by
// field in a fixed layout (the repo's golden/BENCH convention — no
// reflective marshalling), so same-seed runs emit byte-identical bytes.
// Offsets are omitted: they are the prefix sums of counts.
func (rep *Report) WriteJSON(w io.Writer) error {
	write := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("partserver: writing report: %w", err)
		}
		return nil
	}
	if err := write("{\n  \"makespan_us\": %d,\n  \"placed_fpga\": %d,\n  \"placed_cpu\": %d,\n  \"degraded\": %d,\n",
		rep.MakespanUS, rep.PlacedFPGA, rep.PlacedCPU, rep.Degraded); err != nil {
		return err
	}
	if err := write("  \"failed_instances\": ["); err != nil {
		return err
	}
	for i, inst := range rep.FailedInstances {
		sep := ""
		if i > 0 {
			sep = ", "
		}
		if err := write("%s%d", sep, inst); err != nil {
			return err
		}
	}
	if err := write("],\n  \"jobs\": [\n"); err != nil {
		return err
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		sep := ","
		if i == len(rep.Results)-1 {
			sep = ""
		}
		if err := write("    {\"id\": %d, \"status\": %q, \"placement\": %q, \"instance\": %d, \"attempts\": %d, \"degraded\": %v, \"arrival_us\": %d, \"dispatch_us\": %d, \"done_us\": %d, \"queue_wait_us\": %d, \"exec_us\": %d, \"tuples\": %d, \"checksum\": %d, \"matches\": %d}%s\n",
			r.ID, r.Status, r.Placement, r.Instance, r.Attempts, r.Degraded,
			r.ArrivalUS, r.DispatchUS, r.DoneUS, r.QueueWaitUS, r.ExecUS,
			r.Tuples, r.Checksum, r.Matches, sep); err != nil {
			return err
		}
	}
	return write("  ]\n}\n")
}
