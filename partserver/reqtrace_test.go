package partserver

import (
	"bytes"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
)

// runRecorded executes one scheduled run with a causal recorder attached and
// returns the recorder plus the built request traces.
func runRecorded(t *testing.T, seed uint64, jobs []Job, cfg Config) (*reqtrace.Recorder, []reqtrace.RequestTrace) {
	t.Helper()
	rec := reqtrace.NewRecorder(0)
	cfg.Seed = seed
	cfg.Record = rec
	rep, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := reqtrace.BuildJobs(seed, rec.Jobs())
	if len(traces) != len(rep.Results) {
		t.Fatalf("%d traces for %d results", len(traces), len(rep.Results))
	}
	// The recorder must agree with the report on every terminal fact.
	for i := range rep.Results {
		r := &rep.Results[i]
		rt := &traces[i]
		if rt.Status != r.Status.String() {
			t.Fatalf("job %d: trace status %q, report %v", i, rt.Status, r.Status)
		}
		if rt.ArrivalUS != r.ArrivalUS || rt.DoneUS != r.DoneUS {
			t.Fatalf("job %d: trace timeline [%d,%d], report [%d,%d]",
				i, rt.ArrivalUS, rt.DoneUS, r.ArrivalUS, r.DoneUS)
		}
	}
	return rec, traces
}

// checkConservation pins the decomposition law on every trace: the
// components sum exactly to the end-to-end virtual latency, and the span
// chain tiles [ArrivalUS, DoneUS) with no gap or overlap.
func checkConservation(t *testing.T, traces []reqtrace.RequestTrace) {
	t.Helper()
	for i := range traces {
		rt := &traces[i]
		if !rt.Conserved() {
			t.Fatalf("job %d (%s): breakdown sums to %d, latency %d\nbreakdown: %+v",
				rt.Index, rt.Status, rt.Breakdown.Sum(), rt.LatencyUS, rt.Breakdown)
		}
		cursor := rt.ArrivalUS
		for s := 1; s < len(rt.Spans); s++ {
			sp := &rt.Spans[s]
			if sp.StartUS != cursor || sp.DurUS < 0 {
				t.Fatalf("job %d (%s): span %d (%v) at %d dur %d, cursor %d — timeline not tiled",
					rt.Index, rt.Status, s, sp.Kind, sp.StartUS, sp.DurUS, cursor)
			}
			cursor += sp.DurUS
		}
		if cursor != rt.DoneUS {
			t.Fatalf("job %d (%s): spans end at %d, DoneUS %d", rt.Index, rt.Status, cursor, rt.DoneUS)
		}
	}
}

// TestReqtraceConservationFaultFree: on a clean run every component charge
// must come from queue wait, batching, and execution alone — and sum exactly.
func TestReqtraceConservationFaultFree(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 20, TraceOptions{MeanGapUS: 30})
	if err != nil {
		t.Fatal(err)
	}
	_, traces := runRecorded(t, seed, jobs, Config{FPGAs: 2, Workers: 2})
	checkConservation(t, traces)
	for i := range traces {
		if rw := traces[i].Breakdown[reqtrace.CompRetryWait]; rw != 0 {
			t.Fatalf("job %d: %d µs retry wait on a fault-free run", i, rw)
		}
	}
}

// TestReqtraceConservationUnderFaults: conservation must survive transient
// faults, a fail-stop crash, a straggler, and CPU degradation — the charged
// retry attempts and requeue gaps all land in the decomposition.
func TestReqtraceConservationUnderFaults(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 24, TraceOptions{MeanGapUS: 10, MinTuples: 512, MaxTuples: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rec, traces := runRecorded(t, seed, jobs, Config{
		FPGAs: 2, Workers: 2,
		Faults: &faults.Scenario{
			Seed:        seed,
			DropProb:    0.45,
			CorruptProb: 0.45,
			Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.0}},
			Stragglers:  []faults.Straggler{{Node: 0, Factor: 2}},
		},
	})
	checkConservation(t, traces)
	retried := false
	for i := range traces {
		if traces[i].Breakdown[reqtrace.CompRetryWait] > 0 || len(rec.Job(i).Attempts) > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("fault scenario produced no retries; the test exercises nothing")
	}
	// The flight recorder must have witnessed the faults.
	var faults, crashes int
	for _, e := range rec.FlightEvents() {
		switch e.Kind {
		case "fault":
			faults++
		case "crash":
			crashes++
		}
	}
	if faults == 0 && crashes == 0 && rec.FlightDropped() == 0 {
		t.Fatal("no fault or crash event reached the flight recorder")
	}
}

// TestReqtraceConservationWithDeadlines: jobs that time out or are cancelled
// while queued (including after aborted attempts) must still decompose
// exactly — the trailing wait is charged as queue or retry wait.
func TestReqtraceConservationWithDeadlines(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 12, TraceOptions{MeanGapUS: 1, MinTuples: 4096, MaxTuples: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		jobs[i].ArrivalUS = 0
		switch i % 3 {
		case 1:
			jobs[i].TimeoutUS = 1
		case 2:
			jobs[i].CancelAtUS = 2
		}
	}
	_, traces := runRecorded(t, seed, jobs, Config{
		FPGAs: 1, Workers: 1, QueueDepth: 2, BatchMax: 1,
	})
	checkConservation(t, traces)
	sawDeadline := false
	for i := range traces {
		if traces[i].Status == "timedout" || traces[i].Status == "cancelled" {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("no job hit its deadline; the test exercises nothing")
	}
}

// TestReqtraceByteIdentical: three fresh recorded runs of the same seed must
// render byte-identical breakdown JSON, critical-path reports, and flight
// postmortems — fault-free and faulty. The CI race job runs this under
// -race, covering the worker pool.
func TestReqtraceByteIdentical(t *testing.T) {
	seed := seedFromName(t)
	render := func(faulty bool) []byte {
		jobs, err := GenerateTrace(seed, 18, TraceOptions{MeanGapUS: 20})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{FPGAs: 2, Workers: 2}
		if faulty {
			cfg.Faults = faultyScenario(seed)
		}
		rec, traces := runRecorded(t, seed, jobs, cfg)
		var b bytes.Buffer
		if err := reqtrace.WriteBreakdownJSON(&b, traces); err != nil {
			t.Fatal(err)
		}
		b.WriteString(reqtrace.Analyze(traces, 5).Format())
		if err := reqtrace.WritePostmortem(&b, "test", rec.FlightEvents(), rec.FlightDropped()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	for _, faulty := range []bool{false, true} {
		first := render(faulty)
		for run := 2; run <= 3; run++ {
			if got := render(faulty); !bytes.Equal(first, got) {
				t.Fatalf("faulty=%v: run %d renders different causal output", faulty, run)
			}
		}
	}
}
