package partserver

import (
	"bytes"
	"fmt"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/workload"
)

// renderRun executes one full scheduled run and renders every observable
// surface — report JSON, Chrome trace JSON, metrics JSON — as bytes.
func renderRun(t *testing.T, seed uint64, n int, cfg Config) []byte {
	t.Helper()
	jobs, err := GenerateTrace(seed, n, TraceOptions{MeanGapUS: 60})
	if err != nil {
		t.Fatal(err)
	}
	sess := simtrace.NewSession()
	cfg.Seed = seed
	cfg.Trace = sess
	rep, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := sess.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := sess.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// faultyScenario is the shared fault mix of the determinism and race tests:
// transient faults, a mid-trace fail-stop crash, and a straggler.
func faultyScenario(seed uint64) *faults.Scenario {
	return &faults.Scenario{
		Seed:        seed,
		DropProb:    0.15,
		CorruptProb: 0.1,
		Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.4}},
		Stragglers:  []faults.Straggler{{Node: 0, Factor: 1.5}},
	}
}

// TestSameSeedByteIdentical is the scheduler's determinism contract: three
// fresh runs of the same seed and trace — real goroutine workers and all —
// must render byte-identical reports, Chrome traces, and metric snapshots.
// Running under -race (the CI race job covers this package) additionally
// checks the worker pool for data races while an FPGA crashes mid-job.
func TestSameSeedByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"faultfree", Config{FPGAs: 2, Workers: 2}},
		{"faulty", Config{FPGAs: 2, Workers: 2, Faults: faultyScenario(21)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := renderRun(t, 21, 18, tc.cfg)
			for run := 2; run <= 3; run++ {
				got := renderRun(t, 21, 18, tc.cfg)
				if !bytes.Equal(first, got) {
					t.Fatalf("run %d differs from run 1\n%s", run, firstDiff(first, got))
				}
			}
		})
	}
}

// TestSeedChangesPlacement guards against the seed being ignored: different
// seeds must be able to produce different schedules (placement ties break
// by seeded hash), while any single seed stays self-consistent.
func TestSeedChangesPlacement(t *testing.T) {
	base := renderRun(t, 5, 16, Config{FPGAs: 2, Workers: 2})
	for seed := uint64(6); seed < 16; seed++ {
		if !bytes.Equal(base, renderRun(t, seed, 16, Config{FPGAs: 2, Workers: 2})) {
			return
		}
	}
	t.Fatal("10 different seeds all produced the identical schedule; seeding is dead")
}

// TestCrashMidJobPool is the worker-pool stress for the race detector: a
// crashing instance, transient faults, stragglers, and every worker busy.
// All jobs must still terminate with correct results, and the crashed
// instance must be reported.
func TestCrashMidJobPool(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 30, TraceOptions{MeanGapUS: 10, MinTuples: 512, MaxTuples: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(jobs, Config{
		FPGAs:   2,
		Workers: 2,
		Seed:    seed,
		Faults: &faults.Scenario{
			Seed:        seed,
			DropProb:    0.45,
			CorruptProb: 0.45,
			Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.0}},
			Stragglers:  []faults.Straggler{{Node: 0, Factor: 2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	crashed := fmt.Sprintf("%v", rep.FailedInstances)
	if crashed != "[1]" {
		t.Errorf("failed instances %s, want [1]", crashed)
	}
	retried := 0
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != StatusDone {
			t.Fatalf("job %d: %v %q", r.ID, r.Status, r.Err)
		}
		if r.Attempts > 1 {
			retried++
		}
		checkResult(t, &jobs[r.ID], r)
	}
	if retried == 0 {
		t.Error("no job was ever retried despite a crash and 90% transient faults")
	}
}

// TestOverflowDegradesToCPU forces the PAD-overflow degrade path: a heavily
// Zipf-skewed PAD-mode job overflows its padded partition on the FPGA, is
// requeued pinned to the CPU pool, and still produces the single-tenant
// result (the paper's Section 5.4 fallback, scheduled).
func TestOverflowDegradesToCPU(t *testing.T) {
	rel, err := workload.NewGenerator(3).ZipfRelation(1.5, 1<<20, 8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Rel: rel, FanOut: 64, Hash: true, Format: partition.PadMode}
	// A deliberately slow CPU rate makes the FPGA the clear first choice, so
	// the job must hit the overflow before it can land on the CPU.
	rep, err := Run([]Job{job}, Config{FPGAs: 1, Workers: 1, Seed: 3, CPURate: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	r := &rep.Results[0]
	if r.Status != StatusDone {
		t.Fatalf("job: %v %q", r.Status, r.Err)
	}
	if !r.Degraded || r.Placement != PlacedCPU {
		t.Fatalf("expected CPU degrade after PAD overflow, got placement=%v degraded=%v attempts=%d",
			r.Placement, r.Degraded, r.Attempts)
	}
	checkResult(t, &job, r)
}

// TestReconfigurationBatching checks the batching invariant: a same-config
// job stream on one instance reconfigures once, a strictly alternating
// stream reconfigures on every dispatch.
func TestReconfigurationBatching(t *testing.T) {
	mk := func(fanOut int, n int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = mustJob(t, fanOut, 1024, int64(i))
		}
		return jobs
	}
	sess := simtrace.NewSession()
	if _, err := Run(mk(16, 6), Config{FPGAs: 1, Workers: 0, Seed: 1, Trace: sess}); err != nil {
		t.Fatal(err)
	}
	if got, _ := sess.Metrics.Snapshot().Get("sched.reconfigs"); got.Value != 1 {
		t.Errorf("uniform stream: %d reconfigurations, want 1", got.Value)
	}

	sess = simtrace.NewSession()
	jobs := mk(16, 6)
	for i := 1; i < len(jobs); i += 2 {
		jobs[i].FanOut = 32
	}
	// Arrivals far apart so no two jobs are ever queued together — batching
	// cannot coalesce, every dispatch alternates configuration.
	for i := range jobs {
		jobs[i].ArrivalUS = int64(i) * 100000
	}
	if _, err := Run(jobs, Config{FPGAs: 1, Workers: 0, Seed: 1, Trace: sess}); err != nil {
		t.Fatal(err)
	}
	if got, _ := sess.Metrics.Snapshot().Get("sched.reconfigs"); got.Value != 6 {
		t.Errorf("alternating stream: %d reconfigurations, want 6", got.Value)
	}
}

func mustJob(t *testing.T, fanOut, tuples int, arrival int64) Job {
	t.Helper()
	rel, err := workload.NewGenerator(arrival+int64(tuples)).Relation(workload.Random, 8, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return Job{Rel: rel, FanOut: fanOut, Hash: true, ArrivalUS: arrival}
}

// firstDiff reports the first line where want and got diverge.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  run1: %s\n  run2: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: %d lines vs %d lines", len(wl), len(gl))
}
