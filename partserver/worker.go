package partserver

import (
	"fmt"

	"fpgapart/internal/core"
	"fpgapart/internal/cpupart"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/membudget"
	"fpgapart/workload"
)

// execOut is one job's execution outcome as reported by a worker. The
// scheduler reads it only after receiving the batch back on the resource's
// done channel, so the channel send/receive orders worker writes before
// scheduler reads.
type execOut struct {
	ok       bool
	overflow bool
	errMsg   string
	// cycles is the simulated circuit time of the run (FPGA executions
	// only, including aborted PAD-overflow attempts); the scheduler turns
	// it into virtual microseconds.
	cycles   int64
	tuples   int64
	counts   []int64
	offsets  []int64
	checksum uint32
	matches  int64
	// spilledBytes / joinDepth describe a budgeted join's adaptive run
	// (deterministic: derived from replayed accounting, not wall clock).
	spilledBytes int64
	joinDepth    int
}

// joinParts joins the partitioned sides, budgeted when the job carries a
// per-tenant memory budget. Single-threaded either way, so the execution is
// bit-reproducible.
func joinParts(build, probe joincore.Partitions, spec *Job, out *execOut) error {
	if spec.MemoryBudgetBytes > 0 {
		budget := membudget.New(spec.MemoryBudgetBytes)
		spill := &membudget.SpillStore{}
		jr, stats, err := joincore.BudgetedBuildProbe(build, probe, joincore.BudgetConfig{
			Budget:  budget,
			Spill:   spill,
			Threads: 1,
		})
		if err != nil {
			return err
		}
		out.matches = jr.Matches
		out.checksum = fold64(jr.Checksum)
		out.spilledBytes = stats.SpilledBytes
		out.joinDepth = stats.MaxDepth
		return nil
	}
	jr, err := joincore.BuildProbe(build, probe, 1)
	if err != nil {
		return err
	}
	out.matches = jr.Matches
	out.checksum = fold64(jr.Checksum)
	return nil
}

// startWorker spawns the goroutine serving one resource. Workers are pure
// executors: they hold no scheduling policy, draw no randomness, and never
// touch the simtrace session (all emission happens on the scheduler loop).
// A panic inside the simulator is recovered per job and reported in the
// job's execOut — a caller-side guard cannot catch a goroutine's panic.
func startWorker(r *resource, cfg Config) {
	if r.kind == PlacedFPGA {
		w := &fpgaWorker{res: r, cfg: cfg}
		go w.loop()
		return
	}
	w := &cpuWorker{res: r, cfg: cfg}
	go w.loop()
}

// fpgaWorker drives one simulated FPGA partitioner instance. The circuit is
// stateful hardware — one instance runs one job at a time — so the worker
// owns it exclusively and rebuilds it only when the scheduler dispatches a
// different configuration (the virtual reconfiguration the scheduler
// charges ReconfigUS for).
type fpgaWorker struct {
	res     *resource
	cfg     Config
	circuit *core.Circuit
	loaded  configKey
	hasCkt  bool
}

func (w *fpgaWorker) loop() {
	for b := range w.res.work {
		for _, j := range b.jobs {
			w.runJob(j)
		}
		w.res.done <- b
	}
}

func (w *fpgaWorker) runJob(j *jobState) {
	defer func() {
		if r := recover(); r != nil {
			j.out = execOut{errMsg: fmt.Sprintf("fpga worker: %v", r)}
		}
	}()
	if !w.hasCkt || w.loaded != j.key {
		cfg, err := circuitConfig(j.spec)
		if err != nil {
			j.out = execOut{errMsg: err.Error()}
			return
		}
		ckt, err := core.NewCircuit(cfg, w.cfg.Platform.FPGAClockHz, w.cfg.Platform.FPGAAlone)
		if err != nil {
			j.out = execOut{errMsg: err.Error()}
			return
		}
		w.circuit, w.loaded, w.hasCkt = ckt, j.key, true
	}

	build, stats, err := w.circuit.Partition(j.spec.Rel)
	if err != nil {
		out := execOut{errMsg: err.Error()}
		if stats != nil {
			out.cycles = stats.Cycles
			out.overflow = stats.Overflowed
		}
		j.out = out
		return
	}
	out := execOut{ok: true, cycles: stats.Cycles}
	fillFromFPGA(&out, build)

	if j.spec.Probe != nil {
		probe, pstats, err := w.circuit.Partition(j.spec.Probe)
		if err != nil {
			res := execOut{errMsg: err.Error(), cycles: out.cycles}
			if pstats != nil {
				res.cycles += pstats.Cycles
				res.overflow = pstats.Overflowed
			}
			j.out = res
			return
		}
		out.cycles += pstats.Cycles
		if err := joinParts(fpgaParts{build}, fpgaParts{probe}, j.spec, &out); err != nil {
			j.out = execOut{errMsg: err.Error(), cycles: out.cycles}
			return
		}
	}
	j.out = out
}

// cpuWorker drives one CPU partitioner slot. It runs single-threaded so the
// produced tuple order (not just the multiset) is identical across runs.
type cpuWorker struct {
	res *resource
	cfg Config
}

func (w *cpuWorker) loop() {
	for b := range w.res.work {
		for _, j := range b.jobs {
			w.runJob(j)
		}
		w.res.done <- b
	}
}

func (w *cpuWorker) runJob(j *jobState) {
	defer func() {
		if r := recover(); r != nil {
			j.out = execOut{errMsg: fmt.Sprintf("cpu worker: %v", r)}
		}
	}()
	build, err := w.partition(j.spec.Rel, j.spec)
	if err != nil {
		j.out = execOut{errMsg: err.Error()}
		return
	}
	out := execOut{ok: true}
	fillFromCPU(&out, build)

	if j.spec.Probe != nil {
		probe, err := w.partition(j.spec.Probe, j.spec)
		if err != nil {
			j.out = execOut{errMsg: err.Error()}
			return
		}
		if err := joinParts(cpuParts{build}, cpuParts{probe}, j.spec, &out); err != nil {
			j.out = execOut{errMsg: err.Error()}
			return
		}
	}
	j.out = out
}

// partition runs the software partitioner over rel. Column-layout relations
// (VRID jobs degraded to the CPU) are first materialized as <key, VRID>
// rows, mirroring partition.NewFPGA's overflow fallback, so the output
// payload convention — and hence the checksum — matches the FPGA's.
func (w *cpuWorker) partition(rel *workload.Relation, spec *Job) (*cpupart.Result, error) {
	if rel.Layout == workload.ColumnLayout {
		rows, err := workload.NewRelation(workload.RowLayout, 8, rel.NumTuples)
		if err != nil {
			return nil, err
		}
		for i, k := range rel.Keys {
			rows.SetTuple(i, k, uint32(i))
		}
		rel = rows
	}
	return cpupart.Partition(rel, cpupart.Config{
		NumPartitions: spec.FanOut,
		Hash:          spec.Hash,
		Threads:       1,
	})
}

// fillFromFPGA derives the job-visible output shape from a circuit run.
func fillFromFPGA(out *execOut, o *core.Output) {
	out.counts = append([]int64(nil), o.Counts...)
	out.offsets = prefixSums(out.counts)
	out.tuples = out.offsets[len(out.offsets)-1]
	var h uint32
	for p := 0; p < o.NumPartitions; p++ {
		o.Partition(p, func(k, pay uint32, _ []uint64) {
			h += tupleHash(k, pay)
		})
	}
	out.checksum = h
}

// fillFromCPU derives the job-visible output shape from a software run.
func fillFromCPU(out *execOut, r *cpupart.Result) {
	out.counts = make([]int64, r.NumPartitions)
	for p := 0; p < r.NumPartitions; p++ {
		out.counts[p] = r.Count(p)
	}
	out.offsets = prefixSums(out.counts)
	out.tuples = out.offsets[len(out.offsets)-1]
	var h uint32
	for p := 0; p < r.NumPartitions; p++ {
		for _, t := range r.Partition(p) {
			h += tupleHash(uint32(t), uint32(t>>32))
		}
	}
	out.checksum = h
}

// tupleHash is the per-tuple term of the order-insensitive multiset
// checksum — the same formula as partition.Result.PartitionChecksum, so a
// scheduled job's checksum is directly comparable to a single-tenant run.
func tupleHash(key, payload uint32) uint32 {
	return hashutil.Murmur32Finalizer(key ^ hashutil.Murmur32Finalizer(payload))
}

func prefixSums(counts []int64) []int64 {
	offsets := make([]int64, len(counts)+1)
	for p, c := range counts {
		offsets[p+1] = offsets[p] + c
	}
	return offsets
}

// fold64 compresses joincore's 64-bit pair checksum to the 32-bit result
// field.
func fold64(cs uint64) uint32 { return uint32(cs) ^ uint32(cs>>32) }

// fpgaParts adapts a circuit output to joincore.Partitions.
type fpgaParts struct{ o *core.Output }

func (f fpgaParts) NumPartitions() int { return f.o.NumPartitions }
func (f fpgaParts) SlotCount(p int) int {
	return int(f.o.LinesUsed[p]) * f.o.TuplesPerLine()
}
func (f fpgaParts) Slot(p, i int) (key, payload uint32, ok bool) {
	wpt := f.o.TupleWidth / 8
	w := f.o.Lines[f.o.Base[p]*8+int64(i*wpt)]
	key = uint32(w)
	if key == f.o.DummyKey {
		return 0, 0, false
	}
	return key, uint32(w >> 32), true
}

// cpuParts adapts a software partitioning result to joincore.Partitions.
type cpuParts struct{ r *cpupart.Result }

func (c cpuParts) NumPartitions() int  { return c.r.NumPartitions }
func (c cpuParts) SlotCount(p int) int { return int(c.r.Count(p)) }
func (c cpuParts) Slot(p, i int) (key, payload uint32, ok bool) {
	t := c.r.Data[c.r.Offsets[p]+int64(i)]
	return uint32(t), uint32(t >> 32), true
}
