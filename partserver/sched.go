package partserver

import (
	"fmt"
	"math"
	"sort"

	"fpgapart/internal/faults"
	"fpgapart/internal/joincore"
	"fpgapart/internal/model"
	"fpgapart/internal/reqtrace"
	"fpgapart/partition"
)

// jobState is the scheduler's view of one submitted job as it moves
// through backlog → admission queue → execution → terminal status.
type jobState struct {
	id   int
	spec *Job
	key  configKey

	status    Status
	placement Placement
	instance  int
	attempts  int
	degraded  bool
	// forceCPU pins the job to the CPU pool after FPGA retries are
	// exhausted, a crash took its instance, or a PAD overflow aborted it.
	forceCPU bool
	terminal bool

	arrivalUS  int64
	dispatchUS int64 // -1 until first dispatch
	doneUS     int64
	execUS     int64

	out    execOut
	errMsg string
}

func (j *jobState) deadlineUS() int64 {
	d := int64(math.MaxInt64)
	if j.spec.TimeoutUS > 0 {
		d = j.spec.ArrivalUS + j.spec.TimeoutUS
	}
	if j.spec.CancelAtUS > 0 && j.spec.CancelAtUS < d {
		d = j.spec.CancelAtUS
	}
	return d
}

// batch is one dispatch to one resource: a run of same-configuration jobs
// for an FPGA instance, or a single job for a CPU worker.
type batch struct {
	jobs     []*jobState
	durs     []int64 // per-job charge of this attempt, filled at harvest
	spills   []int64 // spill round-trip portion of each charge
	reconfig bool
	aborted  bool // scheduler-decided transient fault or crash
	crash    bool
	startUS  int64
	doneUS   int64 // 0 until harvested
}

// resource is the scheduler-side state of one execution slot.
type resource struct {
	kind     Placement // PlacedFPGA or PlacedCPU
	idx      int       // index within its pool
	comp     string    // simtrace timeline name: "fpga0", "cpu1", …
	inflight *batch    // nil when idle
	loaded   configKey // FPGA: currently configured circuit
	hasCfg   bool
	dead     bool
	started  int // FPGA: jobs started, drives the crash threshold
	busyUS   int64

	// crash configuration (FPGA only): fail-stop while running job number
	// crashAt+1; -1 = never. straggle stretches charged durations (≥ 1).
	crashAt  int
	straggle float64

	work chan *batch
	done chan *batch
}

type scheduler struct {
	cfg  Config
	inj  *faults.Injector
	jobs []*jobState

	// future: not yet arrived (sorted by arrival, id). waiting: arrived but
	// the admission queue was full. admit: the bounded admission queue.
	future  []*jobState
	waiting []*jobState
	admit   []*jobState

	res  []*resource // fpgas first, then cpus
	nfpg int

	// schedComp is the causal-record component name of the scheduler itself:
	// "sched", or "<lane>.sched" under Config.Lane. Built once here so the
	// recording hot path never concatenates.
	schedComp string

	now      int64
	makespan int64
	reconfs  int64
	batches  int64
	retries  int64
	nfaults  int64
	ncrashes int64
}

func newScheduler(jobs []Job, cfg Config) (*scheduler, error) {
	s := &scheduler{cfg: cfg, nfpg: cfg.FPGAs, schedComp: laneComp(cfg.Lane, "sched")}
	if cfg.Faults != nil {
		inj, err := faults.New(*cfg.Faults)
		if err != nil {
			return nil, err
		}
		s.inj = inj
	}
	s.jobs = make([]*jobState, len(jobs))
	for i := range jobs {
		s.jobs[i] = &jobState{
			id:         i,
			spec:       &jobs[i],
			key:        keyOf(&jobs[i]),
			arrivalUS:  jobs[i].ArrivalUS,
			instance:   -1,
			dispatchUS: -1,
		}
	}
	s.future = append(s.future, s.jobs...)
	sort.SliceStable(s.future, func(a, b int) bool {
		if s.future[a].arrivalUS != s.future[b].arrivalUS {
			return s.future[a].arrivalUS < s.future[b].arrivalUS
		}
		return s.future[a].id < s.future[b].id
	})

	// Fair-share crash thresholds: instance i fail-stops while running its
	// (floor(f·share)+1)-th job, share = ceil(totalJobs/FPGAs). Determinism
	// holds because Run sees the whole trace up front.
	share := 0
	if cfg.FPGAs > 0 {
		share = (len(jobs) + cfg.FPGAs - 1) / cfg.FPGAs
	}
	for i := 0; i < cfg.FPGAs; i++ {
		r := &resource{
			kind:     PlacedFPGA,
			idx:      i,
			comp:     laneComp(cfg.Lane, fmt.Sprintf("fpga%d", i)),
			crashAt:  -1,
			straggle: 1,
			work:     make(chan *batch, 1),
			done:     make(chan *batch, 1),
		}
		if s.inj != nil {
			if f, ok := s.inj.CrashFraction(i); ok {
				r.crashAt = int(f * float64(share))
			}
			r.straggle = s.inj.StraggleFactor(i)
		}
		s.res = append(s.res, r)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.res = append(s.res, &resource{
			kind:     PlacedCPU,
			idx:      i,
			comp:     laneComp(cfg.Lane, fmt.Sprintf("cpu%d", i)),
			crashAt:  -1,
			straggle: 1,
			work:     make(chan *batch, 1),
			done:     make(chan *batch, 1),
		})
	}
	return s, nil
}

// count adds to a counter; a nil session is free.
func (s *scheduler) count(name string, d int64) {
	if s.cfg.Trace != nil {
		s.cfg.Trace.Metrics.Counter(name).Add(d)
	}
}

// observeQueue records the current queue depth (bounded queue + backlog).
func (s *scheduler) observeQueue() {
	if s.cfg.Trace == nil {
		return
	}
	depth := int64(len(s.admit) + len(s.waiting))
	s.cfg.Trace.Metrics.Gauge("sched.queue_depth").Observe(depth)
	s.cfg.Trace.Tracer.Sample("sched", "queue_depth", s.now, depth)
}

func (s *scheduler) run() (*Report, error) {
	for _, r := range s.res {
		startWorker(r, s.cfg)
	}
	defer func() {
		for _, r := range s.res {
			close(r.work)
		}
	}()

	s.count("sched.jobs_submitted", int64(len(s.jobs)))
	for _, j := range s.jobs {
		s.cfg.Record.Admit(j.id, j.spec.Tag, j.arrivalUS)
	}
	for {
		s.admitWaiting()
		s.dispatchLoop()
		if !s.advance() {
			break
		}
	}
	return s.report(), nil
}

// admitWaiting refills the bounded admission queue from the arrived
// backlog, in arrival order.
func (s *scheduler) admitWaiting() {
	moved := false
	for len(s.waiting) > 0 && len(s.admit) < s.cfg.QueueDepth {
		s.admit = append(s.admit, s.waiting[0])
		s.waiting = s.waiting[1:]
		moved = true
	}
	if moved {
		s.observeQueue()
	}
}

// dispatchLoop places queued jobs on free resources until no placement is
// possible, scanning the admission queue in order (a job that cannot be
// placed does not block the jobs behind it).
func (s *scheduler) dispatchLoop() {
	for {
		placed := false
		for qi := 0; qi < len(s.admit); qi++ {
			j := s.admit[qi]
			r := s.place(j)
			if r == nil {
				continue
			}
			s.dispatch(j, qi, r)
			placed = true
			break
		}
		if !placed {
			return
		}
		s.admitWaiting()
	}
}

// place picks the free resource with the earliest predicted completion for
// job j, nil when none is free (or permitted). Ties break on a seeded hash
// so equally good resources are chosen reproducibly.
func (s *scheduler) place(j *jobState) *resource {
	var best *resource
	var bestDone int64
	var bestTie uint64
	for ri, r := range s.res {
		if r.inflight != nil || r.dead {
			continue
		}
		if j.forceCPU && r.kind == PlacedFPGA {
			continue
		}
		done := s.now + s.predict(j, r)
		tie := mix(s.cfg.Seed ^ mix(uint64(j.id)<<20|uint64(ri)))
		if best == nil || done < bestDone || (done == bestDone && tie < bestTie) {
			best, bestDone, bestTie = r, done, tie
		}
	}
	return best
}

// predict estimates job j's virtual duration on resource r: the analytical
// cost model (Section 4.6) for the FPGA side, the calibrated constant rate
// for the CPU side. Predictions drive placement only; actual charges come
// from simulated cycles (FPGA) or the same constant rates (CPU).
func (s *scheduler) predict(j *jobState, r *resource) int64 {
	n := int64(j.spec.Rel.NumTuples)
	probe := int64(0)
	if j.spec.Probe != nil {
		probe = int64(j.spec.Probe.NumTuples)
	}
	var us int64
	if r.kind == PlacedFPGA {
		mode := model.Mode{
			Hist: j.spec.Format != partition.PadMode,
			VRID: j.spec.Layout == partition.ColumnStore,
		}
		rate := model.ForMode(mode, s.cfg.Platform, max1(n)).TotalRate()
		us = ceilDiv(n*1e6, int64(rate))
		if probe > 0 {
			rate = model.ForMode(mode, s.cfg.Platform, max1(probe)).TotalRate()
			us += ceilDiv(probe*1e6, int64(rate))
		}
		if !r.hasCfg || r.loaded != j.key {
			us += s.cfg.ReconfigUS
		}
		us = int64(float64(us) * r.straggle)
	} else {
		us = s.cfg.CPUDispatchUS + ceilDiv(n*1e6, int64(s.cfg.CPURate))
		if probe > 0 {
			us += ceilDiv(probe*1e6, int64(s.cfg.CPURate))
		}
	}
	if probe > 0 {
		us += ceilDiv((n+probe)*1e6, int64(s.cfg.JoinRate))
		us += s.predictSpillUS(j, n, probe)
	}
	return us
}

// predictSpillUS is the deterministic placement-time estimate of the extra
// join cost a per-tenant memory budget induces: when the whole build side
// cannot fit the budget, assume both sides make one spill round trip
// (write + read) at the join rate. The actual charge at harvest uses the
// observed spill traffic instead.
func (s *scheduler) predictSpillUS(j *jobState, n, probe int64) int64 {
	budget := j.spec.MemoryBudgetBytes
	if budget <= 0 || n*joincore.BuildTupleBytes <= budget {
		return 0
	}
	return ceilDiv(2*(n+probe)*1e6, int64(s.cfg.JoinRate))
}

// dispatch sends job j (plus, on an FPGA, up to BatchMax−1 queued jobs with
// the same circuit configuration) to resource r and removes them from the
// admission queue. Fault and crash verdicts are decided here — on the
// scheduler loop, deterministically — before the worker runs; the worker
// always executes for real (race coverage for the pool), and the scheduler
// discards aborted results at harvest time.
func (s *scheduler) dispatch(j *jobState, qi int, r *resource) {
	b := &batch{jobs: []*jobState{j}, startUS: s.now}
	s.admit = append(s.admit[:qi:qi], s.admit[qi+1:]...)
	if r.kind == PlacedFPGA {
		if !r.hasCfg || r.loaded != j.key {
			b.reconfig = true
			s.reconfs++
		}
		for qj := 0; qj < len(s.admit) && len(b.jobs) < s.cfg.BatchMax; {
			cand := s.admit[qj]
			if cand.key == j.key && !cand.forceCPU {
				b.jobs = append(b.jobs, cand)
				s.admit = append(s.admit[:qj:qj], s.admit[qj+1:]...)
				continue
			}
			qj++
		}
		r.loaded, r.hasCfg = j.key, true

		// Crash verdict: the batch that carries the instance past its
		// fail-stop threshold aborts mid-run and kills the instance.
		if r.crashAt >= 0 && r.started+len(b.jobs) > r.crashAt {
			b.aborted, b.crash = true, true
		}
		r.started += len(b.jobs)

		// Transient fault verdict, drawn per dispatch attempt.
		if !b.aborted && s.inj != nil {
			fate, _ := s.inj.MessageFate(faults.MsgID{
				Src: r.idx, Piece: uint64(j.id), Attempt: j.attempts,
			})
			if fate != faults.Deliver {
				b.aborted = true
			}
		}
	}
	for _, bj := range b.jobs {
		bj.attempts++
		if bj.dispatchUS < 0 {
			bj.dispatchUS = s.now
		}
		bj.placement = r.kind
		bj.instance = r.idx
		s.cfg.Record.Event(s.now, r.comp, "dispatch", bj.id, int64(bj.attempts))
	}
	s.batches++
	r.inflight = b
	s.observeQueue()
	r.work <- b
}

// advance harvests every in-flight result, moves virtual time to the next
// event (arrival, completion, or queue deadline) and processes everything
// due at that instant. It returns false when the system has drained.
func (s *scheduler) advance() bool {
	const inf = int64(math.MaxInt64)

	// Harvest: block-receive, in fixed resource order, the result of every
	// busy resource. The workers have been running concurrently since
	// dispatch; receiving in index order (never via select) keeps the loop
	// deterministic.
	busy := false
	for _, r := range s.res {
		if r.inflight == nil {
			continue
		}
		busy = true
		if r.inflight.doneUS == 0 {
			b := <-r.done
			b.doneUS = b.startUS + s.batchDuration(b, r)
		}
	}

	next := inf
	if len(s.future) > 0 {
		next = s.future[0].arrivalUS
	}
	for _, r := range s.res {
		if r.inflight != nil && r.inflight.doneUS < next {
			next = r.inflight.doneUS
		}
	}
	for _, q := range [][]*jobState{s.admit, s.waiting} {
		for _, j := range q {
			if d := j.deadlineUS(); d < next {
				next = d
			}
		}
	}
	if next == inf {
		if !busy {
			// Queued jobs nothing can ever run (e.g. CPU-pinned jobs with
			// no CPU workers): fail them rather than spin.
			s.failUnschedulable(&s.admit)
			s.failUnschedulable(&s.waiting)
			return false
		}
		return true
	}
	s.now = next

	// Completions first (they free resources), in resource order.
	for _, r := range s.res {
		if r.inflight != nil && r.inflight.doneUS == s.now {
			s.complete(r)
		}
	}
	// Then arrivals.
	arrived := false
	for len(s.future) > 0 && s.future[0].arrivalUS <= s.now {
		s.waiting = append(s.waiting, s.future[0])
		s.future = s.future[1:]
		arrived = true
	}
	if arrived {
		s.observeQueue()
	}
	// Then queue deadlines: cancellation beats dispatch at the same instant.
	s.expire(&s.admit)
	s.expire(&s.waiting)
	return true
}

func (s *scheduler) failUnschedulable(q *[]*jobState) {
	for _, j := range *q {
		j.terminal = true
		j.status = StatusFailed
		j.doneUS = s.now
		j.errMsg = "no resource can run this job"
		s.cfg.Record.Finish(j.id, "failed", s.now)
		s.cfg.Record.Event(s.now, s.schedComp, "failed", j.id, int64(j.attempts))
		s.count("sched.jobs_failed", 1)
	}
	*q = nil
}

func (s *scheduler) expire(q *[]*jobState) {
	kept := (*q)[:0]
	changed := false
	for _, j := range *q {
		if j.deadlineUS() > s.now {
			kept = append(kept, j)
			continue
		}
		changed = true
		j.terminal = true
		j.doneUS = s.now
		if j.spec.TimeoutUS > 0 && j.spec.ArrivalUS+j.spec.TimeoutUS <= s.now {
			j.status = StatusTimedOut
			s.cfg.Record.Finish(j.id, "timedout", s.now)
			s.cfg.Record.Event(s.now, s.schedComp, "timeout", j.id, int64(j.attempts))
			s.count("sched.jobs_timeout", 1)
		} else {
			j.status = StatusCancelled
			s.cfg.Record.Finish(j.id, "cancelled", s.now)
			s.cfg.Record.Event(s.now, s.schedComp, "cancel", j.id, int64(j.attempts))
			s.count("sched.jobs_cancelled", 1)
		}
		j.placement = PlacedNone
		j.instance = -1
	}
	*q = kept
	if changed {
		s.observeQueue()
	}
}

// batchDuration converts a harvested batch into charged virtual time on
// resource r and stamps per-job execution charges (b.durs).
func (s *scheduler) batchDuration(b *batch, r *resource) int64 {
	var total int64
	if b.reconfig {
		total += s.cfg.ReconfigUS
	}
	b.durs = make([]int64, len(b.jobs))
	b.spills = make([]int64, len(b.jobs))
	for i, j := range b.jobs {
		var us, spill int64
		if r.kind == PlacedFPGA {
			us = ceilDiv(j.out.cycles*1e6, int64(s.cfg.Platform.FPGAClockHz))
			us = int64(float64(us) * r.straggle)
		} else {
			n := int64(j.spec.Rel.NumTuples)
			us = s.cfg.CPUDispatchUS + ceilDiv(n*1e6, int64(s.cfg.CPURate))
			if j.spec.Probe != nil {
				us += ceilDiv(int64(j.spec.Probe.NumTuples)*1e6, int64(s.cfg.CPURate))
			}
		}
		if j.spec.Probe != nil && j.out.ok {
			us += ceilDiv((int64(j.spec.Rel.NumTuples)+int64(j.spec.Probe.NumTuples))*1e6, int64(s.cfg.JoinRate))
			// Spill round trip: each spilled packed tuple (8 B) is written
			// and re-read, charged at the join rate.
			spill = joincore.SpillRoundTripUS(j.out.spilledBytes, s.cfg.JoinRate)
			us += spill
		}
		if b.aborted {
			// The attempt stops part-way: charge the abort fraction. The
			// whole rescaled charge is attributed to execution.
			us = int64(float64(us) * s.cfg.AbortFraction)
			spill = 0
		}
		if us < 1 {
			us = 1
		}
		b.durs[i] = us
		b.spills[i] = spill
		j.execUS += us
		total += us
	}
	if total < 1 {
		total = 1
	}
	return total
}

// complete finalizes a harvested batch at the current virtual time: spans
// and counters are emitted here, on the scheduler loop, in event order.
func (s *scheduler) complete(r *resource) {
	b := r.inflight
	r.inflight = nil
	r.busyUS += b.doneUS - b.startUS

	if s.cfg.Record != nil {
		// Attempt records: the five duration fields tile the batch interval
		// per job (reconfig + earlier jobs + own charge + later jobs =
		// doneUS − startUS for every member), the identity the causal
		// tracer's conservation law rests on.
		reconfig := int64(0)
		if b.reconfig {
			reconfig = s.cfg.ReconfigUS
		}
		total := b.doneUS - b.startUS
		var pre int64
		for i, j := range b.jobs {
			spill := b.spills[i]
			s.cfg.Record.Attempt(j.id, reqtrace.Attempt{
				Resource:   r.comp,
				FPGA:       r.kind == PlacedFPGA,
				StartUS:    b.startUS,
				ReconfigUS: reconfig,
				PreWaitUS:  pre,
				ExecUS:     b.durs[i] - spill,
				SpillUS:    spill,
				DrainUS:    total - reconfig - pre - b.durs[i],
				Aborted:    b.aborted,
				Crash:      b.crash,
				Overflow:   !b.aborted && j.out.overflow,
			})
			pre += b.durs[i]
		}
	}

	if s.cfg.Trace != nil {
		cursor := b.startUS
		if b.reconfig {
			s.cfg.Trace.Tracer.Span(r.comp, "reconfig", cursor, s.cfg.ReconfigUS)
			cursor += s.cfg.ReconfigUS
		}
		for i, j := range b.jobs {
			s.cfg.Trace.Tracer.Span(r.comp, fmt.Sprintf("job%d", j.id), cursor, b.durs[i])
			cursor += b.durs[i]
		}
	}

	if b.aborted {
		if b.crash {
			r.dead = true
			s.ncrashes++
			s.count("sched.fpga_crashes", 1)
			if s.cfg.Trace != nil {
				s.cfg.Trace.Tracer.Instant(r.comp, "crash", b.doneUS)
			}
			s.cfg.Record.Event(b.doneUS, r.comp, "crash", b.jobs[0].id, int64(len(b.jobs)))
		} else {
			s.nfaults++
			s.count("sched.fpga_faults", 1)
			if s.cfg.Trace != nil {
				s.cfg.Trace.Tracer.Instant(r.comp, "fault", b.doneUS)
			}
			s.cfg.Record.Event(b.doneUS, r.comp, "fault", b.jobs[0].id, int64(len(b.jobs)))
		}
		for _, j := range b.jobs {
			s.requeue(j, b.crash)
		}
		return
	}

	for _, j := range b.jobs {
		switch {
		case j.out.ok:
			j.terminal = true
			j.status = StatusDone
			j.doneUS = b.doneUS
			if j.doneUS > s.makespan {
				s.makespan = j.doneUS
			}
			s.cfg.Record.Finish(j.id, "done", b.doneUS)
			s.cfg.Record.Event(b.doneUS, r.comp, "done", j.id, int64(j.attempts))
			s.count("sched.jobs_done", 1)
			if r.kind == PlacedFPGA {
				s.count("sched.placed_fpga", 1)
			} else {
				s.count("sched.placed_cpu", 1)
			}
			if j.degraded {
				s.count("sched.jobs_degraded", 1)
			}
			if s.cfg.Trace != nil {
				s.cfg.Trace.Metrics.Histogram("sched.queue_wait_us").Observe(j.dispatchUS - j.arrivalUS)
				s.cfg.Trace.Metrics.Histogram("sched.exec_us").Observe(j.execUS)
			}
		case j.out.overflow:
			// PAD overflow: the circuit aborted this job; degrade to CPU,
			// keeping the aborted attempt's charge (Section 5.4 semantics).
			j.forceCPU = true
			j.degraded = true
			s.count("sched.overflow_degrades", 1)
			s.cfg.Record.Event(b.doneUS, r.comp, "degrade", j.id, int64(j.attempts))
			s.requeueFront(j)
		case r.kind == PlacedFPGA:
			// Simulator fault on the FPGA run: degrade to CPU.
			j.forceCPU = true
			j.degraded = true
			s.count("sched.sim_faults", 1)
			s.cfg.Record.Event(b.doneUS, r.comp, "degrade", j.id, int64(j.attempts))
			s.requeueFront(j)
		default:
			// CPU execution failed: no further fallback.
			j.terminal = true
			j.status = StatusFailed
			j.doneUS = b.doneUS
			if j.doneUS > s.makespan {
				s.makespan = j.doneUS
			}
			j.errMsg = j.out.errMsg
			s.cfg.Record.Finish(j.id, "failed", b.doneUS)
			s.cfg.Record.Event(b.doneUS, r.comp, "failed", j.id, int64(j.attempts))
			s.count("sched.jobs_failed", 1)
		}
	}
}

// requeue returns a fault- or crash-aborted job to the front of the
// admission queue; once its FPGA retries are exhausted (or its instance
// crashed with no healthy FPGA left) it is pinned to the CPU pool.
func (s *scheduler) requeue(j *jobState, crash bool) {
	s.retries++
	s.count("sched.retries", 1)
	if j.attempts > s.cfg.MaxFPGARetries || (crash && !s.anyFPGAAlive()) {
		j.forceCPU = true
		j.degraded = true
	}
	s.requeueFront(j)
}

func (s *scheduler) requeueFront(j *jobState) {
	j.out = execOut{}
	s.admit = append([]*jobState{j}, s.admit...)
	s.observeQueue()
}

func (s *scheduler) anyFPGAAlive() bool {
	for _, r := range s.res[:s.nfpg] {
		if !r.dead {
			return true
		}
	}
	return false
}

func (s *scheduler) report() *Report {
	rep := &Report{MakespanUS: s.makespan}
	var checksum uint32
	for _, j := range s.jobs {
		jr := JobResult{
			ID:           j.id,
			Status:       j.status,
			Tag:          j.spec.Tag,
			Placement:    j.placement,
			Instance:     j.instance,
			Attempts:     j.attempts,
			Degraded:     j.degraded,
			ArrivalUS:    j.arrivalUS,
			DispatchUS:   j.dispatchUS,
			DoneUS:       j.doneUS,
			ExecUS:       j.execUS,
			Tuples:       j.out.tuples,
			Counts:       j.out.counts,
			Offsets:      j.out.offsets,
			Checksum:     j.out.checksum,
			Matches:      j.out.matches,
			SpilledBytes: j.out.spilledBytes,
			MaxJoinDepth: j.out.joinDepth,
			Err:          j.errMsg,
		}
		if j.status == StatusDone {
			jr.QueueWaitUS = j.dispatchUS - j.arrivalUS
			checksum += j.out.checksum
			switch j.placement {
			case PlacedFPGA:
				rep.PlacedFPGA++
			case PlacedCPU:
				rep.PlacedCPU++
			}
			if j.degraded {
				rep.Degraded++
			}
		}
		rep.Results = append(rep.Results, jr)
	}
	for _, r := range s.res[:s.nfpg] {
		if r.dead {
			rep.FailedInstances = append(rep.FailedInstances, r.idx)
		}
	}
	var spilled int64
	for _, j := range s.jobs {
		spilled += j.out.spilledBytes
	}
	if s.cfg.Trace != nil {
		s.count("sched.makespan_us", s.makespan)
		s.count("sched.batches", s.batches)
		s.count("sched.reconfigs", s.reconfs)
		s.count("sched.output_checksum", int64(checksum))
		if spilled > 0 {
			// Emitted only when a budgeted job actually spilled, so traces
			// of unbudgeted workloads are byte-identical to earlier runs.
			s.count("sched.mem_spilled_bytes", spilled)
		}
		var busyF, busyC int64
		for _, r := range s.res {
			if r.kind == PlacedFPGA {
				busyF += r.busyUS
			} else {
				busyC += r.busyUS
			}
		}
		s.count("sched.busy_fpga_us", busyF)
		s.count("sched.busy_cpu_us", busyC)
	}
	return rep
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("partserver: ceilDiv by %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func max1(n int64) int64 {
	if n < 1 {
		return 1
	}
	return n
}
