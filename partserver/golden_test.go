package partserver

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestGoldenConformance pins the scheduler's complete observable behaviour —
// report, per-resource Chrome trace, and metrics snapshot — for one fixed
// faulty scenario against a committed golden file. Any change to placement
// policy, batching, virtual-time accounting, or trace emission shows up as a
// byte diff here; -update rewrites the snapshot, and a mismatch leaves a
// .got.json next to the golden file for CI to upload.
func TestGoldenConformance(t *testing.T) {
	const (
		seed = 42
		n    = 20
	)
	jobs, err := GenerateTrace(seed, n, TraceOptions{MeanGapUS: 80})
	if err != nil {
		t.Fatal(err)
	}
	sess := simtrace.NewSession()
	rep, err := Run(jobs, Config{
		FPGAs:   2,
		Workers: 2,
		Seed:    seed,
		Trace:   sess,
		Faults: &faults.Scenario{
			Seed:        seed,
			DropProb:    0.2,
			Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.3}},
			Stragglers:  []faults.Straggler{{Node: 0, Factor: 1.5}},
			CorruptProb: 0.1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The golden file pins the bytes; the semantics must hold regardless.
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != StatusDone {
			t.Fatalf("job %d: %v %q", r.ID, r.Status, r.Err)
		}
		checkResult(t, &jobs[r.ID], r)
	}

	var b bytes.Buffer
	b.WriteString("{\n\"report\": ")
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"trace\": ")
	if err := sess.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"metrics\": ")
	if err := sess.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("}\n")

	compareGolden(t, filepath.Join("testdata", "golden", "partserver_conformance.json"), b.Bytes())
}

// compareGolden diffs got against the golden file, honouring -update. On a
// mismatch the actual bytes are written next to the golden file as
// <name>.got.json so CI can attach them as an artifact.
func compareGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./partserver -run TestGolden -update` to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotPath := golden[:len(golden)-len(".json")] + ".got.json"
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Errorf("golden mismatch: %s differs from %s\n%s\nrerun with -update if the change is intended",
		golden, gotPath, firstDiff(want, got))
}
