package partserver

import (
	"fmt"
	"testing"

	"fpgapart/partition"
	"fpgapart/workload"
)

// seedFromName derives a deterministic per-test seed, so every property
// test draws its own workload but reruns identically.
func seedFromName(t *testing.T) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, c := range t.Name() {
		h = mix(h ^ uint64(c))
	}
	return h
}

// singleTenantChecksum partitions rel exactly once through the public
// single-tenant API and returns the summed per-partition multiset checksum
// plus the per-partition counts — the reference every scheduled job must
// reproduce regardless of placement, batching, retries, or degradation.
func singleTenantChecksum(t *testing.T, j *Job) (uint32, []int64) {
	t.Helper()
	rel := j.Rel
	if rel.Layout == workload.ColumnLayout {
		// The scheduler's CPU degrade path and the FPGA's VRID mode both
		// emit <key, VRID> tuples; the reference does the same.
		rows, err := workload.NewRelation(workload.RowLayout, 8, rel.NumTuples)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range rel.Keys {
			rows.SetTuple(i, k, uint32(i))
		}
		rel = rows
	}
	p, err := partition.NewCPU(partition.CPUOptions{Partitions: j.FanOut, Hash: j.Hash, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint32
	counts := make([]int64, j.FanOut)
	for pi := 0; pi < j.FanOut; pi++ {
		sum += res.PartitionChecksum(pi)
		counts[pi] = res.Count(pi)
	}
	return sum, counts
}

// referenceJoin brute-forces the join cardinality and pair checksum of a
// join job, independent of any partitioning.
func referenceJoin(j *Job) (matches int64, checksum uint64) {
	byKey := map[uint32][]uint32{}
	for i := 0; i < j.Rel.NumTuples; i++ {
		k := j.Rel.Key(i)
		byKey[k] = append(byKey[k], j.Rel.Payload(i))
	}
	for i := 0; i < j.Probe.NumTuples; i++ {
		k := j.Probe.Key(i)
		for _, rPay := range byKey[k] {
			matches++
			checksum += uint64(rPay) + uint64(j.Probe.Payload(i))
		}
	}
	return matches, checksum
}

// checkResult verifies one terminal job against the scheduler-independent
// references: output checksum parity with the single-tenant partitioner,
// valid prefix-sum offsets, and (for join jobs) brute-force join results.
func checkResult(t *testing.T, j *Job, r *JobResult) {
	t.Helper()
	if r.Status != StatusDone {
		return
	}
	if len(r.Offsets) != j.FanOut+1 || len(r.Counts) != j.FanOut {
		t.Fatalf("job %d: offsets/counts shape %d/%d, want %d/%d",
			r.ID, len(r.Offsets), len(r.Counts), j.FanOut+1, j.FanOut)
	}
	if r.Offsets[0] != 0 {
		t.Fatalf("job %d: Offsets[0] = %d", r.ID, r.Offsets[0])
	}
	for p := 0; p < j.FanOut; p++ {
		if r.Offsets[p+1]-r.Offsets[p] != r.Counts[p] {
			t.Fatalf("job %d: offsets not the prefix sums of counts at %d", r.ID, p)
		}
		if r.Counts[p] < 0 {
			t.Fatalf("job %d: negative count %d in partition %d", r.ID, r.Counts[p], p)
		}
	}
	if r.Offsets[j.FanOut] != r.Tuples {
		t.Fatalf("job %d: Offsets[n] = %d, Tuples = %d", r.ID, r.Offsets[j.FanOut], r.Tuples)
	}
	if r.Tuples != int64(j.Rel.NumTuples) {
		t.Fatalf("job %d: %d tuples out, %d in", r.ID, r.Tuples, j.Rel.NumTuples)
	}

	wantSum, wantCounts := singleTenantChecksum(t, j)
	for p, c := range wantCounts {
		if r.Counts[p] != c {
			t.Fatalf("job %d: partition %d holds %d tuples, single-tenant run holds %d",
				r.ID, p, r.Counts[p], c)
		}
	}
	if j.Probe == nil {
		if r.Checksum != wantSum {
			t.Fatalf("job %d (%v, attempts %d, degraded %v): checksum %08x, single-tenant %08x",
				r.ID, r.Placement, r.Attempts, r.Degraded, r.Checksum, wantSum)
		}
		return
	}
	wantMatches, wantJoin := referenceJoin(j)
	if r.Matches != wantMatches {
		t.Fatalf("job %d: %d matches, brute force finds %d", r.ID, r.Matches, wantMatches)
	}
	if r.Checksum != fold64(wantJoin) {
		t.Fatalf("job %d: join checksum %08x, brute force %08x", r.ID, r.Checksum, fold64(wantJoin))
	}
}

// TestPropertyChecksumParity is the core multi-tenancy property: for random
// job mixes over random pool shapes, every completed job's output is
// exactly what a single-tenant run of the same job produces — the scheduler
// adds concurrency, never changes results.
func TestPropertyChecksumParity(t *testing.T) {
	seed := seedFromName(t)
	for round := 0; round < 4; round++ {
		rseed := mix(seed ^ uint64(round))
		jobs, err := GenerateTrace(rseed, 10, TraceOptions{MeanGapUS: 50})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			FPGAs:   1 + int(rseed%3),
			Workers: 1 + int((rseed>>8)%2),
			Seed:    rseed,
		}
		rep, err := Run(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Results {
			r := &rep.Results[i]
			if r.Status != StatusDone {
				t.Fatalf("round %d: job %d not done: %v %q", round, r.ID, r.Status, r.Err)
			}
			checkResult(t, &jobs[r.ID], r)
		}
	}
}

// TestPropertyBackpressureNoDrops floods a depth-1 admission queue with
// simultaneous arrivals: backpressure may delay jobs arbitrarily, but every
// job must still complete with correct output and a coherent timeline.
func TestPropertyBackpressureNoDrops(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 24, TraceOptions{MeanGapUS: 1, MinTuples: 256, MaxTuples: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		jobs[i].ArrivalUS = 0 // everyone at once
	}
	rep, err := Run(jobs, Config{FPGAs: 1, Workers: 1, Seed: seed, QueueDepth: 1, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(rep.Results), len(jobs))
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != StatusDone {
			t.Fatalf("job %d dropped under backpressure: %v %q", r.ID, r.Status, r.Err)
		}
		if r.DispatchUS < r.ArrivalUS || r.DoneUS < r.DispatchUS {
			t.Fatalf("job %d: incoherent timeline arrival=%d dispatch=%d done=%d",
				r.ID, r.ArrivalUS, r.DispatchUS, r.DoneUS)
		}
		if r.QueueWaitUS != r.DispatchUS-r.ArrivalUS {
			t.Fatalf("job %d: queue wait %d ≠ dispatch−arrival %d",
				r.ID, r.QueueWaitUS, r.DispatchUS-r.ArrivalUS)
		}
		checkResult(t, &jobs[r.ID], r)
	}
}

// TestPropertyTimeoutAndCancel pins deadline semantics: a job whose
// deadline passes while queued is timed out (or cancelled) and never runs;
// a dispatched job is never preempted.
func TestPropertyTimeoutAndCancel(t *testing.T) {
	seed := seedFromName(t)
	jobs, err := GenerateTrace(seed, 12, TraceOptions{MeanGapUS: 1, MinTuples: 4096, MaxTuples: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		jobs[i].ArrivalUS = 0
		switch i % 3 {
		case 1:
			jobs[i].TimeoutUS = 1
		case 2:
			jobs[i].CancelAtUS = 2
		}
	}
	rep, err := Run(jobs, Config{FPGAs: 1, Workers: 1, Seed: seed, QueueDepth: 2, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		switch r.Status {
		case StatusDone:
			checkResult(t, &jobs[r.ID], r)
		case StatusTimedOut:
			if jobs[r.ID].TimeoutUS == 0 {
				t.Fatalf("job %d timed out without a timeout", r.ID)
			}
			if r.Placement != PlacedNone || r.Tuples != 0 {
				t.Fatalf("job %d: timed out yet ran (%v, %d tuples)", r.ID, r.Placement, r.Tuples)
			}
		case StatusCancelled:
			if jobs[r.ID].CancelAtUS == 0 {
				t.Fatalf("job %d cancelled without a cancel time", r.ID)
			}
			if r.Placement != PlacedNone || r.Tuples != 0 {
				t.Fatalf("job %d: cancelled yet ran (%v, %d tuples)", r.ID, r.Placement, r.Tuples)
			}
		default:
			t.Fatalf("job %d: unexpected status %v %q", r.ID, r.Status, r.Err)
		}
	}
}

// TestPropertyValidation locks down the request-validation boundary.
func TestPropertyValidation(t *testing.T) {
	rel, err := workload.NewGenerator(1).Relation(workload.Random, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		job  Job
	}{
		{"nil relation", Job{FanOut: 8}},
		{"fan-out 1", Job{Rel: rel, FanOut: 1}},
		{"fan-out not a power of two", Job{Rel: rel, FanOut: 12}},
		{"negative arrival", Job{Rel: rel, FanOut: 8, ArrivalUS: -1}},
		{"column job on row relation", Job{Rel: rel, FanOut: 8, Layout: partition.ColumnStore}},
	}
	for _, c := range cases {
		if _, err := Run([]Job{c.job}, Config{}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := Run(nil, Config{FPGAs: -1}); err == nil {
		t.Error("negative FPGA count accepted")
	}
	if _, err := Run(nil, Config{AbortFraction: 2}); err == nil {
		t.Error("AbortFraction 2 accepted")
	}
}

// TestStatusStrings keeps the enum strings (used in report JSON) stable.
func TestStatusStrings(t *testing.T) {
	for want, s := range map[string]fmt.Stringer{
		"done": StatusDone, "timedout": StatusTimedOut,
		"cancelled": StatusCancelled, "failed": StatusFailed,
		"none": PlacedNone, "fpga": PlacedFPGA, "cpu": PlacedCPU,
	} {
		if s.String() != want {
			t.Errorf("%T(%v) = %q, want %q", s, s, s.String(), want)
		}
	}
}
