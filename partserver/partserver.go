// Package partserver is the multi-tenant job scheduler of the
// production-scale system the ROADMAP aims at: it admits concurrent
// partition and join jobs and shards them across N simulated FPGA
// partitioner instances (internal/core circuits) and M CPU partitioner
// workers (internal/cpupart), the scale-out shape HBM-on-FPGA deployments
// take — many independent partitioner instances behind one scheduler.
//
// The scheduler runs on a deterministic virtual-time event loop: the clock
// is a simulated microsecond counter, never the host clock. Real goroutines
// execute the work — FPGA jobs run the cycle-level circuit simulator, CPU
// jobs run the measured software partitioner — but every scheduling
// decision (admission, placement, batching, fault handling) is a pure
// function of the job trace, the configuration and the seed, because the
// virtual duration of each job is itself deterministic: simulated cycles
// for the FPGA, a calibrated-constant rate for the CPU. Two runs with the
// same seed and trace therefore produce byte-identical placement
// decisions, simtrace output and results, even though the goroutines
// interleave differently on the host. The package sits on the fpgavet
// deterministic path, which machine-enforces the no-wall-clock /
// no-global-rand / no-map-range discipline this rests on.
//
// Scheduling model, in one paragraph: jobs arrive at virtual times given by
// the trace and wait in an unbounded backlog until the bounded admission
// queue has room (backpressure delays admission, it never drops a job);
// admitted jobs are placed on free resources by the paper's analytical cost
// model (internal/model predicts the FPGA side, a calibrated constant rate
// predicts the CPU side), with seeded tie-breaking between equally good
// choices; consecutive queued jobs with the same circuit configuration are
// batched onto one FPGA instance to amortize the reconfiguration latency;
// and injected FPGA faults (internal/faults: per-job transient faults,
// fail-stop crashes, stragglers) as well as PAD-mode partition overflows
// degrade the affected jobs to CPU execution, mirroring the paper's
// Section 5.4 fallback.
package partserver

import (
	"errors"
	"fmt"

	"fpgapart/internal/core"
	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// ErrSimulatorFault is reported (wrapped) when an invariant violation inside
// the simulator internals panics during a scheduled run. Run converts such
// panics into errors at the public API boundary; a panic inside a worker
// goroutine is recovered by the worker itself and surfaces as a failed (or
// CPU-degraded) job instead of crashing the process. Test with
// errors.Is(err, ErrSimulatorFault).
var ErrSimulatorFault = errors.New("partserver: simulator invariant fault")

// guardSimulator converts a panic escaping the simulator into an
// ErrSimulatorFault-wrapping error. Used via defer with a named return.
func guardSimulator(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// Config describes one scheduler deployment: the resource pool, the
// admission queue, the batching and placement knobs, and the fault scenario.
type Config struct {
	// FPGAs is the number of simulated FPGA partitioner instances (default 2).
	FPGAs int
	// Workers is the number of CPU partitioner workers (default 1).
	Workers int

	// QueueDepth bounds the admission queue (default 8). Jobs arriving into
	// a full queue wait in the backlog — delayed, never dropped.
	QueueDepth int
	// BatchMax caps how many same-configuration jobs are dispatched to one
	// FPGA instance as a single batch (default 4). 1 disables batching.
	BatchMax int
	// ReconfigUS is the virtual cost of loading a different circuit
	// configuration onto an FPGA instance (default 200 µs — partial
	// reconfiguration, not a full bitstream load).
	ReconfigUS int64

	// CPURate is the calibrated CPU partitioning rate in tuples/s used both
	// to predict CPU placements and to charge virtual time to CPU
	// executions (default 150e6, one core of the paper's host). It is a
	// deterministic constant, not a measurement: the scheduler may not read
	// the host clock.
	CPURate float64
	// CPUDispatchUS is the fixed virtual overhead of a CPU execution
	// (default 5 µs).
	CPUDispatchUS int64
	// JoinRate is the build+probe rate in tuples/s charged to the join
	// phase of join jobs (default 200e6).
	JoinRate float64

	// Seed drives placement tie-breaking (default 1).
	Seed uint64

	// Platform supplies the FPGA clock and bandwidth curves (default
	// platform.XeonFPGA()).
	Platform *platform.Platform

	// Faults optionally injects FPGA failures: DropProb/CorruptProb are
	// per-execution transient fault probabilities (the job is retried, then
	// degraded to CPU), Crashes fail-stop an instance after a fraction of
	// its fair share of the trace, Stragglers stretch an instance's virtual
	// durations. Link entries do not apply to the scheduler and are ignored.
	// CPU workers are fault-free.
	Faults *faults.Scenario

	// MaxFPGARetries is how many times a transiently failed job is retried
	// on the FPGA pool before degrading to CPU (default 1).
	MaxFPGARetries int

	// StragglerFraction is the fraction of a job's virtual duration charged
	// when it is aborted mid-run by a fault or crash (default 0.5).
	AbortFraction float64

	// Trace attaches a simtrace session: the scheduler reports queue-depth
	// samples, per-job spans on per-resource timelines, utilization and
	// placement counters, and queue-wait/execution histograms. All emission
	// happens on the scheduler loop, in virtual-time order, so traces are
	// byte-identical across same-seed runs. Nil disables tracing.
	Trace *simtrace.Session

	// Record attaches a causal request recorder: the scheduler registers
	// every job, records each charged execution attempt (reconfig, batch
	// waits, execution, spill, drain) and terminal status, and feeds the
	// bounded flight-recorder ring. Like Trace, all recording happens on
	// the scheduler loop in virtual-time order; nil disables recording at
	// zero cost (nil-receiver no-ops).
	Record *reqtrace.Recorder

	// Lane optionally prefixes the causal-record component names
	// ("<lane>.sched", "<lane>.fpga0", …) so a frontend multiplexing several
	// scheduler deployments over one merged flight timeline — the cluster's
	// hedge lanes — can attribute every event and attempt to the right lane.
	// The prefixed strings are built once at scheduler construction, so the
	// recording hot path stays allocation-free. Empty means no prefix.
	Lane string
}

// WithDefaults returns a copy with unset knobs filled in.
func (c Config) WithDefaults() Config {
	if c.FPGAs == 0 && c.Workers == 0 {
		// Only the all-unset pool defaults; FPGAs:2 alone means "no CPU
		// workers", which is a legitimate deployment.
		c.FPGAs = 2
		c.Workers = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.BatchMax == 0 {
		c.BatchMax = 4
	}
	if c.ReconfigUS == 0 {
		c.ReconfigUS = 200
	}
	if c.CPURate == 0 {
		c.CPURate = 150e6
	}
	if c.CPUDispatchUS == 0 {
		c.CPUDispatchUS = 5
	}
	if c.JoinRate == 0 {
		c.JoinRate = 200e6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Platform == nil {
		c.Platform = platform.XeonFPGA()
	}
	if c.MaxFPGARetries == 0 {
		c.MaxFPGARetries = 1
	}
	if c.AbortFraction == 0 {
		c.AbortFraction = 0.5
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() (err error) {
	defer guardSimulator(&err)
	if c.FPGAs < 0 || c.Workers < 0 || c.FPGAs+c.Workers == 0 {
		return fmt.Errorf("partserver: need at least one resource (FPGAs %d, Workers %d)", c.FPGAs, c.Workers)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("partserver: QueueDepth %d < 1", c.QueueDepth)
	}
	if c.BatchMax < 1 {
		return fmt.Errorf("partserver: BatchMax %d < 1", c.BatchMax)
	}
	if c.ReconfigUS < 0 {
		return fmt.Errorf("partserver: negative ReconfigUS %d", c.ReconfigUS)
	}
	if c.CPURate <= 0 || c.JoinRate <= 0 {
		return fmt.Errorf("partserver: non-positive rate (CPURate %v, JoinRate %v)", c.CPURate, c.JoinRate)
	}
	if c.AbortFraction < 0 || c.AbortFraction > 1 {
		return fmt.Errorf("partserver: AbortFraction %v outside [0, 1]", c.AbortFraction)
	}
	if err := c.Platform.Validate(); err != nil {
		return fmt.Errorf("partserver: %w", err)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("partserver: %w", err)
		}
	}
	return nil
}

// Job is one admission request. The zero value is not valid; fill at least
// Rel and FanOut.
type Job struct {
	// Rel is the relation to partition (row layout for RowStore, column
	// layout for ColumnStore). For join jobs it is the build side.
	Rel *workload.Relation
	// Probe, when non-nil, makes this a join job: both relations are
	// partitioned on the placed resource and then joined (build+probe) with
	// the result checksum reported.
	Probe *workload.Relation

	// FanOut is the number of partitions (power of two ≥ 2).
	FanOut int
	// Hash selects murmur hashing; false selects radix bits.
	Hash   bool
	Format partition.Format
	Layout partition.Layout

	// ArrivalUS is the virtual arrival time (µs). Jobs may arrive in any
	// order; the scheduler sorts by (ArrivalUS, index).
	ArrivalUS int64
	// TimeoutUS, when > 0, cancels the job if it has not been dispatched
	// within TimeoutUS of its arrival. Running jobs are never preempted
	// (the circuit cannot stop mid-relation).
	TimeoutUS int64
	// CancelAtUS, when > 0, cancels the job if it is still queued at that
	// virtual time.
	CancelAtUS int64
	// MemoryBudgetBytes caps the join build memory of this tenant's job
	// (join jobs only; ≤ 0 unlimited). Partitions whose build side exceeds
	// it spill and are recursively repartitioned or broadcast; the match
	// count and checksum are identical to an unconstrained run, but the
	// spill traffic is charged as extra virtual join time and reported in
	// JobResult.SpilledBytes.
	MemoryBudgetBytes int64

	// Tag is an opaque caller identifier echoed verbatim in JobResult.Tag.
	// The scheduler never interprets it; routing tiers (the cluster
	// frontend) use it to map per-shard results back to their original
	// requests without relying on submission order.
	Tag int64
}

// Status is a job's terminal state. Every submitted job reaches exactly one.
type Status int

const (
	// StatusDone: the job completed and its output was verified written.
	StatusDone Status = iota
	// StatusTimedOut: the job waited past its TimeoutUS without being
	// dispatched.
	StatusTimedOut
	// StatusCancelled: the job's CancelAtUS passed while it was queued.
	StatusCancelled
	// StatusFailed: the job failed on every allowed attempt (e.g. a
	// simulator fault on the FPGA and again on the CPU rerun).
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusDone:
		return "done"
	case StatusTimedOut:
		return "timedout"
	case StatusCancelled:
		return "cancelled"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Placement identifies where a job ultimately executed.
type Placement int

const (
	// PlacedNone: the job never ran (cancelled or timed out while queued).
	PlacedNone Placement = iota
	// PlacedFPGA: the job ran on a simulated FPGA instance.
	PlacedFPGA
	// PlacedCPU: the job ran on a CPU worker.
	PlacedCPU
)

func (p Placement) String() string {
	switch p {
	case PlacedNone:
		return "none"
	case PlacedFPGA:
		return "fpga"
	case PlacedCPU:
		return "cpu"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// JobResult is one job's outcome.
type JobResult struct {
	ID     int
	Status Status
	// Tag echoes Job.Tag (see there).
	Tag int64

	// Placement and Instance locate the final successful (or last
	// attempted) execution: fpga[Instance] or cpu[Instance].
	Placement Placement
	Instance  int

	// Attempts counts executions (1 for a clean run; retries and the CPU
	// rerun of a degraded job each add one).
	Attempts int
	// Degraded reports that the job fell back to CPU execution after FPGA
	// faults, a crash, or a PAD-mode overflow.
	Degraded bool

	// Virtual timeline (µs): arrival, first dispatch, completion.
	ArrivalUS  int64
	DispatchUS int64
	DoneUS     int64
	// QueueWaitUS is DispatchUS − ArrivalUS (time to the first dispatch).
	QueueWaitUS int64
	// ExecUS is the total virtual execution time charged, including aborted
	// attempts and reconfiguration shares.
	ExecUS int64

	// Output shape: per-partition tuple counts and their prefix sum
	// (Offsets[0] = 0, Offsets[FanOut] = Tuples).
	Tuples  int64
	Counts  []int64
	Offsets []int64
	// Checksum is the order-insensitive output checksum (the same multiset
	// hash partition.Result.PartitionChecksum uses, summed over all
	// partitions). For join jobs it is the joined-pairs checksum folded to
	// 32 bits.
	Checksum uint32
	// Matches is the join cardinality (join jobs only).
	Matches int64
	// SpilledBytes and MaxJoinDepth describe the adaptive behaviour of a
	// budgeted join job (zero for unbudgeted or partition-only jobs).
	SpilledBytes int64
	MaxJoinDepth int

	// Err carries the failure message of a StatusFailed job.
	Err string
}

// Report is the outcome of one scheduled trace.
type Report struct {
	// Results holds one entry per submitted job, in job-index order.
	Results []JobResult
	// MakespanUS is the virtual completion time of the last job.
	MakespanUS int64
	// Placements counts terminal placements by kind.
	PlacedFPGA, PlacedCPU int
	// Degraded counts jobs that fell back to CPU execution.
	Degraded int
	// FailedInstances lists FPGA instances that fail-stopped, ascending.
	FailedInstances []int
}

// Run schedules jobs under cfg and blocks until every job reaches a
// terminal status. It is the package's single entry point: the full trace
// is supplied up front because deterministic virtual-time admission needs
// the arrival order independent of host scheduling.
func Run(jobs []Job, cfg Config) (rep *Report, err error) {
	defer guardSimulator(&err)
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := range jobs {
		if err := validateJob(&jobs[i], i); err != nil {
			return nil, err
		}
	}
	s, err := newScheduler(jobs, cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

func validateJob(j *Job, id int) error {
	if j.Rel == nil {
		return fmt.Errorf("partserver: job %d has no relation", id)
	}
	if j.FanOut < 2 {
		return fmt.Errorf("partserver: job %d fan-out %d < 2", id, j.FanOut)
	}
	wantLayout := workload.RowLayout
	if j.Layout == partition.ColumnStore {
		wantLayout = workload.ColumnLayout
	}
	if j.Rel.Layout != wantLayout {
		return fmt.Errorf("partserver: job %d layout %v needs a %v relation, got %v", id, j.Layout, wantLayout, j.Rel.Layout)
	}
	if j.Probe != nil && j.Probe.Layout != wantLayout {
		return fmt.Errorf("partserver: job %d probe side layout mismatch: %v vs %v", id, j.Probe.Layout, wantLayout)
	}
	if j.Rel.Width != 8 || (j.Probe != nil && j.Probe.Width != 8) {
		return fmt.Errorf("partserver: job %d needs 8-byte tuples", id)
	}
	if j.ArrivalUS < 0 {
		return fmt.Errorf("partserver: job %d negative arrival %d", id, j.ArrivalUS)
	}
	if j.TimeoutUS < 0 || j.CancelAtUS < 0 {
		return fmt.Errorf("partserver: job %d negative timeout/cancel", id)
	}
	if _, err := circuitConfig(j); err != nil {
		return fmt.Errorf("partserver: job %d: %w", id, err)
	}
	return nil
}

// circuitConfig translates a job spec into a core circuit configuration —
// the batching key: jobs sharing it can run back-to-back on one instance
// without reconfiguration.
func circuitConfig(j *Job) (core.Config, error) {
	cfg := core.Config{
		NumPartitions: j.FanOut,
		TupleWidth:    8,
		Hash:          j.Hash,
		PadFraction:   0.5,
	}
	if j.Format == partition.PadMode {
		cfg.Format = core.PAD
	}
	if j.Layout == partition.ColumnStore {
		cfg.Layout = core.VRID
	}
	cfg = cfg.WithDefaults()
	return cfg, cfg.Validate()
}

// configKey is the comparable batching identity of a circuit configuration.
type configKey struct {
	fanOut int
	hash   bool
	format core.Format
	layout core.Layout
}

func keyOf(j *Job) configKey {
	k := configKey{fanOut: j.FanOut, hash: j.Hash}
	if j.Format == partition.PadMode {
		k.format = core.PAD
	}
	if j.Layout == partition.ColumnStore {
		k.layout = core.VRID
	}
	return k
}

// laneComp prefixes a causal-record component name with the configured lane
// ("hedge" + "fpga0" → "hedge.fpga0"). Called only at scheduler
// construction, never on the recording hot path.
func laneComp(lane, comp string) string {
	if lane == "" {
		return comp
	}
	return lane + "." + comp
}

// mix is splitmix64's finalizer, the seeded tie-breaking hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
