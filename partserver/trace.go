package partserver

import (
	"fpgapart/partition"
	"fpgapart/workload"
)

// TraceOptions shapes GenerateTrace's synthetic job mix.
type TraceOptions struct {
	// MinTuples/MaxTuples bound the per-job relation size (defaults
	// 1<<10 and 1<<14).
	MinTuples, MaxTuples int
	// JoinFraction is the fraction of jobs that carry a probe side
	// (default 0.25); the probe is twice the build size.
	JoinFraction float64
	// MeanGapUS is the mean virtual inter-arrival gap (default 500).
	MeanGapUS int64
	// TimeoutEvery > 0 gives every k-th job a tight dispatch timeout, to
	// exercise the timeout path (default 0: no timeouts).
	TimeoutEvery int
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.MinTuples == 0 {
		o.MinTuples = 1 << 10
	}
	if o.MaxTuples == 0 {
		o.MaxTuples = 1 << 14
	}
	if o.JoinFraction == 0 {
		o.JoinFraction = 0.25
	}
	if o.MeanGapUS == 0 {
		o.MeanGapUS = 500
	}
	return o
}

// GenerateTrace builds a deterministic multi-tenant job trace: n jobs with
// hash-derived sizes, fan-outs, modes and arrival gaps. The same (seed, n,
// opts) always yields the same trace — it is the shared workload of the
// perfbench scheduler suite, cmd/partserver, and the golden conformance
// test.
func GenerateTrace(seed uint64, n int, opts TraceOptions) ([]Job, error) {
	opts = opts.withDefaults()
	fanOuts := []int{4, 8, 16, 32, 64}
	jobs := make([]Job, 0, n)
	arrival := int64(0)
	for i := 0; i < n; i++ {
		draw := func(purpose uint64) uint64 {
			return mix(seed ^ mix(uint64(i)<<8|purpose))
		}
		span := opts.MaxTuples - opts.MinTuples + 1
		size := opts.MinTuples + int(draw(1)%uint64(span))
		j := Job{
			FanOut:    fanOuts[draw(2)%uint64(len(fanOuts))],
			Hash:      draw(3)%2 == 0,
			ArrivalUS: arrival,
		}
		if draw(4)%4 == 0 {
			j.Format = partition.PadMode
		}
		gen := workload.NewGenerator(int64(draw(5) >> 1))
		rel, err := gen.Relation(workload.Random, 8, size)
		if err != nil {
			return nil, err
		}
		isJoin := float64(draw(6)%1000)/1000 < opts.JoinFraction
		if !isJoin && draw(7)%4 == 0 {
			// Column-store (VRID) partition job. Join jobs stay row-layout:
			// the VRID payload is a position, not a join attribute.
			j.Layout = partition.ColumnStore
			rel = rel.ToColumns()
		}
		j.Rel = rel
		if isJoin {
			// The probe side cycles the build side's keys (a foreign-key
			// join), so the join produces matches deterministically.
			probe, err := workload.NewRelation(workload.RowLayout, 8, 2*size)
			if err != nil {
				return nil, err
			}
			for k := 0; k < probe.NumTuples; k++ {
				probe.SetTuple(k, rel.Key(k%size), uint32(draw(10)>>32)+uint32(k))
			}
			j.Probe = probe
		}
		if opts.TimeoutEvery > 0 && i%opts.TimeoutEvery == opts.TimeoutEvery-1 {
			j.TimeoutUS = 1 + int64(draw(8)%5)
		}
		jobs = append(jobs, j)
		arrival += int64(draw(9) % uint64(2*opts.MeanGapUS+1))
	}
	return jobs, nil
}
