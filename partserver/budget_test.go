package partserver

import (
	"testing"

	"fpgapart/internal/joincore"
	"fpgapart/internal/simtrace"
	"fpgapart/workload"
)

// budgetJobs builds a small join-job trace: each tenant joins a uniform
// build side against a skewed probe side.
func budgetJobs(t *testing.T, n int, budget int64) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		g := workload.NewGenerator(int64(100 + i))
		rel, err := g.Relation(workload.Random, 8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		probe, err := g.ZipfRelation(1.25, 1<<10, 8, 3000)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{
			Rel: rel, Probe: probe, FanOut: 16, Hash: true,
			ArrivalUS:         int64(i) * 50,
			MemoryBudgetBytes: budget,
		}
	}
	return jobs
}

// TestBudgetedJobsReproduceAndCharge runs the same join trace unbudgeted and
// under a tight per-tenant budget: results must be identical, the budgeted
// run must report spill traffic, be charged more virtual time for it, and
// surface the spill counter in its trace.
func TestBudgetedJobsReproduceAndCharge(t *testing.T) {
	cfg := func() Config {
		return Config{FPGAs: 1, Workers: 1, Seed: 9, Trace: simtrace.NewSession()}
	}

	free := cfg()
	repFree, err := Run(budgetJobs(t, 6, 0), free)
	if err != nil {
		t.Fatal(err)
	}

	// Budget below every per-partition build footprint (~2000/16 tuples per
	// partition) so each partition of every job spills.
	tight := int64(2000/16) * joincore.BuildTupleBytes / 2
	lim := cfg()
	repLim, err := Run(budgetJobs(t, 6, tight), lim)
	if err != nil {
		t.Fatal(err)
	}

	var spilled int64
	for i := range repLim.Results {
		rf, rl := &repFree.Results[i], &repLim.Results[i]
		if rf.Status != StatusDone || rl.Status != StatusDone {
			t.Fatalf("job %d: status %v / %v", i, rf.Status, rl.Status)
		}
		if rl.Matches != rf.Matches || rl.Checksum != rf.Checksum {
			t.Fatalf("job %d: budgeted join diverged: %d/%08x vs %d/%08x",
				i, rl.Matches, rl.Checksum, rf.Matches, rf.Checksum)
		}
		if rf.SpilledBytes != 0 {
			t.Fatalf("job %d: unbudgeted run reported spill %d", i, rf.SpilledBytes)
		}
		if rl.SpilledBytes == 0 {
			t.Fatalf("job %d: tight budget did not spill", i)
		}
		if rl.ExecUS <= rf.ExecUS {
			t.Fatalf("job %d: spill traffic not charged: %dµs vs %dµs", i, rl.ExecUS, rf.ExecUS)
		}
		spilled += rl.SpilledBytes
	}
	if repLim.MakespanUS <= repFree.MakespanUS {
		t.Fatalf("budgeted makespan %d not above unbudgeted %d", repLim.MakespanUS, repFree.MakespanUS)
	}

	// The spill counter appears only on the budgeted run's trace.
	find := func(s *simtrace.Session) (int64, bool) {
		for _, m := range s.Metrics.Snapshot() {
			if m.Name == "sched.mem_spilled_bytes" {
				return m.Value, true
			}
		}
		return 0, false
	}
	if _, ok := find(free.Trace); ok {
		t.Fatal("unbudgeted trace contains sched.mem_spilled_bytes")
	}
	got, ok := find(lim.Trace)
	if !ok || got != spilled {
		t.Fatalf("sched.mem_spilled_bytes = %d,%v; want %d", got, ok, spilled)
	}
}

// TestBudgetedJobsDeterministic reruns a budgeted trace and requires
// identical reports, spill accounting included.
func TestBudgetedJobsDeterministic(t *testing.T) {
	run := func() *Report {
		rep, err := Run(budgetJobs(t, 4, 4096), Config{FPGAs: 1, Workers: 1, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Results {
		ra, rb := &a.Results[i], &b.Results[i]
		if ra.SpilledBytes != rb.SpilledBytes || ra.MaxJoinDepth != rb.MaxJoinDepth ||
			ra.Checksum != rb.Checksum || ra.ExecUS != rb.ExecUS {
			t.Fatalf("job %d not reproducible:\n%+v\nvs\n%+v", i, ra, rb)
		}
	}
}
