package codec

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRLERoundTrip checks that compress → validate → decompress is the
// identity on arbitrary key columns (the fuzzer's bytes reinterpreted as
// little-endian uint32 keys, trailing remainder dropped).
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{7, 0, 0, 42}, 64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := make([]uint32, len(data)/4)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(data[i*4:])
		}
		c := CompressRLE(keys)
		if err := c.Validate(); err != nil {
			t.Fatalf("compressed column invalid: %v", err)
		}
		if c.N != len(keys) {
			t.Fatalf("N = %d, want %d", c.N, len(keys))
		}
		got := c.Decompress()
		if len(got) != len(keys) {
			t.Fatalf("decompressed %d values, want %d", len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("value %d: got %d, want %d", i, got[i], keys[i])
			}
		}
	})
}
