// Package codec provides the lightweight column compression schemes that
// the paper's discussion section pairs with FPGA processing (Section 6:
// compressed columns are the de-facto standard for analytical workloads,
// and decompression "can be done for free on the FPGA as the first step of
// a processing pipeline"). The partitioner consumes RLE-compressed key
// columns directly — see partition.FPGACompressed — turning the saved read
// bandwidth into partitioning throughput on the bandwidth-starved link.
package codec

import (
	"fmt"
	"sort"
)

// Run is one RLE run: Length consecutive occurrences of Value.
type Run struct {
	Value  uint32
	Length uint32
}

// RunBytes is the encoded size of one run (4 B value + 4 B length).
const RunBytes = 8

// RLEColumn is a run-length-encoded uint32 column.
type RLEColumn struct {
	Runs []Run
	// N is the decompressed value count.
	N int
}

// CompressRLE encodes keys.
func CompressRLE(keys []uint32) *RLEColumn {
	c := &RLEColumn{N: len(keys)}
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] && uint32(j-i) < ^uint32(0) {
			j++
		}
		c.Runs = append(c.Runs, Run{Value: keys[i], Length: uint32(j - i)})
		i = j
	}
	return c
}

// Decompress returns the original column.
func (c *RLEColumn) Decompress() []uint32 {
	out := make([]uint32, 0, c.N)
	for _, r := range c.Runs {
		for k := uint32(0); k < r.Length; k++ {
			out = append(out, r.Value)
		}
	}
	return out
}

// CompressedBytes returns the encoded size.
func (c *RLEColumn) CompressedBytes() int { return len(c.Runs) * RunBytes }

// UncompressedBytes returns the raw column size.
func (c *RLEColumn) UncompressedBytes() int { return c.N * 4 }

// Ratio returns uncompressed/compressed size; > 1 means the encoding saves
// space (RLE loses on high-cardinality unsorted data, where every value is
// its own run).
func (c *RLEColumn) Ratio() float64 {
	if c.CompressedBytes() == 0 {
		return 0
	}
	return float64(c.UncompressedBytes()) / float64(c.CompressedBytes())
}

// Validate checks internal consistency (run lengths sum to N, no empty
// runs).
func (c *RLEColumn) Validate() error {
	var total int64
	for i, r := range c.Runs {
		if r.Length == 0 {
			return fmt.Errorf("codec: empty run at %d", i)
		}
		total += int64(r.Length)
	}
	if total != int64(c.N) {
		return fmt.Errorf("codec: runs cover %d values, N = %d", total, c.N)
	}
	return nil
}

// DictColumn is a dictionary-encoded uint32 column with bit-packed codes —
// the scheme that wins where RLE loses (high cardinality, unsorted).
type DictColumn struct {
	// Dict maps code → value, sorted ascending.
	Dict []uint32
	// Packed holds N codes of Bits bits each, little-endian within words.
	Packed []uint64
	Bits   uint
	N      int
}

// CompressDict encodes keys with a sorted dictionary and bit-packed codes.
func CompressDict(keys []uint32) *DictColumn {
	seen := map[uint32]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	dict := make([]uint32, 0, len(seen))
	for k := range seen {
		dict = append(dict, k)
	}
	sortUint32(dict)
	code := make(map[uint32]uint32, len(dict))
	for i, v := range dict {
		code[v] = uint32(i)
	}
	bits := uint(1)
	for 1<<bits < len(dict) {
		bits++
	}
	c := &DictColumn{Dict: dict, Bits: bits, N: len(keys)}
	c.Packed = make([]uint64, (uint(len(keys))*bits+63)/64)
	for i, k := range keys {
		c.put(i, code[k])
	}
	return c
}

func (c *DictColumn) put(i int, code uint32) {
	bit := uint(i) * c.Bits
	word, off := bit/64, bit%64
	c.Packed[word] |= uint64(code) << off
	if off+c.Bits > 64 {
		c.Packed[word+1] |= uint64(code) >> (64 - off)
	}
}

// Get returns value i.
func (c *DictColumn) Get(i int) uint32 {
	bit := uint(i) * c.Bits
	word, off := bit/64, bit%64
	v := c.Packed[word] >> off
	if off+c.Bits > 64 {
		v |= c.Packed[word+1] << (64 - off)
	}
	return c.Dict[v&(1<<c.Bits-1)]
}

// Decompress returns the original column.
func (c *DictColumn) Decompress() []uint32 {
	out := make([]uint32, c.N)
	for i := range out {
		out[i] = c.Get(i)
	}
	return out
}

// CompressedBytes returns the encoded size (dictionary + packed codes).
func (c *DictColumn) CompressedBytes() int {
	return len(c.Dict)*4 + len(c.Packed)*8
}

// Ratio returns uncompressed/compressed size.
func (c *DictColumn) Ratio() float64 {
	if c.CompressedBytes() == 0 {
		return 0
	}
	return float64(c.N*4) / float64(c.CompressedBytes())
}

func sortUint32(xs []uint32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
