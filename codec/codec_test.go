package codec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRLERoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{5},
		{1, 1, 1, 1},
		{1, 2, 3, 4},
		{7, 7, 3, 3, 3, 7},
		{0, 0xFFFFFFFF, 0xFFFFFFFF},
	}
	for i, keys := range cases {
		c := CompressRLE(keys)
		if err := c.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := c.Decompress()
		if len(got) != len(keys) {
			t.Fatalf("case %d: %d values, want %d", i, len(got), len(keys))
		}
		for j := range keys {
			if got[j] != keys[j] {
				t.Fatalf("case %d: value %d = %d, want %d", i, j, got[j], keys[j])
			}
		}
	}
}

func TestRLERunStructure(t *testing.T) {
	c := CompressRLE([]uint32{4, 4, 4, 9, 9, 4})
	want := []Run{{4, 3}, {9, 2}, {4, 1}}
	if len(c.Runs) != len(want) {
		t.Fatalf("runs: %v", c.Runs)
	}
	for i := range want {
		if c.Runs[i] != want[i] {
			t.Fatalf("run %d = %v, want %v", i, c.Runs[i], want[i])
		}
	}
}

func TestRLERatio(t *testing.T) {
	// 1000 identical values: 1 run (8 B) vs 4000 B raw → 500×.
	keys := make([]uint32, 1000)
	c := CompressRLE(keys)
	if c.Ratio() != 500 {
		t.Errorf("Ratio = %v, want 500", c.Ratio())
	}
	// Unique values: each an 8 B run vs 4 B raw → 0.5×.
	for i := range keys {
		keys[i] = uint32(i)
	}
	if r := CompressRLE(keys).Ratio(); r != 0.5 {
		t.Errorf("unique Ratio = %v, want 0.5", r)
	}
	if (&RLEColumn{}).Ratio() != 0 {
		t.Error("empty column ratio should be 0")
	}
}

func TestRLEValidate(t *testing.T) {
	bad := &RLEColumn{Runs: []Run{{1, 0}}, N: 0}
	if bad.Validate() == nil {
		t.Error("empty run accepted")
	}
	short := &RLEColumn{Runs: []Run{{1, 2}}, N: 3}
	if short.Validate() == nil {
		t.Error("undercounting runs accepted")
	}
}

func TestDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint32, 10000)
	for i := range keys {
		keys[i] = uint32(rng.Intn(300)) * 7
	}
	c := CompressDict(keys)
	got := c.Decompress()
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], keys[i])
		}
	}
	// 300 distinct values → 9 bits per code.
	if c.Bits != 9 {
		t.Errorf("Bits = %d, want 9", c.Bits)
	}
	if c.Ratio() < 3 {
		t.Errorf("dict ratio = %v, want > 3 for 9-bit codes", c.Ratio())
	}
}

func TestDictGetCrossesWordBoundaries(t *testing.T) {
	// 9-bit codes cross uint64 boundaries every few values.
	keys := make([]uint32, 600)
	for i := range keys {
		keys[i] = uint32(i % 300)
	}
	c := CompressDict(keys)
	for i, want := range keys {
		if got := c.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestDictSingleValue(t *testing.T) {
	c := CompressDict([]uint32{42, 42, 42})
	if c.Bits != 1 {
		t.Errorf("Bits = %d for singleton dictionary", c.Bits)
	}
	for i := 0; i < 3; i++ {
		if c.Get(i) != 42 {
			t.Fatal("singleton decode failed")
		}
	}
}

func TestPropertyBothCodecsRoundTrip(t *testing.T) {
	f := func(seed int64, cardRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		card := int(cardRaw) + 1
		n := rng.Intn(3000)
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(rng.Intn(card))
		}
		rle := CompressRLE(keys)
		if rle.Validate() != nil {
			return false
		}
		gotR := rle.Decompress()
		var dictOK = true
		if n > 0 {
			dict := CompressDict(keys)
			gotD := dict.Decompress()
			for i := range keys {
				if gotD[i] != keys[i] {
					dictOK = false
				}
			}
		}
		for i := range keys {
			if gotR[i] != keys[i] {
				return false
			}
		}
		return dictOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
