package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ZipfGenerator draws values in [1, n] with probability proportional to
// 1/rank^s for any skew exponent s ≥ 0 (the paper skews relation S with Zipf
// factors from 0.25 to 1.75, Section 5.4).
//
// The standard library's rand.Zipf requires s > 1, so we implement
// rejection-inversion sampling (Hörmann & Derflinger, "Rejection-inversion to
// generate variates from monotone discrete distributions"), which is O(1) per
// sample, needs no table, and supports the full exponent range including the
// uniform case s = 0 and the harmonic case s = 1.
type ZipfGenerator struct {
	rng *rand.Rand
	s   float64
	n   int

	hIntegralX1               float64
	hIntegralNumberOfElements float64
	sCut                      float64
}

// NewZipfGenerator returns a generator over [1, n] with exponent s.
func NewZipfGenerator(rng *rand.Rand, s float64, n int) (*ZipfGenerator, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: Zipf alphabet size %d < 1", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("workload: Zipf exponent %v < 0", s)
	}
	z := &ZipfGenerator{rng: rng, s: s, n: n}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumberOfElements = z.hIntegral(float64(n) + 0.5)
	z.sCut = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z, nil
}

// Next returns the next sample in [1, n], where 1 is the most frequent
// value.
func (z *ZipfGenerator) Next() int {
	if z.n == 1 {
		return 1
	}
	for {
		u := z.hIntegralNumberOfElements +
			z.rng.Float64()*(z.hIntegralX1-z.hIntegralNumberOfElements)
		x := z.hIntegralInverse(u)
		k := int(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if float64(k)-x <= z.sCut || u >= z.hIntegral(float64(k)+0.5)-z.h(float64(k)) {
			return k
		}
	}
}

// hIntegral is the antiderivative of h(x) = x^-s, written via helper2 to stay
// accurate as s approaches 1.
func (z *ZipfGenerator) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// h is the unnormalized density x^-s.
func (z *ZipfGenerator) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegralInverse inverts hIntegral.
func (z *ZipfGenerator) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		// Round-off protection: t must stay in the domain of log1p.
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a Taylor fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3 - x*x*x/4
}

// helper2 computes expm1(x)/x with a Taylor fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6 + x*x*x/24
}
