package workload

import (
	"fmt"
	"math/rand"
)

// Distribution identifies one of the four key distributions of Section 3.2
// (following Richter et al.), plus Zipf skew used in Section 5.4.
type Distribution int

const (
	// Linear: unique keys in [1, N].
	Linear Distribution = iota
	// Random: pseudo-random keys over the full 32-bit range (duplicates
	// possible, as with the C rand() generation in the paper).
	Random
	// Grid: every byte of the 4-byte key takes a value in [1, 128]; the
	// least significant byte increments first. Resembles address patterns
	// and short strings.
	Grid
	// ReverseGrid: like Grid, but the most significant byte increments
	// first.
	ReverseGrid
	// Zipf: keys drawn from [1, alphabet] with Zipf-distributed frequency.
	Zipf
)

func (d Distribution) String() string {
	switch d {
	case Linear:
		return "linear"
	case Random:
		return "random"
	case Grid:
		return "grid"
	case ReverseGrid:
		return "reverse-grid"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// GridKey returns the i-th key (0-based) of the grid distribution: a base-128
// counter over the 4 key bytes, each byte in [1, 128], least significant byte
// fastest.
func GridKey(i int) uint32 {
	var key uint32
	for b := 0; b < 4; b++ {
		digit := uint32(i%128) + 1 // each byte cycles through 1..128
		key |= digit << (8 * b)
		i /= 128
	}
	return key
}

// ReverseGridKey is GridKey with the most significant byte incrementing
// first.
func ReverseGridKey(i int) uint32 {
	var key uint32
	for b := 3; b >= 0; b-- {
		digit := uint32(i%128) + 1
		key |= digit << (8 * b)
		i /= 128
	}
	return key
}

// Generator produces relations with a given key distribution. It is
// deterministic for a given seed so experiments are reproducible.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Keys fills out with n keys drawn from the distribution. For Zipf, use
// ZipfKeys which takes the skew parameters.
func (g *Generator) Keys(d Distribution, out []uint32) error {
	n := len(out)
	switch d {
	case Linear:
		for i := range out {
			out[i] = uint32(i + 1)
		}
		// The paper partitions unsorted relations; shuffle so that the
		// linear keys do not arrive in partition order.
		g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	case Random:
		for i := range out {
			out[i] = g.rng.Uint32()
		}
	case Grid:
		for i := range out {
			out[i] = GridKey(i)
		}
		g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	case ReverseGrid:
		for i := range out {
			out[i] = ReverseGridKey(i)
		}
		g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	default:
		return fmt.Errorf("workload: Keys does not support distribution %v", d)
	}
	return nil
}

// Relation generates a row-layout relation of n tuples of the given width
// whose keys follow distribution d. Payloads are the tuple index, which lets
// tests verify that partitioning preserved <key, payload> pairs.
func (g *Generator) Relation(d Distribution, width, n int) (*Relation, error) {
	keys := make([]uint32, n)
	if err := g.Keys(d, keys); err != nil {
		return nil, err
	}
	return FromKeys(keys, width)
}

// ZipfRelation generates a relation whose keys are Zipf-distributed over an
// alphabet of distinct keys [1, alphabet] with the given skew factor
// (Section 5.4 skews relation S with factors 0.25–1.75).
func (g *Generator) ZipfRelation(factor float64, alphabet, width, n int) (*Relation, error) {
	z, err := NewZipfGenerator(g.rng, factor, alphabet)
	if err != nil {
		return nil, err
	}
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(z.Next()) // already in [1, alphabet]
	}
	return FromKeys(keys, width)
}

// FromKeys builds a row-layout relation of the given tuple width from a key
// slice; payload of tuple i is i.
func FromKeys(keys []uint32, width int) (*Relation, error) {
	r, err := NewRelation(RowLayout, width, len(keys))
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		r.SetTuple(i, k, uint32(i))
	}
	return r, nil
}
