package workload

import "testing"

func TestSpecsMatchTable4(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("got %d workloads, want 5", len(specs))
	}
	a := specs[0]
	if a.ID != WorkloadA || a.TuplesR != 128e6 || a.TuplesS != 128e6 || a.Distribution != Linear {
		t.Errorf("workload A spec wrong: %+v", a)
	}
	b := specs[1]
	if b.TuplesR != 16<<20 || b.TuplesS != 256<<20 || b.Distribution != Linear {
		t.Errorf("workload B spec wrong: %+v", b)
	}
	if specs[2].Distribution != Random || specs[3].Distribution != Grid || specs[4].Distribution != ReverseGrid {
		t.Errorf("C/D/E distributions wrong: %+v", specs[2:])
	}
}

func TestSpecLookup(t *testing.T) {
	s, err := Spec(WorkloadC)
	if err != nil || s.ID != WorkloadC {
		t.Errorf("Spec(C) = %+v, %v", s, err)
	}
	if _, err := Spec("Z"); err == nil {
		t.Error("Spec(Z) succeeded, want error")
	}
}

func TestScaledPreservesRatio(t *testing.T) {
	b, _ := Spec(WorkloadB)
	s := b.Scaled(1.0 / 16)
	if s.TuplesR != 1<<20 || s.TuplesS != 16<<20 {
		t.Errorf("scaled B = %d/%d, want %d/%d", s.TuplesR, s.TuplesS, 1<<20, 16<<20)
	}
	// Degenerate scales are ignored rather than producing empty relations.
	if b.Scaled(0).TuplesR != b.TuplesR || b.Scaled(2).TuplesR != b.TuplesR {
		t.Error("out-of-range scale should be a no-op")
	}
	tiny := WorkloadSpec{ID: "t", TuplesR: 2, TuplesS: 2, Distribution: Linear}
	if got := tiny.Scaled(0.001); got.TuplesR < 1 || got.TuplesS < 1 {
		t.Errorf("scaling must keep at least one tuple: %+v", got)
	}
}

func TestGenerateLinearEveryProbeMatches(t *testing.T) {
	spec := WorkloadSpec{ID: "test", TuplesR: 1 << 12, TuplesS: 1 << 13, Distribution: Linear}
	in, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	if in.R.NumTuples != 1<<12 || in.S.NumTuples != 1<<13 {
		t.Fatalf("sizes: %d %d", in.R.NumTuples, in.S.NumTuples)
	}
	rKeys := make(map[uint32]bool, in.R.NumTuples)
	for i := 0; i < in.R.NumTuples; i++ {
		rKeys[in.R.Key(i)] = true
	}
	for i := 0; i < in.S.NumTuples; i++ {
		if !rKeys[in.S.Key(i)] {
			t.Fatalf("S key %d at %d has no R match", in.S.Key(i), i)
		}
	}
}

func TestGenerateOtherDistributionsProbesHit(t *testing.T) {
	for _, d := range []Distribution{Random, Grid, ReverseGrid} {
		spec := WorkloadSpec{ID: "test", TuplesR: 4096, TuplesS: 4096, Distribution: d}
		in, err := spec.Generate(11)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		rKeys := make(map[uint32]bool)
		for i := 0; i < in.R.NumTuples; i++ {
			rKeys[in.R.Key(i)] = true
		}
		for i := 0; i < in.S.NumTuples; i++ {
			if !rKeys[in.S.Key(i)] {
				t.Fatalf("%v: S key %#x has no R match", d, in.S.Key(i))
			}
		}
	}
}

func TestGenerateSkewedKeysInRange(t *testing.T) {
	spec := WorkloadSpec{ID: "skew", TuplesR: 1 << 12, TuplesS: 1 << 12, Distribution: Linear}
	in, err := spec.GenerateSkewed(13, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.S.NumTuples; i++ {
		k := in.S.Key(i)
		if k < 1 || k > uint32(spec.TuplesR) {
			t.Fatalf("skewed S key %d out of R's key range", k)
		}
	}
	// Skewed S must have a dominant key.
	counts := make(map[uint32]int)
	max := 0
	for i := 0; i < in.S.NumTuples; i++ {
		counts[in.S.Key(i)]++
		if counts[in.S.Key(i)] > max {
			max = counts[in.S.Key(i)]
		}
	}
	if max < in.S.NumTuples/100 {
		t.Errorf("Zipf(1.0) S: hottest key only %d of %d", max, in.S.NumTuples)
	}
}

func TestGenerateRejectsZipfSpec(t *testing.T) {
	spec := WorkloadSpec{ID: "bad", TuplesR: 8, TuplesS: 8, Distribution: Zipf}
	if _, err := spec.Generate(1); err == nil {
		t.Error("Generate with Zipf distribution succeeded, want error")
	}
}
