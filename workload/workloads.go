package workload

import "fmt"

// WorkloadID names one of the five join workloads of Table 4.
type WorkloadID string

const (
	WorkloadA WorkloadID = "A" // 128M ⋈ 128M, linear keys
	WorkloadB WorkloadID = "B" // 16·2^20 ⋈ 256·2^20, linear keys
	WorkloadC WorkloadID = "C" // 128M ⋈ 128M, random keys
	WorkloadD WorkloadID = "D" // 128M ⋈ 128M, grid keys
	WorkloadE WorkloadID = "E" // 128M ⋈ 128M, reverse grid keys
)

// WorkloadSpec describes a join workload: the sizes of the build relation R
// and probe relation S and their key distribution (Table 4 of the paper).
type WorkloadSpec struct {
	ID           WorkloadID
	TuplesR      int
	TuplesS      int
	Distribution Distribution
}

// Specs returns the five workloads of Table 4 at full paper scale.
func Specs() []WorkloadSpec {
	return []WorkloadSpec{
		{WorkloadA, 128e6, 128e6, Linear},
		{WorkloadB, 16 << 20, 256 << 20, Linear},
		{WorkloadC, 128e6, 128e6, Random},
		{WorkloadD, 128e6, 128e6, Grid},
		{WorkloadE, 128e6, 128e6, ReverseGrid},
	}
}

// Spec returns the Table 4 spec for the given id.
func Spec(id WorkloadID) (WorkloadSpec, error) {
	for _, s := range Specs() {
		if s.ID == id {
			return s, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("workload: unknown workload %q", id)
}

// Scaled returns a copy of the spec with both relation sizes divided by
// 1/scale (scale in (0, 1]); the experiment harness uses this to run the
// paper's workloads at laptop scale while preserving the R:S ratio.
func (w WorkloadSpec) Scaled(scale float64) WorkloadSpec {
	if scale <= 0 || scale > 1 {
		return w
	}
	w.TuplesR = int(float64(w.TuplesR) * scale)
	w.TuplesS = int(float64(w.TuplesS) * scale)
	if w.TuplesR < 1 {
		w.TuplesR = 1
	}
	if w.TuplesS < 1 {
		w.TuplesS = 1
	}
	return w
}

// JoinInput is a generated pair of relations ready to be joined. For linear
// workloads (A, B) the key spaces are constructed so that every S tuple has
// exactly one R match when |R| ≤ |S| key range, mirroring the primary-key /
// foreign-key joins the paper evaluates.
type JoinInput struct {
	Spec WorkloadSpec
	R    *Relation
	S    *Relation
}

// Generate materializes the workload with 8-byte tuples (the width used in
// all join experiments of the paper, Section 5).
func (w WorkloadSpec) Generate(seed int64) (*JoinInput, error) {
	return w.GenerateWidth(seed, Width8)
}

// GenerateWidth materializes the workload with the given tuple width.
func (w WorkloadSpec) GenerateWidth(seed int64, width int) (*JoinInput, error) {
	g := NewGenerator(seed)
	var r, s *Relation
	var err error
	switch w.Distribution {
	case Linear:
		// R has unique keys [1, |R|]; S draws keys from the same range so
		// that every probe finds a match (foreign-key join).
		r, err = g.Relation(Linear, width, w.TuplesR)
		if err != nil {
			return nil, err
		}
		sKeys := make([]uint32, w.TuplesS)
		for i := range sKeys {
			sKeys[i] = uint32(g.rng.Intn(w.TuplesR)) + 1
		}
		s, err = FromKeys(sKeys, width)
		if err != nil {
			return nil, err
		}
	case Random, Grid, ReverseGrid:
		r, err = g.Relation(w.Distribution, width, w.TuplesR)
		if err != nil {
			return nil, err
		}
		// S reuses R's key population (shuffled, possibly repeated) so that
		// probes hit; the distribution shape of the keys is what the
		// experiment varies.
		sKeys := make([]uint32, w.TuplesS)
		for i := range sKeys {
			sKeys[i] = r.Key(g.rng.Intn(w.TuplesR))
		}
		s, err = FromKeys(sKeys, width)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("workload: %v not supported as a join workload", w.Distribution)
	}
	return &JoinInput{Spec: w, R: r, S: s}, nil
}

// GenerateSkewed materializes the workload but draws S's keys from a Zipf
// distribution over R's key space with the given factor (Figure 13: relation
// S of workload A is skewed).
func (w WorkloadSpec) GenerateSkewed(seed int64, zipfFactor float64) (*JoinInput, error) {
	g := NewGenerator(seed)
	r, err := g.Relation(Linear, Width8, w.TuplesR)
	if err != nil {
		return nil, err
	}
	s, err := g.ZipfRelation(zipfFactor, w.TuplesR, Width8, w.TuplesS)
	if err != nil {
		return nil, err
	}
	return &JoinInput{Spec: w, R: r, S: s}, nil
}
