// Package workload generates the relations and key distributions used in the
// paper's evaluation (Sections 3.2 and 5): linear, random, grid and reverse
// grid key distributions, Zipf-skewed foreign keys, and Workloads A–E of
// Table 4. Relations are flat []uint64 buffers in either row (RID) or column
// (VRID) layout so that both the CPU partitioner and the FPGA simulator can
// scan them as streams of 64-byte cache lines.
package workload

import (
	"fmt"
)

// Layout describes how tuples are materialized in memory (Section 4.5).
type Layout int

const (
	// RowLayout ("RID" mode): tuples reside as <key, payload> records.
	RowLayout Layout = iota
	// ColumnLayout ("VRID" mode): keys and payloads are stored in separate
	// arrays, associated only by position. The FPGA partitioner reads only
	// the key array and appends a virtual record ID.
	ColumnLayout
)

func (l Layout) String() string {
	switch l {
	case RowLayout:
		return "RID"
	case ColumnLayout:
		return "VRID"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Tuple widths supported by the partitioner circuit (Section 4.4).
const (
	Width8  = 8
	Width16 = 16
	Width32 = 32
	Width64 = 64
)

// CacheLineBytes is the granularity at which the Xeon+FPGA platform moves
// data over QPI and the unit the partitioner circuit consumes per cycle.
const CacheLineBytes = 64

// Relation is an in-memory relation of fixed-width tuples.
//
// In RowLayout, Data holds NumTuples records of Width bytes each; the first
// 4 bytes of every record are the key (matching the <4B key, 4B payload>
// scheme of the paper for 8-byte tuples; wider tuples pad the payload). In
// ColumnLayout, Keys holds the key column and Payloads the payload column.
type Relation struct {
	Layout    Layout
	Width     int // tuple width in bytes: 8, 16, 32 or 64
	NumTuples int

	// Data is the row-layout buffer; one tuple occupies Width/8 words.
	// The key of tuple i is uint32(Data[i*stride]).
	Data []uint64

	// Keys and Payloads are the column-layout buffers.
	Keys     []uint32
	Payloads []uint32
}

// Stride returns the number of 64-bit words per tuple in row layout.
func (r *Relation) Stride() int { return r.Width / 8 }

// Key returns the 4-byte join key of tuple i under either layout.
func (r *Relation) Key(i int) uint32 {
	if r.Layout == ColumnLayout {
		return r.Keys[i]
	}
	return uint32(r.Data[i*r.Stride()])
}

// Payload returns the 4-byte payload of tuple i under either layout. For row
// layout the payload is the upper half of the first word.
func (r *Relation) Payload(i int) uint32 {
	if r.Layout == ColumnLayout {
		return r.Payloads[i]
	}
	return uint32(r.Data[i*r.Stride()] >> 32)
}

// Bytes returns the total size of the relation's key-bearing data in bytes:
// the full record stream for row layout, the key column for column layout
// (what the FPGA actually reads in VRID mode).
func (r *Relation) Bytes() int {
	if r.Layout == ColumnLayout {
		return 4 * r.NumTuples
	}
	return r.Width * r.NumTuples
}

// CacheLines returns the number of 64-byte cache lines the key-bearing data
// occupies, rounded up.
func (r *Relation) CacheLines() int {
	return (r.Bytes() + CacheLineBytes - 1) / CacheLineBytes
}

// TuplesPerCacheLine returns how many tuples fit in one 64-byte line.
func (r *Relation) TuplesPerCacheLine() int { return CacheLineBytes / r.Width }

// NewRelation allocates an empty relation with the given shape. Width must be
// one of 8, 16, 32, 64. The caller fills keys via SetTuple or the generators
// in this package.
func NewRelation(layout Layout, width, numTuples int) (*Relation, error) {
	switch width {
	case Width8, Width16, Width32, Width64:
	default:
		return nil, fmt.Errorf("workload: unsupported tuple width %d (want 8, 16, 32 or 64)", width)
	}
	if numTuples < 0 {
		return nil, fmt.Errorf("workload: negative tuple count %d", numTuples)
	}
	r := &Relation{Layout: layout, Width: width, NumTuples: numTuples}
	if layout == ColumnLayout {
		r.Keys = make([]uint32, numTuples)
		r.Payloads = make([]uint32, numTuples)
	} else {
		r.Data = make([]uint64, numTuples*width/8)
	}
	return r, nil
}

// SetTuple stores key and payload into tuple slot i. For row layouts wider
// than 8 bytes the padding words are left zero, mirroring the fixed record
// shapes the circuit configurations expect.
func (r *Relation) SetTuple(i int, key, payload uint32) {
	if r.Layout == ColumnLayout {
		r.Keys[i] = key
		r.Payloads[i] = payload
		return
	}
	r.Data[i*r.Stride()] = uint64(payload)<<32 | uint64(key)
}

// Clone returns a deep copy of the relation; generators hand out relations
// that experiments mutate (partitioning is destructive on the output side,
// never on the input, but joins re-partition with different fan-outs).
func (r *Relation) Clone() *Relation {
	c := *r
	if r.Data != nil {
		c.Data = append([]uint64(nil), r.Data...)
	}
	if r.Keys != nil {
		c.Keys = append([]uint32(nil), r.Keys...)
	}
	if r.Payloads != nil {
		c.Payloads = append([]uint32(nil), r.Payloads...)
	}
	return &c
}

// ToColumns converts a row-layout relation into a column-layout clone. Used
// by the VRID experiments, which assume a column store.
func (r *Relation) ToColumns() *Relation {
	c := &Relation{Layout: ColumnLayout, Width: r.Width, NumTuples: r.NumTuples}
	c.Keys = make([]uint32, r.NumTuples)
	c.Payloads = make([]uint32, r.NumTuples)
	for i := 0; i < r.NumTuples; i++ {
		c.Keys[i] = r.Key(i)
		c.Payloads[i] = r.Payload(i)
	}
	return c
}
