package workload

import (
	"testing"
	"testing/quick"
)

func TestNewRelationWidths(t *testing.T) {
	for _, w := range []int{8, 16, 32, 64} {
		r, err := NewRelation(RowLayout, w, 10)
		if err != nil {
			t.Fatalf("NewRelation(width=%d): %v", w, err)
		}
		if got := len(r.Data); got != 10*w/8 {
			t.Errorf("width %d: len(Data) = %d, want %d", w, got, 10*w/8)
		}
		if r.Stride() != w/8 {
			t.Errorf("width %d: stride = %d", w, r.Stride())
		}
		if r.TuplesPerCacheLine() != 64/w {
			t.Errorf("width %d: tuples/line = %d", w, r.TuplesPerCacheLine())
		}
	}
}

func TestNewRelationRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 4, 12, 128, -8} {
		if _, err := NewRelation(RowLayout, w, 1); err == nil {
			t.Errorf("NewRelation(width=%d) succeeded, want error", w)
		}
	}
	if _, err := NewRelation(RowLayout, 8, -1); err == nil {
		t.Error("NewRelation(n=-1) succeeded, want error")
	}
}

func TestSetGetTupleRoundTrip(t *testing.T) {
	f := func(key, payload uint32) bool {
		for _, w := range []int{8, 16, 32, 64} {
			r, _ := NewRelation(RowLayout, w, 3)
			r.SetTuple(1, key, payload)
			if r.Key(1) != key || r.Payload(1) != payload {
				return false
			}
			// Neighbours untouched.
			if r.Key(0) != 0 || r.Key(2) != 0 {
				return false
			}
		}
		c, _ := NewRelation(ColumnLayout, 8, 3)
		c.SetTuple(2, key, payload)
		return c.Key(2) == key && c.Payload(2) == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesAndCacheLines(t *testing.T) {
	r, _ := NewRelation(RowLayout, 8, 1000)
	if r.Bytes() != 8000 {
		t.Errorf("Bytes = %d, want 8000", r.Bytes())
	}
	if r.CacheLines() != 125 {
		t.Errorf("CacheLines = %d, want 125", r.CacheLines())
	}
	// Column layout counts only the key column (what VRID mode reads).
	c, _ := NewRelation(ColumnLayout, 8, 1000)
	if c.Bytes() != 4000 {
		t.Errorf("column Bytes = %d, want 4000", c.Bytes())
	}
	// Rounding up of partial lines.
	r2, _ := NewRelation(RowLayout, 8, 9)
	if r2.CacheLines() != 2 {
		t.Errorf("CacheLines(9 tuples) = %d, want 2", r2.CacheLines())
	}
}

func TestCloneIsDeep(t *testing.T) {
	r, _ := NewRelation(RowLayout, 8, 4)
	r.SetTuple(0, 7, 9)
	c := r.Clone()
	c.SetTuple(0, 100, 200)
	if r.Key(0) != 7 || r.Payload(0) != 9 {
		t.Error("Clone shares row storage with original")
	}
	col, _ := NewRelation(ColumnLayout, 8, 4)
	col.SetTuple(1, 5, 6)
	cc := col.Clone()
	cc.SetTuple(1, 50, 60)
	if col.Key(1) != 5 || col.Payload(1) != 6 {
		t.Error("Clone shares column storage with original")
	}
}

func TestToColumnsPreservesTuples(t *testing.T) {
	g := NewGenerator(1)
	r, err := g.Relation(Random, 8, 257)
	if err != nil {
		t.Fatal(err)
	}
	c := r.ToColumns()
	if c.Layout != ColumnLayout || c.NumTuples != r.NumTuples {
		t.Fatalf("ToColumns shape: %+v", c)
	}
	for i := 0; i < r.NumTuples; i++ {
		if c.Key(i) != r.Key(i) || c.Payload(i) != r.Payload(i) {
			t.Fatalf("tuple %d differs after ToColumns", i)
		}
	}
}

func TestLayoutString(t *testing.T) {
	if RowLayout.String() != "RID" || ColumnLayout.String() != "VRID" {
		t.Errorf("layout strings: %v %v", RowLayout, ColumnLayout)
	}
	if Layout(9).String() != "Layout(9)" {
		t.Errorf("unknown layout string: %v", Layout(9))
	}
}
