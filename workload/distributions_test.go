package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGridKeyBytesInRange(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		k := GridKey(i)
		for b := 0; b < 4; b++ {
			v := (k >> (8 * b)) & 0xff
			if v < 1 || v > 128 {
				t.Fatalf("GridKey(%d) byte %d = %d, want 1..128", i, b, v)
			}
		}
	}
}

func TestGridKeyLSBIncrementsFirst(t *testing.T) {
	// The least significant byte cycles 1..128 before the next byte bumps.
	if GridKey(0) != 0x01010101 {
		t.Errorf("GridKey(0) = %#x, want 0x01010101", GridKey(0))
	}
	if GridKey(1)&0xff != 2 {
		t.Errorf("GridKey(1) LSB = %d, want 2", GridKey(1)&0xff)
	}
	if GridKey(127)&0xff != 128 {
		t.Errorf("GridKey(127) LSB = %d, want 128", GridKey(127)&0xff)
	}
	k := GridKey(128)
	if k&0xff != 1 || (k>>8)&0xff != 2 {
		t.Errorf("GridKey(128) = %#x, want LSB reset to 1 and next byte 2", k)
	}
}

func TestReverseGridKeyMSBIncrementsFirst(t *testing.T) {
	if ReverseGridKey(0) != 0x01010101 {
		t.Errorf("ReverseGridKey(0) = %#x", ReverseGridKey(0))
	}
	k := ReverseGridKey(1)
	if k>>24 != 2 {
		t.Errorf("ReverseGridKey(1) MSB = %d, want 2", k>>24)
	}
	k = ReverseGridKey(128)
	if k>>24 != 1 || (k>>16)&0xff != 2 {
		t.Errorf("ReverseGridKey(128) = %#x, want MSB reset and next byte 2", k)
	}
}

func TestGridKeysUnique(t *testing.T) {
	const n = 1 << 15
	seen := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		k := GridKey(i)
		if seen[k] {
			t.Fatalf("GridKey repeats at %d: %#x", i, k)
		}
		seen[k] = true
	}
}

func TestLinearKeysUniqueAndShuffled(t *testing.T) {
	g := NewGenerator(7)
	keys := make([]uint32, 10000)
	if err := g.Keys(Linear, keys); err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint32(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, k := range sorted {
		if k != uint32(i+1) {
			t.Fatalf("linear keys are not a permutation of 1..N: position %d has %d", i, k)
		}
	}
	// Shuffled: the identity ordering would be astronomically unlikely.
	inOrder := 0
	for i, k := range keys {
		if k == uint32(i+1) {
			inOrder++
		}
	}
	if inOrder > len(keys)/10 {
		t.Errorf("linear keys look unshuffled: %d of %d in place", inOrder, len(keys))
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for _, d := range []Distribution{Linear, Random, Grid, ReverseGrid} {
		a := make([]uint32, 1000)
		b := make([]uint32, 1000)
		if err := NewGenerator(42).Keys(d, a); err != nil {
			t.Fatal(err)
		}
		if err := NewGenerator(42).Keys(d, b); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed produced different keys at %d", d, i)
			}
		}
	}
}

func TestKeysRejectsZipf(t *testing.T) {
	g := NewGenerator(1)
	if err := g.Keys(Zipf, make([]uint32, 4)); err == nil {
		t.Error("Keys(Zipf) succeeded, want error (use ZipfRelation)")
	}
}

func TestDistributionString(t *testing.T) {
	want := map[Distribution]string{
		Linear: "linear", Random: "random", Grid: "grid",
		ReverseGrid: "reverse-grid", Zipf: "zipf",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
}

func TestZipfUniformWhenFactorZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := NewZipfGenerator(rng, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 101)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf(0) sample %d out of range", v)
		}
		counts[v]++
	}
	// Every value should appear close to n/100 times.
	for v := 1; v <= 100; v++ {
		got := float64(counts[v])
		if got < 0.7*n/100 || got > 1.3*n/100 {
			t.Errorf("Zipf(0) count[%d] = %d, want ~%d", v, counts[v], n/100)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	frac := func(s float64) float64 {
		z, err := NewZipfGenerator(rng, s, 10000)
		if err != nil {
			t.Fatal(err)
		}
		top := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if z.Next() <= 10 {
				top++
			}
		}
		return float64(top) / n
	}
	f05, f10, f175 := frac(0.5), frac(1.0), frac(1.75)
	if !(f05 < f10 && f10 < f175) {
		t.Errorf("top-10 mass should grow with skew: %.3f %.3f %.3f", f05, f10, f175)
	}
	if f175 < 0.8 {
		t.Errorf("Zipf(1.75) top-10 mass = %.3f, want > 0.8", f175)
	}
}

func TestZipfMatchesTheoreticalFrequencies(t *testing.T) {
	// For s = 1 over a small alphabet, empirical frequencies must track
	// 1/k / H_n within a few percent.
	rng := rand.New(rand.NewSource(5))
	const alphabet = 8
	z, err := NewZipfGenerator(rng, 1, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	var hn float64
	for k := 1; k <= alphabet; k++ {
		hn += 1 / float64(k)
	}
	counts := make([]int, alphabet+1)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k := 1; k <= alphabet; k++ {
		want := 1 / float64(k) / hn
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Zipf(1) P(%d) = %.4f, want %.4f", k, got, want)
		}
	}
}

func TestZipfRejectsBadParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipfGenerator(rng, -0.5, 10); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewZipfGenerator(rng, 1, 0); err == nil {
		t.Error("empty alphabet accepted")
	}
	if _, err := NewZipfGenerator(rng, math.NaN(), 10); err == nil {
		t.Error("NaN exponent accepted")
	}
}

func TestZipfSingletonAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipfGenerator(rng, 1.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if z.Next() != 1 {
			t.Fatal("singleton alphabet must always return 1")
		}
	}
}
