package experiments

import (
	"fmt"
	"io"

	"fpgapart/hashjoin"
	"fpgapart/internal/model"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// JoinPoint is one join measurement with its phase breakdown in seconds.
type JoinPoint struct {
	System     string // "cpu", "fpga-PAD/RID", ...
	Threads    int
	Partitions int

	PartitionSec  float64
	BuildProbeSec float64
	TotalSec      float64
	Matches       int64
	FellBack      bool

	// ModelPartitionSec is the cost model's prediction of the FPGA
	// partitioning time for both relations (0 for CPU joins).
	ModelPartitionSec float64
}

func toPoint(system string, r *hashjoin.Result, parts int) JoinPoint {
	return JoinPoint{
		System:        system,
		Threads:       r.Threads,
		Partitions:    parts,
		PartitionSec:  r.PartitionTime().Seconds(),
		BuildProbeSec: r.BuildProbeTime().Seconds(),
		TotalSec:      r.Total.Seconds(),
		Matches:       r.Matches,
		FellBack:      r.FellBack,
	}
}

// hybridModelSec predicts the FPGA partitioning time of both relations.
func hybridModelSec(m model.Mode, nR, nS int) float64 {
	p := platform.XeonFPGA()
	return model.JoinPrediction(m, p, int64(nR)) + model.JoinPrediction(m, p, int64(nS))
}

// Figure10Result: join time vs number of partitions (workload A), single
// and multi threaded.
type Figure10Result struct {
	Workload workload.WorkloadSpec
	Points   []JoinPoint
}

// RunFigure10 sweeps the fan-out from 256 to 8192 on workload A for the CPU
// join and the hybrid join (PAD/RID — the workload has no skew).
func RunFigure10(cfg Config) (*Figure10Result, error) {
	cfg = cfg.WithDefaults()
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(cfg.Scale)
	in, err := spec.Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{Workload: spec}
	threadCases := []int{1, cfg.MaxThreads}
	if cfg.MaxThreads == 1 {
		threadCases = []int{1}
	}
	for _, parts := range []int{256, 512, 1024, 2048, 4096, 8192} {
		for _, threads := range threadCases {
			cpu, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{
				Partitions: parts, Threads: threads, Hash: false,
			})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, toPoint("cpu", cpu, parts))

			hyb, err := hashjoin.Hybrid(in.R, in.S, hashjoin.Options{
				Partitions: parts, Threads: threads, Hash: false,
				Format: partition.PadMode, PadFraction: 0.5,
			})
			if err != nil {
				return nil, err
			}
			pt := toPoint("fpga-PAD/RID", hyb, parts)
			pt.ModelPartitionSec = hybridModelSec(model.Mode{}, spec.TuplesR, spec.TuplesS)
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func runFigure10(cfg Config, w io.Writer) error {
	res, err := RunFigure10(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 10: join time vs number of partitions (workload A)")
	fmt.Fprintf(w, "R: %d tuples, S: %d tuples\n", res.Workload.TuplesR, res.Workload.TuplesS)
	printJoinPoints(w, res.Points, true)
	fmt.Fprintln(w, "paper shape: CPU partitioning grows with fan-out (1-thread); FPGA partitioning is flat;")
	fmt.Fprintln(w, "             build+probe shrinks with fan-out; hybrid build+probe pays the snoop penalty")
	return nil
}

// Figure11Result: join time vs threads (workloads A and B).
type Figure11Result struct {
	Results map[workload.WorkloadID][]JoinPoint
	Specs   map[workload.WorkloadID]workload.WorkloadSpec
}

// RunFigure11 sweeps threads on workloads A and B with the pure CPU join
// and the hybrid join in PAD/RID and PAD/VRID modes.
func RunFigure11(cfg Config) (*Figure11Result, error) {
	cfg = cfg.WithDefaults()
	res := &Figure11Result{
		Results: map[workload.WorkloadID][]JoinPoint{},
		Specs:   map[workload.WorkloadID]workload.WorkloadSpec{},
	}
	const parts = 8192
	for _, id := range []workload.WorkloadID{workload.WorkloadA, workload.WorkloadB} {
		spec, err := workload.Spec(id)
		if err != nil {
			return nil, err
		}
		spec = spec.Scaled(cfg.Scale)
		res.Specs[id] = spec
		in, err := spec.Generate(cfg.Seed)
		if err != nil {
			return nil, err
		}
		rCol, sCol := in.R.ToColumns(), in.S.ToColumns()
		for _, threads := range cfg.threadSweep() {
			cpu, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: parts, Threads: threads})
			if err != nil {
				return nil, err
			}
			res.Results[id] = append(res.Results[id], toPoint("cpu", cpu, parts))

			rid, err := hashjoin.Hybrid(in.R, in.S, hashjoin.Options{
				Partitions: parts, Threads: threads, Hash: true,
				Format: partition.PadMode, PadFraction: 0.5,
			})
			if err != nil {
				return nil, err
			}
			pt := toPoint("fpga-PAD/RID", rid, parts)
			pt.ModelPartitionSec = hybridModelSec(model.Mode{}, spec.TuplesR, spec.TuplesS)
			res.Results[id] = append(res.Results[id], pt)

			vridPart, err := partition.NewFPGA(partition.FPGAOptions{
				Partitions: parts, Hash: true, Format: partition.PadMode,
				Layout: partition.ColumnStore, PadFraction: 0.5,
			})
			if err != nil {
				return nil, err
			}
			vrid, err := hashjoin.Join(rCol, sCol, vridPart, hashjoin.Options{Threads: threads})
			if err != nil {
				return nil, err
			}
			pt = toPoint("fpga-PAD/VRID", vrid, parts)
			pt.ModelPartitionSec = hybridModelSec(model.Mode{VRID: true}, spec.TuplesR, spec.TuplesS)
			res.Results[id] = append(res.Results[id], pt)
		}
	}
	return res, nil
}

func runFigure11(cfg Config, w io.Writer) error {
	res, err := RunFigure11(cfg)
	if err != nil {
		return err
	}
	for _, id := range []workload.WorkloadID{workload.WorkloadA, workload.WorkloadB} {
		spec := res.Specs[id]
		header(w, fmt.Sprintf("Figure 11: join time vs threads (workload %s: %d ⋈ %d)", id, spec.TuplesR, spec.TuplesS))
		printJoinPoints(w, res.Results[id], false)
	}
	fmt.Fprintln(w, "\npaper shape: VRID partitions fastest (half the reads); hybrid build+probe is")
	fmt.Fprintln(w, "coherence-penalized; CPU and hybrid converge at full thread count")
	return nil
}

// Figure12Result: join time vs threads for workloads C, D, E with radix vs
// hash partitioning.
type Figure12Result struct {
	Results map[workload.WorkloadID][]JoinPoint
	Specs   map[workload.WorkloadID]workload.WorkloadSpec
}

// RunFigure12 compares CPU radix, CPU hash and FPGA hash partitioning
// within the join on the random/grid/reverse-grid workloads.
func RunFigure12(cfg Config) (*Figure12Result, error) {
	cfg = cfg.WithDefaults()
	res := &Figure12Result{
		Results: map[workload.WorkloadID][]JoinPoint{},
		Specs:   map[workload.WorkloadID]workload.WorkloadSpec{},
	}
	const parts = 8192
	for _, id := range []workload.WorkloadID{workload.WorkloadC, workload.WorkloadD, workload.WorkloadE} {
		spec, err := workload.Spec(id)
		if err != nil {
			return nil, err
		}
		spec = spec.Scaled(cfg.Scale)
		res.Specs[id] = spec
		in, err := spec.Generate(cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, threads := range cfg.threadSweep() {
			radix, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: parts, Threads: threads, Hash: false})
			if err != nil {
				return nil, err
			}
			res.Results[id] = append(res.Results[id], toPoint("cpu-radix", radix, parts))

			hash, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: parts, Threads: threads, Hash: true})
			if err != nil {
				return nil, err
			}
			res.Results[id] = append(res.Results[id], toPoint("cpu-hash", hash, parts))

			hyb, err := hashjoin.Hybrid(in.R, in.S, hashjoin.Options{
				Partitions: parts, Threads: threads, Hash: true,
				Format: partition.PadMode, PadFraction: 0.5,
			})
			if err != nil {
				return nil, err
			}
			pt := toPoint("fpga-hash", hyb, parts)
			pt.ModelPartitionSec = hybridModelSec(model.Mode{}, spec.TuplesR, spec.TuplesS)
			res.Results[id] = append(res.Results[id], pt)
		}
	}
	return res, nil
}

func runFigure12(cfg Config, w io.Writer) error {
	res, err := RunFigure12(cfg)
	if err != nil {
		return err
	}
	for _, id := range []workload.WorkloadID{workload.WorkloadC, workload.WorkloadD, workload.WorkloadE} {
		spec := res.Specs[id]
		header(w, fmt.Sprintf("Figure 12: join vs threads (workload %s, %v keys)", id, spec.Distribution))
		printJoinPoints(w, res.Results[id], false)
	}
	fmt.Fprintln(w, "\npaper shape: hash partitioning speeds build+probe on grid keys (D: ~11%, E: ~35%)")
	fmt.Fprintln(w, "but costs CPU partitioning time at low thread counts; free on the FPGA")
	return nil
}

// Figure13Result: join time vs Zipf factor of S (workload A sizes).
type Figure13Result struct {
	Workload workload.WorkloadSpec
	Points   []JoinPoint
	Factors  []float64
}

// RunFigure13 skews relation S with Zipf factors 0.25–1.75 and joins with
// the CPU and the hybrid join in HIST/RID mode (PAD would overflow beyond
// factor 0.25, Section 5.4).
func RunFigure13(cfg Config) (*Figure13Result, error) {
	cfg = cfg.WithDefaults()
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(cfg.Scale)
	res := &Figure13Result{Workload: spec}
	const parts = 8192
	for _, zipf := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75} {
		in, err := spec.GenerateSkewed(cfg.Seed, zipf)
		if err != nil {
			return nil, err
		}
		cpu, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: parts, Threads: cfg.MaxThreads, Hash: true})
		if err != nil {
			return nil, err
		}
		pt := toPoint("cpu", cpu, parts)
		res.Points = append(res.Points, pt)
		res.Factors = append(res.Factors, zipf)

		hyb, err := hashjoin.Hybrid(in.R, in.S, hashjoin.Options{
			Partitions: parts, Threads: cfg.MaxThreads, Hash: true,
			Format: partition.HistMode,
		})
		if err != nil {
			return nil, err
		}
		pt = toPoint("fpga-HIST/RID", hyb, parts)
		pt.ModelPartitionSec = hybridModelSec(model.Mode{Hist: true}, spec.TuplesR, spec.TuplesS)
		res.Points = append(res.Points, pt)
		res.Factors = append(res.Factors, zipf)
	}
	return res, nil
}

func runFigure13(cfg Config, w io.Writer) error {
	res, err := RunFigure13(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 13: join time vs Zipf factor of S (workload A sizes, HIST/RID)")
	fmt.Fprintf(w, "%-6s %-16s %10s %12s %10s %12s\n", "zipf", "system", "part (s)", "build+probe", "total", "model part")
	for i, p := range res.Points {
		modelStr := "-"
		if p.ModelPartitionSec > 0 {
			modelStr = fmt.Sprintf("%.4f", p.ModelPartitionSec)
		}
		fmt.Fprintf(w, "%-6.2f %-16s %10.4f %12.4f %10.4f %12s\n",
			res.Factors[i], p.System, p.PartitionSec, p.BuildProbeSec, p.TotalSec, modelStr)
	}
	fmt.Fprintln(w, "paper shape: HIST (two passes) loses to CPU partitioning on this link; skew shortens")
	fmt.Fprintln(w, "build+probe for both (hot keys hit cached chains)")
	return nil
}

// printJoinPoints renders a breakdown table.
func printJoinPoints(w io.Writer, points []JoinPoint, withParts bool) {
	if withParts {
		fmt.Fprintf(w, "%-8s %-16s %8s %10s %12s %10s %12s\n",
			"parts", "system", "threads", "part (s)", "build+probe", "total", "model part")
	} else {
		fmt.Fprintf(w, "%-16s %8s %10s %12s %10s %12s\n",
			"system", "threads", "part (s)", "build+probe", "total", "model part")
	}
	for _, p := range points {
		modelStr := "-"
		if p.ModelPartitionSec > 0 {
			modelStr = fmt.Sprintf("%.4f", p.ModelPartitionSec)
		}
		note := ""
		if p.FellBack {
			note = " (fell back)"
		}
		if withParts {
			fmt.Fprintf(w, "%-8d %-16s %8d %10.4f %12.4f %10.4f %12s%s\n",
				p.Partitions, p.System, p.Threads, p.PartitionSec, p.BuildProbeSec, p.TotalSec, modelStr, note)
		} else {
			fmt.Fprintf(w, "%-16s %8d %10.4f %12.4f %10.4f %12s%s\n",
				p.System, p.Threads, p.PartitionSec, p.BuildProbeSec, p.TotalSec, modelStr, note)
		}
	}
}
