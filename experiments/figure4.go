package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/cpupart"
	"fpgapart/workload"
)

// Figure4Point is one measurement of Figure 4: CPU partitioning throughput
// for a distribution/method at a thread count.
type Figure4Point struct {
	Distribution workload.Distribution
	Hash         bool
	Threads      int
	MTuplesPerS  float64
}

// Figure4Result is the full sweep.
type Figure4Result struct {
	Tuples int
	Points []Figure4Point
}

// RunFigure4 measures the software partitioner (8 B tuples, 8192
// partitions) with radix partitioning on each key distribution and with
// hash partitioning, across the thread sweep. The real CPU of the machine
// running this is measured — absolute numbers differ from the paper's Xeon,
// the shape (radix ≈ hash once memory-bound; throughput scales with
// threads) is what reproduces.
func RunFigure4(cfg Config) (*Figure4Result, error) {
	cfg = cfg.WithDefaults()
	n := int(128e6 * cfg.Scale)
	if n < 1<<15 {
		n = 1 << 15
	}
	const parts = 8192
	res := &Figure4Result{Tuples: n}
	type variant struct {
		d    workload.Distribution
		hash bool
	}
	variants := []variant{
		{workload.Linear, false},
		{workload.Random, false},
		{workload.Grid, false},
		{workload.ReverseGrid, false},
		// Hash partitioning delivers the same throughput for every key
		// distribution (Figure 4); one representative suffices.
		{workload.Random, true},
	}
	for _, v := range variants {
		rel, err := workload.NewGenerator(cfg.Seed).Relation(v.d, 8, n)
		if err != nil {
			return nil, err
		}
		for _, threads := range cfg.threadSweep() {
			r, err := cpupart.Partition(rel, cpupart.Config{
				NumPartitions: parts,
				Hash:          v.hash,
				Threads:       threads,
			})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Figure4Point{
				Distribution: v.d,
				Hash:         v.hash,
				Threads:      threads,
				MTuplesPerS:  float64(n) / r.Elapsed.Seconds() / 1e6,
			})
		}
	}
	return res, nil
}

func runFigure4(cfg Config, w io.Writer) error {
	res, err := RunFigure4(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 4: CPU partitioning throughput (Mtuples/s), 8 B tuples, 8192 partitions")
	fmt.Fprintf(w, "%d tuples per run\n", res.Tuples)
	fmt.Fprintf(w, "%-26s", "series \\ threads")
	cfgd := cfg.WithDefaults()
	for _, t := range cfgd.threadSweep() {
		fmt.Fprintf(w, "%8d", t)
	}
	fmt.Fprintln(w)
	printSeries := func(name string, match func(Figure4Point) bool) {
		fmt.Fprintf(w, "%-26s", name)
		for _, p := range res.Points {
			if match(p) {
				fmt.Fprintf(w, "%8.0f", p.MTuplesPerS)
			}
		}
		fmt.Fprintln(w)
	}
	for _, d := range []workload.Distribution{workload.Linear, workload.Random, workload.Grid, workload.ReverseGrid} {
		d := d
		printSeries(fmt.Sprintf("radix (%v)", d), func(p Figure4Point) bool { return !p.Hash && p.Distribution == d })
	}
	printSeries("hash (all distributions)", func(p Figure4Point) bool { return p.Hash })
	fmt.Fprintln(w, "paper shape: hash costs extra at low threads, converges once memory-bound")
	return nil
}
