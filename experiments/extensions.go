package experiments

import (
	"fmt"
	"io"

	"fpgapart/codec"
	"fpgapart/distjoin"
	"fpgapart/internal/core"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// SkewDetectPoint records where in the input stream a PAD-mode overflow was
// detected for one seed, as a fraction of the relation.
type SkewDetectPoint struct {
	ZipfFactor float64
	Seed       int64
	Overflowed bool
	// DetectedAtFraction is OverflowAtTuple / N (1.0 if no overflow).
	DetectedAtFraction float64
}

// SkewDetectResult quantifies Section 5.4's remark that "the detection time
// for the failure of the PAD mode is random and depends on the arrival
// order of the tuples": the later the overflow fires, the more work the
// fallback throws away.
type SkewDetectResult struct {
	Tuples int
	Points []SkewDetectPoint
}

// RunSkewDetect partitions Zipf-skewed relations in PAD mode across several
// seeds and records when (if at all) the overflow aborts the run.
func RunSkewDetect(cfg Config) (*SkewDetectResult, error) {
	cfg = cfg.WithDefaults()
	// Keep ≥512 tuples per partition so the 15% padding, not sampling
	// noise, decides overflow.
	n := int(16e6 * cfg.Scale)
	if n < 1<<19 {
		n = 1 << 19
	}
	res := &SkewDetectResult{Tuples: n}
	for _, zipf := range []float64{0.1, 0.25, 0.5, 1.0} {
		for s := int64(0); s < 5; s++ {
			g := workload.NewGenerator(cfg.Seed + s)
			rel, err := g.ZipfRelation(zipf, n, 8, n)
			if err != nil {
				return nil, err
			}
			// 1024 partitions keeps tuples/partition high enough at reduced
			// scale that the padding, not the flush's partial lines, decides
			// overflow — the regime the paper's full-scale runs are in.
			circuit, err := core.NewCircuit(core.Config{
				NumPartitions: 1024,
				TupleWidth:    8,
				Hash:          true,
				Format:        core.PAD,
				PadFraction:   0.15,
			}, 200e6, platform.XeonFPGA().FPGAAlone)
			if err != nil {
				return nil, err
			}
			_, stats, err := circuit.Partition(rel)
			pt := SkewDetectPoint{ZipfFactor: zipf, Seed: cfg.Seed + s}
			if err != nil {
				pt.Overflowed = true
				pt.DetectedAtFraction = float64(stats.OverflowAtTuple) / float64(n)
			} else {
				pt.DetectedAtFraction = 1
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func runSkewDetect(cfg Config, w io.Writer) error {
	res, err := RunSkewDetect(cfg)
	if err != nil {
		return err
	}
	header(w, "Extension: PAD overflow detection point vs skew (Section 5.4)")
	fmt.Fprintf(w, "%d tuples, 1024 partitions, 15%% padding, 5 seeds per factor\n", res.Tuples)
	fmt.Fprintf(w, "%-6s %-10s %s\n", "zipf", "overflows", "detected at (fraction of stream, per seed)")
	byFactor := map[float64][]SkewDetectPoint{}
	var factors []float64
	for _, p := range res.Points {
		if _, ok := byFactor[p.ZipfFactor]; !ok {
			factors = append(factors, p.ZipfFactor)
		}
		byFactor[p.ZipfFactor] = append(byFactor[p.ZipfFactor], p)
	}
	for _, f := range factors {
		pts := byFactor[f]
		overflows := 0
		line := ""
		for _, p := range pts {
			if p.Overflowed {
				overflows++
				line += fmt.Sprintf(" %.3f", p.DetectedAtFraction)
			} else {
				line += " -"
			}
		}
		fmt.Fprintf(w, "%-6.2f %d/%d       %s\n", f, overflows, len(pts), line)
	}
	fmt.Fprintln(w, "paper: PAD fails beyond ~0.25 for realistic padding; detection point is")
	fmt.Fprintln(w, "random — in the worst case at the very end of the run")
	return nil
}

// FutureResult compares partitioning throughput on today's Xeon+FPGA link
// against the paper's outlook platforms (Section 4.8 / 6).
type FutureResult struct {
	Tuples int
	Rows   []FutureRow
}

// FutureRow is one platform's PAD/RID throughput.
type FutureRow struct {
	Platform    string
	MTuplesPerS float64
}

// RunFuture runs PAD/RID on the three platform models.
func RunFuture(cfg Config) (*FutureResult, error) {
	cfg = cfg.WithDefaults()
	n := int(64e6 * cfg.Scale)
	if n < 1<<18 {
		n = 1 << 18
	}
	rel, err := workload.NewGenerator(cfg.Seed).Relation(workload.Random, 8, n)
	if err != nil {
		return nil, err
	}
	res := &FutureResult{Tuples: n}
	for _, plat := range []*platform.Platform{
		platform.XeonFPGA(), platform.RawFPGA(), platform.FutureIntegrated(),
	} {
		p, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions: 8192, Hash: true, Format: partition.PadMode,
			PadFraction: 0.5, Platform: plat,
		})
		if err != nil {
			return nil, err
		}
		r, err := p.Partition(rel.Clone())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FutureRow{
			Platform:    plat.Name,
			MTuplesPerS: float64(n) / r.Elapsed().Seconds() / 1e6,
		})
	}
	return res, nil
}

func runFuture(cfg Config, w io.Writer) error {
	res, err := RunFuture(cfg)
	if err != nil {
		return err
	}
	header(w, "Extension: the same circuit on future platforms (PAD/RID)")
	fmt.Fprintf(w, "%d tuples\n", res.Tuples)
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-40s %8.0f Mtuples/s\n", r.Platform, r.MTuplesPerS)
	}
	fmt.Fprintln(w, "paper: with ≥25.6 GB/s the circuit term dominates at 1.6 Gtuples/s;")
	fmt.Fprintln(w, "hardened next to the CPU it would clock past that")
	return nil
}

// CompressRow is one run-length configuration of the compression sweep.
type CompressRow struct {
	AvgRunLength int
	Ratio        float64
	PlainMTps    float64 // plain VRID partitioning
	CompMTps     float64 // compressed-input partitioning
}

// CompressResult sweeps compressibility for the in-pipeline decompression
// extension (Section 6: "decompression ... for free on the FPGA").
type CompressResult struct {
	Tuples int
	Rows   []CompressRow
}

// RunCompress partitions the same logical column as raw keys and as an
// RLE-compressed column at several run lengths.
func RunCompress(cfg Config) (*CompressResult, error) {
	cfg = cfg.WithDefaults()
	// Enough tuples that the fixed flush cost fades, and a moderate fan-out
	// so the sweep isolates the read-traffic effect.
	n := int(32e6 * cfg.Scale)
	if n < 1<<20 {
		n = 1 << 20
	}
	res := &CompressResult{Tuples: n}
	for _, runLen := range []int{1, 4, 16, 64} {
		keys := make([]uint32, n)
		g := workload.NewGenerator(cfg.Seed)
		if err := g.Keys(workload.Random, keys); err != nil {
			return nil, err
		}
		// Stretch each random key into a run.
		for i := range keys {
			keys[i] = keys[i/runLen*runLen]
		}
		col := codec.CompressRLE(keys)
		rel, err := workload.FromKeys(keys, 8)
		if err != nil {
			return nil, err
		}
		plainP, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions: 1024, Hash: true, Format: partition.HistMode, Layout: partition.ColumnStore,
		})
		if err != nil {
			return nil, err
		}
		plain, err := plainP.Partition(rel.ToColumns())
		if err != nil {
			return nil, err
		}
		comp, err := partition.FPGACompressed(partition.FPGAOptions{
			Partitions: 1024, Hash: true, Format: partition.HistMode, Layout: partition.ColumnStore,
		}, col)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CompressRow{
			AvgRunLength: runLen,
			Ratio:        col.Ratio(),
			PlainMTps:    float64(n) / plain.Elapsed().Seconds() / 1e6,
			CompMTps:     float64(n) / comp.Elapsed().Seconds() / 1e6,
		})
	}
	return res, nil
}

func runCompress(cfg Config, w io.Writer) error {
	res, err := RunCompress(cfg)
	if err != nil {
		return err
	}
	header(w, "Extension: partitioning compressed columns (HIST/VRID)")
	fmt.Fprintf(w, "%d tuples; RLE-compressed key column vs raw keys\n", res.Tuples)
	fmt.Fprintf(w, "%-10s %10s %14s %14s %10s\n", "run length", "RLE ratio", "plain Mt/s", "compressed", "speedup")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10d %10.2f %14.0f %14.0f %9.2fx\n",
			r.AvgRunLength, r.Ratio, r.PlainMTps, r.CompMTps, r.CompMTps/r.PlainMTps)
	}
	fmt.Fprintln(w, "shape: saved read bandwidth becomes throughput until the circuit limit;")
	fmt.Fprintln(w, "incompressible columns (run length 1: RLE ratio 0.5) cost extra reads.")
	fmt.Fprintln(w, "HIST's histogram pass is circuit-bound at one group/cycle, capping the")
	fmt.Fprintln(w, "speedup near 1.15x on this link; PAD mode would reach ~1.25x")
	return nil
}

// DistributedResult sweeps cluster sizes for the distributed join.
type DistributedResult struct {
	TuplesPerRelation int
	Rows              []DistributedRow
}

// DistributedRow is one (nodes, backend) configuration.
type DistributedRow struct {
	Nodes          int
	FPGA           bool
	PartitionSec   float64
	ExchangeSec    float64
	JoinSec        float64
	TotalSec       float64
	BytesExchanged int64
}

// RunDistributed joins a linear workload across 1–8 simulated nodes with
// CPU and FPGA per-node partitioning (Section 6's RDMA outlook).
func RunDistributed(cfg Config) (*DistributedResult, error) {
	cfg = cfg.WithDefaults()
	n := int(32e6 * cfg.Scale)
	if n < 1<<16 {
		n = 1 << 16
	}
	spec := workload.WorkloadSpec{ID: "dist", TuplesR: n, TuplesS: n, Distribution: workload.Linear}
	in, err := spec.Generate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &DistributedResult{TuplesPerRelation: n}
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, fpga := range []bool{false, true} {
			r, err := distjoin.Join(in.R, in.S, distjoin.Options{
				Nodes:             nodes,
				PartitionsPerNode: 8192 / nodes,
				Threads:           cfg.MaxThreads,
				UseFPGA:           fpga,
				Format:            partition.HistMode,
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, DistributedRow{
				Nodes:          nodes,
				FPGA:           fpga,
				PartitionSec:   r.PartitionTime.Seconds(),
				ExchangeSec:    r.ExchangeTime.Seconds(),
				JoinSec:        r.JoinTime.Seconds(),
				TotalSec:       r.Total.Seconds(),
				BytesExchanged: r.BytesExchanged,
			})
		}
	}
	return res, nil
}

func runDistributed(cfg Config, w io.Writer) error {
	res, err := RunDistributed(cfg)
	if err != nil {
		return err
	}
	header(w, "Extension: distributed join over RDMA (Section 6 outlook)")
	fmt.Fprintf(w, "%d ⋈ %d tuples, FDR fabric\n", res.TuplesPerRelation, res.TuplesPerRelation)
	fmt.Fprintf(w, "%-6s %-6s %10s %10s %10s %10s %12s\n",
		"nodes", "part.", "partition", "exchange", "join", "total", "traffic MB")
	for _, r := range res.Rows {
		kind := "cpu"
		if r.FPGA {
			kind = "fpga"
		}
		fmt.Fprintf(w, "%-6d %-6s %10.4f %10.4f %10.4f %10.4f %12.1f\n",
			r.Nodes, kind, r.PartitionSec, r.ExchangeSec, r.JoinSec, r.TotalSec,
			float64(r.BytesExchanged)/1e6)
	}
	fmt.Fprintln(w, "shape: partition and join times shrink ~linearly with nodes; exchange traffic")
	fmt.Fprintln(w, "grows with the off-node fraction (n-1)/n")
	return nil
}
