package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/core"
)

// Table2Result reproduces the resource-usage table.
type Table2Result struct {
	Rows []core.ResourceUsage
}

// RunTable2 estimates FPGA resource usage for the four tuple-width
// configurations at the paper's 8192-partition fan-out.
func RunTable2(cfg Config) (*Table2Result, error) {
	res := &Table2Result{}
	for _, w := range []int{8, 16, 32, 64} {
		res.Rows = append(res.Rows, core.EstimateResources(core.Config{
			NumPartitions: 8192,
			TupleWidth:    w,
		}))
	}
	return res, nil
}

func runTable2(cfg Config, w io.Writer) error {
	res, err := RunTable2(cfg)
	if err != nil {
		return err
	}
	header(w, "Table 2: resource usage vs tuple width (Stratix V 5SGXEA, 8192 partitions)")
	fmt.Fprintf(w, "%-12s %-12s %-8s %-10s\n", "Tuple width", "Logic units", "BRAM", "DSP blocks")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-12s %10.0f%% %6.0f%% %9.0f%%\n",
			fmt.Sprintf("%dB", r.TupleWidth), r.LogicPct, r.BRAMPct, r.DSPPct)
	}
	fmt.Fprintln(w, "paper: 8B 37/76/14, 16B 28/42/21, 32B 27/24/11, 64B 27/15/6 (%)")
	return nil
}
