package experiments

import (
	"bytes"
	"testing"
)

func TestSkewDetectOverflowsBeyondThreshold(t *testing.T) {
	res, err := RunSkewDetect(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byFactor := map[float64]struct{ overflows, total int }{}
	for _, p := range res.Points {
		e := byFactor[p.ZipfFactor]
		e.total++
		if p.Overflowed {
			e.overflows++
			if p.DetectedAtFraction <= 0 || p.DetectedAtFraction > 1 {
				t.Errorf("detection fraction %v out of range", p.DetectedAtFraction)
			}
		}
		byFactor[p.ZipfFactor] = e
	}
	// Mild skew survives in the (large) majority of runs — at reduced scale
	// the 15% padding is within a few sigma of the partition-size tail, so
	// an occasional seed may still trip it — while strong skew always
	// overflows (Section 5.4's threshold is ~0.25 for realistic padding).
	if e := byFactor[0.1]; e.overflows > e.total/2 {
		t.Errorf("zipf 0.1 overflowed %d/%d times", e.overflows, e.total)
	}
	if e := byFactor[1.0]; e.overflows != e.total {
		t.Errorf("zipf 1.0 overflowed only %d/%d times", e.overflows, e.total)
	}
}

func TestFutureOrdering(t *testing.T) {
	res, err := RunFuture(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Today's link < raw wrapper; the future platform beats today's link.
	if res.Rows[0].MTuplesPerS >= res.Rows[1].MTuplesPerS {
		t.Errorf("Xeon+FPGA (%v) should be slower than the raw wrapper (%v)",
			res.Rows[0].MTuplesPerS, res.Rows[1].MTuplesPerS)
	}
	if res.Rows[2].MTuplesPerS <= res.Rows[0].MTuplesPerS {
		t.Errorf("future platform (%v) should beat today's link (%v)",
			res.Rows[2].MTuplesPerS, res.Rows[0].MTuplesPerS)
	}
}

func TestDistributedShape(t *testing.T) {
	res, err := RunDistributed(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var cpu1, cpu8 DistributedRow
	for _, r := range res.Rows {
		if !r.FPGA && r.Nodes == 1 {
			cpu1 = r
		}
		if !r.FPGA && r.Nodes == 8 {
			cpu8 = r
		}
		if r.Nodes == 1 && r.BytesExchanged != 0 {
			t.Errorf("single node exchanged %d bytes", r.BytesExchanged)
		}
		if r.Nodes > 1 && r.BytesExchanged == 0 {
			t.Errorf("%d nodes exchanged nothing", r.Nodes)
		}
	}
	// The join phase parallelizes across nodes.
	if cpu8.JoinSec >= cpu1.JoinSec {
		t.Errorf("8-node join (%v s) not faster than 1-node (%v s)", cpu8.JoinSec, cpu1.JoinSec)
	}
}

func TestCompressSweepShape(t *testing.T) {
	res, err := RunCompress(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Ratio and compressed throughput grow with run length; run length 1
	// (incompressible under RLE) must be slower than plain.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Ratio <= res.Rows[i-1].Ratio {
			t.Errorf("ratio not increasing: %+v", res.Rows)
		}
	}
	if res.Rows[0].CompMTps >= res.Rows[0].PlainMTps {
		t.Errorf("incompressible column should be slower compressed: %+v", res.Rows[0])
	}
	// Ceiling analysis: in HIST mode the histogram pass is circuit-bound at
	// one lane group per cycle (N/8 cycles) no matter how few lines are
	// read, so even infinite compression only accelerates the second pass:
	// (0.563 + 2.02) / (0.625 + 1.62) ≈ 1.15× on the Xeon+FPGA link.
	last := res.Rows[len(res.Rows)-1]
	if last.CompMTps <= last.PlainMTps*1.10 {
		t.Errorf("long runs should speed partitioning ≥1.1x: %+v", last)
	}
}

func TestExtensionRunnersRender(t *testing.T) {
	for _, id := range []string{"skewdetect", "future", "dist", "compress"} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(tiny(), &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}
