package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fpgapart/platform"
	"fpgapart/workload"
)

// tiny is a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 1.0 / 1024, Seed: 7, MaxThreads: 2}
}

func TestAllExperimentsRenderSomething(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(tiny(), &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
		if !strings.Contains(buf.String(), "===") {
			t.Errorf("%s missing header", e.ID)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, err := Find("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 1.0/16 || c.Seed != 42 || c.MaxThreads < 1 {
		t.Errorf("defaults: %+v", c)
	}
	sweep := Config{MaxThreads: 4}.threadSweep()
	if len(sweep) != 3 || sweep[2] != 4 {
		t.Errorf("threadSweep(4) = %v", sweep)
	}
	if got := (Config{MaxThreads: 1}).threadSweep(); len(got) != 1 || got[0] != 1 {
		t.Errorf("threadSweep(1) = %v", got)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := RunTable1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]bool]float64{
		{false, false}: 0.1381, // CPU writer, sequential
		{false, true}:  1.1537,
		{true, false}:  0.1533, // FPGA writer
		{true, true}:   2.4876,
	}
	for _, r := range res.Rows {
		k := [2]bool{r.LastWriter == platform.FPGASocket, r.Random}
		if math.Abs(r.Seconds-want[k]) > 1e-6 {
			t.Errorf("row %+v: %v s, want %v", k, r.Seconds, want[k])
		}
	}
	if res.RandPenalty < 2 || res.RandPenalty > 2.3 {
		t.Errorf("RandPenalty = %v", res.RandPenalty)
	}
}

func TestFigure2ShapeAndHostMeasurement(t *testing.T) {
	res, err := RunFigure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("%d points, want 11", len(res.Points))
	}
	for i, p := range res.Points {
		if p.CPUAlone <= p.CPUInterfered || p.FPGAAlone <= p.FPGAInterfered {
			t.Errorf("point %d: interference not reducing bandwidth", i)
		}
		if p.HostMeasured <= 0 {
			t.Errorf("point %d: host measurement missing", i)
		}
	}
	// CPU bandwidth grows with read fraction.
	if res.Points[10].CPUAlone <= res.Points[0].CPUAlone {
		t.Error("CPU curve not increasing with read fraction")
	}
}

func TestFigure3RadixVsHashRobustness(t *testing.T) {
	res, err := RunFigure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("%d series, want 8", len(res.Series))
	}
	byKey := map[string]Figure3Series{}
	for _, s := range res.Series {
		method := "radix"
		if s.Hash {
			method = "hash"
		}
		byKey[s.Distribution.String()+"/"+method] = s
	}
	// Hash partitioning is balanced for every distribution (Figure 3b) —
	// with ~128 tuples/partition, Poisson noise allows ≈1.5× at the tail.
	for _, d := range []string{"linear", "random", "grid", "reverse-grid"} {
		if im := byKey[d+"/hash"].Imbalance; im > 1.7 {
			t.Errorf("hash on %s imbalance %.2f, want near 1", d, im)
		}
	}
	// Radix partitioning degenerates on grid keys (Figure 3a): grid leaves
	// a large share of partitions empty and doubles the load elsewhere;
	// reverse grid floods a handful of partitions.
	grid := byKey["grid/radix"]
	if grid.Imbalance < 1.8 || grid.EmptyParts == 0 {
		t.Errorf("radix on grid: imbalance %.2f, empty %d — expected skew", grid.Imbalance, grid.EmptyParts)
	}
	rev := byKey["reverse-grid/radix"]
	if rev.Imbalance < 10 || rev.EmptyParts == 0 {
		t.Errorf("radix on reverse grid: imbalance %.2f, empty %d — expected severe skew", rev.Imbalance, rev.EmptyParts)
	}
	// Radix on linear keys is perfectly balanced.
	if byKey["linear/radix"].Imbalance > 1.05 {
		t.Errorf("radix on linear imbalance %.2f", byKey["linear/radix"].Imbalance)
	}
}

func TestFigure4ProducesAllSeries(t *testing.T) {
	res, err := RunFigure4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	sweep := tiny().WithDefaults().threadSweep()
	if want := 5 * len(sweep); len(res.Points) != want {
		t.Fatalf("%d points, want %d", len(res.Points), want)
	}
	for _, p := range res.Points {
		if p.MTuplesPerS <= 0 {
			t.Errorf("non-positive throughput: %+v", p)
		}
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	res, err := RunTable2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if math.Abs(res.Rows[0].BRAMPct-76) > 3 {
		t.Errorf("8B BRAM = %v%%, paper 76%%", res.Rows[0].BRAMPct)
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 64 MB per tuple width")
	}
	res, err := RunFigure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	for i := 1; i < 4; i++ {
		if res.Points[i].MTuplesPerS >= res.Points[i-1].MTuplesPerS {
			t.Error("tuples/s should fall with width")
		}
	}
	// Model tracks simulation within 25% even at tiny scale.
	for _, p := range res.Points {
		if p.ModelMTuplesPerS <= 0 {
			t.Errorf("missing model prediction at %dB", p.TupleWidth)
		}
		rel := math.Abs(p.MTuplesPerS-p.ModelMTuplesPerS) / p.ModelMTuplesPerS
		if rel > 0.20 {
			t.Errorf("width %d: sim %f vs model %f (%.0f%% apart)",
				p.TupleWidth, p.MTuplesPerS, p.ModelMTuplesPerS, rel*100)
		}
	}
}

func TestModelValidationTable(t *testing.T) {
	res, err := RunModelValidation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if math.Abs(res.CircuitRate-1.6e9) > 1e6 {
		t.Errorf("circuit rate %v", res.CircuitRate)
	}
}

func TestFigure10ConsistentAcrossFanOuts(t *testing.T) {
	res, err := RunFigure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// At test scale the fixed flush cost dominates the FPGA time, so the
	// paper's flatness claim is asserted at real scale in core's tests and
	// recorded in EXPERIMENTS.md; here the invariants are correctness ones:
	// identical match counts and positive phase times for every fan-out.
	var matches []int64
	for _, p := range res.Points {
		matches = append(matches, p.Matches)
		if p.PartitionSec <= 0 || p.BuildProbeSec <= 0 || p.TotalSec <= 0 {
			t.Errorf("non-positive phase times: %+v", p)
		}
		if p.System == "fpga-PAD/RID" && p.ModelPartitionSec <= 0 {
			t.Errorf("missing model prediction: %+v", p)
		}
	}
	for _, m := range matches[1:] {
		if m != matches[0] {
			t.Fatalf("match counts differ across configurations: %v", matches)
		}
	}
}

func TestFigure11VRIDPartitionsFaster(t *testing.T) {
	res, err := RunFigure11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Results[workload.WorkloadA]
	var rid, vrid float64
	for _, p := range pts {
		if p.Threads != 1 {
			continue
		}
		switch p.System {
		case "fpga-PAD/RID":
			rid = p.PartitionSec
		case "fpga-PAD/VRID":
			vrid = p.PartitionSec
		}
	}
	if vrid <= 0 || rid <= 0 || vrid >= rid {
		t.Errorf("VRID partitioning (%.4fs) should beat RID (%.4fs)", vrid, rid)
	}
}

func TestFigure12HashHelpsGridKeys(t *testing.T) {
	res, err := RunFigure12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// On workload E (reverse grid), hash partitioning must give a faster
	// build+probe than radix partitioning (paper: ~35% at 10 threads).
	pts := res.Results[workload.WorkloadE]
	var radixBP, hashBP float64
	maxT := tiny().MaxThreads
	for _, p := range pts {
		if p.Threads != maxT {
			continue
		}
		switch p.System {
		case "cpu-radix":
			radixBP = p.BuildProbeSec
		case "cpu-hash":
			hashBP = p.BuildProbeSec
		}
	}
	if hashBP <= 0 || radixBP <= 0 {
		t.Fatal("missing build+probe measurements")
	}
	if hashBP >= radixBP {
		t.Errorf("hash build+probe (%.4fs) not faster than radix (%.4fs) on reverse-grid keys", hashBP, radixBP)
	}
}

func TestFigure13HistNeverFallsBack(t *testing.T) {
	res, err := RunFigure13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 14 {
		t.Fatalf("%d points, want 14", len(res.Points))
	}
	for i, p := range res.Points {
		if p.FellBack {
			t.Errorf("HIST-mode join fell back at zipf %.2f", res.Factors[i])
		}
		if p.Matches <= 0 {
			t.Errorf("no matches at zipf %.2f (%s)", res.Factors[i], p.System)
		}
	}
	// CPU and hybrid must agree on matches per factor.
	for i := 0; i+1 < len(res.Points); i += 2 {
		if res.Points[i].Matches != res.Points[i+1].Matches {
			t.Errorf("zipf %.2f: CPU %d matches, hybrid %d",
				res.Factors[i], res.Points[i].Matches, res.Points[i+1].Matches)
		}
	}
}
