package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/cpupart"
	"fpgapart/internal/model"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Figure9Bar is one bar of Figure 9.
type Figure9Bar struct {
	Name        string
	MTuplesPerS float64
	// Model is the cost model's prediction (0 when not applicable).
	Model float64
	// Paper is the paper's reported value for reference.
	Paper float64
	// Reference marks bars quoted from related work rather than run here.
	Reference bool
}

// Figure9Result is the full bar chart.
type Figure9Result struct {
	Tuples int
	Bars   []Figure9Bar
}

// FPGAMode is one of the four FPGA partitioner configurations the paper
// sweeps in Figure 9 (HIST/PAD output strategy × RID/VRID input layout).
// The table is shared by the Figure 9 experiment and the perfbench matrix,
// so BENCH record names line up with the paper's bars.
type FPGAMode struct {
	Name   string
	Format partition.Format
	Layout partition.Layout
	// PaperMTuplesPerS is the throughput the paper reports for this mode on
	// the Xeon+FPGA platform.
	PaperMTuplesPerS float64
	// Model selects the matching cost-model variant of Section 4.6.
	Model model.Mode
}

// FPGAModes lists the four modes in the paper's Figure 9 order.
func FPGAModes() []FPGAMode {
	return []FPGAMode{
		{"HIST/RID", partition.HistMode, partition.RowStore, 299, model.Mode{Hist: true}},
		{"HIST/VRID", partition.HistMode, partition.ColumnStore, 391, model.Mode{Hist: true, VRID: true}},
		{"PAD/RID", partition.PadMode, partition.RowStore, 436, model.Mode{}},
		{"PAD/VRID", partition.PadMode, partition.ColumnStore, 514, model.Mode{VRID: true}},
	}
}

// RunFigure9 measures end-to-end partitioning throughput of the four FPGA
// modes on the Xeon+FPGA link, the parallel CPU partitioner on the host, and
// the raw-wrapper circuit (25.6 GB/s), alongside the related-work reference
// points the paper plots ([27] 32-core CPU, [37] OpenCL FPGA).
func RunFigure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.WithDefaults()
	n := int(128e6 * cfg.Scale)
	if n < 1<<15 {
		n = 1 << 15
	}
	const parts = 8192
	xeon := platform.XeonFPGA()
	raw := platform.RawFPGA()
	res := &Figure9Result{Tuples: n}

	res.Bars = append(res.Bars,
		Figure9Bar{Name: "[27] CPU (32 cores)", MTuplesPerS: 1100, Paper: 1100, Reference: true},
		Figure9Bar{Name: "[37] FPGA (OpenCL)", MTuplesPerS: 256, Paper: 256, Reference: true},
	)

	rel, err := workload.NewGenerator(cfg.Seed).Relation(workload.Random, 8, n)
	if err != nil {
		return nil, err
	}
	col := rel.ToColumns()

	type mode struct {
		name   string
		format partition.Format
		layout partition.Layout
		plat   *platform.Platform
		paper  float64
		model  model.Mode
	}
	for _, fm := range FPGAModes() {
		bar, err := runFPGAMode(fm.Name, fm.Format, fm.Layout, xeon, rel, col, n)
		if err != nil {
			return nil, err
		}
		bar.Paper = fm.PaperMTuplesPerS
		bar.Model = model.ForMode(fm.Model, xeon, int64(n)).TotalRate() / 1e6
		res.Bars = append(res.Bars, *bar)
	}

	// CPU partitioner, measured at the maximum thread count.
	cpuRes, err := cpupart.Partition(rel, cpupart.Config{
		NumPartitions: parts, Hash: true, Threads: cfg.MaxThreads,
	})
	if err != nil {
		return nil, err
	}
	res.Bars = append(res.Bars, Figure9Bar{
		Name:        fmt.Sprintf("CPU (%d threads, this host)", cfg.MaxThreads),
		MTuplesPerS: float64(n) / cpuRes.Elapsed.Seconds() / 1e6,
		Paper:       506,
	})

	for _, m := range []mode{
		{"Raw FPGA (HIST)", partition.HistMode, partition.RowStore, raw, 799, model.Mode{Hist: true}},
		{"Raw FPGA (PAD)", partition.PadMode, partition.RowStore, raw, 1597, model.Mode{}},
	} {
		bar, err := runFPGAMode(m.name, m.format, m.layout, m.plat, rel, col, n)
		if err != nil {
			return nil, err
		}
		bar.Paper = m.paper
		bar.Model = model.ForMode(m.model, m.plat, int64(n)).TotalRate() / 1e6
		res.Bars = append(res.Bars, *bar)
	}
	return res, nil
}

func runFPGAMode(name string, format partition.Format, layout partition.Layout,
	plat *platform.Platform, rel, col *workload.Relation, n int) (*Figure9Bar, error) {
	in := rel
	if layout == partition.ColumnStore {
		in = col
	}
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions:  8192,
		Hash:        true,
		Format:      format,
		Layout:      layout,
		PadFraction: 0.5,
		Platform:    plat,
	})
	if err != nil {
		return nil, err
	}
	r, err := p.Partition(in)
	if err != nil {
		return nil, err
	}
	return &Figure9Bar{
		Name:        name,
		MTuplesPerS: float64(n) / r.Elapsed().Seconds() / 1e6,
	}, nil
}

func runFigure9(cfg Config, w io.Writer) error {
	res, err := RunFigure9(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 9: partitioning throughput, 8 B tuples, 8192 partitions (Mtuples/s)")
	fmt.Fprintf(w, "%d tuples per run\n", res.Tuples)
	fmt.Fprintf(w, "%-28s %10s %10s %10s\n", "configuration", "this repo", "model", "paper")
	for _, b := range res.Bars {
		modelStr, note := "-", ""
		if b.Model > 0 {
			modelStr = fmt.Sprintf("%.0f", b.Model)
		}
		if b.Reference {
			note = " (quoted)"
		}
		fmt.Fprintf(w, "%-28s %10.0f %10s %10.0f%s\n", b.Name, b.MTuplesPerS, modelStr, b.Paper, note)
	}
	return nil
}
