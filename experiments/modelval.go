package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/model"
	"fpgapart/platform"
)

// ModelValidationResult is the Section 4.8 table.
type ModelValidationResult struct {
	Rows []model.Validation
	// CircuitRate is the unconstrained pipeline rate, 1.6 Gtuples/s.
	CircuitRate float64
}

// RunModelValidation evaluates the cost model at the three operating points
// of Section 4.8.
func RunModelValidation(cfg Config) (*ModelValidationResult, error) {
	p := platform.XeonFPGA()
	params := model.ForMode(model.Mode{}, p, 128e6)
	return &ModelValidationResult{
		Rows:        model.Validate(p),
		CircuitRate: params.CircuitRate(),
	}, nil
}

func runModelValidation(cfg Config, w io.Writer) error {
	res, err := RunModelValidation(cfg)
	if err != nil {
		return err
	}
	header(w, "Section 4.6/4.8: cost model validation (N = 128e6, W = 8 B)")
	fmt.Fprintf(w, "circuit rate B_FPGA = %.2f Gtuples/s at 200 MHz\n", res.CircuitRate/1e9)
	fmt.Fprintf(w, "%-22s %6s %10s %14s %14s\n", "mode", "r", "B(r) GB/s", "model Mt/s", "paper Mt/s")
	for _, v := range res.Rows {
		fmt.Fprintf(w, "%-22s %6.1f %10.2f %14.0f %14.0f\n",
			v.Mode, v.Ratio, v.Bandwidth, v.Predicted/1e6, v.Paper/1e6)
	}
	return nil
}
