package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"fpgapart/platform"
)

// Figure2Point is one x-position of Figure 2: the bandwidth of each agent at
// a given sequential-read fraction of the traffic mix.
type Figure2Point struct {
	ReadFraction   float64
	CPUAlone       float64 // GB/s, platform model
	CPUInterfered  float64
	FPGAAlone      float64
	FPGAInterfered float64
	HostMeasured   float64 // GB/s measured on the machine running this code
}

// Figure2Result is the bandwidth sweep.
type Figure2Result struct {
	Points []Figure2Point
}

// RunFigure2 evaluates the calibrated Figure 2 curves at the paper's eleven
// mix ratios and, for shape comparison, measures the host's actual memory
// bandwidth at each mix with a sequential-read/random-write kernel.
func RunFigure2(cfg Config) (*Figure2Result, error) {
	cfg = cfg.WithDefaults()
	p := platform.XeonFPGA()
	// Host sweep buffer: large enough to defeat caches at default scale.
	bufWords := int(float64(64<<20) * cfg.Scale * 16)
	if bufWords < 1<<16 {
		bufWords = 1 << 16
	}
	buf := make([]uint64, bufWords)
	res := &Figure2Result{}
	for i := 0; i <= 10; i++ {
		frac := float64(i) / 10
		res.Points = append(res.Points, Figure2Point{
			ReadFraction:   frac,
			CPUAlone:       p.CPUAlone.At(frac),
			CPUInterfered:  p.CPUInterfered.At(frac),
			FPGAAlone:      p.FPGAAlone.At(frac),
			FPGAInterfered: p.FPGAInterfered.At(frac),
			HostMeasured:   MeasureMixBandwidth(buf, frac, cfg.Seed),
		})
	}
	return res, nil
}

// MeasureMixBandwidth runs one pass over buf issuing sequential reads and
// random writes in the byte proportion frac:(1-frac) and returns GB/s.
func MeasureMixBandwidth(buf []uint64, readFrac float64, seed int64) float64 {
	n := len(buf)
	rng := rand.New(rand.NewSource(seed))
	// Per 16-operation block, how many are reads.
	reads := int(readFrac*16 + 0.5)
	mask := uint32(nextPow2(n) - 1)
	var sink uint64
	start := time.Now()
	ops := 0
	ri, x := 0, rng.Uint32()
	for ops+16 <= n {
		for k := 0; k < reads; k++ {
			sink += buf[ri]
			ri++
		}
		for k := reads; k < 16; k++ {
			// xorshift for cheap random indices
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			idx := int(x & mask)
			if idx >= n {
				idx -= n / 2
			}
			buf[idx] = sink
		}
		ops += 16
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	_ = sink
	return float64(ops*8) / elapsed / 1e9
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func runFigure2(cfg Config, w io.Writer) error {
	res, err := RunFigure2(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 2: memory bandwidth vs sequential-read/random-write ratio (GB/s)")
	fmt.Fprintf(w, "%-10s %10s %12s %10s %12s %12s\n",
		"read/write", "CPU alone", "CPU interf.", "FPGA alone", "FPGA interf.", "host (meas.)")
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%4.1f/%-4.1f  %10.2f %12.2f %10.2f %12.2f %12.2f\n",
			pt.ReadFraction, 1-pt.ReadFraction,
			pt.CPUAlone, pt.CPUInterfered, pt.FPGAAlone, pt.FPGAInterfered, pt.HostMeasured)
	}
	fmt.Fprintln(w, "model curves calibrated to the paper; host column is this machine's real shape")
	return nil
}
