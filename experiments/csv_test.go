package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestCSVIDsCoverAllExperiments(t *testing.T) {
	ids := CSVIDs()
	if len(ids) != len(All()) {
		t.Fatalf("CSV writers cover %d of %d experiments", len(ids), len(All()))
	}
}

func TestWriteCSVUnknownID(t *testing.T) {
	if err := WriteCSV(tiny(), "nope", &bytes.Buffer{}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestWriteCSVFastExperiments(t *testing.T) {
	// The cheap experiments run here; the expensive ones share the same
	// writer scaffolding and are covered by the full-suite test below.
	for _, id := range []string{"table1", "table2", "model", "fig3"} {
		var buf bytes.Buffer
		if err := WriteCSV(tiny(), id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid csv: %v", id, err)
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", id, len(rows))
		}
		// Header and data rows have matching widths (csv.Reader enforces),
		// and headers are lowercase identifiers.
		for _, col := range rows[0] {
			if col != strings.ToLower(col) || strings.Contains(col, " ") {
				t.Errorf("%s: header %q not snake_case", id, col)
			}
		}
	}
}

func TestWriteCSVAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range CSVIDs() {
		var buf bytes.Buffer
		if err := WriteCSV(tiny(), id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, err := csv.NewReader(&buf).ReadAll(); err != nil {
			t.Fatalf("%s: invalid csv: %v", id, err)
		}
	}
}
