package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/memsys"
	"fpgapart/platform"
)

// Table1Row is one cell row of Table 1: single-threaded CPU read time of a
// 512 MB region under a given pattern and last writer.
type Table1Row struct {
	LastWriter platform.Socket
	Random     bool
	Seconds    float64
}

// Table1Result reproduces Table 1 plus the derived penalties used by the
// hybrid join.
type Table1Result struct {
	Rows        []Table1Row
	SeqPenalty  float64
	RandPenalty float64
}

// RunTable1 replays the Section 2.2 micro-benchmark against the coherence
// model: a 512 MB region is written by one socket (tracked per cache line in
// memsys), then read by the CPU sequentially and randomly; the model's
// per-line latencies — calibrated to the paper's measurements — accumulate
// into the region read time.
func RunTable1(cfg Config) (*Table1Result, error) {
	p := platform.XeonFPGA()
	const region = int64(512 << 20)

	res := &Table1Result{
		SeqPenalty:  p.Coherence.SeqPenalty(),
		RandPenalty: p.Coherence.RandPenalty(),
	}
	// Exercise the real ownership tracking on a scaled-down region, then
	// extrapolate with the per-line latencies (a 512 MB owner bitmap is
	// cheap, but the point here is the model, not the loop).
	pool, err := memsys.NewPool(1<<30, 4<<20)
	if err != nil {
		return nil, err
	}
	for _, writer := range []platform.Socket{platform.CPUSocket, platform.FPGASocket} {
		r, err := pool.Alloc(64 << 20)
		if err != nil {
			return nil, err
		}
		if err := r.MarkWritten(writer, 0, 64<<20); err != nil {
			return nil, err
		}
		cpu, fpga := r.OwnerCounts()
		owned := cpu
		if writer == platform.FPGASocket {
			owned = fpga
		}
		if owned != (64<<20)/memsys.LineBytes {
			return nil, fmt.Errorf("experiments: ownership tracking lost lines: %d/%d", cpu, fpga)
		}
		for _, random := range []bool{false, true} {
			res.Rows = append(res.Rows, Table1Row{
				LastWriter: writer,
				Random:     random,
				Seconds:    p.Coherence.ReadTime(region, random, writer),
			})
		}
	}
	return res, nil
}

func runTable1(cfg Config, w io.Writer) error {
	res, err := RunTable1(cfg)
	if err != nil {
		return err
	}
	header(w, "Table 1: CPU read time of a 512 MB region vs last writer")
	fmt.Fprintf(w, "%-14s %-22s %-22s\n", "", "CPU reads sequentially", "CPU reads randomly")
	for _, writer := range []platform.Socket{platform.CPUSocket, platform.FPGASocket} {
		var seq, rnd float64
		for _, r := range res.Rows {
			if r.LastWriter != writer {
				continue
			}
			if r.Random {
				rnd = r.Seconds
			} else {
				seq = r.Seconds
			}
		}
		fmt.Fprintf(w, "%-14s %-22.4f %-22.4f\n", writer.String()+" writes", seq, rnd)
	}
	fmt.Fprintf(w, "derived penalties: sequential %.2fx, random %.2fx\n", res.SeqPenalty, res.RandPenalty)
	fmt.Fprintln(w, "paper:             CPU 0.1381/1.1537 s, FPGA 0.1533/2.4876 s")
	return nil
}
