package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

// Figure3Series summarizes the distribution of tuples over partitions for
// one key distribution and partitioning method — the data behind the CDFs
// of Figure 3.
type Figure3Series struct {
	Distribution workload.Distribution
	Hash         bool

	NumPartitions int
	EmptyParts    int
	MinTuples     int64
	P25, P50, P75 int64
	MaxTuples     int64
	// Imbalance is max/mean — 1.0 is perfectly balanced.
	Imbalance float64
	// CDF maps a tuples-per-partition threshold to the number of
	// partitions at or below it, at the paper's x-axis ticks.
	CDF map[int64]int
}

// Figure3Result holds all eight series (4 distributions × radix/hash).
type Figure3Result struct {
	Tuples int
	Series []Figure3Series
}

// RunFigure3 partitions each key distribution with radix and with murmur
// hash partitioning into 8192 partitions and reports the partition-size
// distributions. The paper uses 64 M keys; Scale shrinks that.
func RunFigure3(cfg Config) (*Figure3Result, error) {
	cfg = cfg.WithDefaults()
	// Keep at least ~128 tuples per partition so the partition-size
	// statistics are not dominated by sampling noise.
	n := int(64e6 * cfg.Scale)
	if n < 1<<20 {
		n = 1 << 20
	}
	const parts = 8192
	bits := hashutil.Log2(parts)
	res := &Figure3Result{Tuples: n}
	keys := make([]uint32, n)
	for _, d := range []workload.Distribution{workload.Linear, workload.Random, workload.Grid, workload.ReverseGrid} {
		if err := workload.NewGenerator(cfg.Seed).Keys(d, keys); err != nil {
			return nil, err
		}
		for _, hash := range []bool{false, true} {
			hist := make([]int64, parts)
			for _, k := range keys {
				hist[hashutil.PartitionIndex32(k, bits, hash)]++
			}
			res.Series = append(res.Series, summarize(d, hash, hist, n))
		}
	}
	return res, nil
}

func summarize(d workload.Distribution, hash bool, hist []int64, n int) Figure3Series {
	sorted := sortedCopy(hist)
	s := Figure3Series{
		Distribution:  d,
		Hash:          hash,
		NumPartitions: len(hist),
		MinTuples:     sorted[0],
		P25:           percentile(sorted, 25),
		P50:           percentile(sorted, 50),
		P75:           percentile(sorted, 75),
		MaxTuples:     sorted[len(sorted)-1],
		CDF:           map[int64]int{},
	}
	for _, c := range sorted {
		if c == 0 {
			s.EmptyParts++
		}
	}
	mean := float64(n) / float64(len(hist))
	if mean > 0 {
		s.Imbalance = float64(s.MaxTuples) / mean
	}
	// CDF at multiples of the mean (the paper's x-axis is absolute tuple
	// counts at fixed N; multiples of the mean are scale-free).
	for _, mult := range []float64{0.5, 1, 2, 4, 8} {
		threshold := int64(mean * mult)
		count := 0
		for _, c := range sorted {
			if c <= threshold {
				count++
			}
		}
		s.CDF[threshold] = count
	}
	return s
}

func runFigure3(cfg Config, w io.Writer) error {
	res, err := RunFigure3(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 3: tuples per partition across 8192 partitions (CDF summary)")
	fmt.Fprintf(w, "%d keys per distribution; mean = %d tuples/partition\n", res.Tuples, res.Tuples/8192)
	fmt.Fprintf(w, "%-13s %-6s %6s %6s %8s %8s %8s %8s %10s\n",
		"distribution", "method", "empty", "min", "p25", "p50", "p75", "max", "imbalance")
	for _, s := range res.Series {
		method := "radix"
		if s.Hash {
			method = "hash"
		}
		fmt.Fprintf(w, "%-13s %-6s %6d %6d %8d %8d %8d %8d %9.2fx\n",
			s.Distribution, method, s.EmptyParts, s.MinTuples, s.P25, s.P50, s.P75, s.MaxTuples, s.Imbalance)
	}
	fmt.Fprintln(w, "paper: radix is unbalanced for grid/reverse-grid keys (3a); hash is uniform for all (3b)")
	return nil
}
