// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has a Run function returning a typed result
// and a text renderer that prints the same rows/series the paper reports;
// cmd/repro drives them from the command line and bench_test.go exposes one
// benchmark per experiment.
//
// Absolute numbers differ from the paper — the CPU side is measured on the
// host running the tests (Go, not hand-tuned C with non-temporal SIMD) and
// the FPGA side is a cycle-level simulation against the calibrated platform
// model — but the shapes the paper argues from (who wins, by what factor,
// where crossovers fall) reproduce; EXPERIMENTS.md records the comparison.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the paper's relation sizes (default 1/16 —
	// workload A becomes 8 M ⋈ 8 M). Tests use much smaller scales.
	Scale float64
	// Seed makes runs reproducible.
	Seed int64
	// MaxThreads caps the thread sweeps (default min(10, GOMAXPROCS),
	// matching the paper's 10-core CPU).
	MaxThreads int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 16
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 10
		if n := runtime.GOMAXPROCS(0); n < 10 {
			c.MaxThreads = n
		}
	}
	return c
}

// threadSweep returns the paper's thread counts (1, 2, 4, 8, 10) clipped to
// the configured maximum.
func (c Config) threadSweep() []int {
	var out []int
	for _, t := range []int{1, 2, 4, 8, 10} {
		if t <= c.MaxThreads {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Experiment couples an identifier with its runner for cmd/repro.
type Experiment struct {
	ID          string
	Description string
	Run         func(cfg Config, w io.Writer) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Memory access behavior vs last writer (coherence)", runTable1},
		{"fig2", "Memory bandwidth vs read/write ratio", runFigure2},
		{"fig3", "Tuple distribution CDF: radix vs hash partitioning", runFigure3},
		{"fig4", "CPU partitioning throughput vs threads", runFigure4},
		{"table2", "FPGA resource usage vs tuple width", runTable2},
		{"fig8", "FPGA throughput vs tuple width", runFigure8},
		{"fig9", "Partitioning throughput across modes", runFigure9},
		{"model", "Cost model parameters and Section 4.8 validation", runModelValidation},
		{"fig10", "Join time vs number of partitions", runFigure10},
		{"fig11", "Join time vs threads (workloads A, B)", runFigure11},
		{"fig12", "Join time vs threads and key distribution (C, D, E)", runFigure12},
		{"fig13", "Join time vs Zipf skew", runFigure13},
		{"skewdetect", "Extension: PAD overflow detection point vs skew", runSkewDetect},
		{"future", "Extension: the circuit on future platforms", runFuture},
		{"dist", "Extension: distributed join over RDMA", runDistributed},
		{"compress", "Extension: partitioning RLE-compressed columns", runCompress},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// percentile returns the p-th percentile (0–100) of sorted data.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
