package experiments

import (
	"fmt"
	"io"

	"fpgapart/internal/core"
	"fpgapart/internal/model"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Figure8Point is one tuple-width measurement of Figure 8.
type Figure8Point struct {
	TupleWidth       int
	MTuplesPerS      float64
	GBps             float64
	ModelMTuplesPerS float64
}

// Figure8Result is the width sweep (HIST/RID mode, as in the paper).
type Figure8Result struct {
	Points []Figure8Point
}

// RunFigure8 runs the circuit simulator in HIST/RID mode for 8–64 B tuples
// on the Xeon+FPGA link and reports tuples/s, total data processed, and the
// cost model's prediction.
func RunFigure8(cfg Config) (*Figure8Result, error) {
	cfg = cfg.WithDefaults()
	p := platform.XeonFPGA()
	res := &Figure8Result{}
	// At least 64 MB per run, so the fixed 65540-cycle flush and its dummy
	// lines stay below ~7% and the cost model (which hides them in the
	// latency term) remains comparable.
	bytesBudget := int(1 << 30 * cfg.Scale * 4)
	if bytesBudget < 1<<26 {
		bytesBudget = 1 << 26
	}
	for _, width := range []int{8, 16, 32, 64} {
		n := bytesBudget / width
		rel, err := workload.NewGenerator(cfg.Seed).Relation(workload.Random, width, n)
		if err != nil {
			return nil, err
		}
		circuit, err := core.NewCircuit(core.Config{
			NumPartitions: 8192,
			TupleWidth:    width,
			Hash:          true,
			Format:        core.HIST,
		}, p.FPGAClockHz, p.FPGAAlone)
		if err != nil {
			return nil, err
		}
		_, stats, err := circuit.Partition(rel)
		if err != nil {
			return nil, err
		}
		m := model.Params{
			FPGAClockHz:    p.FPGAClockHz,
			TupleWidth:     width,
			N:              int64(n),
			Hist:           true,
			ReadWriteRatio: 2,
			Bandwidth:      p.FPGAAlone,
		}
		res.Points = append(res.Points, Figure8Point{
			TupleWidth:       width,
			MTuplesPerS:      stats.ThroughputTuplesPerSec() / 1e6,
			GBps:             stats.DataProcessedGBps(),
			ModelMTuplesPerS: m.TotalRate() / 1e6,
		})
	}
	return res, nil
}

func runFigure8(cfg Config, w io.Writer) error {
	res, err := RunFigure8(cfg)
	if err != nil {
		return err
	}
	header(w, "Figure 8: throughput and data processed vs tuple width (HIST/RID)")
	fmt.Fprintf(w, "%-12s %14s %18s %14s\n", "Tuple width", "Mtuples/s", "data processed GB/s", "model Mt/s")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-12s %14.0f %18.2f %14.0f\n",
			fmt.Sprintf("%dB", p.TupleWidth), p.MTuplesPerS, p.GBps, p.ModelMTuplesPerS)
	}
	fmt.Fprintln(w, "paper shape: tuples/s halves per width doubling; GB/s stays flat")
	return nil
}
