package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV runs experiment id and writes its data series as CSV — the
// plot-ready companion to the human-readable renderers. Every experiment in
// All() supports CSV export.
func WriteCSV(cfg Config, id string, w io.Writer) error {
	gen, ok := csvWriters()[id]
	if !ok {
		return fmt.Errorf("experiments: no CSV writer for %q", id)
	}
	cw := csv.NewWriter(w)
	if err := gen(cfg, cw); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// CSVIDs lists the experiments WriteCSV accepts.
func CSVIDs() []string {
	var ids []string
	for _, e := range All() {
		if _, ok := csvWriters()[e.ID]; ok {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func d(v int64) string   { return strconv.FormatInt(v, 10) }

func csvWriters() map[string]func(Config, *csv.Writer) error {
	return map[string]func(Config, *csv.Writer) error{
		"table1": func(cfg Config, w *csv.Writer) error {
			res, err := RunTable1(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"last_writer", "pattern", "seconds"})
			for _, r := range res.Rows {
				pattern := "sequential"
				if r.Random {
					pattern = "random"
				}
				w.Write([]string{r.LastWriter.String(), pattern, f(r.Seconds)})
			}
			return nil
		},
		"fig2": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure2(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"read_fraction", "cpu_alone", "cpu_interfered", "fpga_alone", "fpga_interfered", "host_measured"})
			for _, p := range res.Points {
				w.Write([]string{f(p.ReadFraction), f(p.CPUAlone), f(p.CPUInterfered), f(p.FPGAAlone), f(p.FPGAInterfered), f(p.HostMeasured)})
			}
			return nil
		},
		"fig3": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure3(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"distribution", "method", "empty", "min", "p25", "p50", "p75", "max", "imbalance"})
			for _, s := range res.Series {
				method := "radix"
				if s.Hash {
					method = "hash"
				}
				w.Write([]string{s.Distribution.String(), method, strconv.Itoa(s.EmptyParts),
					d(s.MinTuples), d(s.P25), d(s.P50), d(s.P75), d(s.MaxTuples), f(s.Imbalance)})
			}
			return nil
		},
		"fig4": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure4(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"distribution", "method", "threads", "mtuples_per_s"})
			for _, p := range res.Points {
				method := "radix"
				if p.Hash {
					method = "hash"
				}
				w.Write([]string{p.Distribution.String(), method, strconv.Itoa(p.Threads), f(p.MTuplesPerS)})
			}
			return nil
		},
		"table2": func(cfg Config, w *csv.Writer) error {
			res, err := RunTable2(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"tuple_width", "logic_pct", "bram_pct", "dsp_pct", "alms", "m20ks", "dsps"})
			for _, r := range res.Rows {
				w.Write([]string{strconv.Itoa(r.TupleWidth), f(r.LogicPct), f(r.BRAMPct), f(r.DSPPct),
					strconv.Itoa(r.ALMs), strconv.Itoa(r.M20Ks), strconv.Itoa(r.DSPBlocks)})
			}
			return nil
		},
		"fig8": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure8(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"tuple_width", "mtuples_per_s", "gbps", "model_mtuples_per_s"})
			for _, p := range res.Points {
				w.Write([]string{strconv.Itoa(p.TupleWidth), f(p.MTuplesPerS), f(p.GBps), f(p.ModelMTuplesPerS)})
			}
			return nil
		},
		"fig9": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure9(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"configuration", "mtuples_per_s", "model", "paper", "reference"})
			for _, b := range res.Bars {
				w.Write([]string{b.Name, f(b.MTuplesPerS), f(b.Model), f(b.Paper), strconv.FormatBool(b.Reference)})
			}
			return nil
		},
		"model": func(cfg Config, w *csv.Writer) error {
			res, err := RunModelValidation(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"mode", "ratio", "bandwidth_gbps", "predicted_tuples_per_s", "paper_tuples_per_s"})
			for _, v := range res.Rows {
				w.Write([]string{v.Mode, f(v.Ratio), f(v.Bandwidth), f(v.Predicted), f(v.Paper)})
			}
			return nil
		},
		"fig10": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure10(cfg)
			if err != nil {
				return err
			}
			writeJoinHeader(w, true)
			for _, p := range res.Points {
				writeJoinPoint(w, p, true, "")
			}
			return nil
		},
		"fig11": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure11(cfg)
			if err != nil {
				return err
			}
			writeJoinHeader(w, false)
			for id, pts := range res.Results {
				for _, p := range pts {
					writeJoinPoint(w, p, false, string(id))
				}
			}
			return nil
		},
		"fig12": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure12(cfg)
			if err != nil {
				return err
			}
			writeJoinHeader(w, false)
			for id, pts := range res.Results {
				for _, p := range pts {
					writeJoinPoint(w, p, false, string(id))
				}
			}
			return nil
		},
		"fig13": func(cfg Config, w *csv.Writer) error {
			res, err := RunFigure13(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"zipf", "system", "partition_s", "build_probe_s", "total_s", "model_partition_s"})
			for i, p := range res.Points {
				w.Write([]string{f(res.Factors[i]), p.System, f(p.PartitionSec), f(p.BuildProbeSec), f(p.TotalSec), f(p.ModelPartitionSec)})
			}
			return nil
		},
		"skewdetect": func(cfg Config, w *csv.Writer) error {
			res, err := RunSkewDetect(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"zipf", "seed", "overflowed", "detected_at_fraction"})
			for _, p := range res.Points {
				w.Write([]string{f(p.ZipfFactor), d(p.Seed), strconv.FormatBool(p.Overflowed), f(p.DetectedAtFraction)})
			}
			return nil
		},
		"future": func(cfg Config, w *csv.Writer) error {
			res, err := RunFuture(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"platform", "mtuples_per_s"})
			for _, r := range res.Rows {
				w.Write([]string{r.Platform, f(r.MTuplesPerS)})
			}
			return nil
		},
		"dist": func(cfg Config, w *csv.Writer) error {
			res, err := RunDistributed(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"nodes", "backend", "partition_s", "exchange_s", "join_s", "total_s", "bytes_exchanged"})
			for _, r := range res.Rows {
				backend := "cpu"
				if r.FPGA {
					backend = "fpga"
				}
				w.Write([]string{strconv.Itoa(r.Nodes), backend, f(r.PartitionSec), f(r.ExchangeSec), f(r.JoinSec), f(r.TotalSec), d(r.BytesExchanged)})
			}
			return nil
		},
		"compress": func(cfg Config, w *csv.Writer) error {
			res, err := RunCompress(cfg)
			if err != nil {
				return err
			}
			w.Write([]string{"run_length", "rle_ratio", "plain_mtps", "compressed_mtps"})
			for _, r := range res.Rows {
				w.Write([]string{strconv.Itoa(r.AvgRunLength), f(r.Ratio), f(r.PlainMTps), f(r.CompMTps)})
			}
			return nil
		},
	}
}

func writeJoinHeader(w *csv.Writer, withParts bool) {
	cols := []string{"workload", "system", "threads", "partition_s", "build_probe_s", "total_s", "model_partition_s", "fell_back"}
	if withParts {
		cols = append([]string{"partitions"}, cols...)
	}
	w.Write(cols)
}

func writeJoinPoint(w *csv.Writer, p JoinPoint, withParts bool, workload string) {
	row := []string{workload, p.System, strconv.Itoa(p.Threads), f(p.PartitionSec),
		f(p.BuildProbeSec), f(p.TotalSec), f(p.ModelPartitionSec), strconv.FormatBool(p.FellBack)}
	if withParts {
		row = append([]string{strconv.Itoa(p.Partitions)}, row...)
	}
	w.Write(row)
}
