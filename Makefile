# Tier-1 verification and development targets.
#
#   make verify   — full gate: build, vet, fpgavet lint, race-free tests,
#                   race-enabled tests
#   make tier1    — the minimal tier-1 loop (build + test)
#   make lint     — fpgavet static-analysis suite (determinism, panic
#                   boundary, error hygiene, clocked components)
#
# The race target skips fpgapart/experiments: it re-runs every paper
# experiment and the race detector's ~10x overhead pushes it past any
# practical budget. It is sequential simulation code and stays covered
# by the race-free `test` target.

GO ?= go

.PHONY: verify tier1 build vet lint lint-fix test race

verify: build vet lint test race

tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/fpgavet ./...

# lint-fix reports findings as clickable file:line locations; automated
# rewriting is not implemented, so it always exits 0 and leaves the fixes
# to the developer (or to `//fpgavet:allow` where a violation is intended).
lint-fix:
	@$(GO) run ./cmd/fpgavet ./... \
		&& echo "fpgavet: nothing to fix" \
		|| echo "fpgavet: automated fixes are not implemented — apply the findings above by hand or suppress with //fpgavet:allow <analyzer> <reason>"

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m $$($(GO) list ./... | grep -v fpgapart/experiments)
