# Tier-1 verification and development targets.
#
#   make verify   — full gate: build, vet, race-free tests, race-enabled tests
#   make tier1    — the minimal tier-1 loop (build + test)
#
# The race target skips fpgapart/experiments: it re-runs every paper
# experiment and the race detector's ~10x overhead pushes it past any
# practical budget. It is sequential simulation code and stays covered
# by the race-free `test` target.

GO ?= go

.PHONY: verify tier1 build vet test race

verify: build vet test race

tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m $$($(GO) list ./... | grep -v fpgapart/experiments)
