# Tier-1 verification and development targets.
#
#   make verify   — full gate: build, vet, fpgavet lint, race-free tests,
#                   race-enabled tests
#   make tier1    — the minimal tier-1 loop (build + test)
#   make lint     — fpgavet static-analysis suite (determinism,
#                   boundary-reach, error hygiene, clocked components,
#                   bench-json, hosttime-taint, hotpath-alloc)
#   make lint-json — same suite, findings as a machine-readable JSON array
#                   (what the CI lint job uploads as an artifact)
#   make bench    — regenerate the committed perfbench baseline
#   make bench-gate — run the perf matrix and fail on any gated
#                   (simulated, deterministic) metric change vs the baseline
#
# The race target skips fpgapart/experiments: it re-runs every paper
# experiment and the race detector's ~10x overhead pushes it past any
# practical budget. It is sequential simulation code and stays covered
# by the race-free `test` target.

GO ?= go

.PHONY: verify tier1 build vet lint lint-json lint-fix test race bench bench-gate trace-demo fuzz

verify: build vet lint test race

tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/fpgavet ./...

# lint-json emits the same findings as a stable JSON array on stdout; CI
# redirects it to fpgavet.json and uploads it as an artifact.
lint-json:
	$(GO) run ./cmd/fpgavet -json ./...

# lint-fix reports findings as clickable file:line locations; automated
# rewriting is not implemented, so it always exits 0 and leaves the fixes
# to the developer (or to `//fpgavet:allow` where a violation is intended).
lint-fix:
	@$(GO) run ./cmd/fpgavet ./... \
		&& echo "fpgavet: nothing to fix" \
		|| echo "fpgavet: automated fixes are not implemented — apply the findings above by hand or suppress with //fpgavet:allow <analyzer> <reason>"

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m $$($(GO) list ./... | grep -v fpgapart/experiments)

# bench regenerates the committed baseline. Only needed after an intentional
# change to the simulator's cycle behavior or the scenario matrix; commit the
# updated bench/baseline/BENCH_*.json with the change that caused it.
bench:
	$(GO) run ./cmd/perfbench run -out bench/baseline

# bench-gate is the zero-noise perf regression gate: the gated metrics are
# simulated cycles (deterministic for a fixed seed), so any diff against the
# baseline is a true regression. On failure the diverging report is left at
# bench/baseline/BENCH_<suite>.got.json.
bench-gate:
	$(GO) run ./cmd/perfbench run -out bench/out
	@fail=0; \
	for suite in partition join distjoin sched memory cluster reqtrace; do \
		$(GO) run ./cmd/perfbench compare bench/baseline/BENCH_$$suite.json bench/out/BENCH_$$suite.json || fail=1; \
	done; \
	exit $$fail

# trace-demo exercises the causal-tracing stack end to end on a faulty
# sharded run: prints the critical-path profile and writes the per-request
# breakdown JSON, the flight-recorder postmortem, and the Chrome trace
# (open bench/out/trace.json in chrome://tracing or Perfetto — the req*
# track carries the root spans and flow arrows).
trace-demo:
	@mkdir -p bench/out
	$(GO) run ./cmd/cluster run -requests 32 -quota 2 -hot 0.4 -faulty \
		-reqtrace bench/out/reqtrace_breakdown.json \
		-flight bench/out/flight_postmortem.txt \
		-trace bench/out/trace.json

# fuzz runs each differential fuzz target for a short smoke window (Go's
# fuzzer accepts one -fuzz target per invocation). CI runs the same loop;
# raise FUZZTIME locally for a deeper session.
FUZZTIME ?= 30s
fuzz:
	@for t in \
		./internal/cpupart:FuzzPartIndex \
		./internal/cpupart:FuzzBufferedPartition \
		./internal/cpupart:FuzzBufferedAgainstHistogram \
		./hashjoin:FuzzJoinUnderBudget \
		./cluster:FuzzClusterRoute \
		./cluster:FuzzMembershipSchedule; do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
