package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
	"fpgapart/partserver"
)

// ErrSimulatorFault is reported (wrapped) when an invariant violation inside
// the simulator internals panics during a cluster run. Run converts such
// panics into errors at the public API boundary. Test with
// errors.Is(err, ErrSimulatorFault).
var ErrSimulatorFault = errors.New("cluster: simulator invariant fault")

// guardSimulator converts a panic escaping the simulator into an
// ErrSimulatorFault-wrapping error. Used via defer with a named return.
func guardSimulator(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// HedgeAuto selects the running-percentile hedge deadline: a request is
// hedged when its primary response is outstanding past the p95 of all
// responses completed by its admission time (deterministic — the percentile
// is computed over virtual-time completions, which are themselves pure
// functions of stream, config and seed). Fewer than hedgeMinSamples
// completed responses means no hedge: the estimate is not trustworthy yet.
const HedgeAuto int64 = -1

// hedgeMinSamples gates the HedgeAuto estimator until it has seen enough
// completed responses to make p95 meaningful.
const hedgeMinSamples = 8

// hedgeLaneSalt separates the hedge lane's per-shard scheduler seeds from
// the primary lane's, so a replica's hedge execution is an independent —
// but still fully deterministic — draw.
const hedgeLaneSalt uint64 = 0x68656467 // "hedg"

// Request is one tenant request entering the cluster frontend: a routing
// key, the tenant it bills to, and the partserver job to execute on
// whichever shard the ring selects. Job.ArrivalUS is the request's virtual
// arrival time at the router; Job.Tag is overwritten by the router (it
// carries the request index through the scatter-gather merge).
type Request struct {
	// Tenant identifies the billing tenant for admission quotas (≥ 0).
	Tenant int
	// Key is the routing key hashed onto the ring.
	Key uint64
	// Job is the work item forwarded to the selected shard.
	Job partserver.Job
}

// Config describes one cluster deployment: the shard pool, the ring, the
// per-tenant admission quota, the membership churn schedule, replica
// routing, and the fault scenario.
type Config struct {
	// Shards is the number of partserver shards (default 3), ids 0..Shards-1.
	Shards int
	// VNodes is the per-shard virtual-node count on the ring (default 128).
	VNodes int

	// ShardFPGAs and ShardWorkers size each shard's resource pool
	// (defaults 1 and 1).
	ShardFPGAs   int
	ShardWorkers int

	// TenantQuota caps how many requests one tenant may admit per
	// QuotaWindowUS window (0 disables quotas). A request over quota is
	// deferred to the next window — delayed, never dropped — so a hot
	// tenant's burst stretches its own latency instead of everyone's.
	TenantQuota int
	// QuotaWindowUS is the admission window length (default 1000 µs).
	QuotaWindowUS int64

	// Schedule lists live membership changes (shard joins and drains) at
	// virtual times. Requests admitted at or after an event route on the
	// post-event ring; only the key ranges whose owner changed re-route, and
	// they re-route behind a deterministic handoff barrier: the new owner
	// serves a moved key only after the old owner has drained the work it
	// had already admitted for the moved ranges. In-flight jobs always
	// complete on their admission-time owner. Empty means a static ring.
	Schedule MembershipSchedule

	// Replicas is the replica-set width R (default 1): each key's replica
	// set is the first R distinct members clockwise from its hash, the
	// primary first. Hedged reads go to the first non-primary replica.
	Replicas int

	// HedgeUS enables hedged reads when nonzero (requires Replicas ≥ 2):
	// a request whose primary response is outstanding past the deadline is
	// re-issued to its first replica, the first completion wins, and the
	// loser is cancelled through the scheduler's cancel path. A positive
	// value is a fixed virtual-time deadline in µs; HedgeAuto (-1) tracks
	// the running p95 of completed responses. 0 disables hedging.
	HedgeUS int64

	// Seed drives per-shard scheduler seeding (default 1).
	Seed uint64

	// Faults optionally degrades shards: Crashes entries with Node = shard
	// id kill that shard's accept path after AfterFraction of its fair share
	// of the request stream; later requests fail over clockwise around the
	// ring. Jobs already admitted to a crashing shard still complete (the
	// crash models the frontend, not the workers). Stragglers entries with
	// Node = shard id slow every FPGA instance of that shard by Factor —
	// the straggler profile hedged reads are measured against. Other
	// scenario fields do not apply at the routing tier and are ignored.
	Faults *faults.Scenario

	// Trace attaches a simtrace session: the router reports request routing
	// samples, per-shard serve spans, crash instants, and the cluster
	// counters/histogram the perf gate pins. All emission happens after the
	// deterministic harvest, in fixed order, so traces are byte-identical
	// across same-seed runs. Nil disables tracing.
	Trace *simtrace.Session

	// ReqTrace attaches a causal request capture: every request gets a
	// deterministic trace context (TraceID derived from Seed and request
	// index), an exact virtual-time latency decomposition spanning router
	// quota deferral, migration handoff, hedge wait, shard queueing,
	// batching, reconfiguration, execution, spill and retries, and a span
	// chain for critical-path analysis. The capture's flight recorder is
	// filled even when the run fails — the postmortem case. Nil disables
	// capture at zero cost.
	ReqTrace *reqtrace.Capture
}

// WithDefaults returns a copy with unset knobs filled in.
func (c Config) WithDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.VNodes == 0 {
		c.VNodes = 128
	}
	if c.ShardFPGAs == 0 && c.ShardWorkers == 0 {
		c.ShardFPGAs = 1
		c.ShardWorkers = 1
	}
	if c.QuotaWindowUS == 0 {
		c.QuotaWindowUS = 1000
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() (err error) {
	defer guardSimulator(&err)
	if c.Shards < 1 {
		return fmt.Errorf("cluster: Shards %d < 1", c.Shards)
	}
	if c.VNodes < 1 || c.VNodes > MaxVNodes {
		return fmt.Errorf("cluster: VNodes %d outside [1, %d]", c.VNodes, MaxVNodes)
	}
	if c.ShardFPGAs < 0 || c.ShardWorkers < 0 || c.ShardFPGAs+c.ShardWorkers == 0 {
		return fmt.Errorf("cluster: each shard needs at least one resource (ShardFPGAs %d, ShardWorkers %d)", c.ShardFPGAs, c.ShardWorkers)
	}
	if c.TenantQuota < 0 {
		return fmt.Errorf("cluster: negative TenantQuota %d", c.TenantQuota)
	}
	if c.QuotaWindowUS < 1 {
		return fmt.Errorf("cluster: QuotaWindowUS %d < 1", c.QuotaWindowUS)
	}
	if err := c.Schedule.Validate(c.Shards); err != nil {
		return err
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas %d < 1", c.Replicas)
	}
	if c.HedgeUS < HedgeAuto {
		return fmt.Errorf("cluster: HedgeUS %d < %d (HedgeAuto)", c.HedgeUS, HedgeAuto)
	}
	if c.HedgeUS != 0 && c.Replicas < 2 {
		return fmt.Errorf("cluster: hedged reads need Replicas ≥ 2, have %d", c.Replicas)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		for _, cr := range c.Faults.Crashes {
			if cr.Node >= c.Shards {
				return fmt.Errorf("cluster: crash of shard %d outside pool of %d", cr.Node, c.Shards)
			}
		}
		for _, st := range c.Faults.Stragglers {
			if st.Node >= c.Shards {
				return fmt.Errorf("cluster: straggler shard %d outside pool of %d", st.Node, c.Shards)
			}
		}
	}
	return nil
}

// mix is splitmix64's finalizer, the shard-seed derivation hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// quotaKey is one tenant's admission window.
type quotaKey struct {
	tenant int
	window int64
}

// routed is the router's per-request admission decision, in request order.
type routed struct {
	shard     int // -1: never admitted (all shards dead)
	primary   int // ring owner before failover
	admitUS   int64
	throttled bool
	// epoch is the membership epoch at admission; handoffUS the drain-barrier
	// wait imposed because the request's key had just moved owner.
	epoch     int
	handoffUS int64
	// hedged/hedgeShard/hedgeIssueUS describe a replica hedge; hedgeWon marks
	// the hedge lane finishing strictly first, hedgeDoneUS its completion.
	hedged       bool
	hedgeShard   int
	hedgeIssueUS int64
	hedgeWon     bool
	hedgeDoneUS  int64
}

// runState is the working state of one cluster run, threaded through the
// route → migrate → serve → hedge → gather phases. Every field is a pure
// function of (requests, config, seed) by the time the phase that fills it
// returns — the determinism argument is phase-local.
type runState struct {
	reqs []Request
	cfg  Config

	// rings[e] is the ring of membership epoch e; events the schedule.
	rings  []*Ring
	events MembershipSchedule
	// numShards sizes every per-shard array: the largest shard id that is
	// ever a ring member, plus one. Departed shards keep their slot, so the
	// report can state a drained shard's cumulative load.
	numShards int

	inj      *faults.Injector
	dieAfter []int // -1: never crashes
	dead     []bool
	crashUS  []int64
	// shardScen is the per-shard partserver fault scenario (stragglers
	// mapped onto the shard's FPGA instances); nil for healthy shards.
	shardScen []*faults.Scenario

	order     []int
	decisions []routed
	jobPos    []int // position within the shard's job list (-1: unrouted)
	served    []int
	shardJobs [][]partserver.Job // admission-time jobs (ArrivalUS = admit)

	// barriers[j][o] is the handoff barrier of membership event j for old
	// owner o: the virtual time o drains the work it had admitted for the
	// ranges event j moved away. handoff[idx] is the per-request wait.
	barriers [][]int64
	handoff  []int64

	throttleDelayUS int64

	shardReps []*partserver.Report
	finDone   []int64
	finStatus []partserver.Status

	// Hedge lane: per-replica job lists, positions, reports, and the
	// per-request lane result (nil when the request was not hedged).
	laneJobs [][]partserver.Job
	lanePos  []int
	laneReps []*partserver.Report
	laneRes  []*partserver.JobResult

	plumb *capturePlumbing
}

func newRunState(reqs []Request, cfg Config) (*runState, error) {
	rings, err := cfg.Schedule.epochs(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	st := &runState{
		reqs:      reqs,
		cfg:       cfg,
		rings:     rings,
		events:    cfg.Schedule,
		numShards: cfg.Schedule.maxMember(cfg.Shards) + 1,
	}
	if cfg.Faults != nil {
		st.inj, err = faults.New(*cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	// Crash thresholds: a crashing shard accepts exactly
	// floor(AfterFraction · fair share) requests, then fail-stops its accept
	// path. AfterFraction 0 is dead on arrival. Only the initial pool can
	// crash (Validate pins crash ids below Shards); joined shards keep the
	// zero values.
	share := (len(reqs) + cfg.Shards - 1) / cfg.Shards
	st.dieAfter = make([]int, st.numShards)
	st.dead = make([]bool, st.numShards)
	st.crashUS = make([]int64, st.numShards)
	st.shardScen = make([]*faults.Scenario, st.numShards)
	for s := 0; s < st.numShards; s++ {
		st.dieAfter[s] = -1
		if st.inj == nil || s >= cfg.Shards {
			continue
		}
		if f, ok := st.inj.CrashFraction(s); ok {
			st.dieAfter[s] = int(f * float64(share))
			if st.dieAfter[s] == 0 {
				st.dead[s] = true
			}
		}
		// A straggling shard straggles all of its FPGA instances: the
		// cluster-level Straggler.Node names the shard, the shard-level
		// scenario names the instances.
		if f := st.inj.StraggleFactor(s); f > 1 {
			scen := &faults.Scenario{Seed: mix(cfg.Seed ^ uint64(s+1))}
			for i := 0; i < cfg.ShardFPGAs; i++ {
				scen.Stragglers = append(scen.Stragglers, faults.Straggler{Node: i, Factor: f})
			}
			st.shardScen[s] = scen
		}
	}

	// Admission order: (ArrivalUS, index), the virtual-time order requests
	// reach the router.
	st.order = make([]int, len(reqs))
	for i := range st.order {
		st.order[i] = i
	}
	for i := 1; i < len(st.order); i++ {
		// Insertion sort keeps the tie-break (index order) explicit and
		// allocation-free; request streams are admission-rate bounded.
		for k := i; k > 0; k-- {
			a, b := st.order[k-1], st.order[k]
			if reqs[a].Job.ArrivalUS < reqs[b].Job.ArrivalUS ||
				(reqs[a].Job.ArrivalUS == reqs[b].Job.ArrivalUS && a < b) {
				break
			}
			st.order[k-1], st.order[k] = b, a
		}
	}

	st.decisions = make([]routed, len(reqs))
	st.jobPos = make([]int, len(reqs))
	st.served = make([]int, st.numShards)
	st.shardJobs = make([][]partserver.Job, st.numShards)
	st.handoff = make([]int64, len(reqs))
	st.lanePos = make([]int, len(reqs))
	st.laneRes = make([]*partserver.JobResult, len(reqs))
	for i := range st.lanePos {
		st.lanePos[i] = -1
	}
	st.plumb = newCapturePlumbing(cfg.ReqTrace, st.numShards)
	return st, nil
}

// route makes every admission decision in (ArrivalUS, index) order:
// per-tenant quota deferral first (which fixes the admit time and thereby
// the membership epoch), then crash bookkeeping, then ring lookup on the
// epoch's ring with clockwise failover past dead shards.
func (st *runState) route() {
	for j := range st.events {
		ev := &st.events[j]
		kind := "shard_join"
		if ev.Kind == Drain {
			kind = "shard_drain"
		}
		st.plumb.record(ev.AtUS, kind, -1, int64(ev.Shard))
	}

	quota := make(map[quotaKey]int)
	alive := func(s int) bool { return !st.dead[s] }
	for _, idx := range st.order {
		r := &st.reqs[idx]
		d := routed{shard: -1, hedgeShard: -1}

		// Per-tenant admission quota: defer over-quota requests to the next
		// window until one has room. Deferral preserves the work (and thus
		// checksum parity with the single-node reference); it only delays it.
		admit := r.Job.ArrivalUS
		if st.cfg.TenantQuota > 0 {
			for {
				w := admit / st.cfg.QuotaWindowUS
				k := quotaKey{tenant: r.Tenant, window: w}
				if quota[k] < st.cfg.TenantQuota {
					quota[k]++
					break
				}
				admit = (w + 1) * st.cfg.QuotaWindowUS
				d.throttled = true
			}
		}
		if d.throttled {
			st.throttleDelayUS += admit - r.Job.ArrivalUS
			st.plumb.record(admit, "throttle", idx, admit-r.Job.ArrivalUS)
		}
		d.admitUS = admit
		d.epoch = st.events.epochAt(admit)
		ring := st.rings[d.epoch]
		d.primary = ring.Shard(r.Key)

		// Ring lookup with clockwise failover past fail-stopped shards.
		shard, ok := ring.ShardSkipping(r.Key, alive)
		st.jobPos[idx] = -1
		if ok {
			d.shard = shard
			if shard != d.primary {
				st.plumb.record(admit, "failover", idx, int64(shard))
			}
			job := r.Job
			job.Tag = int64(idx)
			job.ArrivalUS = admit
			st.jobPos[idx] = len(st.shardJobs[shard])
			st.shardJobs[shard] = append(st.shardJobs[shard], job)
			st.served[shard]++
			if st.dieAfter[shard] >= 0 && st.served[shard] >= st.dieAfter[shard] && !st.dead[shard] {
				st.dead[shard] = true
				st.crashUS[shard] = admit
				st.plumb.record(admit, "shard_crash", -1, int64(shard))
			}
		} else {
			st.plumb.record(admit, "unrouted", idx, int64(d.primary))
		}
		st.decisions[idx] = d
	}
}

// migrate computes the handoff barriers of the membership schedule, one
// event at a time in schedule order. For event j the barrier of old owner o
// is the completion time of the last request o had admitted for the ranges
// event j moved away — measured on a planning pass that replays the shards
// with the barriers of events < j already applied, using the exact seeds of
// the real serve pass. Requests admitted after the event whose key moved
// then wait until their old owner's barrier before arriving at the new
// owner ("plan-then-execute": the barrier is a pure function of stream,
// config and seed, never of live queue state).
func (st *runState) migrate() error {
	if len(st.events) == 0 {
		return nil
	}
	st.barriers = make([][]int64, len(st.events))
	for j := range st.events {
		st.barriers[j] = make([]int64, st.numShards)
		reps, err := st.runShards(st.jobsWithHandoff(), nil, 0, "")
		if err != nil {
			return fmt.Errorf("cluster: planning membership event %d: %w", j, err)
		}
		refDone := make([]int64, len(st.reqs))
		for s := range reps {
			if reps[s] == nil {
				continue
			}
			for k := range reps[s].Results {
				jr := &reps[s].Results[k]
				refDone[jr.Tag] = jr.DoneUS
			}
		}
		oldRing, newRing := st.rings[j], st.rings[j+1]
		// Barrier: drain point of each old owner's moved ranges.
		for idx := range st.reqs {
			d := &st.decisions[idx]
			if d.shard < 0 || d.epoch > j {
				continue
			}
			key := st.reqs[idx].Key
			o := oldRing.Shard(key)
			if d.shard != o || newRing.Shard(key) == o {
				continue
			}
			if refDone[idx] > st.barriers[j][o] {
				st.barriers[j][o] = refDone[idx]
			}
		}
		// Handoff: post-event requests for moved keys wait out the barrier.
		// A later event that moves the key again supersedes this one (its
		// pass re-applies over these values).
		for idx := range st.reqs {
			d := &st.decisions[idx]
			if d.shard < 0 || d.epoch <= j {
				continue
			}
			key := st.reqs[idx].Key
			o, n := oldRing.Shard(key), newRing.Shard(key)
			if o == n || d.shard != n {
				continue
			}
			w := st.barriers[j][o] - d.admitUS
			if w < 0 {
				w = 0
			}
			d.handoffUS = w
			st.handoff[idx] = w
			st.plumb.record(d.admitUS, "range_moved", idx, int64(n))
		}
	}
	return nil
}

// jobsWithHandoff returns the per-shard job lists with each migrating
// request's shard arrival pushed to admit + handoff. Zero-handoff runs
// return the admission-time lists unchanged (and uncopied).
func (st *runState) jobsWithHandoff() [][]partserver.Job {
	delayed := false
	for idx := range st.handoff {
		if st.handoff[idx] > 0 {
			delayed = true
			break
		}
	}
	if !delayed {
		return st.shardJobs
	}
	jobs := make([][]partserver.Job, st.numShards)
	for s := range jobs {
		jobs[s] = append([]partserver.Job(nil), st.shardJobs[s]...)
	}
	for idx := range st.handoff {
		if st.handoff[idx] <= 0 {
			continue
		}
		d := &st.decisions[idx]
		jobs[d.shard][st.jobPos[idx]].ArrivalUS = d.admitUS + st.handoff[idx]
	}
	return jobs
}

// runShards runs one partserver deployment per non-empty shard, on real
// concurrent goroutines, and harvests in shard-index order. salt separates
// the seed streams of the serve and hedge lanes (0 is the primary lane);
// lane prefixes the shards' causal-record components; rec supplies the
// per-shard recorder (nil for unrecorded planning passes).
func (st *runState) runShards(jobs [][]partserver.Job, rec func(int) *reqtrace.Recorder, salt uint64, lane string) ([]*partserver.Report, error) {
	reps := make([]*partserver.Report, st.numShards)
	errs := make([]error, st.numShards)
	var wg sync.WaitGroup
	for s := 0; s < st.numShards; s++ {
		if len(jobs[s]) == 0 {
			continue
		}
		var r *reqtrace.Recorder
		if rec != nil {
			r = rec(s)
		}
		wg.Add(1)
		go func(s int, r *reqtrace.Recorder) {
			defer wg.Done()
			seed := mix(st.cfg.Seed ^ uint64(s+1) ^ salt)
			if seed == 0 {
				seed = 1
			}
			reps[s], errs[s] = partserver.Run(jobs[s], partserver.Config{
				FPGAs:   st.cfg.ShardFPGAs,
				Workers: st.cfg.ShardWorkers,
				Seed:    seed,
				Faults:  st.shardScen[s],
				Lane:    lane,
				Record:  r,
			})
		}(s, r)
	}
	wg.Wait()
	for s := 0; s < st.numShards; s++ {
		if errs[s] != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, errs[s])
		}
	}
	return reps, nil
}

// serve runs the primary lane — every admitted request on its owner, with
// migration handoffs applied — and indexes the per-request completions.
func (st *runState) serve() error {
	reps, err := st.runShards(st.jobsWithHandoff(), st.plumb.shardRecorder, 0, "")
	if err != nil {
		return err
	}
	st.shardReps = reps
	st.finDone = make([]int64, len(st.reqs))
	st.finStatus = make([]partserver.Status, len(st.reqs))
	for i := range st.finStatus {
		st.finStatus[i] = partserver.StatusFailed
	}
	for s := range reps {
		if reps[s] == nil {
			continue
		}
		for k := range reps[s].Results {
			jr := &reps[s].Results[k]
			st.finDone[jr.Tag] = jr.DoneUS
			st.finStatus[jr.Tag] = jr.Status
		}
	}
	return nil
}

// hedgeDeadline returns request idx's hedge deadline in µs past admission.
// Fixed mode returns HedgeUS; HedgeAuto the nearest-rank p95 of the
// router-observed latencies of requests completed by idx's admission (ok is
// false until hedgeMinSamples responses have completed).
func (st *runState) hedgeDeadline(idx int) (int64, bool) {
	if st.cfg.HedgeUS > 0 {
		return st.cfg.HedgeUS, true
	}
	admit := st.decisions[idx].admitUS
	samples := make([]int64, 0, len(st.reqs))
	for j := range st.reqs {
		if st.finStatus[j] == partserver.StatusDone && st.finDone[j] <= admit {
			samples = append(samples, st.finDone[j]-st.decisions[j].admitUS)
		}
	}
	if len(samples) < hedgeMinSamples {
		return 0, false
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return percentile(samples, 95), true
}

// hedgeTarget picks request idx's hedge destination: the first non-primary
// member of the key's admission-epoch replica set that is still a member at
// issue time and not crashed by then (-1: no eligible replica).
func (st *runState) hedgeTarget(idx int, issueUS int64) int {
	d := &st.decisions[idx]
	reps := st.rings[d.epoch].ReplicaSet(st.reqs[idx].Key, st.cfg.Replicas)
	issueRing := st.rings[st.events.epochAt(issueUS)]
	for _, c := range reps[1:] {
		if c == d.shard || !issueRing.Member(c) {
			continue
		}
		if st.dead[c] && st.crashUS[c] <= issueUS {
			continue
		}
		return c
	}
	return -1
}

// hedge issues replica hedges for every completed request whose primary
// response was outstanding past its deadline, runs the hedge lane (its own
// per-replica schedulers, derived seeds, losers cancelled at the primary's
// completion), and records the winners. The loop visits requests in index
// order and every input is already deterministic, so the hedge plan —
// and thus the whole run — stays a pure function of (stream, config, seed).
func (st *runState) hedge() error {
	if st.cfg.HedgeUS == 0 {
		return nil
	}
	st.laneJobs = make([][]partserver.Job, st.numShards)
	issued := false
	for idx := range st.reqs {
		d := &st.decisions[idx]
		if d.shard < 0 || st.finStatus[idx] != partserver.StatusDone {
			continue
		}
		deadline, ok := st.hedgeDeadline(idx)
		if !ok || deadline <= 0 || st.finDone[idx]-d.admitUS <= deadline {
			continue
		}
		issueUS := d.admitUS + deadline
		c := st.hedgeTarget(idx, issueUS)
		if c < 0 {
			continue
		}
		job := st.reqs[idx].Job
		job.Tag = int64(idx)
		job.ArrivalUS = issueUS
		// First completion wins: the hedge is cancelled through the
		// scheduler's cancel path the instant the primary finishes, unless
		// it is already executing (then it completes as wasted work).
		if job.CancelAtUS == 0 || st.finDone[idx] < job.CancelAtUS {
			job.CancelAtUS = st.finDone[idx]
		}
		d.hedged = true
		d.hedgeShard = c
		d.hedgeIssueUS = issueUS
		st.lanePos[idx] = len(st.laneJobs[c])
		st.laneJobs[c] = append(st.laneJobs[c], job)
		st.plumb.record(issueUS, "hedge_issued", idx, int64(c))
		issued = true
	}
	if !issued {
		return nil
	}
	reps, err := st.runShards(st.laneJobs, st.plumb.laneRecorder, hedgeLaneSalt, "hedge")
	if err != nil {
		return err
	}
	st.laneReps = reps
	for s := range reps {
		if reps[s] == nil {
			continue
		}
		for k := range reps[s].Results {
			jr := &reps[s].Results[k]
			idx := int(jr.Tag)
			d := &st.decisions[idx]
			st.laneRes[idx] = jr
			d.hedgeDoneUS = jr.DoneUS
			if jr.Status == partserver.StatusDone && jr.DoneUS < st.finDone[idx] {
				d.hedgeWon = true
				st.plumb.record(jr.DoneUS, "hedge_won", idx, int64(d.hedgeShard))
			}
		}
	}
	return nil
}

// Run routes reqs across the configured shard pool and blocks until every
// admitted request completes on its shard. The full request stream is
// supplied up front because deterministic virtual-time admission needs the
// arrival order independent of host scheduling.
//
// The run proceeds in phases, each a pure function of the previous ones:
// route (admission decisions on the per-epoch rings), migrate (handoff
// barriers of the membership schedule), serve (the primary lane on real
// concurrent goroutines, harvested in shard order), hedge (the replica
// hedge lane), gather (the merged report). Same seed + requests + config
// therefore render a byte-identical Report, trace and metrics snapshot,
// even under the race detector; a static, unhedged configuration takes the
// exact single-pass path — and produces the exact bytes — of the
// pre-membership router.
func Run(reqs []Request, cfg Config) (rep *Report, err error) {
	defer guardSimulator(&err)
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := range reqs {
		if reqs[i].Tenant < 0 {
			return nil, fmt.Errorf("cluster: request %d negative tenant %d", i, reqs[i].Tenant)
		}
		if reqs[i].Job.ArrivalUS < 0 {
			return nil, fmt.Errorf("cluster: request %d negative arrival %d", i, reqs[i].Job.ArrivalUS)
		}
	}

	st, err := newRunState(reqs, cfg)
	if err != nil {
		return nil, err
	}
	// Causal capture: the flight merge is deferred so a failed run still
	// dumps a postmortem.
	defer st.plumb.finishFlight()

	st.route()
	if err := st.migrate(); err != nil {
		return nil, err
	}
	if err := st.serve(); err != nil {
		return nil, err
	}
	if err := st.hedge(); err != nil {
		return nil, err
	}

	st.plumb.buildTraces(st)

	rep = st.gather()
	st.emit(rep)
	return rep, nil
}
