package cluster

import (
	"errors"
	"fmt"
	"sync"

	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
	"fpgapart/partserver"
)

// ErrSimulatorFault is reported (wrapped) when an invariant violation inside
// the simulator internals panics during a cluster run. Run converts such
// panics into errors at the public API boundary. Test with
// errors.Is(err, ErrSimulatorFault).
var ErrSimulatorFault = errors.New("cluster: simulator invariant fault")

// guardSimulator converts a panic escaping the simulator into an
// ErrSimulatorFault-wrapping error. Used via defer with a named return.
func guardSimulator(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// Request is one tenant request entering the cluster frontend: a routing
// key, the tenant it bills to, and the partserver job to execute on
// whichever shard the ring selects. Job.ArrivalUS is the request's virtual
// arrival time at the router; Job.Tag is overwritten by the router (it
// carries the request index through the scatter-gather merge).
type Request struct {
	// Tenant identifies the billing tenant for admission quotas (≥ 0).
	Tenant int
	// Key is the routing key hashed onto the ring.
	Key uint64
	// Job is the work item forwarded to the selected shard.
	Job partserver.Job
}

// Config describes one cluster deployment: the shard pool, the ring, the
// per-tenant admission quota, and the fault scenario.
type Config struct {
	// Shards is the number of partserver shards (default 3), ids 0..Shards-1.
	Shards int
	// VNodes is the per-shard virtual-node count on the ring (default 128).
	VNodes int

	// ShardFPGAs and ShardWorkers size each shard's resource pool
	// (defaults 1 and 1).
	ShardFPGAs   int
	ShardWorkers int

	// TenantQuota caps how many requests one tenant may admit per
	// QuotaWindowUS window (0 disables quotas). A request over quota is
	// deferred to the next window — delayed, never dropped — so a hot
	// tenant's burst stretches its own latency instead of everyone's.
	TenantQuota int
	// QuotaWindowUS is the admission window length (default 1000 µs).
	QuotaWindowUS int64

	// Seed drives per-shard scheduler seeding (default 1).
	Seed uint64

	// Faults optionally fail-stops shards: Crashes entries with Node = shard
	// id kill that shard's accept path after AfterFraction of its fair share
	// of the request stream; later requests fail over clockwise around the
	// ring. Jobs already admitted to a crashing shard still complete (the
	// crash models the frontend, not the workers). Other scenario fields do
	// not apply at the routing tier and are ignored.
	Faults *faults.Scenario

	// Trace attaches a simtrace session: the router reports request routing
	// samples, per-shard serve spans, crash instants, and the cluster
	// counters/histogram the perf gate pins. All emission happens after the
	// deterministic harvest, in fixed order, so traces are byte-identical
	// across same-seed runs. Nil disables tracing.
	Trace *simtrace.Session

	// ReqTrace attaches a causal request capture: every request gets a
	// deterministic trace context (TraceID derived from Seed and request
	// index), an exact virtual-time latency decomposition spanning router
	// quota deferral, shard queueing, batching, reconfiguration, execution,
	// spill and retries, and a span chain for critical-path analysis. The
	// capture's flight recorder is filled even when the run fails — the
	// postmortem case. Nil disables capture at zero cost.
	ReqTrace *reqtrace.Capture
}

// WithDefaults returns a copy with unset knobs filled in.
func (c Config) WithDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.VNodes == 0 {
		c.VNodes = 128
	}
	if c.ShardFPGAs == 0 && c.ShardWorkers == 0 {
		c.ShardFPGAs = 1
		c.ShardWorkers = 1
	}
	if c.QuotaWindowUS == 0 {
		c.QuotaWindowUS = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c *Config) Validate() (err error) {
	defer guardSimulator(&err)
	if c.Shards < 1 {
		return fmt.Errorf("cluster: Shards %d < 1", c.Shards)
	}
	if c.VNodes < 1 || c.VNodes > MaxVNodes {
		return fmt.Errorf("cluster: VNodes %d outside [1, %d]", c.VNodes, MaxVNodes)
	}
	if c.ShardFPGAs < 0 || c.ShardWorkers < 0 || c.ShardFPGAs+c.ShardWorkers == 0 {
		return fmt.Errorf("cluster: each shard needs at least one resource (ShardFPGAs %d, ShardWorkers %d)", c.ShardFPGAs, c.ShardWorkers)
	}
	if c.TenantQuota < 0 {
		return fmt.Errorf("cluster: negative TenantQuota %d", c.TenantQuota)
	}
	if c.QuotaWindowUS < 1 {
		return fmt.Errorf("cluster: QuotaWindowUS %d < 1", c.QuotaWindowUS)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		for _, cr := range c.Faults.Crashes {
			if cr.Node >= c.Shards {
				return fmt.Errorf("cluster: crash of shard %d outside pool of %d", cr.Node, c.Shards)
			}
		}
	}
	return nil
}

// mix is splitmix64's finalizer, the shard-seed derivation hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// quotaKey is one tenant's admission window.
type quotaKey struct {
	tenant int
	window int64
}

// routed is the router's per-request admission decision, in request order.
type routed struct {
	shard     int // -1: never admitted (all shards dead)
	primary   int // ring owner before failover
	admitUS   int64
	throttled bool
}

// Run routes reqs across the configured shard pool and blocks until every
// admitted request completes on its shard. The full request stream is
// supplied up front because deterministic virtual-time admission needs the
// arrival order independent of host scheduling.
//
// The router makes every decision in (ArrivalUS, index) order: per-tenant
// quota deferral first (which fixes the admit time), then crash bookkeeping
// (a crashing shard serves its deterministic quota of requests and stops
// accepting), then ring lookup with clockwise failover past dead shards.
// Admitted jobs carry their request index in Job.Tag and their admit time in
// Job.ArrivalUS, so per-shard results merge back into request order and all
// shards share one global virtual clock. Shards execute on concurrent
// goroutines and are harvested in shard-index order; same seed + requests +
// config therefore render a byte-identical Report, trace and metrics
// snapshot, even under the race detector.
func Run(reqs []Request, cfg Config) (rep *Report, err error) {
	defer guardSimulator(&err)
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := range reqs {
		if reqs[i].Tenant < 0 {
			return nil, fmt.Errorf("cluster: request %d negative tenant %d", i, reqs[i].Tenant)
		}
		if reqs[i].Job.ArrivalUS < 0 {
			return nil, fmt.Errorf("cluster: request %d negative arrival %d", i, reqs[i].Job.ArrivalUS)
		}
	}

	shardIDs := make([]int, cfg.Shards)
	for i := range shardIDs {
		shardIDs[i] = i
	}
	ring, err := NewRing(shardIDs, cfg.VNodes)
	if err != nil {
		return nil, err
	}

	var inj *faults.Injector
	if cfg.Faults != nil {
		inj, err = faults.New(*cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	// Crash thresholds: a crashing shard accepts exactly
	// floor(AfterFraction · fair share) requests, then fail-stops its accept
	// path. AfterFraction 0 is dead on arrival.
	share := (len(reqs) + cfg.Shards - 1) / cfg.Shards
	dieAfter := make([]int, cfg.Shards) // -1: never crashes
	dead := make([]bool, cfg.Shards)
	crashUS := make([]int64, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		dieAfter[s] = -1
		if inj != nil {
			if f, ok := inj.CrashFraction(s); ok {
				dieAfter[s] = int(f * float64(share))
				if dieAfter[s] == 0 {
					dead[s] = true
				}
			}
		}
	}

	// Admission order: (ArrivalUS, index), the virtual-time order requests
	// reach the router.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		// Insertion sort keeps the tie-break (index order) explicit and
		// allocation-free; request streams are admission-rate bounded.
		for k := i; k > 0; k-- {
			a, b := order[k-1], order[k]
			if reqs[a].Job.ArrivalUS < reqs[b].Job.ArrivalUS ||
				(reqs[a].Job.ArrivalUS == reqs[b].Job.ArrivalUS && a < b) {
				break
			}
			order[k-1], order[k] = b, a
		}
	}

	// Causal capture: per-shard recorders plus the router's flight ring.
	// The flight merge is deferred so a failed run still dumps a postmortem.
	plumb := newCapturePlumbing(cfg.ReqTrace, cfg.Shards)
	defer plumb.finishFlight()

	decisions := make([]routed, len(reqs))
	jobPos := make([]int, len(reqs)) // position within the shard's job list
	served := make([]int, cfg.Shards)
	shardJobs := make([][]partserver.Job, cfg.Shards)
	quota := make(map[quotaKey]int)
	alive := func(s int) bool { return !dead[s] }
	var throttleDelayUS int64
	for _, idx := range order {
		r := &reqs[idx]
		d := routed{shard: -1, primary: ring.Shard(r.Key)}

		// Per-tenant admission quota: defer over-quota requests to the next
		// window until one has room. Deferral preserves the work (and thus
		// checksum parity with the single-node reference); it only delays it.
		admit := r.Job.ArrivalUS
		if cfg.TenantQuota > 0 {
			for {
				w := admit / cfg.QuotaWindowUS
				k := quotaKey{tenant: r.Tenant, window: w}
				if quota[k] < cfg.TenantQuota {
					quota[k]++
					break
				}
				admit = (w + 1) * cfg.QuotaWindowUS
				d.throttled = true
			}
		}
		if d.throttled {
			throttleDelayUS += admit - r.Job.ArrivalUS
			plumb.record(admit, "throttle", idx, admit-r.Job.ArrivalUS)
		}
		d.admitUS = admit

		// Ring lookup with clockwise failover past fail-stopped shards.
		shard, ok := ring.ShardSkipping(r.Key, alive)
		jobPos[idx] = -1
		if ok {
			d.shard = shard
			if shard != d.primary {
				plumb.record(admit, "failover", idx, int64(shard))
			}
			job := r.Job
			job.Tag = int64(idx)
			job.ArrivalUS = admit
			jobPos[idx] = len(shardJobs[shard])
			shardJobs[shard] = append(shardJobs[shard], job)
			served[shard]++
			if dieAfter[shard] >= 0 && served[shard] >= dieAfter[shard] && !dead[shard] {
				dead[shard] = true
				crashUS[shard] = admit
				plumb.record(admit, "shard_crash", -1, int64(shard))
			}
		} else {
			plumb.record(admit, "unrouted", idx, int64(d.primary))
		}
		decisions[idx] = d
	}

	// Scatter: each shard is one partserver deployment on the shared global
	// virtual clock (admit times are global, so per-shard DoneUS stamps are
	// directly comparable). Shards run concurrently on real goroutines and
	// are harvested in shard-index order.
	shardReps := make([]*partserver.Report, cfg.Shards)
	shardErrs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		if len(shardJobs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			seed := mix(cfg.Seed ^ uint64(s+1))
			if seed == 0 {
				seed = 1
			}
			shardReps[s], shardErrs[s] = partserver.Run(shardJobs[s], partserver.Config{
				FPGAs:   cfg.ShardFPGAs,
				Workers: cfg.ShardWorkers,
				Seed:    seed,
				Record:  plumb.shardRecorder(s),
			})
		}(s)
	}
	wg.Wait()
	for s := 0; s < cfg.Shards; s++ {
		if shardErrs[s] != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, shardErrs[s])
		}
	}

	plumb.buildTraces(reqs, decisions, jobPos, cfg.Seed)

	rep = gather(reqs, decisions, shardReps, dead, dieAfter, crashUS, ring, cfg, throttleDelayUS)
	emit(rep, crashUS, cfg.Trace)
	return rep, nil
}
