package cluster

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestGoldenConformance pins the cluster frontend's complete observable
// behaviour — routed report, Chrome trace, and metrics snapshot — for one
// fixed scenario exercising every mechanism at once: a hot tenant under an
// admission quota, a mid-stream shard crash with clockwise failover, and
// the scatter-gather merge across the survivors. Any change to ring
// placement, quota accounting, failover order, latency bookkeeping, or
// trace emission shows up as a byte diff here; -update rewrites the
// snapshot, and a mismatch leaves a .got.json next to the golden file for
// CI to upload.
func TestGoldenConformance(t *testing.T) {
	const (
		seed = 42
		n    = 20
	)
	reqs, err := GenerateLoad(seed, n, LoadOptions{HotTenantShare: 0.4, MeanGapUS: 120})
	if err != nil {
		t.Fatal(err)
	}
	sess := simtrace.NewSession()
	rep, err := Run(reqs, Config{
		Shards:        3,
		TenantQuota:   2,
		QuotaWindowUS: 500,
		Seed:          seed,
		Faults:        crashScenario(seed),
		Trace:         sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The golden file pins the bytes; the semantics must hold regardless.
	if rep.Done != n {
		t.Fatalf("only %d/%d requests done (failed %d)", rep.Done, n, rep.Failed)
	}
	if len(rep.FailedShards) != 1 {
		t.Fatalf("failed shards %v, want exactly one (the scenario crashes shard 1)", rep.FailedShards)
	}
	checkParity(t, rep, reqs, seed)

	var b bytes.Buffer
	b.WriteString("{\n\"report\": ")
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"trace\": ")
	if err := sess.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"metrics\": ")
	if err := sess.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("}\n")

	compareGolden(t, filepath.Join("testdata", "golden", "cluster_conformance.json"), b.Bytes())
}

// TestGoldenChurnStorm pins the dynamic path the same way: a join, a drain
// behind its handoff barrier, and a late re-join, with replica-2 fixed-
// deadline hedges racing an 8× straggler. The snapshot freezes the
// membership section of the report JSON, the range_moved/hedge flight
// events in the trace, and the churn/hedge counters; any re-ordering of the
// barrier planning passes or the hedge lanes is a byte diff here.
func TestGoldenChurnStorm(t *testing.T) {
	const (
		seed = 42
		n    = 24
	)
	reqs, err := GenerateLoad(seed, n, LoadOptions{MeanGapUS: 40})
	if err != nil {
		t.Fatal(err)
	}
	sess := simtrace.NewSession()
	rep, err := Run(reqs, Config{
		Shards: 3,
		Schedule: MembershipSchedule{
			{AtUS: 250, Shard: 3, Kind: Join},
			{AtUS: 550, Shard: 0, Kind: Drain},
			{AtUS: 800, Shard: 4, Kind: Join},
		},
		Replicas: 2,
		HedgeUS:  150,
		Seed:     seed,
		Faults: &faults.Scenario{
			Seed:       seed,
			Stragglers: []faults.Straggler{{Node: 1, Factor: 8}},
		},
		Trace: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Semantics first, bytes second: everything completes, churn actually
	// moved keys at each event, and the storm provoked at least one hedge.
	if rep.Done != n {
		t.Fatalf("only %d/%d requests done (failed %d)", rep.Done, n, rep.Failed)
	}
	for j, moved := range rep.EventMovedX10000 {
		if moved <= 0 {
			t.Errorf("membership event %d moved no keys", j)
		}
	}
	if rep.HedgeIssued == 0 {
		t.Error("churn storm issued no hedges; the snapshot would not cover the hedge path")
	}
	checkParity(t, rep, reqs, seed)

	var b bytes.Buffer
	b.WriteString("{\n\"report\": ")
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"trace\": ")
	if err := sess.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString(",\n\"metrics\": ")
	if err := sess.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("}\n")

	compareGolden(t, filepath.Join("testdata", "golden", "cluster_churnstorm.json"), b.Bytes())
}

// compareGolden diffs got against the golden file, honouring -update. On a
// mismatch the actual bytes are written next to the golden file as
// <name>.got.json so CI can attach them as an artifact.
func compareGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./cluster -run TestGolden -update` to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotPath := golden[:len(golden)-len(".json")] + ".got.json"
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Errorf("golden mismatch: %s differs from %s\n%s\nrerun with -update if the change is intended",
		golden, gotPath, firstDiff(want, got))
}
