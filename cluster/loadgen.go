package cluster

import (
	"fmt"

	"fpgapart/partserver"
)

// LoadOptions shapes GenerateLoad's synthetic open-loop request stream.
type LoadOptions struct {
	// Tenants is how many tenants issue requests (default 8).
	Tenants int
	// HotTenantShare, when > 0, routes that fraction of the stream to
	// tenant 0 — the hot tenant the admission quota is meant to contain.
	HotTenantShare float64
	// MeanGapUS is the mean virtual inter-arrival gap of the open-loop
	// arrival process (default 200); arrivals never wait for completions.
	MeanGapUS int64
	// MinTuples/MaxTuples bound the per-request relation size (defaults
	// 1<<10 and 1<<13).
	MinTuples, MaxTuples int
	// JoinFraction is the fraction of requests carrying a probe side
	// (default 0.25).
	JoinFraction float64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Tenants == 0 {
		o.Tenants = 8
	}
	if o.MeanGapUS == 0 {
		o.MeanGapUS = 200
	}
	if o.MinTuples == 0 {
		o.MinTuples = 1 << 10
	}
	if o.MaxTuples == 0 {
		o.MaxTuples = 1 << 13
	}
	if o.JoinFraction == 0 {
		o.JoinFraction = 0.25
	}
	return o
}

// GenerateLoad builds a deterministic open-loop request stream: n requests
// whose jobs come from partserver.GenerateTrace (hash-derived sizes,
// fan-outs and modes) and whose arrivals, tenants and routing keys are
// hash-drawn here. Open loop means arrival times are fixed by the draw —
// a slow cluster does not slow the offered load, it grows the backlog,
// which is what pushes the tail percentiles the latency reporter pins.
// The same (seed, n, opts) always yields the same stream.
func GenerateLoad(seed uint64, n int, opts LoadOptions) ([]Request, error) {
	opts = opts.withDefaults()
	if opts.Tenants < 1 {
		return nil, fmt.Errorf("cluster: Tenants %d < 1", opts.Tenants)
	}
	if opts.HotTenantShare < 0 || opts.HotTenantShare > 1 {
		return nil, fmt.Errorf("cluster: HotTenantShare %v outside [0, 1]", opts.HotTenantShare)
	}
	if opts.MeanGapUS < 0 {
		return nil, fmt.Errorf("cluster: negative MeanGapUS %d", opts.MeanGapUS)
	}
	jobs, err := partserver.GenerateTrace(seed, n, partserver.TraceOptions{
		MinTuples:    opts.MinTuples,
		MaxTuples:    opts.MaxTuples,
		JoinFraction: opts.JoinFraction,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// Purposes ≥ 16 keep these draws disjoint from GenerateTrace's own
	// (same seed, purposes 1..10).
	const (
		purposeGap uint64 = 16 + iota
		purposeHot
		purposeTenant
		purposeKey
	)
	reqs := make([]Request, n)
	arrival := int64(0)
	for i := 0; i < n; i++ {
		draw := func(purpose uint64) uint64 {
			return mix(seed ^ mix(uint64(i)<<8|purpose))
		}
		tenant := 0
		hot := opts.HotTenantShare > 0 &&
			float64(draw(purposeHot)%1000)/1000 < opts.HotTenantShare
		if !hot {
			tenant = int(draw(purposeTenant) % uint64(opts.Tenants))
		}
		jobs[i].ArrivalUS = arrival
		reqs[i] = Request{
			Tenant: tenant,
			Key:    draw(purposeKey),
			Job:    jobs[i],
		}
		arrival += int64(draw(purposeGap) % uint64(2*opts.MeanGapUS+1))
	}
	return reqs, nil
}
