package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
)

// renderRun executes one routed run and renders every observable surface —
// report JSON, Chrome trace JSON, metrics JSON — as bytes.
func renderRun(t *testing.T, seed uint64, n int, cfg Config) []byte {
	t.Helper()
	reqs, err := GenerateLoad(seed, n, LoadOptions{MeanGapUS: 60, HotTenantShare: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sess := simtrace.NewSession()
	cfg.Seed = seed
	cfg.Trace = sess
	rep, err := Run(reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := sess.Tracer.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := sess.Metrics.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// crashScenario is the shared fault mix of the determinism tests: one shard
// fail-stops a third of the way through its share of the stream.
func crashScenario(seed uint64) *faults.Scenario {
	return &faults.Scenario{
		Seed:    seed,
		Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.3}},
	}
}

// TestClusterSameSeedByteIdentical is the cluster's determinism contract:
// three fresh runs of the same seed and stream — concurrent shard
// goroutines, quota deferrals, crash failover and all — must render
// byte-identical reports, Chrome traces, and metric snapshots. The CI race
// job runs this package under -race, so the shard harvest is also checked
// for data races while a shard fail-stops mid-stream.
func TestClusterSameSeedByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"faultfree", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400}},
		{"faulty", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400, Faults: crashScenario(23)}},
		// Full churn under hedging: a shard joins, another drains behind a
		// handoff barrier, replica-2 auto-deadline hedges race a straggler —
		// every new subsystem of the dynamic path on one byte-identity check.
		{"churn-hedged", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400,
			Schedule: MembershipSchedule{
				{AtUS: 300, Shard: 3, Kind: Join},
				{AtUS: 700, Shard: 1, Kind: Drain},
			},
			Replicas: 2, HedgeUS: HedgeAuto,
			Faults: &faults.Scenario{Seed: 23, Stragglers: []faults.Straggler{{Node: 2, Factor: 8}}}}},
		// A shard fail-stops while it is also the drain target: the planning
		// pass, the crash bookkeeping and the failover reroutes must still
		// resolve to the same bytes every run.
		{"crash-while-draining", Config{Shards: 3,
			Schedule: MembershipSchedule{{AtUS: 500, Shard: 1, Kind: Drain}},
			Faults:   crashScenario(23)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := renderRun(t, 23, 18, tc.cfg)
			for run := 2; run <= 3; run++ {
				got := renderRun(t, 23, 18, tc.cfg)
				if !bytes.Equal(first, got) {
					t.Fatalf("run %d differs from run 1\n%s", run, firstDiff(first, got))
				}
			}
		})
	}
}

// TestClusterSeedSensitivity guards against the seed being ignored:
// different seeds must be able to produce different routed runs (keys,
// arrivals and shard schedules all derive from it), while any single seed
// stays self-consistent.
func TestClusterSeedSensitivity(t *testing.T) {
	base := renderRun(t, 5, 12, Config{Shards: 3})
	for seed := uint64(6); seed < 16; seed++ {
		if !bytes.Equal(base, renderRun(t, seed, 12, Config{Shards: 3})) {
			return
		}
	}
	t.Fatal("10 different seeds all rendered the identical cluster run; seeding is dead")
}

// firstDiff reports the first line where want and got diverge.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  run1: %s\n  run2: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: %d lines vs %d lines", len(wl), len(gl))
}
