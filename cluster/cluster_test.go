package cluster

import (
	"errors"
	"hash/fnv"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/partserver"
)

// seedFromName derives a stable per-test seed so tests don't accidentally
// share failure scenarios.
func seedFromName(t *testing.T) uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.Name()))
	seed := h.Sum64()
	if seed == 0 {
		seed = 1
	}
	return seed
}

// singleNodeReference runs the same jobs through one partserver deployment
// and returns the aggregate (done, tuples, matches, checksum) the cluster's
// scatter-gather merge must reproduce. Checksums are order-insensitive
// multiset hashes, so the aggregate is placement- and schedule-independent.
func singleNodeReference(t *testing.T, reqs []Request, seed uint64) (done int, tuples, matches int64, checksum uint32) {
	t.Helper()
	jobs := make([]partserver.Job, len(reqs))
	for i := range reqs {
		jobs[i] = reqs[i].Job
	}
	rep, err := partserver.Run(jobs, partserver.Config{FPGAs: 1, Workers: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Status != partserver.StatusDone {
			t.Fatalf("reference job %d: %v %q", r.ID, r.Status, r.Err)
		}
		done++
		tuples += r.Tuples
		matches += r.Matches
		checksum += r.Checksum
	}
	return done, tuples, matches, checksum
}

// checkParity asserts the cluster report's merged aggregates equal the
// single-node reference.
func checkParity(t *testing.T, rep *Report, reqs []Request, seed uint64) {
	t.Helper()
	done, tuples, matches, checksum := singleNodeReference(t, reqs, seed)
	if rep.Done != done {
		t.Errorf("cluster completed %d requests, reference %d", rep.Done, done)
	}
	var gotTuples int64
	for i := range rep.Results {
		gotTuples += rep.Results[i].Tuples
	}
	if gotTuples != tuples {
		t.Errorf("cluster tuples %d, reference %d", gotTuples, tuples)
	}
	if rep.Matches != matches {
		t.Errorf("cluster matches %d, reference %d", rep.Matches, matches)
	}
	if rep.Checksum != checksum {
		t.Errorf("cluster checksum %d, reference %d", rep.Checksum, checksum)
	}
}

// TestScatterGatherParity: routing a stream across 3 shards and merging the
// results must reproduce the single-node aggregates exactly — the
// correctness contract of the scatter-gather merge.
func TestScatterGatherParity(t *testing.T) {
	seed := seedFromName(t)
	reqs, err := GenerateLoad(seed, 16, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reqs, Config{Shards: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != len(reqs) {
		t.Fatalf("only %d/%d requests done (failed %d)", rep.Done, len(reqs), rep.Failed)
	}
	spread := 0
	for _, n := range rep.ShardJobs {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("only %d shard(s) received work; the ring is not spreading load", spread)
	}
	checkParity(t, rep, reqs, seed)
	for i := range rep.Results {
		rr := &rep.Results[i]
		if rr.LatencyUS < 0 {
			t.Errorf("request %d negative latency %d", i, rr.LatencyUS)
		}
	}
	if rep.LatP95US < rep.LatAvgUS/2 || rep.LatP99US < rep.LatP95US {
		t.Errorf("latency stats out of order: avg %d, p95 %d, p99 %d",
			rep.LatAvgUS, rep.LatP95US, rep.LatP99US)
	}
	if rep.QPSx100 <= 0 {
		t.Errorf("non-positive QPS %d", rep.QPSx100)
	}
}

// TestHotTenantThrottling: with tenant 0 issuing half the stream, the
// admission quota must defer some of its requests (stretching its own
// latency), never drop them — aggregates stay at parity.
func TestHotTenantThrottling(t *testing.T) {
	seed := seedFromName(t)
	reqs, err := GenerateLoad(seed, 16, LoadOptions{HotTenantShare: 0.5, MeanGapUS: 50})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reqs, Config{Shards: 2, TenantQuota: 1, QuotaWindowUS: 400, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throttled == 0 {
		t.Fatal("a 50% hot tenant under quota 1/window was never throttled")
	}
	if rep.ThrottleDelayUS <= 0 {
		t.Error("throttled requests accumulated no delay")
	}
	if rep.Done != len(reqs) {
		t.Fatalf("quota dropped requests: %d/%d done", rep.Done, len(reqs))
	}
	checkParity(t, rep, reqs, seed)
	for i := range rep.Results {
		rr := &rep.Results[i]
		if rr.Throttled && rr.AdmitUS <= rr.ArrivalUS {
			t.Errorf("request %d flagged throttled but admit %d ≤ arrival %d", i, rr.AdmitUS, rr.ArrivalUS)
		}
		if !rr.Throttled && rr.AdmitUS != rr.ArrivalUS {
			t.Errorf("request %d not throttled but admit %d ≠ arrival %d", i, rr.AdmitUS, rr.ArrivalUS)
		}
	}
}

// TestCrashFailover: a shard that fail-stops mid-stream must appear in
// FailedShards, its would-be requests must fail over clockwise to live
// shards, and every request must still complete with parity intact.
func TestCrashFailover(t *testing.T) {
	seed := seedFromName(t)
	reqs, err := GenerateLoad(seed, 18, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reqs, Config{
		Shards: 3,
		Seed:   seed,
		Faults: &faults.Scenario{
			Seed:    seed,
			Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.FailedShards); got != 1 || rep.FailedShards[0] != 1 {
		t.Fatalf("failed shards %v, want [1]", rep.FailedShards)
	}
	if rep.Rerouted == 0 {
		t.Error("no request was rerouted despite a mid-stream shard crash")
	}
	if rep.Done != len(reqs) {
		t.Fatalf("crash lost requests: %d/%d done, %d failed", rep.Done, len(reqs), rep.Failed)
	}
	checkParity(t, rep, reqs, seed)
	for i := range rep.Results {
		if rr := &rep.Results[i]; rr.Rerouted && rr.Shard == 1 {
			t.Errorf("request %d rerouted onto the dead shard", i)
		}
	}
}

// TestAllShardsDead: when every shard is dead on arrival, requests fail
// (never hang, never panic) and the report says so.
func TestAllShardsDead(t *testing.T) {
	seed := seedFromName(t)
	reqs, err := GenerateLoad(seed, 4, LoadOptions{MinTuples: 64, MaxTuples: 128})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(reqs, Config{
		Shards: 2,
		Seed:   seed,
		Faults: &faults.Scenario{
			Seed: seed,
			Crashes: []faults.Crash{
				{Node: 0, AfterFraction: 0},
				{Node: 1, AfterFraction: 0},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 0 || rep.Failed != len(reqs) {
		t.Fatalf("all-dead cluster reported done %d failed %d of %d", rep.Done, rep.Failed, len(reqs))
	}
	for i := range rep.Results {
		if rr := &rep.Results[i]; rr.Shard != -1 || rr.Status != partserver.StatusFailed {
			t.Errorf("request %d: shard %d status %v, want -1/failed", i, rr.Shard, rr.Status)
		}
	}
}

// TestConfigValidation rejects malformed deployments and requests.
func TestConfigValidation(t *testing.T) {
	good, err := GenerateLoad(1, 1, LoadOptions{MinTuples: 64, MaxTuples: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		reqs []Request
		cfg  Config
	}{
		{"negative-shards", good, Config{Shards: -1}},
		{"bad-vnodes", good, Config{VNodes: -4}},
		{"no-resources", good, Config{ShardFPGAs: -1, ShardWorkers: 1}},
		{"negative-quota", good, Config{TenantQuota: -2}},
		{"negative-window", good, Config{TenantQuota: 1, QuotaWindowUS: -5}},
		{"crash-out-of-pool", good, Config{Shards: 2, Faults: &faults.Scenario{Crashes: []faults.Crash{{Node: 7}}}}},
		{"bad-scenario", good, Config{Faults: &faults.Scenario{DropProb: 2}}},
		{"negative-tenant", []Request{{Tenant: -1, Job: good[0].Job}}, Config{}},
		{"negative-arrival", []Request{{Job: partserver.Job{ArrivalUS: -1}}}, Config{}},
	} {
		if _, err := Run(tc.reqs, tc.cfg); err == nil {
			t.Errorf("%s: Run accepted the configuration", tc.name)
		}
	}
}

// TestSimulatorFaultBoundary: panics inside the simulator surface as
// ErrSimulatorFault-wrapped errors, never as process crashes. A job with a
// nil relation slips past the router and trips partserver's own validation;
// an invalid fan-out does the same.
func TestSimulatorFaultBoundary(t *testing.T) {
	reqs := []Request{{Job: partserver.Job{FanOut: 4}}} // nil Rel
	if _, err := Run(reqs, Config{Shards: 1}); err == nil {
		t.Fatal("Run accepted a job with no relation")
	} else if errors.Is(err, ErrSimulatorFault) {
		// Shard validation errors are ordinary errors, not panics; reaching
		// the sentinel here would mean the guard swallowed a real failure
		// path. Nothing to assert — documented for the next reader.
		t.Logf("validation surfaced via the panic guard: %v", err)
	}
}
