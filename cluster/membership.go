package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MembershipKind classifies one membership event.
type MembershipKind int

const (
	// Join adds a shard to the ring at the event's virtual time: only the
	// key ranges whose clockwise successor becomes the joiner re-route.
	Join MembershipKind = iota
	// Drain removes a shard from the ring: the shard stops accepting new
	// requests at the event time, finishes everything it already admitted
	// (in-flight work completes on its admission-time owner), and its key
	// ranges re-route to their clockwise successors behind a handoff
	// barrier.
	Drain
)

func (k MembershipKind) String() string {
	switch k {
	case Join:
		return "join"
	case Drain:
		return "drain"
	default:
		return fmt.Sprintf("MembershipKind(%d)", int(k))
	}
}

// MembershipEvent is one live membership change at a virtual time.
type MembershipEvent struct {
	// AtUS is the virtual time the event takes effect: requests admitted at
	// or after AtUS route on the post-event ring.
	AtUS int64
	// Shard is the joining or draining shard id.
	Shard int
	// Kind is Join or Drain.
	Kind MembershipKind
}

// MembershipSchedule is an ordered list of live membership changes — the
// churn plan of one cluster run. Like everything else on the deterministic
// path it is part of the configuration: the rings in effect at every virtual
// time, the moved key ranges, and the handoff barriers all derive from it as
// pure functions of (stream, config, seed).
type MembershipSchedule []MembershipEvent

// maxShardID bounds shard ids so per-shard report rows stay dense arrays.
const maxShardID = 1 << 16

// Validate checks the schedule against an initial pool of ids 0..shards-1:
// events must be time-ordered, joins must add non-members, drains must
// remove members, and the ring must never empty.
func (sched MembershipSchedule) Validate(shards int) error {
	_, err := sched.epochs(shards, 1)
	return err
}

// epochs builds the ring in effect per membership epoch: rings[0] over the
// initial pool 0..shards-1, rings[k+1] after event k.
func (sched MembershipSchedule) epochs(shards, vnodes int) ([]*Ring, error) {
	members := make([]int, shards)
	for i := range members {
		members[i] = i
	}
	ring, err := NewRing(members, vnodes)
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, 0, len(sched)+1)
	rings = append(rings, ring)
	for j := range sched {
		ev := &sched[j]
		if ev.AtUS < 0 {
			return nil, fmt.Errorf("cluster: membership event %d at negative time %d", j, ev.AtUS)
		}
		if j > 0 && ev.AtUS < sched[j-1].AtUS {
			return nil, fmt.Errorf("cluster: membership event %d at %d µs precedes event %d at %d µs",
				j, ev.AtUS, j-1, sched[j-1].AtUS)
		}
		if ev.Shard < 0 || ev.Shard >= maxShardID {
			return nil, fmt.Errorf("cluster: membership event %d shard %d outside [0, %d)", j, ev.Shard, maxShardID)
		}
		prev := rings[j]
		switch ev.Kind {
		case Join:
			if prev.Member(ev.Shard) {
				return nil, fmt.Errorf("cluster: membership event %d joins shard %d, already a member", j, ev.Shard)
			}
			ring, err = prev.WithShard(ev.Shard)
		case Drain:
			if len(prev.Shards()) == 1 {
				return nil, fmt.Errorf("cluster: membership event %d drains the last shard %d", j, ev.Shard)
			}
			ring, err = prev.WithoutShard(ev.Shard)
		default:
			return nil, fmt.Errorf("cluster: membership event %d has unknown kind %d", j, int(ev.Kind))
		}
		if err != nil {
			return nil, err
		}
		rings = append(rings, ring)
	}
	return rings, nil
}

// maxMember returns the largest shard id that is ever a ring member.
func (sched MembershipSchedule) maxMember(shards int) int {
	max := shards - 1
	for j := range sched {
		if sched[j].Shard > max {
			max = sched[j].Shard
		}
	}
	return max
}

// epochAt returns the membership epoch in effect at virtual time t: the
// number of events with AtUS ≤ t (an event takes effect at its own instant).
func (sched MembershipSchedule) epochAt(t int64) int {
	return sort.Search(len(sched), func(j int) bool { return sched[j].AtUS > t })
}

// ParseMembershipSchedule parses the CLI schedule syntax: a comma-separated
// list of "<kind>:<shard>@<at_us>" events, e.g. "join:3@4000,drain:1@9000".
func ParseMembershipSchedule(s string) (MembershipSchedule, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var sched MembershipSchedule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kindShard, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("cluster: membership event %q: want <kind>:<shard>@<at_us>", part)
		}
		kindStr, shardStr, ok := strings.Cut(kindShard, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: membership event %q: want <kind>:<shard>@<at_us>", part)
		}
		var kind MembershipKind
		switch kindStr {
		case "join":
			kind = Join
		case "drain":
			kind = Drain
		default:
			return nil, fmt.Errorf("cluster: membership event %q: kind %q is not join/drain", part, kindStr)
		}
		shard, err := strconv.Atoi(shardStr)
		if err != nil {
			return nil, fmt.Errorf("cluster: membership event %q: bad shard: %w", part, err)
		}
		atUS, err := strconv.ParseInt(at, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: membership event %q: bad time: %w", part, err)
		}
		sched = append(sched, MembershipEvent{AtUS: atUS, Shard: shard, Kind: kind})
	}
	return sched, nil
}
