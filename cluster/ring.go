// Package cluster is the sharded serving frontend of the production-scale
// system the ROADMAP aims at: a consistent-hash router that spreads an
// open-loop request stream from many simulated tenants across N partserver
// shards, scatter-gathers the per-shard results back into one report, and
// pins cluster-level tail latencies (avg/p95/p99, QPS) on the deterministic
// virtual-time path.
//
// Everything the router decides — ring placement, per-tenant admission
// quotas, crash failover — is a pure function of (request stream, config,
// seed): the ring hashes with the same murmur finalizer the FPGA circuit
// synthesizes (internal/core.HashPipeline models it stage by stage,
// internal/hashutil provides the software twin), quota deferrals are
// computed in arrival order on virtual time, and shard crash points derive
// from internal/faults' seeded scenario replay. Two runs with the same seed
// therefore render byte-identical reports, traces and metric snapshots,
// even though the shards execute on real concurrent goroutines. The package
// sits on the fpgavet deterministic path, which machine-enforces the
// no-wall-clock / no-global-rand / no-map-range discipline this rests on.
package cluster

import (
	"fmt"
	"sort"

	"fpgapart/internal/hashutil"
)

// MaxVNodes bounds the virtual-node count per shard. The bound guarantees
// point-hash injectivity: PointHash feeds (shard, vnode) through the
// bijective fmix64 finalizer, so distinct inputs give distinct ring points
// as long as the packed input is unique — no tie-breaking is ever needed
// and ring construction is order-independent by construction.
const MaxVNodes = 1 << 20

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring with virtual nodes. Each member shard
// contributes VNodes points, placed by hashing (shard, vnode) through the
// murmur3 fmix64 finalizer — the 64-bit sibling of the five-stage pipeline
// the partitioner circuit implements (internal/core.HashPipeline). A key is
// served by the first point clockwise from its own hash.
//
// Construction is deterministic and order-independent: the same member set
// and vnode count always produce the identical ring, whatever order the
// members were listed in.
type Ring struct {
	vnodes int
	shards []int // ascending member ids
	points []ringPoint
}

// NewRing builds a ring over the given shard ids with vnodes virtual nodes
// per shard. Duplicate ids are rejected; ids may be arbitrary non-negative
// integers (shard identity survives joins and leaves).
func NewRing(shards []int, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes < 1 || vnodes > MaxVNodes {
		return nil, fmt.Errorf("cluster: vnodes %d outside [1, %d]", vnodes, MaxVNodes)
	}
	members := append([]int(nil), shards...)
	sort.Ints(members)
	for i, id := range members {
		if id < 0 {
			return nil, fmt.Errorf("cluster: negative shard id %d", id)
		}
		if i > 0 && members[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate shard id %d", id)
		}
	}
	r := &Ring{
		vnodes: vnodes,
		shards: members,
		points: make([]ringPoint, 0, len(members)*vnodes),
	}
	for _, id := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: PointHash(id, v), shard: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		return r.points[a].hash < r.points[b].hash
	})
	return r, nil
}

// PointHash places virtual node v of a shard on the ring: the packed
// (shard, vnode) identity through the fmix64 finalizer. fmix64 is a
// bijection, so distinct (shard, vnode) pairs — within the MaxVNodes bound —
// never collide.
func PointHash(shard, vnode int) uint64 {
	return hashutil.Murmur64Finalizer(uint64(shard+1)<<20 | uint64(vnode))
}

// KeyHash maps a routing key onto the ring's hash space with the same
// finalizer the circuit's hash module computes.
func KeyHash(key uint64) uint64 {
	return hashutil.Murmur64Finalizer(key)
}

// Shards returns the member ids in ascending order (a copy).
func (r *Ring) Shards() []int { return append([]int(nil), r.shards...) }

// VNodes returns the per-shard virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// NumPoints returns the total point count (members × vnodes).
func (r *Ring) NumPoints() int { return len(r.points) }

// succ returns the index of the first point at or clockwise of hash h,
// wrapping past the top of the hash space.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(k int) bool { return r.points[k].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Shard returns the member serving key: the owner of the first virtual node
// clockwise from the key's hash.
func (r *Ring) Shard(key uint64) int {
	return r.points[r.succ(KeyHash(key))].shard
}

// ShardSkipping returns the first member clockwise from key whose id
// satisfies alive — the deterministic failover walk a router performs when
// the primary owner has fail-stopped. ok is false when no live member
// remains.
func (r *Ring) ShardSkipping(key uint64, alive func(shard int) bool) (shard int, ok bool) {
	start := r.succ(KeyHash(key))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive(p.shard) {
			return p.shard, true
		}
	}
	return -1, false
}

// Member reports whether id is currently a ring member.
func (r *Ring) Member(id int) bool {
	i := sort.SearchInts(r.shards, id)
	return i < len(r.shards) && r.shards[i] == id
}

// ReplicaSet returns the first n distinct members clockwise from the key's
// hash — the key's replica set. Element 0 is the primary owner (== Shard);
// the rest are the failover/hedge targets in clockwise-encounter order.
// When the ring has fewer than n members the whole membership is returned,
// so the set is always distinct by construction, even when N ≤ R.
func (r *Ring) ReplicaSet(key uint64, n int) []int {
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		return nil
	}
	out := make([]int, 0, n)
	start := r.succ(KeyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		s := r.points[(start+i)%len(r.points)].shard
		seen := false
		for _, have := range out {
			if have == s {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, s)
		}
	}
	return out
}

// WithShard returns a new ring with id joined (the rebalancing target of a
// scale-out step). The receiver is unchanged.
func (r *Ring) WithShard(id int) (*Ring, error) {
	return NewRing(append(r.Shards(), id), r.vnodes)
}

// WithoutShard returns a new ring with id removed (a planned leave). The
// receiver is unchanged.
func (r *Ring) WithoutShard(id int) (*Ring, error) {
	members := make([]int, 0, len(r.shards))
	found := false
	for _, s := range r.shards {
		if s == id {
			found = true
			continue
		}
		members = append(members, s)
	}
	if !found {
		return nil, fmt.Errorf("cluster: shard %d is not a ring member", id)
	}
	return NewRing(members, r.vnodes)
}

// Router assigns keys to shards; Ring and Modulo both satisfy it, so
// rebalancing measurements can diff the two policies over one key set.
type Router interface {
	Shard(key uint64) int
}

// Modulo is the naive hash-mod-N baseline router: robust to skew (it uses
// the same murmur finalizer) but pathological under membership change —
// growing N reshuffles almost every key, which is exactly what the ring's
// virtual nodes avoid.
type Modulo int

// Shard implements Router.
func (m Modulo) Shard(key uint64) int {
	return int(KeyHash(key) % uint64(m))
}

// MovedPermyriad counts how many keys change owner between two routers, in
// permyriad (1/10000) of the key population — the moved-key fraction of a
// shard join or leave, in the fixed-point form the gated BENCH metrics use.
// A ring join of one shard into N moves ≈ 10000/(N+1); a modulo join
// reshuffles ≈ 10000·N/(N+1).
func MovedPermyriad(keys []uint64, before, after Router) int64 {
	if len(keys) == 0 {
		return 0
	}
	var moved int64
	for _, k := range keys {
		if before.Shard(k) != after.Shard(k) {
			moved++
		}
	}
	return moved * 10000 / int64(len(keys))
}
