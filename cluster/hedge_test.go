package cluster

import (
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/partserver"
)

// stragglerScenario slows every FPGA instance of shard 1 by 8× — the tail
// profile hedged reads exist to beat.
func stragglerScenario(seed uint64) *faults.Scenario {
	return &faults.Scenario{
		Seed:       seed,
		Stragglers: []faults.Straggler{{Node: 1, Factor: 8}},
	}
}

// hedgedLoad is a stream dense enough that the straggling shard builds a
// queue worth hedging around.
func hedgedLoad(t *testing.T, seed uint64, n int) []Request {
	t.Helper()
	reqs, err := GenerateLoad(seed, n, LoadOptions{MeanGapUS: 20})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestHedgedReadsPreserveOutput is the hedging safety property: across
// seeds, a hedged run must reproduce the unhedged run's merged Checksum,
// Matches and completion count exactly — a hedge recomputes identical
// content on a replica, it never changes what the tenant gets. And because
// the primary lane's schedule is untouched by hedging, no request may ever
// finish later than it did unhedged.
func TestHedgedReadsPreserveOutput(t *testing.T) {
	for seed := seedFromName(t); seed < seedFromName(t)+5; seed++ {
		reqs := hedgedLoad(t, seed, 32)
		base := Config{Shards: 3, Seed: seed, Faults: stragglerScenario(seed)}
		unhedged, err := Run(reqs, base)
		if err != nil {
			t.Fatal(err)
		}
		hcfg := base
		hcfg.Replicas = 2
		hcfg.HedgeUS = 150
		hedged, err := Run(reqs, hcfg)
		if err != nil {
			t.Fatal(err)
		}
		if hedged.Checksum != unhedged.Checksum || hedged.Matches != unhedged.Matches || hedged.Done != unhedged.Done {
			t.Fatalf("seed %d: hedged run changed the merge: checksum %d/%d, matches %d/%d, done %d/%d",
				seed, hedged.Checksum, unhedged.Checksum, hedged.Matches, unhedged.Matches,
				hedged.Done, unhedged.Done)
		}
		for i := range hedged.Results {
			h, u := &hedged.Results[i], &unhedged.Results[i]
			if h.Checksum != u.Checksum || h.Matches != u.Matches {
				t.Errorf("seed %d request %d: hedged output %d/%d, unhedged %d/%d",
					seed, i, h.Checksum, h.Matches, u.Checksum, u.Matches)
			}
			if h.DoneUS > u.DoneUS {
				t.Errorf("seed %d request %d: hedged completion %dus after unhedged %dus",
					seed, i, h.DoneUS, u.DoneUS)
			}
			if h.HedgeWon && h.DoneUS >= u.DoneUS {
				t.Errorf("seed %d request %d: winning hedge did not finish first (%dus vs %dus)",
					seed, i, h.DoneUS, u.DoneUS)
			}
			if h.HedgeWon && h.HedgeShard == h.Shard {
				t.Errorf("seed %d request %d: hedge won on the primary shard %d itself", seed, i, h.Shard)
			}
		}
		checkParity(t, hedged, reqs, seed)
	}
}

// TestHedgedP99Win pins the hedging payoff at test scale: under the
// straggler profile, the hedged p99 must be strictly below the unhedged
// p99 of the identical stream (the perfbench straggler-hedged cell gates
// the same win as a pinned number).
func TestHedgedP99Win(t *testing.T) {
	seed := uint64(42)
	reqs := hedgedLoad(t, seed, 48)
	base := Config{Shards: 3, Seed: seed, Faults: stragglerScenario(seed)}
	unhedged, err := Run(reqs, base)
	if err != nil {
		t.Fatal(err)
	}
	hcfg := base
	hcfg.Replicas = 2
	hcfg.HedgeUS = 150
	hedged, err := Run(reqs, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hedged.HedgeIssued == 0 || hedged.HedgeWon == 0 {
		t.Fatalf("hedging idle under the straggler profile: issued %d, won %d",
			hedged.HedgeIssued, hedged.HedgeWon)
	}
	if hedged.LatP99US >= unhedged.LatP99US {
		t.Errorf("hedged p99 %dus not strictly below unhedged p99 %dus",
			hedged.LatP99US, unhedged.LatP99US)
	}
	if hedged.HedgeSavedUS <= 0 {
		t.Errorf("winning hedges saved %dus, want > 0", hedged.HedgeSavedUS)
	}
}

// TestHedgeAutoDeadline: the running-p95 deadline mode hedges only after
// hedgeMinSamples responses have completed, stays fully deterministic, and
// preserves the merge like the fixed mode.
func TestHedgeAutoDeadline(t *testing.T) {
	seed := seedFromName(t)
	reqs := hedgedLoad(t, seed, 48)
	cfg := Config{Shards: 3, Replicas: 2, HedgeUS: HedgeAuto, Seed: seed, Faults: stragglerScenario(seed)}
	rep, err := Run(reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		rr := &rep.Results[i]
		if !rr.Hedged {
			continue
		}
		// Count the completed-by-admission samples the estimator saw; a
		// hedge before hedgeMinSamples of them would be an untrustworthy
		// estimate acted upon.
		samples := 0
		for k := range rep.Results {
			// The unhedged completion of request k is not in the report once
			// a hedge won it, so bound the check to non-hedged peers.
			if !rep.Results[k].Hedged && rep.Results[k].Status == partserver.StatusDone &&
				rep.Results[k].DoneUS <= rr.AdmitUS {
				samples++
			}
		}
		if samples+rep.HedgeIssued < hedgeMinSamples {
			t.Errorf("request %d hedged with at most %d completed samples, floor %d",
				i, samples+rep.HedgeIssued, hedgeMinSamples)
		}
	}
	checkParity(t, rep, reqs, seed)

	again, err := Run(reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.HedgeIssued != rep.HedgeIssued || again.HedgeWon != rep.HedgeWon ||
		again.Checksum != rep.Checksum || again.LatP99US != rep.LatP99US {
		t.Errorf("HedgeAuto run not reproducible: issued %d/%d won %d/%d checksum %d/%d p99 %d/%d",
			again.HedgeIssued, rep.HedgeIssued, again.HedgeWon, rep.HedgeWon,
			again.Checksum, rep.Checksum, again.LatP99US, rep.LatP99US)
	}
}

// TestHedgeConfigValidation pins the hedging knob legality.
func TestHedgeConfigValidation(t *testing.T) {
	reqs := hedgedLoad(t, 1, 4)
	if _, err := Run(reqs, Config{Shards: 3, HedgeUS: 100}); err == nil {
		t.Error("HedgeUS without Replicas ≥ 2 accepted")
	}
	if _, err := Run(reqs, Config{Shards: 3, Replicas: 2, HedgeUS: -2}); err == nil {
		t.Error("HedgeUS -2 accepted")
	}
	if _, err := Run(reqs, Config{Shards: 3, Replicas: -1}); err == nil {
		t.Error("negative Replicas accepted")
	}
	if _, err := Run(reqs, Config{Shards: 3, Replicas: 2, HedgeUS: HedgeAuto}); err != nil {
		t.Errorf("HedgeAuto rejected: %v", err)
	}
	// Replicas beyond the pool size is legal: the replica set clamps to the
	// whole membership (R-distinctness even when N ≤ R).
	if _, err := Run(reqs, Config{Shards: 2, Replicas: 5, HedgeUS: 100}); err != nil {
		t.Errorf("Replicas > Shards rejected: %v", err)
	}
}
