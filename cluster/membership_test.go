package cluster

import (
	"bytes"
	"strings"
	"testing"

	"fpgapart/partserver"
)

// TestMembershipScheduleValidate pins the schedule's legality rules: time
// order, join/drain against the evolving member set, never emptying the
// ring, bounded shard ids — and that a drained id may legally rejoin.
func TestMembershipScheduleValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		shards  int
		sched   MembershipSchedule
		wantErr string
	}{
		{"empty", 3, nil, ""},
		{"join-then-drain", 3, MembershipSchedule{
			{AtUS: 100, Shard: 3, Kind: Join},
			{AtUS: 200, Shard: 1, Kind: Drain},
		}, ""},
		{"rejoin-after-drain", 3, MembershipSchedule{
			{AtUS: 100, Shard: 1, Kind: Drain},
			{AtUS: 200, Shard: 1, Kind: Join},
		}, ""},
		{"equal-times", 3, MembershipSchedule{
			{AtUS: 100, Shard: 3, Kind: Join},
			{AtUS: 100, Shard: 4, Kind: Join},
		}, ""},
		{"negative-time", 3, MembershipSchedule{
			{AtUS: -1, Shard: 3, Kind: Join},
		}, "negative time"},
		{"out-of-order", 3, MembershipSchedule{
			{AtUS: 200, Shard: 3, Kind: Join},
			{AtUS: 100, Shard: 4, Kind: Join},
		}, "precedes"},
		{"join-member", 3, MembershipSchedule{
			{AtUS: 100, Shard: 2, Kind: Join},
		}, "already a member"},
		{"drain-nonmember", 3, MembershipSchedule{
			{AtUS: 100, Shard: 7, Kind: Drain},
		}, "not a ring member"},
		{"drain-last", 1, MembershipSchedule{
			{AtUS: 100, Shard: 0, Kind: Drain},
		}, "last shard"},
		{"empty-via-drains", 2, MembershipSchedule{
			{AtUS: 100, Shard: 0, Kind: Drain},
			{AtUS: 200, Shard: 1, Kind: Drain},
		}, "last shard"},
		{"huge-id", 3, MembershipSchedule{
			{AtUS: 100, Shard: maxShardID, Kind: Join},
		}, "outside"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sched.Validate(tc.shards)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseMembershipSchedule pins the CLI syntax.
func TestParseMembershipSchedule(t *testing.T) {
	sched, err := ParseMembershipSchedule(" join:3@4000, drain:1@9000 ")
	if err != nil {
		t.Fatal(err)
	}
	want := MembershipSchedule{
		{AtUS: 4000, Shard: 3, Kind: Join},
		{AtUS: 9000, Shard: 1, Kind: Drain},
	}
	if len(sched) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(sched), len(want))
	}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, sched[i], want[i])
		}
	}
	if s, err := ParseMembershipSchedule("  "); err != nil || s != nil {
		t.Fatalf("blank schedule: %v %v, want nil, nil", s, err)
	}
	for _, bad := range []string{"join:3", "3@4000", "leave:3@4000", "join:x@4000", "join:3@x"} {
		if _, err := ParseMembershipSchedule(bad); err == nil {
			t.Errorf("ParseMembershipSchedule(%q): no error", bad)
		}
	}
}

// churnLoad is the shared stream of the membership tests: dense enough that
// a mid-stream event lands between requests.
func churnLoad(t *testing.T, seed uint64, n int) []Request {
	t.Helper()
	reqs, err := GenerateLoad(seed, n, LoadOptions{MeanGapUS: 40})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestLiveJoinMoveBound: a live join of one shard into N must re-route at
// most ceil(2/(N+1)) of the stream's keys (permyriad, with vnode-placement
// slack), while the modulo baseline reshuffles the majority — the
// consistent-hashing contract, now measured on the live migration path.
func TestLiveJoinMoveBound(t *testing.T) {
	for shards := 2; shards <= 5; shards++ {
		seed := seedFromName(t) + uint64(shards)
		reqs := churnLoad(t, seed, 24)
		rep, err := Run(reqs, Config{
			Shards:   shards,
			Seed:     seed,
			Schedule: MembershipSchedule{{AtUS: 400, Shard: shards, Kind: Join}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.EventMovedX10000) != 1 {
			t.Fatalf("shards=%d: event moves %v, want one entry", shards, rep.EventMovedX10000)
		}
		bound := 2 * 10000 / int64(shards+1)
		if moved := rep.EventMovedX10000[0]; moved > bound {
			t.Errorf("shards=%d: live join moved %d permyriad of keys, bound %d", shards, moved, bound)
		}
		keys := make([]uint64, len(reqs))
		for i := range reqs {
			keys[i] = reqs[i].Key
		}
		if mod := MovedPermyriad(keys, Modulo(shards), Modulo(shards+1)); mod < 5000 {
			t.Errorf("shards=%d: modulo baseline moved only %d permyriad; the comparison is broken", shards, mod)
		}
	}
}

// TestInFlightCompletesOnAdmissionOwner: a drain stops the shard's accept
// path at the event time, but everything it admitted before still completes
// on it — and nothing admitted at or after the event routes to it.
func TestInFlightCompletesOnAdmissionOwner(t *testing.T) {
	const drainAt = 500
	seed := seedFromName(t)
	reqs := churnLoad(t, seed, 24)
	rep, err := Run(reqs, Config{
		Shards:   3,
		Seed:     seed,
		Schedule: MembershipSchedule{{AtUS: drainAt, Shard: 1, Kind: Drain}},
	})
	if err != nil {
		t.Fatal(err)
	}
	before, after := 0, 0
	for i := range rep.Results {
		rr := &rep.Results[i]
		if rr.AdmitUS < drainAt {
			before++
			if rr.Shard == 1 && rr.Status != partserver.StatusDone {
				t.Errorf("request %d admitted to draining shard 1 at %dus: status %q, want done",
					i, rr.AdmitUS, rr.Status)
			}
		} else {
			after++
			if rr.Shard == 1 {
				t.Errorf("request %d admitted at %dus routed to shard 1, drained at %dus",
					i, rr.AdmitUS, drainAt)
			}
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("drain at %dus split the stream %d/%d; need requests on both sides", drainAt, before, after)
	}
	if rep.Done != len(reqs) {
		t.Fatalf("only %d/%d requests done (failed %d)", rep.Done, len(reqs), rep.Failed)
	}
	checkParity(t, rep, reqs, seed)
}

// TestChurnMatchesStaticRingOnUnmovedKeys: requests whose key owns the same
// shard in every membership epoch must be completely untouched by churn —
// same shard, same output — relative to the static-ring run of the
// identical stream. Only moved ranges may re-route.
func TestChurnMatchesStaticRingOnUnmovedKeys(t *testing.T) {
	seed := seedFromName(t)
	reqs := churnLoad(t, seed, 24)
	sched := MembershipSchedule{
		{AtUS: 300, Shard: 3, Kind: Join},
		{AtUS: 700, Shard: 0, Kind: Drain},
	}
	churn, err := Run(reqs, Config{Shards: 3, Seed: seed, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(reqs, Config{Shards: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rings, err := sched.epochs(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	unmoved := func(key uint64) bool {
		owner := rings[0].Shard(key)
		for _, r := range rings[1:] {
			if r.Shard(key) != owner {
				return false
			}
		}
		return true
	}
	checked := 0
	for i := range reqs {
		if !unmoved(reqs[i].Key) {
			continue
		}
		checked++
		c, s := &churn.Results[i], &static.Results[i]
		if c.Shard != s.Shard {
			t.Errorf("unmoved request %d: churn shard %d, static shard %d", i, c.Shard, s.Shard)
		}
		if c.Checksum != s.Checksum || c.Matches != s.Matches {
			t.Errorf("unmoved request %d: churn output %d/%d, static %d/%d",
				i, c.Checksum, c.Matches, s.Checksum, s.Matches)
		}
	}
	if checked == 0 {
		t.Fatal("no unmoved keys in the stream; the test checks nothing")
	}
	if churn.Checksum != static.Checksum || churn.Done != static.Done {
		t.Errorf("churn totals %d done / checksum %d, static %d / %d",
			churn.Done, churn.Checksum, static.Done, static.Checksum)
	}
}

// TestDrainedShardKeepsReportRow is the regression test for the per-shard
// report rows under churn: a drained shard keeps its row with its
// cumulative pre-drain load, and a joined shard (id ≥ Shards) gets a row of
// its own instead of crashing the gather.
func TestDrainedShardKeepsReportRow(t *testing.T) {
	seed := seedFromName(t)
	reqs := churnLoad(t, seed, 24)
	rep, err := Run(reqs, Config{
		Shards: 3,
		Seed:   seed,
		Schedule: MembershipSchedule{
			{AtUS: 300, Shard: 3, Kind: Join},
			{AtUS: 600, Shard: 1, Kind: Drain},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ShardJobs) != 4 || len(rep.ShardMakespanUS) != 4 {
		t.Fatalf("per-shard rows for %d/%d shards, want 4 (ids 0..3, drained shard included)",
			len(rep.ShardJobs), len(rep.ShardMakespanUS))
	}
	if rep.ShardJobs[1] == 0 {
		t.Error("drained shard 1 reports zero jobs; its cumulative pre-drain load was lost")
	}
	var total int
	for _, n := range rep.ShardJobs {
		total += n
	}
	if total != rep.Done+rep.Failed-countUnrouted(rep) {
		t.Errorf("per-shard jobs sum %d, requests admitted %d", total, rep.Done+rep.Failed-countUnrouted(rep))
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(b.Bytes(), []byte("{\"shard\": ")); n != 4 {
		t.Errorf("report JSON has %d per-shard rows, want 4", n)
	}
}

func countUnrouted(rep *Report) int {
	n := 0
	for i := range rep.Results {
		if rep.Results[i].Shard < 0 {
			n++
		}
	}
	return n
}

// TestReplicaSetAlwaysDistinct: the replica set is always R distinct
// members — and exactly the whole membership when N ≤ R — with the primary
// first, whatever the ring size.
func TestReplicaSetAlwaysDistinct(t *testing.T) {
	for n := 1; n <= 5; n++ {
		members := make([]int, n)
		for i := range members {
			members[i] = i * 3 // non-contiguous ids
		}
		ring, err := NewRing(members, 64)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 4; r++ {
			for key := uint64(0); key < 64; key++ {
				set := ring.ReplicaSet(key, r)
				wantLen := r
				if n < r {
					wantLen = n
				}
				if len(set) != wantLen {
					t.Fatalf("n=%d r=%d key=%d: replica set %v, want %d members", n, r, key, set, wantLen)
				}
				if set[0] != ring.Shard(key) {
					t.Fatalf("n=%d r=%d key=%d: replica set %v does not start with primary %d",
						n, r, key, set, ring.Shard(key))
				}
				seen := map[int]bool{}
				for _, s := range set {
					if seen[s] {
						t.Fatalf("n=%d r=%d key=%d: duplicate shard in replica set %v", n, r, key, set)
					}
					if !ring.Member(s) {
						t.Fatalf("n=%d r=%d key=%d: non-member %d in replica set", n, r, key, s)
					}
					seen[s] = true
				}
			}
		}
	}
}
