package cluster

import (
	"fmt"
	"io"
	"sort"

	"fpgapart/partserver"
)

// RequestResult is one request's outcome, in request order.
type RequestResult struct {
	// Index is the request's position in the submitted stream.
	Index int
	// Tenant echoes Request.Tenant.
	Tenant int
	// Shard is where the request executed (-1: never admitted — every shard
	// was dead when it arrived).
	Shard int
	// Rerouted reports that the ring's primary owner was dead and the
	// request failed over clockwise to Shard.
	Rerouted bool
	// Throttled reports that the tenant's admission quota deferred the
	// request past its arrival window.
	Throttled bool

	// HandoffUS is the migration drain-barrier wait the request paid before
	// its new owner could serve its freshly-moved key (0 otherwise).
	HandoffUS int64
	// Hedged reports a replica hedge was issued; HedgeShard is its target
	// (-1 when not hedged); HedgeWon that the hedge finished strictly first
	// (the result fields below are then the hedge lane's).
	Hedged     bool
	HedgeShard int
	HedgeWon   bool

	// Status is the shard scheduler's terminal status (StatusFailed for
	// never-admitted requests); for a won hedge, the hedge lane's status.
	Status partserver.Status

	// Virtual timeline (µs): router arrival, quota-adjusted admission,
	// completion on the winning shard; LatencyUS = DoneUS − ArrivalUS, the
	// end-to-end latency the tenant observes.
	ArrivalUS, AdmitUS, DoneUS, LatencyUS int64

	// Output shape, echoed from the winning JobResult.
	Tuples   int64
	Matches  int64
	Checksum uint32
}

// Report is the outcome of one routed request stream.
type Report struct {
	// Results holds one entry per request, in request order.
	Results []RequestResult

	// Requests, Done and Failed count the stream; Done counts StatusDone,
	// Failed counts shard failures plus never-admitted requests.
	Requests, Done, Failed int
	// Throttled counts quota-deferred requests; ThrottleDelayUS is the total
	// virtual delay the quota imposed.
	Throttled       int
	ThrottleDelayUS int64
	// Rerouted counts requests that failed over past a dead primary.
	Rerouted int
	// FailedShards lists fail-stopped shards, ascending.
	FailedShards []int

	// MakespanUS is the completion time of the last request on the global
	// virtual clock.
	MakespanUS int64
	// Matches sums join cardinalities; Checksum is the order-insensitive
	// merge (wrapping uint32 sum) of every request's output checksum — equal
	// by construction to a single-node run of the same jobs, and invariant
	// under hedging (a hedge recomputes the same content).
	Matches  int64
	Checksum uint32

	// Latency distribution over completed requests (µs, virtual): mean and
	// exact nearest-rank 50th/95th/99th percentiles. QPSx100 is completed
	// requests per second of makespan, ×100 fixed point.
	LatAvgUS, LatP50US, LatP95US, LatP99US int64
	QPSx100                                int64

	// Rebalancing measurement over this stream's routing keys: permyriad of
	// keys that change owner when shard N joins the initial ring, under the
	// ring vs. under modulo sharding (ring ≈ 10000/(N+1); modulo ≈
	// 10000·N/(N+1)).
	MovedRingX10000, MovedModX10000 int64

	// Membership churn, echoed from Config.Schedule: the events, the joined
	// and drained shard ids, and per event the permyriad of this stream's
	// keys whose owner the event actually moved.
	MembershipEvents []MembershipEvent
	JoinedShards     []int
	DrainedShards    []int
	EventMovedX10000 []int64
	// HandoffDelayed counts requests that waited out a drain barrier;
	// HandoffWaitUS their summed wait.
	HandoffDelayed int
	HandoffWaitUS  int64

	// HedgedRun echoes whether hedging was enabled; Replicas the replica-set
	// width. HedgeIssued/HedgeWon/HedgeCancelled count the hedge lane;
	// HedgeSavedUS is the summed latency the winning hedges shaved off their
	// primaries, HedgeWastedUS the execution the losing-but-completed hedges
	// burned.
	HedgedRun      bool
	Replicas       int
	HedgeIssued    int
	HedgeWon       int
	HedgeCancelled int
	HedgeSavedUS   int64
	HedgeWastedUS  int64

	// Per-shard load: jobs routed and shard-local makespan, indexed by shard
	// id over every shard that was ever a member. A drained shard keeps its
	// row — its cumulative pre-drain load — rather than silently losing its
	// history; a joined shard's row exists from the start (zero until it
	// serves).
	ShardJobs       []int
	ShardMakespanUS []int64
}

// dynamic reports whether the run used membership churn or hedging — the
// gate for the extended report fields, counters and JSON, so static
// unhedged runs keep their exact historical bytes.
func (rep *Report) dynamic() bool {
	return len(rep.MembershipEvents) > 0 || rep.HedgedRun
}

// gather merges the per-shard reports back into request order — hedge
// winners overriding their primaries — and derives the cluster-level
// aggregates.
func (st *runState) gather() *Report {
	reqs := st.reqs
	rep := &Report{
		Results:         make([]RequestResult, len(reqs)),
		Requests:        len(reqs),
		ThrottleDelayUS: st.throttleDelayUS,
		HedgedRun:       st.cfg.HedgeUS != 0,
		Replicas:        st.cfg.Replicas,
		ShardJobs:       make([]int, st.numShards),
		ShardMakespanUS: make([]int64, st.numShards),
	}
	if len(st.events) > 0 {
		rep.MembershipEvents = append(rep.MembershipEvents, st.events...)
		for j := range st.events {
			ev := &st.events[j]
			if ev.Kind == Join {
				rep.JoinedShards = append(rep.JoinedShards, ev.Shard)
			} else {
				rep.DrainedShards = append(rep.DrainedShards, ev.Shard)
			}
		}
	}
	for i := range reqs {
		d := &st.decisions[i]
		rep.Results[i] = RequestResult{
			Index:      i,
			Tenant:     reqs[i].Tenant,
			Shard:      d.shard,
			Rerouted:   d.shard >= 0 && d.shard != d.primary,
			Throttled:  d.throttled,
			HandoffUS:  d.handoffUS,
			Hedged:     d.hedged,
			HedgeShard: d.hedgeShard,
			HedgeWon:   d.hedgeWon,
			Status:     partserver.StatusFailed,
			ArrivalUS:  reqs[i].Job.ArrivalUS,
			AdmitUS:    d.admitUS,
		}
	}
	for s := range st.shardReps {
		srep := st.shardReps[s]
		if srep == nil {
			continue
		}
		rep.ShardJobs[s] = len(srep.Results)
		if srep.MakespanUS > rep.ShardMakespanUS[s] {
			rep.ShardMakespanUS[s] = srep.MakespanUS
		}
		for k := range srep.Results {
			jr := &srep.Results[k]
			rr := &rep.Results[jr.Tag]
			rr.Status = jr.Status
			rr.DoneUS = jr.DoneUS
			rr.LatencyUS = jr.DoneUS - rr.ArrivalUS
			rr.Tuples = jr.Tuples
			rr.Matches = jr.Matches
			rr.Checksum = jr.Checksum
		}
	}
	// Hedge lane bookkeeping: winners override their primary's result (same
	// content, earlier completion); losers count as cancelled or wasted.
	for i := range reqs {
		d := &st.decisions[i]
		if !d.hedged {
			continue
		}
		rep.HedgeIssued++
		jr := st.laneRes[i]
		if jr == nil {
			continue
		}
		if d.hedgeWon {
			rep.HedgeWon++
			rep.HedgeSavedUS += st.finDone[i] - jr.DoneUS
			rr := &rep.Results[i]
			rr.Status = jr.Status
			rr.DoneUS = jr.DoneUS
			rr.LatencyUS = jr.DoneUS - rr.ArrivalUS
			rr.Tuples = jr.Tuples
			rr.Matches = jr.Matches
			rr.Checksum = jr.Checksum
		} else if jr.Status == partserver.StatusCancelled {
			rep.HedgeCancelled++
		} else if jr.Status == partserver.StatusDone {
			rep.HedgeWastedUS += jr.ExecUS
		}
	}

	lat := make([]int64, 0, len(reqs))
	for i := range rep.Results {
		rr := &rep.Results[i]
		switch {
		case rr.Shard < 0 || rr.Status == partserver.StatusFailed:
			rep.Failed++
		case rr.Status == partserver.StatusDone:
			rep.Done++
			lat = append(lat, rr.LatencyUS)
		}
		if rr.Throttled {
			rep.Throttled++
		}
		if rr.Rerouted {
			rep.Rerouted++
		}
		if rr.HandoffUS > 0 {
			rep.HandoffDelayed++
			rep.HandoffWaitUS += rr.HandoffUS
		}
		rep.Matches += rr.Matches
		rep.Checksum += rr.Checksum
		if rr.DoneUS > rep.MakespanUS {
			rep.MakespanUS = rr.DoneUS
		}
	}
	for s := range st.dead {
		if st.dead[s] {
			rep.FailedShards = append(rep.FailedShards, s)
		}
	}

	if len(lat) > 0 {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		rep.LatAvgUS = sum / int64(len(lat))
		rep.LatP50US = percentile(lat, 50)
		rep.LatP95US = percentile(lat, 95)
		rep.LatP99US = percentile(lat, 99)
	}
	if rep.MakespanUS > 0 {
		rep.QPSx100 = int64(rep.Done) * 100_000_000 / rep.MakespanUS
	}

	// Rebalancing: what joining shard N would move from the initial ring,
	// measured over this stream's actual keys — plus what each scheduled
	// membership event actually moved.
	keys := make([]uint64, len(reqs))
	for i := range reqs {
		keys[i] = reqs[i].Key
	}
	initial := st.rings[0]
	if grown, err := initial.WithShard(st.cfg.Shards); err == nil {
		rep.MovedRingX10000 = MovedPermyriad(keys, initial, grown)
	}
	rep.MovedModX10000 = MovedPermyriad(keys, Modulo(st.cfg.Shards), Modulo(st.cfg.Shards+1))
	for j := range st.events {
		rep.EventMovedX10000 = append(rep.EventMovedX10000,
			MovedPermyriad(keys, st.rings[j], st.rings[j+1]))
	}
	return rep
}

// percentile returns the exact nearest-rank q-th percentile of sorted
// (ascending) non-empty values.
func percentile(sorted []int64, q int) int64 {
	rank := (len(sorted)*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// emit reports the run into the simtrace session, in fixed order, after the
// deterministic harvest. Nil session disables everything. The membership
// and hedging counters appear only on dynamic runs, so static runs' metric
// snapshots keep their historical bytes.
func (st *runState) emit(rep *Report) {
	sess := st.cfg.Trace
	if sess == nil {
		return
	}
	m := sess.Metrics
	m.Counter("cluster.requests").Add(int64(rep.Requests))
	m.Counter("cluster.requests_done").Add(int64(rep.Done))
	m.Counter("cluster.requests_failed").Add(int64(rep.Failed))
	m.Counter("cluster.throttled").Add(int64(rep.Throttled))
	m.Counter("cluster.throttle_delay_us").Add(rep.ThrottleDelayUS)
	m.Counter("cluster.rerouted").Add(int64(rep.Rerouted))
	m.Counter("cluster.failed_shards").Add(int64(len(rep.FailedShards)))
	m.Counter("cluster.matches").Add(rep.Matches)
	m.Counter("cluster.output_checksum").Add(int64(rep.Checksum))
	m.Counter("cluster.makespan_us").Add(rep.MakespanUS)
	m.Counter("cluster.lat_avg_us").Add(rep.LatAvgUS)
	m.Counter("cluster.lat_p50_us").Add(rep.LatP50US)
	m.Counter("cluster.lat_p95_us").Add(rep.LatP95US)
	m.Counter("cluster.lat_p99_us").Add(rep.LatP99US)
	m.Counter("cluster.qps_x100").Add(rep.QPSx100)
	m.Counter("cluster.moved_ring_x10000").Add(rep.MovedRingX10000)
	m.Counter("cluster.moved_mod_x10000").Add(rep.MovedModX10000)
	if rep.dynamic() {
		m.Counter("cluster.membership_events").Add(int64(len(rep.MembershipEvents)))
		for j, moved := range rep.EventMovedX10000 {
			m.Counter(fmt.Sprintf("cluster.event%d.moved_x10000", j)).Add(moved)
		}
		m.Counter("cluster.handoff_delayed").Add(int64(rep.HandoffDelayed))
		m.Counter("cluster.handoff_wait_us").Add(rep.HandoffWaitUS)
		m.Counter("cluster.hedge_issued").Add(int64(rep.HedgeIssued))
		m.Counter("cluster.hedge_won").Add(int64(rep.HedgeWon))
		m.Counter("cluster.hedge_cancelled").Add(int64(rep.HedgeCancelled))
		m.Counter("cluster.hedge_saved_us").Add(rep.HedgeSavedUS)
		m.Counter("cluster.hedge_wasted_us").Add(rep.HedgeWastedUS)
	}
	h := m.Histogram("cluster.latency_us")
	for s := range rep.ShardJobs {
		comp := fmt.Sprintf("shard%d", s)
		m.Counter("cluster." + comp + ".jobs").Add(int64(rep.ShardJobs[s]))
		m.Counter("cluster." + comp + ".makespan_us").Add(rep.ShardMakespanUS[s])
		sess.Tracer.Span(comp, "serve", 0, rep.ShardMakespanUS[s])
	}
	for _, s := range rep.FailedShards {
		sess.Tracer.Instant("cluster", fmt.Sprintf("shard%d.crash", s), st.crashUS[s])
	}
	for j := range rep.MembershipEvents {
		ev := &rep.MembershipEvents[j]
		sess.Tracer.Instant("cluster", fmt.Sprintf("shard%d.%s", ev.Shard, ev.Kind), ev.AtUS)
	}
	for i := range rep.Results {
		rr := &rep.Results[i]
		if rr.Status == partserver.StatusDone {
			h.Observe(rr.LatencyUS)
		}
		sess.Tracer.Sample("cluster", "route.shard", rr.AdmitUS, int64(rr.Shard))
	}
}

// WriteJSON renders the report as deterministic JSON, written field by
// field in a fixed layout (the repo's golden/BENCH convention — no
// reflective marshalling), so same-seed runs emit byte-identical bytes.
// The membership/hedging section and per-result extensions appear only on
// dynamic runs, keeping static reports byte-compatible with their goldens.
func (rep *Report) WriteJSON(w io.Writer) error {
	write := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("cluster: writing report: %w", err)
		}
		return nil
	}
	writeInts := func(vals []int) error {
		for i, v := range vals {
			sep := ""
			if i > 0 {
				sep = ", "
			}
			if err := write("%s%d", sep, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("{\n  \"requests\": %d,\n  \"done\": %d,\n  \"failed\": %d,\n  \"throttled\": %d,\n  \"throttle_delay_us\": %d,\n  \"rerouted\": %d,\n",
		rep.Requests, rep.Done, rep.Failed, rep.Throttled, rep.ThrottleDelayUS, rep.Rerouted); err != nil {
		return err
	}
	if err := write("  \"failed_shards\": ["); err != nil {
		return err
	}
	if err := writeInts(rep.FailedShards); err != nil {
		return err
	}
	if err := write("],\n  \"makespan_us\": %d,\n  \"matches\": %d,\n  \"checksum\": %d,\n  \"lat_avg_us\": %d,\n  \"lat_p50_us\": %d,\n  \"lat_p95_us\": %d,\n  \"lat_p99_us\": %d,\n  \"qps_x100\": %d,\n  \"moved_ring_x10000\": %d,\n  \"moved_mod_x10000\": %d,\n",
		rep.MakespanUS, rep.Matches, rep.Checksum, rep.LatAvgUS, rep.LatP50US, rep.LatP95US, rep.LatP99US,
		rep.QPSx100, rep.MovedRingX10000, rep.MovedModX10000); err != nil {
		return err
	}
	if rep.dynamic() {
		if err := write("  \"membership_events\": [\n"); err != nil {
			return err
		}
		for j := range rep.MembershipEvents {
			ev := &rep.MembershipEvents[j]
			sep := ","
			if j == len(rep.MembershipEvents)-1 {
				sep = ""
			}
			if err := write("    {\"kind\": %q, \"shard\": %d, \"at_us\": %d, \"moved_x10000\": %d}%s\n",
				ev.Kind.String(), ev.Shard, ev.AtUS, rep.EventMovedX10000[j], sep); err != nil {
				return err
			}
		}
		if err := write("  ],\n  \"joined\": ["); err != nil {
			return err
		}
		if err := writeInts(rep.JoinedShards); err != nil {
			return err
		}
		if err := write("],\n  \"drained\": ["); err != nil {
			return err
		}
		if err := writeInts(rep.DrainedShards); err != nil {
			return err
		}
		if err := write("],\n  \"handoff_delayed\": %d,\n  \"handoff_wait_us\": %d,\n  \"replicas\": %d,\n  \"hedged_run\": %v,\n  \"hedge_issued\": %d,\n  \"hedge_won\": %d,\n  \"hedge_cancelled\": %d,\n  \"hedge_saved_us\": %d,\n  \"hedge_wasted_us\": %d,\n",
			rep.HandoffDelayed, rep.HandoffWaitUS, rep.Replicas, rep.HedgedRun,
			rep.HedgeIssued, rep.HedgeWon, rep.HedgeCancelled, rep.HedgeSavedUS, rep.HedgeWastedUS); err != nil {
			return err
		}
	}
	if err := write("  \"shards\": [\n"); err != nil {
		return err
	}
	for s := range rep.ShardJobs {
		sep := ","
		if s == len(rep.ShardJobs)-1 {
			sep = ""
		}
		if err := write("    {\"shard\": %d, \"jobs\": %d, \"makespan_us\": %d}%s\n",
			s, rep.ShardJobs[s], rep.ShardMakespanUS[s], sep); err != nil {
			return err
		}
	}
	if err := write("  ],\n  \"results\": [\n"); err != nil {
		return err
	}
	for i := range rep.Results {
		rr := &rep.Results[i]
		sep := ","
		if i == len(rep.Results)-1 {
			sep = ""
		}
		ext := ""
		if rep.dynamic() {
			ext = fmt.Sprintf(", \"handoff_us\": %d, \"hedged\": %v, \"hedge_shard\": %d, \"hedge_won\": %v",
				rr.HandoffUS, rr.Hedged, rr.HedgeShard, rr.HedgeWon)
		}
		if err := write("    {\"index\": %d, \"tenant\": %d, \"shard\": %d, \"rerouted\": %v, \"throttled\": %v, \"status\": %q, \"arrival_us\": %d, \"admit_us\": %d, \"done_us\": %d, \"latency_us\": %d, \"tuples\": %d, \"matches\": %d, \"checksum\": %d%s}%s\n",
			rr.Index, rr.Tenant, rr.Shard, rr.Rerouted, rr.Throttled, rr.Status,
			rr.ArrivalUS, rr.AdmitUS, rr.DoneUS, rr.LatencyUS,
			rr.Tuples, rr.Matches, rr.Checksum, ext, sep); err != nil {
			return err
		}
	}
	return write("  ]\n}\n")
}
