package cluster

import (
	"fmt"
	"io"
	"sort"

	"fpgapart/internal/simtrace"
	"fpgapart/partserver"
)

// RequestResult is one request's outcome, in request order.
type RequestResult struct {
	// Index is the request's position in the submitted stream.
	Index int
	// Tenant echoes Request.Tenant.
	Tenant int
	// Shard is where the request executed (-1: never admitted — every shard
	// was dead when it arrived).
	Shard int
	// Rerouted reports that the ring's primary owner was dead and the
	// request failed over clockwise to Shard.
	Rerouted bool
	// Throttled reports that the tenant's admission quota deferred the
	// request past its arrival window.
	Throttled bool

	// Status is the shard scheduler's terminal status (StatusFailed for
	// never-admitted requests).
	Status partserver.Status

	// Virtual timeline (µs): router arrival, quota-adjusted admission,
	// completion on the shard; LatencyUS = DoneUS − ArrivalUS, the
	// end-to-end latency the tenant observes.
	ArrivalUS, AdmitUS, DoneUS, LatencyUS int64

	// Output shape, echoed from the shard's JobResult.
	Tuples   int64
	Matches  int64
	Checksum uint32
}

// Report is the outcome of one routed request stream.
type Report struct {
	// Results holds one entry per request, in request order.
	Results []RequestResult

	// Requests, Done and Failed count the stream; Done counts StatusDone,
	// Failed counts shard failures plus never-admitted requests.
	Requests, Done, Failed int
	// Throttled counts quota-deferred requests; ThrottleDelayUS is the total
	// virtual delay the quota imposed.
	Throttled       int
	ThrottleDelayUS int64
	// Rerouted counts requests that failed over past a dead primary.
	Rerouted int
	// FailedShards lists fail-stopped shards, ascending.
	FailedShards []int

	// MakespanUS is the completion time of the last request on the global
	// virtual clock.
	MakespanUS int64
	// Matches sums join cardinalities; Checksum is the order-insensitive
	// merge (wrapping uint32 sum) of every request's output checksum — equal
	// by construction to a single-node run of the same jobs.
	Matches  int64
	Checksum uint32

	// Latency distribution over completed requests (µs, virtual): mean and
	// exact nearest-rank 50th/95th/99th percentiles. QPSx100 is completed
	// requests per second of makespan, ×100 fixed point.
	LatAvgUS, LatP50US, LatP95US, LatP99US int64
	QPSx100                                int64

	// Rebalancing measurement over this stream's routing keys: permyriad of
	// keys that change owner when shard N joins, under the ring vs. under
	// modulo sharding (ring ≈ 10000/(N+1); modulo ≈ 10000·N/(N+1)).
	MovedRingX10000, MovedModX10000 int64

	// Per-shard load: jobs routed and shard-local makespan, indexed by shard.
	ShardJobs       []int
	ShardMakespanUS []int64
}

// gather merges the per-shard reports back into request order and derives
// the cluster-level aggregates.
func gather(reqs []Request, decisions []routed, shardReps []*partserver.Report,
	dead []bool, dieAfter []int, crashUS []int64, ring *Ring, cfg Config, throttleDelayUS int64) *Report {
	rep := &Report{
		Results:         make([]RequestResult, len(reqs)),
		Requests:        len(reqs),
		ThrottleDelayUS: throttleDelayUS,
		ShardJobs:       make([]int, cfg.Shards),
		ShardMakespanUS: make([]int64, cfg.Shards),
	}
	for i := range reqs {
		d := &decisions[i]
		rep.Results[i] = RequestResult{
			Index:     i,
			Tenant:    reqs[i].Tenant,
			Shard:     d.shard,
			Rerouted:  d.shard >= 0 && d.shard != d.primary,
			Throttled: d.throttled,
			Status:    partserver.StatusFailed,
			ArrivalUS: reqs[i].Job.ArrivalUS,
			AdmitUS:   d.admitUS,
		}
	}
	for s := range shardReps {
		srep := shardReps[s]
		if srep == nil {
			continue
		}
		rep.ShardJobs[s] = len(srep.Results)
		if srep.MakespanUS > rep.ShardMakespanUS[s] {
			rep.ShardMakespanUS[s] = srep.MakespanUS
		}
		for k := range srep.Results {
			jr := &srep.Results[k]
			rr := &rep.Results[jr.Tag]
			rr.Status = jr.Status
			rr.DoneUS = jr.DoneUS
			rr.LatencyUS = jr.DoneUS - rr.ArrivalUS
			rr.Tuples = jr.Tuples
			rr.Matches = jr.Matches
			rr.Checksum = jr.Checksum
		}
	}

	lat := make([]int64, 0, len(reqs))
	for i := range rep.Results {
		rr := &rep.Results[i]
		switch {
		case rr.Shard < 0 || rr.Status == partserver.StatusFailed:
			rep.Failed++
		case rr.Status == partserver.StatusDone:
			rep.Done++
			lat = append(lat, rr.LatencyUS)
		}
		if rr.Throttled {
			rep.Throttled++
		}
		if rr.Rerouted {
			rep.Rerouted++
		}
		rep.Matches += rr.Matches
		rep.Checksum += rr.Checksum
		if rr.DoneUS > rep.MakespanUS {
			rep.MakespanUS = rr.DoneUS
		}
	}
	for s := range dead {
		if dead[s] {
			rep.FailedShards = append(rep.FailedShards, s)
		}
	}

	if len(lat) > 0 {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		rep.LatAvgUS = sum / int64(len(lat))
		rep.LatP50US = percentile(lat, 50)
		rep.LatP95US = percentile(lat, 95)
		rep.LatP99US = percentile(lat, 99)
	}
	if rep.MakespanUS > 0 {
		rep.QPSx100 = int64(rep.Done) * 100_000_000 / rep.MakespanUS
	}

	// Rebalancing: what joining shard N would move, measured over this
	// stream's actual keys.
	keys := make([]uint64, len(reqs))
	for i := range reqs {
		keys[i] = reqs[i].Key
	}
	if grown, err := ring.WithShard(cfg.Shards); err == nil {
		rep.MovedRingX10000 = MovedPermyriad(keys, ring, grown)
	}
	rep.MovedModX10000 = MovedPermyriad(keys, Modulo(cfg.Shards), Modulo(cfg.Shards+1))
	return rep
}

// percentile returns the exact nearest-rank q-th percentile of sorted
// (ascending) non-empty values.
func percentile(sorted []int64, q int) int64 {
	rank := (len(sorted)*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// emit reports the run into the simtrace session, in fixed order, after the
// deterministic harvest. Nil session disables everything.
func emit(rep *Report, crashUS []int64, sess *simtrace.Session) {
	if sess == nil {
		return
	}
	m := sess.Metrics
	m.Counter("cluster.requests").Add(int64(rep.Requests))
	m.Counter("cluster.requests_done").Add(int64(rep.Done))
	m.Counter("cluster.requests_failed").Add(int64(rep.Failed))
	m.Counter("cluster.throttled").Add(int64(rep.Throttled))
	m.Counter("cluster.throttle_delay_us").Add(rep.ThrottleDelayUS)
	m.Counter("cluster.rerouted").Add(int64(rep.Rerouted))
	m.Counter("cluster.failed_shards").Add(int64(len(rep.FailedShards)))
	m.Counter("cluster.matches").Add(rep.Matches)
	m.Counter("cluster.output_checksum").Add(int64(rep.Checksum))
	m.Counter("cluster.makespan_us").Add(rep.MakespanUS)
	m.Counter("cluster.lat_avg_us").Add(rep.LatAvgUS)
	m.Counter("cluster.lat_p50_us").Add(rep.LatP50US)
	m.Counter("cluster.lat_p95_us").Add(rep.LatP95US)
	m.Counter("cluster.lat_p99_us").Add(rep.LatP99US)
	m.Counter("cluster.qps_x100").Add(rep.QPSx100)
	m.Counter("cluster.moved_ring_x10000").Add(rep.MovedRingX10000)
	m.Counter("cluster.moved_mod_x10000").Add(rep.MovedModX10000)
	h := m.Histogram("cluster.latency_us")
	for s := range rep.ShardJobs {
		comp := fmt.Sprintf("shard%d", s)
		m.Counter("cluster." + comp + ".jobs").Add(int64(rep.ShardJobs[s]))
		m.Counter("cluster." + comp + ".makespan_us").Add(rep.ShardMakespanUS[s])
		sess.Tracer.Span(comp, "serve", 0, rep.ShardMakespanUS[s])
	}
	for _, s := range rep.FailedShards {
		sess.Tracer.Instant("cluster", fmt.Sprintf("shard%d.crash", s), crashUS[s])
	}
	for i := range rep.Results {
		rr := &rep.Results[i]
		if rr.Status == partserver.StatusDone {
			h.Observe(rr.LatencyUS)
		}
		sess.Tracer.Sample("cluster", "route.shard", rr.AdmitUS, int64(rr.Shard))
	}
}

// WriteJSON renders the report as deterministic JSON, written field by
// field in a fixed layout (the repo's golden/BENCH convention — no
// reflective marshalling), so same-seed runs emit byte-identical bytes.
func (rep *Report) WriteJSON(w io.Writer) error {
	write := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("cluster: writing report: %w", err)
		}
		return nil
	}
	if err := write("{\n  \"requests\": %d,\n  \"done\": %d,\n  \"failed\": %d,\n  \"throttled\": %d,\n  \"throttle_delay_us\": %d,\n  \"rerouted\": %d,\n",
		rep.Requests, rep.Done, rep.Failed, rep.Throttled, rep.ThrottleDelayUS, rep.Rerouted); err != nil {
		return err
	}
	if err := write("  \"failed_shards\": ["); err != nil {
		return err
	}
	for i, s := range rep.FailedShards {
		sep := ""
		if i > 0 {
			sep = ", "
		}
		if err := write("%s%d", sep, s); err != nil {
			return err
		}
	}
	if err := write("],\n  \"makespan_us\": %d,\n  \"matches\": %d,\n  \"checksum\": %d,\n  \"lat_avg_us\": %d,\n  \"lat_p50_us\": %d,\n  \"lat_p95_us\": %d,\n  \"lat_p99_us\": %d,\n  \"qps_x100\": %d,\n  \"moved_ring_x10000\": %d,\n  \"moved_mod_x10000\": %d,\n",
		rep.MakespanUS, rep.Matches, rep.Checksum, rep.LatAvgUS, rep.LatP50US, rep.LatP95US, rep.LatP99US,
		rep.QPSx100, rep.MovedRingX10000, rep.MovedModX10000); err != nil {
		return err
	}
	if err := write("  \"shards\": [\n"); err != nil {
		return err
	}
	for s := range rep.ShardJobs {
		sep := ","
		if s == len(rep.ShardJobs)-1 {
			sep = ""
		}
		if err := write("    {\"shard\": %d, \"jobs\": %d, \"makespan_us\": %d}%s\n",
			s, rep.ShardJobs[s], rep.ShardMakespanUS[s], sep); err != nil {
			return err
		}
	}
	if err := write("  ],\n  \"results\": [\n"); err != nil {
		return err
	}
	for i := range rep.Results {
		rr := &rep.Results[i]
		sep := ","
		if i == len(rep.Results)-1 {
			sep = ""
		}
		if err := write("    {\"index\": %d, \"tenant\": %d, \"shard\": %d, \"rerouted\": %v, \"throttled\": %v, \"status\": %q, \"arrival_us\": %d, \"admit_us\": %d, \"done_us\": %d, \"latency_us\": %d, \"tuples\": %d, \"matches\": %d, \"checksum\": %d}%s\n",
			rr.Index, rr.Tenant, rr.Shard, rr.Rerouted, rr.Throttled, rr.Status,
			rr.ArrivalUS, rr.AdmitUS, rr.DoneUS, rr.LatencyUS,
			rr.Tuples, rr.Matches, rr.Checksum, sep); err != nil {
			return err
		}
	}
	return write("  ]\n}\n")
}
