package cluster

import (
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/partserver"
)

// FuzzClusterRoute is differential fuzzing of the routing tier: for
// arbitrary (seed, stream shape, shard count, vnode count, quota, crash)
// configurations, the scatter-gathered Matches, Checksum, tuple total and
// completion count must equal a single-node partserver run of the same job
// stream. Routing, quota deferral, crash failover and the merge may move
// work around and stretch latencies, but they must never create, lose, or
// corrupt a request's output.
func FuzzClusterRoute(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), uint8(32), uint8(0), uint8(0), false)
	f.Add(uint64(7), uint8(16), uint8(2), uint8(1), uint8(1), uint8(50), false)
	f.Add(uint64(42), uint8(20), uint8(4), uint8(64), uint8(2), uint8(40), true)
	f.Add(uint64(1<<63), uint8(1), uint8(1), uint8(128), uint8(3), uint8(100), false)
	f.Fuzz(func(t *testing.T, seed uint64, nreq, shards, vnodes, quota, hotPct uint8, crash bool) {
		n := 1 + int(nreq)%24
		ns := 1 + int(shards)%5
		reqs, err := GenerateLoad(seed, n, LoadOptions{
			MinTuples:      64,
			MaxTuples:      512,
			MeanGapUS:      40,
			HotTenantShare: float64(hotPct%101) / 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Shards:      ns,
			VNodes:      1 + int(vnodes)%256,
			TenantQuota: int(quota) % 4,
			Seed:        seed,
		}
		// A crash exercises the failover walk; keeping it to one shard of a
		// ≥2-shard pool guarantees a survivor, so every request still
		// completes and the parity invariant holds.
		if crash && ns > 1 {
			cfg.Faults = &faults.Scenario{
				Seed:    seed,
				Crashes: []faults.Crash{{Node: 0, AfterFraction: 0.5}},
			}
		}
		rep, err := Run(reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}

		jobs := make([]partserver.Job, len(reqs))
		for i := range reqs {
			jobs[i] = reqs[i].Job
		}
		refSeed := seed
		if refSeed == 0 {
			refSeed = 1
		}
		ref, err := partserver.Run(jobs, partserver.Config{FPGAs: 1, Workers: 1, Seed: refSeed})
		if err != nil {
			t.Fatal(err)
		}
		var (
			refDone               int
			refTuples, refMatches int64
			refChecksum           uint32
		)
		for i := range ref.Results {
			r := &ref.Results[i]
			if r.Status != partserver.StatusDone {
				t.Fatalf("reference job %d: %v %q", r.ID, r.Status, r.Err)
			}
			refDone++
			refTuples += r.Tuples
			refMatches += r.Matches
			refChecksum += r.Checksum
		}

		if rep.Done != refDone {
			t.Fatalf("cluster completed %d requests, reference %d (failed %d, failed shards %v)",
				rep.Done, refDone, rep.Failed, rep.FailedShards)
		}
		var gotTuples int64
		for i := range rep.Results {
			gotTuples += rep.Results[i].Tuples
		}
		if gotTuples != refTuples {
			t.Fatalf("cluster tuples %d, reference %d", gotTuples, refTuples)
		}
		if rep.Matches != refMatches || rep.Checksum != refChecksum {
			t.Fatalf("cluster merge %d/%#x, reference %d/%#x",
				rep.Matches, rep.Checksum, refMatches, refChecksum)
		}
	})
}

// FuzzMembershipSchedule is differential fuzzing of live churn: from
// arbitrary bytes it grows a legal membership schedule (joins of fresh
// shard ids, drains of current members, nondecreasing times), runs the
// stream through the churning cluster — optionally with hedged reads racing
// on top — and checks it against the same stream on the static initial
// ring. Keys whose owner never changes across any epoch must land on the
// same shard with the same output as the static run; the merged totals must
// match the single-node reference either way. Churn may only ever re-route
// the moved ranges.
func FuzzMembershipSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(12), uint8(3), []byte{0x01, 0x40}, false)
	f.Add(uint64(7), uint8(20), uint8(2), []byte{0x01, 0x20, 0x80, 0x60}, true)
	f.Add(uint64(42), uint8(24), uint8(4), []byte{0x01, 0x10, 0x01, 0x30, 0x80, 0x50}, false)
	f.Add(uint64(9), uint8(16), uint8(3), []byte{0x80, 0x08, 0x01, 0x70}, true)
	f.Fuzz(func(t *testing.T, seed uint64, nreq, shards uint8, plan []byte, hedge bool) {
		n := 1 + int(nreq)%24
		ns := 2 + int(shards)%3
		reqs, err := GenerateLoad(seed, n, LoadOptions{
			MinTuples: 64,
			MaxTuples: 512,
			MeanGapUS: 40,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Decode the plan bytes pairwise into legal events: the first byte's
		// low bit picks join/drain, the second scales the virtual time. A
		// join picks the next unused shard id; a drain removes the oldest
		// member unless it is the last one. Times grow monotonically so the
		// schedule always validates.
		members := make([]int, ns)
		for s := range members {
			members[s] = s
		}
		next := ns
		var sched MembershipSchedule
		at := int64(0)
		for i := 0; i+1 < len(plan) && len(sched) < 4; i += 2 {
			at += int64(plan[i+1]) * 8
			if plan[i]&1 == 1 {
				sched = append(sched, MembershipEvent{AtUS: at, Shard: next, Kind: Join})
				members = append(members, next)
				next++
			} else if len(members) > 1 {
				sched = append(sched, MembershipEvent{AtUS: at, Shard: members[0], Kind: Drain})
				members = members[1:]
			}
		}
		if len(sched) == 0 {
			t.Skip("plan decoded to no events")
		}

		cfg := Config{Shards: ns, Schedule: sched, Seed: seed}
		if hedge {
			cfg.Replicas = 2
			cfg.HedgeUS = 300
		}
		rep, err := Run(reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		static := cfg
		static.Schedule = nil
		static.Replicas = 0
		static.HedgeUS = 0
		srep, err := Run(reqs, static)
		if err != nil {
			t.Fatal(err)
		}

		// The epoch rings the router used (vnodes defaulted to 128).
		rings, err := sched.epochs(ns, 128)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Results {
			rr, sr := &rep.Results[i], &srep.Results[i]
			moved := false
			for _, ring := range rings[1:] {
				if ring.Shard(reqs[i].Key) != rings[0].Shard(reqs[i].Key) {
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			if rr.Shard != sr.Shard {
				t.Fatalf("request %d (unmoved key) on shard %d under churn, %d static (schedule %v)",
					i, rr.Shard, sr.Shard, sched)
			}
			if rr.Checksum != sr.Checksum || rr.Matches != sr.Matches {
				t.Fatalf("request %d (unmoved key): churn output %d/%d, static %d/%d",
					i, rr.Checksum, rr.Matches, sr.Checksum, sr.Matches)
			}
		}
		if rep.Done != srep.Done || rep.Checksum != srep.Checksum || rep.Matches != srep.Matches {
			t.Fatalf("churn totals done=%d checksum=%d matches=%d, static done=%d checksum=%d matches=%d (schedule %v)",
				rep.Done, rep.Checksum, rep.Matches, srep.Done, srep.Checksum, srep.Matches, sched)
		}
		checkParity(t, rep, reqs, seed)
	})
}
