package cluster

import (
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/partserver"
)

// FuzzClusterRoute is differential fuzzing of the routing tier: for
// arbitrary (seed, stream shape, shard count, vnode count, quota, crash)
// configurations, the scatter-gathered Matches, Checksum, tuple total and
// completion count must equal a single-node partserver run of the same job
// stream. Routing, quota deferral, crash failover and the merge may move
// work around and stretch latencies, but they must never create, lose, or
// corrupt a request's output.
func FuzzClusterRoute(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), uint8(32), uint8(0), uint8(0), false)
	f.Add(uint64(7), uint8(16), uint8(2), uint8(1), uint8(1), uint8(50), false)
	f.Add(uint64(42), uint8(20), uint8(4), uint8(64), uint8(2), uint8(40), true)
	f.Add(uint64(1<<63), uint8(1), uint8(1), uint8(128), uint8(3), uint8(100), false)
	f.Fuzz(func(t *testing.T, seed uint64, nreq, shards, vnodes, quota, hotPct uint8, crash bool) {
		n := 1 + int(nreq)%24
		ns := 1 + int(shards)%5
		reqs, err := GenerateLoad(seed, n, LoadOptions{
			MinTuples:      64,
			MaxTuples:      512,
			MeanGapUS:      40,
			HotTenantShare: float64(hotPct%101) / 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Shards:      ns,
			VNodes:      1 + int(vnodes)%256,
			TenantQuota: int(quota) % 4,
			Seed:        seed,
		}
		// A crash exercises the failover walk; keeping it to one shard of a
		// ≥2-shard pool guarantees a survivor, so every request still
		// completes and the parity invariant holds.
		if crash && ns > 1 {
			cfg.Faults = &faults.Scenario{
				Seed:    seed,
				Crashes: []faults.Crash{{Node: 0, AfterFraction: 0.5}},
			}
		}
		rep, err := Run(reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}

		jobs := make([]partserver.Job, len(reqs))
		for i := range reqs {
			jobs[i] = reqs[i].Job
		}
		refSeed := seed
		if refSeed == 0 {
			refSeed = 1
		}
		ref, err := partserver.Run(jobs, partserver.Config{FPGAs: 1, Workers: 1, Seed: refSeed})
		if err != nil {
			t.Fatal(err)
		}
		var (
			refDone               int
			refTuples, refMatches int64
			refChecksum           uint32
		)
		for i := range ref.Results {
			r := &ref.Results[i]
			if r.Status != partserver.StatusDone {
				t.Fatalf("reference job %d: %v %q", r.ID, r.Status, r.Err)
			}
			refDone++
			refTuples += r.Tuples
			refMatches += r.Matches
			refChecksum += r.Checksum
		}

		if rep.Done != refDone {
			t.Fatalf("cluster completed %d requests, reference %d (failed %d, failed shards %v)",
				rep.Done, refDone, rep.Failed, rep.FailedShards)
		}
		var gotTuples int64
		for i := range rep.Results {
			gotTuples += rep.Results[i].Tuples
		}
		if gotTuples != refTuples {
			t.Fatalf("cluster tuples %d, reference %d", gotTuples, refTuples)
		}
		if rep.Matches != refMatches || rep.Checksum != refChecksum {
			t.Fatalf("cluster merge %d/%#x, reference %d/%#x",
				rep.Matches, rep.Checksum, refMatches, refChecksum)
		}
	})
}
