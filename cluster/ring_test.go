package cluster

import (
	"testing"

	"fpgapart/internal/hashutil"
)

// testKeys draws n deterministic routing keys.
func testKeys(seed uint64, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.Murmur64Finalizer(seed ^ uint64(i)<<1 ^ 0xabcdef)
	}
	return keys
}

// TestRingLoadBalance pins the virtual-node balance guarantee: with ~1k
// virtual nodes per shard, every shard's share of a large key population
// stays within ε = 15% of the fair share.
func TestRingLoadBalance(t *testing.T) {
	const (
		shards  = 4
		vnodes  = 1024
		nkeys   = 1 << 15
		epsilon = 0.15
	)
	ring, err := NewRing([]int{0, 1, 2, 3}, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for _, k := range testKeys(7, nkeys) {
		counts[ring.Shard(k)]++
	}
	fair := float64(nkeys) / shards
	for s, c := range counts {
		dev := (float64(c) - fair) / fair
		if dev < -epsilon || dev > epsilon {
			t.Errorf("shard %d holds %d keys, %+.1f%% off the fair share %.0f (ε %.0f%%)",
				s, c, dev*100, fair, epsilon*100)
		}
	}
}

// TestRingRoutingStability: the same key must land on the same shard across
// independent ring rebuilds, whatever order the members were listed in —
// the property that lets every router replica agree without coordination.
func TestRingRoutingStability(t *testing.T) {
	orders := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
	}
	rings := make([]*Ring, len(orders))
	for i, members := range orders {
		r, err := NewRing(members, 256)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, k := range testKeys(11, 4096) {
		want := rings[0].Shard(k)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Shard(k); got != want {
				t.Fatalf("key %#x: ring built in order %v routes to %d, order %v routes to %d",
					k, orders[0], want, orders[i], got)
			}
		}
	}
}

// TestRingJoinMovesFewKeys is the consistent-hashing contract: joining one
// shard into N moves ≈ 1/(N+1) of the keys (≤ 2/N pinned here), every moved
// key moves TO the new shard, and the modulo baseline reshuffles ≥ 50%.
func TestRingJoinMovesFewKeys(t *testing.T) {
	const (
		shards = 4
		vnodes = 1024
		nkeys  = 1 << 15
	)
	before, err := NewRing([]int{0, 1, 2, 3}, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.WithShard(shards)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(13, nkeys)

	moved := MovedPermyriad(keys, before, after)
	if limit := int64(2 * 10000 / shards); moved > limit {
		t.Errorf("ring join moved %d permyriad of keys, want ≤ %d (2/N)", moved, limit)
	}
	if moved == 0 {
		t.Error("ring join moved no keys at all; the new shard holds nothing")
	}
	for _, k := range keys {
		b, a := before.Shard(k), after.Shard(k)
		if b != a && a != shards {
			t.Fatalf("key %#x moved %d→%d on join of shard %d; moves must target the joiner",
				k, b, a, shards)
		}
	}

	movedMod := MovedPermyriad(keys, Modulo(shards), Modulo(shards+1))
	if movedMod < 5000 {
		t.Errorf("modulo join moved only %d permyriad, want ≥ 5000 — baseline should be pathological", movedMod)
	}
}

// TestRingLeaveMovesOnlyOrphans: removing a shard relocates exactly the keys
// it owned; every other key keeps its shard.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	before, err := NewRing([]int{0, 1, 2, 3}, 512)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.WithoutShard(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(17, 1<<14) {
		b, a := before.Shard(k), after.Shard(k)
		if b == 2 {
			if a == 2 {
				t.Fatalf("key %#x still routes to removed shard 2", k)
			}
		} else if a != b {
			t.Fatalf("key %#x moved %d→%d though shard %d was not removed", k, b, a, b)
		}
	}
}

// TestRingFailoverSkipsDead: the failover walk lands on the ring's next live
// owner and agrees with Shard when everyone is alive.
func TestRingFailoverSkipsDead(t *testing.T) {
	ring, err := NewRing([]int{0, 1, 2}, 256)
	if err != nil {
		t.Fatal(err)
	}
	allAlive := func(int) bool { return true }
	for _, k := range testKeys(19, 2048) {
		if s, ok := ring.ShardSkipping(k, allAlive); !ok || s != ring.Shard(k) {
			t.Fatalf("key %#x: all-alive failover gave (%d, %v), Shard gives %d", k, s, ok, ring.Shard(k))
		}
		primary := ring.Shard(k)
		s, ok := ring.ShardSkipping(k, func(sh int) bool { return sh != primary })
		if !ok || s == primary {
			t.Fatalf("key %#x: failover past dead primary %d gave (%d, %v)", k, primary, s, ok)
		}
		if _, ok := ring.ShardSkipping(k, func(int) bool { return false }); ok {
			t.Fatalf("key %#x: failover found a shard in an all-dead cluster", k)
		}
	}
}

// TestNewRingValidation rejects malformed member sets.
func TestNewRingValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		members []int
		vnodes  int
	}{
		{"empty", nil, 64},
		{"duplicate", []int{0, 1, 1}, 64},
		{"negative", []int{-1, 0}, 64},
		{"zero-vnodes", []int{0}, 0},
		{"vnodes-over-cap", []int{0}, MaxVNodes + 1},
	} {
		if _, err := NewRing(tc.members, tc.vnodes); err == nil {
			t.Errorf("%s: NewRing accepted members %v vnodes %d", tc.name, tc.members, tc.vnodes)
		}
	}
	if _, err := (&Ring{}).WithoutShard(0); err == nil {
		// Guards the not-a-member branch without needing a populated ring.
		t.Error("WithoutShard removed a shard from an empty ring")
	}
}

// TestPointHashDistinct spot-checks the injectivity argument behind
// MaxVNodes: no two (shard, vnode) pairs collide within realistic bounds.
func TestPointHashDistinct(t *testing.T) {
	seen := make(map[uint64]bool, 8*512)
	for s := 0; s < 8; s++ {
		for v := 0; v < 512; v++ {
			h := PointHash(s, v)
			if seen[h] {
				t.Fatalf("point hash collision at shard %d vnode %d", s, v)
			}
			seen[h] = true
		}
	}
}
