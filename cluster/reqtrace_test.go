package cluster

import (
	"bytes"
	"strings"
	"testing"

	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
)

// runCaptured executes one routed run with causal capture attached.
func runCaptured(t *testing.T, seed uint64, n int, cfg Config) (*Report, *reqtrace.Capture) {
	t.Helper()
	reqs, err := GenerateLoad(seed, n, LoadOptions{MeanGapUS: 60, HotTenantShare: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	capt := &reqtrace.Capture{}
	cfg.Seed = seed
	cfg.ReqTrace = capt
	rep, err := Run(reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(capt.Traces) != n {
		t.Fatalf("%d traces for %d requests", len(capt.Traces), n)
	}
	return rep, capt
}

// TestClusterReqtraceConservation pins the end-to-end conservation law on
// the full stack: router quota deferral + shard scheduling + execution must
// decompose every request's latency exactly, fault-free and with a shard
// fail-stopping mid-stream.
func TestClusterReqtraceConservation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"faultfree", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400}},
		{"faulty", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400, Faults: crashScenario(23)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, capt := runCaptured(t, 23, 18, tc.cfg)
			throttled := false
			for i := range capt.Traces {
				rt := &capt.Traces[i]
				if !rt.Conserved() {
					t.Fatalf("request %d (%s): breakdown sums to %d, latency %d\n%+v",
						i, rt.Status, rt.Breakdown.Sum(), rt.LatencyUS, rt.Breakdown)
				}
				if rt.Throttled {
					throttled = true
					if rt.Breakdown[reqtrace.CompQuotaWait] == 0 {
						t.Fatalf("request %d throttled but no quota wait charged", i)
					}
				}
				// The trace must agree with the report on the end-to-end facts.
				rr := &rep.Results[i]
				if rt.Status != rr.Status.String() || rt.Shard != rr.Shard {
					t.Fatalf("request %d: trace %s/shard %d, report %v/shard %d",
						i, rt.Status, rt.Shard, rr.Status, rr.Shard)
				}
				if rr.DoneUS > 0 && rt.LatencyUS != rr.DoneUS-rr.ArrivalUS {
					t.Fatalf("request %d: trace latency %d, report %d",
						i, rt.LatencyUS, rr.DoneUS-rr.ArrivalUS)
				}
			}
			if !throttled {
				t.Fatal("quota config produced no throttled request; test exercises nothing")
			}
		})
	}
}

// TestClusterReqtraceFaulty checks the failure surfaces: a crashed shard
// leaves shard_crash and failover events in the merged flight timeline, and
// rerouted requests are marked on their traces.
func TestClusterReqtraceFaulty(t *testing.T) {
	_, capt := runCaptured(t, 23, 18, Config{Shards: 3, Faults: crashScenario(23)})
	var crash, failover bool
	for _, e := range capt.Flight {
		switch e.Kind {
		case "shard_crash":
			crash = true
		case "failover":
			failover = true
		}
	}
	if !crash || !failover {
		t.Fatalf("flight timeline lacks crash/failover evidence (crash=%v failover=%v)", crash, failover)
	}
	rerouted := false
	for i := range capt.Traces {
		rerouted = rerouted || capt.Traces[i].Rerouted
	}
	if !rerouted {
		t.Fatal("no trace marked rerouted despite a shard crash")
	}
	for i := 1; i < len(capt.Flight); i++ {
		if capt.Flight[i].US < capt.Flight[i-1].US {
			t.Fatalf("merged flight timeline out of order at %d", i)
		}
	}
	var b bytes.Buffer
	if err := capt.WritePostmortem(&b, "shard 1 fail-stop"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "shard_crash") {
		t.Fatalf("postmortem lacks the shard crash:\n%s", b.String())
	}
}

// TestClusterReqtraceByteIdentical: three fresh captured runs must render
// byte-identical breakdown JSON, critical-path reports, postmortems and
// Chrome traces (flow arrows included) per seed — the tracing layer adds no
// nondeterminism even with concurrent shard goroutines under -race.
func TestClusterReqtraceByteIdentical(t *testing.T) {
	render := func(cfg Config) []byte {
		sess := simtrace.NewSession()
		cfg.Trace = sess
		_, capt := runCaptured(t, 23, 18, cfg)
		var b bytes.Buffer
		if err := reqtrace.WriteBreakdownJSON(&b, capt.Traces); err != nil {
			t.Fatal(err)
		}
		b.WriteString(reqtrace.Analyze(capt.Traces, 5).Format())
		if err := capt.WritePostmortem(&b, "test"); err != nil {
			t.Fatal(err)
		}
		reqtrace.EmitChrome(sess, capt.Traces)
		if err := sess.Tracer.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"faultfree", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400}},
		{"faulty", Config{Shards: 3, TenantQuota: 2, QuotaWindowUS: 400, Faults: crashScenario(23)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := render(tc.cfg)
			for run := 2; run <= 3; run++ {
				if got := render(tc.cfg); !bytes.Equal(first, got) {
					t.Fatalf("run %d differs from run 1\n%s", run, firstDiff(first, got))
				}
			}
		})
	}
}

// TestClusterP50Report pins the new exact p50: it must lie between 0 and
// p95 and match the report's own percentile helper on the request stream.
func TestClusterP50Report(t *testing.T) {
	rep, _ := runCaptured(t, 23, 18, Config{Shards: 3})
	if rep.LatP50US <= 0 || rep.LatP50US > rep.LatP95US || rep.LatP95US > rep.LatP99US {
		t.Fatalf("percentiles incoherent: p50=%d p95=%d p99=%d",
			rep.LatP50US, rep.LatP95US, rep.LatP99US)
	}
}
