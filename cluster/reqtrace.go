package cluster

import (
	"fmt"
	"sort"

	"fpgapart/internal/reqtrace"
)

// capturePlumbing is the per-run causal-tracing state: one recorder per
// shard (handed to the shard schedulers), one per hedge lane, plus the
// router's own flight ring. nil when the run is untraced.
type capturePlumbing struct {
	cap    *reqtrace.Capture
	recs   []*reqtrace.Recorder
	lanes  []*reqtrace.Recorder
	router *reqtrace.Flight
}

func newCapturePlumbing(c *reqtrace.Capture, shards int) *capturePlumbing {
	if c == nil {
		return nil
	}
	p := &capturePlumbing{
		cap:    c,
		recs:   make([]*reqtrace.Recorder, shards),
		lanes:  make([]*reqtrace.Recorder, shards),
		router: reqtrace.NewFlight(c.FlightCap),
	}
	for s := range p.recs {
		p.recs[s] = reqtrace.NewRecorder(c.FlightCap)
		p.lanes[s] = reqtrace.NewRecorder(c.FlightCap)
	}
	return p
}

// record is a nil-safe router flight event.
func (p *capturePlumbing) record(us int64, kind string, job int, arg int64) {
	if p == nil {
		return
	}
	p.router.Record(reqtrace.FlightEvent{US: us, Comp: "router", Kind: kind, Job: job, Arg: arg})
}

// shardRecorder returns shard s's primary-lane recorder (nil when untraced).
func (p *capturePlumbing) shardRecorder(s int) *reqtrace.Recorder {
	if p == nil {
		return nil
	}
	return p.recs[s]
}

// laneRecorder returns shard s's hedge-lane recorder (nil when untraced).
func (p *capturePlumbing) laneRecorder(s int) *reqtrace.Recorder {
	if p == nil {
		return nil
	}
	return p.lanes[s]
}

// finishFlight merges the router's, every shard's, and every hedge lane's
// flight events into the capture — shard components prefixed "s<N>." (hedge
// lanes read "s<N>.hedge.…" via the scheduler's Lane prefix), shard-local
// job ids remapped to request indices via Job.Tag — ordered by virtual time
// (stable: router before shard 0 before shard 1 at equal stamps; hedge
// lanes after the primaries). A hedge lane's "cancel" is the scheduler
// killing the loser the instant the primary won, so it is rewritten to
// "hedge_lost" — the tagged cancel of a lost hedge. Called via defer so a
// failed run still leaves a postmortem behind.
func (p *capturePlumbing) finishFlight() {
	if p == nil {
		return
	}
	merged := p.router.Events()
	dropped := p.router.Dropped()
	for s, rec := range p.recs {
		for _, e := range rec.FlightEvents() {
			e.Comp = fmt.Sprintf("s%d.%s", s, e.Comp)
			if e.Job >= 0 {
				if j := rec.Job(e.Job); j != nil {
					e.Job = int(j.Tag)
				}
			}
			merged = append(merged, e)
		}
		dropped += rec.FlightDropped()
	}
	for s, rec := range p.lanes {
		for _, e := range rec.FlightEvents() {
			e.Comp = fmt.Sprintf("s%d.%s", s, e.Comp)
			if e.Kind == "cancel" {
				e.Kind = "hedge_lost"
			}
			if e.Job >= 0 {
				if j := rec.Job(e.Job); j != nil {
					e.Job = int(j.Tag)
				}
			}
			merged = append(merged, e)
		}
		dropped += rec.FlightDropped()
	}
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].US < merged[b].US })
	p.cap.Flight = merged
	p.cap.FlightDropped = dropped
}

// buildTraces assembles the per-request causal traces from the router
// decisions and the shard recorders, in request order. A won hedge's trace
// is built from the hedge lane's job record — the winning causal chain —
// with the deadline interval charged as hedge wait.
func (p *capturePlumbing) buildTraces(st *runState) {
	if p == nil {
		return
	}
	traces := make([]reqtrace.RequestTrace, len(st.reqs))
	for idx := range st.reqs {
		d := &st.decisions[idx]
		step := reqtrace.RouterStep{
			ArrivalUS:    st.reqs[idx].Job.ArrivalUS,
			AdmitUS:      d.admitUS,
			Throttled:    d.throttled,
			Shard:        d.shard,
			Primary:      d.primary,
			HandoffUS:    d.handoffUS,
			Hedged:       d.hedged,
			HedgeWon:     d.hedgeWon,
			HedgeIssueUS: d.hedgeIssueUS,
		}
		var job *reqtrace.JobRecord
		if d.hedgeWon {
			job = p.lanes[d.hedgeShard].Job(st.lanePos[idx])
		} else if d.shard >= 0 {
			job = p.recs[d.shard].Job(st.jobPos[idx])
		}
		traces[idx] = reqtrace.BuildRouted(st.cfg.Seed, idx, step, job)
	}
	p.cap.Traces = traces
}
