package hashjoin

import (
	"encoding/binary"
	"testing"

	"fpgapart/internal/joincore"
	"fpgapart/workload"
)

// fuzzRelation decodes a fuzz byte string into a row-layout relation of
// packed <key, payload> tuples, masking keys into a small alphabet so the
// join actually produces matches (and, often, heavy hitters).
func fuzzRelation(t *testing.T, data []byte, keyMask uint32) *workload.Relation {
	t.Helper()
	n := len(data) / 8
	if n == 0 {
		n = 1
	}
	rel, err := workload.NewRelation(workload.RowLayout, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var tu uint64
		if (i+1)*8 <= len(data) {
			tu = binary.LittleEndian.Uint64(data[i*8:])
		}
		rel.SetTuple(i, uint32(tu)&keyMask, uint32(tu>>32))
	}
	return rel
}

// FuzzJoinUnderBudget is differential fuzzing of the memory-adaptive join:
// for arbitrary relations and any budget from 10% to 100% of the build
// side, the budgeted join must reproduce the unconstrained Matches and
// Checksum byte-for-byte, with its recursion depth bounded.
func FuzzJoinUnderBudget(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 0, 0, 0, 0, 0, 0, 9}, uint8(10), uint8(2))
	f.Add([]byte("0123456789abcdef0123456789abcdef"), []byte("fedcba9876543210"), uint8(55), uint8(4))
	f.Add(make([]byte, 256), make([]byte, 512), uint8(100), uint8(3))
	f.Fuzz(func(t *testing.T, rData, sData []byte, budgetPct, fanBits uint8) {
		if len(rData) > 1<<12 || len(sData) > 1<<12 {
			t.Skip("bound the per-input work")
		}
		// Key alphabets small enough that duplicate keys — the hard case
		// for a budgeted build — are common.
		r := fuzzRelation(t, rData, 0xFF)
		s := fuzzRelation(t, sData, 0xFF)
		opts := Options{
			Partitions: 1 << (2 + fanBits%5), // 4..64
			Threads:    1 + int(fanBits)%3,
			Hash:       true,
		}
		want, err := CPU(r, s, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Budget in [10%, 100%] of the unconstrained build footprint.
		buildBytes := int64(r.NumTuples) * joincore.BuildTupleBytes
		pct := 10 + int64(budgetPct)%91
		opts.MemoryBudgetBytes = buildBytes * pct / 100
		if opts.MemoryBudgetBytes < 1 {
			opts.MemoryBudgetBytes = 1
		}
		got, err := CPU(r, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Matches != want.Matches || got.Checksum != want.Checksum {
			t.Fatalf("budget %d%% (%dB): got %d/%#x, want %d/%#x (memory %+v)",
				pct, opts.MemoryBudgetBytes, got.Matches, got.Checksum, want.Matches, want.Checksum, got.Memory)
		}
		if got.Memory == nil {
			t.Fatalf("budgeted join reported no memory stats")
		}
		if got.Memory.MaxDepth > joincore.DefaultMaxDepth+1 {
			t.Fatalf("recursion depth %d exceeds the bound", got.Memory.MaxDepth)
		}
	})
}
