// Package hashjoin implements the partitioned (radix) hash join of
// Section 3.3 and its hybrid CPU+FPGA variant (Section 5): both relations
// are partitioned into cache-sized blocks — on the CPU or on the simulated
// FPGA — and each partition pair is joined with an in-cache build and probe.
//
// The hybrid join charges the simulated FPGA time for the partitioning and
// the measured CPU time for build+probe, inflated by the platform's
// cache-coherence penalty (Table 1): the CPU reads partitions last written
// by the FPGA, so its accesses are snooped on the FPGA socket.
package hashjoin

import (
	"fmt"
	"time"

	"fpgapart/internal/joincore"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Options configures a join run.
type Options struct {
	// Partitions is the fan-out (power of two); the paper's sweet spot for
	// large relations is 8192.
	Partitions int
	// Threads is the build+probe (and CPU partitioning) parallelism;
	// ≤ 0 uses all cores.
	Threads int
	// Hash selects murmur hash partitioning; false selects radix bits.
	Hash bool
	// Platform supplies the coherence model for hybrid joins; defaults to
	// platform.XeonFPGA().
	Platform *platform.Platform
	// Format and Layout configure the FPGA partitioner in Hybrid joins.
	Format partition.Format
	Layout partition.Layout
	// PadFraction is the PAD-mode headroom of the FPGA partitioner.
	PadFraction float64
	// Trace attaches a simtrace session to the FPGA partitioner in Hybrid
	// joins (cycle-level counters, phase spans, windowed samples); nil
	// disables tracing. CPU and NonPartitioned joins ignore it.
	Trace *simtrace.Session
}

func (o Options) withDefaults() Options {
	if o.Platform == nil {
		o.Platform = platform.XeonFPGA()
	}
	return o
}

// Result reports a join run with its phase breakdown.
type Result struct {
	Matches  int64
	Checksum uint64

	// PartitionR and PartitionS are the partitioning times per relation
	// (measured for CPU, simulated for FPGA). For the hybrid join they
	// include any aborted-PAD + CPU-fallback cost.
	PartitionR time.Duration
	PartitionS time.Duration
	// Build and Probe are the measured build+probe times; for hybrid joins
	// they include the coherence snoop penalty.
	Build time.Duration
	Probe time.Duration

	// Total is the end-to-end join time.
	Total time.Duration

	// PartitionerName identifies how the inputs were partitioned.
	PartitionerName string
	// CoherencePenalized reports whether the Table 1 snoop penalty was
	// applied to Build and Probe.
	CoherencePenalized bool
	// FellBack reports a PAD-overflow CPU fallback during partitioning.
	FellBack bool
	// DummyKeyRepartition reports that an input contained tuples whose key
	// equals the FPGA's dummy key — unrepresentable in the FPGA output
	// encoding, they read back as padding — so that side was repartitioned
	// on the CPU to keep the join exact.
	DummyKeyRepartition bool

	Threads int
}

// PartitionTime returns the combined partitioning time.
func (r *Result) PartitionTime() time.Duration { return r.PartitionR + r.PartitionS }

// BuildProbeTime returns the combined build and probe time.
func (r *Result) BuildProbeTime() time.Duration { return r.Build + r.Probe }

// Join partitions R and S with the given partitioner and joins them. This is
// the generic entry point; CPU and Hybrid are convenience wrappers.
func Join(r, s *workload.Relation, p partition.Partitioner, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	pr, err := p.Partition(r)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: partitioning R: %w", err)
	}
	ps, err := p.Partition(s)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: partitioning S: %w", err)
	}
	pr, rExact, err := exactResult(pr, r, opts)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: repartitioning R: %w", err)
	}
	ps, sExact, err := exactResult(ps, s, opts)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: repartitioning S: %w", err)
	}
	bp, err := joincore.BuildProbe(pr, ps, opts.Threads)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Matches:             bp.Matches,
		Checksum:            bp.Checksum,
		PartitionR:          pr.Elapsed(),
		PartitionS:          ps.Elapsed(),
		Build:               bp.Build,
		Probe:               bp.Probe,
		PartitionerName:     p.Name(),
		FellBack:            pr.FellBack() || ps.FellBack(),
		DummyKeyRepartition: rExact || sExact,
		Threads:             bp.Threads,
	}
	// The build scans FPGA-written R partitions sequentially; the probe's
	// chain lookups random-access them. Apply Table 1's penalties to the
	// measured times when the partitions were written by the FPGA.
	if pr.FPGAWritten() || ps.FPGAWritten() {
		m := opts.Platform.Coherence
		res.Build = time.Duration(float64(bp.Build) * m.BuildPenalty())
		res.Probe = time.Duration(float64(bp.Probe) * m.ProbePenalty())
		res.CoherencePenalized = true
	}
	res.Total = res.PartitionR + res.PartitionS + res.Build + res.Probe
	return res, nil
}

// exactResult verifies that res exposes every input tuple to its consumers.
// An FPGA-written result drops tuples whose key collides with the circuit's
// dummy key (they read back as flush padding), which would silently shrink
// the join. On a mismatch the side is repartitioned with the exact CPU
// partitioner over the join-equivalent <key, payload> view of rel, so the
// build and probe see the full relation.
func exactResult(res *partition.Result, rel *workload.Relation, opts Options) (*partition.Result, bool, error) {
	if res.ValidTuples() == int64(rel.NumTuples) {
		return res, false, nil
	}
	src := rel
	if rel.Layout != workload.RowLayout || rel.Width != 8 {
		// The join consumes only (key, payload) pairs: materialize them as
		// 8-byte rows — <key, VRID> for columns, mirroring the FPGA's VRID
		// output; <key, first-word payload> for wide rows.
		rows, err := workload.NewRelation(workload.RowLayout, 8, rel.NumTuples)
		if err != nil {
			return nil, false, err
		}
		for i := 0; i < rel.NumTuples; i++ {
			pay := uint32(i)
			if rel.Layout == workload.RowLayout {
				pay = rel.Payload(i)
			}
			rows.SetTuple(i, rel.Key(i), pay)
		}
		src = rows
	}
	cpu, err := partition.NewCPU(partition.CPUOptions{
		Partitions: res.NumPartitions(),
		Hash:       opts.Hash,
		Threads:    opts.Threads,
	})
	if err != nil {
		return nil, false, err
	}
	exact, err := cpu.Partition(src)
	if err != nil {
		return nil, false, err
	}
	return exact, true, nil
}

// CPU runs the pure-CPU radix hash join: parallel software partitioning
// (Code 2 with software-managed buffers) followed by build+probe.
func CPU(r, s *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	p, err := partition.NewCPU(partition.CPUOptions{
		Partitions: opts.Partitions,
		Hash:       opts.Hash,
		Threads:    opts.Threads,
	})
	if err != nil {
		return nil, err
	}
	return Join(r, s, p, opts)
}

// Hybrid runs the paper's hybrid join: partitioning on the (simulated) FPGA,
// build+probe on the CPU with the coherence penalty applied.
func Hybrid(r, s *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions:      opts.Partitions,
		Hash:            opts.Hash,
		Format:          opts.Format,
		Layout:          opts.Layout,
		PadFraction:     opts.PadFraction,
		Platform:        opts.Platform,
		FallbackThreads: opts.Threads,
		Trace:           opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return Join(r, s, p, opts)
}

// NonPartitioned runs the global-hash-table baseline join without any
// partitioning phase.
func NonPartitioned(r, s *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	bp, err := joincore.NonPartitioned(r, s, opts.Threads)
	if err != nil {
		return nil, err
	}
	return &Result{
		Matches:         bp.Matches,
		Checksum:        bp.Checksum,
		Build:           bp.Build,
		Probe:           bp.Probe,
		Total:           bp.Elapsed,
		PartitionerName: "none",
		Threads:         bp.Threads,
	}, nil
}
