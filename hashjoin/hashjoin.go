// Package hashjoin implements the partitioned (radix) hash join of
// Section 3.3 and its hybrid CPU+FPGA variant (Section 5): both relations
// are partitioned into cache-sized blocks — on the CPU or on the simulated
// FPGA — and each partition pair is joined with an in-cache build and probe.
//
// The hybrid join charges the simulated FPGA time for the partitioning and
// the measured CPU time for build+probe, inflated by the platform's
// cache-coherence penalty (Table 1): the CPU reads partitions last written
// by the FPGA, so its accesses are snooped on the FPGA socket.
package hashjoin

import (
	"errors"
	"fmt"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/membudget"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// ErrBadFanOut is reported (wrapped) when Options.Partitions is not a power
// of two ≥ 2 — the fan-out contract of every partitioner in the repo —
// instead of failing deep inside the partitioning pipeline. Test with
// errors.Is(err, ErrBadFanOut).
var ErrBadFanOut = errors.New("hashjoin: partitions must be a power of two ≥ 2")

// ErrSimulatorFault is reported (wrapped) when an invariant violation inside
// the simulator internals (joincore's budgeted executor, membudget's
// accounting) panics during a join. The public entry points convert such
// panics into errors, so a simulator bug degrades into a failed call instead
// of crashing the process. Test with errors.Is(err, ErrSimulatorFault).
var ErrSimulatorFault = errors.New("hashjoin: simulator invariant fault")

// guardSimulator converts a panic escaping the simulator into an
// ErrSimulatorFault-wrapping error. Used via defer with a named return.
func guardSimulator(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// validateFanOut enforces the power-of-two fan-out contract at the API
// boundary.
func validateFanOut(n int) error {
	if !hashutil.IsPowerOfTwo(n) || n < 2 {
		return fmt.Errorf("hashjoin: Partitions = %d: %w", n, ErrBadFanOut)
	}
	return nil
}

// Options configures a join run.
type Options struct {
	// Partitions is the fan-out (power of two); the paper's sweet spot for
	// large relations is 8192.
	Partitions int
	// Threads is the build+probe (and CPU partitioning) parallelism;
	// ≤ 0 uses all cores.
	Threads int
	// Hash selects murmur hash partitioning; false selects radix bits.
	Hash bool
	// Platform supplies the coherence model for hybrid joins; defaults to
	// platform.XeonFPGA().
	Platform *platform.Platform
	// Format and Layout configure the FPGA partitioner in Hybrid joins.
	Format partition.Format
	Layout partition.Layout
	// PadFraction is the PAD-mode headroom of the FPGA partitioner.
	PadFraction float64
	// Trace attaches a simtrace session to the join: every path — CPU,
	// Hybrid and NonPartitioned — emits the same "join" phase spans
	// (partition_r, partition_s, build, probe), so degradation runs are
	// comparable backend-to-backend. Hybrid joins additionally hand the
	// session to the FPGA partitioner (cycle-level counters, circuit phase
	// spans, windowed samples), and budgeted joins emit their
	// spill/recurse/reverse/broadcast decisions. nil disables tracing.
	Trace *simtrace.Session
	// MemoryBudgetBytes caps the memory of each concurrent build: a
	// partition whose build side exceeds it is spilled, recursively
	// repartitioned with salted hashes, and — when a heavy hitter or the
	// recursion depth cap makes splitting hopeless — joined by a chunked
	// broadcast. Matches and Checksum are byte-identical to the
	// unconstrained join for any budget. ≤ 0 means unlimited.
	MemoryBudgetBytes int64
	// FlowID, when nonzero, threads Chrome trace flow arrows between the
	// join's consecutive phase spans, binding this join's phases into one
	// causal chain in the trace viewer (ids FlowID, FlowID+1, FlowID+2 are
	// consumed). Use distinct ids per join when tracing several into one
	// session.
	FlowID int64
}

func (o Options) withDefaults() Options {
	if o.Platform == nil {
		o.Platform = platform.XeonFPGA()
	}
	return o
}

// Result reports a join run with its phase breakdown.
type Result struct {
	Matches  int64
	Checksum uint64

	// PartitionR and PartitionS are the partitioning times per relation
	// (measured for CPU, simulated for FPGA). For the hybrid join they
	// include any aborted-PAD + CPU-fallback cost.
	PartitionR time.Duration
	PartitionS time.Duration
	// Build and Probe are the measured build+probe times; for hybrid joins
	// they include the coherence snoop penalty.
	Build time.Duration
	Probe time.Duration

	// Total is the end-to-end join time.
	Total time.Duration

	// PartitionerName identifies how the inputs were partitioned.
	PartitionerName string
	// CoherencePenalized reports whether the Table 1 snoop penalty was
	// applied to Build and Probe.
	CoherencePenalized bool
	// FellBack reports a PAD-overflow CPU fallback during partitioning.
	FellBack bool
	// DummyKeyRepartition reports that an input contained tuples whose key
	// equals the FPGA's dummy key — unrepresentable in the FPGA output
	// encoding, they read back as padding — so that side was repartitioned
	// on the CPU to keep the join exact.
	DummyKeyRepartition bool

	// Memory reports the adaptive behaviour of a budgeted join; nil when
	// Options.MemoryBudgetBytes was unset.
	Memory *MemoryStats

	Threads int
}

// MemoryStats summarizes how a budgeted join adapted to its memory budget.
type MemoryStats struct {
	// BudgetBytes is the configured cap; HighWaterBytes is the peak
	// concurrent reservation the sequential accounting replay observed.
	BudgetBytes    int64
	HighWaterBytes int64
	// InMemory counts buckets joined without spilling (all depths).
	InMemory int
	// Reversals counts buckets that built on S because it was smaller.
	Reversals int
	// SpilledPartitions and SpilledBytes describe top-level partitions
	// written to the spill store; SpillReadBytes is the total read back by
	// recursive and broadcast passes.
	SpilledPartitions int
	SpilledBytes      int64
	SpillReadBytes    int64
	// Recursions counts salted repartitioning passes; MaxDepth is the
	// deepest recursion level reached (bounded by the executor).
	Recursions int
	MaxDepth   int
	// Broadcasts counts buckets joined by the chunked broadcast join, in
	// BroadcastChunks budget-sized build chunks.
	Broadcasts      int
	BroadcastChunks int
}

// PartitionTime returns the combined partitioning time.
func (r *Result) PartitionTime() time.Duration { return r.PartitionR + r.PartitionS }

// BuildProbeTime returns the combined build and probe time.
func (r *Result) BuildProbeTime() time.Duration { return r.Build + r.Probe }

// Join partitions R and S with the given partitioner and joins them. This is
// the generic entry point; CPU and Hybrid are convenience wrappers. A panic
// escaping the simulator internals surfaces as an error wrapping
// ErrSimulatorFault.
func Join(r, s *workload.Relation, p partition.Partitioner, opts Options) (_ *Result, err error) {
	defer guardSimulator(&err)
	opts = opts.withDefaults()
	pr, err := p.Partition(r)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: partitioning R: %w", err)
	}
	ps, err := p.Partition(s)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: partitioning S: %w", err)
	}
	pr, rExact, err := exactResult(pr, r, opts)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: repartitioning R: %w", err)
	}
	ps, sExact, err := exactResult(ps, s, opts)
	if err != nil {
		return nil, fmt.Errorf("hashjoin: repartitioning S: %w", err)
	}
	bp, mem, err := buildProbe(pr, ps, opts)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Matches:             bp.Matches,
		Checksum:            bp.Checksum,
		PartitionR:          pr.Elapsed(),
		PartitionS:          ps.Elapsed(),
		Build:               bp.Build,
		Probe:               bp.Probe,
		PartitionerName:     p.Name(),
		FellBack:            pr.FellBack() || ps.FellBack(),
		DummyKeyRepartition: rExact || sExact,
		Threads:             bp.Threads,
	}
	// The build scans FPGA-written R partitions sequentially; the probe's
	// chain lookups random-access them. Apply Table 1's penalties to the
	// measured times when the partitions were written by the FPGA.
	if pr.FPGAWritten() || ps.FPGAWritten() {
		m := opts.Platform.Coherence
		res.Build = time.Duration(float64(bp.Build) * m.BuildPenalty())
		res.Probe = time.Duration(float64(bp.Probe) * m.ProbePenalty())
		res.CoherencePenalized = true
	}
	res.Memory = mem
	res.Total = res.PartitionR + res.PartitionS + res.Build + res.Probe
	emitPhaseSpans(opts.Trace, res, opts.FlowID)
	return res, nil
}

// buildProbe dispatches between the unconstrained and the budgeted
// executors, converting budgeted-run stats into the public MemoryStats and
// emitting the decision trace.
func buildProbe(pr, ps joincore.Partitions, opts Options) (*joincore.Result, *MemoryStats, error) {
	if opts.MemoryBudgetBytes <= 0 {
		bp, err := joincore.BuildProbe(pr, ps, opts.Threads)
		return bp, nil, err
	}
	budget := membudget.New(opts.MemoryBudgetBytes)
	spill := &membudget.SpillStore{}
	bp, stats, err := joincore.BudgetedBuildProbe(pr, ps, joincore.BudgetConfig{
		Budget:  budget,
		Spill:   spill,
		Threads: opts.Threads,
	})
	if err != nil {
		return nil, nil, err
	}
	mem := memoryStats(budget, spill, stats)
	emitMemoryTrace(opts.Trace, stats, mem)
	return bp, mem, nil
}

// memoryStats folds the executor's stats and the accounting replay into the
// public result shape.
func memoryStats(budget *membudget.Budget, spill *membudget.SpillStore, stats *joincore.BudgetStats) *MemoryStats {
	return &MemoryStats{
		BudgetBytes:       budget.Cap(),
		HighWaterBytes:    budget.HighWater(),
		InMemory:          stats.InMemory,
		Reversals:         stats.Reversals,
		SpilledPartitions: stats.SpilledPartitions,
		SpilledBytes:      stats.SpilledBytes,
		SpillReadBytes:    spill.BytesRead(),
		Recursions:        stats.Recursions,
		MaxDepth:          stats.MaxDepth,
		Broadcasts:        stats.Broadcasts,
		BroadcastChunks:   stats.BroadcastChunks,
	}
}

// emitPhaseSpans records the join's phase breakdown as "join" spans on a
// microsecond timeline, for every backend. A nonzero flowID additionally
// threads flow arrows between consecutive phases so the trace viewer draws
// the join as one causal chain. A nil session is a no-op.
func emitPhaseSpans(sess *simtrace.Session, res *Result, flowID int64) {
	if sess == nil {
		return
	}
	ts := int64(0)
	for i, ph := range []struct {
		name string
		dur  time.Duration
	}{
		{"partition_r", res.PartitionR},
		{"partition_s", res.PartitionS},
		{"build", res.Build},
		{"probe", res.Probe},
	} {
		us := ph.dur.Microseconds()
		if flowID != 0 && i > 0 {
			id := flowID + int64(i) - 1
			sess.Tracer.FlowStart("join", "phase", ts, id)
			sess.Tracer.FlowEnd("join", "phase", ts, id)
		}
		sess.Tracer.Span("join", ph.name, ts, us)
		ts += us
	}
}

// emitMemoryTrace records every adaptive decision of a budgeted join as a
// "join.mem" span — one per decision, in the executor's deterministic
// order, on a virtual tuple-count timeline — plus the aggregate counters
// the memory perfbench suite gates. Only budgeted joins emit these, so
// unbudgeted baselines stay byte-identical.
func emitMemoryTrace(sess *simtrace.Session, stats *joincore.BudgetStats, mem *MemoryStats) {
	if sess == nil {
		return
	}
	ts := int64(0)
	for _, d := range stats.Decisions {
		dur := d.BuildTuples + d.ProbeTuples
		sess.Tracer.Span("join.mem", d.Action.String(), ts, dur)
		if d.Reversed {
			sess.Tracer.Instant("join.mem", "reverse", ts)
		}
		ts += dur
	}
	m := sess.Metrics
	m.Gauge("join.mem_budget_bytes").Observe(mem.BudgetBytes)
	m.Gauge("join.mem_high_water_bytes").Observe(mem.HighWaterBytes)
	m.Gauge("join.mem_max_depth").Observe(int64(mem.MaxDepth))
	m.Counter("join.mem_in_memory").Add(int64(mem.InMemory))
	m.Counter("join.mem_reversals").Add(int64(mem.Reversals))
	m.Counter("join.mem_spilled_partitions").Add(int64(mem.SpilledPartitions))
	m.Counter("join.mem_spilled_bytes").Add(mem.SpilledBytes)
	m.Counter("join.mem_spill_read_bytes").Add(mem.SpillReadBytes)
	m.Counter("join.mem_recursions").Add(int64(mem.Recursions))
	m.Counter("join.mem_broadcasts").Add(int64(mem.Broadcasts))
	m.Counter("join.mem_broadcast_chunks").Add(int64(mem.BroadcastChunks))
}

// exactResult verifies that res exposes every input tuple to its consumers.
// An FPGA-written result drops tuples whose key collides with the circuit's
// dummy key (they read back as flush padding), which would silently shrink
// the join. On a mismatch the side is repartitioned with the exact CPU
// partitioner over the join-equivalent <key, payload> view of rel, so the
// build and probe see the full relation.
func exactResult(res *partition.Result, rel *workload.Relation, opts Options) (*partition.Result, bool, error) {
	if res.ValidTuples() == int64(rel.NumTuples) {
		return res, false, nil
	}
	src := rel
	if rel.Layout != workload.RowLayout || rel.Width != 8 {
		// The join consumes only (key, payload) pairs: materialize them as
		// 8-byte rows — <key, VRID> for columns, mirroring the FPGA's VRID
		// output; <key, first-word payload> for wide rows.
		rows, err := workload.NewRelation(workload.RowLayout, 8, rel.NumTuples)
		if err != nil {
			return nil, false, err
		}
		for i := 0; i < rel.NumTuples; i++ {
			pay := uint32(i)
			if rel.Layout == workload.RowLayout {
				pay = rel.Payload(i)
			}
			rows.SetTuple(i, rel.Key(i), pay)
		}
		src = rows
	}
	cpu, err := partition.NewCPU(partition.CPUOptions{
		Partitions: res.NumPartitions(),
		Hash:       opts.Hash,
		Threads:    opts.Threads,
	})
	if err != nil {
		return nil, false, err
	}
	exact, err := cpu.Partition(src)
	if err != nil {
		return nil, false, err
	}
	return exact, true, nil
}

// CPU runs the pure-CPU radix hash join: parallel software partitioning
// (Code 2 with software-managed buffers) followed by build+probe.
func CPU(r, s *workload.Relation, opts Options) (_ *Result, err error) {
	defer guardSimulator(&err)
	opts = opts.withDefaults()
	if err := validateFanOut(opts.Partitions); err != nil {
		return nil, err
	}
	p, err := partition.NewCPU(partition.CPUOptions{
		Partitions: opts.Partitions,
		Hash:       opts.Hash,
		Threads:    opts.Threads,
	})
	if err != nil {
		return nil, err
	}
	return Join(r, s, p, opts)
}

// Hybrid runs the paper's hybrid join: partitioning on the (simulated) FPGA,
// build+probe on the CPU with the coherence penalty applied.
func Hybrid(r, s *workload.Relation, opts Options) (_ *Result, err error) {
	defer guardSimulator(&err)
	opts = opts.withDefaults()
	if err := validateFanOut(opts.Partitions); err != nil {
		return nil, err
	}
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions:      opts.Partitions,
		Hash:            opts.Hash,
		Format:          opts.Format,
		Layout:          opts.Layout,
		PadFraction:     opts.PadFraction,
		Platform:        opts.Platform,
		FallbackThreads: opts.Threads,
		Trace:           opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return Join(r, s, p, opts)
}

// NonPartitioned runs the global-hash-table baseline join without any
// partitioning phase; Options.Partitions is ignored. Under a memory budget
// the baseline's only graceful degradation is chunking the build side, with
// a plan-time role reversal so the smaller side builds.
func NonPartitioned(r, s *workload.Relation, opts Options) (_ *Result, err error) {
	defer guardSimulator(&err)
	opts = opts.withDefaults()
	var bp *joincore.Result
	var mem *MemoryStats
	if opts.MemoryBudgetBytes > 0 {
		budget := membudget.New(opts.MemoryBudgetBytes)
		spill := &membudget.SpillStore{}
		var stats *joincore.BudgetStats
		bp, stats, err = joincore.NonPartitionedBudgeted(r, s, opts.Threads, budget, spill)
		if err != nil {
			return nil, err
		}
		mem = memoryStats(budget, spill, stats)
		emitMemoryTrace(opts.Trace, stats, mem)
	} else {
		bp, err = joincore.NonPartitioned(r, s, opts.Threads)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		Matches:         bp.Matches,
		Checksum:        bp.Checksum,
		Build:           bp.Build,
		Probe:           bp.Probe,
		Total:           bp.Elapsed,
		PartitionerName: "none",
		Memory:          mem,
		Threads:         bp.Threads,
	}
	emitPhaseSpans(opts.Trace, res, opts.FlowID)
	return res, nil
}
