package hashjoin

import (
	"testing"

	"fpgapart/partition"
	"fpgapart/workload"
)

func testInput(t *testing.T, nr, ns int, d workload.Distribution) *workload.JoinInput {
	t.Helper()
	spec := workload.WorkloadSpec{ID: "t", TuplesR: nr, TuplesS: ns, Distribution: d}
	in, err := spec.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCPUJoinLinearCountsExact(t *testing.T) {
	in := testInput(t, 1<<13, 1<<14, workload.Linear)
	res, err := CPU(in.R, in.S, Options{Partitions: 64, Hash: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Linear workloads are FK joins: every S tuple matches exactly once.
	if res.Matches != int64(in.S.NumTuples) {
		t.Fatalf("matches = %d, want %d", res.Matches, in.S.NumTuples)
	}
	if res.CoherencePenalized {
		t.Error("CPU join should not be penalized")
	}
	if res.Total <= 0 || res.PartitionTime() <= 0 || res.BuildProbeTime() <= 0 {
		t.Errorf("breakdown: %+v", res)
	}
}

func TestHybridMatchesCPUJoin(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13, workload.Random)
	cpu, err := CPU(in.R, in.S, Options{Partitions: 128, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Hybrid(in.R, in.S, Options{Partitions: 128, Hash: true, Threads: 2, Format: partition.HistMode})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Matches != hybrid.Matches || cpu.Checksum != hybrid.Checksum {
		t.Fatalf("CPU %d/%d vs hybrid %d/%d", cpu.Matches, cpu.Checksum, hybrid.Matches, hybrid.Checksum)
	}
	if !hybrid.CoherencePenalized {
		t.Error("hybrid join must carry the coherence penalty")
	}
	if hybrid.PartitionerName != "fpga-HIST/RID" {
		t.Errorf("partitioner = %q", hybrid.PartitionerName)
	}
}

func TestNonPartitionedMatches(t *testing.T) {
	in := testInput(t, 1<<12, 1<<13, workload.Linear)
	np, err := NonPartitioned(in.R, in.S, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := CPU(in.R, in.S, Options{Partitions: 64, Hash: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if np.Matches != cpu.Matches || np.Checksum != cpu.Checksum {
		t.Fatalf("non-partitioned %d/%d vs partitioned %d/%d", np.Matches, np.Checksum, cpu.Matches, cpu.Checksum)
	}
}

func TestHybridPadOverflowFallsBack(t *testing.T) {
	// Skewed S overflows PAD mode; the join must still complete via the CPU
	// fallback and flag it.
	spec := workload.WorkloadSpec{ID: "t", TuplesR: 1 << 13, TuplesS: 1 << 13, Distribution: workload.Linear}
	in, err := spec.GenerateSkewed(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hybrid(in.R, in.S, Options{Partitions: 256, Hash: true, Threads: 2,
		Format: partition.PadMode, PadFraction: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Error("expected PAD overflow fallback on Zipf(1.0) S")
	}
	if res.Matches != int64(in.S.NumTuples) {
		t.Errorf("matches = %d, want %d", res.Matches, in.S.NumTuples)
	}
}

func TestHybridHistHandlesSkew(t *testing.T) {
	spec := workload.WorkloadSpec{ID: "t", TuplesR: 1 << 12, TuplesS: 1 << 12, Distribution: workload.Linear}
	in, err := spec.GenerateSkewed(6, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hybrid(in.R, in.S, Options{Partitions: 128, Hash: true, Threads: 2, Format: partition.HistMode})
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Error("HIST mode should not fall back")
	}
	if res.Matches != int64(in.S.NumTuples) {
		t.Errorf("matches = %d, want %d", res.Matches, in.S.NumTuples)
	}
}

func TestHybridColumnStore(t *testing.T) {
	in := testInput(t, 1<<12, 1<<12, workload.Random)
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions: 64, Hash: true, Format: partition.PadMode, Layout: partition.ColumnStore, PadFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rCols, sCols := in.R.ToColumns(), in.S.ToColumns()
	res, err := Join(rCols, sCols, p, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := CPU(in.R, in.S, Options{Partitions: 64, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// VRID payloads are row indices, not the original payloads; since our
	// generators set payload = index, the checksums coincide as well.
	if res.Matches != cpu.Matches {
		t.Fatalf("VRID join %d matches, CPU join %d", res.Matches, cpu.Matches)
	}
}

func TestJoinRejectsBadOptions(t *testing.T) {
	in := testInput(t, 100, 100, workload.Linear)
	if _, err := CPU(in.R, in.S, Options{Partitions: 100}); err == nil {
		t.Error("non-power-of-two fan-out accepted")
	}
	if _, err := Hybrid(in.R, in.S, Options{Partitions: 0}); err == nil {
		t.Error("zero fan-out accepted")
	}
}

func TestRadixVsHashSameMatches(t *testing.T) {
	in := testInput(t, 1<<12, 1<<12, workload.Grid)
	radix, err := CPU(in.R, in.S, Options{Partitions: 64, Hash: false, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := CPU(in.R, in.S, Options{Partitions: 64, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if radix.Matches != hash.Matches || radix.Checksum != hash.Checksum {
		t.Fatalf("radix %d/%d vs hash %d/%d", radix.Matches, radix.Checksum, hash.Matches, hash.Checksum)
	}
}

func TestTotalIsSumOfPhases(t *testing.T) {
	in := testInput(t, 1<<12, 1<<12, workload.Linear)
	res, err := Hybrid(in.R, in.S, Options{Partitions: 64, Hash: true, Threads: 2, Format: partition.HistMode})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != res.PartitionR+res.PartitionS+res.Build+res.Probe {
		t.Errorf("Total %v ≠ sum of phases", res.Total)
	}
}
