package hashjoin

import (
	"testing"

	"fpgapart/workload"
)

func TestJoinEmptyRelations(t *testing.T) {
	empty, _ := workload.NewRelation(workload.RowLayout, 8, 0)
	one, _ := workload.FromKeys([]uint32{7}, 8)
	cases := []struct{ r, s *workload.Relation }{
		{empty, empty},
		{empty, one},
		{one, empty},
	}
	for i, c := range cases {
		cpu, err := CPU(c.r, c.s, Options{Partitions: 16, Hash: true, Threads: 1})
		if err != nil {
			t.Fatalf("case %d cpu: %v", i, err)
		}
		if cpu.Matches != 0 {
			t.Errorf("case %d: %d matches on empty side", i, cpu.Matches)
		}
		np, err := NonPartitioned(c.r, c.s, Options{Threads: 1})
		if err != nil {
			t.Fatalf("case %d nopart: %v", i, err)
		}
		if np.Matches != 0 {
			t.Errorf("case %d nopart: %d matches", i, np.Matches)
		}
	}
}

func TestJoinSelfJoin(t *testing.T) {
	rel, err := workload.NewGenerator(31).Relation(workload.Linear, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPU(rel, rel, Options{Partitions: 64, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Unique keys: self-join matches every tuple exactly once.
	if res.Matches != 4096 {
		t.Fatalf("self-join matches = %d", res.Matches)
	}
}

func TestJoinAllDuplicates(t *testing.T) {
	keys := make([]uint32, 64)
	for i := range keys {
		keys[i] = 5
	}
	rel, _ := workload.FromKeys(keys, 8)
	res, err := CPU(rel, rel, Options{Partitions: 8, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 64*64 {
		t.Fatalf("cartesian duplicate join: %d matches, want 4096", res.Matches)
	}
}
