package hashjoin

import (
	"testing"

	"fpgapart/internal/core"
	"fpgapart/workload"
)

func TestJoinEmptyRelations(t *testing.T) {
	empty, _ := workload.NewRelation(workload.RowLayout, 8, 0)
	one, _ := workload.FromKeys([]uint32{7}, 8)
	cases := []struct{ r, s *workload.Relation }{
		{empty, empty},
		{empty, one},
		{one, empty},
	}
	for i, c := range cases {
		cpu, err := CPU(c.r, c.s, Options{Partitions: 16, Hash: true, Threads: 1})
		if err != nil {
			t.Fatalf("case %d cpu: %v", i, err)
		}
		if cpu.Matches != 0 {
			t.Errorf("case %d: %d matches on empty side", i, cpu.Matches)
		}
		np, err := NonPartitioned(c.r, c.s, Options{Threads: 1})
		if err != nil {
			t.Fatalf("case %d nopart: %v", i, err)
		}
		if np.Matches != 0 {
			t.Errorf("case %d nopart: %d matches", i, np.Matches)
		}
	}
}

// TestHybridEmptyRelations covers the previously untested empty-relation
// path through the FPGA partitioner: an empty side must partition cleanly
// and join to zero matches, on every side combination.
func TestHybridEmptyRelations(t *testing.T) {
	empty, _ := workload.NewRelation(workload.RowLayout, 8, 0)
	one, _ := workload.FromKeys([]uint32{7}, 8)
	cases := []struct{ r, s *workload.Relation }{
		{empty, empty},
		{empty, one},
		{one, empty},
	}
	for i, c := range cases {
		res, err := Hybrid(c.r, c.s, Options{Partitions: 16, Hash: true, Threads: 1})
		if err != nil {
			t.Fatalf("case %d hybrid: %v", i, err)
		}
		if res.Matches != 0 {
			t.Errorf("case %d hybrid: %d matches on empty side", i, res.Matches)
		}
	}
}

// TestHybridDummyKeyExact is the regression test for the dummy-key drop: a
// tuple whose key equals the FPGA's dummy key reads back as flush padding,
// so the FPGA-partitioned join silently lost its matches. The hybrid join
// must now detect the collision, repartition that side on the CPU, and
// agree with the pure-CPU join on both count and checksum.
func TestHybridDummyKeyExact(t *testing.T) {
	rKeys := []uint32{core.DefaultDummyKey, 1, 2, core.DefaultDummyKey, 3}
	sKeys := []uint32{core.DefaultDummyKey, core.DefaultDummyKey, 2, 9}
	r, _ := workload.FromKeys(rKeys, 8)
	s, _ := workload.FromKeys(sKeys, 8)
	opts := Options{Partitions: 8, Hash: true, Threads: 1}

	want, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	// dummy×dummy 2×2 + key 2 once = 5.
	if want.Matches != 5 {
		t.Fatalf("cpu reference: %d matches, want 5", want.Matches)
	}
	got, err := Hybrid(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != want.Matches {
		t.Fatalf("hybrid join: %d matches, cpu finds %d", got.Matches, want.Matches)
	}
	if got.Checksum != want.Checksum {
		t.Fatalf("hybrid checksum %#x, cpu %#x", got.Checksum, want.Checksum)
	}
	if !got.DummyKeyRepartition {
		t.Error("DummyKeyRepartition not reported")
	}

	// A collision-free input must not trigger the repartition.
	cleanR, _ := workload.FromKeys([]uint32{1, 2, 3}, 8)
	res, err := Hybrid(cleanR, cleanR, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DummyKeyRepartition {
		t.Error("DummyKeyRepartition reported without a collision")
	}
}

func TestJoinSelfJoin(t *testing.T) {
	rel, err := workload.NewGenerator(31).Relation(workload.Linear, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CPU(rel, rel, Options{Partitions: 64, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Unique keys: self-join matches every tuple exactly once.
	if res.Matches != 4096 {
		t.Fatalf("self-join matches = %d", res.Matches)
	}
}

func TestJoinAllDuplicates(t *testing.T) {
	keys := make([]uint32, 64)
	for i := range keys {
		keys[i] = 5
	}
	rel, _ := workload.FromKeys(keys, 8)
	res, err := CPU(rel, rel, Options{Partitions: 8, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 64*64 {
		t.Fatalf("cartesian duplicate join: %d matches, want 4096", res.Matches)
	}
}
