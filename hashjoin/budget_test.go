package hashjoin

import (
	"errors"
	"testing"

	"fpgapart/internal/joincore"
	"fpgapart/internal/simtrace"
	"fpgapart/workload"
)

// budgetRelations builds a skewed join input: R uniform, S Zipf(1.25) with
// one heavy-hitter key additionally covering ≥ 25% of the probe side.
func budgetRelations(t *testing.T, seed int64) (r, s *workload.Relation) {
	t.Helper()
	g := workload.NewGenerator(seed)
	r, err := g.Relation(workload.Random, 8, 4000)
	if err != nil {
		t.Fatal(err)
	}
	s, err = g.ZipfRelation(1.25, 1<<12, 8, 6000)
	if err != nil {
		t.Fatal(err)
	}
	hot := r.Key(0)
	for i := 0; i < s.NumTuples/4; i++ {
		s.SetTuple(i*2, hot, uint32(i))
	}
	return r, s
}

func TestBudgetedCPUJoinReproducesUnconstrained(t *testing.T) {
	r, s := budgetRelations(t, 42)
	opts := Options{Partitions: 8, Threads: 2, Hash: true}
	want, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Memory != nil {
		t.Fatalf("unbudgeted join reported memory stats: %+v", want.Memory)
	}
	buildBytes := int64(r.NumTuples) * joincore.BuildTupleBytes
	for _, pct := range []int64{100, 50, 25, 10} {
		opts.MemoryBudgetBytes = buildBytes * pct / 100
		got, err := CPU(r, s, opts)
		if err != nil {
			t.Fatalf("budget %d%%: %v", pct, err)
		}
		if got.Matches != want.Matches || got.Checksum != want.Checksum {
			t.Fatalf("budget %d%%: got %d/%#x, want %d/%#x", pct, got.Matches, got.Checksum, want.Matches, want.Checksum)
		}
		if got.Memory == nil || got.Memory.BudgetBytes != opts.MemoryBudgetBytes {
			t.Fatalf("budget %d%%: missing memory stats: %+v", pct, got.Memory)
		}
		if got.Memory.MaxDepth > joincore.DefaultMaxDepth+1 {
			t.Fatalf("budget %d%%: recursion depth %d unbounded", pct, got.Memory.MaxDepth)
		}
	}
	// At 10% of the build side the heavy-hitter partitions cannot fit.
	opts.MemoryBudgetBytes = buildBytes / 10
	got, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Memory.SpilledPartitions == 0 || got.Memory.SpilledBytes == 0 {
		t.Fatalf("10%% budget should spill, got %+v", got.Memory)
	}
}

func TestBudgetedHybridAndNonPartitionedReproduce(t *testing.T) {
	r, s := budgetRelations(t, 7)
	opts := Options{Partitions: 8, Threads: 2, Hash: true}
	want, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.MemoryBudgetBytes = int64(r.NumTuples) * joincore.BuildTupleBytes / 8

	hy, err := Hybrid(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Matches != want.Matches || hy.Checksum != want.Checksum {
		t.Fatalf("hybrid under budget: got %d/%#x, want %d/%#x", hy.Matches, hy.Checksum, want.Matches, want.Checksum)
	}

	np, err := NonPartitioned(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if np.Matches != want.Matches || np.Checksum != want.Checksum {
		t.Fatalf("nonpartitioned under budget: got %d/%#x, want %d/%#x", np.Matches, np.Checksum, want.Matches, want.Checksum)
	}
	if np.Memory == nil || np.Memory.BroadcastChunks < 2 {
		t.Fatalf("nonpartitioned at 1/8 budget should chunk its build, got %+v", np.Memory)
	}
}

func TestBudgetedJoinIsDeterministic(t *testing.T) {
	r, s := budgetRelations(t, 99)
	opts := Options{
		Partitions: 8, Threads: 1, Hash: true,
		MemoryBudgetBytes: int64(r.NumTuples) * joincore.BuildTupleBytes / 6,
	}
	first, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		opts.Threads = threads
		got, err := CPU(r, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Matches != first.Matches || got.Checksum != first.Checksum {
			t.Fatalf("threads=%d changed the result", threads)
		}
		if *got.Memory != *first.Memory {
			t.Fatalf("threads=%d changed memory stats:\n%+v\nvs\n%+v", threads, got.Memory, first.Memory)
		}
	}
}

func TestFanOutValidation(t *testing.T) {
	g := workload.NewGenerator(1)
	r, err := g.Relation(workload.Random, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{0, 1, 3, 100} {
		opts := Options{Partitions: parts, Threads: 1}
		if _, err := CPU(r, r, opts); !errors.Is(err, ErrBadFanOut) {
			t.Fatalf("CPU with Partitions=%d: err = %v, want ErrBadFanOut", parts, err)
		}
		if _, err := Hybrid(r, r, opts); !errors.Is(err, ErrBadFanOut) {
			t.Fatalf("Hybrid with Partitions=%d: err = %v, want ErrBadFanOut", parts, err)
		}
	}
	// NonPartitioned has no fan-out and must keep accepting a zero value.
	if _, err := NonPartitioned(r, r, Options{Threads: 1}); err != nil {
		t.Fatalf("NonPartitioned: %v", err)
	}
}

// spanNames collects the names of ring events for one component.
func spanNames(sess *simtrace.Session, comp string) map[string]bool {
	names := map[string]bool{}
	for _, ev := range sess.Tracer.Events() {
		if ev.Comp == comp {
			names[ev.Name] = true
		}
	}
	return names
}

func TestPhaseSpansOnEveryBackend(t *testing.T) {
	r, s := budgetRelations(t, 5)
	run := func(name string, join func(opts Options) (*Result, error)) {
		sess := simtrace.NewSession()
		opts := Options{Partitions: 8, Threads: 1, Hash: true, Trace: sess}
		if _, err := join(opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := spanNames(sess, "join")
		for _, want := range []string{"build", "probe"} {
			if !got[want] {
				t.Fatalf("%s: missing join span %q (got %v)", name, want, got)
			}
		}
	}
	run("cpu", func(opts Options) (*Result, error) { return CPU(r, s, opts) })
	run("hybrid", func(opts Options) (*Result, error) { return Hybrid(r, s, opts) })
	run("nonpartitioned", func(opts Options) (*Result, error) { return NonPartitioned(r, s, opts) })
}

// TestPhaseFlowArrows pins Options.FlowID: a nonzero id threads one flow
// start/end pair per phase transition (3 for the 4 phases), and a zero id
// leaves the trace flow-free, so existing traces stay byte-identical.
func TestPhaseFlowArrows(t *testing.T) {
	r, s := budgetRelations(t, 5)
	countFlows := func(flowID int64) (starts, ends int) {
		sess := simtrace.NewSession()
		opts := Options{Partitions: 8, Threads: 1, Hash: true, Trace: sess, FlowID: flowID}
		if _, err := CPU(r, s, opts); err != nil {
			t.Fatal(err)
		}
		for _, ev := range sess.Tracer.Events() {
			switch ev.Kind {
			case simtrace.FlowStartEvent:
				starts++
				if ev.Value < flowID || ev.Value > flowID+2 {
					t.Fatalf("flow id %d outside [%d, %d]", ev.Value, flowID, flowID+2)
				}
			case simtrace.FlowEndEvent:
				ends++
			}
		}
		return starts, ends
	}
	if starts, ends := countFlows(100); starts != 3 || ends != 3 {
		t.Fatalf("FlowID=100: %d flow starts, %d ends, want 3 and 3", starts, ends)
	}
	if starts, ends := countFlows(0); starts != 0 || ends != 0 {
		t.Fatalf("FlowID=0 emitted %d/%d flow events; zero must disable flows", starts, ends)
	}
}

func TestMemoryDecisionsTraced(t *testing.T) {
	r, s := budgetRelations(t, 17)
	sess := simtrace.NewSession()
	opts := Options{
		Partitions: 8, Threads: 1, Hash: true, Trace: sess,
		MemoryBudgetBytes: int64(r.NumTuples) * joincore.BuildTupleBytes / 10,
	}
	res, err := CPU(r, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := spanNames(sess, "join.mem")
	if !got["spill"] {
		t.Fatalf("spill decisions not traced: %v (memory %+v)", got, res.Memory)
	}
	if res.Memory.Recursions > 0 && !got["recurse"] {
		t.Fatalf("recursions happened but were not traced: %v", got)
	}
	if res.Memory.Reversals > 0 && !got["reverse"] {
		t.Fatalf("reversals happened but were not traced: %v", got)
	}
	snap := sess.Metrics.Snapshot()
	for _, name := range []string{"join.mem_spilled_bytes", "join.mem_budget_bytes", "join.mem_max_depth"} {
		found := false
		for _, m := range snap {
			if m.Name == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %s missing from %v", name, snap)
		}
	}
}
