// Package engine is a minimal relational operator pipeline demonstrating
// how the partitioner integrates into a DBMS (Section 6 of the paper): the
// FPGA is invoked as a sub-operator inside complex relational operators
// (here: hash join and group-by aggregation), and an offload decision uses
// the analytical cost model to pick the CPU or the FPGA partitioner per
// input.
//
// Operators are batch-at-a-time Volcano-style iterators over 8-byte
// <key, payload> tuples packed into uint64s.
package engine

import (
	"errors"
	"fmt"

	"fpgapart/workload"
)

// Batch is one vector of packed 8-byte tuples: the key in the low 32 bits,
// the payload in the high 32 — the only tuple layout engine operators
// exchange. Wider relations must be projected down to this packing before
// entering a pipeline (NewScan enforces it at the leaves); Key and Payload
// are meaningless on any other encoding.
type Batch []uint64

// Key returns the key of tuple i (the low 32 bits of the packed tuple).
func (b Batch) Key(i int) uint32 { return uint32(b[i]) }

// Payload returns the payload of tuple i (the high 32 bits).
func (b Batch) Payload(i int) uint32 { return uint32(b[i] >> 32) }

// Len returns the number of tuples in the batch.
func (b Batch) Len() int { return len(b) }

// Tuple returns the packed tuple i as it would be stored in a row-layout
// 8-byte relation.
func (b Batch) Tuple(i int) uint64 { return b[i] }

// DefaultBatchSize is the vector size used when none is configured: 1024
// tuples = 8 KB, comfortably L1-resident.
const DefaultBatchSize = 1024

// Operator is a batch iterator. The contract is Open, then Next until it
// returns a nil batch, then Close. Batches are owned by the operator and
// valid only until the next call.
type Operator interface {
	Open() error
	Next() (Batch, error)
	Close() error
}

// errNotOpen is returned by Next on an unopened operator.
var errNotOpen = errors.New("engine: operator not open")

// Collect drains op and returns all tuples — the root of a query.
func Collect(op Operator) ([]uint64, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []uint64
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// Count drains op and returns only the tuple count.
func Count(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	var n int64
	for {
		b, err := op.Next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			return n, nil
		}
		n += int64(len(b))
	}
}

// Scan streams a row-layout relation of 8-byte tuples.
type Scan struct {
	rel       *workload.Relation
	batchSize int
	pos       int
	open      bool
}

// NewScan returns a scan over rel. batchSize ≤ 0 uses DefaultBatchSize.
func NewScan(rel *workload.Relation, batchSize int) (*Scan, error) {
	if rel.Layout != workload.RowLayout || rel.Width != 8 {
		return nil, fmt.Errorf("engine: scan needs row-layout 8-byte tuples, got %v %dB", rel.Layout, rel.Width)
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Scan{rel: rel, batchSize: batchSize}, nil
}

func (s *Scan) Open() error {
	s.pos = 0
	s.open = true
	return nil
}

func (s *Scan) Next() (Batch, error) {
	if !s.open {
		return nil, errNotOpen
	}
	if s.pos >= s.rel.NumTuples {
		return nil, nil
	}
	end := s.pos + s.batchSize
	if end > s.rel.NumTuples {
		end = s.rel.NumTuples
	}
	b := Batch(s.rel.Data[s.pos:end])
	s.pos = end
	return b, nil
}

func (s *Scan) Close() error {
	s.open = false
	return nil
}

// Filter keeps tuples satisfying a predicate.
type Filter struct {
	child Operator
	pred  func(key, payload uint32) bool
	buf   []uint64
}

// NewFilter wraps child with the predicate.
func NewFilter(child Operator, pred func(key, payload uint32) bool) *Filter {
	return &Filter{child: child, pred: pred}
}

func (f *Filter) Open() error  { return f.child.Open() }
func (f *Filter) Close() error { return f.child.Close() }

func (f *Filter) Next() (Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		f.buf = f.buf[:0]
		for _, t := range b {
			if f.pred(uint32(t), uint32(t>>32)) {
				f.buf = append(f.buf, t)
			}
		}
		if len(f.buf) > 0 {
			return f.buf, nil
		}
	}
}

// Project rewrites tuples with a mapping function.
type Project struct {
	child Operator
	fn    func(key, payload uint32) (uint32, uint32)
	buf   []uint64
}

// NewProject wraps child with the mapping.
func NewProject(child Operator, fn func(key, payload uint32) (uint32, uint32)) *Project {
	return &Project{child: child, fn: fn}
}

func (p *Project) Open() error  { return p.child.Open() }
func (p *Project) Close() error { return p.child.Close() }

func (p *Project) Next() (Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	p.buf = p.buf[:0]
	for _, t := range b {
		k, v := p.fn(uint32(t), uint32(t>>32))
		p.buf = append(p.buf, uint64(v)<<32|uint64(k))
	}
	return p.buf, nil
}

// Limit caps the number of tuples produced.
type Limit struct {
	child Operator
	n     int64
	left  int64
}

// NewLimit wraps child with a tuple cap.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{child: child, n: n}
}

func (l *Limit) Open() error {
	l.left = l.n
	return l.child.Open()
}
func (l *Limit) Close() error { return l.child.Close() }

func (l *Limit) Next() (Batch, error) {
	if l.left <= 0 {
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if int64(len(b)) > l.left {
		b = b[:l.left]
	}
	l.left -= int64(len(b))
	return b, nil
}

// drain pulls every tuple of child into a relation (used by the blocking
// operators, which hand whole relations to the partitioner sub-operator).
func drain(child Operator) (*workload.Relation, error) {
	tuples, err := Collect(child)
	if err != nil {
		return nil, err
	}
	rel, err := workload.NewRelation(workload.RowLayout, 8, len(tuples))
	if err != nil {
		return nil, err
	}
	copy(rel.Data, tuples)
	return rel, nil
}
