package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fpgapart/hashjoin"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/membudget"
	"fpgapart/partition"
	"fpgapart/workload"
)

// HashJoin is a blocking partitioned equi-join operator: it drains both
// children, partitions them with the configured (or planner-chosen)
// partitioner, joins partition pairs in parallel, and streams out one tuple
// per match: <key, Combine(buildPayload, probePayload)>.
type HashJoin struct {
	build, probe Operator
	planner      *Planner
	partitions   int
	threads      int
	// Combine merges the payloads of a match (default: sum).
	Combine func(buildPay, probePay uint32) uint32
	// MemoryBudgetBytes caps this join's build memory; 0 falls back to the
	// planner's MemoryBudgetBytes, ≤ 0 overall means unlimited. Set before
	// Open.
	MemoryBudgetBytes int64

	out    []uint64
	pos    int
	opened bool
	// ChosenPartitioner records the planner's pick after Open, for
	// inspection ("was this offloaded?").
	ChosenPartitioner string
	// Memory reports the adaptive behaviour of a budgeted join after Open;
	// nil when no budget applied.
	Memory *hashjoin.MemoryStats
}

// NewHashJoin joins build ⋈ probe on the tuple key. planner may be nil for
// CPU-only execution.
func NewHashJoin(build, probe Operator, planner *Planner, partitions, threads int) *HashJoin {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &HashJoin{
		build:      build,
		probe:      probe,
		planner:    planner,
		partitions: partitions,
		threads:    threads,
		Combine:    func(a, b uint32) uint32 { return a + b },
	}
}

func (j *HashJoin) Open() error {
	r, err := drain(j.build)
	if err != nil {
		return fmt.Errorf("engine: join build side: %w", err)
	}
	s, err := drain(j.probe)
	if err != nil {
		return fmt.Errorf("engine: join probe side: %w", err)
	}
	planner := j.planner
	if planner == nil {
		planner = NewPlanner(PlannerConfig{ForceCPU: true, Threads: j.threads, Partitions: j.partitions})
	}
	p, err := planner.Partitioner(r.NumTuples)
	if err != nil {
		return err
	}
	pr, prName, err := exactPartition(p, planner, r)
	if err != nil {
		return err
	}
	ps, psName, err := exactPartition(p, planner, s)
	if err != nil {
		return err
	}
	j.ChosenPartitioner = prName
	if psName != prName {
		j.ChosenPartitioner = prName + " / " + psName
	}
	budget := j.MemoryBudgetBytes
	if budget == 0 {
		budget = planner.cfg.MemoryBudgetBytes
	}
	if budget > 0 {
		j.out, j.Memory, err = joinMaterializeBudgeted(pr, ps, j.threads, budget, j.Combine)
	} else {
		j.Memory = nil
		j.out, err = joinMaterialize(pr, ps, j.threads, j.Combine)
	}
	if err != nil {
		return err
	}
	j.pos = 0
	j.opened = true
	return nil
}

func (j *HashJoin) Next() (Batch, error) {
	if !j.opened {
		return nil, errNotOpen
	}
	if j.pos >= len(j.out) {
		return nil, nil
	}
	end := j.pos + DefaultBatchSize
	if end > len(j.out) {
		end = len(j.out)
	}
	b := Batch(j.out[j.pos:end])
	j.pos = end
	return b, nil
}

func (j *HashJoin) Close() error {
	j.opened = false
	j.out = nil
	if err := j.build.Close(); err != nil {
		return err
	}
	return j.probe.Close()
}

// exactPartition partitions rel with p and verifies the result is lossless
// from a consumer's point of view. The FPGA output encoding cannot represent
// a tuple whose key equals the circuit's dummy key: it is written but reads
// back as flush padding, so Each silently skips it — for a join that means
// silently missing matches, for an aggregation a missing group. When the
// observable tuple count disagrees with the input size, the relation is
// repartitioned with the CPU partitioner, whose partition boundaries are
// exact for every key value.
func exactPartition(p partition.Partitioner, planner *Planner, rel *workload.Relation) (*partition.Result, string, error) {
	res, err := p.Partition(rel)
	if err != nil {
		return nil, "", err
	}
	if res.ValidTuples() == int64(rel.NumTuples) {
		return res, p.Name(), nil
	}
	cpu, err := partition.NewCPU(partition.CPUOptions{
		Partitions: res.NumPartitions(),
		Hash:       planner.cfg.Hash,
		Threads:    planner.cfg.Threads,
	})
	if err != nil {
		return nil, "", err
	}
	exact, err := cpu.Partition(rel)
	if err != nil {
		return nil, "", err
	}
	return exact, cpu.Name() + " (dummy-key exact fallback)", nil
}

// joinMaterialize is a bucket-chaining build+probe that emits the joined
// tuples (unlike joincore, which only counts — an engine operator must
// produce output).
func joinMaterialize(r, s *partition.Result, threads int, combine func(a, b uint32) uint32) ([]uint64, error) {
	if r.NumPartitions() != s.NumPartitions() {
		return nil, fmt.Errorf("engine: fan-out mismatch %d vs %d", r.NumPartitions(), s.NumPartitions())
	}
	n := r.NumPartitions()
	perPart := make([][]uint64, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var keys, pays []uint32
			for {
				p := int(atomic.AddInt64(&next, 1)) - 1
				if p >= n {
					return
				}
				keys = keys[:0]
				pays = pays[:0]
				r.Each(p, func(k, pay uint32) {
					keys = append(keys, k)
					pays = append(pays, pay)
				})
				if len(keys) == 0 {
					continue
				}
				buckets := 16
				for buckets < len(keys) {
					buckets <<= 1
				}
				mask := uint32(buckets - 1)
				head := make([]int32, buckets)
				chain := make([]int32, len(keys))
				for i, k := range keys {
					b := (hashutil.Murmur32Finalizer(k) >> 13) & mask
					chain[i] = head[b]
					head[b] = int32(i) + 1
				}
				var out []uint64
				s.Each(p, func(k, sPay uint32) {
					for slot := head[(hashutil.Murmur32Finalizer(k)>>13)&mask]; slot != 0; slot = chain[slot-1] {
						if keys[slot-1] == k {
							out = append(out, uint64(combine(pays[slot-1], sPay))<<32|uint64(k))
						}
					}
				})
				perPart[p] = out
			}
		}()
	}
	wg.Wait()
	var total int
	for _, o := range perPart {
		total += len(o)
	}
	out := make([]uint64, 0, total)
	for _, o := range perPart {
		out = append(out, o...)
	}
	return out, nil
}

// joinMaterializeBudgeted materializes the join under a memory budget by
// running the budgeted executor with an emit callback. The emitted tuple
// order within a partition follows the adaptive plan (spilled buckets emit
// in recursion order), so budgeted output is order-stable for a given
// budget but not byte-ordered like the unbudgeted path — the match multiset
// is identical.
func joinMaterializeBudgeted(r, s *partition.Result, threads int, budgetBytes int64, combine func(a, b uint32) uint32) ([]uint64, *hashjoin.MemoryStats, error) {
	if r.NumPartitions() != s.NumPartitions() {
		return nil, nil, fmt.Errorf("engine: fan-out mismatch %d vs %d", r.NumPartitions(), s.NumPartitions())
	}
	perPart := make([][]uint64, r.NumPartitions())
	budget := membudget.New(budgetBytes)
	spill := &membudget.SpillStore{}
	_, stats, err := joincore.BudgetedBuildProbe(r, s, joincore.BudgetConfig{
		Budget:  budget,
		Spill:   spill,
		Threads: threads,
		// Each partition is joined by exactly one worker, so the appends
		// to perPart[p] are race-free.
		Emit: func(p int, key, rPay, sPay uint32) {
			perPart[p] = append(perPart[p], uint64(combine(rPay, sPay))<<32|uint64(key))
		},
	})
	if err != nil {
		return nil, nil, err
	}
	var total int
	for _, o := range perPart {
		total += len(o)
	}
	out := make([]uint64, 0, total)
	for _, o := range perPart {
		out = append(out, o...)
	}
	mem := &hashjoin.MemoryStats{
		BudgetBytes:       budget.Cap(),
		HighWaterBytes:    budget.HighWater(),
		InMemory:          stats.InMemory,
		Reversals:         stats.Reversals,
		SpilledPartitions: stats.SpilledPartitions,
		SpilledBytes:      stats.SpilledBytes,
		SpillReadBytes:    spill.BytesRead(),
		Recursions:        stats.Recursions,
		MaxDepth:          stats.MaxDepth,
		Broadcasts:        stats.Broadcasts,
		BroadcastChunks:   stats.BroadcastChunks,
	}
	return out, mem, nil
}

// GroupBy is a blocking aggregation operator: it drains its child,
// partitions by group key, aggregates per partition, and emits one tuple
// per group: <key, aggregate>, keys ascending.
type GroupBy struct {
	child      Operator
	planner    *Planner
	partitions int
	threads    int
	agg        AggKind

	out    []uint64
	pos    int
	opened bool
	// ChosenPartitioner records the planner's pick after Open.
	ChosenPartitioner string
}

// AggKind selects the aggregate GroupBy emits.
type AggKind int

const (
	AggCount AggKind = iota
	AggSum           // low 32 bits of the payload sum
	AggMin
	AggMax
)

// NewGroupBy aggregates child by key. planner may be nil for CPU-only.
func NewGroupBy(child Operator, planner *Planner, partitions, threads int, agg AggKind) *GroupBy {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &GroupBy{child: child, planner: planner, partitions: partitions, threads: threads, agg: agg}
}

func (g *GroupBy) Open() error {
	rel, err := drain(g.child)
	if err != nil {
		return err
	}
	planner := g.planner
	if planner == nil {
		planner = NewPlanner(PlannerConfig{ForceCPU: true, Threads: g.threads, Partitions: g.partitions})
	}
	p, err := planner.Partitioner(rel.NumTuples)
	if err != nil {
		return err
	}
	parted, name, err := exactPartition(p, planner, rel)
	if err != nil {
		return err
	}
	g.ChosenPartitioner = name

	type kv struct {
		key uint32
		val uint32
	}
	perPart := make([][]kv, parted.NumPartitions())
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < g.threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := map[uint32]int64{}
			vals := map[uint32]uint32{}
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= parted.NumPartitions() {
					return
				}
				clear(counts)
				clear(vals)
				parted.Each(i, func(k, pay uint32) {
					counts[k]++
					switch g.agg {
					case AggSum:
						vals[k] += pay
					case AggMin:
						if c, ok := vals[k]; !ok || pay < c {
							vals[k] = pay
						}
					case AggMax:
						if c, ok := vals[k]; !ok || pay > c {
							vals[k] = pay
						}
					}
				})
				rows := make([]kv, 0, len(counts))
				for k, c := range counts {
					v := uint32(c)
					if g.agg != AggCount {
						v = vals[k]
					}
					rows = append(rows, kv{k, v})
				}
				perPart[i] = rows
			}
		}()
	}
	wg.Wait()

	var all []kv
	for _, rows := range perPart {
		all = append(all, rows...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	g.out = g.out[:0]
	for _, row := range all {
		g.out = append(g.out, uint64(row.val)<<32|uint64(row.key))
	}
	g.pos = 0
	g.opened = true
	return nil
}

func (g *GroupBy) Next() (Batch, error) {
	if !g.opened {
		return nil, errNotOpen
	}
	if g.pos >= len(g.out) {
		return nil, nil
	}
	end := g.pos + DefaultBatchSize
	if end > len(g.out) {
		end = len(g.out)
	}
	b := Batch(g.out[g.pos:end])
	g.pos = end
	return b, nil
}

func (g *GroupBy) Close() error {
	g.opened = false
	g.out = nil
	return g.child.Close()
}
