package engine

import (
	"strings"
	"testing"

	"fpgapart/internal/core"
)

// refJoinCount brute-forces the expected match count of rKeys ⋈ sKeys.
func refJoinCount(rKeys, sKeys []uint32) int {
	byKey := map[uint32]int{}
	for _, k := range rKeys {
		byKey[k]++
	}
	n := 0
	for _, k := range sKeys {
		n += byKey[k]
	}
	return n
}

// TestBatchAccessors pins the 8-byte packing contract: key in the low 32
// bits, payload in the high 32.
func TestBatchAccessors(t *testing.T) {
	b := Batch{0xAABBCCDD_11223344, 0}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Key(0) != 0x11223344 {
		t.Errorf("Key = %#x", b.Key(0))
	}
	if b.Payload(0) != 0xAABBCCDD {
		t.Errorf("Payload = %#x", b.Payload(0))
	}
	if b.Tuple(0) != 0xAABBCCDD_11223344 {
		t.Errorf("Tuple = %#x", b.Tuple(0))
	}
}

// TestHashJoinEdgeCases drives the join operator through the boundary
// inputs — empty relations on either side, all-duplicate keys, and tuples
// whose key equals the FPGA's dummy key — on both the CPU path and the
// forced-FPGA path. The two paths must agree with the brute-force count;
// before the dummy-key exact fallback, the FPGA path silently dropped every
// 0xFFFFFFFF-keyed tuple and lost their matches.
func TestHashJoinEdgeCases(t *testing.T) {
	dup := make([]uint32, 64)
	for i := range dup {
		dup[i] = 5
	}
	cases := []struct {
		name  string
		r, s  []uint32
		wantF string // expected substring of ChosenPartitioner under ForceFPGA
	}{
		{"both empty", nil, nil, "fpga"},
		{"empty build", nil, []uint32{1, 2, 3}, "fpga"},
		{"empty probe", []uint32{1, 2, 3}, nil, "fpga"},
		{"all duplicates", dup, []uint32{5, 5, 5, 9}, "fpga"},
		{"max-key tuples", []uint32{core.DefaultDummyKey, 1, core.DefaultDummyKey}, []uint32{core.DefaultDummyKey, 1},
			"dummy-key exact fallback"},
		{"max-key probe only", []uint32{1, 2}, []uint32{core.DefaultDummyKey, 2},
			"dummy-key exact fallback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := refJoinCount(tc.r, tc.s)

			cpuJoin := NewHashJoin(scanOf(t, tc.r), scanOf(t, tc.s), nil, 16, 2)
			cpuOut, err := Collect(cpuJoin)
			if err != nil {
				t.Fatal(err)
			}
			if len(cpuOut) != want {
				t.Errorf("cpu path: %d matches, brute force finds %d", len(cpuOut), want)
			}

			planner := NewPlanner(PlannerConfig{ForceFPGA: true, Partitions: 16, Threads: 2, Hash: true})
			fpgaJoin := NewHashJoin(scanOf(t, tc.r), scanOf(t, tc.s), planner, 16, 2)
			fpgaOut, err := Collect(fpgaJoin)
			if err != nil {
				t.Fatal(err)
			}
			if len(fpgaOut) != want {
				t.Errorf("fpga path: %d matches, brute force finds %d", len(fpgaOut), want)
			}
			if !strings.Contains(fpgaJoin.ChosenPartitioner, tc.wantF) {
				t.Errorf("ChosenPartitioner = %q, want substring %q", fpgaJoin.ChosenPartitioner, tc.wantF)
			}
		})
	}
}

// TestGroupByEdgeCases covers the same boundaries for aggregation: an empty
// child yields zero groups, and a dummy-key group must not vanish on the
// FPGA path.
func TestGroupByEdgeCases(t *testing.T) {
	t.Run("empty child", func(t *testing.T) {
		out, err := Collect(NewGroupBy(scanOf(t, nil), nil, 8, 2, AggCount))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("%d groups from an empty child", len(out))
		}
	})
	t.Run("max-key group", func(t *testing.T) {
		keys := []uint32{core.DefaultDummyKey, 7, core.DefaultDummyKey, core.DefaultDummyKey}
		planner := NewPlanner(PlannerConfig{ForceFPGA: true, Partitions: 8, Threads: 2, Hash: true})
		g := NewGroupBy(scanOf(t, keys), planner, 8, 2, AggCount)
		out, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("%d groups, want 2 (the dummy-key group must survive)", len(out))
		}
		counts := map[uint32]uint32{}
		for _, tup := range out {
			counts[uint32(tup)] = uint32(tup >> 32)
		}
		if counts[core.DefaultDummyKey] != 3 || counts[7] != 1 {
			t.Fatalf("group counts = %v", counts)
		}
		if !strings.Contains(g.ChosenPartitioner, "dummy-key exact fallback") {
			t.Errorf("ChosenPartitioner = %q, fallback not recorded", g.ChosenPartitioner)
		}
	})
}
