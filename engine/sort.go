package engine

import (
	"fpgapart/radixsort"
)

// Sort is a blocking ORDER BY key operator backed by the parallel LSD radix
// sort (package radixsort) — the same scatter machinery as the
// partitioners, applied to full ordering.
type Sort struct {
	child   Operator
	threads int

	out    []uint64
	pos    int
	opened bool
}

// NewSort sorts child's output ascending by key, stable in payload order.
func NewSort(child Operator, threads int) *Sort {
	return &Sort{child: child, threads: threads}
}

func (s *Sort) Open() error {
	tuples, err := Collect(s.child)
	if err != nil {
		return err
	}
	radixsort.Tuples(tuples, s.threads)
	s.out = tuples
	s.pos = 0
	s.opened = true
	return nil
}

func (s *Sort) Next() (Batch, error) {
	if !s.opened {
		return nil, errNotOpen
	}
	if s.pos >= len(s.out) {
		return nil, nil
	}
	end := s.pos + DefaultBatchSize
	if end > len(s.out) {
		end = len(s.out)
	}
	b := Batch(s.out[s.pos:end])
	s.pos = end
	return b, nil
}

func (s *Sort) Close() error {
	s.opened = false
	s.out = nil
	return s.child.Close()
}
