package engine

import (
	"sync"
	"time"

	"fpgapart/internal/model"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Planner decides, per input size, whether a partitioning sub-operator
// should run on the CPU or be offloaded to the FPGA — the integration
// question Section 6 raises. The FPGA side is predicted by the paper's cost
// model; the CPU side is predicted from a one-time micro-calibration of the
// host's partitioning rate. Small inputs stay on the CPU (the FPGA's fixed
// pipeline/flush latency dominates); large inputs go to whichever side the
// model favors.
type Planner struct {
	cfg PlannerConfig

	calOnce sync.Once
	// cpuTuplesPerSec is the calibrated host partitioning rate.
	cpuTuplesPerSec float64
}

// PlannerConfig configures the offload decision.
type PlannerConfig struct {
	Partitions int
	Threads    int
	Hash       bool
	// Platform defaults to platform.XeonFPGA().
	Platform *platform.Platform
	// Format is the FPGA mode offloaded runs use. The default is HistMode:
	// robust to any skew, so the planner never triggers a fallback rerun.
	Format partition.Format
	// ForceCPU / ForceFPGA pin the decision (ForceCPU wins if both).
	ForceCPU  bool
	ForceFPGA bool
	// CalibrationTuples sizes the CPU micro-benchmark (default 1<<18).
	CalibrationTuples int
	// MemoryBudgetBytes caps each join build's memory: partitions whose
	// build side exceeds it spill and are recursively repartitioned or
	// broadcast, with results identical to the unconstrained join. ≤ 0
	// means unlimited. HashJoin.MemoryBudgetBytes overrides it per
	// operator.
	MemoryBudgetBytes int64
}

// NewPlanner returns a planner.
func NewPlanner(cfg PlannerConfig) *Planner {
	if cfg.Platform == nil {
		cfg.Platform = platform.XeonFPGA()
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8192
	}
	if cfg.CalibrationTuples <= 0 {
		cfg.CalibrationTuples = 1 << 18
	}
	return &Planner{cfg: cfg}
}

// CPUEstimate returns the predicted CPU partitioning time for n tuples.
func (p *Planner) CPUEstimate(n int) time.Duration {
	p.calibrate()
	return time.Duration(float64(n) / p.cpuTuplesPerSec * float64(time.Second))
}

// FPGAEstimate returns the cost model's predicted FPGA partitioning time
// for n tuples, including the fixed pipeline/flush latency.
func (p *Planner) FPGAEstimate(n int) time.Duration {
	m := model.ForMode(model.Mode{Hist: p.cfg.Format == partition.HistMode}, p.cfg.Platform, int64(n))
	sec := float64(n) / m.TotalRate()
	return time.Duration(sec * float64(time.Second))
}

// ShouldOffload reports whether the FPGA is predicted to be faster for n
// tuples.
func (p *Planner) ShouldOffload(n int) bool {
	if p.cfg.ForceCPU {
		return false
	}
	if p.cfg.ForceFPGA {
		return true
	}
	return p.FPGAEstimate(n) < p.CPUEstimate(n)
}

// Partitioner returns the partitioner chosen for an input of n tuples.
func (p *Planner) Partitioner(n int) (partition.Partitioner, error) {
	if p.ShouldOffload(n) {
		return partition.NewFPGA(partition.FPGAOptions{
			Partitions:      p.cfg.Partitions,
			Hash:            p.cfg.Hash,
			Format:          p.cfg.Format,
			PadFraction:     0.5,
			Platform:        p.cfg.Platform,
			FallbackThreads: p.cfg.Threads,
		})
	}
	return partition.NewCPU(partition.CPUOptions{
		Partitions: p.cfg.Partitions,
		Hash:       p.cfg.Hash,
		Threads:    p.cfg.Threads,
	})
}

// calibrate measures the host's partitioning rate once.
func (p *Planner) calibrate() {
	p.calOnce.Do(func() {
		n := p.cfg.CalibrationTuples
		rel, err := workload.NewGenerator(1).Relation(workload.Random, workload.Width8, n)
		if err != nil {
			p.cpuTuplesPerSec = 100e6 // conservative default
			return
		}
		cpu, err := partition.NewCPU(partition.CPUOptions{
			Partitions: p.cfg.Partitions,
			Hash:       p.cfg.Hash,
			Threads:    p.cfg.Threads,
		})
		if err != nil {
			p.cpuTuplesPerSec = 100e6
			return
		}
		res, err := cpu.Partition(rel)
		if err != nil || res.Elapsed() <= 0 {
			p.cpuTuplesPerSec = 100e6
			return
		}
		p.cpuTuplesPerSec = float64(n) / res.Elapsed().Seconds()
	})
}
