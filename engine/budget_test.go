package engine

import (
	"sort"
	"testing"

	"fpgapart/internal/joincore"
)

// skewedKeys builds a key set with duplicates and one heavy hitter covering
// a quarter of the slice — the inputs that force a budgeted join to spill,
// recurse, and broadcast.
func skewedKeys(n int) (r, s []uint32) {
	r = make([]uint32, n)
	s = make([]uint32, n+n/2)
	for i := range r {
		r[i] = uint32(i % (n / 4))
	}
	for i := range s {
		s[i] = uint32(i % (n / 2))
	}
	for i := 0; i < len(s)/4; i++ {
		s[i*2] = 3
	}
	return r, s
}

func sorted(out []uint64) []uint64 {
	c := append([]uint64(nil), out...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestHashJoinBudgetedMatchesUnbudgeted(t *testing.T) {
	rKeys, sKeys := skewedKeys(2000)

	ref := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), nil, 16, 2)
	want, err := Collect(ref)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Memory != nil {
		t.Fatalf("unbudgeted join reported memory stats: %+v", ref.Memory)
	}

	buildBytes := int64(len(rKeys)) * joincore.BuildTupleBytes
	for _, div := range []int64{1, 4, 10} {
		join := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), nil, 16, 2)
		join.MemoryBudgetBytes = buildBytes / div
		got, err := Collect(join)
		if err != nil {
			t.Fatalf("budget 1/%d: %v", div, err)
		}
		// Budgeted tuple order follows the adaptive plan; compare as
		// multisets.
		gs, ws := sorted(got), sorted(want)
		if len(gs) != len(ws) {
			t.Fatalf("budget 1/%d: %d tuples, want %d", div, len(gs), len(ws))
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("budget 1/%d: tuple %d = %#x, want %#x", div, i, gs[i], ws[i])
			}
		}
		if join.Memory == nil || join.Memory.BudgetBytes != buildBytes/div {
			t.Fatalf("budget 1/%d: missing memory stats: %+v", div, join.Memory)
		}
	}

	// A budget below every per-partition build footprint (~1/16 of the
	// build side each) must visibly spill.
	join := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), nil, 16, 2)
	join.MemoryBudgetBytes = buildBytes / 20
	if _, err := Collect(join); err != nil {
		t.Fatal(err)
	}
	if join.Memory.SpilledPartitions == 0 {
		t.Fatalf("1/10 budget on skew should spill, got %+v", join.Memory)
	}
}

func TestHashJoinBudgetFromPlanner(t *testing.T) {
	rKeys, sKeys := skewedKeys(1000)
	planner := NewPlanner(PlannerConfig{
		ForceCPU:          true,
		Partitions:        16,
		Threads:           2,
		MemoryBudgetBytes: int64(len(rKeys)) * joincore.BuildTupleBytes / 8,
	})
	join := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), planner, 16, 2)
	if _, err := Collect(join); err != nil {
		t.Fatal(err)
	}
	if join.Memory == nil {
		t.Fatal("planner-level MemoryBudgetBytes did not reach the join")
	}
	// The operator-level knob overrides the planner's.
	join2 := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), planner, 16, 2)
	join2.MemoryBudgetBytes = -1 // explicit unlimited
	if _, err := Collect(join2); err != nil {
		t.Fatal(err)
	}
	if join2.Memory != nil {
		t.Fatalf("operator override to unlimited still budgeted: %+v", join2.Memory)
	}
}
