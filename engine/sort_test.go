package engine

import (
	"testing"

	"fpgapart/radixsort"
)

func TestSortOperator(t *testing.T) {
	keys := []uint32{9, 3, 7, 3, 1, 9, 0}
	s := NewSort(scanOf(t, keys), 2)
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("%d tuples out", len(out))
	}
	if !radixsort.IsSortedByKey(out) {
		t.Fatalf("not sorted: %v", out)
	}
	// Stability: the two 3s keep payload order (payload = input index).
	var threes []uint32
	for _, tup := range out {
		if uint32(tup) == 3 {
			threes = append(threes, uint32(tup>>32))
		}
	}
	if len(threes) != 2 || threes[0] != 1 || threes[1] != 3 {
		t.Fatalf("stability lost: payloads %v", threes)
	}
}

func TestSortInPipeline(t *testing.T) {
	// filter → sort → limit gives the smallest k matching keys.
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32(999 - i)
	}
	pipe := NewLimit(NewSort(NewFilter(scanOf(t, keys),
		func(k, _ uint32) bool { return k%2 == 0 }), 2), 3)
	out, err := Collect(pipe)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 2, 4}
	if len(out) != 3 {
		t.Fatalf("%d tuples", len(out))
	}
	for i, tup := range out {
		if uint32(tup) != want[i] {
			t.Fatalf("tuple %d = %d, want %d", i, uint32(tup), want[i])
		}
	}
}

func TestSortEmptyInput(t *testing.T) {
	s := NewSort(scanOf(t, nil), 1)
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("%d tuples from empty input", len(out))
	}
}

func TestSortNextBeforeOpen(t *testing.T) {
	s := NewSort(scanOf(t, []uint32{1}), 1)
	if _, err := s.Next(); err == nil {
		t.Error("Next before Open succeeded")
	}
}
