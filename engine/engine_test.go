package engine

import (
	"sort"
	"testing"

	"fpgapart/partition"
	"fpgapart/workload"
)

func scanOf(t *testing.T, keys []uint32) *Scan {
	t.Helper()
	rel, err := workload.FromKeys(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScan(rel, 7) // odd batch size exercises the tail
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanStreamsEverything(t *testing.T) {
	keys := []uint32{5, 1, 9, 9, 3, 7, 2, 8, 4}
	out, err := Collect(scanOf(t, keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("collected %d tuples, want %d", len(out), len(keys))
	}
	for i, tup := range out {
		if uint32(tup) != keys[i] || uint32(tup>>32) != uint32(i) {
			t.Fatalf("tuple %d = %#x", i, tup)
		}
	}
}

func TestScanValidation(t *testing.T) {
	col, _ := workload.NewRelation(workload.ColumnLayout, 8, 4)
	if _, err := NewScan(col, 0); err == nil {
		t.Error("column relation accepted")
	}
	wide, _ := workload.NewRelation(workload.RowLayout, 16, 4)
	if _, err := NewScan(wide, 0); err == nil {
		t.Error("wide relation accepted")
	}
}

func TestNextBeforeOpenFails(t *testing.T) {
	s := scanOf(t, []uint32{1})
	if _, err := s.Next(); err == nil {
		t.Error("Next before Open succeeded")
	}
}

func TestFilter(t *testing.T) {
	keys := make([]uint32, 100)
	for i := range keys {
		keys[i] = uint32(i)
	}
	f := NewFilter(scanOf(t, keys), func(k, _ uint32) bool { return k%2 == 0 })
	out, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("filtered to %d tuples, want 50", len(out))
	}
	for _, tup := range out {
		if uint32(tup)%2 != 0 {
			t.Fatalf("odd key survived: %d", uint32(tup))
		}
	}
}

func TestFilterRejectAll(t *testing.T) {
	f := NewFilter(scanOf(t, []uint32{1, 2, 3}), func(_, _ uint32) bool { return false })
	out, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d tuples, want 0", len(out))
	}
}

func TestProject(t *testing.T) {
	p := NewProject(scanOf(t, []uint32{1, 2}), func(k, pay uint32) (uint32, uint32) {
		return k * 10, pay + 100
	})
	out, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(out[0]) != 10 || uint32(out[0]>>32) != 100 {
		t.Fatalf("projected tuple 0 = %#x", out[0])
	}
	if uint32(out[1]) != 20 || uint32(out[1]>>32) != 101 {
		t.Fatalf("projected tuple 1 = %#x", out[1])
	}
}

func TestLimit(t *testing.T) {
	keys := make([]uint32, 100)
	l := NewLimit(scanOf(t, keys), 13)
	n, err := Count(l)
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Fatalf("limit produced %d tuples", n)
	}
	// Limit larger than input.
	l2 := NewLimit(scanOf(t, keys[:5]), 100)
	if n, _ := Count(l2); n != 5 {
		t.Fatalf("oversized limit produced %d", n)
	}
}

func TestHashJoinMatchesReference(t *testing.T) {
	rKeys := []uint32{1, 2, 3, 4, 5, 5}
	sKeys := []uint32{5, 5, 2, 9}
	join := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), nil, 16, 2)
	out, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: s=5 matches r slots 4,5 (twice for two probes), s=2 once,
	// s=9 none → 2+2+1 = 5 matches.
	if len(out) != 5 {
		t.Fatalf("join produced %d tuples, want 5", len(out))
	}
	counts := map[uint32]int{}
	for _, tup := range out {
		counts[uint32(tup)]++
	}
	if counts[5] != 4 || counts[2] != 1 {
		t.Fatalf("join key counts: %v", counts)
	}
	if join.ChosenPartitioner == "" {
		t.Error("ChosenPartitioner not recorded")
	}
}

func TestHashJoinCombinePayloads(t *testing.T) {
	join := NewHashJoin(scanOf(t, []uint32{7}), scanOf(t, []uint32{7}), nil, 4, 1)
	join.Combine = func(a, b uint32) uint32 { return a*1000 + b }
	out, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	// Both payloads are index 0 → combined = 0.
	if len(out) != 1 || uint32(out[0]>>32) != 0 || uint32(out[0]) != 7 {
		t.Fatalf("join output: %#x", out)
	}
}

func TestHashJoinWithFPGAPlanner(t *testing.T) {
	rKeys := make([]uint32, 5000)
	sKeys := make([]uint32, 5000)
	for i := range rKeys {
		rKeys[i] = uint32(i + 1)
		sKeys[i] = uint32(i%2500 + 1)
	}
	planner := NewPlanner(PlannerConfig{ForceFPGA: true, Partitions: 64, Threads: 2})
	join := NewHashJoin(scanOf(t, rKeys), scanOf(t, sKeys), planner, 64, 2)
	out, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5000 {
		t.Fatalf("join produced %d tuples, want 5000", len(out))
	}
	if join.ChosenPartitioner != "fpga-HIST/RID" {
		t.Errorf("partitioner = %q, want FPGA", join.ChosenPartitioner)
	}
}

func TestGroupByCount(t *testing.T) {
	keys := []uint32{3, 1, 3, 2, 3, 1}
	g := NewGroupBy(scanOf(t, keys), nil, 8, 2, AggCount)
	out, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]uint32{1: 2, 2: 1, 3: 3}
	if len(out) != len(want) {
		t.Fatalf("%d groups, want %d", len(out), len(want))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return uint32(out[i]) < uint32(out[j]) }) {
		t.Error("groups not sorted by key")
	}
	for _, tup := range out {
		if uint32(tup>>32) != want[uint32(tup)] {
			t.Fatalf("group %d count %d, want %d", uint32(tup), uint32(tup>>32), want[uint32(tup)])
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	// key 1 with payloads 0,2,4 (indices of its occurrences).
	keys := []uint32{1, 9, 1, 9, 1}
	cases := []struct {
		agg  AggKind
		want uint32 // for key 1
	}{
		{AggSum, 0 + 2 + 4},
		{AggMin, 0},
		{AggMax, 4},
		{AggCount, 3},
	}
	for _, c := range cases {
		g := NewGroupBy(scanOf(t, keys), nil, 8, 1, c.agg)
		out, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, tup := range out {
			if uint32(tup) == 1 {
				found = true
				if uint32(tup>>32) != c.want {
					t.Errorf("agg %d: key 1 = %d, want %d", c.agg, uint32(tup>>32), c.want)
				}
			}
		}
		if !found {
			t.Fatalf("agg %d: key 1 missing", c.agg)
		}
	}
}

func TestPipelineComposition(t *testing.T) {
	// scan → filter(even keys) → join with itself → group-by count.
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32(i % 100)
	}
	build := NewFilter(scanOf(t, keys), func(k, _ uint32) bool { return k%2 == 0 })
	probe := NewFilter(scanOf(t, keys), func(k, _ uint32) bool { return k%2 == 0 })
	join := NewHashJoin(build, probe, nil, 16, 2)
	group := NewGroupBy(join, nil, 16, 2, AggCount)
	out, err := Collect(group)
	if err != nil {
		t.Fatal(err)
	}
	// 50 even keys, each appearing 10 times per side → 100 matches per key.
	if len(out) != 50 {
		t.Fatalf("%d groups, want 50", len(out))
	}
	for _, tup := range out {
		if uint32(tup>>32) != 100 {
			t.Fatalf("group %d count %d, want 100", uint32(tup), uint32(tup>>32))
		}
	}
}

func TestPlannerEstimatesAndDecision(t *testing.T) {
	p := NewPlanner(PlannerConfig{Partitions: 256, Threads: 1, Hash: true, CalibrationTuples: 1 << 14})
	if p.CPUEstimate(1<<20) <= 0 || p.FPGAEstimate(1<<20) <= 0 {
		t.Error("estimates must be positive")
	}
	// Estimates scale with n.
	if p.FPGAEstimate(1<<22) <= p.FPGAEstimate(1<<18) {
		t.Error("FPGA estimate should grow with n")
	}
	forceCPU := NewPlanner(PlannerConfig{ForceCPU: true})
	if forceCPU.ShouldOffload(1 << 30) {
		t.Error("ForceCPU ignored")
	}
	forceFPGA := NewPlanner(PlannerConfig{ForceFPGA: true})
	if !forceFPGA.ShouldOffload(1) {
		t.Error("ForceFPGA ignored")
	}
	// Consistency: decision matches the estimates.
	n := 1 << 20
	if p.ShouldOffload(n) != (p.FPGAEstimate(n) < p.CPUEstimate(n)) {
		t.Error("decision inconsistent with estimates")
	}
}

func TestPlannerPartitionerKinds(t *testing.T) {
	cpuP, err := NewPlanner(PlannerConfig{ForceCPU: true, Partitions: 64}).Partitioner(1000)
	if err != nil {
		t.Fatal(err)
	}
	if cpuP.Name()[:3] != "cpu" {
		t.Errorf("ForceCPU chose %q", cpuP.Name())
	}
	fpgaP, err := NewPlanner(PlannerConfig{ForceFPGA: true, Partitions: 64}).Partitioner(1000)
	if err != nil {
		t.Fatal(err)
	}
	if fpgaP.Name()[:4] != "fpga" {
		t.Errorf("ForceFPGA chose %q", fpgaP.Name())
	}
}

func TestGroupByWithFPGAPlanner(t *testing.T) {
	keys := make([]uint32, 3000)
	for i := range keys {
		keys[i] = uint32(i % 30)
	}
	planner := NewPlanner(PlannerConfig{ForceFPGA: true, Partitions: 32, Format: partition.HistMode})
	g := NewGroupBy(scanOf(t, keys), planner, 32, 2, AggCount)
	out, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 30 {
		t.Fatalf("%d groups, want 30", len(out))
	}
	for _, tup := range out {
		if uint32(tup>>32) != 100 {
			t.Fatalf("group %d count %d, want 100", uint32(tup), uint32(tup>>32))
		}
	}
	if g.ChosenPartitioner != "fpga-HIST/RID" {
		t.Errorf("partitioner = %q", g.ChosenPartitioner)
	}
}
