package partition

import (
	"errors"
	"strings"
	"testing"

	"fpgapart/platform"
	"fpgapart/workload"
)

func TestGuardSimulatorConvertsPanics(t *testing.T) {
	run := func(panicValue interface{}) error {
		err := func() (err error) {
			defer guardSimulator(&err)
			panic(panicValue)
		}()
		return err
	}
	for _, v := range []interface{}{
		"fpga: push into full FIFO (back-pressure violated)",
		"qpi: read without budget",
		errors.New("fpga: front of empty FIFO"),
	} {
		err := run(v)
		if err == nil {
			t.Fatalf("panic %v swallowed", v)
		}
		if !errors.Is(err, ErrSimulatorFault) {
			t.Errorf("error %v is not ErrSimulatorFault", err)
		}
		if !strings.Contains(err.Error(), "fpga") && !strings.Contains(err.Error(), "qpi") {
			t.Errorf("panic message lost: %v", err)
		}
	}
}

func TestGuardSimulatorNoopOnSuccess(t *testing.T) {
	err := func() (err error) {
		defer guardSimulator(&err)
		return nil
	}()
	if err != nil {
		t.Errorf("clean run reported %v", err)
	}
}

func TestPartitionChecksumDetectsDifferences(t *testing.T) {
	rel, err := workload.NewGenerator(11).Relation(workload.Random, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewCPU(CPUOptions{Partitions: 16, Hash: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: recompute agrees.
	for q := 0; q < 16; q++ {
		if res.PartitionChecksum(q) != res.PartitionChecksum(q) {
			t.Fatalf("partition %d checksum not deterministic", q)
		}
	}
	// Distinct partitions (virtually always) have distinct checksums.
	seen := map[uint32]int{}
	for q := 0; q < 16; q++ {
		seen[res.PartitionChecksum(q)]++
	}
	if len(seen) < 15 {
		t.Errorf("only %d distinct checksums over 16 partitions", len(seen))
	}
}

func TestPartitionChecksumAgreesAcrossBackends(t *testing.T) {
	// CPU- and FPGA-written partitions hold the same tuple multiset (in
	// backend-specific order), so the order-insensitive piece checksums
	// the exchange verifies must agree.
	rel, err := workload.NewGenerator(5).Relation(workload.Linear, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPU(CPUOptions{Partitions: 8, Hash: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := NewFPGA(FPGAOptions{Partitions: 8, Hash: true, Format: HistMode})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cpu.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fpga.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		if cr.PartitionChecksum(q) != fr.PartitionChecksum(q) {
			t.Errorf("partition %d: CPU checksum %#x, FPGA %#x",
				q, cr.PartitionChecksum(q), fr.PartitionChecksum(q))
		}
	}
}

func TestNewFPGARejectsBrokenPlatform(t *testing.T) {
	bad := platform.XeonFPGA()
	bad.FPGAClockHz = 0
	if _, err := NewFPGA(FPGAOptions{Partitions: 8, Platform: bad}); err == nil {
		t.Error("zero-clock platform accepted")
	}
}
