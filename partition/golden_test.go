package partition

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fpgapart/codec"
	"fpgapart/internal/simtrace"
	"fpgapart/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// The golden workload: 8-value key runs (so the RLE-compressed path carries
// real runs, not one run per tuple) spread over the fan-out by a Knuth
// multiplicative constant. Everything below is a pure function of these
// numbers — no generator, no seed, nothing host-dependent.
const (
	goldenTuples = 20000
	goldenRunLen = 8
	goldenFanOut = 64
)

func goldenKeys() []uint32 {
	keys := make([]uint32, goldenTuples)
	for i := range keys {
		keys[i] = uint32(i/goldenRunLen) * 2654435761
	}
	return keys
}

// partitionMultisets returns the per-partition sorted (key, payload)
// multisets — the backend- and timing-independent view of a Result.
func partitionMultisets(res *Result) [][]uint64 {
	out := make([][]uint64, res.NumPartitions())
	for p := range out {
		var v []uint64
		res.Each(p, func(k, pay uint32) { v = append(v, uint64(k)<<32|uint64(pay)) })
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		out[p] = v
	}
	return out
}

// TestGoldenConformance runs the same column through all three partitioning
// backends — the simulated FPGA in VRID mode, the compressed-input FPGA
// path, and the CPU software partitioner on materialized <key, VRID> rows —
// and requires identical partition contents from each. The FPGA run's
// histogram and simtrace metrics are then compared byte-for-byte against the
// golden snapshot; -update rewrites it, and a mismatch leaves a .got.json
// next to the golden file for CI to upload.
func TestGoldenConformance(t *testing.T) {
	keys := goldenKeys()
	rows, err := workload.FromKeys(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	col := rows.ToColumns()

	sess := simtrace.NewSession()
	fp, err := NewFPGA(FPGAOptions{
		Partitions: goldenFanOut, Hash: true,
		Format: HistMode, Layout: ColumnStore, Trace: sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	fpgaRes, err := fp.Partition(col)
	if err != nil {
		t.Fatalf("fpga vrid: %v", err)
	}

	compRes, err := FPGACompressed(FPGAOptions{
		Partitions: goldenFanOut, Hash: true,
		Format: HistMode, Layout: ColumnStore,
	}, codec.CompressRLE(keys))
	if err != nil {
		t.Fatalf("fpga compressed: %v", err)
	}

	cp, err := NewCPU(CPUOptions{Partitions: goldenFanOut, Hash: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	cpuRes, err := cp.Partition(rows)
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}

	ref := partitionMultisets(fpgaRes)
	for _, other := range []struct {
		name string
		res  *Result
	}{
		{"fpga-compressed", compRes},
		{"cpu", cpuRes},
	} {
		got := partitionMultisets(other.res)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d partitions, fpga-vrid has %d", other.name, len(got), len(ref))
		}
		for p := range ref {
			if len(got[p]) != len(ref[p]) {
				t.Fatalf("%s: partition %d holds %d tuples, fpga-vrid holds %d",
					other.name, p, len(got[p]), len(ref[p]))
			}
			for i := range ref[p] {
				if got[p][i] != ref[p][i] {
					t.Fatalf("%s: partition %d differs from fpga-vrid at tuple %d: %#x vs %#x",
						other.name, p, i, got[p][i], ref[p][i])
				}
			}
		}
	}

	compareGolden(t, filepath.Join("testdata", "golden", "partition_conformance.json"),
		goldenSnapshot(fpgaRes, sess))
}

// goldenSnapshot renders the run as deterministic JSON: the workload shape,
// the partition histogram, and the simtrace metrics snapshot.
func goldenSnapshot(res *Result, sess *simtrace.Session) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "{\n  \"workload\": {\"tuples\": %d, \"run_length\": %d, \"fan_out\": %d},\n",
		goldenTuples, goldenRunLen, goldenFanOut)
	b.WriteString("  \"histogram\": [")
	for p := 0; p < res.NumPartitions(); p++ {
		if p > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", res.Count(p))
	}
	b.WriteString("],\n  \"metrics\": ")
	var m bytes.Buffer
	if err := sess.Metrics.Snapshot().WriteJSON(&m); err != nil {
		panic(err) // bytes.Buffer does not fail
	}
	b.Write(bytes.TrimRight(m.Bytes(), "\n"))
	b.WriteString("\n}\n")
	return b.Bytes()
}

// compareGolden diffs got against the golden file, honouring -update. On a
// mismatch the actual bytes are written next to the golden file as
// <name>.got.json so CI can attach them as an artifact.
func compareGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./partition -run TestGolden -update` to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotPath := golden[:len(golden)-len(".json")] + ".got.json"
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Errorf("golden mismatch: %s differs from %s\n%s\nrerun with -update if the change is intended",
		golden, gotPath, firstDiff(want, got))
}

// firstDiff reports the first line where want and got diverge.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("files differ in length: golden %d lines, got %d lines", len(wl), len(gl))
}

// TestTraceByteIdentical locks down the determinism contract end to end: two
// runs of the same seed with fresh sessions must produce byte-identical
// Chrome trace JSON and metrics snapshots.
func TestTraceByteIdentical(t *testing.T) {
	run := func() (trace, metrics []byte) {
		rel, err := workload.NewGenerator(11).Relation(workload.Random, 8, 30000)
		if err != nil {
			t.Fatal(err)
		}
		sess := simtrace.NewSession()
		p, err := NewFPGA(FPGAOptions{
			Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.5, Trace: sess,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Partition(rel); err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := sess.Tracer.WriteJSON(&tb); err != nil {
			t.Fatal(err)
		}
		if err := sess.Metrics.Snapshot().WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := run()
	t2, m2 := run()
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace JSON differs between identical runs\n%s", firstDiff(t1, t2))
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics JSON differs between identical runs\n%s", firstDiff(m1, m2))
	}
}
