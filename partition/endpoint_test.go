package partition

import (
	"strings"
	"testing"

	"fpgapart/platform"
	"fpgapart/workload"
)

func TestExtendedEndpointLoses20Percent(t *testing.T) {
	rel := genRel(t, 200000, 21)
	std, err := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.5,
		ExtendedEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := std.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ext.Partition(rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(re.Elapsed()) / float64(rs.Elapsed())
	// 20% less bandwidth on a bandwidth-bound run → ~1.25× slower (flush
	// and latency dilute it slightly).
	if ratio < 1.1 || ratio > 1.35 {
		t.Errorf("extended endpoint slowdown = %.3fx, want ~1.25x", ratio)
	}
}

func TestExtendedEndpointAllocationCap(t *testing.T) {
	// A relation whose input+output footprint exceeds 2 GB must be
	// rejected without running. Construct the header only — no data is
	// touched before validation.
	rel := &workload.Relation{
		Layout:    workload.RowLayout,
		Width:     8,
		NumTuples: int(platform.ExtendedEndpointMaxBytes/8 + 1),
	}
	ext, err := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, ExtendedEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ext.Partition(rel)
	if err == nil || !strings.Contains(err.Error(), "allocation cap") {
		t.Fatalf("err = %v, want allocation cap rejection", err)
	}
}

func TestCurveScale(t *testing.T) {
	c := platform.BandwidthCurve{Points: []float64{5, 10}}
	s := c.Scale(0.8)
	if s.Points[0] != 4 || s.Points[1] != 8 {
		t.Errorf("scaled points: %v", s.Points)
	}
	// Original untouched.
	if c.Points[0] != 5 {
		t.Error("Scale mutated the original curve")
	}
}
