// Package partition is the public API of the library: data partitioners for
// in-memory relations, backed either by the host CPU (a measured,
// state-of-the-art software implementation with software-managed buffers)
// or by a cycle-level simulation of the paper's FPGA partitioner circuit on
// the Xeon+FPGA platform model.
//
// Quick start:
//
//	rel, _ := workload.NewGenerator(1).Relation(workload.Random, 8, 1<<20)
//	p, _ := partition.NewFPGA(partition.FPGAOptions{
//	        Partitions: 8192,
//	        Hash:       true,
//	        Format:     partition.PadMode,
//	})
//	res, _ := p.Partition(rel)
//	fmt.Println(res.Elapsed(), res.Count(0))
//
// Both backends produce a Result with a unified slot-level view of the
// partitions, so downstream operators (e.g. package hashjoin) are agnostic
// to where the partitioning ran.
package partition

import (
	"errors"
	"fmt"
	"time"

	"fpgapart/internal/core"
	"fpgapart/internal/cpupart"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/simtrace"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Format selects the FPGA partitioner's output strategy (Section 4.5 of the
// paper).
type Format int

const (
	// HistMode does a histogram pass first: two passes, minimal memory,
	// robust against any skew.
	HistMode Format = iota
	// PadMode preassigns fixed padded partition sizes: a single pass, but
	// skewed inputs can overflow, triggering the CPU fallback.
	PadMode
)

// Layout selects the FPGA partitioner's input layout (Section 4.5).
type Layout int

const (
	// RowStore reads <key, payload> records (RID mode).
	RowStore Layout = iota
	// ColumnStore reads a bare key column and emits <key, VRID> tuples
	// (VRID mode), halving read traffic.
	ColumnStore
)

// ErrOverflow is reported (wrapped) when a PAD-mode run overflowed a
// partition's padded size and no fallback was configured.
var ErrOverflow = errors.New("partition: partition overflowed its padded size (PAD mode)")

// ErrSimulatorFault is reported (wrapped) when an invariant violation inside
// the simulator internals (internal/fpga's FIFOs and BRAMs, internal/qpi's
// bandwidth budget) panics during a run. The Partitioner implementations
// convert such panics into errors at the public API boundary, so a simulator
// bug degrades into a failed call instead of crashing the process. Test with
// errors.Is(err, ErrSimulatorFault).
var ErrSimulatorFault = errors.New("partition: simulator invariant fault")

// guardSimulator converts a panic escaping the simulator into an
// ErrSimulatorFault-wrapping error. Used via defer with a named return.
func guardSimulator(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// Partitioner partitions relations.
type Partitioner interface {
	// Partition splits rel into the configured number of partitions.
	Partition(rel *workload.Relation) (*Result, error)
	// Name identifies the backend and mode, e.g. "fpga-PAD/RID".
	Name() string
}

// Result is a partitioned relation from either backend.
type Result struct {
	numPartitions int
	elapsed       time.Duration
	simulated     bool
	fpgaWritten   bool
	fellBack      bool

	cpu  *cpupart.Result
	fpga *core.Output

	// Stats carries FPGA run statistics (zero value for CPU runs).
	Stats FPGAStats

	// Trace is the simtrace session the run reported into (nil unless
	// FPGAOptions.Trace was set): its Metrics hold the cycle-level
	// counters and gauges, its Tracer the per-component timeline, and
	// Trace.Summary() renders both as a text table.
	Trace *simtrace.Session
}

// FPGAStats is the public snapshot of a simulated circuit run.
type FPGAStats struct {
	Cycles              int64
	LinesRead           int64
	LinesWritten        int64
	TuplesIn            int64
	TuplesOut           int64
	Dummies             int64
	StallsHazard        int64
	ForwardedHazards    int64
	StallsBackpressure  int64
	PageTranslations    int64
	HistogramCycles     int64
	FlushCycles         int64
	HashPipelineBubbles int64
	CombinerBRAMReads   int64
	CombinerBRAMWrites  int64

	// Overflowed reports a PAD-mode abort; OverflowAtTuple is how many
	// tuples had entered the circuit when it was detected. On a fallback
	// run (Result.FellBack) these describe the aborted FPGA attempt.
	Overflowed      bool
	OverflowAtTuple int64
}

// NumPartitions returns the fan-out.
func (r *Result) NumPartitions() int { return r.numPartitions }

// Elapsed returns the partitioning time: wall-clock for the CPU backend,
// simulated FPGA time (cycles at the platform clock) for the FPGA backend.
func (r *Result) Elapsed() time.Duration { return r.elapsed }

// Simulated reports whether Elapsed is simulated rather than measured.
func (r *Result) Simulated() bool { return r.simulated }

// FPGAWritten reports whether the partitions were written by the FPGA —
// which means a CPU consumer pays the coherence snoop penalty of Table 1.
func (r *Result) FPGAWritten() bool { return r.fpgaWritten }

// FellBack reports whether a PAD overflow forced the CPU fallback.
func (r *Result) FellBack() bool { return r.fellBack }

// Count returns the number of valid tuples in partition p.
func (r *Result) Count(p int) int64 {
	if r.cpu != nil {
		return r.cpu.Count(p)
	}
	return r.fpga.Counts[p]
}

// TotalTuples returns the total valid tuple count.
func (r *Result) TotalTuples() int64 {
	var n int64
	for p := 0; p < r.numPartitions; p++ {
		n += r.Count(p)
	}
	return n
}

// ValidTuples returns the number of tuples a consumer actually observes
// through Each/Slot. For CPU-written results this equals TotalTuples. For
// FPGA-written results it can be smaller: an input tuple whose key equals
// the circuit's dummy key is written to the output lines but is
// indistinguishable from flush padding, so every reader skips it — the
// histogram counts it, Each never yields it. Callers that must not lose
// tuples compare this against the input size and repartition on the CPU
// (whose boundaries are exact) when they disagree.
func (r *Result) ValidTuples() int64 {
	if r.cpu != nil {
		return r.TotalTuples()
	}
	var n int64
	for p := 0; p < r.numPartitions; p++ {
		r.Each(p, func(_, _ uint32) { n++ })
	}
	return n
}

// SlotCount returns the number of addressable tuple slots in partition p.
// For FPGA-written partitions this includes dummy slots; use Slot's ok
// result to skip them.
func (r *Result) SlotCount(p int) int {
	if r.cpu != nil {
		return int(r.cpu.Count(p))
	}
	return int(r.fpga.LinesUsed[p]) * r.fpga.TuplesPerLine()
}

// Slot returns the key and payload in slot i of partition p; ok is false
// for dummy (padding) slots.
func (r *Result) Slot(p, i int) (key, payload uint32, ok bool) {
	if r.cpu != nil {
		t := r.cpu.Data[r.cpu.Offsets[p]+int64(i)]
		return uint32(t), uint32(t >> 32), true
	}
	o := r.fpga
	wpt := o.TupleWidth / 8
	base := o.Base[p]*8 + int64(i*wpt)
	w := o.Lines[base]
	key = uint32(w)
	if key == o.DummyKey {
		return 0, 0, false
	}
	return key, uint32(w >> 32), true
}

// PartitionChecksum returns an order-insensitive checksum over the valid
// tuples of partition p (a commutative sum of per-tuple murmur hashes, so
// backends that emit the same multiset in different orders agree). The
// distributed exchange uses it for end-to-end verification of partition
// pieces: the sender computes it before transmission, the receiver after
// reassembly, and a mismatch triggers a re-request of the piece.
func (r *Result) PartitionChecksum(p int) uint32 {
	var h uint32
	r.Each(p, func(key, payload uint32) {
		h += hashutil.Murmur32Finalizer(key ^ hashutil.Murmur32Finalizer(payload))
	})
	return h
}

// Each iterates the valid tuples of partition p.
func (r *Result) Each(p int, fn func(key, payload uint32)) {
	if r.cpu != nil {
		for _, t := range r.cpu.Partition(p) {
			fn(uint32(t), uint32(t>>32))
		}
		return
	}
	r.fpga.Partition(p, func(k, pay uint32, _ []uint64) { fn(k, pay) })
}

// CPUOptions configures the CPU software partitioner.
type CPUOptions struct {
	Partitions int
	// Hash selects murmur hash partitioning; false selects radix bits.
	Hash bool
	// Threads ≤ 0 uses all cores.
	Threads int
	// Naive selects the tuple-at-a-time scatter of Code 1 (for ablations);
	// the default is the software-managed-buffer algorithm of Code 2.
	Naive bool
	// MultiPass selects the fan-out-limited two-pass algorithm.
	MultiPass bool
}

type cpuPartitioner struct {
	cfg cpupart.Config
}

// NewCPU returns the software partitioner.
func NewCPU(opts CPUOptions) (Partitioner, error) {
	if opts.Naive && opts.MultiPass {
		return nil, errors.New("partition: Naive and MultiPass are mutually exclusive")
	}
	alg := cpupart.Buffered
	if opts.Naive {
		alg = cpupart.Naive
	}
	if opts.MultiPass {
		alg = cpupart.MultiPass
	}
	cfg := cpupart.Config{
		NumPartitions: opts.Partitions,
		Hash:          opts.Hash,
		Threads:       opts.Threads,
		Algorithm:     alg,
	}
	return &cpuPartitioner{cfg: cfg}, nil
}

func (p *cpuPartitioner) Name() string {
	kind := "radix"
	if p.cfg.Hash {
		kind = "hash"
	}
	return fmt.Sprintf("cpu-%s-%v", kind, p.cfg.Algorithm)
}

func (p *cpuPartitioner) Partition(rel *workload.Relation) (result *Result, err error) {
	defer guardSimulator(&err)
	res, err := cpupart.Partition(rel, p.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		numPartitions: res.NumPartitions,
		elapsed:       res.Elapsed,
		cpu:           res,
	}, nil
}

// FPGAOptions configures the simulated FPGA partitioner.
type FPGAOptions struct {
	Partitions int
	// TupleWidth in bytes: 8 (default), 16, 32 or 64. ColumnStore requires 8.
	TupleWidth int
	// Hash selects murmur hashing — free on the FPGA (Section 4.7).
	Hash   bool
	Format Format
	Layout Layout
	// PadFraction is PAD mode's headroom (default 0.15).
	PadFraction float64
	// Platform defaults to platform.XeonFPGA().
	Platform *platform.Platform
	// Interfered uses the reduced bandwidth curve measured when the CPU
	// hammers memory concurrently (Figure 2).
	Interfered bool
	// ExtendedEndpoint models Intel's extended QPI end-point instead of the
	// paper's own page table (Section 2.1): address translation is handled
	// by the end-point, but allocations are capped at 2 GB and bandwidth
	// drops 20%. Relations too large for the cap are rejected.
	ExtendedEndpoint bool
	// DisableFallback turns off the PAD-overflow CPU fallback, surfacing
	// ErrOverflow instead.
	DisableFallback bool
	// FallbackThreads is the parallelism of the CPU fallback partitioner.
	FallbackThreads int

	// Trace attaches a simtrace session to the simulated circuit: runs
	// report cycle-level counters into Trace.Metrics and phase spans plus
	// windowed samples into Trace.Tracer, and Result.Trace echoes the
	// session. Successive Partition calls accumulate into the session.
	// Nil (the default) disables tracing at zero per-cycle cost.
	Trace *simtrace.Session

	// Ablation switches (see core.Config).
	DisableForwarding    bool
	DisableWriteCombiner bool
}

type fpgaPartitioner struct {
	opts    FPGAOptions
	circuit *core.Circuit
}

// NewFPGA returns the simulated FPGA partitioner. Like Partition, it guards
// the circuit-construction path: an invariant panic inside the simulator
// internals surfaces as an error wrapping ErrSimulatorFault.
func NewFPGA(opts FPGAOptions) (p Partitioner, err error) {
	defer guardSimulator(&err)
	if opts.TupleWidth == 0 {
		opts.TupleWidth = 8
	}
	if opts.Platform == nil {
		opts.Platform = platform.XeonFPGA()
	}
	if err := opts.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	cfg := core.Config{
		NumPartitions:        opts.Partitions,
		TupleWidth:           opts.TupleWidth,
		Hash:                 opts.Hash,
		PadFraction:          opts.PadFraction,
		DisableForwarding:    opts.DisableForwarding,
		DisableWriteCombiner: opts.DisableWriteCombiner,
		Trace:                opts.Trace,
	}
	if opts.Format == PadMode {
		cfg.Format = core.PAD
	}
	if opts.Layout == ColumnStore {
		cfg.Layout = core.VRID
	}
	curve := opts.Platform.FPGAAlone
	if opts.Interfered {
		curve = opts.Platform.FPGAInterfered
	}
	if opts.ExtendedEndpoint {
		curve = curve.Scale(0.8)
	}
	circuit, err := core.NewCircuit(cfg, opts.Platform.FPGAClockHz, curve)
	if err != nil {
		return nil, err
	}
	return &fpgaPartitioner{opts: opts, circuit: circuit}, nil
}

func (p *fpgaPartitioner) Name() string {
	return fmt.Sprintf("fpga-%v/%v", p.circuit.Config().Format, p.circuit.Config().Layout)
}

func (p *fpgaPartitioner) Partition(rel *workload.Relation) (result *Result, err error) {
	defer guardSimulator(&err)
	if p.opts.ExtendedEndpoint {
		// Input plus (roughly input-sized) output must fit the extended
		// end-point's 2 GB allocation cap.
		if need := int64(rel.Bytes()) * 2; need > platform.ExtendedEndpointMaxBytes {
			return nil, fmt.Errorf("partition: %d bytes exceed the extended QPI end-point's %d-byte allocation cap",
				need, int64(platform.ExtendedEndpointMaxBytes))
		}
	}
	out, stats, err := p.circuit.Partition(rel)
	if err != nil && errors.Is(err, core.ErrPartitionOverflow) {
		if !p.opts.DisableFallback {
			return p.fallback(rel, stats)
		}
		return nil, fmt.Errorf("partition: %w", ErrOverflow)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		numPartitions: out.NumPartitions,
		elapsed:       stats.Elapsed,
		simulated:     true,
		fpgaWritten:   true,
		fpga:          out,
		Stats:         snapshot(stats),
		Trace:         p.opts.Trace,
	}, nil
}

// fallback reruns the partitioning on the CPU after a PAD overflow. The
// aborted FPGA attempt's (simulated) time is charged on top of the measured
// CPU time, as the paper describes: "the procedure has to start from the
// beginning" (Section 5.4).
func (p *fpgaPartitioner) fallback(rel *workload.Relation, aborted *core.Stats) (*Result, error) {
	if rel.Layout == workload.ColumnLayout {
		// The CPU fallback mirrors VRID semantics: it partitions <key, VRID>
		// tuples materialized from the key column, so downstream consumers
		// see the same payload convention either way.
		rows, err := workload.NewRelation(workload.RowLayout, 8, rel.NumTuples)
		if err != nil {
			return nil, err
		}
		for i, k := range rel.Keys {
			rows.SetTuple(i, k, uint32(i))
		}
		rel = rows
	}
	cpu, err := cpupart.Partition(rel, cpupart.Config{
		NumPartitions: p.opts.Partitions,
		Hash:          p.opts.Hash,
		Threads:       p.opts.FallbackThreads,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		numPartitions: cpu.NumPartitions,
		elapsed:       aborted.Elapsed + cpu.Elapsed,
		fellBack:      true,
		cpu:           cpu,
		Stats:         snapshot(aborted),
		Trace:         p.opts.Trace,
	}, nil
}

func snapshot(s *core.Stats) FPGAStats {
	return FPGAStats{
		Cycles:              s.Cycles,
		LinesRead:           s.LinesRead,
		LinesWritten:        s.LinesWritten,
		TuplesIn:            s.TuplesIn,
		TuplesOut:           s.TuplesOut,
		Dummies:             s.Dummies,
		StallsHazard:        s.StallsHazard,
		ForwardedHazards:    s.ForwardedHazards,
		StallsBackpressure:  s.StallsBackpressure,
		PageTranslations:    s.PageTranslations,
		HistogramCycles:     s.HistogramCycles,
		FlushCycles:         s.FlushCycles,
		HashPipelineBubbles: s.HashPipelineBubbles,
		CombinerBRAMReads:   s.CombinerBRAMReads,
		CombinerBRAMWrites:  s.CombinerBRAMWrites,
		Overflowed:          s.Overflowed,
		OverflowAtTuple:     s.OverflowAtTuple,
	}
}
