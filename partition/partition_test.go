package partition

import (
	"errors"
	"sort"
	"testing"

	"fpgapart/workload"
)

func genRel(t *testing.T, n int, seed int64) *workload.Relation {
	t.Helper()
	rel, err := workload.NewGenerator(seed).Relation(workload.Random, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// multiset collects all (key,payload) pairs of a result, sorted.
func multiset(r *Result) []uint64 {
	var all []uint64
	for p := 0; p < r.NumPartitions(); p++ {
		r.Each(p, func(k, pay uint32) {
			all = append(all, uint64(k)<<32|uint64(pay))
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func TestCPUAndFPGABackendsAgree(t *testing.T) {
	rel := genRel(t, 20000, 3)
	cpu, err := NewCPU(CPUOptions{Partitions: 128, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := NewFPGA(FPGAOptions{Partitions: 128, Hash: true, Format: HistMode})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cpu.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fpga.Partition(rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if cr.Simulated() || !fr.Simulated() {
		t.Error("Simulated flags wrong")
	}
	if cr.FPGAWritten() || !fr.FPGAWritten() {
		t.Error("FPGAWritten flags wrong")
	}
	if cr.TotalTuples() != 20000 || fr.TotalTuples() != 20000 {
		t.Fatalf("totals: %d %d", cr.TotalTuples(), fr.TotalTuples())
	}
	for p := 0; p < 128; p++ {
		if cr.Count(p) != fr.Count(p) {
			t.Fatalf("partition %d: CPU %d tuples, FPGA %d", p, cr.Count(p), fr.Count(p))
		}
	}
	cm, fm := multiset(cr), multiset(fr)
	for i := range cm {
		if cm[i] != fm[i] {
			t.Fatal("backends produced different tuple multisets")
		}
	}
}

func TestSlotViewSkipsDummies(t *testing.T) {
	rel := genRel(t, 10007, 5)
	fpga, err := NewFPGA(FPGAOptions{Partitions: 64, Hash: true, Format: HistMode})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpga.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	var valid int64
	for p := 0; p < 64; p++ {
		slots := res.SlotCount(p)
		if slots < int(res.Count(p)) {
			t.Fatalf("partition %d: %d slots < %d tuples", p, slots, res.Count(p))
		}
		for i := 0; i < slots; i++ {
			if _, _, ok := res.Slot(p, i); ok {
				valid++
			}
		}
	}
	if valid != 10007 {
		t.Fatalf("valid slots = %d, want 10007", valid)
	}
}

func TestPadOverflowFallsBackToCPU(t *testing.T) {
	g := workload.NewGenerator(7)
	rel, err := g.ZipfRelation(1.0, 50000, 8, 30000)
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.15, FallbackThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpga.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() {
		t.Fatal("expected CPU fallback on skewed input")
	}
	if res.FPGAWritten() || res.Simulated() {
		t.Error("fallback result mislabeled")
	}
	if res.TotalTuples() != 30000 {
		t.Errorf("TotalTuples = %d", res.TotalTuples())
	}
	if res.Stats.Cycles == 0 {
		t.Error("aborted attempt's cycles not recorded")
	}
}

func TestPadOverflowWithoutFallback(t *testing.T) {
	g := workload.NewGenerator(9)
	rel, err := g.ZipfRelation(1.0, 50000, 8, 30000)
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fpga.Partition(rel); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestColumnStoreMode(t *testing.T) {
	rel := genRel(t, 15000, 11)
	col := rel.ToColumns()
	fpga, err := NewFPGA(FPGAOptions{Partitions: 64, Hash: true, Format: PadMode, Layout: ColumnStore, PadFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpga.Partition(col)
	if err != nil {
		t.Fatal(err)
	}
	// Payloads are VRIDs; materialize and verify.
	n := 0
	for p := 0; p < 64; p++ {
		res.Each(p, func(k, vrid uint32) {
			if col.Keys[vrid] != k {
				t.Fatalf("VRID %d maps to %#x, want %#x", vrid, col.Keys[vrid], k)
			}
			n++
		})
	}
	if n != 15000 {
		t.Fatalf("materialized %d tuples", n)
	}
}

func TestNames(t *testing.T) {
	cpu, _ := NewCPU(CPUOptions{Partitions: 8, Hash: true})
	if cpu.Name() != "cpu-hash-buffered" {
		t.Errorf("cpu name = %q", cpu.Name())
	}
	naive, _ := NewCPU(CPUOptions{Partitions: 8, Naive: true})
	if naive.Name() != "cpu-radix-naive" {
		t.Errorf("naive name = %q", naive.Name())
	}
	fpga, _ := NewFPGA(FPGAOptions{Partitions: 8, Format: PadMode, Layout: ColumnStore})
	if fpga.Name() != "fpga-PAD/VRID" {
		t.Errorf("fpga name = %q", fpga.Name())
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := NewCPU(CPUOptions{Partitions: 8, Naive: true, MultiPass: true}); err == nil {
		t.Error("conflicting CPU algorithms accepted")
	}
	if _, err := NewFPGA(FPGAOptions{Partitions: 100}); err == nil {
		t.Error("non-power-of-two fan-out accepted")
	}
	if _, err := NewFPGA(FPGAOptions{Partitions: 64, TupleWidth: 12}); err == nil {
		t.Error("bad tuple width accepted")
	}
}

func TestFPGAStatsExposed(t *testing.T) {
	rel := genRel(t, 8000, 13)
	fpga, _ := NewFPGA(FPGAOptions{Partitions: 64, Hash: true, Format: HistMode})
	res, err := fpga.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Cycles == 0 || s.LinesRead == 0 || s.LinesWritten == 0 {
		t.Errorf("stats not populated: %+v", s)
	}
	if s.StallsHazard != 0 {
		t.Errorf("hazard stalls = %d with forwarding enabled", s.StallsHazard)
	}
	if s.HistogramCycles == 0 {
		t.Error("histogram cycles missing in HIST mode")
	}
}

func TestInterferedSlower(t *testing.T) {
	rel := genRel(t, 100000, 17)
	alone, _ := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.5})
	inter, _ := NewFPGA(FPGAOptions{Partitions: 256, Hash: true, Format: PadMode, PadFraction: 0.5, Interfered: true})
	ra, err := alone.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := inter.Partition(rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ri.Elapsed() <= ra.Elapsed() {
		t.Errorf("interfered run (%v) not slower than alone (%v)", ri.Elapsed(), ra.Elapsed())
	}
}
