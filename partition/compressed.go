package partition

import (
	"fmt"

	"fpgapart/codec"
	"fpgapart/internal/core"
	"fpgapart/platform"
)

// FPGACompressed partitions an RLE-compressed key column on the simulated
// FPGA circuit: decompression happens inside the pipeline "for free"
// (Section 6 of the paper), so the QPI read channel carries only the
// compressed bytes and the saved bandwidth becomes partitioning throughput.
// The options must select ColumnStore layout (output tuples are <key, VRID>,
// as in plain VRID mode); PAD overflow has no CPU fallback here — compressed
// skewed columns should use HistMode.
func FPGACompressed(opts FPGAOptions, col *codec.RLEColumn) (result *Result, err error) {
	defer guardSimulator(&err)
	if opts.TupleWidth == 0 {
		opts.TupleWidth = 8
	}
	if opts.Platform == nil {
		opts.Platform = platform.XeonFPGA()
	}
	if opts.Layout != ColumnStore {
		return nil, fmt.Errorf("partition: compressed input requires ColumnStore layout")
	}
	cfg := core.Config{
		NumPartitions: opts.Partitions,
		TupleWidth:    opts.TupleWidth,
		Hash:          opts.Hash,
		Layout:        core.VRID,
		PadFraction:   opts.PadFraction,
		Trace:         opts.Trace,
	}
	if opts.Format == PadMode {
		cfg.Format = core.PAD
	}
	curve := opts.Platform.FPGAAlone
	if opts.Interfered {
		curve = opts.Platform.FPGAInterfered
	}
	circuit, err := core.NewCircuit(cfg, opts.Platform.FPGAClockHz, curve)
	if err != nil {
		return nil, err
	}
	out, stats, err := circuit.PartitionCompressed(col)
	if err != nil {
		return nil, err
	}
	return &Result{
		numPartitions: out.NumPartitions,
		elapsed:       stats.Elapsed,
		simulated:     true,
		fpgaWritten:   true,
		fpga:          out,
		Stats:         snapshot(stats),
		Trace:         opts.Trace,
	}, nil
}
