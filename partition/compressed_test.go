package partition

import (
	"testing"

	"fpgapart/codec"
)

func TestFPGACompressedMatchesPlainColumn(t *testing.T) {
	// A sorted key column compresses well and partitions identically to the
	// uncompressed path.
	keys := make([]uint32, 20000)
	for i := range keys {
		keys[i] = uint32(i/50) + 1 // runs of 50
	}
	col := codec.CompressRLE(keys)
	if col.Ratio() < 10 {
		t.Fatalf("test column only compresses %.1fx", col.Ratio())
	}
	res, err := FPGACompressed(FPGAOptions{
		Partitions: 64, Hash: true, Format: HistMode, Layout: ColumnStore,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTuples() != 20000 {
		t.Fatalf("TotalTuples = %d", res.TotalTuples())
	}
	if !res.Simulated() || !res.FPGAWritten() {
		t.Error("flags wrong")
	}
	// Every tuple materializes correctly through its VRID.
	n := 0
	for p := 0; p < 64; p++ {
		res.Each(p, func(k, vrid uint32) {
			if keys[vrid] != k {
				t.Fatalf("VRID %d: key %#x, want %#x", vrid, k, keys[vrid])
			}
			n++
		})
	}
	if n != 20000 {
		t.Fatalf("materialized %d", n)
	}
	// Read traffic is the compressed column, not the raw keys.
	rawLines := int64((20000*4 + 63) / 64)
	if res.Stats.LinesRead >= rawLines {
		t.Errorf("LinesRead = %d, want fewer than the %d raw lines", res.Stats.LinesRead, rawLines)
	}
}

func TestFPGACompressedRequiresColumnStore(t *testing.T) {
	col := codec.CompressRLE([]uint32{1, 2, 3})
	if _, err := FPGACompressed(FPGAOptions{Partitions: 8, Format: PadMode}, col); err == nil {
		t.Error("row-store layout accepted for compressed input")
	}
}

func TestFPGACompressedValidatesOptions(t *testing.T) {
	col := codec.CompressRLE([]uint32{1})
	if _, err := FPGACompressed(FPGAOptions{Partitions: 5, Layout: ColumnStore}, col); err == nil {
		t.Error("bad fan-out accepted")
	}
}
