// Command partserver runs the multi-tenant FPGA/CPU job scheduler over a
// deterministic synthetic job trace and prints per-job outcomes and
// scheduler metrics.
//
// Usage:
//
//	partserver run -jobs 32 -fpgas 2 -workers 2 -seed 7
//	partserver run -jobs 64 -faulty -trace trace.json -metrics metrics.json
//
// The same -seed and trace parameters always produce byte-identical
// placement decisions, simtrace output, and results; -trace writes the
// per-resource timeline in the Chrome trace-event format and -metrics the
// scheduler counter snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
	"fpgapart/partserver"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "run" {
		usage()
		os.Exit(2)
	}
	runCmd(os.Args[2:])
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  partserver run [-jobs n] [-fpgas n] [-workers n] [-seed n] [-queue n] [-batch n]
                 [-gap us] [-faulty] [-trace file] [-metrics file]
                 [-reqtrace file] [-flight file] [-v]
`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("partserver run", flag.ExitOnError)
	var (
		jobs    = fs.Int("jobs", 32, "number of jobs in the generated trace")
		fpgas   = fs.Int("fpgas", 2, "simulated FPGA partitioner instances")
		workers = fs.Int("workers", 1, "CPU partitioner workers")
		seed    = fs.Uint64("seed", 7, "scheduler + trace seed")
		queue   = fs.Int("queue", 0, "admission queue depth (0 = default 8)")
		batchN  = fs.Int("batch", 0, "max jobs per FPGA batch (0 = default 4)")
		gap     = fs.Int64("gap", 0, "mean virtual inter-arrival gap in µs (0 = default 500)")
		faulty  = fs.Bool("faulty", false, "inject FPGA faults: 10% transient faults plus a mid-trace crash of instance 0")
		trace   = fs.String("trace", "", "write the Chrome trace-event timeline to this file")
		metrics = fs.String("metrics", "", "write the scheduler metrics snapshot (JSON) to this file")
		reqTr   = fs.String("reqtrace", "", "write per-job latency breakdowns (JSON) to this file and print the critical-path profile")
		flight  = fs.String("flight", "", "write the flight-recorder postmortem (text) to this file")
		verbose = fs.Bool("v", false, "print one line per job")
	)
	fs.Parse(args)

	jl, err := partserver.GenerateTrace(*seed, *jobs, partserver.TraceOptions{MeanGapUS: *gap})
	if err != nil {
		fatal(err)
	}
	cfg := partserver.Config{
		FPGAs:      *fpgas,
		Workers:    *workers,
		Seed:       *seed,
		QueueDepth: *queue,
		BatchMax:   *batchN,
	}
	if *faulty {
		cfg.Faults = &faults.Scenario{
			Seed:     *seed,
			DropProb: 0.1,
			Crashes:  []faults.Crash{{Node: 0, AfterFraction: 0.5}},
		}
	}
	sess := simtrace.NewSession()
	cfg.Trace = sess
	var rec *reqtrace.Recorder
	if *reqTr != "" || *flight != "" {
		rec = reqtrace.NewRecorder(0)
		cfg.Record = rec
	}

	rep, err := partserver.Run(jl, cfg)
	if err != nil {
		// The recorder's flight ring survives the failure — dump the
		// postmortem before exiting so the fault has causal context.
		if rec != nil && *flight != "" {
			cause := err.Error()
			if werr := writeFile(*flight, func(w io.Writer) error {
				return reqtrace.WritePostmortem(w, cause, rec.FlightEvents(), rec.FlightDropped())
			}); werr == nil {
				fmt.Fprintf(os.Stderr, "partserver: postmortem written to %s\n", *flight)
			}
		}
		fatal(err)
	}

	if *verbose {
		for _, r := range rep.Results {
			fmt.Printf("job %3d  %-9s %-4s inst=%-2d attempts=%d degraded=%-5v wait=%6dus exec=%6dus tuples=%7d checksum=%08x",
				r.ID, r.Status, r.Placement, r.Instance, r.Attempts, r.Degraded, r.QueueWaitUS, r.ExecUS, r.Tuples, r.Checksum)
			if r.Matches > 0 {
				fmt.Printf(" matches=%d", r.Matches)
			}
			if r.Err != "" {
				fmt.Printf(" err=%q", r.Err)
			}
			fmt.Println()
		}
	}
	fmt.Printf("jobs=%d makespan=%dus placed fpga=%d cpu=%d degraded=%d failed_instances=%v\n",
		len(rep.Results), rep.MakespanUS, rep.PlacedFPGA, rep.PlacedCPU, rep.Degraded, rep.FailedInstances)
	fmt.Print(sess.Summary())

	var traces []reqtrace.RequestTrace
	if rec != nil {
		traces = reqtrace.BuildJobs(*seed, rec.Jobs())
		reqtrace.EmitChrome(sess, traces)
		fmt.Print(reqtrace.Analyze(traces, 5).Format())
	}
	if *reqTr != "" {
		if err := writeFile(*reqTr, func(w io.Writer) error {
			return reqtrace.WriteBreakdownJSON(w, traces)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("job breakdowns written to %s\n", *reqTr)
	}
	if *flight != "" {
		if err := writeFile(*flight, func(w io.Writer) error {
			return reqtrace.WritePostmortem(w, "none (run completed)", rec.FlightEvents(), rec.FlightDropped())
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("flight postmortem written to %s\n", *flight)
	}
	if *trace != "" {
		if err := writeFile(*trace, sess.Tracer.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *trace)
	}
	if *metrics != "" {
		snap := sess.Snapshot()
		if err := writeFile(*metrics, snap.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partserver:", err)
	os.Exit(1)
}
