// Command cluster runs the sharded serving frontend over a deterministic
// open-loop request stream: a consistent-hash ring routes tenant requests
// across N partserver shards, results scatter-gather back into one report,
// and the latency distribution (avg/p95/p99, QPS) comes off the shared
// virtual clock.
//
// Usage:
//
//	cluster run -requests 64 -shards 3 -seed 7
//	cluster run -requests 128 -hot 0.5 -quota 2 -faulty -report rep.json
//	cluster run -requests 96 -schedule "join:3@4000,drain:1@9000"
//	cluster run -requests 96 -replicas 2 -hedge-us 400 -straggler 1:8
//
// The same flags always produce byte-identical routing decisions, reports,
// traces and metrics; -report writes the full per-request report JSON,
// -trace the Chrome trace-event timeline, -metrics the counter snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fpgapart/cluster"
	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "run" {
		usage()
		os.Exit(2)
	}
	runCmd(os.Args[2:])
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  cluster run [-requests n] [-shards n] [-vnodes n] [-fpgas n] [-workers n]
              [-seed n] [-tenants n] [-hot frac] [-quota n] [-window us]
              [-gap us] [-schedule events] [-replicas n] [-hedge-us us]
              [-straggler shard:factor] [-faulty] [-report file]
              [-trace file] [-metrics file] [-reqtrace file] [-flight file] [-v]

  -schedule is a comma-separated membership churn plan of
  "<join|drain>:<shard>@<at_us>" events, e.g. "join:3@4000,drain:1@9000".
  -hedge-us enables hedged reads (needs -replicas >= 2): a positive value is
  a fixed virtual deadline, -1 tracks the running p95.
`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("cluster run", flag.ExitOnError)
	var (
		requests = fs.Int("requests", 64, "number of requests in the generated stream")
		shards   = fs.Int("shards", 3, "partserver shards behind the ring")
		vnodes   = fs.Int("vnodes", 128, "virtual nodes per shard on the ring")
		fpgas    = fs.Int("fpgas", 1, "simulated FPGA instances per shard")
		workers  = fs.Int("workers", 1, "CPU partitioner workers per shard")
		seed     = fs.Uint64("seed", 7, "ring + stream + shard-scheduler seed")
		tenants  = fs.Int("tenants", 8, "number of tenants issuing requests")
		hot      = fs.Float64("hot", 0, "fraction of the stream issued by hot tenant 0")
		quota    = fs.Int("quota", 0, "per-tenant admitted requests per window (0 = no quota)")
		window   = fs.Int64("window", 0, "admission window in µs (0 = default 1000)")
		gap      = fs.Int64("gap", 0, "mean virtual inter-arrival gap in µs (0 = default 200)")
		schedule = fs.String("schedule", "", "membership churn plan: comma-separated <join|drain>:<shard>@<at_us> events")
		replicas = fs.Int("replicas", 0, "replica-set width R (0 = default 1; hedging needs >= 2)")
		hedgeUS  = fs.Int64("hedge-us", 0, "hedged-read deadline in µs (>0 fixed, -1 running p95, 0 off)")
		strag    = fs.String("straggler", "", "straggle one shard: <shard>:<factor>, e.g. 1:8")
		faulty   = fs.Bool("faulty", false, "fail-stop shard 1 after 40% of its share; requests fail over clockwise")
		report   = fs.String("report", "", "write the full request-level report (JSON) to this file")
		trace    = fs.String("trace", "", "write the Chrome trace-event timeline to this file")
		metrics  = fs.String("metrics", "", "write the cluster metrics snapshot (JSON) to this file")
		reqTr    = fs.String("reqtrace", "", "write per-request latency breakdowns (JSON) to this file and print the critical-path profile")
		flight   = fs.String("flight", "", "write the flight-recorder postmortem (text) to this file")
		verbose  = fs.Bool("v", false, "print one line per request")
	)
	fs.Parse(args)

	reqs, err := cluster.GenerateLoad(*seed, *requests, cluster.LoadOptions{
		Tenants:        *tenants,
		HotTenantShare: *hot,
		MeanGapUS:      *gap,
	})
	if err != nil {
		fatal(err)
	}
	sched, err := cluster.ParseMembershipSchedule(*schedule)
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Config{
		Shards:        *shards,
		VNodes:        *vnodes,
		ShardFPGAs:    *fpgas,
		ShardWorkers:  *workers,
		TenantQuota:   *quota,
		QuotaWindowUS: *window,
		Schedule:      sched,
		Replicas:      *replicas,
		HedgeUS:       *hedgeUS,
		Seed:          *seed,
	}
	if *faulty {
		if *shards < 2 {
			fatal(fmt.Errorf("-faulty needs at least 2 shards to fail over to"))
		}
		cfg.Faults = &faults.Scenario{
			Seed:    *seed,
			Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.4}},
		}
	}
	if *strag != "" {
		var node int
		var factor float64
		if _, err := fmt.Sscanf(*strag, "%d:%g", &node, &factor); err != nil {
			fatal(fmt.Errorf("-straggler %q: want <shard>:<factor>: %w", *strag, err))
		}
		if cfg.Faults == nil {
			cfg.Faults = &faults.Scenario{Seed: *seed}
		}
		cfg.Faults.Stragglers = append(cfg.Faults.Stragglers, faults.Straggler{Node: node, Factor: factor})
	}
	sess := simtrace.NewSession()
	cfg.Trace = sess
	var capt *reqtrace.Capture
	if *reqTr != "" || *flight != "" {
		capt = &reqtrace.Capture{}
		cfg.ReqTrace = capt
	}

	rep, err := cluster.Run(reqs, cfg)
	if err != nil {
		// The capture's flight timeline survives the failure — dump the
		// postmortem before exiting so the fault has causal context.
		if capt != nil && *flight != "" {
			cause := err.Error()
			if werr := writeFile(*flight, func(w io.Writer) error {
				return capt.WritePostmortem(w, cause)
			}); werr == nil {
				fmt.Fprintf(os.Stderr, "cluster: postmortem written to %s\n", *flight)
			}
		}
		fatal(err)
	}

	if *verbose {
		for i := range rep.Results {
			r := &rep.Results[i]
			fmt.Printf("req %3d  tenant=%-3d shard=%-2d %-9s rerouted=%-5v throttled=%-5v lat=%6dus tuples=%7d checksum=%08x",
				r.Index, r.Tenant, r.Shard, r.Status, r.Rerouted, r.Throttled, r.LatencyUS, r.Tuples, r.Checksum)
			if r.Matches > 0 {
				fmt.Printf(" matches=%d", r.Matches)
			}
			fmt.Println()
		}
	}
	fmt.Printf("requests=%d done=%d failed=%d throttled=%d rerouted=%d failed_shards=%v\n",
		rep.Requests, rep.Done, rep.Failed, rep.Throttled, rep.Rerouted, rep.FailedShards)
	fmt.Printf("latency avg=%dus p50=%dus p95=%dus p99=%dus qps=%d.%02d\n",
		rep.LatAvgUS, rep.LatP50US, rep.LatP95US, rep.LatP99US,
		rep.QPSx100/100, rep.QPSx100%100)
	fmt.Printf("join of shard %d would move %d.%02d%% of keys (modulo baseline: %d.%02d%%)\n",
		*shards,
		rep.MovedRingX10000/100, rep.MovedRingX10000%100,
		rep.MovedModX10000/100, rep.MovedModX10000%100)
	for j := range rep.MembershipEvents {
		ev := &rep.MembershipEvents[j]
		fmt.Printf("membership: %s shard %d at %dus moved %d.%02d%% of keys\n",
			ev.Kind, ev.Shard, ev.AtUS,
			rep.EventMovedX10000[j]/100, rep.EventMovedX10000[j]%100)
	}
	if rep.HandoffDelayed > 0 {
		fmt.Printf("handoff: %d requests waited %dus total behind drain barriers\n",
			rep.HandoffDelayed, rep.HandoffWaitUS)
	}
	if rep.HedgedRun {
		fmt.Printf("hedging: issued=%d won=%d cancelled=%d saved=%dus wasted=%dus\n",
			rep.HedgeIssued, rep.HedgeWon, rep.HedgeCancelled, rep.HedgeSavedUS, rep.HedgeWastedUS)
	}
	for s := range rep.ShardJobs {
		fmt.Printf("shard %d: jobs=%d makespan=%dus\n", s, rep.ShardJobs[s], rep.ShardMakespanUS[s])
	}

	if *report != "" {
		if err := writeFile(*report, rep.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *report)
	}
	if capt != nil {
		// Causal layer into the Chrome trace: per-request root spans plus
		// flow arrows binding each cross-component handoff.
		reqtrace.EmitChrome(sess, capt.Traces)
		fmt.Print(reqtrace.Analyze(capt.Traces, 5).Format())
	}
	if *reqTr != "" {
		if err := writeFile(*reqTr, func(w io.Writer) error {
			return reqtrace.WriteBreakdownJSON(w, capt.Traces)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("request breakdowns written to %s\n", *reqTr)
	}
	if *flight != "" {
		if err := writeFile(*flight, func(w io.Writer) error {
			return capt.WritePostmortem(w, "none (run completed)")
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("flight postmortem written to %s\n", *flight)
	}
	if *trace != "" {
		if err := writeFile(*trace, sess.Tracer.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *trace)
	}
	if *metrics != "" {
		snap := sess.Snapshot()
		if err := writeFile(*metrics, snap.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
