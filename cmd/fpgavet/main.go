// Command fpgavet is the project's custom static-analysis suite. It loads
// every package of the module with the standard library's go/parser +
// go/types and enforces the invariants the compiler cannot see — simulator
// determinism, the ErrSimulatorFault panic boundary, %w/errors.Is error
// hygiene, and the clocked-component discipline (see internal/lint).
//
// Usage:
//
//	fpgavet [-C moduleDir] [-analyzers a,b,c] [packages...]
//
// With no package arguments (or ./...), the whole module is checked.
// Package arguments are module-relative directory paths (./distjoin) and
// filter the reported packages. Findings print as
//
//	path/file.go:line:col: [analyzer] message
//
// which is clickable in most terminals. Exit status: 0 clean, 1 findings,
// 2 operational error. Individual findings can be suppressed with an
// explicit `//fpgavet:allow <analyzer> [reason]` comment on the offending
// line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpgapart/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	modDir := flag.String("C", "", "module directory (default: nearest go.mod above the working directory)")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	dir := *modDir
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
			return 2
		}
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}
	pkgs = filterPackages(pkgs, loader.ModPath, flag.Args())

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		f.Pos.Filename = relativize(dir, f.Pos.Filename)
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fpgavet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectAnalyzers(names string) ([]lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: determinism, panic-boundary, error-hygiene, clocked-component)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages matching the command-line patterns.
// "./..." (or no patterns) keeps everything; "./dir" keeps that directory's
// package.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) []*lint.Package {
	var dirs []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == modPath {
			return pkgs
		}
		p = strings.TrimSuffix(p, "/...")
		p = strings.TrimPrefix(p, "./")
		dirs = append(dirs, strings.Trim(p, "/"))
	}
	if len(dirs) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// relativize shortens absolute finding paths to module-relative ones.
func relativize(modDir, filename string) string {
	if rel, err := filepath.Rel(modDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
