// Command fpgavet is the project's custom static-analysis suite. It loads
// every package of the module with the standard library's go/parser +
// go/types, builds a whole-module call graph, and enforces the invariants
// the compiler cannot see — simulator determinism, call-graph reachability
// of internal panic sites from the public API (boundary-reach), %w/errors.Is
// error hygiene, the clocked-component discipline, byte-pinned BENCH
// marshaling, host-time taint flow, and hot-path allocation freedom (see
// internal/lint).
//
// Usage:
//
//	fpgavet [-C moduleDir] [-analyzers a,b,c] [-json] [-list] [packages...]
//
// With no package arguments (or ./...), the whole module is checked.
// Package arguments are module-relative directory paths (./distjoin) and
// filter the reported packages. Findings print as
//
//	path/file.go:line:col: [analyzer] message
//
// which is clickable in most terminals. -json switches the report to a
// machine-readable array (stable field order, one object per finding);
// -list prints the available analyzers with their one-line docs and exits.
// Exit status: 0 clean, 1 findings, 2 operational error. Individual
// findings can be suppressed with an explicit `//fpgavet:allow <analyzer>
// [reason]` comment on any line the offending statement spans or the line
// above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpgapart/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	modDir := flag.String("C", "", "module directory (default: nearest go.mod above the working directory)")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "report findings as a JSON array instead of file:line:col lines")
	list := flag.Bool("list", false, "list the available analyzers with their one-line docs and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := *modDir
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
			return 2
		}
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpgavet: %v\n", err)
		return 2
	}
	pkgs = filterPackages(pkgs, loader.ModPath, flag.Args())

	findings := lint.Run(pkgs, analyzers)
	for i := range findings {
		findings[i].Pos.Filename = relativize(dir, findings[i].Pos.Filename)
		findings[i].End.Filename = relativize(dir, findings[i].End.Filename)
	}
	if *asJSON {
		printJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fpgavet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printJSON writes the findings as a JSON array. The fields are emitted by
// hand in a fixed order — the same field-by-field discipline the bench-json
// analyzer enforces on the BENCH write path — so the output bytes depend
// only on the findings, never on marshaling internals.
func printJSON(findings []lint.Finding) {
	var b strings.Builder
	b.WriteString("[")
	for i, f := range findings {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  {")
		fmt.Fprintf(&b, "\"file\":%s,", jsonString(f.Pos.Filename))
		fmt.Fprintf(&b, "\"line\":%d,\"col\":%d,", f.Pos.Line, f.Pos.Column)
		fmt.Fprintf(&b, "\"endLine\":%d,\"endCol\":%d,", f.End.Line, f.End.Column)
		fmt.Fprintf(&b, "\"analyzer\":%s,", jsonString(f.Analyzer))
		fmt.Fprintf(&b, "\"message\":%s", jsonString(f.Message))
		b.WriteString("}")
	}
	if len(findings) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	fmt.Print(b.String())
}

// jsonString quotes s as a JSON string: backslash, quote and control bytes
// escaped, everything else (including multi-byte UTF-8) passed through.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
				continue
			}
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectAnalyzers(names string) ([]lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			var have []string
			for _, a := range all {
				have = append(have, a.Name())
			}
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(have, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages matching the command-line patterns.
// "./..." (or no patterns) keeps everything; "./dir" keeps that directory's
// package.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) []*lint.Package {
	var dirs []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == modPath {
			return pkgs
		}
		p = strings.TrimSuffix(p, "/...")
		p = strings.TrimPrefix(p, "./")
		dirs = append(dirs, strings.Trim(p, "/"))
	}
	if len(dirs) == 0 {
		return pkgs
	}
	var out []*lint.Package
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// relativize shortens absolute finding paths to module-relative ones.
func relativize(modDir, filename string) string {
	if rel, err := filepath.Rel(modDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
