// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp all                # every experiment at the default scale
//	repro -exp fig9 -scale 0.125  # one experiment at 1/8 of paper scale
//	repro -list
//
// Scale multiplies the paper's relation sizes (1.0 = the full 128 M-tuple
// workloads); the default 1/16 finishes the whole suite in minutes on a
// laptop while preserving every reported shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fpgapart/experiments"
	"fpgapart/internal/perfbench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or \"all\"")
		list       = flag.Bool("list", false, "list experiments and exit")
		scale      = flag.Float64("scale", 1.0/16, "fraction of the paper's relation sizes")
		seed       = flag.Int64("seed", 42, "workload generator seed")
		maxThreads = flag.Int("threads", 0, "thread sweep ceiling (0 = min(10, cores))")
		csvDir     = flag.String("csv", "", "also write <dir>/<exp>.csv per experiment")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	stopProfiles, err := perfbench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, MaxThreads: *maxThreads}.WithDefaults()
	fmt.Printf("fpgapart reproduction — scale %.4g, seed %d, ≤%d threads\n", cfg.Scale, cfg.Seed, cfg.MaxThreads)

	run := func(e experiments.Experiment) {
		start := time.Now()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			file, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := experiments.WriteCSV(cfg, e.ID, file); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := file.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("[%s csv written to %s in %v]\n", e.ID, path, time.Since(start).Round(time.Millisecond))
			return
		}
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.Find(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "use -list to see available experiments")
		os.Exit(2)
	}
	run(e)
}
