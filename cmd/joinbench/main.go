// Command joinbench runs radix hash joins — pure CPU, hybrid CPU+FPGA, or
// non-partitioned — on the paper's workloads and prints the phase breakdown.
//
// Examples:
//
//	joinbench -workload A -scale 0.0625 -system hybrid -format pad
//	joinbench -workload E -system cpu -hash=false
//	joinbench -workload A -zipf 1.25 -system hybrid -format hist
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgapart/hashjoin"
	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "A", "Table 4 workload: A, B, C, D or E")
		scale   = flag.Float64("scale", 1.0/16, "fraction of the paper's relation sizes")
		system  = flag.String("system", "hybrid", "cpu, hybrid or nopart")
		parts   = flag.Int("partitions", 8192, "fan-out")
		threads = flag.Int("threads", 0, "build+probe threads (0 = all cores)")
		hash    = flag.Bool("hash", true, "murmur hash partitioning")
		format  = flag.String("format", "pad", "hybrid FPGA mode: hist or pad")
		vrid    = flag.Bool("vrid", false, "hybrid column-store (VRID) mode")
		zipf    = flag.Float64("zipf", 0, "skew S with this Zipf factor (>0)")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	spec, err := workload.Spec(workload.WorkloadID(*wl))
	if err != nil {
		fatal(err)
	}
	spec = spec.Scaled(*scale)
	var in *workload.JoinInput
	if *zipf > 0 {
		in, err = spec.GenerateSkewed(*seed, *zipf)
	} else {
		in, err = spec.Generate(*seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: R %d ⋈ S %d tuples, %s keys\n",
		spec.ID, spec.TuplesR, spec.TuplesS, spec.Distribution)

	opts := hashjoin.Options{
		Partitions: *parts,
		Threads:    *threads,
		Hash:       *hash,
	}
	var res *hashjoin.Result
	switch *system {
	case "cpu":
		res, err = hashjoin.CPU(in.R, in.S, opts)
	case "hybrid":
		if *format == "hist" {
			opts.Format = partition.HistMode
		} else {
			opts.Format = partition.PadMode
			opts.PadFraction = 0.5
		}
		if *vrid {
			opts.Layout = partition.ColumnStore
			p, perr := partition.NewFPGA(partition.FPGAOptions{
				Partitions: *parts, Hash: *hash, Format: opts.Format,
				Layout: partition.ColumnStore, PadFraction: opts.PadFraction,
				FallbackThreads: *threads,
			})
			if perr != nil {
				fatal(perr)
			}
			res, err = hashjoin.Join(in.R.ToColumns(), in.S.ToColumns(), p, opts)
		} else {
			res, err = hashjoin.Hybrid(in.R, in.S, opts)
		}
	case "nopart":
		res, err = hashjoin.NonPartitioned(in.R, in.S, opts)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("system:        %s (%s), %d threads\n", *system, res.PartitionerName, res.Threads)
	fmt.Printf("matches:       %d (checksum %#x)\n", res.Matches, res.Checksum)
	fmt.Printf("partition R:   %v\n", res.PartitionR)
	fmt.Printf("partition S:   %v\n", res.PartitionS)
	fmt.Printf("build:         %v\n", res.Build)
	fmt.Printf("probe:         %v\n", res.Probe)
	fmt.Printf("total:         %v  (%.1f Mtuples/s over |R|+|S|)\n",
		res.Total, float64(spec.TuplesR+spec.TuplesS)/res.Total.Seconds()/1e6)
	if res.CoherencePenalized {
		fmt.Println("note:          build+probe includes the Table 1 snoop penalty")
	}
	if res.FellBack {
		fmt.Println("note:          PAD overflow — partitioning fell back to the CPU")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinbench:", err)
	os.Exit(1)
}
