// Command joinbench runs radix hash joins — pure CPU, hybrid CPU+FPGA, or
// non-partitioned — on the paper's workloads and prints the phase breakdown.
// With -nodes it runs the distributed join over the simulated RDMA fabric
// instead, optionally under a deterministic fault scenario.
//
// Examples:
//
//	joinbench -workload A -scale 0.0625 -system hybrid -format pad
//	joinbench -workload E -system cpu -hash=false
//	joinbench -workload A -zipf 1.25 -system hybrid -format hist
//	joinbench -workload A -scale 0.01 -nodes 4 -fault-seed 7 \
//	    -fault-corrupt 0.01 -fault-crash 1 -fault-degrade 0:2:0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fpgapart/distjoin"
	"fpgapart/hashjoin"
	"fpgapart/internal/faults"
	"fpgapart/internal/perfbench"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "A", "Table 4 workload: A, B, C, D or E")
		scale   = flag.Float64("scale", 1.0/16, "fraction of the paper's relation sizes")
		system  = flag.String("system", "hybrid", "cpu, hybrid or nopart")
		parts   = flag.Int("partitions", 8192, "fan-out")
		threads = flag.Int("threads", 0, "build+probe threads (0 = all cores)")
		hash    = flag.Bool("hash", true, "murmur hash partitioning")
		format  = flag.String("format", "pad", "hybrid FPGA mode: hist or pad")
		vrid    = flag.Bool("vrid", false, "hybrid column-store (VRID) mode")
		zipf    = flag.Float64("zipf", 0, "skew S with this Zipf factor (>0)")
		seed    = flag.Int64("seed", 42, "generator seed")
		budget  = flag.Int64("budget", 0, "join build memory budget in bytes (0 = unlimited; spills, recurses and broadcasts as needed, same result)")

		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON to this file (hybrid or -nodes runs)")
		metrics   = flag.Bool("metrics", false, "print the simtrace metrics summary after the run (hybrid or -nodes runs)")

		nodes = flag.Int("nodes", 0, "run the distributed join on this many simulated nodes (0 = local join)")

		faultSeed       = flag.Uint64("fault-seed", 1, "fault scenario seed (reproducible)")
		faultDrop       = flag.Float64("fault-drop", 0, "per-message drop probability")
		faultCorrupt    = flag.Float64("fault-corrupt", 0, "per-message corruption probability")
		faultDelayProb  = flag.Float64("fault-delay", 0, "per-message delay probability")
		faultDelayUS    = flag.Float64("fault-delay-us", 50, "mean extra delay of delayed messages (µs)")
		faultCrash      = flag.Int("fault-crash", -1, "node to fail-stop mid-exchange (-1 = none)")
		faultCrashAfter = flag.Float64("fault-crash-after", 0.5, "fraction of the exchange after which the node crashes")
		faultDegrade    = flag.String("fault-degrade", "", "degraded link as src:dst:factor (e.g. 0:2:0.25)")
		faultStraggle   = flag.String("fault-straggle", "", "straggler as node:factor (e.g. 3:2.5)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()

	stopProfiles, err := perfbench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
	}()

	spec, err := workload.Spec(workload.WorkloadID(*wl))
	if err != nil {
		fatal(err)
	}
	spec = spec.Scaled(*scale)
	var in *workload.JoinInput
	if *zipf > 0 {
		in, err = spec.GenerateSkewed(*seed, *zipf)
	} else {
		in, err = spec.Generate(*seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: R %d ⋈ S %d tuples, %s keys\n",
		spec.ID, spec.TuplesR, spec.TuplesS, spec.Distribution)

	var sess *simtrace.Session
	if *traceFile != "" || *metrics {
		sess = simtrace.NewSession()
	}

	if *nodes > 0 {
		scenario, err := buildScenario(*faultSeed, *faultDrop, *faultCorrupt, *faultDelayProb,
			*faultDelayUS, *faultCrash, *faultCrashAfter, *faultDegrade, *faultStraggle)
		if err != nil {
			fatal(err)
		}
		runDistributed(in, *nodes, *parts, *threads, *system, *format, scenario, sess)
		finishTrace(sess, *traceFile, *metrics)
		return
	}

	opts := hashjoin.Options{
		Partitions:        *parts,
		Threads:           *threads,
		Hash:              *hash,
		Trace:             sess,
		MemoryBudgetBytes: *budget,
	}
	var res *hashjoin.Result
	switch *system {
	case "cpu":
		res, err = hashjoin.CPU(in.R, in.S, opts)
	case "hybrid":
		if *format == "hist" {
			opts.Format = partition.HistMode
		} else {
			opts.Format = partition.PadMode
			opts.PadFraction = 0.5
		}
		if *vrid {
			opts.Layout = partition.ColumnStore
			p, perr := partition.NewFPGA(partition.FPGAOptions{
				Partitions: *parts, Hash: *hash, Format: opts.Format,
				Layout: partition.ColumnStore, PadFraction: opts.PadFraction,
				FallbackThreads: *threads, Trace: sess,
			})
			if perr != nil {
				fatal(perr)
			}
			res, err = hashjoin.Join(in.R.ToColumns(), in.S.ToColumns(), p, opts)
		} else {
			res, err = hashjoin.Hybrid(in.R, in.S, opts)
		}
	case "nopart":
		res, err = hashjoin.NonPartitioned(in.R, in.S, opts)
	default:
		fatal(fmt.Errorf("unknown system %q", *system))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("system:        %s (%s), %d threads\n", *system, res.PartitionerName, res.Threads)
	fmt.Printf("matches:       %d (checksum %#x)\n", res.Matches, res.Checksum)
	fmt.Printf("partition R:   %v\n", res.PartitionR)
	fmt.Printf("partition S:   %v\n", res.PartitionS)
	fmt.Printf("build:         %v\n", res.Build)
	fmt.Printf("probe:         %v\n", res.Probe)
	fmt.Printf("total:         %v  (%.1f Mtuples/s over |R|+|S|)\n",
		res.Total, float64(spec.TuplesR+spec.TuplesS)/res.Total.Seconds()/1e6)
	if m := res.Memory; m != nil {
		fmt.Printf("memory:        budget %d B, high water %d B\n", m.BudgetBytes, m.HighWaterBytes)
		fmt.Printf("adaptivity:    %d in-memory, %d reversed, %d spilled (%d B), %d recursions (depth %d), %d broadcasts (%d chunks)\n",
			m.InMemory, m.Reversals, m.SpilledPartitions, m.SpilledBytes, m.Recursions, m.MaxDepth, m.Broadcasts, m.BroadcastChunks)
	}
	if res.CoherencePenalized {
		fmt.Println("note:          build+probe includes the Table 1 snoop penalty")
	}
	if res.FellBack {
		fmt.Println("note:          PAD overflow — partitioning fell back to the CPU")
	}
	finishTrace(sess, *traceFile, *metrics)
}

// finishTrace prints the metrics summary and/or writes the Chrome trace file
// once the run has completed; a nil session is a no-op.
func finishTrace(sess *simtrace.Session, traceFile string, metrics bool) {
	if sess == nil {
		return
	}
	if metrics {
		fmt.Println()
		fmt.Print(sess.Summary())
	}
	if traceFile == "" {
		return
	}
	f, err := os.Create(traceFile)
	if err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
	if err := sess.Tracer.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
	fmt.Printf("trace:         %s (open in chrome://tracing or ui.perfetto.dev)\n", traceFile)
}

// buildScenario assembles the fault scenario from the CLI flags; it returns
// nil when every fault knob is at its default (fault-free run).
func buildScenario(seed uint64, drop, corrupt, delayProb, delayUS float64,
	crash int, crashAfter float64, degrade, straggle string) (*faults.Scenario, error) {
	s := &faults.Scenario{
		Seed: seed, DropProb: drop, CorruptProb: corrupt,
		DelayProb: delayProb, DelayUS: delayUS,
	}
	active := drop > 0 || corrupt > 0 || delayProb > 0
	if crash >= 0 {
		s.Crashes = append(s.Crashes, faults.Crash{Node: crash, AfterFraction: crashAfter})
		active = true
	}
	if degrade != "" {
		f, err := splitFloats(degrade, 3, "src:dst:factor")
		if err != nil {
			return nil, err
		}
		s.Links = append(s.Links, faults.Link{Src: int(f[0]), Dst: int(f[1]), Factor: f[2]})
		active = true
	}
	if straggle != "" {
		f, err := splitFloats(straggle, 2, "node:factor")
		if err != nil {
			return nil, err
		}
		s.Stragglers = append(s.Stragglers, faults.Straggler{Node: int(f[0]), Factor: f[1]})
		active = true
	}
	if !active {
		return nil, nil
	}
	return s, nil
}

func splitFloats(spec string, n int, format string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != n {
		return nil, fmt.Errorf("%q is not of the form %s", spec, format)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not of the form %s: %w", spec, format, err)
		}
		out[i] = v
	}
	return out, nil
}

func runDistributed(in *workload.JoinInput, nodes, parts, threads int, system, format string,
	scenario *faults.Scenario, sess *simtrace.Session) {
	opts := distjoin.Options{
		Nodes:             nodes,
		PartitionsPerNode: parts / nodes,
		Threads:           threads,
		Faults:            scenario,
		Trace:             sess,
	}
	if system == "hybrid" {
		opts.UseFPGA = true
		opts.Format = partition.HistMode
		if format == "pad" {
			opts.Format = partition.PadMode
		}
	}
	res, err := distjoin.Join(in.R, in.S, opts)
	if err != nil {
		fatal(err)
	}
	kind := "cpu"
	if opts.UseFPGA {
		kind = "fpga"
	}
	fmt.Printf("system:        distributed/%s, %d nodes × %d partitions\n", kind, res.Nodes, opts.PartitionsPerNode)
	fmt.Printf("matches:       %d (checksum %#x)\n", res.Matches, res.Checksum)
	fmt.Printf("partition:     %v\n", res.PartitionTime)
	fmt.Printf("exchange:      %v  (%.1f MB payload, %.1f MB resent)\n",
		res.ExchangeTime, float64(res.BytesExchanged)/1e6, float64(res.ResentBytes)/1e6)
	fmt.Printf("local join:    %v\n", res.JoinTime)
	fmt.Printf("total:         %v\n", res.Total)
	if scenario != nil {
		fmt.Printf("faults:        seed %d, %d retries, %d corrupt pieces\n",
			scenario.Seed, res.Retries, res.CorruptPieces)
	}
	if res.Degraded {
		fmt.Printf("note:          DEGRADED — node(s) %v crashed; survivors took over their partitions\n", res.FailedNodes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinbench:", err)
	os.Exit(1)
}
