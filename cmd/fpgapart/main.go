// Command fpgapart partitions a generated relation from the command line
// and prints the run's statistics — a quick way to poke at the simulated
// circuit and the CPU baseline.
//
// Examples:
//
//	fpgapart -backend fpga -n 1048576 -partitions 8192 -format pad
//	fpgapart -backend fpga -layout vrid -dist grid -hash=false
//	fpgapart -backend cpu -threads 8 -n 8388608
//	fpgapart -backend fpga -trace trace.json -metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

func main() {
	var (
		backend    = flag.String("backend", "fpga", "fpga or cpu")
		n          = flag.Int("n", 1<<20, "number of tuples")
		parts      = flag.Int("partitions", 8192, "fan-out (power of two)")
		width      = flag.Int("width", 8, "tuple width in bytes (8/16/32/64)")
		dist       = flag.String("dist", "random", "linear|random|grid|revgrid|zipf")
		zipf       = flag.Float64("zipf", 1.0, "zipf factor when -dist zipf")
		hash       = flag.Bool("hash", true, "murmur hash partitioning (false = radix)")
		format     = flag.String("format", "pad", "fpga output mode: hist or pad")
		layout     = flag.String("layout", "rid", "fpga input mode: rid or vrid")
		pad        = flag.Float64("padfraction", 0.15, "pad-mode headroom")
		threads    = flag.Int("threads", 0, "cpu backend threads (0 = all cores)")
		raw        = flag.Bool("raw", false, "use the 25.6 GB/s raw wrapper platform")
		interfered = flag.Bool("interfered", false, "use the interfered bandwidth curve")
		seed       = flag.Int64("seed", 1, "generator seed")
		traceFile  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (fpga backend)")
		metrics    = flag.Bool("metrics", false, "print the simtrace metrics summary after the run (fpga backend)")
	)
	flag.Parse()

	var sess *simtrace.Session
	if *traceFile != "" || *metrics {
		if *backend != "fpga" {
			fatal(fmt.Errorf("-trace/-metrics require -backend fpga (the cycle-level simulator)"))
		}
		sess = simtrace.NewSession()
	}

	rel, err := generate(*dist, *zipf, *width, *n, *seed)
	if err != nil {
		fatal(err)
	}

	var p partition.Partitioner
	switch *backend {
	case "cpu":
		p, err = partition.NewCPU(partition.CPUOptions{
			Partitions: *parts, Hash: *hash, Threads: *threads,
		})
	case "fpga":
		opts := partition.FPGAOptions{
			Partitions:  *parts,
			TupleWidth:  *width,
			Hash:        *hash,
			PadFraction: *pad,
			Interfered:  *interfered,
			Trace:       sess,
		}
		if *format == "hist" {
			opts.Format = partition.HistMode
		} else {
			opts.Format = partition.PadMode
		}
		if *layout == "vrid" {
			opts.Layout = partition.ColumnStore
			rel = rel.ToColumns()
		}
		if *raw {
			opts.Platform = platform.RawFPGA()
		}
		p, err = partition.NewFPGA(opts)
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}
	if err != nil {
		fatal(err)
	}

	res, err := p.Partition(rel)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("partitioner:   %s\n", p.Name())
	fmt.Printf("tuples:        %d  (%d partitions)\n", res.TotalTuples(), res.NumPartitions())
	kind := "measured"
	if res.Simulated() {
		kind = "simulated"
	}
	fmt.Printf("elapsed:       %v (%s)\n", res.Elapsed(), kind)
	fmt.Printf("throughput:    %.1f Mtuples/s\n", float64(*n)/res.Elapsed().Seconds()/1e6)
	if res.FellBack() {
		fmt.Println("note:          PAD overflow — fell back to the CPU partitioner")
	}
	if res.Simulated() {
		s := res.Stats
		fmt.Printf("cycles:        %d (histogram %d, flush %d)\n", s.Cycles, s.HistogramCycles, s.FlushCycles)
		fmt.Printf("qpi traffic:   %d lines read, %d written, %d dummy tuples\n", s.LinesRead, s.LinesWritten, s.Dummies)
		fmt.Printf("hazards:       %d forwarded, %d stalls\n", s.ForwardedHazards, s.StallsHazard)
	}
	// Partition-size summary.
	min, max := res.Count(0), res.Count(0)
	for i := 1; i < res.NumPartitions(); i++ {
		c := res.Count(i)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	mean := float64(res.TotalTuples()) / float64(res.NumPartitions())
	fmt.Printf("partition size: min %d, mean %.1f, max %d (imbalance %.2fx)\n", min, mean, max, float64(max)/mean)

	if *metrics {
		fmt.Println()
		fmt.Print(sess.Summary())
	}
	if *traceFile != "" {
		if err := writeTrace(sess, *traceFile); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:         %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
	}
}

// writeTrace dumps the session's event ring as Chrome trace-event JSON.
func writeTrace(sess *simtrace.Session, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := sess.Tracer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func generate(dist string, zipf float64, width, n int, seed int64) (*workload.Relation, error) {
	g := workload.NewGenerator(seed)
	switch dist {
	case "linear":
		return g.Relation(workload.Linear, width, n)
	case "random":
		return g.Relation(workload.Random, width, n)
	case "grid":
		return g.Relation(workload.Grid, width, n)
	case "revgrid":
		return g.Relation(workload.ReverseGrid, width, n)
	case "zipf":
		return g.ZipfRelation(zipf, n, width, n)
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpgapart:", err)
	os.Exit(1)
}
