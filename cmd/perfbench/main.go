// Command perfbench runs the benchmark-telemetry matrix and gates perf
// regressions against a committed baseline.
//
// Usage:
//
//	perfbench run -out bench/baseline            # regenerate the baseline
//	perfbench run -out bench/out -host           # with host wall-clock sidecars
//	perfbench run -out out -cpuprofile cpu.pprof -memprofile mem.pprof
//	perfbench compare bench/baseline/BENCH_partition.json bench/out/BENCH_partition.json
//	perfbench compare -md summary.md old.json new.json
//
// run writes one BENCH_<suite>.json per suite; with a fixed seed the files
// are byte-identical across runs (unless -host adds wall-clock sidecars).
// compare diffs a baseline against a fresh report and exits 1 if any gated
// (simulated, deterministic) metric changed — wall-clock deltas are
// reported but never fail. On failure the fresh report is left next to the
// baseline as <baseline>.got.json, mirroring the repo's golden-test
// convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpgapart/internal/perfbench"
	"fpgapart/internal/perfbench/hostmeter"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	case "curve":
		curveCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "perfbench: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  perfbench run [-out dir] [-suite name] [-seed n] [-tuples n] [-host] [-cpuprofile f] [-memprofile f]
  perfbench compare [-md file] baseline.json current.json
  perfbench curve [-md file] BENCH_memory.json
`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("perfbench run", flag.ExitOnError)
	var (
		out        = fs.String("out", ".", "directory for the BENCH_<suite>.json files")
		suite      = fs.String("suite", "all", "suite to run (partition, join, distjoin, sched, memory, cluster) or \"all\"")
		seed       = fs.Int64("seed", 0, "workload generator seed (0 = default 42)")
		tuples     = fs.Int("tuples", 0, "partition-suite relation size (0 = default 32768)")
		host       = fs.Bool("host", false, "attach the host meter: adds wall-clock/alloc info metrics (report no longer byte-stable)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile after the run to this file")
	)
	fs.Parse(args)

	stop, err := perfbench.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	cfg := perfbench.Config{Seed: *seed, Tuples: *tuples}
	if *host {
		cfg.Host = hostmeter.New()
	}
	suites := perfbench.Suites()
	if *suite != "all" {
		suites = []string{*suite}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, s := range suites {
		rep, err := perfbench.RunSuite(s, cfg)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, perfbench.BenchFileName(s))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
	}
	if err := stop(); err != nil {
		fatal(err)
	}
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("perfbench compare", flag.ExitOnError)
	md := fs.String("md", "", "append the markdown comparison table to this file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)

	old, err := loadReport(oldPath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadReport(newPath)
	if err != nil {
		fatal(err)
	}
	cmp, err := perfbench.Compare(old, cur)
	if err != nil {
		fatal(err)
	}

	dst := os.Stdout
	if *md != "" {
		f, err := os.OpenFile(*md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := cmp.WriteMarkdown(dst); err != nil {
		fatal(err)
	}

	if cmp.Failed() {
		// Leave the diverging report next to the baseline, like a failing
		// golden test, so CI can upload it and a local run can inspect or
		// promote it.
		got := strings.TrimSuffix(oldPath, ".json") + ".got.json"
		if data, err := os.ReadFile(newPath); err == nil {
			if werr := os.WriteFile(got, data, 0o644); werr == nil {
				fmt.Fprintf(os.Stderr, "perfbench: gated metrics changed; diverging report written to %s\n", got)
			}
		}
		os.Exit(1)
	}
}

// curveCmd renders the memory suite's degradation curve — one row per
// workload × budget cell, spill/recursion/broadcast behaviour across the
// shrinking budget — as a markdown table (for the CI step summary).
func curveCmd(args []string) {
	fs := flag.NewFlagSet("perfbench curve", flag.ExitOnError)
	md := fs.String("md", "", "append the markdown table to this file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	rep, err := loadReport(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if rep.Suite != perfbench.SuiteMemory {
		fatal(fmt.Errorf("%s holds suite %q, want %q", fs.Arg(0), rep.Suite, perfbench.SuiteMemory))
	}

	dst := os.Stdout
	if *md != "" {
		f, err := os.OpenFile(*md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	get := func(rec perfbench.Record, name string) int64 {
		m, _ := rec.Gated.Metrics.Get(name)
		return m.Value
	}
	fmt.Fprintf(dst, "### Memory degradation curve (`%s`)\n\n", fs.Arg(0))
	fmt.Fprintln(dst, "| scenario | matches | spilled B | spill read B | recursions | max depth | broadcasts | chunks | result drift |")
	fmt.Fprintln(dst, "|---|---:|---:|---:|---:|---:|---:|---:|---|")
	for _, rec := range rep.Records {
		drift := "none"
		if get(rec, "join.delta_matches_vs_unbudgeted") != 0 || get(rec, "join.delta_checksum_vs_unbudgeted") != 0 {
			drift = "**DIVERGED**"
		}
		fmt.Fprintf(dst, "| %s | %d | %d | %d | %d | %d | %d | %d | %s |\n",
			rec.Name,
			get(rec, "join.matches"),
			get(rec, "join.mem_spilled_bytes"),
			get(rec, "join.mem_spill_read_bytes"),
			get(rec, "join.mem_recursions"),
			get(rec, "join.mem_max_depth"),
			get(rec, "join.mem_broadcasts"),
			get(rec, "join.mem_broadcast_chunks"),
			drift)
	}
}

func loadReport(path string) (*perfbench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := perfbench.ParseReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfbench:", err)
	os.Exit(1)
}
