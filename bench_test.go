// Module-level benchmarks: one per table and figure of the paper's
// evaluation (run with `go test -bench . -benchmem`), plus ablation
// benchmarks for the design decisions called out in DESIGN.md. Each
// benchmark exercises the code path that regenerates its experiment at a
// fixed, laptop-friendly input size and reports throughput as Mtuples/s
// where that is the figure's y-axis.
package fpgapart_test

import (
	"fmt"
	"testing"

	"fpgapart/aggregate"
	"fpgapart/codec"
	"fpgapart/distjoin"
	"fpgapart/experiments"
	"fpgapart/hashjoin"
	"fpgapart/internal/core"
	"fpgapart/internal/cpupart"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/model"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// benchRelation memoizes generated relations across benchmarks.
var benchRels = map[string]*workload.Relation{}

func benchRelation(b *testing.B, d workload.Distribution, width, n int) *workload.Relation {
	b.Helper()
	key := fmt.Sprintf("%v/%d/%d", d, width, n)
	if r, ok := benchRels[key]; ok {
		return r
	}
	r, err := workload.NewGenerator(99).Relation(d, width, n)
	if err != nil {
		b.Fatal(err)
	}
	benchRels[key] = r
	return r
}

func reportTuples(b *testing.B, tuplesPerOp int) {
	b.Helper()
	b.ReportMetric(float64(tuplesPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mtuples/s")
}

// BenchmarkTable1Coherence evaluates the coherence model behind Table 1:
// ownership tracking of a written region plus the four read-time queries.
func BenchmarkTable1Coherence(b *testing.B) {
	m := platform.XeonFPGA().Coherence
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, random := range []bool{false, true} {
			sink += m.ReadTime(512<<20, random, platform.CPUSocket)
			sink += m.ReadTime(512<<20, random, platform.FPGASocket)
		}
	}
	_ = sink
}

// BenchmarkFigure2Bandwidth measures the host memory-mix kernel behind the
// Figure 2 host column at the balanced ratio.
func BenchmarkFigure2Bandwidth(b *testing.B) {
	buf := make([]uint64, 1<<22) // 32 MB
	b.SetBytes(int64(len(buf) * 8))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += experiments.MeasureMixBandwidth(buf, 0.5, 1)
	}
	_ = sink
}

// BenchmarkFigure3CDF builds the radix and hash partition histograms behind
// the Figure 3 CDFs.
func BenchmarkFigure3CDF(b *testing.B) {
	const n = 1 << 20
	rel := benchRelation(b, workload.Grid, 8, n)
	hist := make([]int64, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range hist {
			hist[j] = 0
		}
		for t := 0; t < n; t++ {
			hist[hashutil.PartitionIndex32(rel.Key(t), 13, i%2 == 0)]++
		}
	}
	reportTuples(b, n)
}

// BenchmarkFigure4CPUPartitioning measures the software partitioner of
// Figure 4 (8 B tuples, 8192 partitions, hash attribute).
func BenchmarkFigure4CPUPartitioning(b *testing.B) {
	const n = 1 << 21
	rel := benchRelation(b, workload.Random, 8, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpupart.Partition(rel, cpupart.Config{NumPartitions: 8192, Hash: true, Threads: 1}); err != nil {
			b.Fatal(err)
		}
	}
	reportTuples(b, n)
}

// BenchmarkTable2Resources estimates the resource table.
func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []int{8, 16, 32, 64} {
			core.EstimateResources(core.Config{NumPartitions: 8192, TupleWidth: w})
		}
	}
}

// BenchmarkFigure8TupleWidth simulates the circuit per tuple width
// (HIST/RID on the Xeon+FPGA link), the Figure 8 sweep.
func BenchmarkFigure8TupleWidth(b *testing.B) {
	for _, width := range []int{8, 16, 32, 64} {
		width := width
		b.Run(fmt.Sprintf("%dB", width), func(b *testing.B) {
			n := (16 << 20) / width
			rel := benchRelation(b, workload.Random, width, n)
			p := platform.XeonFPGA()
			b.SetBytes(int64(n * width))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := core.NewCircuit(core.Config{
					NumPartitions: 8192, TupleWidth: width, Hash: true, Format: core.HIST,
				}, p.FPGAClockHz, p.FPGAAlone)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := c.Partition(rel); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, n)
		})
	}
}

// BenchmarkFigure9Modes simulates each operating mode of Figure 9.
func BenchmarkFigure9Modes(b *testing.B) {
	const n = 1 << 21
	rel := benchRelation(b, workload.Random, 8, n)
	col := rel.ToColumns()
	modes := []struct {
		name   string
		format partition.Format
		layout partition.Layout
		plat   *platform.Platform
	}{
		{"HIST_RID", partition.HistMode, partition.RowStore, platform.XeonFPGA()},
		{"HIST_VRID", partition.HistMode, partition.ColumnStore, platform.XeonFPGA()},
		{"PAD_RID", partition.PadMode, partition.RowStore, platform.XeonFPGA()},
		{"PAD_VRID", partition.PadMode, partition.ColumnStore, platform.XeonFPGA()},
		{"RawFPGA_PAD", partition.PadMode, partition.RowStore, platform.RawFPGA()},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			in := rel
			if m.layout == partition.ColumnStore {
				in = col
			}
			p, err := partition.NewFPGA(partition.FPGAOptions{
				Partitions: 8192, Hash: true, Format: m.format, Layout: m.layout,
				PadFraction: 0.5, Platform: m.plat,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Partition(in); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, n)
		})
	}
}

// BenchmarkModelValidation evaluates the Section 4.8 cost-model table.
func BenchmarkModelValidation(b *testing.B) {
	p := platform.XeonFPGA()
	for i := 0; i < b.N; i++ {
		if rows := model.Validate(p); len(rows) != 3 {
			b.Fatal("bad validation table")
		}
	}
}

// BenchmarkFigure10Partitions runs the hybrid join across the Figure 10
// fan-out sweep.
func BenchmarkFigure10Partitions(b *testing.B) {
	in := benchJoinInput(b, workload.WorkloadA, 1.0/256)
	for _, parts := range []int{256, 2048, 8192} {
		parts := parts
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) { benchHybrid(b, in, parts, partition.PadMode) })
	}
}

// BenchmarkFigure11Threads runs the CPU join of Figure 11 per thread count.
func BenchmarkFigure11Threads(b *testing.B) {
	in := benchJoinInput(b, workload.WorkloadA, 1.0/256)
	for _, threads := range []int{1, 2, 4} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: 8192, Hash: true, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, in.R.NumTuples+in.S.NumTuples)
		})
	}
}

// BenchmarkFigure12Distributions runs the CPU hash join on workloads C/D/E.
func BenchmarkFigure12Distributions(b *testing.B) {
	for _, id := range []workload.WorkloadID{workload.WorkloadC, workload.WorkloadD, workload.WorkloadE} {
		id := id
		b.Run(string(id), func(b *testing.B) {
			in := benchJoinInput(b, id, 1.0/256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: 8192, Hash: true, Threads: 1}); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, in.R.NumTuples+in.S.NumTuples)
		})
	}
}

// BenchmarkFigure13Skew runs the hybrid HIST join on a Zipf(1.0)-skewed S.
func BenchmarkFigure13Skew(b *testing.B) {
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		b.Fatal(err)
	}
	in, err := spec.Scaled(1.0/256).GenerateSkewed(99, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	benchHybrid(b, in, 8192, partition.HistMode)
}

func benchJoinInput(b *testing.B, id workload.WorkloadID, scale float64) *workload.JoinInput {
	b.Helper()
	spec, err := workload.Spec(id)
	if err != nil {
		b.Fatal(err)
	}
	in, err := spec.Scaled(scale).Generate(99)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchHybrid(b *testing.B, in *workload.JoinInput, parts int, format partition.Format) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hashjoin.Hybrid(in.R, in.S, hashjoin.Options{
			Partitions: parts, Hash: true, Threads: 1, Format: format, PadFraction: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
	reportTuples(b, in.R.NumTuples+in.S.NumTuples)
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationForwarding compares the write combiner with and without
// the Code 4 forwarding registers on an adversarial single-partition input.
func BenchmarkAblationForwarding(b *testing.B) {
	const n = 1 << 18
	rel, err := workload.NewRelation(workload.RowLayout, 8, n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rel.SetTuple(i, 1, uint32(i))
	}
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "forwarding"
		if disable {
			name = "stalling"
		}
		b.Run(name, func(b *testing.B) {
			p := platform.RawFPGA()
			var cycles int64
			for i := 0; i < b.N; i++ {
				c, err := core.NewCircuit(core.Config{
					NumPartitions: 64, TupleWidth: 8, Format: core.HIST,
					DisableForwarding: disable,
				}, p.FPGAClockHz, p.FPGAAlone)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := c.Partition(rel)
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles/op")
			reportTuples(b, n)
		})
	}
}

// BenchmarkAblationWriteCombiner compares the combiner datapath against the
// naive per-tuple read-modify-write strawman of Section 4.2.
func BenchmarkAblationWriteCombiner(b *testing.B) {
	const n = 1 << 19
	rel := benchRelation(b, workload.Random, 8, n)
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "combining"
		if disable {
			name = "naiveRMW"
		}
		b.Run(name, func(b *testing.B) {
			p := platform.XeonFPGA()
			for i := 0; i < b.N; i++ {
				c, err := core.NewCircuit(core.Config{
					NumPartitions: 1024, TupleWidth: 8, Hash: true, Format: core.HIST,
					DisableWriteCombiner: disable,
				}, p.FPGAClockHz, p.FPGAAlone)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := c.Partition(rel); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, n)
		})
	}
}

// BenchmarkAblationBufferedVsNaive compares Code 2 against Code 1 on the
// CPU at the paper's 8192-partition fan-out.
func BenchmarkAblationBufferedVsNaive(b *testing.B) {
	const n = 1 << 21
	rel := benchRelation(b, workload.Random, 8, n)
	for _, alg := range []cpupart.Algorithm{cpupart.Buffered, cpupart.Naive, cpupart.MultiPass} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				if _, err := cpupart.Partition(rel, cpupart.Config{
					NumPartitions: 8192, Hash: false, Threads: 1, Algorithm: alg,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, n)
		})
	}
}

// BenchmarkAblationExtendedEndpoint contrasts the paper's own page table
// (standard end-point) against Intel's extended end-point with 20% less
// bandwidth (Section 2.1).
func BenchmarkAblationExtendedEndpoint(b *testing.B) {
	const n = 1 << 20
	rel := benchRelation(b, workload.Random, 8, n)
	for _, ext := range []bool{false, true} {
		ext := ext
		name := "ownPageTable"
		if ext {
			name = "extendedEndpoint"
		}
		b.Run(name, func(b *testing.B) {
			p, err := partition.NewFPGA(partition.FPGAOptions{
				Partitions: 8192, Hash: true, Format: partition.PadMode,
				PadFraction: 0.5, ExtendedEndpoint: ext,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := p.Partition(rel); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, n)
		})
	}
}

// BenchmarkExtensionAggregate measures partitioned group-by aggregation
// (Section 6's first proposed use) against the global hash table.
func BenchmarkExtensionAggregate(b *testing.B) {
	rel, err := workload.NewGenerator(99).ZipfRelation(0.5, 1<<16, 8, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := aggregate.CPU(rel, aggregate.Options{Partitions: 1024, Hash: true, Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
		reportTuples(b, rel.NumTuples)
	})
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := aggregate.Global(rel, aggregate.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		reportTuples(b, rel.NumTuples)
	})
}

// BenchmarkExtensionDistributedJoin measures the simulated rack-scale join
// (Section 6's RDMA outlook) across cluster sizes.
func BenchmarkExtensionDistributedJoin(b *testing.B) {
	in := benchJoinInput(b, workload.WorkloadA, 1.0/512)
	for _, nodes := range []int{2, 8} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := distjoin.Join(in.R, in.S, distjoin.Options{
					Nodes: nodes, PartitionsPerNode: 1024 / nodes, Threads: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportTuples(b, in.R.NumTuples+in.S.NumTuples)
		})
	}
}

// BenchmarkExtensionCompressed partitions an RLE-compressed key column
// (in-pipeline decompression) against the plain VRID path.
func BenchmarkExtensionCompressed(b *testing.B) {
	const n = 1 << 20
	keys := make([]uint32, n)
	rng := workload.NewGenerator(99)
	if err := rng.Keys(workload.Random, keys); err != nil {
		b.Fatal(err)
	}
	for i := range keys {
		keys[i] = keys[i/32*32] // runs of 32
	}
	col := codec.CompressRLE(keys)
	rel, err := workload.FromKeys(keys, 8)
	if err != nil {
		b.Fatal(err)
	}
	colRel := rel.ToColumns()
	// The wall clock measures simulation cost; the figure of interest is
	// the simulated circuit throughput, reported as sim-Mtuples/s.
	b.Run("plainVRID", func(b *testing.B) {
		p, err := partition.NewFPGA(partition.FPGAOptions{
			Partitions: 1024, Hash: true, Format: partition.HistMode, Layout: partition.ColumnStore,
		})
		if err != nil {
			b.Fatal(err)
		}
		var sim float64
		for i := 0; i < b.N; i++ {
			res, err := p.Partition(colRel)
			if err != nil {
				b.Fatal(err)
			}
			sim = float64(n) / res.Elapsed().Seconds() / 1e6
		}
		b.ReportMetric(sim, "sim-Mtuples/s")
	})
	b.Run("compressed", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			res, err := partition.FPGACompressed(partition.FPGAOptions{
				Partitions: 1024, Hash: true, Format: partition.HistMode, Layout: partition.ColumnStore,
			}, col)
			if err != nil {
				b.Fatal(err)
			}
			sim = float64(n) / res.Elapsed().Seconds() / 1e6
		}
		b.ReportMetric(sim, "sim-Mtuples/s")
	})
}

// BenchmarkExtensionFuturePlatform simulates the circuit on the paper's
// outlook platform (CPU-class bandwidth, no snoop asymmetry).
func BenchmarkExtensionFuturePlatform(b *testing.B) {
	const n = 1 << 21
	rel := benchRelation(b, workload.Random, 8, n)
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions: 8192, Hash: true, Format: partition.PadMode,
		PadFraction: 0.5, Platform: platform.FutureIntegrated(),
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(rel); err != nil {
			b.Fatal(err)
		}
	}
	reportTuples(b, n)
}

// BenchmarkAblationNonPartitionedJoin contrasts the partitioned CPU join
// with the global-hash-table baseline.
func BenchmarkAblationNonPartitionedJoin(b *testing.B) {
	in := benchJoinInput(b, workload.WorkloadA, 1.0/256)
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: 8192, Hash: true, Threads: 1}); err != nil {
				b.Fatal(err)
			}
		}
		reportTuples(b, in.R.NumTuples+in.S.NumTuples)
	})
	b.Run("nonpartitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := joincore.NonPartitioned(in.R, in.S, 1); err != nil {
				b.Fatal(err)
			}
		}
		reportTuples(b, in.R.NumTuples+in.S.NumTuples)
	})
}
