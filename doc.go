// Package fpgapart is a from-scratch Go reproduction of "FPGA-based Data
// Partitioning" (Kara, Giceva, Alonso — SIGMOD 2017): a fully pipelined
// FPGA data-partitioning circuit on the Intel Xeon+FPGA hybrid platform,
// evaluated in isolation and inside a hybrid radix hash join.
//
// The public API lives in the subpackages:
//
//   - partition — CPU and (simulated) FPGA partitioners
//   - hashjoin  — partitioned, hybrid and non-partitioned hash joins
//   - workload  — relations, key distributions, Zipf skew, Workloads A–E
//   - platform  — the Xeon+FPGA machine model (bandwidth, coherence)
//   - experiments — regenerate every table and figure of the paper
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-reproduction comparison. This root
// package only anchors the module-level benchmarks in bench_test.go.
package fpgapart
