// Package platform models the Intel Xeon+FPGA (HARP v1) machine the paper
// runs on (Section 2): a dual-socket box with a 10-core Xeon E5-2680 v2 on
// one socket and an Altera Stratix V FPGA on the other, connected by QPI with
// cache-coherent access to 96 GB of memory on the CPU socket.
//
// Two aspects of the platform shape every result in the paper and are modeled
// here: the memory bandwidth available to each agent as a function of its
// sequential-read to random-write ratio (Figure 2), and the cache-coherence
// snoop penalty the CPU pays when reading memory last written by the FPGA
// (Table 1). Both models are calibrated to the paper's measurements; the
// calibration points are spelled out next to the data.
package platform

import "fmt"

// BandwidthCurve is a piecewise-linear memory bandwidth curve over the read
// fraction of the traffic mix: point i of Points corresponds to a read
// fraction of i/(len(Points)-1), i.e. Points[0] is pure random write and the
// last point is pure sequential read, matching the x-axis of Figure 2
// (read/write ratio 0/1 ... 1/0). Values are GB/s.
type BandwidthCurve struct {
	Points []float64
}

// At returns the interpolated bandwidth in GB/s for the given read fraction
// (0 = all writes, 1 = all reads). Fractions outside [0, 1] are clamped.
func (c BandwidthCurve) At(readFrac float64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	if len(c.Points) == 1 {
		return c.Points[0]
	}
	if readFrac < 0 {
		readFrac = 0
	} else if readFrac > 1 {
		readFrac = 1
	}
	pos := readFrac * float64(len(c.Points)-1)
	i := int(pos)
	if i >= len(c.Points)-1 {
		return c.Points[len(c.Points)-1]
	}
	frac := pos - float64(i)
	return c.Points[i]*(1-frac) + c.Points[i+1]*frac
}

// AtRatio returns the bandwidth for a read-to-write byte ratio r (the
// parameter of the paper's cost model, Section 4.6: r = 2 for HIST/RID,
// 1 for PAD/RID and HIST/VRID, 0.5 for PAD/VRID). r maps to a read fraction
// of r/(1+r).
func (c BandwidthCurve) AtRatio(r float64) float64 {
	if r < 0 {
		r = 0
	}
	return c.At(r / (1 + r))
}

// BytesPerSecond returns the curve value converted from GB/s to bytes/s.
func (c BandwidthCurve) BytesPerSecond(readFrac float64) float64 {
	return c.At(readFrac) * 1e9
}

// Scale returns a copy of the curve with every point multiplied by factor
// (e.g. 0.8 for the extended QPI end-point's 20% bandwidth loss,
// Section 2.1).
func (c BandwidthCurve) Scale(factor float64) BandwidthCurve {
	pts := make([]float64, len(c.Points))
	for i, p := range c.Points {
		pts[i] = p * factor
	}
	return BandwidthCurve{Points: pts}
}

// ExtendedEndpointMaxBytes is the allocation cap of Intel's extended QPI
// end-point, which handles address translation itself but limits
// allocations to 2 GB and loses 20% bandwidth — the reason the paper
// implements its own BRAM page table (Section 2.1).
const ExtendedEndpointMaxBytes = 2 << 30

// CoherenceModel captures Table 1: single-threaded time for the CPU to read
// a 512 MB region, depending on the access pattern and on which socket last
// wrote the region. When the FPGA wrote last, CPU reads are snooped on the
// FPGA socket, whose 128 KB cache almost never holds the line, so every
// snoop is pure added latency — and unlike a homogeneous 2-socket machine,
// the snoop filter is only updated by writes, so re-reading never gets
// faster.
type CoherenceModel struct {
	// Per-cache-line read costs in nanoseconds, calibrated from Table 1
	// (512 MB = 8 Mi cache lines).
	SeqReadLocalNS   float64 // CPU reads, CPU wrote last:  0.1381 s / 8 Mi lines
	SeqReadRemoteNS  float64 // CPU reads, FPGA wrote last: 0.1533 s / 8 Mi lines
	RandReadLocalNS  float64 // random reads, CPU wrote:    1.1537 s / 8 Mi lines
	RandReadRemoteNS float64 // random reads, FPGA wrote:   2.4876 s / 8 Mi lines

	// ProbeMemFraction is the fraction of the radix join's probe-phase time
	// spent on random reads of FPGA-written partition data (the rest is
	// hashing and chain traversal compute). It converts the raw random-read
	// penalty into the end-to-end probe slowdown seen in Figures 10–12.
	ProbeMemFraction float64
}

// SeqPenalty returns the multiplicative slowdown of sequential CPU reads on
// FPGA-written memory (Table 1: 0.1533/0.1381 ≈ 1.11).
func (m CoherenceModel) SeqPenalty() float64 {
	if m.SeqReadLocalNS == 0 {
		return 1
	}
	return m.SeqReadRemoteNS / m.SeqReadLocalNS
}

// RandPenalty returns the multiplicative slowdown of random CPU reads on
// FPGA-written memory (Table 1: 2.4876/1.1537 ≈ 2.16).
func (m CoherenceModel) RandPenalty() float64 {
	if m.RandReadLocalNS == 0 {
		return 1
	}
	return m.RandReadRemoteNS / m.RandReadLocalNS
}

// BuildPenalty is the slowdown of the join's build phase when the partitions
// were written by the FPGA. The build scans its partition sequentially, so
// the sequential penalty applies (Section 2.2: "during the build phase the
// effect is not as high").
func (m CoherenceModel) BuildPenalty() float64 { return m.SeqPenalty() }

// ProbePenalty is the slowdown of the join's probe phase on FPGA-written
// partitions: the probe's random accesses into the build partition cannot be
// prefetched past the needless snoops. Only the memory-bound fraction of the
// probe is slowed.
func (m CoherenceModel) ProbePenalty() float64 {
	return 1 + (m.RandPenalty()-1)*m.ProbeMemFraction
}

// ReadTime models Table 1 directly: the time for a single CPU thread to read
// bytes worth of memory with the given pattern when the region was last
// written by the given socket.
func (m CoherenceModel) ReadTime(bytes int64, random bool, lastWriter Socket) float64 {
	lines := float64(bytes) / 64
	var ns float64
	switch {
	case !random && lastWriter == CPUSocket:
		ns = m.SeqReadLocalNS
	case !random && lastWriter == FPGASocket:
		ns = m.SeqReadRemoteNS
	case random && lastWriter == CPUSocket:
		ns = m.RandReadLocalNS
	default:
		ns = m.RandReadRemoteNS
	}
	return lines * ns / 1e9
}

// Socket identifies which socket of the hybrid machine performed an access.
type Socket int

const (
	CPUSocket Socket = iota
	FPGASocket
)

func (s Socket) String() string {
	switch s {
	case CPUSocket:
		return "CPU"
	case FPGASocket:
		return "FPGA"
	default:
		return fmt.Sprintf("Socket(%d)", int(s))
	}
}

// Platform describes a hybrid CPU+FPGA machine.
type Platform struct {
	Name string

	// CPU socket.
	CPUCores   int
	CPUClockHz float64
	L1Bytes    int
	L2Bytes    int
	L3Bytes    int

	// FPGA socket.
	FPGAClockHz    float64
	FPGACacheBytes int // QPI endpoint's 2-way associative local cache

	// Shared memory.
	MemoryBytes int64
	PageBytes   int // the Intel API allocates 4 MB pages

	// Bandwidth curves (Figure 2).
	CPUAlone       BandwidthCurve
	CPUInterfered  BandwidthCurve
	FPGAAlone      BandwidthCurve
	FPGAInterfered BandwidthCurve

	Coherence CoherenceModel
}

// Validate reports whether the platform description is usable: positive
// clocks and page size, and non-empty bandwidth curves with no negative
// points. Consumers that simulate against the platform (partition.NewFPGA,
// distjoin.Join) validate up front so a malformed hand-built platform fails
// fast instead of producing NaN timings deep in a run.
func (p *Platform) Validate() error {
	if p == nil {
		return fmt.Errorf("platform: nil platform")
	}
	if p.CPUClockHz <= 0 || p.FPGAClockHz <= 0 {
		return fmt.Errorf("platform %q: non-positive clock (CPU %v Hz, FPGA %v Hz)", p.Name, p.CPUClockHz, p.FPGAClockHz)
	}
	if p.PageBytes <= 0 {
		return fmt.Errorf("platform %q: non-positive page size %d", p.Name, p.PageBytes)
	}
	for _, c := range []struct {
		name  string
		curve BandwidthCurve
	}{
		{"CPUAlone", p.CPUAlone}, {"CPUInterfered", p.CPUInterfered},
		{"FPGAAlone", p.FPGAAlone}, {"FPGAInterfered", p.FPGAInterfered},
	} {
		if len(c.curve.Points) == 0 {
			return fmt.Errorf("platform %q: empty %s bandwidth curve", p.Name, c.name)
		}
		for _, pt := range c.curve.Points {
			if pt < 0 {
				return fmt.Errorf("platform %q: negative point %v in %s curve", p.Name, pt, c.name)
			}
		}
	}
	if p.Coherence.SeqReadLocalNS < 0 || p.Coherence.SeqReadRemoteNS < 0 ||
		p.Coherence.RandReadLocalNS < 0 || p.Coherence.RandReadRemoteNS < 0 {
		return fmt.Errorf("platform %q: negative coherence read cost", p.Name)
	}
	if p.Coherence.ProbeMemFraction < 0 || p.Coherence.ProbeMemFraction > 1 {
		return fmt.Errorf("platform %q: ProbeMemFraction %v outside [0, 1]", p.Name, p.Coherence.ProbeMemFraction)
	}
	return nil
}

// XeonFPGA returns the Intel Xeon+FPGA v1 platform of the paper.
//
// Bandwidth calibration: the FPGA curve reproduces the QPI operating points
// the paper's model validation uses (Section 4.8): B(r=2) = 7.05 GB/s,
// B(r=1) = 6.97 GB/s, B(r=0.5) = 5.94 GB/s, and ≈6.5 GB/s for balanced
// traffic per Section 2.1. The CPU curve follows the Figure 2 shape: ~30 GB/s
// for pure sequential reads on one socket, falling below 8 GB/s as the mix
// becomes random-write dominated. Interfered curves reflect the measured
// collapse when both agents issue traffic at once.
func XeonFPGA() *Platform {
	return &Platform{
		Name:           "Intel Xeon+FPGA v1 (HARP)",
		CPUCores:       10,
		CPUClockHz:     2.8e9,
		L1Bytes:        32 << 10,
		L2Bytes:        256 << 10,
		L3Bytes:        25 << 20,
		FPGAClockHz:    200e6,
		FPGACacheBytes: 128 << 10,
		MemoryBytes:    96 << 30,
		PageBytes:      4 << 20,
		// Read fraction 0.0, 0.1, ..., 1.0 (11 points).
		CPUAlone: BandwidthCurve{Points: []float64{
			7.5, 8.0, 8.7, 9.5, 10.5, 11.8, 13.3, 15.2, 18.0, 23.0, 30.0,
		}},
		CPUInterfered: BandwidthCurve{Points: []float64{
			4.5, 4.8, 5.2, 5.7, 6.3, 7.1, 8.0, 9.1, 10.8, 13.8, 18.0,
		}},
		FPGAAlone: BandwidthCurve{Points: []float64{
			5.00, 5.30, 5.60, 5.80, 6.25, 6.97, 7.02, 7.05, 7.07, 7.09, 7.10,
		}},
		FPGAInterfered: BandwidthCurve{Points: []float64{
			3.50, 3.70, 3.95, 4.15, 4.55, 4.90, 4.92, 4.94, 4.96, 4.97, 5.00,
		}},
		Coherence: CoherenceModel{
			SeqReadLocalNS:   0.1381 * 1e9 / (512 << 20 / 64),
			SeqReadRemoteNS:  0.1533 * 1e9 / (512 << 20 / 64),
			RandReadLocalNS:  1.1537 * 1e9 / (512 << 20 / 64),
			RandReadRemoteNS: 2.4876 * 1e9 / (512 << 20 / 64),
			ProbeMemFraction: 0.30,
		},
	}
}

// RawFPGA returns a hypothetical platform identical to XeonFPGA but with a
// 25.6 GB/s link to the FPGA, the configuration of the paper's "raw FPGA"
// wrapper experiment (Section 4.7): an on-chip traffic generator that feeds
// the partitioner at 25.6 GB/s combined read+write bandwidth, so the circuit
// rather than the link becomes the bottleneck.
func RawFPGA() *Platform {
	p := XeonFPGA()
	p.Name = "Raw FPGA wrapper (25.6 GB/s)"
	flat := make([]float64, 11)
	for i := range flat {
		flat[i] = 25.6
	}
	p.FPGAAlone = BandwidthCurve{Points: flat}
	p.FPGAInterfered = BandwidthCurve{Points: flat}
	return p
}

// FutureIntegrated returns a platform sketching the paper's outlook
// (Section 4.8/6): the same circuit hardened next to the CPU with full
// memory bandwidth available, where FPGA-style partitioning becomes the most
// efficient option. Used by the extension benchmarks.
func FutureIntegrated() *Platform {
	p := XeonFPGA()
	p.Name = "Future integrated accelerator"
	p.FPGAAlone = p.CPUAlone
	p.FPGAInterfered = p.CPUInterfered
	// Tighter integration removes the asymmetric snoop penalty.
	p.Coherence.SeqReadRemoteNS = p.Coherence.SeqReadLocalNS
	p.Coherence.RandReadRemoteNS = p.Coherence.RandReadLocalNS
	return p
}
