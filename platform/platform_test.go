package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandwidthCurveAtEndpoints(t *testing.T) {
	c := BandwidthCurve{Points: []float64{5, 6, 7}}
	if c.At(0) != 5 || c.At(1) != 7 {
		t.Errorf("endpoints: %v %v", c.At(0), c.At(1))
	}
	if c.At(0.5) != 6 {
		t.Errorf("midpoint: %v, want 6", c.At(0.5))
	}
	if c.At(0.25) != 5.5 {
		t.Errorf("quarter: %v, want 5.5", c.At(0.25))
	}
}

func TestBandwidthCurveClamps(t *testing.T) {
	c := BandwidthCurve{Points: []float64{5, 7}}
	if c.At(-1) != 5 || c.At(2) != 7 {
		t.Errorf("clamping failed: %v %v", c.At(-1), c.At(2))
	}
}

func TestBandwidthCurveDegenerate(t *testing.T) {
	if (BandwidthCurve{}).At(0.5) != 0 {
		t.Error("empty curve should read 0")
	}
	one := BandwidthCurve{Points: []float64{9}}
	if one.At(0) != 9 || one.At(1) != 9 {
		t.Error("single-point curve should be constant")
	}
}

func TestBandwidthCurveMonotoneInterpolation(t *testing.T) {
	// The interpolated value always lies between the surrounding points when
	// the curve is monotone (all our calibrated curves are).
	c := XeonFPGA().CPUAlone
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 1)
		v := c.At(x)
		return v >= c.Points[0] && v <= c.Points[len(c.Points)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtRatioMapsToReadFraction(t *testing.T) {
	c := XeonFPGA().FPGAAlone
	// r -> r/(1+r): r=1 is the 0.5 fraction point.
	if got, want := c.AtRatio(1), c.At(0.5); got != want {
		t.Errorf("AtRatio(1) = %v, want At(0.5) = %v", got, want)
	}
	if got, want := c.AtRatio(0), c.At(0); got != want {
		t.Errorf("AtRatio(0) = %v, want At(0) = %v", got, want)
	}
	// Negative ratios are nonsense; they clamp to all-write.
	if got, want := c.AtRatio(-3), c.At(0); got != want {
		t.Errorf("AtRatio(-3) = %v, want %v", got, want)
	}
}

func TestXeonFPGACalibrationPoints(t *testing.T) {
	// Section 4.8 uses these three QPI operating points; the curve must
	// reproduce them closely, since model validation depends on them.
	p := XeonFPGA()
	cases := []struct {
		r    float64
		want float64
	}{
		{2, 7.05}, {1, 6.97}, {0.5, 5.94},
	}
	for _, c := range cases {
		got := p.FPGAAlone.AtRatio(c.r)
		if math.Abs(got-c.want) > 0.15 {
			t.Errorf("FPGA B(r=%v) = %.2f GB/s, want %.2f ± 0.15", c.r, got, c.want)
		}
	}
	if p.CPUAlone.At(1) < 25 {
		t.Errorf("CPU sequential-read bandwidth = %v, want ~30 GB/s", p.CPUAlone.At(1))
	}
}

func TestInterferenceReducesBandwidth(t *testing.T) {
	p := XeonFPGA()
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		if p.CPUInterfered.At(x) >= p.CPUAlone.At(x) {
			t.Errorf("CPU interfered ≥ alone at %v", x)
		}
		if p.FPGAInterfered.At(x) >= p.FPGAAlone.At(x) {
			t.Errorf("FPGA interfered ≥ alone at %v", x)
		}
	}
}

func TestCoherencePenalties(t *testing.T) {
	m := XeonFPGA().Coherence
	if got := m.SeqPenalty(); math.Abs(got-0.1533/0.1381) > 1e-9 {
		t.Errorf("SeqPenalty = %v", got)
	}
	if got := m.RandPenalty(); math.Abs(got-2.4876/1.1537) > 1e-9 {
		t.Errorf("RandPenalty = %v", got)
	}
	if m.BuildPenalty() != m.SeqPenalty() {
		t.Error("BuildPenalty should equal the sequential penalty")
	}
	pp := m.ProbePenalty()
	if pp <= 1 || pp >= m.RandPenalty() {
		t.Errorf("ProbePenalty = %v, want between 1 and the raw random penalty", pp)
	}
}

func TestCoherenceZeroModelIsNeutral(t *testing.T) {
	var m CoherenceModel
	if m.SeqPenalty() != 1 || m.RandPenalty() != 1 {
		t.Error("zero model must have penalty 1")
	}
	if m.ProbePenalty() != 1 {
		t.Errorf("zero model ProbePenalty = %v", m.ProbePenalty())
	}
}

func TestReadTimeReproducesTable1(t *testing.T) {
	m := XeonFPGA().Coherence
	const region = 512 << 20
	cases := []struct {
		random bool
		writer Socket
		want   float64
	}{
		{false, CPUSocket, 0.1381},
		{false, FPGASocket, 0.1533},
		{true, CPUSocket, 1.1537},
		{true, FPGASocket, 2.4876},
	}
	for _, c := range cases {
		got := m.ReadTime(region, c.random, c.writer)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ReadTime(random=%v, writer=%v) = %v, want %v", c.random, c.writer, got, c.want)
		}
	}
}

func TestRawFPGAFlatCurve(t *testing.T) {
	p := RawFPGA()
	for i := 0; i <= 10; i++ {
		if got := p.FPGAAlone.At(float64(i) / 10); got != 25.6 {
			t.Errorf("raw FPGA bandwidth at %d/10 = %v, want 25.6", i, got)
		}
	}
}

func TestFutureIntegratedRemovesSnoopPenalty(t *testing.T) {
	p := FutureIntegrated()
	if p.Coherence.SeqPenalty() != 1 || p.Coherence.RandPenalty() != 1 {
		t.Error("future platform should have no snoop penalty")
	}
	if p.FPGAAlone.At(1) != p.CPUAlone.At(1) {
		t.Error("future platform FPGA should see CPU-class bandwidth")
	}
}

func TestSocketString(t *testing.T) {
	if CPUSocket.String() != "CPU" || FPGASocket.String() != "FPGA" {
		t.Error("socket strings wrong")
	}
	if Socket(5).String() != "Socket(5)" {
		t.Error("unknown socket string wrong")
	}
}

func TestValidateAcceptsBuiltins(t *testing.T) {
	for _, p := range []*Platform{XeonFPGA(), RawFPGA(), FutureIntegrated()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBrokenPlatforms(t *testing.T) {
	breakers := []func(*Platform){
		func(p *Platform) { p.CPUClockHz = 0 },
		func(p *Platform) { p.FPGAClockHz = -1 },
		func(p *Platform) { p.PageBytes = 0 },
		func(p *Platform) { p.FPGAAlone = BandwidthCurve{} },
		func(p *Platform) { p.CPUInterfered.Points[3] = -2 },
		func(p *Platform) { p.Coherence.RandReadRemoteNS = -1 },
		func(p *Platform) { p.Coherence.ProbeMemFraction = 1.5 },
	}
	for i, brk := range breakers {
		p := XeonFPGA()
		brk(p)
		if p.Validate() == nil {
			t.Errorf("broken platform %d validated", i)
		}
	}
	var nilP *Platform
	if nilP.Validate() == nil {
		t.Error("nil platform validated")
	}
}

func TestPlatformShape(t *testing.T) {
	p := XeonFPGA()
	if p.CPUCores != 10 {
		t.Errorf("CPUCores = %d, want 10", p.CPUCores)
	}
	if p.FPGAClockHz != 200e6 {
		t.Errorf("FPGAClockHz = %v, want 200 MHz", p.FPGAClockHz)
	}
	if p.PageBytes != 4<<20 {
		t.Errorf("PageBytes = %d, want 4 MiB", p.PageBytes)
	}
	if p.FPGACacheBytes != 128<<10 {
		t.Errorf("FPGACacheBytes = %d, want 128 KiB", p.FPGACacheBytes)
	}
}
