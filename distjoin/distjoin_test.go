package distjoin

import (
	"testing"

	"fpgapart/hashjoin"
	"fpgapart/internal/rdma"
	"fpgapart/partition"
	"fpgapart/workload"
)

func testInput(t *testing.T, nr, ns int) *workload.JoinInput {
	t.Helper()
	spec := workload.WorkloadSpec{ID: "t", TuplesR: nr, TuplesS: ns, Distribution: workload.Linear}
	in, err := spec.Generate(17)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDistributedJoinMatchesLocal(t *testing.T) {
	in := testInput(t, 1<<13, 1<<14)
	local, err := hashjoin.CPU(in.R, in.S, hashjoin.Options{Partitions: 256, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		dist, err := Join(in.R, in.S, Options{
			Nodes: nodes, PartitionsPerNode: 256 / nodes, Threads: 2,
		})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if dist.Matches != local.Matches || dist.Checksum != local.Checksum {
			t.Fatalf("nodes=%d: %d/%d matches, local %d/%d",
				nodes, dist.Matches, dist.Checksum, local.Matches, local.Checksum)
		}
		if dist.GlobalFanOut != 256 {
			t.Errorf("nodes=%d: global fan-out %d", nodes, dist.GlobalFanOut)
		}
	}
}

func TestDistributedJoinFPGAMatchesCPU(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	cpu, err := Join(in.R, in.S, Options{Nodes: 4, PartitionsPerNode: 64, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := Join(in.R, in.S, Options{
		Nodes: 4, PartitionsPerNode: 64, Threads: 2,
		UseFPGA: true, Format: partition.HistMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Matches != fpga.Matches || cpu.Checksum != fpga.Checksum {
		t.Fatalf("CPU %d/%d vs FPGA %d/%d", cpu.Matches, cpu.Checksum, fpga.Matches, fpga.Checksum)
	}
}

func TestSingleNodeHasNoExchange(t *testing.T) {
	in := testInput(t, 1<<12, 1<<12)
	res, err := Join(in.R, in.S, Options{Nodes: 1, PartitionsPerNode: 128, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExchangeTime != 0 || res.BytesExchanged != 0 {
		t.Errorf("single node exchanged %d bytes in %v", res.BytesExchanged, res.ExchangeTime)
	}
	if res.Matches != int64(in.S.NumTuples) {
		t.Errorf("matches = %d", res.Matches)
	}
}

func TestExchangeVolumeScalesWithOffNodeFraction(t *testing.T) {
	in := testInput(t, 1<<14, 1<<14)
	two, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 64, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Join(in.R, in.S, Options{Nodes: 8, PartitionsPerNode: 16, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Off-node fraction grows from 1/2 to 7/8 of the data.
	if eight.BytesExchanged <= two.BytesExchanged {
		t.Errorf("8-node exchange (%d B) not larger than 2-node (%d B)",
			eight.BytesExchanged, two.BytesExchanged)
	}
	total := int64(in.R.NumTuples+in.S.NumTuples) * 8
	if two.BytesExchanged < total*4/10 || two.BytesExchanged > total*6/10 {
		t.Errorf("2-node off-node bytes = %d, want ≈ half of %d", two.BytesExchanged, total)
	}
}

func TestFasterFabricShortensExchange(t *testing.T) {
	in := testInput(t, 1<<14, 1<<14)
	slow := rdma.FDRCluster(4)
	fast := rdma.FDRCluster(4)
	fast.LinkGBps *= 10
	a, err := Join(in.R, in.S, Options{Nodes: 4, PartitionsPerNode: 32, Threads: 1, Fabric: slow})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(in.R, in.S, Options{Nodes: 4, PartitionsPerNode: 32, Threads: 1, Fabric: fast})
	if err != nil {
		t.Fatal(err)
	}
	if b.ExchangeTime >= a.ExchangeTime {
		t.Errorf("10× fabric not faster: %v vs %v", b.ExchangeTime, a.ExchangeTime)
	}
}

func TestFPGACoherencePenaltySlowsJoinPhase(t *testing.T) {
	// Same workload, same local join work; the FPGA path's join time must
	// include the probe snoop penalty (deterministically applied).
	in := testInput(t, 1<<13, 1<<13)
	res, err := Join(in.R, in.S, Options{
		Nodes: 2, PartitionsPerNode: 64, Threads: 1,
		UseFPGA: true, Format: partition.HistMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionTime <= 0 || res.JoinTime <= 0 || res.ExchangeTime <= 0 {
		t.Errorf("phase times: %+v", res)
	}
	if res.Total != res.PartitionTime+res.ExchangeTime+res.JoinTime {
		t.Error("Total is not the sum of phases")
	}
}

func TestValidation(t *testing.T) {
	in := testInput(t, 64, 64)
	if _, err := Join(in.R, in.S, Options{Nodes: 3, PartitionsPerNode: 4}); err == nil {
		t.Error("non-power-of-two nodes accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 3}); err == nil {
		t.Error("non-power-of-two per-node fan-out accepted")
	}
}

func TestShardingCoversAllTuples(t *testing.T) {
	rel, err := workload.NewGenerator(3).Relation(workload.Random, 8, 1001)
	if err != nil {
		t.Fatal(err)
	}
	shards := shard(rel, 4)
	total := 0
	seen := map[uint64]int{}
	for _, s := range shards {
		total += s.NumTuples
		for i := 0; i < s.NumTuples; i++ {
			seen[uint64(s.Key(i))<<32|uint64(s.Payload(i))]++
		}
	}
	if total != 1001 {
		t.Fatalf("shards hold %d tuples", total)
	}
	for i := 0; i < rel.NumTuples; i++ {
		k := uint64(rel.Key(i))<<32 | uint64(rel.Payload(i))
		if seen[k] == 0 {
			t.Fatalf("tuple %d lost in sharding", i)
		}
		seen[k]--
	}
}
