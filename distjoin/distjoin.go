// Package distjoin implements the paper's second envisioned use of the
// partitioner (Section 6): rack-scale distributed joins where the
// partitioner — ideally the FPGA circuit attached directly to the network —
// splits each node's data across the cluster over RDMA (following Barthels
// et al.), so that after one exchange every node holds complete, cache-sized
// partitions and finishes with purely local build+probe.
//
// Execution model: every node partitions its local shard of R and S into a
// global fan-out of Nodes × PartitionsPerNode partitions; the low bits of
// the partition index select the owning node. The all-to-all exchange is
// timed by the RDMA fabric model from the exact per-node-pair byte counts;
// partitioning is measured (CPU) or simulated (FPGA) per node, and the
// local joins run for real. Per-phase time is the slowest node, as the
// phases are cluster-synchronous.
package distjoin

import (
	"fmt"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/rdma"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// Options configures a distributed join.
type Options struct {
	// Nodes is the cluster size (power of two ≥ 1).
	Nodes int
	// PartitionsPerNode is the per-node fan-out after the exchange (power
	// of two); the global fan-out is Nodes × PartitionsPerNode.
	PartitionsPerNode int
	// Fabric models the network; defaults to rdma.FDRCluster(Nodes).
	Fabric *rdma.Fabric
	// UseFPGA partitions each node's shard on the simulated FPGA circuit
	// instead of the measured CPU partitioner.
	UseFPGA bool
	// Format is the FPGA mode (HIST recommended for unknown skew).
	Format partition.Format
	// Threads is the per-node build+probe (and CPU partitioning)
	// parallelism.
	Threads int
	// Platform supplies the FPGA clock/link and coherence model.
	Platform *platform.Platform
}

func (o Options) withDefaults() Options {
	if o.Fabric == nil {
		o.Fabric = rdma.FDRCluster(o.Nodes)
	}
	if o.Platform == nil {
		o.Platform = platform.XeonFPGA()
	}
	if o.PartitionsPerNode == 0 {
		o.PartitionsPerNode = 1024
	}
	return o
}

func (o *Options) validate() error {
	if !hashutil.IsPowerOfTwo(o.Nodes) {
		return fmt.Errorf("distjoin: Nodes %d must be a power of two", o.Nodes)
	}
	if !hashutil.IsPowerOfTwo(o.PartitionsPerNode) {
		return fmt.Errorf("distjoin: PartitionsPerNode %d must be a power of two", o.PartitionsPerNode)
	}
	return nil
}

// Result reports a distributed join.
type Result struct {
	Matches  int64
	Checksum uint64

	// PartitionTime is the slowest node's partitioning time for both
	// relations (simulated when UseFPGA).
	PartitionTime time.Duration
	// ExchangeTime is the simulated all-to-all RDMA exchange.
	ExchangeTime time.Duration
	// JoinTime is the slowest node's measured local build+probe (with the
	// coherence penalty when the partitions were FPGA/NIC-written).
	JoinTime time.Duration
	Total    time.Duration

	// BytesExchanged is the total off-node traffic.
	BytesExchanged int64
	Nodes          int
	GlobalFanOut   int
}

// Join executes the distributed join of r ⋈ s under opts.
func Join(r, s *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	global := opts.Nodes * opts.PartitionsPerNode

	rShards := shard(r, opts.Nodes)
	sShards := shard(s, opts.Nodes)

	p, err := makePartitioner(opts, global)
	if err != nil {
		return nil, err
	}

	// Phase 1: every node partitions its shards to the global fan-out.
	rParts := make([]*partition.Result, opts.Nodes)
	sParts := make([]*partition.Result, opts.Nodes)
	var slowest time.Duration
	for n := 0; n < opts.Nodes; n++ {
		pr, err := p.Partition(rShards[n])
		if err != nil {
			return nil, fmt.Errorf("distjoin: node %d partitioning R: %w", n, err)
		}
		ps, err := p.Partition(sShards[n])
		if err != nil {
			return nil, fmt.Errorf("distjoin: node %d partitioning S: %w", n, err)
		}
		rParts[n], sParts[n] = pr, ps
		if t := pr.Elapsed() + ps.Elapsed(); t > slowest {
			slowest = t
		}
	}

	// Phase 2: all-to-all exchange. Node i sends partition p (of either
	// relation) to node p & (Nodes-1); physical bytes include dummy padding
	// for FPGA-written partitions (8 bytes per addressable slot).
	sendBytes := make([][]int64, opts.Nodes)
	var offNode int64
	for i := range sendBytes {
		sendBytes[i] = make([]int64, opts.Nodes)
		for gp := 0; gp < global; gp++ {
			dst := gp & (opts.Nodes - 1)
			bytes := int64(rParts[i].SlotCount(gp)+sParts[i].SlotCount(gp)) * 8
			sendBytes[i][dst] += bytes
			if dst != i {
				offNode += bytes
			}
		}
	}
	exchangeSec, err := opts.Fabric.ExchangeSeconds(sendBytes)
	if err != nil {
		return nil, err
	}

	// Phase 3: per destination node, join its owned partitions, with each
	// partition assembled from all nodes' pieces.
	var matches int64
	var checksum uint64
	var slowestJoin time.Duration
	penalty := 1.0
	if opts.UseFPGA {
		// Received partitions were written by remote agents (RDMA NIC /
		// FPGA), so the local CPU pays the Table 1 probe penalty.
		penalty = opts.Platform.Coherence.ProbePenalty()
	}
	for n := 0; n < opts.Nodes; n++ {
		rm := newMerged(rParts, n, opts.Nodes, opts.PartitionsPerNode)
		sm := newMerged(sParts, n, opts.Nodes, opts.PartitionsPerNode)
		bp, err := joincore.BuildProbe(rm, sm, opts.Threads)
		if err != nil {
			return nil, err
		}
		matches += bp.Matches
		checksum += bp.Checksum
		t := time.Duration(float64(bp.Elapsed) * penalty)
		if t > slowestJoin {
			slowestJoin = t
		}
	}

	res := &Result{
		Matches:        matches,
		Checksum:       checksum,
		PartitionTime:  slowest,
		ExchangeTime:   time.Duration(exchangeSec * float64(time.Second)),
		JoinTime:       slowestJoin,
		BytesExchanged: offNode,
		Nodes:          opts.Nodes,
		GlobalFanOut:   global,
	}
	res.Total = res.PartitionTime + res.ExchangeTime + res.JoinTime
	return res, nil
}

func makePartitioner(opts Options, global int) (partition.Partitioner, error) {
	if opts.UseFPGA {
		return partition.NewFPGA(partition.FPGAOptions{
			Partitions:      global,
			Hash:            true,
			Format:          opts.Format,
			PadFraction:     0.5,
			Platform:        opts.Platform,
			FallbackThreads: opts.Threads,
		})
	}
	return partition.NewCPU(partition.CPUOptions{
		Partitions: global,
		Hash:       true,
		Threads:    opts.Threads,
	})
}

// shard splits rel round-robin into n shards (the arrival distribution of a
// scan spread over a cluster).
func shard(rel *workload.Relation, n int) []*workload.Relation {
	shards := make([]*workload.Relation, n)
	sizes := make([]int, n)
	for i := 0; i < rel.NumTuples; i++ {
		sizes[i%n]++
	}
	idx := make([]int, n)
	for i := range shards {
		shards[i], _ = workload.NewRelation(workload.RowLayout, 8, sizes[i])
	}
	for i := 0; i < rel.NumTuples; i++ {
		s := i % n
		shards[s].SetTuple(idx[s], rel.Key(i), rel.Payload(i))
		idx[s]++
	}
	return shards
}

// merged presents node-owned partitions, each assembled from every source
// node's piece, as a joincore.Partitions.
type merged struct {
	parts   []*partition.Result
	node    int
	nodes   int
	perNode int
	// prefix[lp][src] is the slot offset of source src's piece within
	// owned local partition lp.
	prefix [][]int
	total  []int
}

func newMerged(parts []*partition.Result, node, nodes, perNode int) *merged {
	m := &merged{parts: parts, node: node, nodes: nodes, perNode: perNode}
	m.prefix = make([][]int, perNode)
	m.total = make([]int, perNode)
	for lp := 0; lp < perNode; lp++ {
		gp := lp*nodes + node // global partition owned by this node
		off := make([]int, len(parts)+1)
		for src := range parts {
			off[src+1] = off[src] + parts[src].SlotCount(gp)
		}
		m.prefix[lp] = off
		m.total[lp] = off[len(parts)]
	}
	return m
}

func (m *merged) NumPartitions() int  { return m.perNode }
func (m *merged) SlotCount(p int) int { return m.total[p] }
func (m *merged) Slot(p, i int) (uint32, uint32, bool) {
	off := m.prefix[p]
	// Binary search over source pieces (few nodes: linear is fine).
	src := 0
	for off[src+1] <= i {
		src++
	}
	gp := p*m.nodes + m.node
	return m.parts[src].Slot(gp, i-off[src])
}
