// Package distjoin implements the paper's second envisioned use of the
// partitioner (Section 6): rack-scale distributed joins where the
// partitioner — ideally the FPGA circuit attached directly to the network —
// splits each node's data across the cluster over RDMA (following Barthels
// et al.), so that after one exchange every node holds complete, cache-sized
// partitions and finishes with purely local build+probe.
//
// Execution model: every node partitions its local shard of R and S into a
// global fan-out of Nodes × PartitionsPerNode partitions; the low bits of
// the partition index select the owning node. The all-to-all exchange is
// timed by the RDMA fabric model from the exact per-node-pair byte counts;
// partitioning is measured (CPU) or simulated (FPGA) per node, and the
// local joins run for real. Per-phase time is the slowest node, as the
// phases are cluster-synchronous.
//
// The exchange is fault-tolerant: Options.Faults injects a deterministic
// failure scenario (internal/faults) under which messages are retried with
// exponential backoff, corrupt pieces are detected by checksum and
// re-requested, and crashed nodes' partitions are deterministically taken
// over by the survivors so the join still completes with the exact same
// Matches and Checksum, reporting Degraded. See Result's fault fields.
package distjoin

import (
	"fmt"
	"time"

	"fpgapart/internal/faults"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/joincore"
	"fpgapart/internal/rdma"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/platform"
	"fpgapart/workload"
)

// ErrSimulatorFault is partition.ErrSimulatorFault re-exported: invariant
// panics from the simulator internals (internal/fpga, internal/qpi) are
// converted into errors wrapping this sentinel instead of crashing the
// caller. Test with errors.Is.
var ErrSimulatorFault = partition.ErrSimulatorFault

// Options configures a distributed join.
type Options struct {
	// Nodes is the cluster size (power of two ≥ 1).
	Nodes int
	// PartitionsPerNode is the per-node fan-out after the exchange (power
	// of two); the global fan-out is Nodes × PartitionsPerNode.
	PartitionsPerNode int
	// Fabric models the network; defaults to rdma.FDRCluster(Nodes). Its
	// node count must equal Nodes (and hence be a power of two): the
	// exchange matrix is indexed by the join's node IDs.
	Fabric *rdma.Fabric
	// UseFPGA partitions each node's shard on the simulated FPGA circuit
	// instead of the measured CPU partitioner.
	UseFPGA bool
	// Format is the FPGA mode (HIST recommended for unknown skew).
	Format partition.Format
	// Threads is the per-node build+probe (and CPU partitioning)
	// parallelism. Negative values are rejected; 0 means all cores.
	Threads int
	// Platform supplies the FPGA clock/link and coherence model.
	Platform *platform.Platform
	// Faults injects a deterministic failure scenario into the exchange
	// (nil = perfect cluster, the fault-free fast path).
	Faults *faults.Scenario
	// Retry tunes the fault-aware exchange's timeout/retransmission policy
	// (zero value = rdma defaults). Only consulted when Faults is set.
	Retry rdma.RetryPolicy
	// Trace attaches a simtrace session: the join emits per-node and
	// cluster-level phase spans (partition / exchange / local join, one
	// trace microsecond per simulated microsecond) into Trace.Tracer and
	// exchange-level counters into Trace.Metrics, echoed on Result.Trace.
	// Nil disables tracing. Note the timeline unit differs from circuit
	// sessions (which stamp FPGA cycles) — use separate sessions for the
	// two levels.
	Trace *simtrace.Session
}

func (o Options) withDefaults() Options {
	if o.Fabric == nil {
		o.Fabric = rdma.FDRCluster(o.Nodes)
	}
	if o.Platform == nil {
		o.Platform = platform.XeonFPGA()
	}
	if o.PartitionsPerNode == 0 {
		o.PartitionsPerNode = 1024
	}
	return o
}

func (o *Options) validate() error {
	if !hashutil.IsPowerOfTwo(o.Nodes) {
		return fmt.Errorf("distjoin: Nodes %d must be a power of two", o.Nodes)
	}
	if !hashutil.IsPowerOfTwo(o.PartitionsPerNode) {
		return fmt.Errorf("distjoin: PartitionsPerNode %d must be a power of two", o.PartitionsPerNode)
	}
	if o.Threads < 0 {
		return fmt.Errorf("distjoin: negative Threads %d", o.Threads)
	}
	if err := o.Fabric.Validate(); err != nil {
		return fmt.Errorf("distjoin: bad fabric: %w", err)
	}
	// The fabric model itself accepts any node count; the join addresses
	// nodes by partition low bits, so here the count must be this join's
	// power-of-two Nodes exactly.
	if !hashutil.IsPowerOfTwo(o.Fabric.Nodes) {
		return fmt.Errorf("distjoin: fabric has %d nodes, not a power of two", o.Fabric.Nodes)
	}
	if o.Fabric.Nodes != o.Nodes {
		return fmt.Errorf("distjoin: fabric has %d nodes for a %d-node join", o.Fabric.Nodes, o.Nodes)
	}
	if err := o.Platform.Validate(); err != nil {
		return fmt.Errorf("distjoin: bad platform: %w", err)
	}
	if err := o.Retry.Validate(); err != nil {
		return fmt.Errorf("distjoin: bad retry policy: %w", err)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return fmt.Errorf("distjoin: bad fault scenario: %w", err)
		}
		if err := o.validateScenarioNodes(); err != nil {
			return err
		}
	}
	return nil
}

// validateScenarioNodes range-checks the scenario's node references against
// the cluster and requires at least one survivor.
func (o *Options) validateScenarioNodes() error {
	s := o.Faults
	for _, l := range s.Links {
		if l.Src >= o.Nodes || l.Dst >= o.Nodes {
			return fmt.Errorf("distjoin: degraded link %d→%d on a %d-node cluster", l.Src, l.Dst, o.Nodes)
		}
	}
	for _, st := range s.Stragglers {
		if st.Node >= o.Nodes {
			return fmt.Errorf("distjoin: straggler node %d on a %d-node cluster", st.Node, o.Nodes)
		}
	}
	crashed := 0
	for _, c := range s.Crashes {
		if c.Node >= o.Nodes {
			return fmt.Errorf("distjoin: crash of node %d on a %d-node cluster", c.Node, o.Nodes)
		}
		crashed++
	}
	if crashed >= o.Nodes {
		return fmt.Errorf("distjoin: all %d nodes crash — no survivors to degrade onto", o.Nodes)
	}
	return nil
}

// Result reports a distributed join.
type Result struct {
	Matches  int64
	Checksum uint64

	// PartitionTime is the slowest node's partitioning time for both
	// relations (simulated when UseFPGA).
	PartitionTime time.Duration
	// ExchangeTime is the simulated all-to-all RDMA exchange, including —
	// under a fault scenario — timeouts, backoffs, piece re-requests and
	// the recovery round after node crashes.
	ExchangeTime time.Duration
	// JoinTime is the slowest node's measured local build+probe (with the
	// coherence penalty when the partitions were FPGA/NIC-written).
	JoinTime time.Duration
	Total    time.Duration

	// BytesExchanged is the total off-node payload traffic (one clean copy
	// of every piece); retransmitted traffic is reported separately.
	BytesExchanged int64
	Nodes          int
	GlobalFanOut   int

	// Retries is the total number of retransmissions during the exchange:
	// message-level retries after drops/timeouts plus whole-piece
	// re-requests after checksum failures.
	Retries int64
	// CorruptPieces counts piece receptions that failed checksum
	// verification and were re-requested from the sender.
	CorruptPieces int64
	// ResentBytes is the wire traffic beyond one clean copy of each piece:
	// retransmissions, re-requests, traffic wasted on nodes that then
	// crashed, and the recovery round's re-pulls.
	ResentBytes int64
	// FailedNodes lists the nodes that crashed during the exchange
	// (sorted); their partitions were taken over by the survivors.
	FailedNodes []int
	// Degraded reports that the join completed despite node failures, with
	// surviving nodes covering the crashed nodes' partitions.
	Degraded bool

	// Trace echoes Options.Trace after the run (nil when tracing was
	// disabled); Trace.Summary() renders the recorded metrics.
	Trace *simtrace.Session
}

// Join executes the distributed join of r ⋈ s under opts. Invariant panics
// escaping the simulator internals are converted into ErrSimulatorFault
// errors rather than crashing the caller.
func Join(r, s *workload.Relation, opts Options) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("distjoin: %w: %v", ErrSimulatorFault, rec)
		}
	}()
	return join(r, s, opts)
}

func join(r, s *workload.Relation, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	global := opts.Nodes * opts.PartitionsPerNode

	var inj *faults.Injector
	if opts.Faults != nil {
		var err error
		if inj, err = faults.New(*opts.Faults); err != nil {
			return nil, err
		}
	}
	straggle := func(n int) float64 {
		if inj == nil {
			return 1
		}
		return inj.StraggleFactor(n)
	}

	rShards := shard(r, opts.Nodes)
	sShards := shard(s, opts.Nodes)

	p, err := makePartitioner(opts, global)
	if err != nil {
		return nil, err
	}

	// Per-node phase durations are recorded only when tracing, for the
	// per-node timeline spans.
	var nodePart, nodeJoin []time.Duration
	if opts.Trace != nil {
		nodePart = make([]time.Duration, opts.Nodes)
		nodeJoin = make([]time.Duration, opts.Nodes)
	}

	// Phase 1: every node partitions its shards to the global fan-out.
	rParts := make([]*partition.Result, opts.Nodes)
	sParts := make([]*partition.Result, opts.Nodes)
	var slowest time.Duration
	for n := 0; n < opts.Nodes; n++ {
		pr, err := p.Partition(rShards[n])
		if err != nil {
			return nil, fmt.Errorf("distjoin: node %d partitioning R: %w", n, err)
		}
		ps, err := p.Partition(sShards[n])
		if err != nil {
			return nil, fmt.Errorf("distjoin: node %d partitioning S: %w", n, err)
		}
		rParts[n], sParts[n] = pr, ps
		t := time.Duration(float64(pr.Elapsed()+ps.Elapsed()) * straggle(n))
		if nodePart != nil {
			nodePart[n] = t
		}
		if t > slowest {
			slowest = t
		}
	}

	// Phase 2: all-to-all exchange. Node i sends partition p (of either
	// relation) to node p & (Nodes-1); physical bytes include dummy padding
	// for FPGA-written partitions (8 bytes per addressable slot). Under a
	// fault scenario the exchange runs message by message with retries,
	// checksum verification and crash takeover (faulttolerance.go).
	ex, err := runExchange(rParts, sParts, opts, inj, global)
	if err != nil {
		return nil, err
	}

	// Phase 3: per owning node, join its partitions, each assembled from
	// all nodes' pieces. After a crash, ownership reflects the takeover.
	ownedGPs := make([][]int, opts.Nodes)
	for gp := 0; gp < global; gp++ {
		n := ex.ownerOf[gp]
		ownedGPs[n] = append(ownedGPs[n], gp)
	}
	var matches int64
	var checksum uint64
	var slowestJoin time.Duration
	penalty := 1.0
	if opts.UseFPGA {
		// Received partitions were written by remote agents (RDMA NIC /
		// FPGA), so the local CPU pays the Table 1 probe penalty.
		penalty = opts.Platform.Coherence.ProbePenalty()
	}
	for n := 0; n < opts.Nodes; n++ {
		if len(ownedGPs[n]) == 0 {
			continue
		}
		rm := newMerged(rParts, ownedGPs[n])
		sm := newMerged(sParts, ownedGPs[n])
		bp, err := joincore.BuildProbe(rm, sm, opts.Threads)
		if err != nil {
			return nil, err
		}
		matches += bp.Matches
		checksum += bp.Checksum
		t := time.Duration(float64(bp.Elapsed) * penalty * straggle(n))
		if nodeJoin != nil {
			nodeJoin[n] = t
		}
		if t > slowestJoin {
			slowestJoin = t
		}
	}

	res := &Result{
		Matches:        matches,
		Checksum:       checksum,
		PartitionTime:  slowest,
		ExchangeTime:   time.Duration(ex.seconds * float64(time.Second)),
		JoinTime:       slowestJoin,
		BytesExchanged: ex.payloadBytes,
		Nodes:          opts.Nodes,
		GlobalFanOut:   global,
		Retries:        ex.retries,
		CorruptPieces:  ex.corruptPieces,
		ResentBytes:    ex.resentBytes,
		FailedNodes:    ex.failedNodes,
		Degraded:       ex.degraded,
	}
	res.Total = res.PartitionTime + res.ExchangeTime + res.JoinTime
	if opts.Trace != nil {
		res.Trace = opts.Trace
		emitTrace(opts.Trace, res, nodePart, nodeJoin)
	}
	return res, nil
}

// makePartitioner is a package variable so tests can substitute a faulty
// backend and exercise the recovery boundary.
var makePartitioner = func(opts Options, global int) (partition.Partitioner, error) {
	if opts.UseFPGA {
		return partition.NewFPGA(partition.FPGAOptions{
			Partitions:      global,
			Hash:            true,
			Format:          opts.Format,
			PadFraction:     0.5,
			Platform:        opts.Platform,
			FallbackThreads: opts.Threads,
		})
	}
	return partition.NewCPU(partition.CPUOptions{
		Partitions: global,
		Hash:       true,
		Threads:    opts.Threads,
	})
}

// shard splits rel round-robin into n shards (the arrival distribution of a
// scan spread over a cluster).
func shard(rel *workload.Relation, n int) []*workload.Relation {
	shards := make([]*workload.Relation, n)
	sizes := make([]int, n)
	for i := 0; i < rel.NumTuples; i++ {
		sizes[i%n]++
	}
	idx := make([]int, n)
	for i := range shards {
		shards[i], _ = workload.NewRelation(workload.RowLayout, 8, sizes[i])
	}
	for i := 0; i < rel.NumTuples; i++ {
		s := i % n
		shards[s].SetTuple(idx[s], rel.Key(i), rel.Payload(i))
		idx[s]++
	}
	return shards
}

// merged presents a set of global partitions, each assembled from every
// source node's piece, as a joincore.Partitions. The set is the partitions
// one node owns — by the static `gp & (Nodes-1)` rule, or after a crash
// takeover an arbitrary list.
type merged struct {
	parts []*partition.Result
	gps   []int
	// prefix[i][src] is the slot offset of source src's piece within the
	// i-th owned partition.
	prefix [][]int
	total  []int
}

func newMerged(parts []*partition.Result, gps []int) *merged {
	m := &merged{parts: parts, gps: gps}
	m.prefix = make([][]int, len(gps))
	m.total = make([]int, len(gps))
	for i, gp := range gps {
		off := make([]int, len(parts)+1)
		for src := range parts {
			off[src+1] = off[src] + parts[src].SlotCount(gp)
		}
		m.prefix[i] = off
		m.total[i] = off[len(parts)]
	}
	return m
}

func (m *merged) NumPartitions() int  { return len(m.gps) }
func (m *merged) SlotCount(p int) int { return m.total[p] }
func (m *merged) Slot(p, i int) (uint32, uint32, bool) {
	off := m.prefix[p]
	// Linear search over source pieces (few nodes: linear is fine).
	src := 0
	for off[src+1] <= i {
		src++
	}
	return m.parts[src].Slot(m.gps[p], i-off[src])
}
