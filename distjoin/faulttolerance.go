// Fault-tolerant exchange for the distributed join: piece construction,
// end-to-end checksum verification, and graceful degradation after node
// crashes.
//
// Fault model (see DESIGN.md §8): nodes are fail-stop, but — as in the
// one-sided RDMA designs the paper builds on (Barthels et al.) — a crashed
// node's registered memory remains remotely readable, so survivors can
// re-pull its partition pieces with one-sided reads. Partition ownership of
// a crashed node is rehashed deterministically onto the survivor set, which
// keeps the degraded join's Matches and Checksum identical to the
// fault-free run: every global partition is still joined exactly once.
package distjoin

import (
	"fmt"

	"fpgapart/internal/faults"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/rdma"
	"fpgapart/partition"
)

// exchangeOutcome aggregates the exchange phase for join().
type exchangeOutcome struct {
	seconds       float64
	payloadBytes  int64 // one clean copy of every off-node piece
	resentBytes   int64 // everything beyond that (retries, waste, recovery)
	retries       int64
	corruptPieces int64
	failedNodes   []int
	degraded      bool
	// ownerOf maps each global partition to the node that joins it (the
	// static owner, or its takeover after a crash).
	ownerOf []int
}

// runExchange times the all-to-all exchange. Without an injector it is the
// original perfect-cluster matrix model; with one it simulates the exchange
// piece by piece under the fault scenario.
func runExchange(rParts, sParts []*partition.Result, opts Options, inj *faults.Injector, global int) (*exchangeOutcome, error) {
	ex := &exchangeOutcome{ownerOf: make([]int, global)}
	for gp := 0; gp < global; gp++ {
		ex.ownerOf[gp] = gp & (opts.Nodes - 1)
	}
	if inj == nil {
		return runPerfectExchange(rParts, sParts, opts, global, ex)
	}
	return runFaultyExchange(rParts, sParts, opts, inj, global, ex)
}

// runPerfectExchange is the fault-free fast path: exchange time from the
// byte matrix alone, exactly as before the fault-tolerance layer.
func runPerfectExchange(rParts, sParts []*partition.Result, opts Options, global int, ex *exchangeOutcome) (*exchangeOutcome, error) {
	sendBytes := make([][]int64, opts.Nodes)
	for i := range sendBytes {
		sendBytes[i] = make([]int64, opts.Nodes)
		for gp := 0; gp < global; gp++ {
			dst := ex.ownerOf[gp]
			bytes := pieceBytes(rParts[i], sParts[i], gp)
			sendBytes[i][dst] += bytes
			if dst != i {
				ex.payloadBytes += bytes
			}
		}
	}
	sec, err := opts.Fabric.ExchangeSeconds(sendBytes)
	if err != nil {
		return nil, err
	}
	ex.seconds = sec
	return ex, nil
}

// pieceBytes is the physical size of node src's piece of global partition
// gp: both relations' addressable slots (including dummy padding for
// FPGA-written partitions) at 8 bytes each.
func pieceBytes(r, s *partition.Result, gp int) int64 {
	return int64(r.SlotCount(gp)+s.SlotCount(gp)) * 8
}

// pieceChecksum is the end-to-end checksum the receiver verifies after
// reassembling a piece, built from the per-partition checksums of both
// relations' pieces (partition.Result.PartitionChecksum).
func pieceChecksum(r, s *partition.Result, gp int) uint64 {
	return uint64(r.PartitionChecksum(gp))<<32 | uint64(s.PartitionChecksum(gp))
}

func runFaultyExchange(rParts, sParts []*partition.Result, opts Options, inj *faults.Injector, global int, ex *exchangeOutcome) (*exchangeOutcome, error) {
	nodes := opts.Nodes
	crashed := map[int]bool{}
	for _, n := range inj.CrashedNodes() {
		crashed[n] = true
	}

	// Build the off-node piece list in deterministic (src, gp) order, with
	// sender-side checksums recorded before anything leaves the node.
	var pieces []rdma.Piece
	sentSums := map[[2]int]uint64{}
	for src := 0; src < nodes; src++ {
		for gp := 0; gp < global; gp++ {
			dst := ex.ownerOf[gp]
			bytes := pieceBytes(rParts[src], sParts[src], gp)
			if dst == src || bytes == 0 {
				continue
			}
			pieces = append(pieces, rdma.Piece{Src: src, Dst: dst, Bytes: bytes, ID: uint64(gp)})
			sentSums[[2]int{src, gp}] = pieceChecksum(rParts[src], sParts[src], gp)
			ex.payloadBytes += bytes
		}
	}

	main, err := opts.Fabric.ExchangePieces(pieces, rdma.ExchangeFaults{
		Injector: inj, Retry: opts.Retry, Phase: 0, ApplyCrashes: true,
	})
	if err != nil {
		return nil, err
	}
	ex.seconds += main.Seconds
	ex.retries += main.Retries
	ex.corruptPieces += main.CorruptPieces
	ex.resentBytes += main.RetransmittedBytes + main.WastedBytes

	// Every piece that failed on a healthy link is a hard error: the retry
	// budget is sized so this only happens on pathological scenarios, and
	// silently losing a piece would corrupt the join.
	for i, oc := range main.Outcomes {
		p := pieces[i]
		if oc != rdma.PieceDelivered && !crashed[p.Dst] && !crashed[p.Src] {
			return nil, fmt.Errorf("distjoin: retry budget exhausted for piece %d (node %d → %d)", p.ID, p.Src, p.Dst)
		}
	}
	// Receiver-side verification of delivered pieces against the sender
	// checksums (corrupt copies were already re-requested in-flight; a
	// mismatch here would mean corrupt data survived the retry protocol).
	for i, oc := range main.Outcomes {
		if oc != rdma.PieceDelivered {
			continue
		}
		p := pieces[i]
		got := pieceChecksum(rParts[p.Src], sParts[p.Src], int(p.ID))
		if got != sentSums[[2]int{p.Src, int(p.ID)}] {
			return nil, fmt.Errorf("distjoin: piece %d (node %d → %d) failed checksum verification after retries", p.ID, p.Src, p.Dst)
		}
	}

	if len(crashed) == 0 {
		return ex, nil
	}

	// Graceful degradation: rehash the crashed nodes' partitions onto the
	// survivor set and re-pull the affected pieces. Survivors also re-pull
	// every piece sourced at a crashed node — delivery of those is
	// uncertain at the crash point, and one-sided reads are idempotent.
	ex.degraded = true
	ex.failedNodes = inj.CrashedNodes()
	var survivors []int
	for n := 0; n < nodes; n++ {
		if !crashed[n] {
			survivors = append(survivors, n)
		}
	}
	for gp := 0; gp < global; gp++ {
		if crashed[ex.ownerOf[gp]] {
			ex.ownerOf[gp] = survivors[int(hashutil.Murmur32Finalizer(uint32(gp)))%len(survivors)]
		}
	}

	var recPieces []rdma.Piece
	for src := 0; src < nodes; src++ {
		for gp := 0; gp < global; gp++ {
			staticOwner := gp & (nodes - 1)
			dst := ex.ownerOf[gp]
			needsRepull := crashed[staticOwner] || crashed[src]
			if !needsRepull || dst == src {
				continue
			}
			bytes := pieceBytes(rParts[src], sParts[src], gp)
			if bytes == 0 {
				continue
			}
			recPieces = append(recPieces, rdma.Piece{Src: src, Dst: dst, Bytes: bytes, ID: uint64(gp)})
		}
	}
	rec, err := opts.Fabric.ExchangePieces(recPieces, rdma.ExchangeFaults{
		Injector: inj, Retry: opts.Retry, Phase: 1, ApplyCrashes: false,
	})
	if err != nil {
		return nil, err
	}
	ex.seconds += rec.Seconds
	ex.retries += rec.Retries
	ex.corruptPieces += rec.CorruptPieces
	for _, p := range recPieces {
		ex.resentBytes += p.Bytes
	}
	ex.resentBytes += rec.RetransmittedBytes
	for i, oc := range rec.Outcomes {
		if oc != rdma.PieceDelivered {
			p := recPieces[i]
			return nil, fmt.Errorf("distjoin: recovery re-pull of piece %d (node %d → %d) failed", p.ID, p.Src, p.Dst)
		}
	}
	for i, oc := range rec.Outcomes {
		if oc != rdma.PieceDelivered {
			continue
		}
		p := recPieces[i]
		got := pieceChecksum(rParts[p.Src], sParts[p.Src], int(p.ID))
		want, ok := sentSums[[2]int{p.Src, int(p.ID)}]
		if ok && got != want {
			return nil, fmt.Errorf("distjoin: recovery piece %d (node %d → %d) failed checksum verification", p.ID, p.Src, p.Dst)
		}
	}
	return ex, nil
}
