package distjoin

import (
	"fmt"
	"time"

	"fpgapart/internal/simtrace"
)

// Trace component names. The cluster rows show the synchronous phase
// barriers (each phase as long as its slowest node); the per-node rows show
// where each node actually spent its time inside those barriers.
const traceCompCluster = "cluster"

// emitTrace lays the finished join out on the session's timeline — one trace
// microsecond per simulated microsecond — and records the exchange counters.
// Phases are cluster-synchronous, so the cluster spans abut: partition at
// [0, P], exchange at [P, P+E], local join at [P+E, P+E+J]. Per-node spans
// start at their phase barrier and run for that node's own duration (zero
// durations are skipped: a node that owned no partitions after a crash
// takeover has no join span). Crashed nodes get an Instant at the start of
// the exchange, the phase during which they failed.
func emitTrace(sess *simtrace.Session, res *Result, nodePart, nodeJoin []time.Duration) {
	us := func(d time.Duration) int64 { return d.Microseconds() }
	partEnd := us(res.PartitionTime)
	exEnd := partEnd + us(res.ExchangeTime)

	tr := sess.Tracer
	tr.Span(traceCompCluster, "partition", 0, partEnd)
	tr.Span(traceCompCluster, "exchange", partEnd, us(res.ExchangeTime))
	tr.Span(traceCompCluster, "local_join", exEnd, us(res.JoinTime))
	for n := 0; n < res.Nodes; n++ {
		comp := fmt.Sprintf("node%d", n)
		if d := us(nodePart[n]); d > 0 {
			tr.Span(comp, "partition", 0, d)
		}
		if d := us(nodeJoin[n]); d > 0 {
			tr.Span(comp, "local_join", exEnd, d)
		}
	}
	for _, n := range res.FailedNodes {
		tr.Instant(fmt.Sprintf("node%d", n), "crash", partEnd)
	}

	m := sess.Metrics
	m.Counter("distjoin.matches").Add(res.Matches)
	m.Counter("distjoin.bytes_exchanged").Add(res.BytesExchanged)
	m.Counter("distjoin.resent_bytes").Add(res.ResentBytes)
	m.Counter("distjoin.retries").Add(res.Retries)
	m.Counter("distjoin.corrupt_pieces").Add(res.CorruptPieces)
	m.Counter("distjoin.failed_nodes").Add(int64(len(res.FailedNodes)))
}
