package distjoin

import (
	"errors"
	"strings"
	"testing"

	"fpgapart/internal/faults"
	"fpgapart/internal/rdma"
	"fpgapart/partition"
	"fpgapart/workload"
)

// acceptance scenario of the fault-tolerance layer: node crash mid-exchange
// + 1% message corruption + one degraded link.
func acceptanceScenario(seed uint64) *faults.Scenario {
	return &faults.Scenario{
		Seed:        seed,
		CorruptProb: 0.01,
		Links:       []faults.Link{{Src: 0, Dst: 2, Factor: 0.25}},
		Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.5}},
	}
}

func TestFaultScenarioPreservesJoinResult(t *testing.T) {
	in := testInput(t, 1<<13, 1<<14)
	opts := Options{Nodes: 4, PartitionsPerNode: 64, Threads: 2}
	clean, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = acceptanceScenario(2026)
	faulty, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Matches != clean.Matches || faulty.Checksum != clean.Checksum {
		t.Fatalf("degraded join %d/%#x, fault-free %d/%#x",
			faulty.Matches, faulty.Checksum, clean.Matches, clean.Checksum)
	}
	if !faulty.Degraded {
		t.Error("crash scenario not reported as degraded")
	}
	if len(faulty.FailedNodes) != 1 || faulty.FailedNodes[0] != 1 {
		t.Errorf("failed nodes %v, want [1]", faulty.FailedNodes)
	}
	if faulty.Retries == 0 {
		t.Error("1% corruption produced zero retries")
	}
	if faulty.CorruptPieces == 0 {
		t.Error("1% corruption produced zero corrupt pieces")
	}
	if faulty.ResentBytes == 0 {
		t.Error("no resent bytes despite corruption and a crash")
	}
	if faulty.ExchangeTime <= clean.ExchangeTime {
		t.Errorf("faulty exchange (%v) not slower than clean (%v)",
			faulty.ExchangeTime, clean.ExchangeTime)
	}
	if clean.Degraded || clean.Retries != 0 || clean.CorruptPieces != 0 || len(clean.FailedNodes) != 0 {
		t.Errorf("fault-free run reported faults: %+v", clean)
	}
}

func TestFaultScenarioReproducible(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	opts := Options{Nodes: 4, PartitionsPerNode: 32, Threads: 2, Faults: acceptanceScenario(7)}
	a, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every simulated (non-wall-clock) field must be byte-for-byte equal.
	if a.Matches != b.Matches || a.Checksum != b.Checksum ||
		a.ExchangeTime != b.ExchangeTime || a.BytesExchanged != b.BytesExchanged ||
		a.Retries != b.Retries || a.CorruptPieces != b.CorruptPieces ||
		a.ResentBytes != b.ResentBytes || a.Degraded != b.Degraded ||
		len(a.FailedNodes) != len(b.FailedNodes) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	// A different seed must change the exchange's fault accounting.
	opts.Faults = acceptanceScenario(8)
	c, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Matches != a.Matches || c.Checksum != a.Checksum {
		t.Error("seed changed the join result")
	}
	if c.Retries == a.Retries && c.ExchangeTime == a.ExchangeTime {
		t.Error("different seed left exchange accounting identical")
	}
}

// Property: across seeds, crash patterns and fault rates, degraded joins
// preserve Matches and Checksum exactly.
func TestPropertyDegradedJoinPreservesResult(t *testing.T) {
	in := testInput(t, 1<<12, 1<<12)
	clean, err := Join(in.R, in.S, Options{Nodes: 8, PartitionsPerNode: 16, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		crashA := int(seed) % 8
		crashB := (int(seed)*3 + 1) % 8
		sc := &faults.Scenario{
			Seed:        seed,
			DropProb:    0.02,
			CorruptProb: 0.01,
			DelayProb:   0.05,
			DelayUS:     25,
			Links:       []faults.Link{{Src: int(seed) % 8, Dst: (int(seed) + 1) % 8, Factor: 0.5}},
			Crashes:     []faults.Crash{{Node: crashA, AfterFraction: float64(seed%3) / 2}},
			Stragglers:  []faults.Straggler{{Node: (crashA + 1) % 8, Factor: 2}},
		}
		if crashB != crashA {
			sc.Crashes = append(sc.Crashes, faults.Crash{Node: crashB, AfterFraction: 0.25})
		}
		res, err := Join(in.R, in.S, Options{Nodes: 8, PartitionsPerNode: 16, Threads: 2, Faults: sc})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Matches != clean.Matches || res.Checksum != clean.Checksum {
			t.Fatalf("seed %d: degraded join %d/%#x, fault-free %d/%#x",
				seed, res.Matches, res.Checksum, clean.Matches, clean.Checksum)
		}
		if !res.Degraded || len(res.FailedNodes) == 0 {
			t.Fatalf("seed %d: crashes not reflected: %+v", seed, res)
		}
	}
}

func TestFPGAFaultScenarioPreservesResult(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	opts := Options{Nodes: 4, PartitionsPerNode: 64, Threads: 2, UseFPGA: true, Format: partition.HistMode}
	clean, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = acceptanceScenario(31)
	faulty, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Matches != clean.Matches || faulty.Checksum != clean.Checksum {
		t.Fatalf("FPGA degraded join %d/%#x, fault-free %d/%#x",
			faulty.Matches, faulty.Checksum, clean.Matches, clean.Checksum)
	}
	if !faulty.Degraded {
		t.Error("not degraded")
	}
}

func TestStragglerSlowsPhases(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	base := Options{Nodes: 2, PartitionsPerNode: 64, Threads: 1}
	clean, err := Join(in.R, in.S, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Faults = &faults.Scenario{Seed: 5, Stragglers: []faults.Straggler{{Node: 0, Factor: 8}}}
	slow, err := Join(in.R, in.S, base)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Matches != clean.Matches || slow.Checksum != clean.Checksum {
		t.Fatal("straggler changed the join result")
	}
	if slow.Degraded {
		t.Error("straggler alone must not degrade the join")
	}
	if slow.ExchangeTime <= clean.ExchangeTime {
		t.Errorf("8× straggler exchange %v not slower than clean %v", slow.ExchangeTime, clean.ExchangeTime)
	}
}

func TestValidationFaultOptions(t *testing.T) {
	in := testInput(t, 64, 64)
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4, Threads: -1}); err == nil {
		t.Error("negative Threads accepted")
	}
	badFabric := &rdma.Fabric{Nodes: 2, LinkGBps: 0, MessageBytes: 1}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4, Fabric: badFabric}); err == nil {
		t.Error("invalid fabric accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4, Fabric: rdma.FDRCluster(4)}); err == nil {
		t.Error("fabric/join node count mismatch accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4, Fabric: rdma.FDRCluster(3)}); err == nil {
		t.Error("non-power-of-two fabric accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Faults: &faults.Scenario{Crashes: []faults.Crash{{Node: 5}}}}); err == nil {
		t.Error("crash of out-of-range node accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Faults: &faults.Scenario{Crashes: []faults.Crash{{Node: 0}, {Node: 1}}}}); err == nil {
		t.Error("scenario crashing every node accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Faults: &faults.Scenario{DropProb: 2}}); err == nil {
		t.Error("invalid fault probabilities accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Faults: &faults.Scenario{Stragglers: []faults.Straggler{{Node: 3, Factor: 2}}}}); err == nil {
		t.Error("out-of-range straggler accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Faults: &faults.Scenario{Links: []faults.Link{{Src: 0, Dst: 9, Factor: 0.5}}}}); err == nil {
		t.Error("out-of-range degraded link accepted")
	}
	if _, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4,
		Retry: rdma.RetryPolicy{JitterFrac: 3}}); err == nil {
		t.Error("invalid retry policy accepted")
	}
}

// panicPartitioner stands in for a backend whose simulator hits an
// invariant violation mid-run.
type panicPartitioner struct{}

func (panicPartitioner) Name() string { return "panic" }
func (panicPartitioner) Partition(*workload.Relation) (*partition.Result, error) {
	panic("fpga: push into full FIFO (back-pressure violated)")
}

func TestSimulatorPanicSurfacesAsError(t *testing.T) {
	orig := makePartitioner
	makePartitioner = func(Options, int) (partition.Partitioner, error) { return panicPartitioner{}, nil }
	defer func() { makePartitioner = orig }()

	in := testInput(t, 256, 256)
	res, err := Join(in.R, in.S, Options{Nodes: 2, PartitionsPerNode: 4, Threads: 1})
	if res != nil || err == nil {
		t.Fatalf("panicking backend returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, ErrSimulatorFault) {
		t.Errorf("error %v is not ErrSimulatorFault", err)
	}
	if !errors.Is(err, partition.ErrSimulatorFault) {
		t.Error("sentinel not shared with package partition")
	}
	if !strings.Contains(err.Error(), "back-pressure violated") {
		t.Errorf("panic message lost: %v", err)
	}
}

func TestDegradedExchangeAccountsRecoveryTraffic(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	opts := Options{Nodes: 4, PartitionsPerNode: 32, Threads: 1,
		Faults: &faults.Scenario{Seed: 3, Crashes: []faults.Crash{{Node: 2, AfterFraction: 0.5}}}}
	res, err := Join(in.R, in.S, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("not degraded")
	}
	// The takeover re-pulls at least the crashed node's owned partitions.
	if res.ResentBytes == 0 {
		t.Error("recovery round moved no bytes")
	}
	// Payload accounting stays the clean-copy volume.
	clean, err := Join(in.R, in.S, Options{Nodes: 4, PartitionsPerNode: 32, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesExchanged != clean.BytesExchanged {
		t.Errorf("payload bytes %d differ from fault-free %d", res.BytesExchanged, clean.BytesExchanged)
	}
}
