package distjoin

import (
	"reflect"
	"testing"
	"time"
)

// TestSameSeedByteIdenticalResult is the determinism regression gate for the
// fault-tolerance layer: the same fault scenario under the same seed must
// reproduce the entire Result byte-for-byte — not just the join answer, but
// every piece of fault accounting (Retries, CorruptPieces, ResentBytes,
// FailedNodes, ExchangeTime). A multiset-stable checksum cannot catch
// order-sensitive divergence (map iteration, scheduling), so this compares
// the whole struct.
//
// PartitionTime, JoinTime and Total are measured host wall-clock and are
// zeroed before comparison; everything else is simulated and must replay
// exactly.
func TestSameSeedByteIdenticalResult(t *testing.T) {
	in := testInput(t, 1<<13, 1<<13)
	opts := Options{Nodes: 4, PartitionsPerNode: 32, Threads: 2, Faults: acceptanceScenario(2026)}

	run := func() Result {
		res, err := Join(in.R, in.S, opts)
		if err != nil {
			t.Fatal(err)
		}
		norm := *res
		norm.PartitionTime = time.Duration(0)
		norm.JoinTime = time.Duration(0)
		norm.Total = time.Duration(0)
		return norm
	}

	a := run()
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, diverging results:\nfirst:  %+v\nsecond: %+v", a, b)
	}

	// Non-vacuity: the scenario must actually exercise the retry and
	// recovery machinery, otherwise identical zeros prove nothing.
	if a.Retries == 0 {
		t.Error("scenario produced zero retries — determinism comparison is vacuous")
	}
	if a.ResentBytes == 0 {
		t.Error("scenario produced zero resent bytes — determinism comparison is vacuous")
	}
	if !a.Degraded || len(a.FailedNodes) == 0 {
		t.Error("scenario did not degrade the join — crash path not replayed")
	}
}
