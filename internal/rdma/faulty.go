// Fault-aware exchange: the message-level counterpart of ExchangeSeconds.
// Where ExchangeSeconds prices a perfect all-to-all shuffle from the byte
// matrix alone, ExchangePieces walks every piece message by message under a
// fault injector and a retry policy, so that drops, corruption, degraded
// links, stragglers and crashes show up as retransmissions, timeouts and
// wasted traffic — with fully deterministic timing and counters.
package rdma

import (
	"fmt"
	"math"

	"fpgapart/internal/faults"
)

// RetryPolicy governs per-message timeouts and retransmission of the
// fault-aware exchange. The zero value selects defaults.
type RetryPolicy struct {
	// MaxAttempts is the per-message transmission budget (first try
	// included) and also the per-piece budget of checksum re-request
	// rounds. Default 5.
	MaxAttempts int
	// TimeoutUS is the sender's per-message ack timeout. Default: 4× the
	// healthy wire time of a full message plus two verb latencies.
	TimeoutUS float64
	// BackoffBaseUS is the backoff before the first retransmission; it
	// doubles every further attempt. Default 10 µs.
	BackoffBaseUS float64
	// BackoffMaxUS caps the exponential backoff. Default 5000 µs.
	BackoffMaxUS float64
	// JitterFrac is the fraction of each backoff that is randomized
	// (0 = fully deterministic backoff, 1 = fully random). Default 0.5.
	JitterFrac float64
}

// withDefaults resolves zero fields against the fabric.
func (p RetryPolicy) withDefaults(f *Fabric) RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.TimeoutUS == 0 {
		wire := float64(f.MessageBytes) / (f.LinkGBps * 1e9) * 1e6
		p.TimeoutUS = 4*wire + 2*f.LatencyUS
	}
	if p.BackoffBaseUS == 0 {
		p.BackoffBaseUS = 10
	}
	if p.BackoffMaxUS == 0 {
		p.BackoffMaxUS = 5000
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	return p
}

// Validate reports whether the policy's explicit fields are usable.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("rdma: negative retry budget %d", p.MaxAttempts)
	}
	if p.TimeoutUS < 0 || p.BackoffBaseUS < 0 || p.BackoffMaxUS < 0 {
		return fmt.Errorf("rdma: negative retry timing (timeout %v, base %v, max %v)",
			p.TimeoutUS, p.BackoffBaseUS, p.BackoffMaxUS)
	}
	if p.JitterFrac < 0 || p.JitterFrac > 1 {
		return fmt.Errorf("rdma: jitter fraction %v outside [0, 1]", p.JitterFrac)
	}
	return nil
}

// BackoffUS returns the backoff before retransmission attempt (attempt ≥ 1
// is the first retry): min(BackoffMaxUS, BackoffBaseUS·2^(attempt-1)),
// with JitterFrac of it scaled by jitter01 ∈ [0, 1).
func (p RetryPolicy) BackoffUS(attempt int, jitter01 float64) float64 {
	if attempt < 1 {
		return 0
	}
	b := p.BackoffBaseUS * math.Pow(2, float64(attempt-1))
	if b > p.BackoffMaxUS {
		b = p.BackoffMaxUS
	}
	return b * (1 - p.JitterFrac + p.JitterFrac*jitter01)
}

// Piece is one partition piece to transfer: Bytes from node Src to node Dst,
// identified by ID (the global partition index) for the deterministic
// decision streams. Src == Dst pieces are local and free.
type Piece struct {
	Src, Dst int
	Bytes    int64
	ID       uint64
}

// PieceOutcome is the final state of one piece after the exchange.
type PieceOutcome int

const (
	// PieceDelivered: the piece arrived and passed checksum verification.
	PieceDelivered PieceOutcome = iota
	// PieceFailed: the retry budget was exhausted (crashed destination or a
	// persistently failing link).
	PieceFailed
	// PieceUnsent: the source crashed before sending the piece.
	PieceUnsent
)

// ExchangeStats reports a fault-aware exchange.
type ExchangeStats struct {
	// Seconds is the simulated exchange time including retransmissions,
	// timeouts, backoffs and straggler slowdowns, bottlenecked by the
	// busiest port as in ExchangeSeconds.
	Seconds float64
	// Messages is the number of transmission attempts; Retries counts the
	// retransmissions among them (message-level and whole-piece).
	Messages, Retries int64
	// Dropped, Corrupted and Delayed count per-fate transmission attempts.
	Dropped, Corrupted, Delayed int64
	// CorruptPieces counts piece receptions that failed checksum
	// verification and were re-requested.
	CorruptPieces int64
	// RetransmittedBytes is the wire traffic beyond one clean copy of every
	// piece; WastedBytes is traffic delivered to a node that then crashed.
	RetransmittedBytes, WastedBytes int64
	// Outcomes is parallel to the pieces slice.
	Outcomes []PieceOutcome
	// FailedNodes lists destinations whose pieces failed because the node
	// crashed (sorted, unique).
	FailedNodes []int
}

// ExchangeFaults configures a fault-aware exchange.
type ExchangeFaults struct {
	// Injector decides message fates; required.
	Injector *faults.Injector
	// Retry is the timeout/retransmission policy (zero value = defaults).
	Retry RetryPolicy
	// Phase salts the decision streams so repeated exchanges (e.g. the
	// recovery round) draw independent outcomes.
	Phase uint64
	// ApplyCrashes enables the scenario's node crashes; the recovery round
	// runs with it off, over the survivor set.
	ApplyCrashes bool
}

// ExchangePieces simulates transferring the pieces under the fault model.
// Pieces are processed in slice order, which — together with the hash-based
// injector — makes the result independent of wall-clock and scheduling.
func (f *Fabric) ExchangePieces(pieces []Piece, ef ExchangeFaults) (*ExchangeStats, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if ef.Injector == nil {
		return nil, fmt.Errorf("rdma: ExchangePieces requires a fault injector")
	}
	if err := ef.Retry.Validate(); err != nil {
		return nil, err
	}
	rp := ef.Retry.withDefaults(f)
	inj := ef.Injector

	for i, p := range pieces {
		if p.Src < 0 || p.Src >= f.Nodes || p.Dst < 0 || p.Dst >= f.Nodes {
			return nil, fmt.Errorf("rdma: piece %d links node %d to %d on a %d-node fabric", i, p.Src, p.Dst, f.Nodes)
		}
		if p.Bytes < 0 {
			return nil, fmt.Errorf("rdma: piece %d has negative size %d", i, p.Bytes)
		}
	}

	// Crash cutoffs, measured in first-try messages through the node's
	// ports (in either direction), so AfterFraction 0.5 fails the node
	// halfway through its share of the exchange.
	cut := make([]int64, f.Nodes)
	down := make([]bool, f.Nodes)
	progress := make([]int64, f.Nodes)
	for n := 0; n < f.Nodes; n++ {
		cut[n] = math.MaxInt64
	}
	if ef.ApplyCrashes {
		total := make([]int64, f.Nodes)
		for _, p := range pieces {
			if p.Src == p.Dst {
				continue
			}
			msgs := (p.Bytes + int64(f.MessageBytes) - 1) / int64(f.MessageBytes)
			total[p.Src] += msgs
			total[p.Dst] += msgs
		}
		for _, n := range inj.CrashedNodes() {
			if n >= f.Nodes {
				return nil, fmt.Errorf("rdma: crash of node %d on a %d-node fabric", n, f.Nodes)
			}
			frac, _ := inj.CrashFraction(n)
			cut[n] = int64(frac * float64(total[n]))
			if cut[n] == 0 {
				down[n] = true
			}
		}
	}

	stats := &ExchangeStats{Outcomes: make([]PieceOutcome, len(pieces))}
	outUS := make([]float64, f.Nodes)
	inUS := make([]float64, f.Nodes)
	deliveredTo := make([]int64, f.Nodes)
	failed := map[int]bool{}
	// Once one piece on a flow exhausts its budget against a dead peer,
	// the sender's connection is in an error state: later pieces on the
	// flow fail immediately instead of re-burning the timeout budget.
	deadFlow := map[[2]int]bool{}

	for pi, p := range pieces {
		if p.Src == p.Dst || p.Bytes == 0 {
			stats.Outcomes[pi] = PieceDelivered
			continue
		}
		msgs := int((p.Bytes + int64(f.MessageBytes) - 1) / int64(f.MessageBytes))
		factor := inj.LinkFactor(p.Src, p.Dst)
		bw := f.LinkGBps * 1e9 * factor

		outcome := PieceDelivered
		// Round 0 sends every message; when the receiver's checksum
		// verification fails, later rounds selectively resend only the
		// corrupted messages (per-block CRCs localize the damage), so the
		// re-request converges even for pieces spanning many messages.
		pending := make([]int, msgs)
		for m := range pending {
			pending[m] = m
		}
	rounds:
		for round := 0; ; round++ {
			var bad []int
			for _, m := range pending {
				mb := int64(f.MessageBytes)
				if rem := p.Bytes - int64(m)*int64(f.MessageBytes); rem < mb {
					mb = rem
				}
				if down[p.Src] {
					outcome = PieceUnsent
					if m > 0 || round > 0 {
						// A partially sent piece is as lost as an unsent one.
						outcome = PieceFailed
					}
					break rounds
				}
				if down[p.Dst] {
					// Destination is dead. The first piece on this flow
					// burns its full budget on timeouts; afterwards the
					// connection is declared dead and later pieces fail
					// immediately.
					if !deadFlow[[2]int{p.Src, p.Dst}] {
						for a := 1; a < rp.MaxAttempts; a++ {
							outUS[p.Src] += rp.TimeoutUS + rp.BackoffUS(a, inj.Jitter(faults.MsgID{
								Phase: ef.Phase, Src: p.Src, Dst: p.Dst, Piece: p.ID, Round: round, Msg: m, Attempt: a,
							}))
							stats.Messages++
							stats.Retries++
						}
						outUS[p.Src] += rp.TimeoutUS
						stats.Messages++
						deadFlow[[2]int{p.Src, p.Dst}] = true
					}
					outcome = PieceFailed
					failed[p.Dst] = true
					break rounds
				}

				sent := false
				for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
					id := faults.MsgID{Phase: ef.Phase, Src: p.Src, Dst: p.Dst,
						Piece: p.ID, Round: round, Msg: m, Attempt: attempt}
					stats.Messages++
					if round > 0 || attempt > 0 {
						stats.Retries++
						stats.RetransmittedBytes += mb
					}
					if attempt > 0 {
						outUS[p.Src] += rp.BackoffUS(attempt, inj.Jitter(id))
					}
					fate, delayUS := inj.MessageFate(id)
					switch fate {
					case faults.Drop:
						stats.Dropped++
						outUS[p.Src] += rp.TimeoutUS
						continue
					case faults.Corrupt:
						stats.Corrupted++
						bad = append(bad, m)
					}
					if delayUS > 0 {
						stats.Delayed++
					}
					wireUS := float64(mb)/bw*1e6 + f.LatencyUS + delayUS
					outUS[p.Src] += wireUS
					inUS[p.Dst] += float64(mb) / bw * 1e6
					deliveredTo[p.Dst] += mb
					sent = true
					break
				}
				if !sent {
					// Per-message budget exhausted on a live link.
					outcome = PieceFailed
					break rounds
				}
				// First-try messages advance the crash clocks.
				if round == 0 {
					for _, n := range []int{p.Src, p.Dst} {
						progress[n]++
						if progress[n] >= cut[n] {
							down[n] = true
						}
					}
				}
			}
			if len(bad) == 0 {
				break // checksum verifies: piece delivered
			}
			// Checksum failure at the receiver: NACK and re-request the
			// corrupted blocks, within the round budget.
			stats.CorruptPieces++
			outUS[p.Src] += f.LatencyUS
			if round+1 >= rp.MaxAttempts {
				outcome = PieceFailed
				break
			}
			pending = bad
		}
		stats.Outcomes[pi] = outcome
		if outcome != PieceDelivered && down[p.Dst] {
			failed[p.Dst] = true
		}
	}

	// Everything delivered to a node that ended the exchange crashed is
	// wasted: its partitions are re-pulled by the takeover nodes.
	for n := 0; n < f.Nodes; n++ {
		if down[n] {
			stats.WastedBytes += deliveredTo[n]
		}
	}

	// Scan node ids in order rather than ranging over the failed map: map
	// iteration order is randomized per run and FailedNodes feeds directly
	// into the caller's recovery bookkeeping.
	for n := 0; n < f.Nodes; n++ {
		if failed[n] {
			stats.FailedNodes = append(stats.FailedNodes, n)
		}
	}

	var worst float64
	for n := 0; n < f.Nodes; n++ {
		s := inj.StraggleFactor(n)
		if t := outUS[n] * s; t > worst {
			worst = t
		}
		if t := inUS[n] * s; t > worst {
			worst = t
		}
	}
	stats.Seconds = worst * 1e-6
	return stats, nil
}
