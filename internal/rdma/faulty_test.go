package rdma

import (
	"math"
	"reflect"
	"testing"

	"fpgapart/internal/faults"
)

func mustInjector(t *testing.T, s faults.Scenario) *faults.Injector {
	t.Helper()
	inj, err := faults.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// --- ExchangeSeconds under extreme skew (satellite coverage) ---

func TestExchangeAllBytesToOneNode(t *testing.T) {
	// Every node sends its full shard to node 0: reception port of node 0
	// serializes the whole volume.
	f := FDRCluster(4)
	m := make([][]int64, 4)
	for i := range m {
		m[i] = make([]int64, 4)
		if i != 0 {
			m[i][0] = 1 << 30
		}
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3<<30) / 6.8e9
	if sec < want || sec > want*1.1 {
		t.Errorf("all-to-one exchange = %v s, want ≈ %v", sec, want)
	}
}

func TestExchangeAllBytesFromOneNode(t *testing.T) {
	// Node 0 broadcasts to everyone: its injection port is the bottleneck,
	// and it also pays the per-message latency on its critical path.
	f := FDRCluster(4)
	m := make([][]int64, 4)
	for i := range m {
		m[i] = make([]int64, 4)
	}
	for j := 1; j < 4; j++ {
		m[0][j] = 1 << 30
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3<<30) / 6.8e9
	if sec < want {
		t.Errorf("one-to-all exchange = %v s, want ≥ %v", sec, want)
	}
}

func TestExchangeSingleNodeFabricMatrix(t *testing.T) {
	f := FDRCluster(1)
	sec, err := f.ExchangeSeconds([][]int64{{1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	if sec != 0 {
		t.Errorf("single-node matrix exchange = %v s, want 0", sec)
	}
}

func TestExchangeZeroMatrix(t *testing.T) {
	f := FDRCluster(8)
	m := make([][]int64, 8)
	for i := range m {
		m[i] = make([]int64, 8)
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	if sec != 0 {
		t.Errorf("zero-byte exchange = %v s, want 0", sec)
	}
}

// --- Retry/backoff timing math ---

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BackoffBaseUS: 10, BackoffMaxUS: 100, JitterFrac: 0}
	want := []float64{10, 20, 40, 80, 100, 100}
	for i, w := range want {
		if got := p.BackoffUS(i+1, 0.5); math.Abs(got-w) > 1e-9 {
			t.Errorf("attempt %d: backoff %v, want %v", i+1, got, w)
		}
	}
	if got := p.BackoffUS(0, 0.5); got != 0 {
		t.Errorf("attempt 0 backoff = %v, want 0", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{BackoffBaseUS: 100, BackoffMaxUS: 1e6, JitterFrac: 0.5}
	lo, hi := p.BackoffUS(1, 0), p.BackoffUS(1, 0.999999)
	if lo != 50 {
		t.Errorf("zero-jitter draw = %v, want 50 (1-JitterFrac scaled)", lo)
	}
	if hi <= lo || hi >= 100.0001 {
		t.Errorf("max-jitter draw = %v, want in (50, 100]", hi)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	f := FDRCluster(2)
	p := RetryPolicy{}.withDefaults(f)
	if p.MaxAttempts != 5 || p.BackoffBaseUS != 10 || p.BackoffMaxUS != 5000 || p.JitterFrac != 0.5 {
		t.Errorf("defaults = %+v", p)
	}
	wire := float64(f.MessageBytes) / (f.LinkGBps * 1e9) * 1e6
	if want := 4*wire + 2*f.LatencyUS; math.Abs(p.TimeoutUS-want) > 1e-9 {
		t.Errorf("default timeout %v, want %v", p.TimeoutUS, want)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{TimeoutUS: -1},
		{BackoffBaseUS: -1},
		{JitterFrac: 2},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("policy %d validated: %+v", i, p)
		}
	}
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Errorf("zero policy rejected: %v", err)
	}
}

// --- ExchangePieces ---

func symmetricPieces(n int, bytes int64) []Piece {
	var ps []Piece
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst {
				ps = append(ps, Piece{Src: src, Dst: dst, Bytes: bytes, ID: uint64(src*n + dst)})
			}
		}
	}
	return ps
}

func TestExchangePiecesFaultFreeMatchesMatrix(t *testing.T) {
	f := FDRCluster(4)
	pieces := symmetricPieces(4, 10<<20)
	st, err := f.ExchangePieces(pieces, ExchangeFaults{Injector: mustInjector(t, faults.Scenario{Seed: 1})})
	if err != nil {
		t.Fatal(err)
	}
	m := make([][]int64, 4)
	for i := range m {
		m[i] = make([]int64, 4)
		for j := range m[i] {
			if i != j {
				m[i][j] = 10 << 20
			}
		}
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Seconds-sec)/sec > 0.01 {
		t.Errorf("piece exchange %v s vs matrix %v s", st.Seconds, sec)
	}
	if st.Retries != 0 || st.Dropped != 0 || st.Corrupted != 0 || st.CorruptPieces != 0 {
		t.Errorf("fault-free exchange reported faults: %+v", st)
	}
	for i, oc := range st.Outcomes {
		if oc != PieceDelivered {
			t.Fatalf("piece %d outcome %v", i, oc)
		}
	}
}

func TestExchangePiecesDeterministic(t *testing.T) {
	f := FDRCluster(4)
	s := faults.Scenario{
		Seed: 99, DropProb: 0.05, CorruptProb: 0.02, DelayProb: 0.1, DelayUS: 20,
		Links:      []faults.Link{{Src: 0, Dst: 1, Factor: 0.5}},
		Stragglers: []faults.Straggler{{Node: 3, Factor: 1.5}},
	}
	run := func() *ExchangeStats {
		st, err := f.ExchangePieces(symmetricPieces(4, 4<<20), ExchangeFaults{Injector: mustInjector(t, s)})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	s.Seed = 100
	c, err := f.ExchangePieces(symmetricPieces(4, 4<<20), ExchangeFaults{Injector: mustInjector(t, s)})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Retries, c.Retries) && reflect.DeepEqual(a.Seconds, c.Seconds) {
		t.Error("different seeds produced identical retry count and timing")
	}
}

func TestExchangePiecesDropsCostTimeAndRetries(t *testing.T) {
	f := FDRCluster(2)
	clean, err := f.ExchangePieces(symmetricPieces(2, 8<<20), ExchangeFaults{Injector: mustInjector(t, faults.Scenario{Seed: 5})})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := f.ExchangePieces(symmetricPieces(2, 8<<20), ExchangeFaults{
		Injector: mustInjector(t, faults.Scenario{Seed: 5, DropProb: 0.2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Retries == 0 || lossy.Dropped == 0 {
		t.Fatalf("20%% drop produced no retries: %+v", lossy)
	}
	if lossy.Seconds <= clean.Seconds {
		t.Errorf("lossy exchange (%v s) not slower than clean (%v s)", lossy.Seconds, clean.Seconds)
	}
	if lossy.RetransmittedBytes == 0 {
		t.Error("no retransmitted bytes recorded")
	}
}

func TestExchangePiecesCorruptionRerequestsPieces(t *testing.T) {
	f := FDRCluster(2)
	st, err := f.ExchangePieces(symmetricPieces(2, 32<<20), ExchangeFaults{
		Injector: mustInjector(t, faults.Scenario{Seed: 7, CorruptProb: 0.05}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupted == 0 || st.CorruptPieces == 0 {
		t.Fatalf("5%% corruption went unnoticed: %+v", st)
	}
	for i, oc := range st.Outcomes {
		if oc != PieceDelivered {
			t.Fatalf("piece %d not delivered after re-requests: %v", i, oc)
		}
	}
}

func TestExchangePiecesDegradedLinkSlower(t *testing.T) {
	f := FDRCluster(2)
	clean, err := f.ExchangePieces(symmetricPieces(2, 16<<20), ExchangeFaults{Injector: mustInjector(t, faults.Scenario{Seed: 3})})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := f.ExchangePieces(symmetricPieces(2, 16<<20), ExchangeFaults{
		Injector: mustInjector(t, faults.Scenario{Seed: 3, Links: []faults.Link{{Src: 0, Dst: 1, Factor: 0.25}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds < clean.Seconds*3 {
		t.Errorf("4× degraded link: %v s vs clean %v s, want ≈ 4×", slow.Seconds, clean.Seconds)
	}
}

func TestExchangePiecesStragglerDominates(t *testing.T) {
	f := FDRCluster(4)
	clean, err := f.ExchangePieces(symmetricPieces(4, 8<<20), ExchangeFaults{Injector: mustInjector(t, faults.Scenario{Seed: 11})})
	if err != nil {
		t.Fatal(err)
	}
	strag, err := f.ExchangePieces(symmetricPieces(4, 8<<20), ExchangeFaults{
		Injector: mustInjector(t, faults.Scenario{Seed: 11, Stragglers: []faults.Straggler{{Node: 2, Factor: 3}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := strag.Seconds / clean.Seconds; ratio < 2.9 || ratio > 3.1 {
		t.Errorf("3× straggler changed exchange by %.2f×, want ≈ 3×", ratio)
	}
}

func TestExchangePiecesCrashFailsAndWastes(t *testing.T) {
	f := FDRCluster(4)
	pieces := symmetricPieces(4, 8<<20)
	st, err := f.ExchangePieces(pieces, ExchangeFaults{
		Injector:     mustInjector(t, faults.Scenario{Seed: 13, Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.5}}}),
		ApplyCrashes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.FailedNodes) != 1 || st.FailedNodes[0] != 1 {
		t.Fatalf("failed nodes = %v, want [1]", st.FailedNodes)
	}
	var failed, unsent int
	for i, oc := range st.Outcomes {
		switch oc {
		case PieceFailed:
			failed++
		case PieceUnsent:
			unsent++
			if pieces[i].Src != 1 {
				t.Errorf("unsent piece %d sourced at healthy node %d", i, pieces[i].Src)
			}
		}
	}
	if failed == 0 {
		t.Error("mid-exchange crash produced no failed pieces")
	}
	if st.WastedBytes == 0 {
		t.Error("mid-exchange crash wasted no delivered bytes")
	}
}

func TestExchangePiecesCrashFromStartNothingDeliveredToIt(t *testing.T) {
	f := FDRCluster(2)
	st, err := f.ExchangePieces(symmetricPieces(2, 4<<20), ExchangeFaults{
		Injector:     mustInjector(t, faults.Scenario{Seed: 17, Crashes: []faults.Crash{{Node: 0, AfterFraction: 0}}}),
		ApplyCrashes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Piece 1→0 fails (dst dead), piece 0→1 is unsent (src dead).
	if st.WastedBytes != 0 {
		t.Errorf("crash-at-start wasted %d bytes", st.WastedBytes)
	}
	var delivered int
	for _, oc := range st.Outcomes {
		if oc == PieceDelivered {
			delivered++
		}
	}
	if delivered != 0 {
		t.Errorf("%d pieces delivered through a node dead from the start", delivered)
	}
}

func TestExchangePiecesCrashIgnoredWithoutApply(t *testing.T) {
	f := FDRCluster(2)
	st, err := f.ExchangePieces(symmetricPieces(2, 4<<20), ExchangeFaults{
		Injector: mustInjector(t, faults.Scenario{Seed: 19, Crashes: []faults.Crash{{Node: 0, AfterFraction: 0}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range st.Outcomes {
		if oc != PieceDelivered {
			t.Errorf("piece %d outcome %v with crashes disabled", i, oc)
		}
	}
}

func TestExchangePiecesValidation(t *testing.T) {
	f := FDRCluster(2)
	inj := mustInjector(t, faults.Scenario{Seed: 1})
	if _, err := f.ExchangePieces(nil, ExchangeFaults{}); err == nil {
		t.Error("nil injector accepted")
	}
	if _, err := f.ExchangePieces([]Piece{{Src: 0, Dst: 5, Bytes: 1}}, ExchangeFaults{Injector: inj}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := f.ExchangePieces([]Piece{{Src: 0, Dst: 1, Bytes: -1}}, ExchangeFaults{Injector: inj}); err == nil {
		t.Error("negative piece size accepted")
	}
	if _, err := f.ExchangePieces(nil, ExchangeFaults{Injector: inj, Retry: RetryPolicy{JitterFrac: 9}}); err == nil {
		t.Error("bad retry policy accepted")
	}
	crashTooBig := mustInjector(t, faults.Scenario{Seed: 1, Crashes: []faults.Crash{{Node: 7, AfterFraction: 0.5}}})
	if _, err := f.ExchangePieces(symmetricPieces(2, 1<<20), ExchangeFaults{Injector: crashTooBig, ApplyCrashes: true}); err == nil {
		t.Error("crash of out-of-range node accepted")
	}
}
