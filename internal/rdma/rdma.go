// Package rdma models the rack-scale RDMA fabric of the paper's second
// future-work use case (Section 6, following Barthels et al.): the FPGA
// partitioner writes partitions directly to remote machines, so a
// distributed join's network exchange happens at partitioning speed.
//
// The model is deliberately simple — per-link bandwidth, per-message
// latency, full-duplex ports, all-to-all exchange — because the quantity of
// interest is the exchange time of a partitioned shuffle, not packet-level
// behaviour.
package rdma

import "fmt"

// Fabric describes a symmetric RDMA network.
type Fabric struct {
	// Nodes in the cluster.
	Nodes int
	// LinkGBps is each node's injection (and reception) bandwidth in GB/s
	// (e.g. 6.8 for FDR InfiniBand as in Barthels et al.).
	LinkGBps float64
	// LatencyUS is the one-sided verb latency in microseconds.
	LatencyUS float64
	// MessageBytes is the RDMA write size the exchange uses; smaller
	// messages pay proportionally more latency overhead.
	MessageBytes int
}

// FDRCluster returns an n-node fabric modeled on the FDR InfiniBand
// clusters of the distributed-join literature: ~6.8 GB/s per port, ~1.3 µs
// verbs latency, 256 KB exchange messages.
func FDRCluster(n int) *Fabric {
	return &Fabric{Nodes: n, LinkGBps: 6.8, LatencyUS: 1.3, MessageBytes: 256 << 10}
}

// Validate reports whether the fabric parameters are usable.
func (f *Fabric) Validate() error {
	if f.Nodes < 1 {
		return fmt.Errorf("rdma: %d nodes", f.Nodes)
	}
	if f.LinkGBps <= 0 {
		return fmt.Errorf("rdma: link bandwidth %v GB/s", f.LinkGBps)
	}
	if f.LatencyUS < 0 {
		return fmt.Errorf("rdma: negative latency")
	}
	if f.MessageBytes <= 0 {
		return fmt.Errorf("rdma: message size %d", f.MessageBytes)
	}
	return nil
}

// ExchangeSeconds returns the time for an all-to-all exchange in which
// every node sends sendBytes[i][j] bytes to node j (i == j entries are
// local and free). The exchange is bottlenecked by the busiest port:
// max over nodes of (bytes injected, bytes received) / link bandwidth,
// plus message latencies on the critical path.
func (f *Fabric) ExchangeSeconds(sendBytes [][]int64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if len(sendBytes) != f.Nodes {
		return 0, fmt.Errorf("rdma: matrix has %d rows for %d nodes", len(sendBytes), f.Nodes)
	}
	var worst float64
	for i := range sendBytes {
		if len(sendBytes[i]) != f.Nodes {
			return 0, fmt.Errorf("rdma: row %d has %d entries for %d nodes", i, len(sendBytes[i]), f.Nodes)
		}
		var out, in int64
		var outMsgs int64
		for j := range sendBytes[i] {
			if sendBytes[i][j] < 0 {
				return 0, fmt.Errorf("rdma: negative transfer size at [%d][%d]", i, j)
			}
			if i == j {
				continue
			}
			out += sendBytes[i][j]
			in += sendBytes[j][i]
			if sendBytes[i][j] > 0 {
				outMsgs += (sendBytes[i][j] + int64(f.MessageBytes) - 1) / int64(f.MessageBytes)
			}
		}
		port := out
		if in > port {
			port = in
		}
		t := float64(port)/(f.LinkGBps*1e9) + float64(outMsgs)*f.LatencyUS*1e-6
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// UniformExchangeSeconds is ExchangeSeconds for a balanced shuffle of
// totalBytes per node (each node sends totalBytes·(n-1)/n off-node).
func (f *Fabric) UniformExchangeSeconds(totalBytesPerNode int64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if totalBytesPerNode < 0 {
		return 0, fmt.Errorf("rdma: negative byte count")
	}
	if f.Nodes == 1 {
		return 0, nil
	}
	per := totalBytesPerNode / int64(f.Nodes)
	m := make([][]int64, f.Nodes)
	for i := range m {
		m[i] = make([]int64, f.Nodes)
		for j := range m[i] {
			if i != j {
				m[i][j] = per
			}
		}
	}
	return f.ExchangeSeconds(m)
}
