package rdma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	bad := []*Fabric{
		{Nodes: 0, LinkGBps: 1, MessageBytes: 1},
		{Nodes: 2, LinkGBps: 0, MessageBytes: 1},
		{Nodes: 2, LinkGBps: 1, LatencyUS: -1, MessageBytes: 1},
		{Nodes: 2, LinkGBps: 1, MessageBytes: 0},
	}
	for i, f := range bad {
		if f.Validate() == nil {
			t.Errorf("fabric %d validated", i)
		}
	}
	if err := FDRCluster(4).Validate(); err != nil {
		t.Errorf("FDR cluster invalid: %v", err)
	}
}

func TestUniformExchangeBandwidthBound(t *testing.T) {
	// 4 nodes, 6.8 GB/s, 1 GB per node: each node injects 3/4 GB →
	// ~0.11 s plus small latency overhead.
	f := FDRCluster(4)
	sec, err := f.UniformExchangeSeconds(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	wantBW := float64(3*(1<<28)) / 6.8e9
	if sec < wantBW || sec > wantBW*1.2 {
		t.Errorf("exchange = %v s, want ≥ %v (bandwidth bound)", sec, wantBW)
	}
}

func TestSingleNodeExchangeFree(t *testing.T) {
	f := FDRCluster(1)
	sec, err := f.UniformExchangeSeconds(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if sec != 0 {
		t.Errorf("single-node exchange = %v s, want 0", sec)
	}
}

func TestExchangeSkewBottleneck(t *testing.T) {
	// Node 0 receives everything: its reception port is the bottleneck.
	f := FDRCluster(3)
	m := [][]int64{
		{0, 0, 0},
		{1 << 30, 0, 0},
		{1 << 30, 0, 0},
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2<<30) / 6.8e9 // node 0 receives 2 GB
	if math.Abs(sec-want)/want > 0.05 {
		t.Errorf("skewed exchange = %v s, want ≈ %v", sec, want)
	}
}

func TestExchangeDiagonalFree(t *testing.T) {
	// Local (i == i) bytes cost nothing.
	f := FDRCluster(2)
	m := [][]int64{
		{1 << 40, 0},
		{0, 1 << 40},
	}
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	if sec != 0 {
		t.Errorf("local-only exchange = %v s, want 0", sec)
	}
}

func TestExchangeValidation(t *testing.T) {
	f := FDRCluster(2)
	if _, err := f.ExchangeSeconds([][]int64{{0, 0}}); err == nil {
		t.Error("short matrix accepted")
	}
	if _, err := f.ExchangeSeconds([][]int64{{0}, {0, 0}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := f.ExchangeSeconds([][]int64{{0, -1}, {0, 0}}); err == nil {
		t.Error("negative transfer accepted")
	}
	if _, err := f.UniformExchangeSeconds(-1); err == nil {
		t.Error("negative byte count accepted")
	}
}

func TestLatencyTermMatters(t *testing.T) {
	// Tiny transfers are latency-bound: halving the message size must not
	// change the time of a single small message, but many small messages
	// accumulate latency.
	f := &Fabric{Nodes: 2, LinkGBps: 100, LatencyUS: 10, MessageBytes: 1 << 10}
	m := [][]int64{{0, 64 << 10}, {0, 0}} // 64 messages
	sec, err := f.ExchangeSeconds(m)
	if err != nil {
		t.Fatal(err)
	}
	if sec < 64*10e-6 {
		t.Errorf("exchange = %v s, want ≥ 64 × 10 µs of latency", sec)
	}
}

func TestPropertyMoreNodesNeverSlowerUniform(t *testing.T) {
	// For a fixed per-node volume, growing the cluster cannot slow the
	// balanced exchange by more than the off-node fraction growth.
	f := func(raw uint8) bool {
		n := int(raw)%14 + 2
		a, err := FDRCluster(n).UniformExchangeSeconds(1 << 28)
		if err != nil {
			return false
		}
		b, err := FDRCluster(n + 1).UniformExchangeSeconds(1 << 28)
		if err != nil {
			return false
		}
		// Off-node fraction (n-1)/n grows with n, so time grows slightly —
		// but never more than ~2× the per-message latency slack.
		return b >= a*0.9 && b < a*1.5+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
