package perfbench

import (
	"fmt"

	"fpgapart/cluster"
	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
)

// The cluster suite benchmarks the sharded serving frontend end to end: a
// fixed open-loop request stream routed by the consistent-hash ring across
// three partserver shards, scatter-gathered back into one report. Every
// gated number — the avg/p95/p99 virtual-time latencies and QPS the tail
// gate pins, the moved-key fractions of a shard join (ring vs. modulo),
// quota throttling, failover reroutes, the merged output checksum — is a
// pure function of (code, seed), so any delta against the baseline is a
// true regression in routing, admission, failover, or merge behaviour.

// clusterRequests is the stream length of every cluster cell: long enough
// to spread across all shards and fill the latency tail, short enough for a
// CI gate.
const clusterRequests = 24

// clusterShards is the shard pool size of every cell.
const clusterShards = 3

// clusterScenario is one routing-tier cell.
type clusterScenario struct {
	label    string
	quota    int
	hot      float64
	scenario *faults.Scenario
}

func runClusterSuite(cfg Config) ([]Record, error) {
	scenarios := []clusterScenario{
		// Plain routing and merge: the latency/QPS/balance baseline.
		{label: "faultfree"},
		// A hot tenant issuing 40% of the stream under a per-window quota:
		// gates the throttle counters and the tail the quota stretches.
		{label: "hottenant", quota: 2, hot: 0.4},
		// A shard fail-stopping mid-stream: gates the failover reroutes and
		// the survivors' makespans.
		{label: "faulty", scenario: &faults.Scenario{
			Seed:    uint64(cfg.Seed),
			Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.4}},
		}},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runClusterScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario cluster/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runClusterScenario(cfg Config, sc clusterScenario) (Record, error) {
	// Request sizes span cfg.Tuples/16 .. cfg.Tuples/4: small enough that
	// three shards of one FPGA + one worker each stay CI-cheap, large enough
	// that per-shard makespans dominate the router's bookkeeping.
	reqs, err := cluster.GenerateLoad(uint64(cfg.Seed), clusterRequests, cluster.LoadOptions{
		HotTenantShare: sc.hot,
		MeanGapUS:      80,
		MinTuples:      cfg.Tuples / 16,
		MaxTuples:      cfg.Tuples / 4,
	})
	if err != nil {
		return Record{}, err
	}

	sess := simtrace.NewSession()
	ccfg := cluster.Config{
		Shards:      clusterShards,
		TenantQuota: sc.quota,
		Seed:        uint64(cfg.Seed),
		Faults:      sc.scenario,
		Trace:       sess,
	}

	var rep *cluster.Report
	info, err := measure(cfg.Host, func() error {
		r, rerr := cluster.Run(reqs, ccfg)
		rep = r
		return rerr
	})
	if err != nil {
		return Record{}, err
	}
	if rep.Done != clusterRequests {
		return Record{}, fmt.Errorf("only %d/%d requests done (failed %d, failed shards %v)",
			rep.Done, clusterRequests, rep.Failed, rep.FailedShards)
	}

	// The session snapshot already carries the router's full telemetry —
	// cluster.lat_{avg,p95,p99}_us, qps_x100, the latency histogram, the
	// moved-key fractions, throttle/reroute counters, per-shard jobs and
	// makespans, and the merged output checksum. Add the load-balance spread
	// an operator would watch: busiest shard's share of the stream, ×100.
	var maxJobs int
	for _, n := range rep.ShardJobs {
		if n > maxJobs {
			maxJobs = n
		}
	}
	gated := sess.Metrics.Snapshot().With(
		counter("bench.max_shard_share_x100", int64(maxJobs)*100/int64(rep.Requests)),
	)
	return Record{
		Name:  fmt.Sprintf("cluster/%ds1f1w/%dreq/%s", clusterShards, clusterRequests, sc.label),
		Gated: MetricSet{gated},
		Info:  MetricSet{info},
	}, nil
}
