package perfbench

import (
	"fmt"

	"fpgapart/cluster"
	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
)

// The cluster suite benchmarks the sharded serving frontend end to end: a
// fixed open-loop request stream routed by the consistent-hash ring across
// three partserver shards, scatter-gathered back into one report. Every
// gated number — the avg/p95/p99 virtual-time latencies and QPS the tail
// gate pins, the moved-key fractions of a shard join (ring vs. modulo),
// quota throttling, failover reroutes, the merged output checksum — is a
// pure function of (code, seed), so any delta against the baseline is a
// true regression in routing, admission, failover, or merge behaviour.

// clusterRequests is the stream length of every cluster cell: long enough
// to spread across all shards and fill the latency tail, short enough for a
// CI gate.
const clusterRequests = 24

// clusterShards is the shard pool size of every cell.
const clusterShards = 3

// clusterScenario is one routing-tier cell.
type clusterScenario struct {
	label    string
	quota    int
	hot      float64
	gapUS    int64 // mean inter-arrival gap (0 = 80)
	scenario *faults.Scenario

	// schedule runs live membership churn; compareStatic additionally runs
	// the same stream on the static ring and gates checksum divergence (must
	// be 0: only moved keys re-route, content never changes).
	schedule      cluster.MembershipSchedule
	compareStatic bool

	// replicas/hedgeUS enable hedged reads; compareUnhedged additionally
	// runs the same stream unhedged and gates the p99 win (must be > 0:
	// hedging must strictly beat the straggler tail).
	replicas        int
	hedgeUS         int64
	compareUnhedged bool
}

func runClusterSuite(cfg Config) ([]Record, error) {
	scenarios := []clusterScenario{
		// Plain routing and merge: the latency/QPS/balance baseline.
		{label: "faultfree"},
		// A hot tenant issuing 40% of the stream under a per-window quota:
		// gates the throttle counters and the tail the quota stretches.
		{label: "hottenant", quota: 2, hot: 0.4},
		// A shard fail-stopping mid-stream: gates the failover reroutes and
		// the survivors' makespans.
		{label: "faulty", scenario: &faults.Scenario{
			Seed:    uint64(cfg.Seed),
			Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.4}},
		}},
		// Shard 3 joining live mid-stream: gates the moved-key permyriad of
		// the join (ring bound: ≤ 2/(N+1) of keys at N=3) and pins zero
		// checksum divergence against the static ring — live migration
		// re-routes only moved keys and never changes content.
		{label: "livejoin",
			schedule:      cluster.MembershipSchedule{{AtUS: 800, Shard: clusterShards, Kind: cluster.Join}},
			compareStatic: true},
		// Shard 1's FPGA straggling 8×: the unhedged tail baseline.
		{label: "straggler", gapUS: 20, scenario: &faults.Scenario{
			Seed:       uint64(cfg.Seed),
			Stragglers: []faults.Straggler{{Node: 1, Factor: 8}},
		}},
		// The same straggler with R=2 hedged reads at a fixed 150 µs
		// deadline: gates the hedge counters and the strict p99 win over the
		// unhedged run of the identical stream.
		{label: "straggler-hedged", gapUS: 20,
			scenario: &faults.Scenario{
				Seed:       uint64(cfg.Seed),
				Stragglers: []faults.Straggler{{Node: 1, Factor: 8}},
			},
			replicas: 2, hedgeUS: 150, compareUnhedged: true},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runClusterScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario cluster/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runClusterScenario(cfg Config, sc clusterScenario) (Record, error) {
	// Request sizes span cfg.Tuples/16 .. cfg.Tuples/4: small enough that
	// three shards of one FPGA + one worker each stay CI-cheap, large enough
	// that per-shard makespans dominate the router's bookkeeping.
	gap := sc.gapUS
	if gap == 0 {
		gap = 80
	}
	reqs, err := cluster.GenerateLoad(uint64(cfg.Seed), clusterRequests, cluster.LoadOptions{
		HotTenantShare: sc.hot,
		MeanGapUS:      gap,
		MinTuples:      cfg.Tuples / 16,
		MaxTuples:      cfg.Tuples / 4,
	})
	if err != nil {
		return Record{}, err
	}

	sess := simtrace.NewSession()
	ccfg := cluster.Config{
		Shards:      clusterShards,
		TenantQuota: sc.quota,
		Schedule:    sc.schedule,
		Replicas:    sc.replicas,
		HedgeUS:     sc.hedgeUS,
		Seed:        uint64(cfg.Seed),
		Faults:      sc.scenario,
		Trace:       sess,
	}

	var rep *cluster.Report
	info, err := measure(cfg.Host, func() error {
		r, rerr := cluster.Run(reqs, ccfg)
		rep = r
		return rerr
	})
	if err != nil {
		return Record{}, err
	}
	if rep.Done != clusterRequests {
		return Record{}, fmt.Errorf("only %d/%d requests done (failed %d, failed shards %v)",
			rep.Done, clusterRequests, rep.Failed, rep.FailedShards)
	}

	// The session snapshot already carries the router's full telemetry —
	// cluster.lat_{avg,p95,p99}_us, qps_x100, the latency histogram, the
	// moved-key fractions, throttle/reroute counters, per-shard jobs and
	// makespans, the merged output checksum, and (on dynamic cells) the
	// membership/handoff/hedge counters. Add the load-balance spread an
	// operator would watch: busiest shard's share of the stream, ×100.
	var maxJobs int
	for _, n := range rep.ShardJobs {
		if n > maxJobs {
			maxJobs = n
		}
	}
	extra := []simtrace.Metric{
		counter("bench.max_shard_share_x100", int64(maxJobs)*100/int64(rep.Requests)),
	}

	if sc.compareStatic {
		// Live churn vs. the static ring on the identical stream: the join
		// may move at most ≈ 2/(N+1) of the keys and must never change the
		// merged content. Both pinned: the moved permyriad as a gated number,
		// the divergence as a hard error plus a pinned zero.
		static := ccfg
		static.Schedule = nil
		static.Trace = nil
		srep, err := cluster.Run(reqs, static)
		if err != nil {
			return Record{}, fmt.Errorf("static reference: %w", err)
		}
		if len(rep.EventMovedX10000) == 0 || rep.EventMovedX10000[0] > 2*10000/int64(clusterShards+1) {
			return Record{}, fmt.Errorf("live join moved %v permyriad, over the 2/(N+1) ring bound", rep.EventMovedX10000)
		}
		var div int64
		if rep.Checksum != srep.Checksum || rep.Matches != srep.Matches || rep.Done != srep.Done {
			div = 1
		}
		if div != 0 {
			return Record{}, fmt.Errorf("live join diverged from static ring: checksum %d vs %d, matches %d vs %d",
				rep.Checksum, srep.Checksum, rep.Matches, srep.Matches)
		}
		extra = append(extra, counter("bench.checksum_divergence", div))
	}

	if sc.compareUnhedged {
		// Hedged vs. unhedged on the identical stream and straggler: the
		// whole point of the hedge lane is a strictly better p99. The win is
		// an in-code assertion and a pinned gated number.
		unhedged := ccfg
		unhedged.Replicas = 0
		unhedged.HedgeUS = 0
		unhedged.Trace = nil
		urep, err := cluster.Run(reqs, unhedged)
		if err != nil {
			return Record{}, fmt.Errorf("unhedged reference: %w", err)
		}
		win := urep.LatP99US - rep.LatP99US
		if win <= 0 {
			return Record{}, fmt.Errorf("hedged p99 %dus not below unhedged p99 %dus", rep.LatP99US, urep.LatP99US)
		}
		if rep.Checksum != urep.Checksum {
			return Record{}, fmt.Errorf("hedging changed the checksum: %d vs %d", rep.Checksum, urep.Checksum)
		}
		extra = append(extra, counter("bench.hedge_p99_win_us", win))
	}

	gated := sess.Metrics.Snapshot().With(extra...)
	return Record{
		Name:  fmt.Sprintf("cluster/%ds1f1w/%dreq/%s", clusterShards, clusterRequests, sc.label),
		Gated: MetricSet{gated},
		Info:  MetricSet{info},
	}, nil
}
