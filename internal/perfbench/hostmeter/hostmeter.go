// Package hostmeter implements perfbench.HostMeter against the real host:
// wall-clock nanoseconds and heap allocation counts around a scenario run.
//
// It is deliberately a separate package and deliberately NOT on the fpgavet
// deterministic-path list: reading the clock here is the whole point. The
// perfbench runner only ever records these samples as informational metrics,
// so the nondeterminism stops at the info side of the BENCH report and the
// gate never sees it.
package hostmeter

import (
	"runtime"
	"time"

	"fpgapart/internal/perfbench"
)

// Meter measures with runtime.ReadMemStats and the monotonic clock.
type Meter struct{}

// New returns a host meter.
func New() *Meter { return &Meter{} }

// Measure implements perfbench.HostMeter.
func (*Meter) Measure(op func() error) (perfbench.HostSample, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := op()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return perfbench.HostSample{}, err
	}
	return perfbench.HostSample{
		NS:     elapsed.Nanoseconds(),
		Allocs: int64(after.Mallocs - before.Mallocs),
	}, nil
}
