package perfbench

import (
	"fmt"
	"io"

	"fpgapart/internal/simtrace"
)

// RowClass classifies one compare row.
type RowClass string

const (
	// ClassGated rows carry simulated metrics: any delta fails the gate.
	ClassGated RowClass = "gated"
	// ClassInfo rows carry host sidecar metrics: reported, never gating.
	ClassInfo RowClass = "info"
	// ClassRecord rows report whole-record presence changes.
	ClassRecord RowClass = "record"
)

// CompareRow is one metric (or record-presence) delta between two reports.
type CompareRow struct {
	Record string
	Metric string
	Class  RowClass
	Change simtrace.Change
	Old    simtrace.Metric
	New    simtrace.Metric
	OldOK  bool
	NewOK  bool
	// Fails marks the rows that fail the gate: gated metrics that changed
	// or disappeared, and records that disappeared. Additions are reported
	// but do not fail — new scenarios and new metrics are how the matrix
	// grows, and they force a baseline regeneration anyway.
	Fails bool
}

// Comparison is the full diff of two same-suite reports.
type Comparison struct {
	Suite string
	Rows  []CompareRow
}

// Failed reports whether any row fails the gate.
func (c *Comparison) Failed() bool {
	for _, r := range c.Rows {
		if r.Fails {
			return true
		}
	}
	return false
}

// Changed reports whether the diff has any rows at all (including
// non-failing additions and info deltas).
func (c *Comparison) Changed() bool { return len(c.Rows) > 0 }

// Compare diffs a baseline report against a fresh one. It refuses
// cross-suite and cross-configuration comparisons: a baseline generated at a
// different seed or scale would report every metric changed, which is a
// configuration error, not a regression.
func Compare(old, new *Report) (*Comparison, error) {
	if old.Suite != new.Suite {
		return nil, fmt.Errorf("perfbench: comparing suite %q against %q", old.Suite, new.Suite)
	}
	if old.Seed != new.Seed || old.Tuples != new.Tuples {
		return nil, fmt.Errorf("perfbench: baseline was generated with seed=%d tuples=%d, this run used seed=%d tuples=%d — regenerate the baseline or match the configuration",
			old.Seed, old.Tuples, new.Seed, new.Tuples)
	}

	c := &Comparison{Suite: old.Suite}
	matched := make(map[string]bool, len(old.Records))
	for _, or := range old.Records {
		nr, ok := findRecord(new.Records, or.Name)
		if !ok {
			c.Rows = append(c.Rows, CompareRow{
				Record: or.Name, Class: ClassRecord, Change: simtrace.Removed, Fails: true,
			})
			continue
		}
		matched[or.Name] = true
		c.diffRecord(or, nr)
	}
	for _, nr := range new.Records {
		if !matched[nr.Name] {
			c.Rows = append(c.Rows, CompareRow{
				Record: nr.Name, Class: ClassRecord, Change: simtrace.Added,
			})
		}
	}
	return c, nil
}

func findRecord(recs []Record, name string) (Record, bool) {
	for _, r := range recs {
		if r.Name == name {
			return r, true
		}
	}
	return Record{}, false
}

func (c *Comparison) diffRecord(old, new Record) {
	for _, d := range old.Gated.Metrics.Diff(new.Gated.Metrics) {
		if d.Change == simtrace.Unchanged {
			continue
		}
		c.Rows = append(c.Rows, CompareRow{
			Record: old.Name, Metric: d.Name, Class: ClassGated,
			Change: d.Change, Old: d.Old, New: d.New, OldOK: d.OldOK, NewOK: d.NewOK,
			Fails: d.Change == simtrace.Changed || d.Change == simtrace.Removed,
		})
	}
	for _, d := range old.Info.Metrics.Diff(new.Info.Metrics) {
		if d.Change == simtrace.Unchanged {
			continue
		}
		c.Rows = append(c.Rows, CompareRow{
			Record: old.Name, Metric: d.Name, Class: ClassInfo,
			Change: d.Change, Old: d.Old, New: d.New, OldOK: d.OldOK, NewOK: d.NewOK,
		})
	}
}

// formatMetric renders a metric value for the compare table.
func formatMetric(m simtrace.Metric, ok bool) string {
	if !ok {
		return "—"
	}
	switch m.Kind {
	case simtrace.KindGauge:
		return fmt.Sprintf("%d (max %d)", m.Value, m.Max)
	case simtrace.KindHistogram:
		return fmt.Sprintf("%d obs, max %d, %d buckets", m.Value, m.Max, len(m.Buckets))
	default:
		return fmt.Sprintf("%d", m.Value)
	}
}

func (r CompareRow) status() string {
	switch {
	case r.Fails:
		return "FAIL"
	case r.Class == ClassInfo:
		return "info"
	default:
		return "note"
	}
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown table
// (or a one-line all-clear), suitable for a CI step summary.
func (c *Comparison) WriteMarkdown(w io.Writer) error {
	verdict := "PASS"
	if c.Failed() {
		verdict = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "### perfbench %s: %s\n\n", c.Suite, verdict); err != nil {
		return err
	}
	if len(c.Rows) == 0 {
		_, err := fmt.Fprintf(w, "No changes: all gated metrics are byte-identical to the baseline.\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "| record | metric | class | change | baseline | current | status |\n|---|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range c.Rows {
		metric := r.Metric
		if r.Class == ClassRecord {
			metric = "(record)"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s |\n",
			r.Record, metric, r.Class, r.Change,
			formatMetric(r.Old, r.OldOK), formatMetric(r.New, r.NewOK), r.status()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nGated metrics are simulated (deterministic); any delta is a true regression. Info metrics are host wall-clock sidecars and never gate.\n")
	return err
}
