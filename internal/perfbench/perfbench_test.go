package perfbench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"fpgapart/internal/simtrace"
)

// runOnce caches one run per suite — the gate tests mutate parsed copies,
// so a single run each is enough for the whole file.
var (
	reportOnce  sync.Once
	reportBytes = map[string][]byte{}
	reportErr   error
)

func suiteBytes(t *testing.T, suite string) []byte {
	t.Helper()
	reportOnce.Do(func() {
		for _, s := range Suites() {
			r, err := RunSuite(s, Config{})
			if err != nil {
				reportErr = err
				return
			}
			var b bytes.Buffer
			if err := r.WriteJSON(&b); err != nil {
				reportErr = err
				return
			}
			reportBytes[s] = b.Bytes()
		}
	})
	if reportErr != nil {
		t.Fatalf("running suites: %v", reportErr)
	}
	return reportBytes[suite]
}

func suiteReport(t *testing.T, suite string) *Report {
	t.Helper()
	r, err := ParseReport(suiteBytes(t, suite))
	if err != nil {
		t.Fatalf("parsing %s report: %v", suite, err)
	}
	return r
}

// TestReportByteIdentity is the acceptance criterion: running a suite twice
// with the same seed produces byte-identical BENCH JSON.
func TestReportByteIdentity(t *testing.T) {
	for _, suite := range Suites() {
		first := suiteBytes(t, suite)
		r, err := RunSuite(suite, Config{})
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		var second bytes.Buffer
		if err := r.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second.Bytes()) {
			t.Errorf("%s: two same-seed runs are not byte-identical", suite)
		}
		if len(r.Records) == 0 {
			t.Errorf("%s: no records", suite)
		}
	}
}

// TestRoundTrip checks that a parsed report diffs clean against itself —
// i.e. nothing is lost between the field-by-field writer and the
// encoding/json reader.
func TestRoundTrip(t *testing.T) {
	for _, suite := range Suites() {
		r := suiteReport(t, suite)
		if r.Schema != SchemaVersion || r.Suite != suite {
			t.Fatalf("%s: header = %q/%q", suite, r.Schema, r.Suite)
		}
		cmp, err := Compare(r, suiteReport(t, suite))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Changed() {
			t.Errorf("%s: self-compare found %d deltas", suite, len(cmp.Rows))
		}
	}
}

// mutateGated edits one gated metric of the first record that has it.
func mutateGated(t *testing.T, r *Report, name string, f func(*simtrace.Metric)) {
	t.Helper()
	for ri := range r.Records {
		for mi := range r.Records[ri].Gated.Metrics {
			if r.Records[ri].Gated.Metrics[mi].Name == name {
				f(&r.Records[ri].Gated.Metrics[mi])
				return
			}
		}
	}
	t.Fatalf("no record has gated metric %q", name)
}

// TestGateFailsOnSimulatedRegression is the other acceptance criterion: a
// one-cycle-per-kilotuple regression in a simulated metric fails the gate.
func TestGateFailsOnSimulatedRegression(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	cur := suiteReport(t, SuitePartition)
	mutateGated(t, cur, "bench.cycles_per_ktuple", func(m *simtrace.Metric) { m.Value++ })

	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("gate passed despite +1 cycles_per_ktuple")
	}
	var hit bool
	for _, row := range cmp.Rows {
		if row.Fails && row.Metric == "bench.cycles_per_ktuple" && row.Change == simtrace.Changed {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no failing changed-row for the injected regression: %+v", cmp.Rows)
	}
}

// TestGateFailsOnRemovedMetric: silently dropping a gated metric (e.g. an
// instrumentation point deleted in a refactor) must fail, not slide by.
func TestGateFailsOnRemovedMetric(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	cur := suiteReport(t, SuitePartition)
	g := &cur.Records[0].Gated.Metrics
	*g = (*g)[1:] // snapshots are sorted, so dropping the head keeps order valid

	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("gate passed despite a removed gated metric")
	}
}

// TestGateFailsOnRemovedRecord: a scenario vanishing from the matrix fails.
func TestGateFailsOnRemovedRecord(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	cur := suiteReport(t, SuitePartition)
	cur.Records = cur.Records[1:]

	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("gate passed despite a removed record")
	}
}

// TestAddedMetricAndRecordDoNotFail: growth of the matrix is reported but
// non-failing — it forces a baseline regeneration, not a red build.
func TestAddedMetricAndRecordDoNotFail(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	cur := suiteReport(t, SuitePartition)
	cur.Records[0].Gated.Metrics = cur.Records[0].Gated.Metrics.With(
		simtrace.Metric{Name: "zz.new_metric", Kind: simtrace.KindCounter, Value: 7})
	cur.Records = append(cur.Records, Record{Name: "partition/new-scenario"})

	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("gate failed on additions: %+v", cmp.Rows)
	}
	if len(cmp.Rows) != 2 {
		t.Errorf("want 2 note rows (added metric + added record), got %+v", cmp.Rows)
	}
}

// jitterMeter fakes a host meter whose readings differ every call —
// maximal wall-clock noise.
type jitterMeter struct{ calls int64 }

func (j *jitterMeter) Measure(op func() error) (HostSample, error) {
	if err := op(); err != nil {
		return HostSample{}, err
	}
	j.calls++
	return HostSample{NS: 1_000_000 + j.calls*31337, Allocs: 100 + j.calls}, nil
}

// TestWallClockJitterNeverFails is the zero-noise property stated from the
// other side: two runs whose host measurements disagree on every scenario
// still pass the gate, with the deltas surfaced as info rows.
func TestWallClockJitterNeverFails(t *testing.T) {
	run := func() *Report {
		r, err := RunSuite(SuiteDistjoin, Config{Host: &jitterMeter{}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()

	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatalf("wall-clock jitter failed the gate: %+v", cmp.Rows)
	}
	var infoDeltas int
	for _, row := range cmp.Rows {
		if row.Class != ClassInfo {
			t.Errorf("non-info delta under pure jitter: %+v", row)
		}
		infoDeltas++
	}
	if infoDeltas == 0 {
		t.Error("jitter meter produced no info deltas — host metrics not recorded?")
	}
}

// TestHostMetricsAreInfoOnly: a run with a meter attached still has gated
// sets identical to a meterless run.
func TestHostMetricsAreInfoOnly(t *testing.T) {
	plain := suiteReport(t, SuiteDistjoin)
	metered, err := RunSuite(SuiteDistjoin, Config{Host: &jitterMeter{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range metered.Records {
		for _, d := range plain.Records[i].Gated.Metrics.Diff(rec.Gated.Metrics) {
			if d.Change != simtrace.Unchanged {
				t.Errorf("record %s: gated metric %s changed under metering: %s", rec.Name, d.Name, d.Change)
			}
		}
		if len(rec.Info.Metrics) == 0 {
			t.Errorf("record %s: no info metrics despite meter", rec.Name)
		}
		if _, ok := rec.Info.Get("host.ns"); !ok {
			t.Errorf("record %s: host.ns missing from info set", rec.Name)
		}
	}
}

func TestCompareRejectsConfigMismatch(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	other := suiteReport(t, SuitePartition)
	other.Seed = base.Seed + 1
	if _, err := Compare(base, other); err == nil {
		t.Error("cross-seed compare accepted")
	}
	join := suiteReport(t, SuiteJoin)
	if _, err := Compare(base, join); err == nil {
		t.Error("cross-suite compare accepted")
	}
}

func TestCompareMarkdown(t *testing.T) {
	base := suiteReport(t, SuitePartition)
	cur := suiteReport(t, SuitePartition)
	mutateGated(t, cur, "circuit.cycles", func(m *simtrace.Metric) { m.Value += 100 })

	cmp, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cmp.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### perfbench partition: FAIL", "| record | metric |", "circuit.cycles", "| FAIL |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}

	clean, err := Compare(base, suiteReport(t, SuitePartition))
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := clean.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PASS") || !strings.Contains(b.String(), "byte-identical") {
		t.Errorf("clean markdown = %q", b.String())
	}
}

func TestParseReportRejectsUnknownSchema(t *testing.T) {
	data := bytes.Replace(suiteBytes(t, SuitePartition),
		[]byte(SchemaVersion), []byte("fpgapart.perfbench/v999"), 1)
	if _, err := ParseReport(data); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ParseReport([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRunSuiteRejectsUnknownSuite(t *testing.T) {
	if _, err := RunSuite("nope", Config{}); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestKnownScenarios pins the matrix shape: the scenarios the docs name
// must exist, and the skewed PAD run must exercise the fallback path while
// producing the same output checksum as the skewed HIST run (correctness
// under overflow).
func TestKnownScenarios(t *testing.T) {
	r := suiteReport(t, SuitePartition)
	byName := map[string]Record{}
	for _, rec := range r.Records {
		byName[rec.Name] = rec
	}
	hist, ok := byName["partition/HIST/RID/w8/fan256/zipf1.25"]
	if !ok {
		t.Fatal("skewed HIST scenario missing")
	}
	pad, ok := byName["partition/PAD/RID/w8/fan256/zipf1.25"]
	if !ok {
		t.Fatal("skewed PAD scenario missing")
	}
	if m, _ := pad.Gated.Get("bench.fell_back"); m.Value != 1 {
		t.Errorf("skewed PAD run did not fall back (fell_back = %d)", m.Value)
	}
	if m, _ := hist.Gated.Get("bench.fell_back"); m.Value != 0 {
		t.Errorf("skewed HIST run fell back")
	}
	hc, _ := hist.Gated.Get("output.checksum")
	pc, _ := pad.Gated.Get("output.checksum")
	if hc.Value != pc.Value {
		t.Errorf("fallback output checksum %d != HIST checksum %d", pc.Value, hc.Value)
	}

	dj := suiteReport(t, SuiteDistjoin)
	var faulty *Record
	for i := range dj.Records {
		if strings.HasSuffix(dj.Records[i].Name, "/faulty") {
			faulty = &dj.Records[i]
		}
	}
	if faulty == nil {
		t.Fatal("faulty distjoin scenario missing")
	}
	if m, _ := faulty.Gated.Get("dist.degraded"); m.Value != 1 {
		t.Errorf("faulty scenario (with a crash) not degraded")
	}
	if m, _ := faulty.Gated.Get("dist.retries"); m.Value == 0 {
		t.Errorf("faulty scenario recorded no retries")
	}
}
