package perfbench

import (
	"encoding/json"
	"fmt"
	"io"

	"fpgapart/internal/simtrace"
)

// SchemaVersion identifies the BENCH JSON layout. Any change to the record
// shape must bump it: Compare refuses cross-version diffs, so a schema
// migration shows up as an explicit baseline regeneration instead of a
// spurious wall of metric adds/removes.
const SchemaVersion = "fpgapart.perfbench/v1"

// Report is one suite's BENCH file: a fixed header plus one Record per
// scenario. It is written field by field through the simtrace writers (the
// fpgavet benchjson analyzer enforces that no reflection-driven marshaling
// touches this path) and parsed back with encoding/json on the read side.
type Report struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	// Seed and Tuples echo the run configuration so a compare against a
	// baseline generated at a different scale fails loudly.
	Seed   int64 `json:"seed"`
	Tuples int   `json:"tuples"`

	Records []Record `json:"records"`
}

// Record is one scenario's result.
type Record struct {
	// Name identifies the scenario, e.g. "partition/HIST/RID/w8/fan256/uniform".
	Name string `json:"name"`
	// Gated metrics are simulated (cycle- or simulated-µs-derived) and
	// deterministic: ANY change is a true regression and fails the gate.
	Gated MetricSet `json:"gated"`
	// Info metrics are host-side sidecars (wall-clock ns, allocations):
	// reported in compare tables, never gated. Empty unless the run
	// attached a HostMeter — the default BENCH files contain none, which is
	// what makes them byte-identical across same-seed runs.
	Info MetricSet `json:"info"`
}

// MetricSet wraps a snapshot in the `{"metrics": [...]}` object the
// simtrace writer emits, so records round-trip through encoding/json on the
// read path.
type MetricSet struct {
	Metrics simtrace.Snapshot `json:"metrics"`
}

// Get returns the named metric.
func (m MetricSet) Get(name string) (simtrace.Metric, bool) { return m.Metrics.Get(name) }

// WriteJSON writes the report as deterministic JSON: fixed field order,
// records in scenario order, metric sets via the simtrace field-by-field
// writer. Same seed ⇒ byte-identical files.
func (r *Report) WriteJSON(w io.Writer) error {
	wr := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("perfbench: writing BENCH report: %w", err)
		}
		return nil
	}
	if err := wr("{\n  \"schema\": %q,\n  \"suite\": %q,\n  \"seed\": %d,\n  \"tuples\": %d,\n  \"records\": [\n",
		r.Schema, r.Suite, r.Seed, r.Tuples); err != nil {
		return err
	}
	for i, rec := range r.Records {
		if err := wr("    {\n      \"name\": %q,\n      \"gated\": ", rec.Name); err != nil {
			return err
		}
		if err := rec.Gated.Metrics.WriteJSONIndent(w, "      "); err != nil {
			return err
		}
		if err := wr(",\n      \"info\": "); err != nil {
			return err
		}
		if err := rec.Info.Metrics.WriteJSONIndent(w, "      "); err != nil {
			return err
		}
		sep := ","
		if i == len(r.Records)-1 {
			sep = ""
		}
		if err := wr("\n    }%s\n", sep); err != nil {
			return err
		}
	}
	return wr("  ]\n}\n")
}

// ParseReport reads a BENCH file written by WriteJSON, rejecting unknown
// schema versions.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing BENCH report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perfbench: unsupported schema %q (this build understands %q — regenerate the baseline)",
			r.Schema, SchemaVersion)
	}
	return &r, nil
}
