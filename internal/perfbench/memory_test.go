package perfbench

import (
	"strings"
	"testing"
)

// TestMemorySuiteCurve checks the degradation-curve semantics: every cell
// reproduces the unconstrained result exactly (zero deltas), and the tight
// budgets on skewed workloads visibly spill and broadcast.
func TestMemorySuiteCurve(t *testing.T) {
	rep := suiteReport(t, SuiteMemory)
	if len(rep.Records) != 12 {
		t.Fatalf("memory suite has %d records, want 3 workloads × 4 budgets", len(rep.Records))
	}
	gated := func(rec Record, name string) int64 {
		m, ok := rec.Gated.Metrics.Get(name)
		if !ok {
			t.Fatalf("%s: metric %s missing", rec.Name, name)
		}
		return m.Value
	}
	for _, rec := range rep.Records {
		if d := gated(rec, "join.delta_matches_vs_unbudgeted"); d != 0 {
			t.Errorf("%s: matches drifted from unconstrained by %d", rec.Name, d)
		}
		if d := gated(rec, "join.delta_checksum_vs_unbudgeted"); d != 0 {
			t.Errorf("%s: checksum drifted from unconstrained by %#x", rec.Name, d)
		}
		switch {
		case strings.HasSuffix(rec.Name, "/heavyhitter/budget10"):
			if gated(rec, "join.mem_spilled_bytes") == 0 {
				t.Errorf("%s: expected spilling at 10%% budget", rec.Name)
			}
			if gated(rec, "join.mem_broadcasts") == 0 {
				t.Errorf("%s: expected heavy-hitter broadcasts at 10%% budget", rec.Name)
			}
		case strings.HasSuffix(rec.Name, "/zipf1.25/budget10"):
			if gated(rec, "join.mem_spilled_bytes") == 0 {
				t.Errorf("%s: expected spilling at 10%% budget", rec.Name)
			}
		}
	}
}
