package perfbench

import (
	"fmt"

	"fpgapart/hashjoin"
	"fpgapart/internal/joincore"
	"fpgapart/internal/simtrace"
	"fpgapart/workload"
)

// The memory suite measures the degradation curve of the budgeted join: the
// same workload runs unconstrained once (the correctness reference), then at
// shrinking fractions of its build footprint. Everything gated is derived
// from the deterministic simulation — match counts, checksums, replayed
// spill/recursion/broadcast accounting — so the gate tolerates zero drift.

// memoryBudgetPcts is the degradation curve, in percent of the build side's
// in-memory footprint. 100% still budgets (the accounting machinery runs);
// 10% forces spilling, recursion, and heavy-hitter broadcasts.
var memoryBudgetPcts = []int64{100, 50, 25, 10}

// memoryWorkload is one skew point of the degradation curve.
type memoryWorkload struct {
	label string
	build func(cfg Config) (r, s *workload.Relation, err error)
}

func memoryWorkloads() []memoryWorkload {
	return []memoryWorkload{
		{"uniform", func(cfg Config) (*workload.Relation, *workload.Relation, error) {
			g := workload.NewGenerator(cfg.Seed)
			r, err := g.ZipfRelation(0, 1<<12, 8, cfg.Tuples/4)
			if err != nil {
				return nil, nil, err
			}
			s, err := g.ZipfRelation(0, 1<<12, 8, cfg.Tuples/2)
			return r, s, err
		}},
		{"zipf1.25", func(cfg Config) (*workload.Relation, *workload.Relation, error) {
			g := workload.NewGenerator(cfg.Seed)
			r, err := g.ZipfRelation(0, 1<<12, 8, cfg.Tuples/4)
			if err != nil {
				return nil, nil, err
			}
			s, err := g.ZipfRelation(1.25, 1<<12, 8, cfg.Tuples/2)
			return r, s, err
		}},
		// One join key covers ≥ 25% of both sides: the pathological bucket
		// no amount of repartitioning can shrink, exercising the
		// heavy-hitter broadcast path.
		{"heavyhitter", func(cfg Config) (*workload.Relation, *workload.Relation, error) {
			g := workload.NewGenerator(cfg.Seed)
			r, err := g.ZipfRelation(0, 1<<12, 8, cfg.Tuples/4)
			if err != nil {
				return nil, nil, err
			}
			s, err := g.ZipfRelation(1.25, 1<<12, 8, cfg.Tuples/2)
			if err != nil {
				return nil, nil, err
			}
			hot := r.Key(r.NumTuples - 1)
			for i := 0; i < r.NumTuples/4; i++ {
				r.SetTuple(i, hot, uint32(i))
			}
			for i := 0; i < s.NumTuples/4; i++ {
				s.SetTuple(i*2, hot, uint32(i))
			}
			return r, s, nil
		}},
	}
}

func runMemorySuite(cfg Config) ([]Record, error) {
	var records []Record
	for _, w := range memoryWorkloads() {
		r, s, err := w.build(cfg)
		if err != nil {
			return nil, fmt.Errorf("perfbench: memory workload %s: %w", w.label, err)
		}
		base := hashjoin.Options{Partitions: 8, Threads: 1, Hash: true}
		ref, err := hashjoin.CPU(r, s, base)
		if err != nil {
			return nil, fmt.Errorf("perfbench: memory reference %s: %w", w.label, err)
		}
		buildBytes := int64(r.NumTuples) * joincore.BuildTupleBytes
		for _, pct := range memoryBudgetPcts {
			rec, err := runMemoryScenario(cfg, w.label, r, s, ref, buildBytes*pct/100, pct)
			if err != nil {
				return nil, fmt.Errorf("perfbench: scenario memory/%s/%d%%: %w", w.label, pct, err)
			}
			records = append(records, rec)
		}
	}
	return records, nil
}

func runMemoryScenario(cfg Config, label string, r, s *workload.Relation, ref *hashjoin.Result, budget, pct int64) (Record, error) {
	sess := simtrace.NewSession()
	opts := hashjoin.Options{
		Partitions: 8, Threads: 1, Hash: true,
		MemoryBudgetBytes: budget,
		Trace:             sess,
	}
	var res *hashjoin.Result
	info, err := measure(cfg.Host, func() error {
		var jerr error
		res, jerr = hashjoin.CPU(r, s, opts)
		return jerr
	})
	if err != nil {
		return Record{}, err
	}
	if res.Memory == nil {
		return Record{}, fmt.Errorf("budgeted run reported no memory stats")
	}
	// The session snapshot already carries every join.mem_* gauge and
	// counter the budgeted join emitted; the deltas pin the budgeted result
	// to the unconstrained reference (both must stay zero forever).
	gated := sess.Metrics.Snapshot().With(
		counter("join.matches", res.Matches),
		counter("join.checksum_hi", int64(res.Checksum>>32)),
		counter("join.checksum_lo", int64(res.Checksum&0xffffffff)),
		counter("join.delta_matches_vs_unbudgeted", res.Matches-ref.Matches),
		counter("join.delta_checksum_vs_unbudgeted", int64(res.Checksum^ref.Checksum)),
	)
	if cfg.Host != nil {
		info = info.With(
			counter("host.build_ns", res.Build.Nanoseconds()),
			counter("host.probe_ns", res.Probe.Nanoseconds()),
		)
	}
	name := fmt.Sprintf("%s/%s/budget%d", SuiteMemory, label, pct)
	return Record{Name: name, Gated: MetricSet{gated}, Info: MetricSet{info}}, nil
}
