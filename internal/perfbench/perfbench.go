// Package perfbench is the continuous benchmark-telemetry subsystem: it
// runs a fixed matrix of partitioning, hybrid-join and distributed-join
// scenarios on the cycle-level simulator and emits deterministic,
// schema-versioned BENCH reports (BENCH_partition.json, BENCH_join.json,
// BENCH_distjoin.json).
//
// Because the FPGA-side numbers are simulated cycles — deterministic by
// construction, enforced by fpgavet and the simtrace byte-identity tests —
// the reports support a zero-noise perf gate: every gated metric is a pure
// function of (code, seed), so ANY delta against the committed baseline is
// a true regression, not measurement jitter. That is something real
// hardware labs cannot have; this repo gets it for free from the
// simulator's determinism contract and uses it the way the paper uses its
// analytical model (Section 4.6): as an exact expectation to diff reality
// against.
//
// Two metric classes per record:
//
//   - gated — simulated cycles per kilotuple, stall cycles, write-combiner
//     flush overhead vs the model's c_writecomb, BRAM port utilization,
//     partition-size histograms, exchange retries/bytes, output checksums.
//     Compare fails on any change.
//   - info — host wall-clock and allocations, collected only when a
//     HostMeter is attached. Compare reports them, never fails on them, so
//     wall-clock jitter alone can never fail the gate (and the default
//     reports contain none, keeping same-seed runs byte-identical).
//
// perfbench itself is on the fpgavet deterministic path: it may not read
// the host clock, draw global randomness, range over maps, or marshal the
// gated JSON through reflection (the benchjson analyzer). Host-side
// measurement lives in the hostmeter subpackage, which is deliberately off
// that path.
package perfbench

import (
	"fmt"

	"fpgapart/distjoin"
	"fpgapart/experiments"
	"fpgapart/hashjoin"
	"fpgapart/internal/faults"
	"fpgapart/internal/model"
	"fpgapart/internal/simtrace"
	"fpgapart/partition"
	"fpgapart/workload"
)

// Suite names, also the <suite> of the BENCH_<suite>.json file names.
const (
	SuitePartition = "partition"
	SuiteJoin      = "join"
	SuiteDistjoin  = "distjoin"
	SuiteSched     = "sched"
	SuiteMemory    = "memory"
	SuiteCluster   = "cluster"
	SuiteReqtrace  = "reqtrace"
)

// Suites lists every suite in canonical order.
func Suites() []string {
	return []string{SuitePartition, SuiteJoin, SuiteDistjoin, SuiteSched, SuiteMemory, SuiteCluster, SuiteReqtrace}
}

// BenchFileName returns the canonical file name of a suite's report.
func BenchFileName(suite string) string { return "BENCH_" + suite + ".json" }

// HostSample is one host-side measurement of a scenario run.
type HostSample struct {
	// NS is the wall-clock duration of the operation in nanoseconds.
	NS int64
	// Allocs is the number of heap allocations during the operation.
	Allocs int64
}

// HostMeter collects host-side sidecar measurements around a scenario. The
// hostmeter subpackage provides the real implementation; it is an interface
// here so this package stays off the wall clock (the fpgavet determinism
// contract) and so tests can fake jitter.
type HostMeter interface {
	Measure(op func() error) (HostSample, error)
}

// Config scales and seeds a perfbench run.
type Config struct {
	// Seed drives every workload generator (default 42).
	Seed int64
	// Tuples is the relation size of the partition scenarios; the join and
	// distjoin suites scale off it (default 1<<15). The committed baseline
	// is generated at the default.
	Tuples int
	// Host, when non-nil, wraps every scenario run and contributes the
	// informational host.* sidecar metrics. Nil (the default) keeps the
	// report free of host noise and therefore byte-identical across runs.
	Host HostMeter
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tuples <= 0 {
		c.Tuples = 1 << 15
	}
	return c
}

// RunSuite runs one suite's scenario matrix and returns its report.
func RunSuite(suite string, cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	var (
		records []Record
		err     error
	)
	switch suite {
	case SuitePartition:
		records, err = runPartitionSuite(cfg)
	case SuiteJoin:
		records, err = runJoinSuite(cfg)
	case SuiteDistjoin:
		records, err = runDistjoinSuite(cfg)
	case SuiteSched:
		records, err = runSchedSuite(cfg)
	case SuiteMemory:
		records, err = runMemorySuite(cfg)
	case SuiteCluster:
		records, err = runClusterSuite(cfg)
	case SuiteReqtrace:
		records, err = runReqtraceSuite(cfg)
	default:
		return nil, fmt.Errorf("perfbench: unknown suite %q (have %v)", suite, Suites())
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		Schema:  SchemaVersion,
		Suite:   suite,
		Seed:    cfg.Seed,
		Tuples:  cfg.Tuples,
		Records: records,
	}, nil
}

// counter builds a gated scalar metric.
func counter(name string, v int64) simtrace.Metric {
	return simtrace.Metric{Name: name, Kind: simtrace.KindCounter, Value: v}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// measure runs op, through the host meter when one is attached, and returns
// the informational host.* metrics (nil without a meter).
func measure(h HostMeter, op func() error) (simtrace.Snapshot, error) {
	if h == nil {
		return nil, op()
	}
	s, err := h.Measure(op)
	if err != nil {
		return nil, err
	}
	return simtrace.Snapshot{
		counter("host.allocs", s.Allocs),
		counter("host.ns", s.NS),
	}, nil
}

// zipfFactor is the skew of the skewed partition scenarios — inside the
// paper's Section 5.4 sweep (0.25–1.75) and heavy enough that PAD mode's
// padded partitions overflow, exercising the detection + CPU-fallback path.
const zipfFactor = 1.25

// partitionScenario is one cell of the partition matrix.
type partitionScenario struct {
	mode   experiments.FPGAMode
	width  int
	fanOut int
	skewed bool
}

func (s partitionScenario) name() string {
	dist := "uniform"
	if s.skewed {
		dist = fmt.Sprintf("zipf%.2f", zipfFactor)
	}
	return fmt.Sprintf("%s/%s/w%d/fan%d/%s", SuitePartition, s.mode.Name, s.width, s.fanOut, dist)
}

// partitionMatrix is the fixed scenario set: the four Figure 9 modes at the
// base point, a tuple-width sweep (Figure 8's 8–64 B), a fan-out sweep
// across the paper's 2^4–2^13 range, and skewed variants of both output
// strategies (HIST absorbs skew, PAD overflows and falls back — both
// trajectories are gated).
func partitionMatrix() []partitionScenario {
	modes := experiments.FPGAModes()
	byName := make(map[string]experiments.FPGAMode, len(modes))
	for _, m := range modes {
		byName[m.Name] = m
	}
	histRID, padRID := byName["HIST/RID"], byName["PAD/RID"]

	var out []partitionScenario
	// Figure 9's four modes at the base point (8 B, fan-out 256, uniform).
	for _, m := range modes {
		out = append(out, partitionScenario{mode: m, width: 8, fanOut: 256})
	}
	// Figure 8's width sweep (RID only: VRID is defined for 8 B keys).
	for _, w := range []int{16, 32, 64} {
		out = append(out, partitionScenario{mode: histRID, width: w, fanOut: 256})
	}
	// Fan-out sweep endpoints of the paper's 2^4–2^13 range.
	for _, f := range []int{1 << 4, 1 << 13} {
		out = append(out, partitionScenario{mode: histRID, width: 8, fanOut: f})
	}
	// Skew: HIST absorbs it, PAD overflows into the CPU fallback.
	out = append(out,
		partitionScenario{mode: histRID, width: 8, fanOut: 256, skewed: true},
		partitionScenario{mode: padRID, width: 8, fanOut: 256, skewed: true},
	)
	return out
}

func runPartitionSuite(cfg Config) ([]Record, error) {
	var records []Record
	for _, sc := range partitionMatrix() {
		rec, err := runPartitionScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario %s: %w", sc.name(), err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runPartitionScenario(cfg Config, sc partitionScenario) (Record, error) {
	gen := workload.NewGenerator(cfg.Seed)
	var (
		rel *workload.Relation
		err error
	)
	if sc.skewed {
		rel, err = gen.ZipfRelation(zipfFactor, cfg.Tuples, sc.width, cfg.Tuples)
	} else {
		rel, err = gen.Relation(workload.Random, sc.width, cfg.Tuples)
	}
	if err != nil {
		return Record{}, err
	}
	in := rel
	if sc.mode.Layout == partition.ColumnStore {
		in = rel.ToColumns()
	}

	sess := simtrace.NewSession()
	p, err := partition.NewFPGA(partition.FPGAOptions{
		Partitions:      sc.fanOut,
		TupleWidth:      sc.width,
		Hash:            true,
		Format:          sc.mode.Format,
		Layout:          sc.mode.Layout,
		PadFraction:     0.5,
		FallbackThreads: 1,
		Trace:           sess,
	})
	if err != nil {
		return Record{}, err
	}

	var res *partition.Result
	info, err := measure(cfg.Host, func() error {
		r, err := p.Partition(in)
		res = r
		return err
	})
	if err != nil {
		return Record{}, err
	}

	st := res.Stats
	var perKTuple int64
	if st.TuplesIn > 0 && !st.Overflowed {
		perKTuple = st.Cycles * 1000 / st.TuplesIn
	}
	gated := sess.Metrics.Snapshot().With(
		counter("bench.cycles_per_ktuple", perKTuple),
		counter("bench.stall_cycles", st.StallsBackpressure+st.StallsHazard),
		counter("bench.flush_overhead_x100_vs_model", st.FlushCycles*100/model.CyclesWriteComb),
		counter("bench.fell_back", b2i(res.FellBack())),
		counter("bench.pad_overflow_at_tuple", st.OverflowAtTuple),
		counter("output.tuples", res.TotalTuples()),
		counter("output.checksum", outputChecksum(res)),
	)
	return Record{Name: sc.name(), Gated: MetricSet{gated}, Info: MetricSet{info}}, nil
}

// outputChecksum folds every partition's order-insensitive checksum into
// one value, so a correctness drift (not just a cycle drift) trips the gate.
func outputChecksum(res *partition.Result) int64 {
	var h uint32
	for p := 0; p < res.NumPartitions(); p++ {
		h += res.PartitionChecksum(p)
	}
	return int64(h)
}

// joinScenario is one hybrid-join cell.
type joinScenario struct {
	label  string
	format partition.Format
	layout partition.Layout
}

func runJoinSuite(cfg Config) ([]Record, error) {
	scenarios := []joinScenario{
		{"HIST/RID", partition.HistMode, partition.RowStore},
		{"PAD/RID", partition.PadMode, partition.RowStore},
		{"HIST/VRID", partition.HistMode, partition.ColumnStore},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runJoinScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario join/hybrid/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runJoinScenario(cfg Config, sc joinScenario) (Record, error) {
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		return Record{}, err
	}
	// Workload A at 4×Tuples per relation — big enough that the two
	// circuit runs dominate the record, small enough for a CI gate.
	n := 4 * cfg.Tuples
	in, err := spec.Scaled(float64(n) / float64(spec.TuplesR)).Generate(cfg.Seed)
	if err != nil {
		return Record{}, err
	}

	sess := simtrace.NewSession()
	opts := hashjoin.Options{
		Partitions:  1024,
		Threads:     1,
		Hash:        true,
		Format:      sc.format,
		Layout:      sc.layout,
		PadFraction: 0.5,
		Trace:       sess,
	}

	var res *hashjoin.Result
	info, err := measure(cfg.Host, func() error {
		var jerr error
		if sc.layout == partition.ColumnStore {
			p, perr := partition.NewFPGA(partition.FPGAOptions{
				Partitions: opts.Partitions, Hash: true, Format: sc.format,
				Layout: partition.ColumnStore, PadFraction: opts.PadFraction,
				FallbackThreads: 1, Trace: sess,
			})
			if perr != nil {
				return perr
			}
			res, jerr = hashjoin.Join(in.R.ToColumns(), in.S.ToColumns(), p, opts)
		} else {
			res, jerr = hashjoin.Hybrid(in.R, in.S, opts)
		}
		return jerr
	})
	if err != nil {
		return Record{}, err
	}

	gated := sess.Metrics.Snapshot().With(
		counter("join.matches", res.Matches),
		counter("join.checksum_hi", int64(res.Checksum>>32)),
		counter("join.checksum_lo", int64(res.Checksum&0xffffffff)),
		counter("join.partition_r_sim_ns", res.PartitionR.Nanoseconds()),
		counter("join.partition_s_sim_ns", res.PartitionS.Nanoseconds()),
		counter("bench.fell_back", b2i(res.FellBack)),
	)
	if cfg.Host != nil {
		info = info.With(
			counter("host.build_ns", res.Build.Nanoseconds()),
			counter("host.probe_ns", res.Probe.Nanoseconds()),
		)
	}
	return Record{Name: "join/hybrid/" + sc.label + "/A", Gated: MetricSet{gated}, Info: MetricSet{info}}, nil
}

// distjoinScenario is one distributed-join cell.
type distjoinScenario struct {
	label    string
	scenario *faults.Scenario
}

func runDistjoinSuite(cfg Config) ([]Record, error) {
	scenarios := []distjoinScenario{
		{"faultfree", nil},
		{"faulty", &faults.Scenario{
			Seed:        uint64(cfg.Seed),
			DropProb:    0.005,
			CorruptProb: 0.01,
			Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.5}},
			Links:       []faults.Link{{Src: 0, Dst: 2, Factor: 0.25}},
		}},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runDistjoinScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario distjoin/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runDistjoinScenario(cfg Config, sc distjoinScenario) (Record, error) {
	spec, err := workload.Spec(workload.WorkloadA)
	if err != nil {
		return Record{}, err
	}
	n := 2 * cfg.Tuples
	in, err := spec.Scaled(float64(n) / float64(spec.TuplesR)).Generate(cfg.Seed)
	if err != nil {
		return Record{}, err
	}

	const nodes = 4
	sess := simtrace.NewSession()
	opts := distjoin.Options{
		Nodes:             nodes,
		PartitionsPerNode: 256,
		Threads:           1,
		UseFPGA:           true,
		Format:            partition.HistMode,
		Faults:            sc.scenario,
		Trace:             sess,
	}

	var res *distjoin.Result
	info, err := measure(cfg.Host, func() error {
		var jerr error
		res, jerr = distjoin.Join(in.R, in.S, opts)
		return jerr
	})
	if err != nil {
		return Record{}, err
	}

	gated := sess.Metrics.Snapshot().With(
		counter("join.matches", res.Matches),
		counter("join.checksum_hi", int64(res.Checksum>>32)),
		counter("join.checksum_lo", int64(res.Checksum&0xffffffff)),
		counter("dist.partition_sim_us", res.PartitionTime.Microseconds()),
		counter("dist.exchange_sim_us", res.ExchangeTime.Microseconds()),
		counter("dist.bytes_exchanged", res.BytesExchanged),
		counter("dist.resent_bytes", res.ResentBytes),
		counter("dist.retries", res.Retries),
		counter("dist.corrupt_pieces", res.CorruptPieces),
		counter("dist.failed_nodes", int64(len(res.FailedNodes))),
		counter("dist.degraded", b2i(res.Degraded)),
	)
	if cfg.Host != nil {
		info = info.With(counter("host.local_join_ns", res.JoinTime.Nanoseconds()))
	}
	return Record{Name: fmt.Sprintf("distjoin/%dn/fpga/HIST/%s", nodes, sc.label), Gated: MetricSet{gated}, Info: MetricSet{info}}, nil
}
