package perfbench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap profile
// at memPath; either path may be empty to skip that profile. The returned
// stop function ends the CPU profile and writes the heap snapshot (after a
// GC, so it reflects live objects); call it exactly once, typically deferred.
//
// It is shared by cmd/perfbench, cmd/repro and cmd/joinbench so every
// benchmark entry point grows -cpuprofile/-memprofile the same way. The
// profiles are host-side observability sidecars — they never feed the gated
// metrics, which come from the simulator.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("perfbench: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("perfbench: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("perfbench: closing CPU profile: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		memFile, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("perfbench: creating heap profile: %w", err)
		}
		defer memFile.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			return fmt.Errorf("perfbench: writing heap profile: %w", err)
		}
		return nil
	}, nil
}
