package perfbench

import (
	"fmt"

	"fpgapart/cluster"
	"fpgapart/internal/faults"
	"fpgapart/internal/reqtrace"
	"fpgapart/internal/simtrace"
)

// The reqtrace suite gates the causal-tracing layer end to end: the same
// three routing-tier cells as the cluster suite run with a reqtrace.Capture
// attached, and the gated numbers are the per-component latency decomposition
// (totals and p50/p95/p99 per component), the critical-path mix (count and
// virtual time of each top path signature), the p99 tail attribution, and
// the flight-recorder volume. Conservation is enforced twice: the violation
// count is gated at its baseline of zero AND the scenario errors out if any
// trace's breakdown fails to sum to its end-to-end latency, so a regression
// in attribution can never hide behind a stale baseline.

// reqtraceTopK is how many critical-path signatures each cell gates.
const reqtraceTopK = 3

func runReqtraceSuite(cfg Config) ([]Record, error) {
	scenarios := []clusterScenario{
		// Plain routing: queue/exec-dominated paths, no quota or retry time.
		{label: "faultfree"},
		// Hot tenant under quota: gates the quota_wait component and the
		// throttled requests' stretched critical paths.
		{label: "hottenant", quota: 2, hot: 0.4},
		// Shard fail-stop: gates retry_wait/reroute attribution and the
		// flight-recorder's crash/failover event volume.
		{label: "faulty", scenario: &faults.Scenario{
			Seed:    uint64(cfg.Seed),
			Crashes: []faults.Crash{{Node: 1, AfterFraction: 0.4}},
		}},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runReqtraceScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario reqtrace/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runReqtraceScenario(cfg Config, sc clusterScenario) (Record, error) {
	reqs, err := cluster.GenerateLoad(uint64(cfg.Seed), clusterRequests, cluster.LoadOptions{
		HotTenantShare: sc.hot,
		MeanGapUS:      80,
		MinTuples:      cfg.Tuples / 16,
		MaxTuples:      cfg.Tuples / 4,
	})
	if err != nil {
		return Record{}, err
	}

	capt := &reqtrace.Capture{}
	ccfg := cluster.Config{
		Shards:      clusterShards,
		TenantQuota: sc.quota,
		Seed:        uint64(cfg.Seed),
		Faults:      sc.scenario,
		ReqTrace:    capt,
	}

	info, err := measure(cfg.Host, func() error {
		_, rerr := cluster.Run(reqs, ccfg)
		return rerr
	})
	if err != nil {
		return Record{}, err
	}

	prof := reqtrace.Analyze(capt.Traces, reqtraceTopK)
	if prof.Violations != 0 {
		return Record{}, fmt.Errorf("%d traces violate latency conservation", prof.Violations)
	}

	gated := []simtrace.Metric{
		counter("reqtrace.requests", int64(prof.Requests)),
		counter("reqtrace.total_us", prof.TotalUS),
		counter("reqtrace.violations", int64(prof.Violations)),
		counter("reqtrace.tail_cut_us", prof.TailCutUS),
		counter("reqtrace.tail_requests", int64(prof.TailRequests)),
		counter("reqtrace.flight_events", int64(len(capt.Flight))),
		counter("reqtrace.flight_dropped", capt.FlightDropped),
	}
	// One quartet per component that ever accrued time; zero components stay
	// out so the report tracks only the decomposition that exists. Which
	// components are nonzero is itself a pure function of (code, seed), so
	// a component appearing or vanishing shows up as a baseline diff.
	for c := 0; c < reqtrace.NumComponents; c++ {
		cs := &prof.Comp[c]
		if cs.TotalUS == 0 {
			continue
		}
		name := reqtrace.Component(c).String()
		gated = append(gated,
			counter("reqtrace.comp."+name+".total_us", cs.TotalUS),
			counter("reqtrace.comp."+name+".p50_us", cs.P50US),
			counter("reqtrace.comp."+name+".p95_us", cs.P95US),
			counter("reqtrace.comp."+name+".p99_us", cs.P99US),
		)
	}
	// The critical-path mix: gating the signature inside the metric name
	// means a changed path shape fails the gate as a missing/extra metric,
	// not just a moved value.
	for _, p := range prof.Paths {
		gated = append(gated,
			counter("reqtrace.path{"+p.Signature+"}.count", int64(p.Count)),
			counter("reqtrace.path{"+p.Signature+"}.total_us", p.TotalUS),
		)
	}
	return Record{
		Name:  fmt.Sprintf("reqtrace/%ds1f1w/%dreq/%s", clusterShards, clusterRequests, sc.label),
		Gated: MetricSet{simtrace.Snapshot(nil).With(gated...)},
		Info:  MetricSet{info},
	}, nil
}
