package perfbench

import (
	"fmt"

	"fpgapart/internal/faults"
	"fpgapart/internal/simtrace"
	"fpgapart/partserver"
)

// The sched suite benchmarks the multi-tenant scheduler end to end: a fixed
// synthetic job trace through partserver.Run over a small FPGA+CPU pool,
// fault-free and under the standard fault mix. Everything the scheduler
// observes runs on virtual time, so makespan, queue-wait distribution, FPGA
// utilization, and the placement mix are pure functions of (code, seed) and
// all gate-able — a placement-policy or batching change shows up as a gated
// delta, never as noise.

// schedJobs is the trace length of both sched scenarios. Chosen so the trace
// exercises batching, backpressure, and retries while keeping the suite well
// under a second of host time.
const schedJobs = 24

// schedScenario is one scheduler cell.
type schedScenario struct {
	label    string
	scenario *faults.Scenario
}

func runSchedSuite(cfg Config) ([]Record, error) {
	scenarios := []schedScenario{
		{"faultfree", nil},
		{"faulty", &faults.Scenario{
			Seed:        uint64(cfg.Seed),
			DropProb:    0.15,
			CorruptProb: 0.1,
			Crashes:     []faults.Crash{{Node: 1, AfterFraction: 0.4}},
			Stragglers:  []faults.Straggler{{Node: 0, Factor: 1.5}},
		}},
	}
	var records []Record
	for _, sc := range scenarios {
		rec, err := runSchedScenario(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("perfbench: scenario sched/%s: %w", sc.label, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

func runSchedScenario(cfg Config, sc schedScenario) (Record, error) {
	// Job sizes span cfg.Tuples/8 .. cfg.Tuples: large enough that the FPGA
	// amortizes its reconfiguration cost on the big jobs (so the placement
	// mix is genuinely mixed), small enough for a CI gate.
	jobs, err := partserver.GenerateTrace(uint64(cfg.Seed), schedJobs, partserver.TraceOptions{
		MeanGapUS: 80,
		MinTuples: cfg.Tuples / 8,
		MaxTuples: cfg.Tuples,
	})
	if err != nil {
		return Record{}, err
	}

	const nfpga = 2
	sess := simtrace.NewSession()
	pcfg := partserver.Config{
		FPGAs:   nfpga,
		Workers: 2,
		Seed:    uint64(cfg.Seed),
		Faults:  sc.scenario,
		Trace:   sess,
	}

	var rep *partserver.Report
	info, err := measure(cfg.Host, func() error {
		r, rerr := partserver.Run(jobs, pcfg)
		rep = r
		return rerr
	})
	if err != nil {
		return Record{}, err
	}
	for i := range rep.Results {
		if r := &rep.Results[i]; r.Status != partserver.StatusDone {
			return Record{}, fmt.Errorf("job %d terminated %v: %s", r.ID, r.Status, r.Err)
		}
	}

	// The session snapshot already carries the scheduler's own telemetry —
	// sched.makespan_us, the sched.queue_wait_us and sched.exec_us
	// histograms, placement and retry counters, busy time per pool, and the
	// fold of every job's output checksum. Add the derived utilization and
	// placement-mix ratios the paper's operator would watch.
	var (
		util int64
		mix  int64
	)
	if rep.MakespanUS > 0 {
		var busy int64
		for _, m := range sess.Metrics.Snapshot() {
			if m.Name == "sched.busy_fpga_us" {
				busy = m.Value
			}
		}
		util = busy * 100 / (rep.MakespanUS * nfpga)
	}
	if n := rep.PlacedFPGA + rep.PlacedCPU; n > 0 {
		mix = int64(rep.PlacedFPGA) * 100 / int64(n)
	}
	gated := sess.Metrics.Snapshot().With(
		counter("bench.fpga_util_x100", util),
		counter("bench.placed_fpga_x100", mix),
		counter("bench.degraded_jobs", int64(rep.Degraded)),
		counter("bench.failed_instances", int64(len(rep.FailedInstances))),
	)
	return Record{
		Name:  fmt.Sprintf("sched/%df%dw/%djobs/%s", nfpga, 2, schedJobs, sc.label),
		Gated: MetricSet{gated},
		Info:  MetricSet{info},
	}, nil
}
