package joincore

import (
	"reflect"
	"testing"

	"fpgapart/internal/membudget"
)

// budgetedMust runs BudgetedBuildProbe and fails the test on error.
func budgetedMust(t *testing.T, r, s Partitions, cfg BudgetConfig) (*Result, *BudgetStats) {
	t.Helper()
	res, stats, err := BudgetedBuildProbe(r, s, cfg)
	if err != nil {
		t.Fatalf("BudgetedBuildProbe: %v", err)
	}
	return res, stats
}

// buildBytes returns the unconstrained build-side footprint of r.
func buildBytes(r Partitions) int64 {
	var n int64
	for p := 0; p < r.NumPartitions(); p++ {
		n += countValid(r, p)
	}
	return n * BuildTupleBytes
}

func TestBudgetedMatchesUnconstrained(t *testing.T) {
	rKeys := randKeys(600, 10)
	sKeys := randKeys(900, 11)
	// A heavy hitter: one key takes over a third of the probe side.
	for i := 0; i < 300; i++ {
		sKeys[i] = 7
	}
	r := partitionKeys(rKeys, 8, 4)
	s := partitionKeys(sKeys, 8, 6)
	want, err := BuildProbe(r, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := buildBytes(r)
	for _, frac := range []int64{0, 100, 50, 25, 10, 1} {
		var budget *membudget.Budget
		if frac > 0 {
			budget = membudget.New(total * frac / 100)
		}
		res, stats := budgetedMust(t, r, s, BudgetConfig{Budget: budget, Threads: 2})
		if res.Matches != want.Matches || res.Checksum != want.Checksum {
			t.Fatalf("budget %d%%: got %d/%#x, want %d/%#x (stats %+v)",
				frac, res.Matches, res.Checksum, want.Matches, want.Checksum, stats)
		}
	}
}

func TestBudgetedIsDeterministicAcrossThreads(t *testing.T) {
	rKeys := randKeys(800, 20)
	sKeys := randKeys(500, 21)
	r := partitionKeys(rKeys, 4, 0)
	s := partitionKeys(sKeys, 4, 0)
	// The cap gates each partition's build side; an eighth of the total
	// build footprint is below every per-partition footprint, so this
	// spills — and S is the smaller side, so it also role-reverses.
	budgetBytes := buildBytes(s) / 8
	var wantStats *BudgetStats
	var wantHigh int64
	for _, threads := range []int{1, 4, 7} {
		cfg := BudgetConfig{Budget: membudget.New(budgetBytes), Spill: &membudget.SpillStore{}, Threads: threads}
		_, stats := budgetedMust(t, r, s, cfg)
		if wantStats == nil {
			wantStats, wantHigh = stats, cfg.Budget.HighWater()
			continue
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Fatalf("threads=%d changed the decision log:\n%+v\nvs\n%+v", threads, stats, wantStats)
		}
		if cfg.Budget.HighWater() != wantHigh {
			t.Fatalf("threads=%d changed the high-water mark: %d vs %d", threads, cfg.Budget.HighWater(), wantHigh)
		}
	}
	if wantStats.SpilledPartitions == 0 {
		t.Fatalf("expected spilling at 20%% budget, got %+v", wantStats)
	}
}

func TestBudgetedDepthIsBounded(t *testing.T) {
	rKeys := randKeys(2000, 30)
	sKeys := randKeys(2000, 31)
	r := partitionKeys(rKeys, 4, 0)
	s := partitionKeys(sKeys, 4, 0)
	cfg := BudgetConfig{
		// One tuple of budget: no bucket with a duplicate key ever fits,
		// so recursion must hit the depth cap and broadcast.
		Budget:   membudget.New(BuildTupleBytes),
		MaxDepth: 2,
		Threads:  2,
	}
	want, err := BuildProbe(r, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, stats := budgetedMust(t, r, s, cfg)
	if res.Matches != want.Matches || res.Checksum != want.Checksum {
		t.Fatalf("tiny budget changed the result: %d/%#x vs %d/%#x", res.Matches, res.Checksum, want.Matches, want.Checksum)
	}
	// A no-shrink bucket may broadcast one level past MaxDepth, never more.
	if stats.MaxDepth > cfg.MaxDepth+1 {
		t.Fatalf("recursion reached depth %d with MaxDepth %d", stats.MaxDepth, cfg.MaxDepth)
	}
	if stats.Broadcasts == 0 {
		t.Fatalf("expected depth-capped broadcasts, got %+v", stats)
	}
}

func TestBudgetedHeavyHitterBroadcasts(t *testing.T) {
	// Every R key identical: no salt can split the bucket, only the
	// sketch-triggered broadcast terminates it.
	n := 600
	rKeys := make([]uint32, n)
	sKeys := make([]uint32, n)
	for i := range rKeys {
		rKeys[i] = 42
		sKeys[i] = 42
	}
	r := partitionKeys(rKeys, 4, 0)
	s := partitionKeys(sKeys, 4, 0)
	cfg := BudgetConfig{Budget: membudget.New(int64(n) * BuildTupleBytes / 4), Threads: 1}
	res, stats := budgetedMust(t, r, s, cfg)
	if want := int64(n) * int64(n); res.Matches != want {
		t.Fatalf("cross product = %d matches, want %d", res.Matches, want)
	}
	if stats.Broadcasts == 0 || stats.BroadcastChunks < 2 {
		t.Fatalf("heavy hitter should broadcast in chunks, got %+v", stats)
	}
	for _, d := range stats.Decisions {
		if d.Action == ActionBroadcast && !d.HeavyHitter {
			t.Fatalf("broadcast not attributed to the heavy hitter: %+v", d)
		}
		if d.Action == ActionRecurse {
			t.Fatalf("single-key bucket should never recurse: %+v", d)
		}
	}
}

func TestBudgetedEmitPreservesSides(t *testing.T) {
	// R payloads are offset so emitted (rPay, sPay) sides are checkable
	// even under role reversal (S is the smaller, build, side).
	const offset = 1 << 20
	rKeys := randKeys(500, 40)
	sKeys := randKeys(200, 41)
	r := partitionKeys(rKeys, 8, 0)
	s := partitionKeys(sKeys, 8, 0)
	for p := range r.parts {
		for i := range r.parts[p] {
			r.parts[p][i].payload += offset
		}
	}
	var emitted int64
	var sum uint64
	cfg := BudgetConfig{
		Budget:  membudget.New(buildBytes(s) / 3),
		Threads: 1,
		Emit: func(p int, key, rPay, sPay uint32) {
			if rPay < offset || sPay >= offset {
				panic("emit swapped the payload sides")
			}
			emitted++
			sum += uint64(rPay) + uint64(sPay)
		},
	}
	res, stats := budgetedMust(t, r, s, cfg)
	if emitted != res.Matches || sum != res.Checksum {
		t.Fatalf("emit saw %d/%#x, result says %d/%#x", emitted, sum, res.Matches, res.Checksum)
	}
	if stats.Reversals == 0 {
		t.Fatalf("S smaller than R should role-reverse, got %+v", stats)
	}
}

func TestBudgetedAccounting(t *testing.T) {
	rKeys := randKeys(1500, 50)
	sKeys := randKeys(1500, 51)
	r := partitionKeys(rKeys, 4, 0)
	s := partitionKeys(sKeys, 4, 0)
	budget := membudget.New(buildBytes(r) / 8)
	spill := &membudget.SpillStore{}
	_, stats := budgetedMust(t, r, s, BudgetConfig{Budget: budget, Spill: spill, Threads: 3})
	if stats.SpilledBytes == 0 || spill.BytesWritten() < stats.SpilledBytes {
		t.Fatalf("spill accounting inconsistent: stats %d, store wrote %d", stats.SpilledBytes, spill.BytesWritten())
	}
	if spill.BytesRead() == 0 || spill.Segments() == 0 {
		t.Fatalf("spilled buckets were never read back: %+v", spill)
	}
	if budget.HighWater() == 0 || budget.Total(membudget.ClassBuild) == 0 {
		t.Fatalf("budget saw no reservations: high %d", budget.HighWater())
	}
	if budget.InUse() != 0 {
		t.Fatalf("join left %d bytes reserved", budget.InUse())
	}
}

func TestHeavyHitterSketch(t *testing.T) {
	tuples := make([]uint64, 0, 1000)
	for i := 0; i < 700; i++ {
		tuples = append(tuples, uint64(99)|uint64(i)<<32)
	}
	for i := 0; i < 300; i++ {
		tuples = append(tuples, uint64(i%50)|uint64(i)<<32)
	}
	key, count := heavyHitter(tuples)
	if key != 99 || count != 700 {
		t.Fatalf("heavyHitter = key %d count %d, want 99/700", key, count)
	}
	if k, c := heavyHitter(nil); k != 0 || c != 0 {
		t.Fatalf("empty stream should have no hitter, got %d/%d", k, c)
	}
}
