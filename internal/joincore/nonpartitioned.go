package joincore

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/internal/membudget"
	"fpgapart/workload"
)

// NonPartitioned is the no-partitioning hash join baseline (the alternative
// the paper's related work contrasts with partitioned joins): one global
// bucket-chaining hash table over R, built and probed in parallel. It avoids
// the partitioning passes but takes every probe as a cache and TLB miss on
// large relations.
func NonPartitioned(r, s *workload.Relation, threads int) (*Result, error) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := r.NumTuples
	buckets := 1
	for buckets < n {
		buckets <<= 1
	}
	if buckets < 16 {
		buckets = 16
	}
	mask := uint32(buckets - 1)
	head := make([]int32, buckets)
	next := make([]int32, n)

	start := time.Now()
	// Parallel build: lock-free chain pushes with CAS on the bucket heads.
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				b := hashutil.Murmur32Finalizer(r.Key(i)) & mask
				for {
					old := atomic.LoadInt32(&head[b])
					next[i] = old
					if atomic.CompareAndSwapInt32(&head[b], old, int32(i)+1) {
						break
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	buildDone := time.Now()

	var matches int64
	var checksum uint64
	m := s.NumTuples
	chunk = (m + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var localM int64
			var localC uint64
			for i := lo; i < hi; i++ {
				key := s.Key(i)
				for slot := head[hashutil.Murmur32Finalizer(key)&mask]; slot != 0; {
					j := int(slot - 1)
					if r.Key(j) == key {
						localM++
						localC += uint64(r.Payload(j)) + uint64(s.Payload(i))
					}
					slot = next[j]
				}
			}
			atomic.AddInt64(&matches, localM)
			atomic.AddUint64(&checksum, localC)
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return &Result{
		Matches:  matches,
		Checksum: checksum,
		Elapsed:  elapsed,
		Build:    buildDone.Sub(start),
		Probe:    elapsed - buildDone.Sub(start),
		Threads:  threads,
	}, nil
}

// NonPartitionedBudgeted is the global-table baseline under a memory
// budget. The smaller side builds (role reversal at plan time); if even
// that side exceeds the budget, the join degrades to budget-sized build
// chunks, each probed with the full other side — there are no partitions
// to spill, so chunking is the only graceful degradation available to this
// baseline. Matches and Checksum equal NonPartitioned's for any budget.
func NonPartitionedBudgeted(r, s *workload.Relation, threads int, budget *membudget.Budget, spill *membudget.SpillStore) (*Result, *BudgetStats, error) {
	build, probe, reversed := r, s, false
	if s.NumTuples < r.NumTuples {
		build, probe, reversed = s, r, true
	}
	nBuild, nProbe := int64(build.NumTuples), int64(probe.NumTuples)
	cfg := BudgetConfig{Budget: budget, Spill: spill, Threads: threads}.withDefaults()
	stats := &BudgetStats{}
	if !budget.Limited() || nBuild*BuildTupleBytes <= budget.Cap() {
		stats.Decisions = append(stats.Decisions, Decision{
			Action: ActionInMemory, BuildTuples: nBuild, ProbeTuples: nProbe, Reversed: reversed,
		})
		res, err := NonPartitioned(build, probe, threads)
		if err != nil {
			return nil, nil, err
		}
		replayAccounting(stats, cfg)
		return res, stats, nil
	}

	// Chunked build: stage the packed sides through the spill store, then
	// run the broadcast joiner single-threaded (one global "partition").
	bs := packRelation(build)
	ps := packRelation(probe)
	spilled := 8 * (nBuild + nProbe)
	start := time.Now()
	pj := partitionJoiner{cfg: cfg, scratch: &buildTable{}}
	chunks := pj.broadcast(bs, ps, !reversed)
	elapsed := time.Since(start)
	stats.Decisions = append(stats.Decisions,
		Decision{Action: ActionSpill, BuildTuples: nBuild, ProbeTuples: nProbe,
			Reversed: reversed, SpilledBytes: spilled},
		Decision{Action: ActionBroadcast, Depth: 1, BuildTuples: nBuild, ProbeTuples: nProbe,
			Reversed: reversed, SpilledBytes: spilled, Chunks: chunks},
	)
	replayAccounting(stats, cfg)
	res := &Result{
		Matches:  pj.matches,
		Checksum: pj.checksum,
		Elapsed:  elapsed,
		Threads:  1,
	}
	if total := pj.buildNS + pj.probeNS; total > 0 {
		res.Build = time.Duration(float64(elapsed) * float64(pj.buildNS) / float64(total))
		res.Probe = elapsed - res.Build
	}
	return res, stats, nil
}

// packRelation materializes a relation's (key, payload) pairs as packed
// uint64 tuples for the chunked joiner.
func packRelation(rel *workload.Relation) []uint64 {
	out := make([]uint64, rel.NumTuples)
	for i := 0; i < rel.NumTuples; i++ {
		out[i] = uint64(rel.Key(i)) | uint64(rel.Payload(i))<<32
	}
	return out
}
