package joincore

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

// NonPartitioned is the no-partitioning hash join baseline (the alternative
// the paper's related work contrasts with partitioned joins): one global
// bucket-chaining hash table over R, built and probed in parallel. It avoids
// the partitioning passes but takes every probe as a cache and TLB miss on
// large relations.
func NonPartitioned(r, s *workload.Relation, threads int) (*Result, error) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := r.NumTuples
	buckets := 1
	for buckets < n {
		buckets <<= 1
	}
	if buckets < 16 {
		buckets = 16
	}
	mask := uint32(buckets - 1)
	head := make([]int32, buckets)
	next := make([]int32, n)

	start := time.Now()
	// Parallel build: lock-free chain pushes with CAS on the bucket heads.
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				b := hashutil.Murmur32Finalizer(r.Key(i)) & mask
				for {
					old := atomic.LoadInt32(&head[b])
					next[i] = old
					if atomic.CompareAndSwapInt32(&head[b], old, int32(i)+1) {
						break
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	buildDone := time.Now()

	var matches int64
	var checksum uint64
	m := s.NumTuples
	chunk = (m + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var localM int64
			var localC uint64
			for i := lo; i < hi; i++ {
				key := s.Key(i)
				for slot := head[hashutil.Murmur32Finalizer(key)&mask]; slot != 0; {
					j := int(slot - 1)
					if r.Key(j) == key {
						localM++
						localC += uint64(r.Payload(j)) + uint64(s.Payload(i))
					}
					slot = next[j]
				}
			}
			atomic.AddInt64(&matches, localM)
			atomic.AddUint64(&checksum, localC)
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return &Result{
		Matches:  matches,
		Checksum: checksum,
		Elapsed:  elapsed,
		Build:    buildDone.Sub(start),
		Probe:    elapsed - buildDone.Sub(start),
		Threads:  threads,
	}, nil
}
