package joincore

// SpillRoundTripUS is the virtual-time charge of a budgeted join's spill
// traffic: each spilled packed tuple (8 B) is written and re-read, charged
// at the join rate in tuples/s. Kept here so the scheduler's charge and the
// causal tracer's spill attribution are the same arithmetic by construction.
func SpillRoundTripUS(spilledBytes int64, joinRate float64) int64 {
	n := 2 * (spilledBytes / 8) * 1e6
	if n <= 0 {
		return 0
	}
	r := int64(joinRate)
	return (n + r - 1) / r
}
