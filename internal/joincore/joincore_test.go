package joincore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

// slicePartitions is a simple in-memory Partitions for tests, with optional
// dummy slots (ok=false).
type slicePartitions struct {
	parts [][]slot
}

type slot struct {
	key, payload uint32
	valid        bool
}

func (s *slicePartitions) NumPartitions() int { return len(s.parts) }
func (s *slicePartitions) SlotCount(p int) int {
	return len(s.parts[p])
}
func (s *slicePartitions) Slot(p, i int) (uint32, uint32, bool) {
	sl := s.parts[p][i]
	return sl.key, sl.payload, sl.valid
}

// partitionKeys builds a slicePartitions from keys with payload = index.
func partitionKeys(keys []uint32, numPartitions int, dummyEvery int) *slicePartitions {
	bits := hashutil.Log2(numPartitions)
	sp := &slicePartitions{parts: make([][]slot, numPartitions)}
	for i, k := range keys {
		p := hashutil.PartitionIndex32(k, bits, true)
		sp.parts[p] = append(sp.parts[p], slot{k, uint32(i), true})
		if dummyEvery > 0 && i%dummyEvery == 0 {
			sp.parts[p] = append(sp.parts[p], slot{0xFFFFFFFF, 0, false})
		}
	}
	return sp
}

func randKeys(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(rng.Intn(n)) // plenty of duplicates
	}
	return keys
}

func TestBuildProbeMatchesNestedLoop(t *testing.T) {
	rKeys := randKeys(500, 1)
	sKeys := randKeys(800, 2)
	r := partitionKeys(rKeys, 16, 0)
	s := partitionKeys(sKeys, 16, 0)
	got, err := BuildProbe(r, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantM, wantC := NestedLoop(r, s)
	if got.Matches != wantM || got.Checksum != wantC {
		t.Fatalf("BuildProbe = %d/%d, NestedLoop = %d/%d", got.Matches, got.Checksum, wantM, wantC)
	}
}

func TestBuildProbeSkipsDummySlots(t *testing.T) {
	rKeys := randKeys(400, 3)
	sKeys := randKeys(400, 4)
	clean := BuildProbeMust(t, partitionKeys(rKeys, 8, 0), partitionKeys(sKeys, 8, 0))
	dirty := BuildProbeMust(t, partitionKeys(rKeys, 8, 3), partitionKeys(sKeys, 8, 5))
	if clean.Matches != dirty.Matches || clean.Checksum != dirty.Checksum {
		t.Fatalf("dummy slots changed the result: %d/%d vs %d/%d",
			clean.Matches, clean.Checksum, dirty.Matches, dirty.Checksum)
	}
}

func BuildProbeMust(t *testing.T, r, s Partitions) *Result {
	t.Helper()
	res, err := BuildProbe(r, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFanOutMismatchRejected(t *testing.T) {
	r := partitionKeys(randKeys(10, 1), 8, 0)
	s := partitionKeys(randKeys(10, 2), 16, 0)
	if _, err := BuildProbe(r, s, 1); err == nil {
		t.Error("fan-out mismatch accepted")
	}
}

func TestEmptyPartitions(t *testing.T) {
	r := &slicePartitions{parts: make([][]slot, 8)}
	s := &slicePartitions{parts: make([][]slot, 8)}
	res, err := BuildProbe(r, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Errorf("matches on empty input: %d", res.Matches)
	}
}

func TestThreadCountsAgree(t *testing.T) {
	rKeys := randKeys(2000, 5)
	sKeys := randKeys(3000, 6)
	r := partitionKeys(rKeys, 32, 0)
	s := partitionKeys(sKeys, 32, 0)
	base := BuildProbeMust(t, r, s)
	for _, threads := range []int{1, 2, 8, 33} {
		res, err := BuildProbe(r, s, threads)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != base.Matches || res.Checksum != base.Checksum {
			t.Fatalf("threads=%d disagrees: %d/%d vs %d/%d", threads, res.Matches, res.Checksum, base.Matches, base.Checksum)
		}
	}
}

func TestDuplicateHeavyKeys(t *testing.T) {
	// All R and S tuples share one key: matches = |R|·|S|.
	keys := make([]uint32, 50)
	for i := range keys {
		keys[i] = 7
	}
	r := partitionKeys(keys, 4, 0)
	s := partitionKeys(keys[:30], 4, 0)
	res := BuildProbeMust(t, r, s)
	if res.Matches != 50*30 {
		t.Fatalf("matches = %d, want 1500", res.Matches)
	}
}

func TestBuildProbeTimingSplit(t *testing.T) {
	rKeys := randKeys(20000, 7)
	sKeys := randKeys(20000, 8)
	res := BuildProbeMust(t, partitionKeys(rKeys, 64, 0), partitionKeys(sKeys, 64, 0))
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if res.Build+res.Probe != res.Elapsed {
		t.Errorf("build %v + probe %v ≠ elapsed %v", res.Build, res.Probe, res.Elapsed)
	}
	if res.Build <= 0 || res.Probe <= 0 {
		t.Errorf("degenerate phase split: build %v probe %v", res.Build, res.Probe)
	}
}

func TestPropertyBuildProbeEqualsNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, ns := rng.Intn(200)+1, rng.Intn(200)+1
		r := partitionKeys(randKeys(nr, seed), 8, rng.Intn(4))
		s := partitionKeys(randKeys(ns, seed+1), 8, rng.Intn(4))
		got, err := BuildProbe(r, s, 2)
		if err != nil {
			return false
		}
		wantM, wantC := NestedLoop(r, s)
		return got.Matches == wantM && got.Checksum == wantC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNonPartitionedMatchesPartitioned(t *testing.T) {
	g := workload.NewGenerator(9)
	spec := workload.WorkloadSpec{ID: "t", TuplesR: 5000, TuplesS: 8000, Distribution: workload.Linear}
	in, err := spec.Generate(10)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	np, err := NonPartitioned(in.R, in.S, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every S tuple has exactly one match in a linear-keyed R.
	if np.Matches != int64(in.S.NumTuples) {
		t.Fatalf("matches = %d, want %d", np.Matches, in.S.NumTuples)
	}
	// Cross-check against the partitioned path.
	rKeys := make([]uint32, in.R.NumTuples)
	for i := range rKeys {
		rKeys[i] = in.R.Key(i)
	}
	sKeys := make([]uint32, in.S.NumTuples)
	for i := range sKeys {
		sKeys[i] = in.S.Key(i)
	}
	// Payload conventions differ (index per relation), so compare only
	// match counts here; checksum equivalence is covered by the partitioned
	// tests against NestedLoop.
	pr := partitionKeys(rKeys, 16, 0)
	ps := partitionKeys(sKeys, 16, 0)
	bp, err := BuildProbe(pr, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Matches != np.Matches {
		t.Fatalf("partitioned %d matches, non-partitioned %d", bp.Matches, np.Matches)
	}
}

func TestNonPartitionedSingleThread(t *testing.T) {
	spec := workload.WorkloadSpec{ID: "t", TuplesR: 100, TuplesS: 100, Distribution: workload.Linear}
	in, err := spec.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NonPartitioned(in.R, in.S, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 100 {
		t.Fatalf("matches = %d", res.Matches)
	}
}
