package joincore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/cpupart"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/membudget"
)

// BuildTupleBytes is the budgeted footprint of one build-side tuple: the
// 8-byte packed tuple plus 8 bytes of bucket-chain state (head + next
// slots, amortized).
const BuildTupleBytes = 16

// Defaults for BudgetConfig fields left zero.
const (
	// DefaultMaxDepth bounds recursive repartitioning; past it a bucket is
	// broadcast-joined instead of split again.
	DefaultMaxDepth = 4
	// DefaultSubFanOut is the fan-out of one recursive repartitioning pass.
	DefaultSubFanOut = 16
	// DefaultHeavyHitterFraction routes a bucket to the broadcast join when
	// one key holds at least this fraction of its build side.
	DefaultHeavyHitterFraction = 0.5
)

// Action is one adaptive decision of the budgeted join.
type Action int

const (
	// ActionInMemory joined the bucket with an ordinary in-budget build.
	ActionInMemory Action = iota
	// ActionSpill wrote an over-budget partition to the spill store.
	ActionSpill
	// ActionRecurse repartitioned a spilled bucket with a salted hash.
	ActionRecurse
	// ActionBroadcast block-joined a bucket in budget-sized build chunks.
	ActionBroadcast
)

// String names the action for trace span labels.
func (a Action) String() string {
	switch a {
	case ActionInMemory:
		return "inmemory"
	case ActionSpill:
		return "spill"
	case ActionRecurse:
		return "recurse"
	case ActionBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Decision records one adaptive choice, in the deterministic order the
// executor made it. The hashjoin layer turns these into simtrace spans.
type Decision struct {
	// Partition is the top-level partition the bucket descends from.
	Partition int
	// Depth is the recursion depth: 0 for top-level partitions.
	Depth  int
	Action Action
	// BuildTuples and ProbeTuples count valid tuples after role reversal:
	// BuildTuples is the smaller side actually built on.
	BuildTuples int64
	ProbeTuples int64
	// Reversed reports that the build side is S — a role reversal.
	Reversed bool
	// SpilledBytes is bytes written to the spill store (ActionSpill) or
	// read back from it (ActionRecurse, ActionBroadcast).
	SpilledBytes int64
	// Chunks is the number of build chunks of a broadcast join.
	Chunks int
	// HeavyHitter marks a broadcast forced by the frequency sketch rather
	// than by recursion depth or a bucket that refused to shrink.
	HeavyHitter bool
}

// BudgetStats aggregates the adaptive behaviour of one budgeted join.
type BudgetStats struct {
	InMemory          int
	Reversals         int
	SpilledPartitions int
	SpilledBytes      int64
	Recursions        int
	Broadcasts        int
	BroadcastChunks   int
	// MaxDepth is the deepest recursion level reached.
	MaxDepth int
	// Decisions lists every adaptive choice in partition-major order.
	Decisions []Decision
}

// BudgetConfig configures BudgetedBuildProbe.
type BudgetConfig struct {
	// Budget caps concurrent build/partition memory; nil or unlimited
	// reproduces the plain BuildProbe behaviour.
	Budget *membudget.Budget
	// Spill receives the simulated spill traffic; nil discards it.
	Spill *membudget.SpillStore
	// Threads is the partition-level parallelism (≤ 0 means GOMAXPROCS).
	Threads int
	// MaxDepth, SubFanOut and HeavyHitterFraction default to the package
	// constants when zero.
	MaxDepth            int
	SubFanOut           int
	HeavyHitterFraction float64
	// Salt seeds the per-depth repartitioning salts.
	Salt uint32
	// Emit, when non-nil, receives every match of partition p with the
	// original R payload first regardless of role reversal. Calls are
	// sequential per partition; distinct partitions may emit concurrently.
	Emit func(p int, key, rPay, sPay uint32)
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.SubFanOut <= 0 {
		c.SubFanOut = DefaultSubFanOut
	}
	if c.HeavyHitterFraction <= 0 {
		c.HeavyHitterFraction = DefaultHeavyHitterFraction
	}
	return c
}

// saltAt derives the repartitioning salt for one recursion depth. It is
// never zero at depth ≥ 1, so a recursive pass hashes differently from the
// top-level partitioner (whose low hash bits the bucket's keys agree on).
func saltAt(base uint32, depth int) uint32 {
	s := hashutil.Murmur32Finalizer(base ^ uint32(depth)*0x9E3779B9)
	if s == 0 {
		s = 1
	}
	return s
}

// BudgetedBuildProbe joins the partitions of R and S under a memory budget.
// Partitions whose build side fits are joined in place (role-reversing so
// the smaller side builds); the rest spill and are recursively repartitioned
// with salted hashes, with heavy-hitter buckets and depth-capped buckets
// routed to a chunked broadcast join. Matches and Checksum are byte-for-byte
// identical to the unconstrained BuildProbe for any budget, because every
// path joins the exact same multiset of tuple pairs.
//
// All adaptive decisions are functions of partition contents and the budget
// cap alone — never of cross-partition timing — so same-seed runs decide,
// count and spill identically at any thread count. Budget and spill-store
// accounting is replayed sequentially in partition-major order after the
// parallel join, keeping the high-water mark interleaving-free.
func BudgetedBuildProbe(r, s Partitions, cfg BudgetConfig) (*Result, *BudgetStats, error) {
	if r.NumPartitions() != s.NumPartitions() {
		return nil, nil, fmt.Errorf("joincore: fan-out mismatch: R has %d partitions, S has %d", r.NumPartitions(), s.NumPartitions())
	}
	cfg = cfg.withDefaults()
	numPartitions := r.NumPartitions()
	perPart := make([][]Decision, numPartitions)

	var next, matches int64
	var checksum uint64
	var buildNS, probeNS int64
	var errOnce sync.Once
	var runErr error
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localMatches int64
			var localSum uint64
			var localBuild, localProbe int64
			var scratch buildTable
			for {
				p := int(atomic.AddInt64(&next, 1)) - 1
				if p >= numPartitions {
					break
				}
				pj := partitionJoiner{cfg: cfg, part: p, scratch: &scratch}
				if err := pj.run(r, s); err != nil {
					errOnce.Do(func() { runErr = err })
					break
				}
				perPart[p] = pj.decisions
				localBuild += pj.buildNS
				localProbe += pj.probeNS
				localMatches += pj.matches
				localSum += pj.checksum
			}
			atomic.AddInt64(&matches, localMatches)
			atomic.AddUint64(&checksum, localSum)
			atomic.AddInt64(&buildNS, localBuild)
			atomic.AddInt64(&probeNS, localProbe)
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, nil, runErr
	}
	elapsed := time.Since(start)

	stats := &BudgetStats{}
	for _, ds := range perPart {
		stats.Decisions = append(stats.Decisions, ds...)
	}
	replayAccounting(stats, cfg)

	res := &Result{
		Matches:  matches,
		Checksum: checksum,
		Elapsed:  elapsed,
		Threads:  cfg.Threads,
	}
	if total := buildNS + probeNS; total > 0 {
		res.Build = time.Duration(float64(elapsed) * float64(buildNS) / float64(total))
		res.Probe = elapsed - res.Build
	}
	return res, stats, nil
}

// replayAccounting walks the decision list in its deterministic order and
// replays every reservation against the budget and spill store, then folds
// the list into the aggregate counters. Decisions were made against the cap
// alone, so replaying sequentially reproduces exactly what a one-partition-
// at-a-time executor would have reserved.
func replayAccounting(stats *BudgetStats, cfg BudgetConfig) {
	b, sp := cfg.Budget, cfg.Spill
	// One write-combining line per side stages spill writes.
	const spillBufBytes = 2 * cpupart.BufferTuples * 8
	scatterBytes := int64(2 * cfg.SubFanOut * cpupart.BufferTuples * 8)
	chunkCap := chunkTuples(b)
	for _, d := range stats.Decisions {
		if d.Depth > stats.MaxDepth {
			stats.MaxDepth = d.Depth
		}
		if d.Reversed {
			stats.Reversals++
		}
		switch d.Action {
		case ActionInMemory:
			stats.InMemory++
			n := d.BuildTuples * BuildTupleBytes
			b.MustReserve(membudget.ClassBuild, n)
			b.Release(membudget.ClassBuild, n)
		case ActionSpill:
			stats.SpilledPartitions++
			stats.SpilledBytes += d.SpilledBytes
			b.MustReserve(membudget.ClassSpill, spillBufBytes)
			b.Release(membudget.ClassSpill, spillBufBytes)
			sp.Write(d.SpilledBytes)
		case ActionRecurse:
			stats.Recursions++
			sp.Read(d.SpilledBytes)
			b.MustReserve(membudget.ClassPartition, scatterBytes)
			b.Release(membudget.ClassPartition, scatterBytes)
			sp.Write(d.SpilledBytes)
		case ActionBroadcast:
			stats.Broadcasts++
			stats.BroadcastChunks += d.Chunks
			sp.Read(d.SpilledBytes)
			left := d.BuildTuples
			for c := 0; c < d.Chunks; c++ {
				n := chunkCap
				if left < n {
					n = left
				}
				left -= n
				// A broadcast chunk is the allocation the join cannot
				// avoid; MustReserve keeps the high-water mark honest
				// when even one chunk overshoots a tiny budget.
				b.MustReserve(membudget.ClassBuild, n*BuildTupleBytes)
				b.Release(membudget.ClassBuild, n*BuildTupleBytes)
			}
		}
	}
}

// chunkTuples is the build-chunk size of the broadcast join: as many tuples
// as fit the budget, and at least one.
func chunkTuples(b *membudget.Budget) int64 {
	if !b.Limited() {
		return 1 << 30
	}
	n := b.Cap() / BuildTupleBytes
	if n < 1 {
		n = 1
	}
	return n
}

// partitionJoiner joins one top-level partition pair, recording its
// decisions. It runs entirely on one worker goroutine.
type partitionJoiner struct {
	cfg       BudgetConfig
	part      int
	scratch   *buildTable
	decisions []Decision
	matches   int64
	checksum  uint64
	buildNS   int64
	probeNS   int64
}

func (pj *partitionJoiner) fits(buildTuples int64) bool {
	b := pj.cfg.Budget
	return !b.Limited() || buildTuples*BuildTupleBytes <= b.Cap()
}

func (pj *partitionJoiner) emit(key, bPay, pPay uint32, rIsBuild bool) {
	if pj.cfg.Emit == nil {
		return
	}
	if rIsBuild {
		pj.cfg.Emit(pj.part, key, bPay, pPay)
	} else {
		pj.cfg.Emit(pj.part, key, pPay, bPay)
	}
}

func (pj *partitionJoiner) run(r, s Partitions) error {
	p := pj.part
	nR := countValid(r, p)
	nS := countValid(s, p)
	if nR == 0 || nS == 0 {
		pj.decisions = append(pj.decisions, Decision{
			Partition: p, Action: ActionInMemory, BuildTuples: min64(nR, nS), ProbeTuples: max64(nR, nS),
		})
		return nil
	}
	build, probe, reversed := r, s, false
	nBuild, nProbe := nR, nS
	if nS < nR {
		build, probe, reversed = s, r, true
		nBuild, nProbe = nS, nR
	}
	if pj.fits(nBuild) {
		pj.decisions = append(pj.decisions, Decision{
			Partition: p, Action: ActionInMemory,
			BuildTuples: nBuild, ProbeTuples: nProbe, Reversed: reversed,
		})
		t0 := time.Now()
		pj.scratch.build(build, p)
		t1 := time.Now()
		pj.probeParts(build, probe, p, !reversed)
		pj.buildNS += t1.Sub(t0).Nanoseconds()
		pj.probeNS += time.Since(t1).Nanoseconds()
		return nil
	}
	// Over budget: spill both sides as packed tuple runs and go adaptive.
	rs := collect(r, p)
	ss := collect(s, p)
	pj.decisions = append(pj.decisions, Decision{
		Partition: p, Action: ActionSpill,
		BuildTuples: nBuild, ProbeTuples: nProbe, Reversed: reversed,
		SpilledBytes: 8 * (nR + nS),
	})
	return pj.joinSpilled(rs, ss, 1)
}

// joinSpilled joins one spilled bucket: in memory if the (possibly
// reversed) build side now fits, by broadcast when recursion is hopeless,
// and by salted recursive repartitioning otherwise.
func (pj *partitionJoiner) joinSpilled(rs, ss []uint64, depth int) error {
	if len(rs) == 0 || len(ss) == 0 {
		return nil
	}
	build, probe, rIsBuild := rs, ss, true
	if len(ss) < len(rs) {
		build, probe, rIsBuild = ss, rs, false
	}
	nBuild, nProbe := int64(len(build)), int64(len(probe))
	d := Decision{
		Partition: pj.part, Depth: depth,
		BuildTuples: nBuild, ProbeTuples: nProbe, Reversed: !rIsBuild,
	}
	if pj.fits(nBuild) {
		d.Action = ActionInMemory
		pj.decisions = append(pj.decisions, d)
		pj.joinSlices(build, probe, rIsBuild)
		return nil
	}

	_, hhCount := heavyHitter(build)
	hot := float64(hhCount) >= pj.cfg.HeavyHitterFraction*float64(nBuild) ||
		(pj.cfg.Budget.Limited() && hhCount*BuildTupleBytes > pj.cfg.Budget.Cap())
	if hot || depth > pj.cfg.MaxDepth {
		d.Action = ActionBroadcast
		d.HeavyHitter = hot
		d.SpilledBytes = 8 * (int64(len(rs)) + int64(len(ss)))
		d.Chunks = pj.broadcast(build, probe, rIsBuild)
		pj.decisions = append(pj.decisions, d)
		return nil
	}

	d.Action = ActionRecurse
	d.SpilledBytes = 8 * (int64(len(rs)) + int64(len(ss)))
	pj.decisions = append(pj.decisions, d)
	sub := cpupart.Config{
		NumPartitions: pj.cfg.SubFanOut,
		Hash:          true,
		Threads:       1,
		Salt:          saltAt(pj.cfg.Salt, depth),
	}
	pr, err := cpupart.PartitionTuples(rs, sub)
	if err != nil {
		return fmt.Errorf("joincore: repartitioning spilled bucket: %w", err)
	}
	ps, err := cpupart.PartitionTuples(ss, sub)
	if err != nil {
		return fmt.Errorf("joincore: repartitioning spilled bucket: %w", err)
	}
	for q := 0; q < sub.NumPartitions; q++ {
		subR, subS := pr.Partition(q), ps.Partition(q)
		if len(subR) == 0 || len(subS) == 0 {
			continue
		}
		if len(subR) == len(rs) && len(subS) == len(ss) {
			// The salt failed to split this bucket (e.g. a single key):
			// recursing again would loop, so broadcast it now.
			b, pb, rb := subR, subS, true
			if len(subS) < len(subR) {
				b, pb, rb = subS, subR, false
			}
			bd := Decision{
				Partition: pj.part, Depth: depth + 1, Action: ActionBroadcast,
				BuildTuples: int64(len(b)), ProbeTuples: int64(len(pb)), Reversed: !rb,
				SpilledBytes: 8 * (int64(len(subR)) + int64(len(subS))),
			}
			bd.Chunks = pj.broadcast(b, pb, rb)
			pj.decisions = append(pj.decisions, bd)
			continue
		}
		if err := pj.joinSpilled(subR, subS, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// joinSlices is the in-memory join of two packed tuple runs.
func (pj *partitionJoiner) joinSlices(build, probe []uint64, rIsBuild bool) {
	t0 := time.Now()
	pj.scratch.build(slotSlice(build), 0)
	t1 := time.Now()
	bt := pj.scratch
	for _, t := range probe {
		key, pPay := uint32(t), uint32(t>>32)
		for slot := bt.head[bt.bucketOf(key)]; slot != 0; {
			j := int(slot - 1)
			bt2 := build[j]
			if uint32(bt2) == key {
				pj.matches++
				bPay := uint32(bt2 >> 32)
				pj.checksum += uint64(bPay) + uint64(pPay)
				pj.emit(key, bPay, pPay, rIsBuild)
			}
			slot = bt.next[j]
		}
	}
	pj.buildNS += t1.Sub(t0).Nanoseconds()
	pj.probeNS += time.Since(t1).Nanoseconds()
}

// broadcast block-joins a bucket whose build side cannot be split: build
// chunks sized to the budget, each probed with the full probe side. Exact
// for any input, at the cost of len(probe) passes per chunk.
func (pj *partitionJoiner) broadcast(build, probe []uint64, rIsBuild bool) (chunks int) {
	c := chunkTuples(pj.cfg.Budget)
	for lo := int64(0); lo < int64(len(build)); lo += c {
		hi := lo + c
		if hi > int64(len(build)) {
			hi = int64(len(build))
		}
		pj.joinSlices(build[lo:hi], probe, rIsBuild)
		chunks++
	}
	return chunks
}

// probeParts probes the build table with the probe side of partition p,
// emitting matches. rIsBuild tells emit which payload belongs to R.
func (pj *partitionJoiner) probeParts(build, probe Partitions, p int, rIsBuild bool) {
	bt := pj.scratch
	n := probe.SlotCount(p)
	for i := 0; i < n; i++ {
		key, pPay, ok := probe.Slot(p, i)
		if !ok {
			continue
		}
		for slot := bt.head[bt.bucketOf(key)]; slot != 0; {
			j := int(slot - 1)
			bKey, bPay, _ := build.Slot(p, j)
			if bKey == key {
				pj.matches++
				pj.checksum += uint64(bPay) + uint64(pPay)
				pj.emit(key, bPay, pPay, rIsBuild)
			}
			slot = bt.next[j]
		}
	}
}

// slotSlice adapts a packed tuple run to the Partitions interface so the
// shared buildTable can chain over it.
type slotSlice []uint64

func (s slotSlice) NumPartitions() int  { return 1 }
func (s slotSlice) SlotCount(p int) int { return len(s) }
func (s slotSlice) Slot(p, i int) (key, payload uint32, ok bool) {
	t := s[i]
	return uint32(t), uint32(t >> 32), true
}

// countValid counts the non-dummy tuples of partition p.
func countValid(ps Partitions, p int) int64 {
	var n int64
	sc := ps.SlotCount(p)
	for i := 0; i < sc; i++ {
		if _, _, ok := ps.Slot(p, i); ok {
			n++
		}
	}
	return n
}

// collect gathers the valid tuples of partition p as packed uint64s.
func collect(ps Partitions, p int) []uint64 {
	sc := ps.SlotCount(p)
	out := make([]uint64, 0, sc)
	for i := 0; i < sc; i++ {
		key, pay, ok := ps.Slot(p, i)
		if !ok {
			continue
		}
		out = append(out, uint64(key)|uint64(pay)<<32)
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
