package joincore

// sketchSlots is the Misra-Gries summary size. Eight counters detect any
// key with frequency above n/9 — far below the heavy-hitter thresholds the
// budgeted join acts on — in one pass and 64 bytes of state.
const sketchSlots = 8

// topKSketch is a Misra-Gries frequency summary over build-side keys. It is
// a pure streaming fold — no hashing, no randomness — so the surviving
// candidate set depends only on the input order, which is deterministic for
// a given partitioning.
type topKSketch struct {
	keys   [sketchSlots]uint32
	counts [sketchSlots]int64
}

func (s *topKSketch) observe(key uint32) {
	free := -1
	for i := 0; i < sketchSlots; i++ {
		if s.counts[i] > 0 && s.keys[i] == key {
			s.counts[i]++
			return
		}
		if s.counts[i] == 0 && free < 0 {
			free = i
		}
	}
	if free >= 0 {
		s.keys[free] = key
		s.counts[free] = 1
		return
	}
	for i := 0; i < sketchSlots; i++ {
		s.counts[i]--
	}
}

// top returns the candidate with the largest surviving count. Misra-Gries
// counts are lower bounds, so the caller confirms the candidate's true
// frequency with an exact pass before acting on it.
func (s *topKSketch) top() (key uint32, ok bool) {
	var best int64
	for i := 0; i < sketchSlots; i++ {
		if s.counts[i] > best {
			best = s.counts[i]
			key = s.keys[i]
			ok = true
		}
	}
	return key, ok
}

// heavyHitter scans the sketch's best candidate against the exact stream
// and returns its true frequency.
func heavyHitter(tuples []uint64) (key uint32, count int64) {
	var s topKSketch
	for _, t := range tuples {
		s.observe(uint32(t))
	}
	cand, ok := s.top()
	if !ok {
		return 0, 0
	}
	for _, t := range tuples {
		if uint32(t) == cand {
			count++
		}
	}
	return cand, count
}
