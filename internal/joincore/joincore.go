// Package joincore implements the build and probe phases of the partitioned
// hash join (Section 3.3): for every partition, a cache-resident hash table
// is built over the R partition using bucket chaining (Manegold et al.) and
// probed with the corresponding S partition. Partitions are processed in
// parallel by a pool of workers pulling from a shared task counter.
//
// The phases run for real and are measured; they consume partitions through
// the Partitions interface so the same code probes CPU-written and
// (simulated) FPGA-written partitions — the latter containing dummy-key
// slots that the build and probe skip, as the paper's software does.
package joincore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpgapart/internal/hashutil"
)

// Partitions is the slot-level view of a partitioned relation.
// partition.Result implements it.
type Partitions interface {
	NumPartitions() int
	// SlotCount returns the number of addressable tuple slots in partition
	// p, including dummy slots of FPGA-written partitions.
	SlotCount(p int) int
	// Slot returns the tuple in slot i; ok is false for dummy slots.
	Slot(p, i int) (key, payload uint32, ok bool)
}

// Result reports a build+probe run.
type Result struct {
	Matches  int64
	Checksum uint64 // sum of matched payload pairs, for cross-validation

	// Elapsed is the measured wall time of the whole phase; Build and
	// Probe split it proportionally to the per-worker phase times.
	Elapsed time.Duration
	Build   time.Duration
	Probe   time.Duration

	Threads int
}

// BuildProbe joins the partitions of R and S. Both inputs must have the same
// fan-out. threads ≤ 0 uses all cores.
func BuildProbe(r, s Partitions, threads int) (*Result, error) {
	if r.NumPartitions() != s.NumPartitions() {
		return nil, fmt.Errorf("joincore: fan-out mismatch: R has %d partitions, S has %d", r.NumPartitions(), s.NumPartitions())
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	numPartitions := r.NumPartitions()

	var next int64
	var matches int64
	var checksum uint64
	var buildNS, probeNS int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localMatches int64
			var localSum uint64
			var localBuild, localProbe int64
			var scratch buildTable
			for {
				p := int(atomic.AddInt64(&next, 1)) - 1
				if p >= numPartitions {
					break
				}
				t0 := time.Now()
				scratch.build(r, p)
				t1 := time.Now()
				m, cs := scratch.probe(r, s, p)
				localBuild += t1.Sub(t0).Nanoseconds()
				localProbe += time.Since(t1).Nanoseconds()
				localMatches += m
				localSum += cs
			}
			atomic.AddInt64(&matches, localMatches)
			atomic.AddUint64(&checksum, localSum)
			atomic.AddInt64(&buildNS, localBuild)
			atomic.AddInt64(&probeNS, localProbe)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Matches:  matches,
		Checksum: checksum,
		Elapsed:  elapsed,
		Threads:  threads,
	}
	if total := buildNS + probeNS; total > 0 {
		res.Build = time.Duration(float64(elapsed) * float64(buildNS) / float64(total))
		res.Probe = elapsed - res.Build
	}
	return res, nil
}

// buildTable is a bucket-chaining hash table over one R partition: head maps
// a bucket to a slot index + 1, next chains slots. Reused across partitions
// to avoid per-partition allocation.
type buildTable struct {
	head []int32
	next []int32
	mask uint32
}

// bucketOf hashes a key into the table. The partition already consumed the
// low hash bits, so the bucket uses the upper bits of the murmur value —
// independent bits, as the bucket-chaining scheme of [21] requires.
func (bt *buildTable) bucketOf(key uint32) uint32 {
	return (hashutil.Murmur32Finalizer(key) >> 13) & bt.mask
}

func (bt *buildTable) build(r Partitions, p int) {
	n := r.SlotCount(p)
	buckets := 1
	for buckets < n {
		buckets <<= 1
	}
	if buckets < 16 {
		buckets = 16
	}
	if cap(bt.head) < buckets {
		bt.head = make([]int32, buckets)
	} else {
		bt.head = bt.head[:buckets]
		for i := range bt.head {
			bt.head[i] = 0
		}
	}
	if cap(bt.next) < n {
		bt.next = make([]int32, n)
	} else {
		bt.next = bt.next[:n]
	}
	bt.mask = uint32(buckets - 1)
	for i := 0; i < n; i++ {
		key, _, ok := r.Slot(p, i)
		if !ok {
			continue // dummy slot in an FPGA-written partition
		}
		b := bt.bucketOf(key)
		bt.next[i] = bt.head[b]
		bt.head[b] = int32(i) + 1
	}
}

func (bt *buildTable) probe(r, s Partitions, p int) (matches int64, checksum uint64) {
	n := s.SlotCount(p)
	for i := 0; i < n; i++ {
		key, sPay, ok := s.Slot(p, i)
		if !ok {
			continue
		}
		for slot := bt.head[bt.bucketOf(key)]; slot != 0; {
			j := int(slot - 1)
			rKey, rPay, _ := r.Slot(p, j)
			if rKey == key {
				matches++
				checksum += uint64(rPay) + uint64(sPay)
			}
			slot = bt.next[j]
		}
	}
	return matches, checksum
}

// NestedLoop is the O(|R|·|S|) reference join used to validate the hash
// join in tests. Only suitable for small inputs.
func NestedLoop(r, s Partitions) (matches int64, checksum uint64) {
	for p := 0; p < r.NumPartitions(); p++ {
		for i := 0; i < r.SlotCount(p); i++ {
			rKey, rPay, ok := r.Slot(p, i)
			if !ok {
				continue
			}
			for q := 0; q < s.NumPartitions(); q++ {
				for j := 0; j < s.SlotCount(q); j++ {
					sKey, sPay, ok := s.Slot(q, j)
					if ok && sKey == rKey {
						matches++
						checksum += uint64(rPay) + uint64(sPay)
					}
				}
			}
		}
	}
	return matches, checksum
}
