package faults

import (
	"math"
	"testing"
)

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{DropProb: -0.1},
		{DropProb: 1},
		{CorruptProb: 1.5},
		{DelayProb: -1},
		{DropProb: 0.6, CorruptProb: 0.5},
		{DelayUS: -3},
		{Links: []Link{{Src: 0, Dst: 1, Factor: 0}}},
		{Links: []Link{{Src: 0, Dst: 1, Factor: 1.5}}},
		{Links: []Link{{Src: 1, Dst: 1, Factor: 0.5}}},
		{Links: []Link{{Src: -1, Dst: 1, Factor: 0.5}}},
		{Crashes: []Crash{{Node: -1}}},
		{Crashes: []Crash{{Node: 0, AfterFraction: 2}}},
		{Crashes: []Crash{{Node: 1}, {Node: 1}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Node: -2, Factor: 2}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("scenario %d validated: %+v", i, s)
		}
	}
	good := Scenario{
		Seed: 1, DropProb: 0.1, CorruptProb: 0.05, DelayProb: 0.2, DelayUS: 50,
		Links:      []Link{{Src: 0, Dst: 3, Factor: 0.25}},
		Crashes:    []Crash{{Node: 2, AfterFraction: 0.5}},
		Stragglers: []Straggler{{Node: 1, Factor: 2}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
}

func TestFateDeterministicAndOrderIndependent(t *testing.T) {
	inj, err := New(Scenario{Seed: 42, DropProb: 0.3, CorruptProb: 0.1, DelayProb: 0.2, DelayUS: 10})
	if err != nil {
		t.Fatal(err)
	}
	ids := []MsgID{
		{Src: 0, Dst: 1, Piece: 7, Msg: 3},
		{Src: 1, Dst: 0, Piece: 7, Msg: 3},
		{Phase: 1, Src: 0, Dst: 1, Piece: 7, Msg: 3},
		{Src: 0, Dst: 1, Piece: 7, Msg: 3, Attempt: 1},
		{Src: 0, Dst: 1, Piece: 7, Msg: 3, Round: 2},
	}
	// Record in one order, replay in reverse: every answer must be a pure
	// function of the MsgID.
	type draw struct {
		fate  Fate
		delay float64
		jit   float64
	}
	first := make([]draw, len(ids))
	for i, id := range ids {
		f, d := inj.MessageFate(id)
		first[i] = draw{f, d, inj.Jitter(id)}
	}
	for i := len(ids) - 1; i >= 0; i-- {
		f, d := inj.MessageFate(ids[i])
		if f != first[i].fate || d != first[i].delay || inj.Jitter(ids[i]) != first[i].jit {
			t.Errorf("id %d: replay disagrees", i)
		}
	}
}

func TestFateFrequenciesMatchProbabilities(t *testing.T) {
	const n = 200000
	inj, err := New(Scenario{Seed: 7, DropProb: 0.1, CorruptProb: 0.05, DelayProb: 0.2, DelayUS: 100})
	if err != nil {
		t.Fatal(err)
	}
	var drops, corrupts, delays int
	for i := 0; i < n; i++ {
		f, d := inj.MessageFate(MsgID{Src: 0, Dst: 1, Piece: uint64(i)})
		switch f {
		case Drop:
			drops++
		case Corrupt:
			corrupts++
		}
		if d > 0 {
			delays++
			if d < 50 || d >= 150 {
				t.Fatalf("delay %v µs outside [50, 150)", d)
			}
		}
	}
	check := func(name string, got int, p float64) {
		frac := float64(got) / n
		if math.Abs(frac-p) > 0.01 {
			t.Errorf("%s frequency %.4f, want ≈ %.2f", name, frac, p)
		}
	}
	check("drop", drops, 0.1)
	check("corrupt", corrupts, 0.05)
	// Delay is drawn for non-dropped messages only.
	check("delay", delays, 0.2*0.9)
}

func TestSeedsDecorrelate(t *testing.T) {
	a, _ := New(Scenario{Seed: 1, DropProb: 0.5})
	b, _ := New(Scenario{Seed: 2, DropProb: 0.5})
	same := 0
	const n = 10000
	for i := 0; i < n; i++ {
		fa, _ := a.MessageFate(MsgID{Piece: uint64(i)})
		fb, _ := b.MessageFate(MsgID{Piece: uint64(i)})
		if fa == fb {
			same++
		}
	}
	// Independent 50/50 draws agree about half the time; identical streams
	// would agree always.
	if same > n*6/10 || same < n*4/10 {
		t.Errorf("different seeds agree on %d/%d fates", same, n)
	}
}

func TestJitterUniform(t *testing.T) {
	inj, _ := New(Scenario{Seed: 3})
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		j := inj.Jitter(MsgID{Piece: uint64(i)})
		if j < 0 || j >= 1 {
			t.Fatalf("jitter %v outside [0, 1)", j)
		}
		sum += j
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("jitter mean %v, want ≈ 0.5", mean)
	}
}

func TestLookups(t *testing.T) {
	inj, err := New(Scenario{
		Seed:       1,
		Links:      []Link{{Src: 2, Dst: 0, Factor: 0.5}},
		Crashes:    []Crash{{Node: 3, AfterFraction: 0.25}, {Node: 1, AfterFraction: 0}},
		Stragglers: []Straggler{{Node: 0, Factor: 2.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := inj.LinkFactor(2, 0); f != 0.5 {
		t.Errorf("degraded link factor %v", f)
	}
	if f := inj.LinkFactor(0, 2); f != 1 {
		t.Errorf("reverse direction degraded too: %v", f)
	}
	if f, ok := inj.CrashFraction(3); !ok || f != 0.25 {
		t.Errorf("crash fraction of node 3: %v, %v", f, ok)
	}
	if _, ok := inj.CrashFraction(0); ok {
		t.Error("healthy node reported crashed")
	}
	if got := inj.CrashedNodes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("crashed nodes %v, want [1 3]", got)
	}
	if f := inj.StraggleFactor(0); f != 2.5 {
		t.Errorf("straggle factor %v", f)
	}
	if f := inj.StraggleFactor(1); f != 1 {
		t.Errorf("healthy straggle factor %v", f)
	}
}

func TestZeroScenarioAlwaysDelivers(t *testing.T) {
	inj, err := New(Scenario{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		f, d := inj.MessageFate(MsgID{Src: i % 4, Dst: (i + 1) % 4, Piece: uint64(i)})
		if f != Deliver || d != 0 {
			t.Fatalf("empty scenario produced fate %v delay %v", f, d)
		}
	}
}
