// Package faults is a deterministic, seedable fault injector for the
// distributed-join path. It models the failures a real rack suffers —
// dropped, corrupted and delayed messages, degraded links, crashed nodes,
// stragglers — while keeping every run byte-for-byte reproducible: each
// decision is a pure function of (seed, phase, link, piece, round, message,
// attempt), derived by hashing rather than by consuming a sequential random
// stream, so outcomes do not depend on iteration order.
//
// The injector plugs into rdma.Fabric's fault-aware exchange and into
// distjoin.Join; tests replay exact failure scenarios by fixing the seed.
package faults

import (
	"fmt"
	"sort"
)

// Link degrades the directed link Src→Dst to Factor of its nominal
// bandwidth (0 < Factor ≤ 1).
type Link struct {
	Src, Dst int
	Factor   float64
}

// Crash fail-stops a node part-way through the exchange: the node stops
// sending and receiving after AfterFraction of its exchange messages
// (0 = crashed from the start, 0.5 = mid-exchange). Its memory remains
// remotely readable — the one-sided RDMA fault model of Barthels et al. —
// so survivors can re-pull its partition pieces.
type Crash struct {
	Node          int
	AfterFraction float64
}

// Straggler slows every port operation of a node by Factor (≥ 1).
type Straggler struct {
	Node   int
	Factor float64
}

// Scenario is a complete, declarative failure scenario.
type Scenario struct {
	// Seed makes the scenario reproducible; equal seeds give identical runs.
	Seed uint64
	// DropProb is the per-message probability that a message is lost in
	// flight (the sender times out and retransmits).
	DropProb float64
	// CorruptProb is the per-message probability that a message arrives
	// bit-flipped. Corruption is caught by the receiver's piece checksum,
	// which re-requests the whole piece.
	CorruptProb float64
	// DelayProb and DelayUS add an extra delay of roughly DelayUS µs
	// (uniform in [0.5, 1.5)·DelayUS) to a fraction of the messages.
	DelayProb float64
	DelayUS   float64
	// Links lists degraded directed links.
	Links []Link
	// Crashes lists fail-stopped nodes.
	Crashes []Crash
	// Stragglers lists slow nodes.
	Stragglers []Straggler
}

// Validate reports whether the scenario is well-formed. Node indices are
// range-checked against the cluster size by the consumer (which knows it).
func (s *Scenario) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", s.DropProb}, {"CorruptProb", s.CorruptProb}, {"DelayProb", s.DelayProb}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1)", p.name, p.v)
		}
	}
	if s.DropProb+s.CorruptProb >= 1 {
		return fmt.Errorf("faults: DropProb+CorruptProb %v ≥ 1", s.DropProb+s.CorruptProb)
	}
	if s.DelayUS < 0 {
		return fmt.Errorf("faults: negative DelayUS %v", s.DelayUS)
	}
	for _, l := range s.Links {
		if l.Factor <= 0 || l.Factor > 1 {
			return fmt.Errorf("faults: link %d→%d degrade factor %v outside (0, 1]", l.Src, l.Dst, l.Factor)
		}
		if l.Src < 0 || l.Dst < 0 || l.Src == l.Dst {
			return fmt.Errorf("faults: bad degraded link %d→%d", l.Src, l.Dst)
		}
	}
	seen := map[int]bool{}
	for _, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash of negative node %d", c.Node)
		}
		if c.AfterFraction < 0 || c.AfterFraction > 1 {
			return fmt.Errorf("faults: crash fraction %v outside [0, 1]", c.AfterFraction)
		}
		if seen[c.Node] {
			return fmt.Errorf("faults: node %d crashes twice", c.Node)
		}
		seen[c.Node] = true
	}
	for _, st := range s.Stragglers {
		if st.Node < 0 {
			return fmt.Errorf("faults: negative straggler node %d", st.Node)
		}
		if st.Factor < 1 {
			return fmt.Errorf("faults: straggle factor %v < 1", st.Factor)
		}
	}
	return nil
}

// Fate is the injector's verdict on a single message transmission.
type Fate int

const (
	// Deliver: the message arrives intact.
	Deliver Fate = iota
	// Drop: the message is lost; the sender times out.
	Drop
	// Corrupt: the message arrives bit-flipped; the receiver's piece
	// checksum will fail.
	Corrupt
)

func (f Fate) String() string {
	switch f {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Fate(%d)", int(f))
	}
}

// Injector answers per-message and per-node fault queries for one scenario.
// It is stateless after construction and safe for concurrent use.
type Injector struct {
	s        Scenario
	links    map[[2]int]float64
	crashes  map[int]float64
	straggle map[int]float64
}

// New validates the scenario and returns its injector.
func New(s Scenario) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		s:        s,
		links:    make(map[[2]int]float64, len(s.Links)),
		crashes:  make(map[int]float64, len(s.Crashes)),
		straggle: make(map[int]float64, len(s.Stragglers)),
	}
	for _, l := range s.Links {
		in.links[[2]int{l.Src, l.Dst}] = l.Factor
	}
	for _, c := range s.Crashes {
		in.crashes[c.Node] = c.AfterFraction
	}
	for _, st := range s.Stragglers {
		in.straggle[st.Node] = st.Factor
	}
	return in, nil
}

// Scenario returns a copy of the injector's scenario.
func (in *Injector) Scenario() Scenario { return in.s }

// splitmix64's finalizer: a strong 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// purposes separate the decision streams so that, e.g., the fate draw and
// the jitter draw of the same message are independent.
const (
	purposeFate uint64 = 1 + iota
	purposeDelay
	purposeDelayAmount
	purposeJitter
)

func (in *Injector) u64(purpose uint64, vals ...uint64) uint64 {
	h := mix(in.s.Seed ^ 0x9e3779b97f4a7c15)
	h = mix(h ^ purpose)
	for _, v := range vals {
		h = mix(h ^ v)
	}
	return h
}

// rand01 returns a uniform float64 in [0, 1).
func (in *Injector) rand01(purpose uint64, vals ...uint64) float64 {
	return float64(in.u64(purpose, vals...)>>11) / (1 << 53)
}

// MsgID identifies one transmission attempt of one message for the
// deterministic decision streams.
type MsgID struct {
	// Phase salts repeated exchanges (0 = main exchange, 1 = recovery) so
	// they draw independent outcomes.
	Phase    uint64
	Src, Dst int
	// Piece is the caller's piece identifier (e.g. the global partition).
	Piece uint64
	// Round counts whole-piece retransmissions after checksum failures.
	Round int
	// Msg is the message index within the piece; Attempt counts
	// per-message retransmissions after drops.
	Msg, Attempt int
}

func (id MsgID) key() []uint64 {
	return []uint64{id.Phase, uint64(id.Src)<<32 | uint64(uint32(id.Dst)),
		id.Piece, uint64(id.Round)<<32 | uint64(uint32(id.Msg)), uint64(id.Attempt)}
}

// MessageFate decides what happens to one transmission attempt, and how many
// extra microseconds of delay it suffers when delivered.
func (in *Injector) MessageFate(id MsgID) (Fate, float64) {
	fate := Deliver
	if p := in.s.DropProb + in.s.CorruptProb; p > 0 {
		r := in.rand01(purposeFate, id.key()...)
		switch {
		case r < in.s.DropProb:
			fate = Drop
		case r < p:
			fate = Corrupt
		}
	}
	var delay float64
	if fate != Drop && in.s.DelayProb > 0 && in.rand01(purposeDelay, id.key()...) < in.s.DelayProb {
		delay = in.s.DelayUS * (0.5 + in.rand01(purposeDelayAmount, id.key()...))
	}
	return fate, delay
}

// Jitter returns the uniform [0, 1) jitter draw for this attempt's backoff.
func (in *Injector) Jitter(id MsgID) float64 {
	return in.rand01(purposeJitter, id.key()...)
}

// LinkFactor returns the bandwidth multiplier of the directed link src→dst
// (1 when the link is healthy).
func (in *Injector) LinkFactor(src, dst int) float64 {
	if f, ok := in.links[[2]int{src, dst}]; ok {
		return f
	}
	return 1
}

// CrashFraction reports whether node crashes, and after what fraction of its
// exchange messages.
func (in *Injector) CrashFraction(node int) (float64, bool) {
	f, ok := in.crashes[node]
	return f, ok
}

// CrashedNodes returns the sorted list of crashed nodes. It iterates the
// scenario's declaration order, not the lookup map — map iteration order is
// randomized per run and would leak into callers that build piece lists or
// takeover assignments from this slice.
func (in *Injector) CrashedNodes() []int {
	nodes := make([]int, 0, len(in.s.Crashes))
	for _, c := range in.s.Crashes {
		nodes = append(nodes, c.Node)
	}
	sort.Ints(nodes)
	return nodes
}

// StraggleFactor returns node's slowdown multiplier (1 for healthy nodes).
func (in *Injector) StraggleFactor(node int) float64 {
	if f, ok := in.straggle[node]; ok {
		return f
	}
	return 1
}
