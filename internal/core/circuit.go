package core

import (
	"fmt"
	"time"

	"fpgapart/internal/fpga"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/memsys"
	"fpgapart/internal/qpi"
	"fpgapart/platform"
	"fpgapart/workload"
)

// hashPipelineDepth is the latency of the hash function module in clock
// cycles: murmur hashing takes 5 pipeline stages (Code 3), 10 ns at 200 MHz.
const hashPipelineDepth = 5

// tup is one tuple in flight through the circuit, carrying its resolved
// partition index from the hash module onward.
type tup struct {
	words [8]uint64 // up to one full 64-byte tuple
	part  uint32
}

// group is one internal cycle's worth of tuples: the lanes of a cache line
// moving through the (lockstep) hash pipelines.
type group struct {
	t [8]tup
	n int
}

// outLine is an assembled cache line traveling from a write combiner to the
// write-back module: the partition it belongs to and how many of its tuple
// slots are valid (the rest carry dummy keys).
type outLine struct {
	words  [8]uint64
	part   uint32
	valid  uint8
	single bool // no-write-combiner ablation: one raw tuple, RMW write-back
}

// Circuit is a synthesized partitioner configuration bound to a platform
// link. Create one with NewCircuit and call Partition per relation; a
// Circuit is not safe for concurrent use (it is one piece of hardware).
type Circuit struct {
	cfg     Config
	clockHz float64
	curve   platform.BandwidthCurve
}

// NewCircuit validates cfg and binds it to an FPGA clock and a QPI bandwidth
// curve (use platform.XeonFPGA().FPGAAlone for the paper's end-to-end
// numbers and platform.RawFPGA().FPGAAlone for the raw-throughput wrapper).
func NewCircuit(cfg Config, clockHz float64, curve platform.BandwidthCurve) (*Circuit, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clockHz <= 0 {
		return nil, fmt.Errorf("core: clock %v Hz", clockHz)
	}
	return &Circuit{cfg: cfg, clockHz: clockHz, curve: curve}, nil
}

// Config returns the circuit's (defaulted) configuration.
func (c *Circuit) Config() Config { return c.cfg }

// Partition runs the circuit over rel and returns the partitioned output and
// run statistics. In PAD mode the error is ErrPartitionOverflow if a
// partition outgrew its padded size; stats are still returned for the failed
// run (the fallback decision needs them).
func (c *Circuit) Partition(rel *workload.Relation) (*Output, *Stats, error) {
	if c.cfg.Layout == VRID && rel.Layout != workload.ColumnLayout {
		return nil, nil, fmt.Errorf("core: VRID mode requires a column-layout relation, got %v", rel.Layout)
	}
	if c.cfg.Layout == RID && rel.Layout != workload.RowLayout {
		return nil, nil, fmt.Errorf("core: RID mode requires a row-layout relation, got %v", rel.Layout)
	}
	if c.cfg.Layout == RID && rel.Width != c.cfg.TupleWidth {
		return nil, nil, fmt.Errorf("core: circuit synthesized for %dB tuples, relation has %dB", c.cfg.TupleWidth, rel.Width)
	}
	ep, err := qpi.New(c.clockHz, c.curve)
	if err != nil {
		return nil, nil, err
	}
	r := &run{
		cfg:   c.cfg,
		rel:   rel,
		ep:    ep,
		clock: c.clockHz,
		stats: &Stats{},
	}
	if err := r.setup(); err != nil {
		return nil, nil, err
	}
	err = r.execute()
	r.finishStats()
	if r.pr != nil {
		r.pr.finish(r)
	}
	if err != nil {
		return nil, r.stats, err
	}
	return r.out, r.stats, nil
}

// run holds the mutable state of one partitioning execution.
type run struct {
	cfg   Config
	rel   *workload.Relation
	ep    *qpi.Endpoint
	clock float64
	stats *Stats
	pr    *probe // nil unless cfg.Trace is set

	lanes int // tuples per internal cycle
	wpt   int // output words per tuple
	tpl   int // output tuples per line
	radix uint
	dummy uint32
	total int64 // input tuples

	// Input feed state.
	next int64
	// comp, when non-nil, replaces rel as the input: an RLE decompressor
	// stage in front of the hash pipelines (see compressed.go).
	comp *rleFeed
	// compPending is the number of compressed lines still to fetch for the
	// next group; -1 means "not yet computed".
	compPending int64

	// Hash pipelines (lockstep across lanes).
	pipe *fpga.Reg[group]

	// Per-lane first-stage FIFOs and write combiners.
	fifo1 []*fpga.FIFO[tup]
	comb  []*combiner

	// Write-back.
	rr    int
	final *fpga.FIFO[outLine]

	// Destination bookkeeping (the two BRAMs of Section 4.3).
	capLines []int64
	used     []int64
	counts   []int64
	hist     []int64 // HIST mode first-pass histogram

	out *Output

	// Shared-memory model.
	region *memsys.Region
	ptable *memsys.PageTable
	outOff int64 // byte offset of the output buffer in the region
}

func (r *run) setup() error {
	cfg := r.cfg
	r.lanes = cfg.Lanes()
	r.wpt = cfg.OutputTupleWidth() / 8
	r.tpl = 64 / cfg.OutputTupleWidth()
	r.radix = cfg.RadixBits()
	r.dummy = cfg.DummyKeyValue()
	if r.comp != nil {
		r.total = r.comp.n
		r.compPending = -1
	} else {
		r.total = int64(r.rel.NumTuples)
	}

	r.pipe = fpga.NewReg[group](hashPipelineDepth)
	r.fifo1 = make([]*fpga.FIFO[tup], r.lanes)
	r.comb = make([]*combiner, r.lanes)
	for i := range r.fifo1 {
		r.fifo1[i] = fpga.NewFIFO[tup](cfg.Stage1FIFODepth)
		r.comb[i] = newCombiner(cfg, r.lanes, r.wpt, r.dummy)
	}
	r.final = fpga.NewFIFO[outLine](8)

	p := cfg.NumPartitions
	r.capLines = make([]int64, p)
	r.used = make([]int64, p)
	r.counts = make([]int64, p)
	r.hist = make([]int64, p)
	if cfg.Trace != nil {
		r.pr = newProbe(cfg.Trace, r)
	}
	return nil
}

// execute runs the configured passes.
func (r *run) execute() error {
	if r.cfg.Format == HIST {
		r.histogramPass()
		r.prefixSum()
	} else {
		r.padBases()
	}
	r.allocate()
	if err := r.partitionPass(); err != nil {
		return err
	}
	if err := r.flushPass(); err != nil {
		return err
	}
	if got, want := r.out.TotalTuples(), r.total; got != want {
		return fmt.Errorf("core: internal error: %d tuples out, %d in", got, want)
	}
	if !r.cfg.DisableForwarding && r.stats.StallsHazard != 0 {
		return fmt.Errorf("core: internal error: %d hazard stalls with forwarding enabled", r.stats.StallsHazard)
	}
	return nil
}

// inputReadFrac returns the QPI traffic mix of the main partitioning pass.
func (r *run) inputReadFrac() float64 {
	if r.cfg.DisableWriteCombiner {
		// Per tuple: 1/lanes input line read + 1 RMW line read + 1 line
		// write. Read bytes : write bytes = (1/lanes + 1) : 1.
		rd := 1.0/float64(r.lanes) + 1
		return rd / (rd + 1)
	}
	if r.comp != nil {
		// Reads only the compressed bytes; writes 8 B per tuple.
		cb := float64(r.comp.col.CompressedBytes())
		if total := cb + 8*float64(r.total); total > 0 {
			return cb / total
		}
		return 0.5 // empty column: mix is irrelevant
	}
	if r.cfg.Layout == VRID {
		// Reads 4 B per tuple, writes 8 B per tuple: r = 0.5.
		return 1.0 / 3.0
	}
	// RID single pass: reads and writes the same volume: r = 1.
	return 0.5
}

// histogramPass streams the relation through the hash pipelines once,
// counting tuples per partition. No data is written back (Section 4.5).
func (r *run) histogramPass() {
	r.ep.SetMix(1)
	start := r.stats.Cycles
	r.next = 0
	for {
		r.ep.Tick()
		in, ok := r.nextGroup(false)
		out, outOK := r.pipe.Shift(in, ok)
		if outOK {
			for i := 0; i < out.n; i++ {
				r.hist[out.t[i].part]++
			}
		}
		r.stats.Cycles++
		if r.pr != nil {
			r.pr.maybeSample(r)
		}
		if r.next >= r.total && r.pipe.Drained() {
			break
		}
	}
	r.stats.HistogramCycles = r.stats.Cycles - start
	r.next = 0
	if r.comp != nil {
		// Rewind the decompressor for the second pass.
		r.comp = newRLEFeed(r.comp.col)
		r.compPending = -1
	}
}

// prefixSum turns the histogram into line-aligned partition base addresses.
// Each partition's region is its exact line count plus one potential partial
// line per write combiner (the flush can leave up to lanes partially filled
// lines per partition). The scan costs one cycle per partition on the FPGA.
func (r *run) prefixSum() {
	slack := int64(r.lanes - 1)
	if r.cfg.DisableWriteCombiner {
		slack = 0 // tuple-granular RMW writes need no flush slack
	}
	for p := 0; p < r.cfg.NumPartitions; p++ {
		lines := (r.hist[p] + int64(r.tpl) - 1) / int64(r.tpl)
		r.capLines[p] = lines + slack
		if r.hist[p] == 0 {
			r.capLines[p] = 0
		}
	}
	r.stats.PrefixSumCycles = int64(r.cfg.NumPartitions)
	r.stats.Cycles += int64(r.cfg.NumPartitions)
}

// padBases preassigns every partition the fixed padded size of PAD mode.
func (r *run) padBases() {
	p := int64(r.cfg.NumPartitions)
	capTuples := (r.total + p - 1) / p
	capTuples = int64(float64(capTuples) * (1 + r.cfg.PadFraction))
	if capTuples < 1 {
		capTuples = 1
	}
	lines := (capTuples + int64(r.tpl) - 1) / int64(r.tpl)
	if !r.cfg.DisableWriteCombiner {
		lines += int64(r.lanes - 1)
	}
	for i := range r.capLines {
		r.capLines[i] = lines
	}
}

// allocate lays the partitions out in shared memory and populates the
// FPGA-side page table.
func (r *run) allocate() {
	var totalLines int64
	base := make([]int64, r.cfg.NumPartitions)
	for p := range r.capLines {
		base[p] = totalLines
		totalLines += r.capLines[p]
	}
	r.out = &Output{
		NumPartitions: r.cfg.NumPartitions,
		TupleWidth:    r.cfg.OutputTupleWidth(),
		DummyKey:      r.dummy,
		Lines:         make([]uint64, totalLines*8),
		Base:          base,
		LinesUsed:     r.used,
		Counts:        r.counts,
	}
	// Fill with dummy keys so never-written slots of used regions (PAD mode
	// headroom) read as dummies, like bitstream-initialized memory.
	dummyWord := uint64(r.dummy) | uint64(r.dummy)<<32
	for i := range r.out.Lines {
		r.out.Lines[i] = dummyWord
	}

	// Shared-memory region: input buffer followed by the output buffer,
	// page-aligned, as the software would allocate through the Intel API.
	pageBytes := 4 << 20
	var inBytes int64
	if r.comp != nil {
		inBytes = int64(r.comp.col.CompressedBytes())
	} else {
		inBytes = int64(r.rel.Bytes())
	}
	r.outOff = (inBytes + int64(pageBytes) - 1) / int64(pageBytes) * int64(pageBytes)
	need := r.outOff + totalLines*64
	if need < int64(pageBytes) {
		need = int64(pageBytes)
	}
	pool, err := memsys.NewPool(need+int64(pageBytes), pageBytes)
	if err == nil {
		if region, aerr := pool.Alloc(need); aerr == nil {
			r.region = region
			pages := (need + int64(pageBytes) - 1) / int64(pageBytes)
			if pt, perr := memsys.NewPageTable(pageBytes, int(pages)); perr == nil {
				if pt.Populate(region) == nil {
					r.ptable = pt
				}
			}
		}
	}
}

// translate models the pipelined FPGA page-table lookup for one cache-line
// access at byte offset off in the run's virtual space.
func (r *run) translate(off int64) {
	if r.ptable == nil {
		return
	}
	if _, err := r.ptable.Translate(off); err == nil {
		r.stats.PageTranslations++
	}
}

// nextGroup feeds the hash pipelines: it returns the next lane group if the
// input stage may issue this cycle, or a bubble. When feed is true the
// back-pressure rule of Section 4.3 applies — a new cache line is requested
// only if every first-stage FIFO has room for all groups in flight.
func (r *run) nextGroup(feed bool) (group, bool) {
	if r.next >= r.total {
		return group{}, false
	}
	if feed {
		for _, f := range r.fifo1 {
			if f.Free() < hashPipelineDepth+1 {
				r.stats.StallsBackpressure++
				return group{}, false
			}
		}
	}
	if r.comp != nil {
		return r.nextCompressedGroup()
	}
	needLine := true
	if r.cfg.Layout == VRID {
		// 16 keys per input line; a new line is consumed every other group.
		needLine = r.next%16 == 0
	}
	if needLine {
		if !r.ep.CanRead() {
			r.stats.StallsBackpressure++
			return group{}, false
		}
		r.ep.Read()
		r.stats.LinesRead++
		r.translate(r.inputLineOffset())
	}
	var g group
	n := int(r.total - r.next)
	if n > r.lanes {
		n = r.lanes
	}
	for i := 0; i < n; i++ {
		idx := r.next + int64(i)
		var t tup
		var key uint32
		if r.cfg.Layout == VRID {
			key = r.rel.Keys[idx]
			t.words[0] = uint64(idx)<<32 | uint64(key) // <key, VRID>
		} else {
			stride := r.rel.Stride()
			src := r.rel.Data[int(idx)*stride : int(idx+1)*stride]
			copy(t.words[:stride], src)
			key = uint32(src[0])
		}
		t.part = hashutil.PartitionIndex32(key, r.radix, r.cfg.Hash)
		g.t[i] = t
	}
	g.n = n
	r.next += int64(n)
	r.stats.TuplesIn += int64(n)
	return g, true
}

// inputLineOffset returns the byte offset of the cache line about to be read.
func (r *run) inputLineOffset() int64 {
	if r.cfg.Layout == VRID {
		return r.next * 4 / 64 * 64
	}
	return r.next * int64(r.cfg.TupleWidth) / 64 * 64
}

// partitionPass is the main pass: read, hash, combine, write back.
func (r *run) partitionPass() error {
	r.ep.SetMix(r.inputReadFrac())
	start := r.stats.Cycles
	// TuplesIn was already counted by the histogram pass; reset so the
	// partition pass recounts (HIST reads the data twice but each tuple is
	// one logical input).
	r.stats.TuplesIn = 0
	for {
		r.ep.Tick()
		if err := r.writeBack(); err != nil {
			return err
		}
		for i, cb := range r.comb {
			cb.step(r.fifo1[i], r.stats, r.cfg)
		}
		in, ok := r.nextGroup(true)
		if !ok {
			r.stats.HashPipelineBubbles++
		}
		out, outOK := r.pipe.Shift(in, ok)
		if outOK {
			for i := 0; i < out.n; i++ {
				r.fifo1[i].Push(out.t[i])
				if r.fifo1[i].HighWater > r.stats.MaxStage1FIFO {
					r.stats.MaxStage1FIFO = r.fifo1[i].HighWater
				}
			}
		}
		r.stats.Cycles++
		if r.pr != nil {
			r.pr.maybeSample(r)
		}
		if r.drainedExceptBanks() {
			break
		}
	}
	r.stats.PartitionCycles = r.stats.Cycles - start
	return nil
}

// drainedExceptBanks reports whether all in-flight tuples have settled into
// the combiner banks or memory — the condition to start the flush.
func (r *run) drainedExceptBanks() bool {
	if r.next < r.total || !r.pipe.Drained() || !r.final.Empty() {
		return false
	}
	for i, f := range r.fifo1 {
		if !f.Empty() || !r.comb[i].idle() {
			return false
		}
	}
	return true
}

// flushPass drains the partially filled lines left in the combiner BRAMs,
// padding them with dummy keys (Section 4.2). Each combiner scans its
// partition addresses sequentially, one per cycle; the write-back drains the
// results at up to one line per cycle under QPI back-pressure.
func (r *run) flushPass() error {
	if r.cfg.DisableWriteCombiner {
		return nil
	}
	start := r.stats.Cycles
	for {
		r.ep.Tick()
		if err := r.writeBack(); err != nil {
			return err
		}
		scansDone := true
		for _, cb := range r.comb {
			if !cb.flushStep(r.stats) {
				scansDone = false
			}
		}
		r.stats.Cycles++
		if r.pr != nil {
			r.pr.maybeSample(r)
		}
		if scansDone && r.final.Empty() && r.combOutsEmpty() {
			break
		}
	}
	r.stats.FlushCycles = r.stats.Cycles - start
	return nil
}

func (r *run) combOutsEmpty() bool {
	for _, cb := range r.comb {
		if !cb.out.Empty() {
			return false
		}
	}
	return true
}

// writeBack models the write-back module (Section 4.3): drain the final FIFO
// into memory under QPI write budget, and round-robin one line from the
// combiner output FIFOs into the final FIFO.
func (r *run) writeBack() error {
	if !r.final.Empty() {
		l := r.final.Front()
		if l.single {
			// No-write-combiner ablation: a read-modify-write per tuple.
			if r.ep.CanRead() && r.ep.CanWrite() {
				r.final.Pop()
				r.ep.Read()
				r.ep.Write()
				r.stats.LinesRead++
				if err := r.store(l); err != nil {
					return err
				}
			}
		} else if r.ep.CanWrite() {
			r.final.Pop()
			r.ep.Write()
			if err := r.store(l); err != nil {
				return err
			}
		}
	}
	if r.final.CanPush() {
		for i := 0; i < r.lanes; i++ {
			idx := (r.rr + i) % r.lanes
			if !r.comb[idx].out.Empty() {
				r.final.Push(r.comb[idx].out.Pop())
				r.rr = (idx + 1) % r.lanes
				break
			}
		}
	}
	return nil
}

// store commits one line (or one tuple, in the ablation) to the output
// buffer, updating the offset and count BRAMs and checking PAD overflow.
func (r *run) store(l outLine) error {
	p := int(l.part)
	if l.single {
		// Tuple-granular RMW: place the tuple at its exact slot.
		tupleIdx := r.counts[p]
		line := tupleIdx / int64(r.tpl)
		slot := int(tupleIdx % int64(r.tpl))
		if line >= r.capLines[p] {
			return r.overflow()
		}
		dst := (r.out.Base[p] + line) * 8
		copy(r.out.Lines[dst+int64(slot*r.wpt):dst+int64((slot+1)*r.wpt)], l.words[:r.wpt])
		if line >= r.used[p] {
			r.used[p] = line + 1
		}
		r.counts[p]++
		r.stats.TuplesOut++
		r.stats.LinesWritten++
		r.markWritten(dst * 8)
		return nil
	}
	if r.used[p] >= r.capLines[p] {
		return r.overflow()
	}
	dst := (r.out.Base[p] + r.used[p]) * 8
	copy(r.out.Lines[dst:dst+8], l.words[:])
	r.used[p]++
	r.counts[p] += int64(l.valid)
	r.stats.TuplesOut += int64(l.valid)
	r.stats.Dummies += int64(r.tpl) - int64(l.valid)
	r.stats.LinesWritten++
	r.markWritten(dst * 8)
	r.translate(r.outOff + dst*8)
	return nil
}

func (r *run) overflow() error {
	r.stats.Overflowed = true
	r.stats.OverflowAtTuple = r.stats.TuplesIn
	return ErrPartitionOverflow
}

// markWritten records the FPGA as last writer of the output line, the snoop
// filter state that later penalizes the CPU's build+probe (Section 2.2).
func (r *run) markWritten(byteOff int64) {
	if r.region == nil {
		return
	}
	_ = r.region.MarkWritten(platform.FPGASocket, r.outOff+byteOff, 64)
}

func (r *run) finishStats() {
	r.stats.Elapsed = time.Duration(float64(r.stats.Cycles) / r.clock * float64(time.Second))
}

// Region exposes the run's shared-memory region for coherence inspection in
// integration tests (which verify the output lines are FPGA-owned).
func (r *run) Region() *memsys.Region { return r.region }
