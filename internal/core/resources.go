package core

import "math"

// ResourceUsage estimates the FPGA resource consumption of a partitioner
// configuration on the paper's device, reproducing Table 2. A synthesis
// report cannot be regenerated without the vendor toolchain, so the
// estimator reconstructs the usage from the circuit structure the paper
// explains (Section 4.4): the write combiner's bank BRAMs dominate and
// shrink quadratically with fewer lanes; DSP usage is driven by the hash
// multipliers, which grow when 8-byte keys replace 4-byte keys at 16 B
// tuples and shrink with lane count after that; logic outside the combiners
// (QPI end-point, write-back, control) is roughly constant.
type ResourceUsage struct {
	TupleWidth int

	ALMs      int // adaptive logic modules used
	M20Ks     int // 20 Kb BRAM blocks used
	DSPBlocks int

	LogicPct float64
	BRAMPct  float64
	DSPPct   float64
}

// Stratix V 5SGXEA capacities (the paper's device).
const (
	deviceALMs  = 234720
	deviceM20Ks = 2560
	deviceDSPs  = 256

	m20kBytes = 2560 // 20 Kb data per block
)

// EstimateResources returns the estimated usage for the given configuration.
// The structural constants are calibrated so that the paper's default
// configuration (8192 partitions) reproduces Table 2 within ~2 percentage
// points; see resources_test.go for the comparison.
func EstimateResources(cfg Config) ResourceUsage {
	cfg = cfg.WithDefaults()
	lanes := cfg.Lanes()
	p := cfg.NumPartitions
	w := cfg.OutputTupleWidth()

	// BRAM: each of the lanes combiners has lanes banks, each holding one
	// W-byte tuple per partition, plus fill-rate BRAMs, FIFOs, the page
	// table, histogram and offset BRAMs, and the QPI end-point cache.
	bankBytes := lanes * lanes * p * w
	fillBytes := lanes * p // one byte of fill rate per partition per combiner
	fixedBlocks := 120     // QPI end-point cache, page table, write-back BRAMs
	perLaneBlocks := 22    // stage FIFOs and control per lane
	m20ks := ceilDiv(bankBytes+fillBytes, m20kBytes) + fixedBlocks + perLaneBlocks*lanes

	// DSP: the murmur pipeline multiplies twice per key. A 4-byte key
	// multiply fits 2 DSP blocks; an 8-byte key multiply needs 6 (partial
	// products). Tuples of 16 B and wider carry 8-byte keys (Section 4.4);
	// the write-back address arithmetic adds a constant 4 blocks.
	dspPerLane := 4 // 2 multiplies × 2 blocks for 4-byte keys
	if cfg.TupleWidth >= 16 {
		dspPerLane = 12 // 2 multiplies × 6 blocks for 8-byte keys
	}
	dsps := lanes*dspPerLane + 4

	// Logic: a fixed base for QPI end-point, page table and write-back,
	// plus per-bank-port combiner control (hazard logic, muxing), which
	// scales with lanes².
	alms := 60000 + 420*lanes*lanes

	return ResourceUsage{
		TupleWidth: cfg.TupleWidth,
		ALMs:       alms,
		M20Ks:      m20ks,
		DSPBlocks:  dsps,
		LogicPct:   pct(alms, deviceALMs),
		BRAMPct:    pct(m20ks, deviceM20Ks),
		DSPPct:     pct(dsps, deviceDSPs),
	}
}

// Fits reports whether the configuration fits on the device.
func (r ResourceUsage) Fits() bool {
	return r.ALMs <= deviceALMs && r.M20Ks <= deviceM20Ks && r.DSPBlocks <= deviceDSPs
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func pct(used, total int) float64 {
	return math.Round(float64(used)/float64(total)*1000) / 10
}
