package core

import "time"

// Stats reports what happened during a simulated partitioning run.
type Stats struct {
	// Cycles is the total number of FPGA clock cycles the run took,
	// including histogram pass, prefix sum, partitioning pass and flush.
	Cycles int64
	// Elapsed is Cycles converted to wall time at the configured clock.
	Elapsed time.Duration

	// Phase breakdown.
	HistogramCycles int64
	PrefixSumCycles int64
	PartitionCycles int64
	FlushCycles     int64

	// QPI traffic.
	LinesRead    int64
	LinesWritten int64

	// Tuples.
	TuplesIn  int64
	TuplesOut int64 // valid tuples written (equals TuplesIn on success)
	Dummies   int64 // padding tuples written by the flush

	// StallsBackpressure counts cycles in which the input stage could not
	// issue a read because of QPI back-pressure (full FIFOs downstream or no
	// read budget). This is the expected, bandwidth-bound stall.
	StallsBackpressure int64
	// StallsHazard counts cycles lost to fill-rate BRAM read hazards. With
	// the forwarding registers of Code 4 this is always zero — the paper's
	// central claim — and the simulator asserts so unless forwarding is
	// disabled for ablation.
	StallsHazard int64
	// ForwardedHazards counts tuples whose fill rate was supplied by a
	// forwarding register rather than the BRAM read (the cases that would
	// have stalled without forwarding).
	ForwardedHazards int64

	// PageTranslations counts FPGA-side virtual-to-physical translations.
	PageTranslations int64

	// HashPipelineBubbles counts partition-pass cycles in which the input
	// stage fed no lane group into the hash pipelines — a bubble traveling
	// down the five stages. Bubbles come from QPI read back-pressure, the
	// FIFO back-pressure rule of Section 4.3, or the end-of-input drain.
	HashPipelineBubbles int64

	// CombinerBRAMReads/Writes count the write combiners' aggregate BRAM
	// port traffic: fill-rate BRAM reads (skipped when a forwarding
	// register supplies the value) and bank reads during line assembly, vs
	// fill-rate updates and bank writes per accepted tuple. Together with
	// Cycles they give the per-port utilization of Section 4.2's BRAMs.
	CombinerBRAMReads  int64
	CombinerBRAMWrites int64

	// MaxStage1FIFO is the high-water occupancy across lane FIFOs.
	MaxStage1FIFO int

	// Overflowed is set when a PAD run aborted on partition overflow; the
	// run's error is ErrPartitionOverflow and the output is invalid.
	Overflowed bool
	// OverflowAtTuple records how many tuples had entered the circuit when
	// the overflow was detected ("the detection time ... is random and
	// depends on the arrival order", Section 5.4).
	OverflowAtTuple int64
}

// ThroughputTuplesPerSec returns end-to-end tuples/s at the simulated clock.
func (s Stats) ThroughputTuplesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.TuplesIn) / s.Elapsed.Seconds()
}

// DataProcessedGBps returns the total QPI traffic rate in GB/s, the "Total
// Data Processed" series of Figure 8.
func (s Stats) DataProcessedGBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.LinesRead+s.LinesWritten) * 64 / s.Elapsed.Seconds() / 1e9
}
