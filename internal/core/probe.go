package core

import "fpgapart/internal/simtrace"

// Component names on the trace timeline.
const (
	traceCompCircuit = "circuit"
	traceCompQPI     = "qpi"
)

// probe connects one run to a simtrace.Session. It is nil on untraced runs,
// so the hot loops pay a single nil check per cycle; when present, every
// counter and the tracer ring are preallocated, keeping the per-cycle path
// allocation-free.
//
// Cycle stamps are offset by the session's accumulated cycle total, so
// successive runs on the same circuit (R then S of a join, or repeated
// benchmark iterations) appear back to back on one timeline instead of
// overlapping at cycle zero.
type probe struct {
	sess   *simtrace.Session
	tr     *simtrace.Tracer
	window int64
	base   int64 // timeline offset: session cycles before this run

	cycles           *simtrace.Counter
	tuplesIn         *simtrace.Counter
	tuplesOut        *simtrace.Counter
	dummies          *simtrace.Counter
	stallsBackpress  *simtrace.Counter
	stallsHazard     *simtrace.Counter
	forwardedHazards *simtrace.Counter
	bubbles          *simtrace.Counter
	translations     *simtrace.Counter
	bramReads        *simtrace.Counter
	bramWrites       *simtrace.Counter

	fifo1Occ    *simtrace.Gauge
	finalOcc    *simtrace.Gauge
	combOutOcc  *simtrace.Gauge
	fifo1High   *simtrace.Gauge
	qpiBytesCyc *simtrace.Gauge // ×100, avoids floats in the registry
	bramUtil    *simtrace.Gauge // ×100

	// partSizes buckets the per-partition valid tuple counts (log2) at the
	// end of each run — the skew profile the perf gate diffs across PRs.
	partSizes *simtrace.Histogram
}

// newProbe resolves the session's metrics and instruments the run's FIFOs
// and QPI end-point. Call after setup has built the datapath.
func newProbe(sess *simtrace.Session, r *run) *probe {
	m := sess.Metrics
	p := &probe{
		sess:   sess,
		tr:     sess.Tracer,
		window: sess.Window(),

		cycles:           m.Counter("circuit.cycles"),
		tuplesIn:         m.Counter("circuit.tuples_in"),
		tuplesOut:        m.Counter("circuit.tuples_out"),
		dummies:          m.Counter("circuit.dummies"),
		stallsBackpress:  m.Counter("circuit.stalls.backpressure"),
		stallsHazard:     m.Counter("circuit.stalls.hazard"),
		forwardedHazards: m.Counter("circuit.hazards.forwarded"),
		bubbles:          m.Counter("circuit.hash.bubbles"),
		translations:     m.Counter("circuit.page_translations"),
		bramReads:        m.Counter("combiner.bram.reads"),
		bramWrites:       m.Counter("combiner.bram.writes"),

		fifo1Occ:    m.Gauge("fifo.stage1.occupancy"),
		finalOcc:    m.Gauge("fifo.final.occupancy"),
		combOutOcc:  m.Gauge("fifo.combiner_out.occupancy"),
		fifo1High:   m.Gauge("fifo.stage1.high_water"),
		qpiBytesCyc: m.Gauge("qpi.bytes_per_cycle_x100"),
		bramUtil:    m.Gauge("combiner.bram.port_util_x100"),

		partSizes: m.Histogram("partition.size_tuples"),
	}
	p.base = p.cycles.Value()

	for _, f := range r.fifo1 {
		f.Instrument(p.fifo1Occ)
	}
	r.final.Instrument(p.finalOcc)
	for _, cb := range r.comb {
		cb.out.Instrument(p.combOutOcc)
	}
	r.ep.Instrument(m.Counter("qpi.lines_read"), m.Counter("qpi.lines_written"))
	return p
}

// maybeSample emits the windowed counter samples when the run crosses a
// window boundary. Called once per cycle from the pass loops (only on
// traced runs).
func (p *probe) maybeSample(r *run) {
	if r.stats.Cycles%p.window != 0 {
		return
	}
	ts := p.base + r.stats.Cycles
	p.tr.Sample(traceCompCircuit, "tuples_in", ts, r.stats.TuplesIn)
	p.tr.Sample(traceCompCircuit, "tuples_out", ts, r.stats.TuplesOut)
	p.tr.Sample(traceCompCircuit, "dummies", ts, r.stats.Dummies)
	p.tr.Sample(traceCompQPI, "lines_read", ts, r.stats.LinesRead)
	p.tr.Sample(traceCompQPI, "lines_written", ts, r.stats.LinesWritten)
	var occ int64
	for _, f := range r.fifo1 {
		occ += int64(f.Len())
	}
	p.tr.Sample(traceCompCircuit, "fifo1_occupancy", ts, occ)
}

// finish folds the run's Stats into the session counters, emits the phase
// spans (reconstructed from the fixed pass order), and computes the derived
// utilization gauges. Called exactly once per run, after finishStats.
func (p *probe) finish(r *run) {
	st := r.stats

	// Phase spans: HIST runs histogram → prefix sum → partition → flush;
	// PAD skips the first two. The partition pass duration is derived by
	// subtraction so an overflow-aborted pass (which never set
	// PartitionCycles) still gets a span.
	at := p.base
	if st.HistogramCycles > 0 {
		p.tr.Span(traceCompCircuit, "histogram_pass", at, st.HistogramCycles)
		at += st.HistogramCycles
	}
	if st.PrefixSumCycles > 0 {
		p.tr.Span(traceCompCircuit, "prefix_sum", at, st.PrefixSumCycles)
		at += st.PrefixSumCycles
	}
	partCycles := st.Cycles - st.HistogramCycles - st.PrefixSumCycles - st.FlushCycles
	if partCycles > 0 {
		p.tr.Span(traceCompCircuit, "partition_pass", at, partCycles)
		at += partCycles
	}
	if st.FlushCycles > 0 {
		p.tr.Span(traceCompCircuit, "flush", at, st.FlushCycles)
	}
	if st.Overflowed {
		p.tr.Instant(traceCompCircuit, "pad_overflow", p.base+st.Cycles)
	}

	p.cycles.Add(st.Cycles)
	p.tuplesIn.Add(st.TuplesIn)
	p.tuplesOut.Add(st.TuplesOut)
	p.dummies.Add(st.Dummies)
	p.stallsBackpress.Add(st.StallsBackpressure)
	p.stallsHazard.Add(st.StallsHazard)
	p.forwardedHazards.Add(st.ForwardedHazards)
	p.bubbles.Add(st.HashPipelineBubbles)
	p.translations.Add(st.PageTranslations)
	p.bramReads.Add(st.CombinerBRAMReads)
	p.bramWrites.Add(st.CombinerBRAMWrites)

	// Bucket the per-partition output sizes (skipped for overflow-aborted
	// runs, whose counts are partial and whose abort point is already
	// reported via Stats.OverflowAtTuple).
	if !st.Overflowed {
		for _, n := range r.counts {
			p.partSizes.Observe(n)
		}
	}

	p.fifo1High.Observe(int64(st.MaxStage1FIFO))
	if st.Cycles > 0 {
		p.qpiBytesCyc.Observe((st.LinesRead + st.LinesWritten) * 64 * 100 / st.Cycles)
		// Each of the lanes combiners has one read and one write port.
		ports := int64(r.lanes) * st.Cycles
		p.bramUtil.Observe((st.CombinerBRAMReads + st.CombinerBRAMWrites) * 100 / (2 * ports))
	}
}
