package core

// hashStages are the five operations of the murmur finalizer pipeline
// (Code 3 of the paper), one per register stage. In the VHDL each line is a
// clocked assignment `stage_k <= op(stage_{k-1})`, so stage k holds the
// value after the first k+1 operations.
var hashStages = [hashPipelineDepth]func(uint32) uint32{
	func(k uint32) uint32 { return k ^ k>>16 },
	func(k uint32) uint32 { return k * 0x85ebca6b },
	func(k uint32) uint32 { return k ^ k>>13 },
	func(k uint32) uint32 { return k * 0xc2b2ae35 },
	func(k uint32) uint32 { return k ^ k>>16 },
}

// HashPipeline is a literal, cycle-stepped model of the five-stage murmur
// hash module: a key inserted on cycle t emerges fully hashed on cycle t+5,
// with one result per cycle at full throughput.
//
// The partitioner circuit itself ([ring].pipe) models the module as an
// opaque fpga.Reg of the same depth and applies the software finalizer at
// the tail; HashPipeline exists to prove the staged decomposition computes
// the identical function (see the hashutil fuzz test), so the latency model
// and the arithmetic can be trusted independently.
type HashPipeline struct {
	vals  [hashPipelineDepth]uint32
	valid [hashPipelineDepth]bool
	cycle int64
}

// NewHashPipeline returns an empty five-stage hash pipeline.
func NewHashPipeline() *HashPipeline {
	return &HashPipeline{}
}

// Depth is the pipeline latency in cycles.
func (p *HashPipeline) Depth() int { return hashPipelineDepth }

// Cycle advances the clock one edge: the value leaving the last stage — the
// finished hash — is clocked out, every stage applies its operation to its
// predecessor's register, and the new key (if inValid) enters stage 0.
func (p *HashPipeline) Cycle(in uint32, inValid bool) (out uint32, outValid bool) {
	p.cycle++

	last := hashPipelineDepth - 1
	out, outValid = p.vals[last], p.valid[last]
	for s := last; s > 0; s-- {
		p.vals[s], p.valid[s] = hashStages[s](p.vals[s-1]), p.valid[s-1]
	}
	p.vals[0], p.valid[0] = hashStages[0](in), inValid
	return out, outValid
}

// Drained reports whether any keys are still in flight.
func (p *HashPipeline) Drained() bool {
	for _, v := range p.valid {
		if v {
			return false
		}
	}
	return true
}

// Cycles returns how many clock edges the pipeline has seen.
func (p *HashPipeline) Cycles() int64 { return p.cycle }

// HashAll streams the keys through the pipeline back-to-back and returns
// their hashes in order, draining the pipeline at the end. It is the
// convenience wrapper the parity tests use; latency-sensitive callers drive
// Cycle directly.
func (p *HashPipeline) HashAll(keys []uint32) []uint32 {
	hashes := make([]uint32, 0, len(keys))
	for _, k := range keys {
		if h, ok := p.Cycle(k, true); ok {
			hashes = append(hashes, h)
		}
	}
	for !p.Drained() {
		if h, ok := p.Cycle(0, false); ok {
			hashes = append(hashes, h)
		}
	}
	return hashes
}
