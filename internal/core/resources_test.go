package core

import (
	"math"
	"testing"
)

// TestTable2Reproduction compares the structural resource estimate with the
// paper's synthesis report (Table 2) for the default 8192-partition
// configuration.
func TestTable2Reproduction(t *testing.T) {
	want := []struct {
		width              int
		logic, bram, dsp   float64
		tolLogic, tolOther float64
	}{
		{8, 37, 76, 14, 3, 3},
		{16, 28, 42, 21, 3, 3},
		{32, 27, 24, 11, 3, 3},
		{64, 27, 15, 6, 3, 3},
	}
	for _, w := range want {
		cfg := Config{NumPartitions: 8192, TupleWidth: w.width, Format: PAD, Layout: RID}
		got := EstimateResources(cfg)
		if math.Abs(got.LogicPct-w.logic) > w.tolLogic {
			t.Errorf("width %d: logic %.1f%%, paper %v%%", w.width, got.LogicPct, w.logic)
		}
		if math.Abs(got.BRAMPct-w.bram) > w.tolOther {
			t.Errorf("width %d: BRAM %.1f%%, paper %v%%", w.width, got.BRAMPct, w.bram)
		}
		if math.Abs(got.DSPPct-w.dsp) > w.tolOther {
			t.Errorf("width %d: DSP %.1f%%, paper %v%%", w.width, got.DSPPct, w.dsp)
		}
		if !got.Fits() {
			t.Errorf("width %d does not fit the device: %+v", w.width, got)
		}
	}
}

// TestResourceTrends checks the qualitative claims of Section 4.4: resources
// drop with wider tuples except the DSP bump at 16 B (8-byte keys need more
// multipliers), after which DSP usage falls again.
func TestResourceTrends(t *testing.T) {
	var usage []ResourceUsage
	for _, w := range []int{8, 16, 32, 64} {
		usage = append(usage, EstimateResources(Config{NumPartitions: 8192, TupleWidth: w}))
	}
	for i := 1; i < len(usage); i++ {
		if usage[i].BRAMPct >= usage[i-1].BRAMPct {
			t.Errorf("BRAM should shrink with width: %v", usage)
		}
		if usage[i].LogicPct > usage[i-1].LogicPct {
			t.Errorf("logic should not grow with width: %v", usage)
		}
	}
	if usage[1].DSPPct <= usage[0].DSPPct {
		t.Error("DSP usage should bump at 16 B (8-byte keys)")
	}
	if usage[3].DSPPct >= usage[1].DSPPct {
		t.Error("DSP usage should fall again for 64 B tuples")
	}
}

// TestResourcesScaleWithPartitions: doubling the fan-out doubles the bank
// BRAM requirement; a huge fan-out must stop fitting the device.
func TestResourcesScaleWithPartitions(t *testing.T) {
	small := EstimateResources(Config{NumPartitions: 1024, TupleWidth: 8})
	big := EstimateResources(Config{NumPartitions: 8192, TupleWidth: 8})
	if big.M20Ks <= small.M20Ks {
		t.Error("more partitions must use more BRAM")
	}
	huge := EstimateResources(Config{NumPartitions: 1 << 17, TupleWidth: 8})
	if huge.Fits() {
		t.Errorf("2^17 partitions at 8 B should not fit a Stratix V: %+v", huge)
	}
}
