package core

// Output is the partitioned relation the circuit writes back to shared
// memory: a contiguous array of 64-byte cache lines, with each partition
// occupying a line-aligned region. Partially filled lines (produced by the
// flush, Section 4.2) carry dummy keys in their unused slots; consumers skip
// tuples with the dummy key, exactly as the paper's software does.
type Output struct {
	NumPartitions int
	// TupleWidth is the output tuple width in bytes (8 in VRID mode).
	TupleWidth int
	DummyKey   uint32

	// Lines is the output buffer: 8 words per 64-byte cache line.
	Lines []uint64
	// Base[p] is the first cache line of partition p.
	Base []int64
	// LinesUsed[p] is how many lines of partition p's region were written.
	LinesUsed []int64
	// Counts[p] is the number of valid (non-dummy) tuples in partition p.
	// In HIST mode this is the histogram; in PAD mode the circuit's offset
	// counters provide it.
	Counts []int64
}

// wordsPerTuple returns the output tuple size in 64-bit words.
func (o *Output) wordsPerTuple() int { return o.TupleWidth / 8 }

// TuplesPerLine returns how many output tuples one cache line holds.
func (o *Output) TuplesPerLine() int { return 64 / o.TupleWidth }

// TotalTuples returns the number of valid tuples across all partitions.
func (o *Output) TotalTuples() int64 {
	var n int64
	for _, c := range o.Counts {
		n += c
	}
	return n
}

// TotalLinesUsed returns the number of cache lines actually written.
func (o *Output) TotalLinesUsed() int64 {
	var n int64
	for _, u := range o.LinesUsed {
		n += u
	}
	return n
}

// Dummies returns how many dummy tuples pad the written lines.
func (o *Output) Dummies() int64 {
	return o.TotalLinesUsed()*int64(o.TuplesPerLine()) - o.TotalTuples()
}

// Partition iterates the valid tuples of partition p in write order, calling
// fn with each tuple's key, 4-byte payload (the VRID in VRID mode) and the
// tuple's words. Dummy-key tuples are skipped. fn must not retain words.
func (o *Output) Partition(p int, fn func(key, payload uint32, words []uint64)) {
	wpt := o.wordsPerTuple()
	tpl := o.TuplesPerLine()
	start := o.Base[p] * 8
	for l := int64(0); l < o.LinesUsed[p]; l++ {
		line := o.Lines[start+l*8 : start+l*8+8]
		for t := 0; t < tpl; t++ {
			words := line[t*wpt : (t+1)*wpt]
			key := uint32(words[0])
			if key == o.DummyKey {
				continue
			}
			fn(key, uint32(words[0]>>32), words)
		}
	}
}

// PartitionPairs returns partition p's valid tuples as (key, payload) pairs.
// Convenience for the join and for tests.
func (o *Output) PartitionPairs(p int) (keys, payloads []uint32) {
	keys = make([]uint32, 0, o.Counts[p])
	payloads = make([]uint32, 0, o.Counts[p])
	o.Partition(p, func(k, pay uint32, _ []uint64) {
		keys = append(keys, k)
		payloads = append(payloads, pay)
	})
	return keys, payloads
}

// OutputBytes returns the size of the allocated output region in bytes (the
// intermediate memory cost PAD mode inflates and HIST mode minimizes).
func (o *Output) OutputBytes() int64 {
	return int64(len(o.Lines)) * 8
}
