package core

import "fpgapart/internal/fpga"

// combiner is one write combiner module (Section 4.2, Figure 6): it gathers
// tuples of the same partition into banks of BRAM until a full 64-byte cache
// line is assembled, then emits the line into its output FIFO.
//
// The fill-rate BRAM has a 2-cycle read latency; Code 4's forwarding
// registers supply the in-flight fill rate whenever the current tuple hits
// the same partition as either of the previous two, which is exactly when
// the BRAM's reply would be stale. With forwarding the module accepts one
// tuple per cycle for any input pattern; the DisableForwarding ablation
// models the stall the hardware would otherwise need.
type combiner struct {
	banks int // tuple slots per cache line
	wpt   int // words per tuple
	parts int
	dummy uint32

	// store is the bank BRAM contents: bank b, partition p at
	// (b*parts+p)*wpt. fill is the fill-rate BRAM.
	store []uint64
	fill  []uint8

	out *fpga.FIFO[outLine]

	// Forwarding registers: the partitions of the previous two accepted
	// tuples (hash_1d, hash_2d of Code 4).
	last      [2]uint32
	lastValid [2]bool

	// Hazard stall state for the DisableForwarding ablation.
	stall  int
	served bool

	// Flush scan cursor.
	flushAddr int
}

func newCombiner(cfg Config, banks, wpt int, dummy uint32) *combiner {
	return &combiner{
		banks: banks,
		wpt:   wpt,
		parts: cfg.NumPartitions,
		dummy: dummy,
		store: make([]uint64, banks*cfg.NumPartitions*wpt),
		fill:  make([]uint8, cfg.NumPartitions),
		out:   fpga.NewFIFO[outLine](cfg.OutFIFODepth),
	}
}

// step advances the combiner one clock cycle, consuming at most one tuple
// from its input FIFO.
//
//fpgavet:hotpath
func (cb *combiner) step(in *fpga.FIFO[tup], st *Stats, cfg Config) {
	if cb.stall > 0 {
		cb.stall--
		st.StallsHazard++
		cb.shiftHazard(0, false)
		return
	}
	if in.Empty() {
		cb.shiftHazard(0, false)
		return
	}
	if !cb.out.CanPush() {
		// Back-pressure from the write-back module; not a hazard stall.
		cb.shiftHazard(0, false)
		return
	}
	t := in.Front()
	h := t.part
	// The strawman datapath has no fill-rate BRAM, hence no read hazard.
	hazard := !cfg.DisableWriteCombiner &&
		((cb.lastValid[0] && h == cb.last[0]) || (cb.lastValid[1] && h == cb.last[1]))
	if hazard && cfg.DisableForwarding && !cb.served {
		// Without forwarding the issued BRAM read must be discarded and
		// reissued after the in-flight update lands: 2 dead cycles.
		cb.stall = 2
		cb.served = true
		cb.shiftHazard(0, false)
		return
	}
	if hazard {
		// The fill rate comes from a forwarding register; the issued BRAM
		// read is discarded, so it does not occupy the read port.
		st.ForwardedHazards++
	} else if !cfg.DisableWriteCombiner {
		st.CombinerBRAMReads++ // fill-rate BRAM read
	}
	cb.served = false
	in.Pop()

	if cfg.DisableWriteCombiner {
		// Strawman datapath: no gathering; each tuple goes out on its own
		// and the write-back performs a read-modify-write of its line.
		var l outLine
		copy(l.words[:cb.wpt], t.words[:cb.wpt])
		l.part = h
		l.valid = 1
		l.single = true
		cb.out.Push(l)
		cb.shiftHazard(h, true)
		return
	}

	f := int(cb.fill[h])
	copy(cb.store[(f*cb.parts+int(h))*cb.wpt:], t.words[:cb.wpt])
	st.CombinerBRAMWrites += 2 // bank write + fill-rate update
	if f == cb.banks-1 {
		cb.fill[h] = 0
		st.CombinerBRAMReads += int64(cb.banks) // bank reads for line assembly
		cb.out.Push(cb.assemble(h, cb.banks))
	} else {
		cb.fill[h] = uint8(f + 1)
	}
	cb.shiftHazard(h, true)
}

// shiftHazard advances the 1d/2d delay registers; bubbles (no accepted
// tuple) clear the corresponding slot, as the in-flight update has reached
// the BRAM by then.
func (cb *combiner) shiftHazard(h uint32, valid bool) {
	cb.last[1], cb.lastValid[1] = cb.last[0], cb.lastValid[0]
	cb.last[0], cb.lastValid[0] = h, valid
}

// assemble builds a cache line for partition h from the first n bank slots;
// remaining slots are filled with dummy-key tuples.
func (cb *combiner) assemble(h uint32, n int) outLine {
	var l outLine
	for b := 0; b < cb.banks; b++ {
		dst := l.words[b*cb.wpt : (b+1)*cb.wpt]
		if b < n {
			copy(dst, cb.store[(b*cb.parts+int(h))*cb.wpt:(b*cb.parts+int(h))*cb.wpt+cb.wpt])
		} else {
			for w := range dst {
				dst[w] = uint64(cb.dummy) | uint64(cb.dummy)<<32
			}
		}
	}
	l.part = h
	l.valid = uint8(n)
	return l
}

// idle reports whether the combiner has no work in flight (its banks may
// still hold partial lines for the flush).
func (cb *combiner) idle() bool {
	return cb.stall == 0 && cb.out.Empty()
}

// flushStep advances the end-of-run flush by one cycle: it inspects one
// partition address per cycle, emitting a padded partial line if the
// address holds leftover tuples. It reports whether the scan has finished.
//
//fpgavet:hotpath
func (cb *combiner) flushStep(st *Stats) bool {
	if cb.flushAddr >= cb.parts {
		return true
	}
	f := int(cb.fill[cb.flushAddr])
	st.CombinerBRAMReads++ // fill-rate scan read
	if f == 0 {
		cb.flushAddr++
		return cb.flushAddr >= cb.parts
	}
	if !cb.out.CanPush() {
		st.CombinerBRAMReads-- // stalled: the scan re-reads next cycle
		return false           // wait for the write-back to drain
	}
	cb.fill[cb.flushAddr] = 0
	st.CombinerBRAMWrites++          // fill-rate reset
	st.CombinerBRAMReads += int64(f) // bank reads for the partial line
	cb.out.Push(cb.assemble(uint32(cb.flushAddr), f))
	cb.flushAddr++
	return cb.flushAddr >= cb.parts
}
