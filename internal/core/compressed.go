package core

import (
	"fmt"

	"fpgapart/codec"
	"fpgapart/internal/hashutil"
	"fpgapart/internal/qpi"
)

// PartitionCompressed runs the circuit over an RLE-compressed key column in
// VRID mode: a decompressor stage in front of the hash pipelines expands
// runs at up to one lane group per cycle, so the QPI read channel only
// carries the compressed bytes (Section 6: "decompression ... for free on
// the FPGA as the first step of a processing pipeline"). Output tuples are
// <key, VRID> exactly as in plain VRID mode.
//
// On the bandwidth-starved link this converts the compression ratio into
// partitioning throughput; incompressible columns (ratio < 1: RLE stores
// 8 bytes per single-value run) cost proportionally more reads instead.
func (c *Circuit) PartitionCompressed(col *codec.RLEColumn) (*Output, *Stats, error) {
	if c.cfg.Layout != VRID {
		return nil, nil, fmt.Errorf("core: compressed input requires VRID mode, circuit is %v", c.cfg.Layout)
	}
	if err := col.Validate(); err != nil {
		return nil, nil, err
	}
	ep, err := qpi.New(c.clockHz, c.curve)
	if err != nil {
		return nil, nil, err
	}
	r := &run{
		cfg:   c.cfg,
		ep:    ep,
		clock: c.clockHz,
		stats: &Stats{},
		comp:  newRLEFeed(col),
	}
	if err := r.setup(); err != nil {
		return nil, nil, err
	}
	err = r.execute()
	r.finishStats()
	if r.pr != nil {
		r.pr.finish(r)
	}
	if err != nil {
		return nil, r.stats, err
	}
	return r.out, r.stats, nil
}

// nextCompressedGroup is nextGroup's decompressor path: fetch whatever
// compressed lines the next lane group needs (possibly over several cycles
// under read back-pressure), then expand up to one group of keys per cycle.
func (r *run) nextCompressedGroup() (group, bool) {
	if r.compPending < 0 {
		r.compPending = r.comp.pendingLines(r.lanes)
	}
	for r.compPending > 0 && r.ep.CanRead() {
		r.ep.Read()
		r.stats.LinesRead++
		r.compPending--
	}
	if r.compPending > 0 {
		r.stats.StallsBackpressure++
		return group{}, false
	}
	var keys [8]uint32
	n := r.comp.emit(r.lanes, keys[:])
	if n == 0 {
		return group{}, false
	}
	var g group
	for i := 0; i < n; i++ {
		idx := r.next + int64(i)
		var t tup
		t.words[0] = uint64(idx)<<32 | uint64(keys[i]) // <key, VRID>
		t.part = hashutil.PartitionIndex32(keys[i], r.radix, r.cfg.Hash)
		g.t[i] = t
	}
	g.n = n
	r.next += int64(n)
	r.stats.TuplesIn += int64(n)
	r.compPending = -1
	return g, true
}

// rleFeed is the decompressor model: it tracks which compressed cache line
// each run resides in and charges QPI reads only when the key stream
// crosses into a new compressed line.
type rleFeed struct {
	col *codec.RLEColumn
	n   int64

	// Cursor state.
	run       int   // current run index
	usedInRun int64 // values already emitted from the current run
	lastLine  int64 // last compressed line charged (-1 before the first)
}

func newRLEFeed(col *codec.RLEColumn) *rleFeed {
	return &rleFeed{col: col, n: int64(col.N), lastLine: -1}
}

// lineOfRun returns the compressed cache line holding run i (runs are
// fixed-width, so this is pure arithmetic, as the hardware's sequential
// reader would see it).
func (f *rleFeed) lineOfRun(i int) int64 {
	return int64(i) * codec.RunBytes / 64
}

// pendingLines returns how many new compressed lines must be fetched before
// the next group of up to `lanes` keys can be emitted.
func (f *rleFeed) pendingLines(lanes int) int64 {
	if f.run >= len(f.col.Runs) {
		return 0
	}
	// The group may span multiple runs; find the run holding its last key.
	remaining := int64(lanes)
	run, used := f.run, f.usedInRun
	last := run
	for remaining > 0 && run < len(f.col.Runs) {
		avail := int64(f.col.Runs[run].Length) - used
		if avail > remaining {
			avail = remaining
		}
		remaining -= avail
		used += avail
		last = run
		if used == int64(f.col.Runs[run].Length) {
			run++
			used = 0
		}
	}
	endLine := f.lineOfRun(last)
	if endLine <= f.lastLine {
		return 0
	}
	if f.lastLine < 0 {
		return endLine + 1
	}
	return endLine - f.lastLine
}

// emit produces up to lanes keys, advancing the cursor, and records the
// compressed lines covered by the emitted keys as fetched (matching what
// pendingLines charged for this group).
func (f *rleFeed) emit(lanes int, out []uint32) int {
	n := 0
	lastRun := -1
	for n < lanes && f.run < len(f.col.Runs) {
		r := f.col.Runs[f.run]
		out[n] = r.Value
		lastRun = f.run
		n++
		f.usedInRun++
		if f.usedInRun == int64(r.Length) {
			f.run++
			f.usedInRun = 0
		}
	}
	if lastRun >= 0 {
		if l := f.lineOfRun(lastRun); l > f.lastLine {
			f.lastLine = l
		}
	}
	return n
}
