package core

import (
	"testing"

	"fpgapart/internal/simtrace"
	"fpgapart/platform"
	"fpgapart/workload"
)

// circuitSamples extracts the cumulative values of one circuit counter
// series from the trace, in emission order.
func circuitSamples(tr *simtrace.Tracer, name string) []int64 {
	var out []int64
	for _, e := range tr.Events() {
		if e.Kind == simtrace.SampleEvent && e.Comp == "circuit" && e.Name == name {
			out = append(out, e.Value)
		}
	}
	return out
}

// TestTraceCycleInvariants checks the circuit's conservation laws through
// the trace itself: within every sample window the cumulative tuples-out
// never exceeds tuples-in (tuples only leave after they entered), both
// series are monotone, the final accounting balances (every input tuple
// comes out, and the written lines hold exactly the outputs plus the flush
// dummies), and — on the raw 25.6 GB/s wrapper, where the link is not the
// bottleneck — the no-skew workload sustains the paper's one line per cycle
// through the datapath in at least one steady-state window.
func TestTraceCycleInvariants(t *testing.T) {
	const (
		n      = 100000
		window = 64
	)
	rel := genRelation(t, workload.Random, 8, n, 53)
	sess := simtrace.NewSession()
	sess.SampleWindow = window

	plat := platform.RawFPGA()
	cfg := Config{
		NumPartitions: 64, TupleWidth: 8, Hash: true,
		Format: PAD, Layout: RID, PadFraction: 0.5,
		Trace: sess,
	}
	c, err := NewCircuit(cfg, plat.FPGAClockHz, plat.FPGAAlone)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := c.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}

	in := circuitSamples(sess.Tracer, "tuples_in")
	outS := circuitSamples(sess.Tracer, "tuples_out")
	if len(in) == 0 || len(in) != len(outS) {
		t.Fatalf("got %d tuples_in and %d tuples_out samples", len(in), len(outS))
	}

	// Per-window conservation and monotonicity.
	for i := range in {
		if outS[i] > in[i] {
			t.Fatalf("window %d: tuples_out %d exceeds tuples_in %d", i, outS[i], in[i])
		}
		if i > 0 && (in[i] < in[i-1] || outS[i] < outS[i-1]) {
			t.Fatalf("window %d: counter series not monotone (in %d→%d, out %d→%d)",
				i, in[i-1], in[i], outS[i-1], outS[i])
		}
	}

	// Final accounting: everything in came out, and the written lines carry
	// exactly the outputs plus the PAD flush dummies.
	if stats.TuplesIn != int64(n) || stats.TuplesOut != int64(n) {
		t.Errorf("tuples in/out = %d/%d, want %d/%d", stats.TuplesIn, stats.TuplesOut, n, n)
	}
	tpl := int64(out.TuplesPerLine())
	if got := stats.LinesWritten * tpl; got != stats.TuplesOut+stats.Dummies {
		t.Errorf("written slots %d != tuples out %d + dummies %d",
			got, stats.TuplesOut, stats.Dummies)
	}

	// Steady state: with the link out of the way, some full window must
	// ingest window×tuples-per-line tuples — one cache line per cycle.
	var maxDelta int64
	for i := 1; i < len(in); i++ {
		if d := in[i] - in[i-1]; d > maxDelta {
			maxDelta = d
		}
	}
	if want := int64(window) * tpl; maxDelta < want {
		t.Errorf("best window ingested %d tuples, want ≥ %d (1 line/cycle over %d cycles)",
			maxDelta, want, window)
	}
}
