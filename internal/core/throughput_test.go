package core

import (
	"testing"

	"fpgapart/platform"
	"fpgapart/workload"
)

// runMode partitions n 8-byte tuples with the given mode on the given curve
// and returns throughput in million tuples per second.
func runMode(t *testing.T, format Format, layout Layout, curve platform.BandwidthCurve, n int) float64 {
	t.Helper()
	g := workload.NewGenerator(33)
	rel, err := g.Relation(workload.Random, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	if layout == VRID {
		rel = rel.ToColumns()
	}
	cfg := Config{NumPartitions: 8192, TupleWidth: 8, Hash: true, Format: format, Layout: layout, PadFraction: 0.5}
	c, err := NewCircuit(cfg, 200e6, curve)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	return stats.ThroughputTuplesPerSec() / 1e6
}

// TestFigure9OperatingPoints verifies the simulated end-to-end throughputs
// land near the paper's measurements (Figure 9, 8192 partitions, 8 B
// tuples): HIST/RID 299, HIST/VRID 391, PAD/RID 436, PAD/VRID 514 million
// tuples/s. Tolerances are ±12% — the paper's own model matches within 10%.
func TestFigure9OperatingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput calibration is slow")
	}
	curve := platform.XeonFPGA().FPGAAlone
	// Large enough that the fixed 65540-cycle flush (Section 4.6) fades;
	// the paper uses 128 M tuples, where it is negligible.
	const n = 8 << 20
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.88 || got > want*1.12 {
			t.Errorf("%s = %.0f Mtuples/s, want %.0f ± 12%%", name, got, want)
		} else {
			t.Logf("%s = %.0f Mtuples/s (paper: %.0f)", name, got, want)
		}
	}
	check("HIST/RID", runMode(t, HIST, RID, curve, n), 299)
	check("HIST/VRID", runMode(t, HIST, VRID, curve, n), 391)
	check("PAD/RID", runMode(t, PAD, RID, curve, n), 436)
	check("PAD/VRID", runMode(t, PAD, VRID, curve, n), 514)
}

// TestRawFPGAThroughput verifies the raw-wrapper numbers (Section 4.7): with
// a 25.6 GB/s link the circuit is compute-bound at one cache line per cycle,
// 1.6 billion tuples/s in PAD mode and half that with HIST's two passes.
func TestRawFPGAThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput calibration is slow")
	}
	curve := platform.RawFPGA().FPGAAlone
	const n = 8 << 20
	pad := runMode(t, PAD, RID, curve, n)
	hist := runMode(t, HIST, RID, curve, n)
	if pad < 1597*0.88 || pad > 1600*1.05 {
		t.Errorf("raw PAD = %.0f Mtuples/s, want ~1597", pad)
	}
	if hist < 799*0.88 || hist > 800*1.08 {
		t.Errorf("raw HIST = %.0f Mtuples/s, want ~799", hist)
	}
	t.Logf("raw PAD = %.0f, raw HIST = %.0f Mtuples/s (paper: 1597, 799)", pad, hist)
}

// TestOneCacheLinePerCycle verifies the headline hardware property: with an
// unconstrained link, the partitioning pass consumes one cache line per
// clock cycle — cycles ≈ lines + pipeline latency + flush.
func TestOneCacheLinePerCycle(t *testing.T) {
	g := workload.NewGenerator(8)
	const n = 1 << 19
	rel, err := g.Relation(workload.Random, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	// A link fast enough to never back-pressure: 51.2 GB/s = 1 read and 1
	// write line per cycle with margin.
	curve := platform.BandwidthCurve{Points: []float64{51.2, 51.2}}
	cfg := Config{NumPartitions: 1024, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID, PadFraction: 0.5}
	c, err := NewCircuit(cfg, 200e6, curve)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	lines := int64(n / 8)
	// Allow latency, flush and scheduling slack of a few thousand cycles.
	slack := int64(8 * 1024 * 2)
	if stats.PartitionCycles > lines+slack/2 {
		t.Errorf("partition pass took %d cycles for %d lines — not one line per cycle", stats.PartitionCycles, lines)
	}
	if stats.Cycles > lines+slack {
		t.Errorf("total %d cycles for %d lines + flush", stats.Cycles, lines)
	}
}

// TestTupleWidthThroughputShape reproduces the Figure 8 shape: tuples/s
// halves with each doubling of tuple width while GB/s processed stays flat.
func TestTupleWidthThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput calibration is slow")
	}
	curve := platform.XeonFPGA().FPGAAlone
	g := workload.NewGenerator(12)
	var tput [4]float64
	var gbps [4]float64
	widths := []int{8, 16, 32, 64}
	for i, w := range widths {
		n := (8 << 20) / w * 2 // constant bytes across widths
		rel, err := g.Relation(workload.Random, w, n)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{NumPartitions: 8192, TupleWidth: w, Hash: true, Format: HIST, Layout: RID}
		c, err := NewCircuit(cfg, 200e6, curve)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := c.Partition(rel)
		if err != nil {
			t.Fatal(err)
		}
		tput[i] = stats.ThroughputTuplesPerSec()
		gbps[i] = stats.DataProcessedGBps()
	}
	for i := 1; i < 4; i++ {
		ratio := tput[i-1] / tput[i]
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("throughput ratio %dB/%dB = %.2f, want ~2", widths[i-1], widths[i], ratio)
		}
		if gbps[i] < gbps[0]*0.8 || gbps[i] > gbps[0]*1.25 {
			t.Errorf("GB/s at %dB = %.2f, want ≈ %.2f (flat)", widths[i], gbps[i], gbps[0])
		}
	}
}
