package core

import (
	"fpgapart/internal/hashutil"
	"testing"
)

func TestHashPipelineLatency(t *testing.T) {
	p := NewHashPipeline()
	if p.Depth() != hashPipelineDepth {
		t.Fatalf("Depth() = %d, want %d", p.Depth(), hashPipelineDepth)
	}

	const key = uint32(0xdeadbeef)
	if _, ok := p.Cycle(key, true); ok {
		t.Fatal("hash emerged on the insertion cycle")
	}
	for c := 1; c < hashPipelineDepth; c++ {
		if _, ok := p.Cycle(0, false); ok {
			t.Fatalf("hash emerged after %d cycles, want %d", c+1, hashPipelineDepth)
		}
	}
	h, ok := p.Cycle(0, false)
	if !ok {
		t.Fatalf("no hash after %d cycles", hashPipelineDepth)
	}
	if want := hashutil.Murmur32Finalizer(key); h != want {
		t.Fatalf("pipeline hash = %#x, want %#x", h, want)
	}
	if !p.Drained() {
		t.Fatal("pipeline not drained after sole key emerged")
	}
}

func TestHashPipelineThroughput(t *testing.T) {
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32(i) * 2654435761 // golden-ratio spread
	}

	p := NewHashPipeline()
	hashes := p.HashAll(keys)
	if len(hashes) != len(keys) {
		t.Fatalf("got %d hashes for %d keys", len(hashes), len(keys))
	}
	for i, k := range keys {
		if want := hashutil.Murmur32Finalizer(k); hashes[i] != want {
			t.Fatalf("key %#x: pipeline = %#x, software = %#x", k, hashes[i], want)
		}
	}
	// Fully pipelined: n keys back-to-back finish in n + depth cycles.
	if want := int64(len(keys) + hashPipelineDepth); p.Cycles() != want {
		t.Fatalf("took %d cycles for %d keys, want %d", p.Cycles(), len(keys), want)
	}
}

func TestHashPipelineBubbles(t *testing.T) {
	// Invalid cycles interleaved between keys must not corrupt in-flight
	// values or produce spurious outputs.
	keys := []uint32{0, 1, 0xffffffff, 0x12345678}
	p := NewHashPipeline()
	var got []uint32
	for _, k := range keys {
		if h, ok := p.Cycle(k, true); ok {
			got = append(got, h)
		}
		for i := 0; i < 3; i++ { // three bubbles after every key
			if h, ok := p.Cycle(0xbad, false); ok {
				got = append(got, h)
			}
		}
	}
	for !p.Drained() {
		if h, ok := p.Cycle(0xbad, false); ok {
			got = append(got, h)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d hashes for %d keys", len(got), len(keys))
	}
	for i, k := range keys {
		if want := hashutil.Murmur32Finalizer(k); got[i] != want {
			t.Fatalf("key %#x: pipeline = %#x, software = %#x", k, got[i], want)
		}
	}
}
