package core

import (
	"errors"
	"sort"
	"testing"

	"fpgapart/internal/hashutil"
	"fpgapart/platform"
	"fpgapart/workload"
)

// testCurve is a generous flat link so functional tests are not
// bandwidth-shaped; throughput tests use the real curves explicitly.
func testCurve() platform.BandwidthCurve {
	return platform.BandwidthCurve{Points: []float64{25.6, 25.6}}
}

func mustCircuit(t *testing.T, cfg Config) *Circuit {
	t.Helper()
	c, err := NewCircuit(cfg, 200e6, testCurve())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// referencePartitions computes the expected per-partition multiset of
// (key, payload) pairs with a trivial software partitioner.
func referencePartitions(rel *workload.Relation, numPartitions int, hash bool) [][][2]uint32 {
	bits := hashutil.Log2(numPartitions)
	ref := make([][][2]uint32, numPartitions)
	for i := 0; i < rel.NumTuples; i++ {
		key := rel.Key(i)
		p := hashutil.PartitionIndex32(key, bits, hash)
		ref[p] = append(ref[p], [2]uint32{key, rel.Payload(i)})
	}
	return ref
}

// assertMatchesReference checks the circuit output against the reference,
// comparing each partition as a sorted multiset.
func assertMatchesReference(t *testing.T, out *Output, ref [][][2]uint32) {
	t.Helper()
	sortPairs := func(ps [][2]uint32) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
	}
	for p := 0; p < out.NumPartitions; p++ {
		keys, pays := out.PartitionPairs(p)
		got := make([][2]uint32, len(keys))
		for i := range keys {
			got[i] = [2]uint32{keys[i], pays[i]}
		}
		want := append([][2]uint32(nil), ref[p]...)
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d tuples, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %d tuple %d: got %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func genRelation(t *testing.T, d workload.Distribution, width, n int, seed int64) *workload.Relation {
	t.Helper()
	rel, err := workload.NewGenerator(seed).Relation(d, width, n)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPartitioningMatchesReferenceAllDistributions(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Linear, workload.Random, workload.Grid, workload.ReverseGrid} {
		for _, hash := range []bool{false, true} {
			// Radix partitioning of grid keys floods a few partitions
			// (Figure 3a) and would rightly overflow PAD mode, so those
			// cases run in HIST mode — as the paper's system would.
			format := PAD
			if !hash && (d == workload.Grid || d == workload.ReverseGrid) {
				format = HIST
			}
			rel := genRelation(t, d, 8, 40000, 42)
			cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: hash, Format: format, Layout: RID, PadFraction: 0.5}
			c := mustCircuit(t, cfg)
			out, stats, err := c.Partition(rel)
			if err != nil {
				t.Fatalf("%v hash=%v: %v", d, hash, err)
			}
			if stats.TuplesIn != 40000 || stats.TuplesOut != 40000 {
				t.Fatalf("%v hash=%v: tuples in/out = %d/%d", d, hash, stats.TuplesIn, stats.TuplesOut)
			}
			assertMatchesReference(t, out, referencePartitions(rel, 256, hash))
		}
	}
}

func TestPadOverflowsOnRadixReverseGrid(t *testing.T) {
	// Reverse-grid keys share one low byte for any modest relation size, so
	// radix partitioning sends every tuple to one partition and PAD mode
	// must abort — the robustness failure Figure 3a illustrates.
	rel := genRelation(t, workload.ReverseGrid, 8, 40000, 42)
	cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: false, Format: PAD, Layout: RID, PadFraction: 0.5}
	_, _, err := mustCircuit(t, cfg).Partition(rel)
	if !errors.Is(err, ErrPartitionOverflow) {
		t.Fatalf("err = %v, want ErrPartitionOverflow", err)
	}
	// Murmur hashing the same keys fixes the distribution (Figure 3b).
	cfg.Hash = true
	if _, _, err := mustCircuit(t, cfg).Partition(rel.Clone()); err != nil {
		t.Fatalf("hash partitioning of reverse-grid keys failed: %v", err)
	}
}

func TestHistRidMatchesReference(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 30000, 7)
	cfg := Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
	out, stats, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, out, referencePartitions(rel, 128, true))
	if stats.HistogramCycles == 0 || stats.PrefixSumCycles != 128 {
		t.Errorf("HIST phases: hist=%d prefix=%d", stats.HistogramCycles, stats.PrefixSumCycles)
	}
	// HIST counts are the exact histogram.
	ref := referencePartitions(rel, 128, true)
	for p := range ref {
		if out.Counts[p] != int64(len(ref[p])) {
			t.Fatalf("partition %d count %d, want %d", p, out.Counts[p], len(ref[p]))
		}
	}
}

func TestWiderTuplesMatchReference(t *testing.T) {
	for _, w := range []int{16, 32, 64} {
		rel := genRelation(t, workload.Random, w, 12000, 5)
		cfg := Config{NumPartitions: 64, TupleWidth: w, Hash: true, Format: PAD, Layout: RID, PadFraction: 0.5}
		out, _, err := mustCircuit(t, cfg).Partition(rel)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if out.TupleWidth != w {
			t.Fatalf("width %d: output width %d", w, out.TupleWidth)
		}
		assertMatchesReference(t, out, referencePartitions(rel, 64, true))
	}
}

func TestWideTuplePayloadWordsSurvive(t *testing.T) {
	// Fill all words of 32 B tuples and verify the full record round-trips.
	rel, _ := workload.NewRelation(workload.RowLayout, 32, 1000)
	for i := 0; i < 1000; i++ {
		rel.SetTuple(i, uint32(i+1), uint32(i))
		for w := 1; w < 4; w++ {
			rel.Data[i*4+w] = uint64(i)<<32 | uint64(w)
		}
	}
	cfg := Config{NumPartitions: 16, TupleWidth: 32, Hash: true, Format: HIST, Layout: RID}
	out, _, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for p := 0; p < 16; p++ {
		out.Partition(p, func(key, _ uint32, words []uint64) {
			i := uint64(key - 1)
			for w := 1; w < 4; w++ {
				if words[w] != i<<32|uint64(w) {
					t.Fatalf("tuple %d word %d corrupted: %#x", i, w, words[w])
				}
			}
			seen++
		})
	}
	if seen != 1000 {
		t.Fatalf("saw %d tuples, want 1000", seen)
	}
}

func TestVRIDMatchesReferenceAndIndexesPayloads(t *testing.T) {
	rowRel := genRelation(t, workload.Random, 8, 25000, 3)
	colRel := rowRel.ToColumns()
	cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: true, Format: PAD, Layout: VRID, PadFraction: 0.5}
	out, stats, err := mustCircuit(t, cfg).Partition(colRel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesIn != 25000 {
		t.Fatalf("TuplesIn = %d", stats.TuplesIn)
	}
	// Every output tuple is <key, VRID>; materializing via the VRID must
	// recover the original tuple.
	bits := hashutil.Log2(256)
	total := 0
	for p := 0; p < 256; p++ {
		out.Partition(p, func(key, vrid uint32, _ []uint64) {
			if colRel.Keys[vrid] != key {
				t.Fatalf("VRID %d carries key %#x, original %#x", vrid, key, colRel.Keys[vrid])
			}
			if got := hashutil.PartitionIndex32(key, bits, true); got != uint32(p) {
				t.Fatalf("key %#x in partition %d, want %d", key, p, got)
			}
			total++
		})
	}
	if total != 25000 {
		t.Fatalf("materialized %d tuples, want 25000", total)
	}
	// VRID halves the read traffic: 25000 keys = 4B each.
	wantReads := int64((25000*4 + 63) / 64)
	if stats.LinesRead != wantReads {
		t.Errorf("LinesRead = %d, want %d", stats.LinesRead, wantReads)
	}
}

func TestHistVRID(t *testing.T) {
	rowRel := genRelation(t, workload.Grid, 8, 10000, 11)
	colRel := rowRel.ToColumns()
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: HIST, Layout: VRID}
	out, _, err := mustCircuit(t, cfg).Partition(colRel)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalTuples() != 10000 {
		t.Fatalf("TotalTuples = %d", out.TotalTuples())
	}
}

func TestAdversarialSinglePartitionNoStalls(t *testing.T) {
	// Every tuple lands in the same partition — the worst case for the
	// fill-rate BRAM hazard. With forwarding there must be zero hazard
	// stalls (the paper's central claim) and plenty of forwarded hazards.
	rel, _ := workload.NewRelation(workload.RowLayout, 8, 20000)
	for i := 0; i < 20000; i++ {
		rel.SetTuple(i, 4096, uint32(i)) // constant key
	}
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: false, Format: HIST, Layout: RID}
	out, stats, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallsHazard != 0 {
		t.Errorf("hazard stalls = %d, want 0 with forwarding", stats.StallsHazard)
	}
	if stats.ForwardedHazards == 0 {
		t.Error("expected forwarded hazards on single-partition input")
	}
	if out.Counts[4096&63] != 20000 {
		t.Errorf("partition count = %d", out.Counts[4096&63])
	}
}

func TestForwardingAblationStalls(t *testing.T) {
	rel, _ := workload.NewRelation(workload.RowLayout, 8, 20000)
	for i := 0; i < 20000; i++ {
		rel.SetTuple(i, 1, uint32(i))
	}
	base := Config{NumPartitions: 64, TupleWidth: 8, Hash: false, Format: HIST, Layout: RID}
	_, with, err := mustCircuit(t, base).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	noFwd := base
	noFwd.DisableForwarding = true
	_, without, err := mustCircuit(t, noFwd).Partition(rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if without.StallsHazard == 0 {
		t.Error("no hazard stalls with forwarding disabled on adversarial input")
	}
	if without.Cycles <= with.Cycles {
		t.Errorf("disabled forwarding took %d cycles, forwarding %d — expected slower", without.Cycles, with.Cycles)
	}
}

func TestForwardingAblationStillCorrect(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 15000, 9)
	cfg := Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID,
		PadFraction: 0.5, DisableForwarding: true}
	out, _, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, out, referencePartitions(rel, 128, true))
}

func TestNoWriteCombinerAblation(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 15000, 13)
	base := Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
	_, withWC, err := mustCircuit(t, base).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	naive := base
	naive.DisableWriteCombiner = true
	outN, withoutWC, err := mustCircuit(t, naive).Partition(rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, outN, referencePartitions(rel, 128, true))
	// Section 4.2: naive write-back moves (64+64)·T bytes instead of
	// 64·T/8, a 16× blow-up of the shuffle traffic. End to end (including
	// the shared histogram pass) the run must be several times slower.
	if withoutWC.Cycles < 3*withWC.Cycles {
		t.Errorf("no-combiner ablation took %d cycles vs %d with combining — expected ≥3× slower",
			withoutWC.Cycles, withWC.Cycles)
	}
	if withoutWC.Dummies != 0 {
		t.Errorf("tuple-granular writes should write no dummy tuples, got %d", withoutWC.Dummies)
	}
}

func TestPadOverflowOnSkew(t *testing.T) {
	g := workload.NewGenerator(21)
	rel, err := g.ZipfRelation(1.0, 100000, 8, 50000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID, PadFraction: 0.15}
	_, stats, err := mustCircuit(t, cfg).Partition(rel)
	if !errors.Is(err, ErrPartitionOverflow) {
		t.Fatalf("err = %v, want ErrPartitionOverflow", err)
	}
	if !stats.Overflowed || stats.OverflowAtTuple == 0 {
		t.Errorf("overflow stats: %+v", stats)
	}
}

func TestHistHandlesAnySkew(t *testing.T) {
	g := workload.NewGenerator(22)
	rel, err := g.ZipfRelation(1.75, 100000, 8, 50000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
	out, _, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, out, referencePartitions(rel, 256, true))
}

func TestEmptyRelation(t *testing.T) {
	for _, f := range []Format{HIST, PAD} {
		rel, _ := workload.NewRelation(workload.RowLayout, 8, 0)
		cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: f, Layout: RID}
		out, stats, err := mustCircuit(t, cfg).Partition(rel)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if out.TotalTuples() != 0 || stats.TuplesIn != 0 {
			t.Errorf("%v: nonzero tuples on empty input", f)
		}
	}
}

func TestSingleTupleRelation(t *testing.T) {
	rel, _ := workload.NewRelation(workload.RowLayout, 8, 1)
	rel.SetTuple(0, 77, 99)
	cfg := Config{NumPartitions: 8, TupleWidth: 8, Hash: false, Format: PAD, Layout: RID}
	out, _, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	keys, pays := out.PartitionPairs(77 & 7)
	if len(keys) != 1 || keys[0] != 77 || pays[0] != 99 {
		t.Fatalf("tuple lost: %v %v", keys, pays)
	}
	if out.Dummies() != 7 {
		t.Errorf("Dummies = %d, want 7 (one flushed line)", out.Dummies())
	}
}

func TestDummyAccounting(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 10007, 17) // awkward size
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
	out, stats, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalTuples() != 10007 {
		t.Errorf("TotalTuples = %d", out.TotalTuples())
	}
	if got := out.TotalLinesUsed()*8 - out.TotalTuples(); got != out.Dummies() {
		t.Errorf("Dummies inconsistency: %d vs %d", got, out.Dummies())
	}
	if stats.Dummies != out.Dummies() {
		t.Errorf("stats.Dummies = %d, output says %d", stats.Dummies, out.Dummies())
	}
	if stats.LinesWritten != out.TotalLinesUsed() {
		t.Errorf("LinesWritten = %d, used %d", stats.LinesWritten, out.TotalLinesUsed())
	}
}

func TestLayoutMismatchRejected(t *testing.T) {
	rowRel := genRelation(t, workload.Linear, 8, 100, 1)
	colRel := rowRel.ToColumns()
	vrid := Config{NumPartitions: 8, TupleWidth: 8, Format: PAD, Layout: VRID}
	if _, _, err := mustCircuit(t, vrid).Partition(rowRel); err == nil {
		t.Error("VRID accepted a row-layout relation")
	}
	rid := Config{NumPartitions: 8, TupleWidth: 8, Format: PAD, Layout: RID}
	if _, _, err := mustCircuit(t, rid).Partition(colRel); err == nil {
		t.Error("RID accepted a column-layout relation")
	}
	wide := Config{NumPartitions: 8, TupleWidth: 16, Format: PAD, Layout: RID}
	if _, _, err := mustCircuit(t, wide).Partition(rowRel); err == nil {
		t.Error("16B circuit accepted an 8B relation")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumPartitions: 100, TupleWidth: 8},                    // not power of two
		{NumPartitions: 1, TupleWidth: 8},                      // too few
		{NumPartitions: 64, TupleWidth: 12},                    // bad width
		{NumPartitions: 64, TupleWidth: 16, Layout: VRID},      // VRID needs 8B
		{NumPartitions: 64, TupleWidth: 8, PadFraction: -0.5},  // negative pad
		{NumPartitions: 64, TupleWidth: 8, Stage1FIFODepth: 2}, // shallow FIFO
		{NumPartitions: 64, TupleWidth: 8, OutFIFODepth: 1},    // shallow out FIFO
	}
	for i, cfg := range bad {
		if _, err := NewCircuit(cfg, 200e6, testCurve()); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewCircuit(Config{NumPartitions: 64, TupleWidth: 8}, 0, testCurve()); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestPageTranslationsHappen(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 20000, 19)
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID}
	_, stats, err := mustCircuit(t, cfg).Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PageTranslations == 0 {
		t.Error("no page-table translations recorded")
	}
}

func TestFormatLayoutStrings(t *testing.T) {
	if HIST.String() != "HIST" || PAD.String() != "PAD" {
		t.Error("format strings")
	}
	if RID.String() != "RID" || VRID.String() != "VRID" {
		t.Error("layout strings")
	}
	if Format(9).String() == "" || Layout(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}
