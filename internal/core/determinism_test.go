package core

import (
	"sort"
	"testing"

	"fpgapart/internal/fpga"
	"fpgapart/platform"
	"fpgapart/workload"
)

// collectMultiset gathers all (key, payload) pairs per partition, sorted —
// the timing-independent view of an Output.
func collectMultiset(out *Output) [][]uint64 {
	res := make([][]uint64, out.NumPartitions)
	for p := 0; p < out.NumPartitions; p++ {
		var v []uint64
		out.Partition(p, func(k, pay uint32, _ []uint64) {
			v = append(v, uint64(k)<<32|uint64(pay))
		})
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		res[p] = v
	}
	return res
}

// TestFunctionalDeterminismAcrossTiming: the partitioned result (as a
// per-partition multiset) must not depend on link bandwidth, FIFO depths or
// stall behaviour — timing changes scheduling, never data.
func TestFunctionalDeterminismAcrossTiming(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 25000, 41)
	configs := []struct {
		name  string
		curve platform.BandwidthCurve
		cfg   Config
	}{
		{"fast", testCurve(),
			Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}},
		{"slow", platform.BandwidthCurve{Points: []float64{0.8, 0.8}},
			Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}},
		{"deepFIFOs", testCurve(),
			Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID,
				Stage1FIFODepth: 256, OutFIFODepth: 64}},
		{"noForwarding", testCurve(),
			Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID,
				DisableForwarding: true}},
		{"interfered", platform.XeonFPGA().FPGAInterfered,
			Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}},
	}
	var ref [][]uint64
	for _, c := range configs {
		circuit, err := NewCircuit(c.cfg, 200e6, c.curve)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out, _, err := circuit.Partition(rel.Clone())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := collectMultiset(out)
		if ref == nil {
			ref = got
			continue
		}
		for p := range ref {
			if len(got[p]) != len(ref[p]) {
				t.Fatalf("%s: partition %d has %d tuples, reference %d", c.name, p, len(got[p]), len(ref[p]))
			}
			for i := range ref[p] {
				if got[p][i] != ref[p][i] {
					t.Fatalf("%s: partition %d differs from reference at %d", c.name, p, i)
				}
			}
		}
	}
}

// TestSlowLinkOnlyChangesCycles: a slower link costs cycles proportionally
// but moves identical traffic.
func TestSlowLinkOnlyChangesCycles(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 50000, 43)
	cfg := Config{NumPartitions: 256, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID, PadFraction: 0.5}
	run := func(gbps float64) *Stats {
		c, err := NewCircuit(cfg, 200e6, platform.BandwidthCurve{Points: []float64{gbps, gbps}})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := c.Partition(rel.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fast := run(25.6)
	slow := run(3.2)
	if fast.LinesRead != slow.LinesRead || fast.LinesWritten != slow.LinesWritten {
		t.Errorf("traffic differs: %d/%d vs %d/%d lines",
			fast.LinesRead, fast.LinesWritten, slow.LinesRead, slow.LinesWritten)
	}
	ratio := float64(slow.Cycles) / float64(fast.Cycles)
	if ratio < 4 || ratio > 12 {
		t.Errorf("8x slower link changed cycles by %.1fx, want roughly proportional", ratio)
	}
}

// TestStallAccountingConsistency: on a link slower than the circuit, the
// input stage must report back-pressure stalls, and cycle counts must at
// least cover the pure transfer time.
func TestStallAccountingConsistency(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 50000, 47)
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: PAD, Layout: RID, PadFraction: 0.5}
	c, err := NewCircuit(cfg, 200e6, platform.BandwidthCurve{Points: []float64{3.2, 3.2}})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallsBackpressure == 0 {
		t.Error("no back-pressure stalls on a starved link")
	}
	// 3.2 GB/s at 200 MHz = 16 bytes/cycle; moving (reads+writes)·64 bytes
	// needs at least that many cycles.
	minCycles := (stats.LinesRead + stats.LinesWritten) * 64 / 16
	if stats.Cycles < minCycles {
		t.Errorf("cycles %d below the transfer bound %d", stats.Cycles, minCycles)
	}
}

// TestCombinerUnitFillAndEmit drives one write combiner directly through
// its fill-assemble-emit cycle.
func TestCombinerUnitFillAndEmit(t *testing.T) {
	cfg := Config{NumPartitions: 4, TupleWidth: 8, Format: PAD, Layout: RID}.WithDefaults()
	cb := newCombiner(cfg, 8, 1, DefaultDummyKey)
	in := newTestFIFO(cfg)
	stats := &Stats{}
	// Seven tuples to partition 2: no line yet.
	for i := 0; i < 7; i++ {
		in.Push(tup{words: [8]uint64{uint64(i)<<32 | 2}, part: 2})
	}
	for i := 0; i < 7; i++ {
		cb.step(in, stats, cfg)
	}
	if !cb.out.Empty() {
		t.Fatal("line emitted before eight tuples arrived")
	}
	if cb.fill[2] != 7 {
		t.Fatalf("fill[2] = %d, want 7", cb.fill[2])
	}
	// Eighth completes the line.
	in.Push(tup{words: [8]uint64{7<<32 | 2}, part: 2})
	cb.step(in, stats, cfg)
	if cb.out.Len() != 1 {
		t.Fatal("no line after eighth tuple")
	}
	l := cb.out.Pop()
	if l.part != 2 || l.valid != 8 {
		t.Fatalf("line: part=%d valid=%d", l.part, l.valid)
	}
	for i := 0; i < 8; i++ {
		if l.words[i] != uint64(i)<<32|2 {
			t.Fatalf("slot %d = %#x", i, l.words[i])
		}
	}
	if cb.fill[2] != 0 {
		t.Fatal("fill not reset after emit")
	}
}

// TestCombinerUnitFlushPadsWithDummies checks flushStep's dummy padding.
func TestCombinerUnitFlushPadsWithDummies(t *testing.T) {
	cfg := Config{NumPartitions: 4, TupleWidth: 8, Format: PAD, Layout: RID}.WithDefaults()
	cb := newCombiner(cfg, 8, 1, DefaultDummyKey)
	in := newTestFIFO(cfg)
	stats := &Stats{}
	in.Push(tup{words: [8]uint64{123<<32 | 3}, part: 3})
	cb.step(in, stats, cfg)
	// Scan all four addresses.
	for !cb.flushStep(stats) {
	}
	if cb.out.Len() != 1 {
		t.Fatalf("flush emitted %d lines, want 1", cb.out.Len())
	}
	l := cb.out.Pop()
	if l.part != 3 || l.valid != 1 {
		t.Fatalf("flushed line: part=%d valid=%d", l.part, l.valid)
	}
	if uint32(l.words[0]) != 3 {
		t.Fatalf("slot 0 = %#x", l.words[0])
	}
	for i := 1; i < 8; i++ {
		if uint32(l.words[i]) != DefaultDummyKey {
			t.Fatalf("slot %d not dummy: %#x", i, l.words[i])
		}
	}
	// Further flush steps stay done and emit nothing.
	if !cb.flushStep(stats) || !cb.out.Empty() {
		t.Error("flush not idempotent")
	}
}

// TestCombinerBackpressureHoldsTuple: with a full output FIFO the combiner
// must not consume input.
func TestCombinerBackpressureHoldsTuple(t *testing.T) {
	cfg := Config{NumPartitions: 4, TupleWidth: 8, Format: PAD, Layout: RID, OutFIFODepth: 2}.WithDefaults()
	cb := newCombiner(cfg, 1, 1, DefaultDummyKey) // 1 bank: every tuple emits a line
	in := newTestFIFO(cfg)
	stats := &Stats{}
	for i := 0; i < 4; i++ {
		in.Push(tup{words: [8]uint64{1}, part: 1})
	}
	for i := 0; i < 10; i++ {
		cb.step(in, stats, cfg)
	}
	if cb.out.Len() != 2 {
		t.Fatalf("out FIFO holds %d lines, want its capacity 2", cb.out.Len())
	}
	if in.Len() != 2 {
		t.Fatalf("input FIFO drained to %d under back-pressure, want 2 held", in.Len())
	}
}

func newTestFIFO(cfg Config) *fpga.FIFO[tup] {
	return fpga.NewFIFO[tup](cfg.Stage1FIFODepth)
}
