package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgapart/codec"
	"fpgapart/internal/hashutil"
	"fpgapart/platform"
	"fpgapart/workload"
)

// compressible returns n keys with runs (sorted low-cardinality column).
func compressible(n, cardinality int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, 0, n)
	for len(keys) < n {
		v := uint32(rng.Intn(cardinality)) + 1
		run := rng.Intn(64) + 1
		for i := 0; i < run && len(keys) < n; i++ {
			keys = append(keys, v)
		}
	}
	return keys
}

func TestCompressedPartitioningMatchesPlainVRID(t *testing.T) {
	keys := compressible(30000, 500, 3)
	col := codec.CompressRLE(keys)
	rel, err := workload.FromKeys(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	colRel := rel.ToColumns()

	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: HIST, Layout: VRID}
	plain, _, err := mustCircuit(t, cfg).Partition(colRel)
	if err != nil {
		t.Fatal(err)
	}
	comp, stats, err := mustCircuit(t, cfg).PartitionCompressed(col)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesIn != 30000 || comp.TotalTuples() != 30000 {
		t.Fatalf("tuples: in=%d out=%d", stats.TuplesIn, comp.TotalTuples())
	}
	// Same per-partition counts, and every <key, VRID> pair materializes to
	// the original key.
	for p := 0; p < 64; p++ {
		if plain.Counts[p] != comp.Counts[p] {
			t.Fatalf("partition %d: plain %d vs compressed %d", p, plain.Counts[p], comp.Counts[p])
		}
		comp.Partition(p, func(key, vrid uint32, _ []uint64) {
			if keys[vrid] != key {
				t.Fatalf("VRID %d carries %#x, original %#x", vrid, key, keys[vrid])
			}
		})
	}
}

func TestCompressedReadsOnlyCompressedLines(t *testing.T) {
	// PAD mode reads the column exactly once; the generous padding absorbs
	// the skew a low-cardinality column has across partitions.
	keys := compressible(40000, 100, 5)
	col := codec.CompressRLE(keys)
	cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: PAD, Layout: VRID, PadFraction: 4}
	_, stats, err := mustCircuit(t, cfg).PartitionCompressed(col)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := int64((col.CompressedBytes() + 63) / 64)
	if stats.LinesRead != wantLines {
		t.Errorf("LinesRead = %d, want %d compressed lines", stats.LinesRead, wantLines)
	}
}

func TestCompressionSpeedsUpBandwidthBoundPartitioning(t *testing.T) {
	keys := compressible(1<<19, 200, 7) // highly compressible
	col := codec.CompressRLE(keys)
	if col.Ratio() < 4 {
		t.Fatalf("test column only compresses %.1fx", col.Ratio())
	}
	rel, _ := workload.FromKeys(keys, 8)
	colRel := rel.ToColumns()
	curve := platform.XeonFPGA().FPGAAlone
	// HIST for both sides: low-cardinality columns skew the partitions, and
	// the comparison is cycles-for-cycles under the same two-pass mode.
	cfg := Config{NumPartitions: 1024, TupleWidth: 8, Hash: true, Format: HIST, Layout: VRID}

	plainCirc, err := NewCircuit(cfg, 200e6, curve)
	if err != nil {
		t.Fatal(err)
	}
	_, plain, err := plainCirc.Partition(colRel)
	if err != nil {
		t.Fatal(err)
	}
	compCirc, err := NewCircuit(cfg, 200e6, curve)
	if err != nil {
		t.Fatal(err)
	}
	_, comp, err := compCirc.PartitionCompressed(col)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Cycles >= plain.Cycles {
		t.Errorf("compressed input not faster: %d vs %d cycles", comp.Cycles, plain.Cycles)
	}
}

func TestIncompressibleColumnStillCorrect(t *testing.T) {
	// Unique keys: every value is its own run — RLE is a pessimization
	// (ratio 0.5) but the result must stay exact.
	keys := make([]uint32, 10000)
	for i := range keys {
		keys[i] = uint32(i + 1)
	}
	col := codec.CompressRLE(keys)
	if col.Ratio() >= 1 {
		t.Fatalf("unique keys should not compress: %v", col.Ratio())
	}
	cfg := Config{NumPartitions: 32, TupleWidth: 8, Hash: true, Format: HIST, Layout: VRID}
	out, _, err := mustCircuit(t, cfg).PartitionCompressed(col)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalTuples() != 10000 {
		t.Fatalf("TotalTuples = %d", out.TotalTuples())
	}
	bits := hashutil.Log2(32)
	out.Partition(3, func(key, _ uint32, _ []uint64) {
		if hashutil.PartitionIndex32(key, bits, true) != 3 {
			t.Fatalf("misplaced key %#x", key)
		}
	})
}

func TestCompressedRequiresVRID(t *testing.T) {
	col := codec.CompressRLE([]uint32{1, 1, 2})
	cfg := Config{NumPartitions: 8, TupleWidth: 8, Format: PAD, Layout: RID}
	if _, _, err := mustCircuit(t, cfg).PartitionCompressed(col); err == nil {
		t.Error("RID circuit accepted compressed input")
	}
}

func TestCompressedRejectsCorruptColumn(t *testing.T) {
	col := &codec.RLEColumn{Runs: []codec.Run{{Value: 1, Length: 3}}, N: 5}
	cfg := Config{NumPartitions: 8, TupleWidth: 8, Format: PAD, Layout: VRID}
	if _, _, err := mustCircuit(t, cfg).PartitionCompressed(col); err == nil {
		t.Error("inconsistent column accepted")
	}
}

func TestCompressedEmptyColumn(t *testing.T) {
	col := codec.CompressRLE(nil)
	cfg := Config{NumPartitions: 8, TupleWidth: 8, Format: HIST, Layout: VRID}
	out, _, err := mustCircuit(t, cfg).PartitionCompressed(col)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalTuples() != 0 {
		t.Errorf("tuples from empty column: %d", out.TotalTuples())
	}
}

func TestPropertyCompressedEqualsPlain(t *testing.T) {
	f := func(seed int64, cardRaw uint8) bool {
		card := int(cardRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000) + 1
		keys := compressible(n, card, seed)
		col := codec.CompressRLE(keys)
		rel, _ := workload.FromKeys(keys, 8)
		cfg := Config{NumPartitions: 16, TupleWidth: 8, Hash: true, Format: HIST, Layout: VRID}
		c1, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			return false
		}
		plain, _, err := c1.Partition(rel.ToColumns())
		if err != nil {
			return false
		}
		c2, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			return false
		}
		comp, _, err := c2.PartitionCompressed(col)
		if err != nil {
			return false
		}
		for p := 0; p < 16; p++ {
			if plain.Counts[p] != comp.Counts[p] {
				return false
			}
		}
		return comp.TotalTuples() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
