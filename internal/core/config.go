// Package core implements the paper's primary contribution: the fully
// pipelined FPGA data-partitioning circuit of Section 4, as a cycle-level
// simulator. The simulator executes the dataflow of Figure 5 — per-lane hash
// function modules (Code 3), first-stage FIFOs, write combiner modules with
// the BRAM fill-rate forwarding of Code 4 (Figure 6), and the write-back
// module with prefix-sum and offset BRAMs (Section 4.3) — against real input
// relations, producing real partitioned output, while counting clock cycles
// under the QPI bandwidth back-pressure model.
//
// Two properties of the hardware design become checkable invariants here:
// the circuit never stalls for internal (hazard) reasons regardless of the
// input pattern, and it consumes and produces a 64-byte cache line per clock
// cycle whenever the link allows it.
package core

import (
	"errors"
	"fmt"

	"fpgapart/internal/hashutil"
	"fpgapart/internal/simtrace"
	"fpgapart/workload"
)

// Format selects how the partitioner lays out its output (Section 4.5).
type Format int

const (
	// HIST: a first pass over the relation builds a histogram in BRAM; a
	// second pass writes tuples using the prefix sum. Minimal intermediate
	// memory and robust against any skew, at the cost of reading the data
	// twice.
	HIST Format = iota
	// PAD: every partition is preassigned a fixed, padded size and the data
	// is partitioned in a single pass. If any partition overflows its
	// preassigned space the run aborts (ErrPartitionOverflow) and the caller
	// falls back to a CPU partitioner.
	PAD
)

func (f Format) String() string {
	switch f {
	case HIST:
		return "HIST"
	case PAD:
		return "PAD"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Layout selects the input layout mode (Section 4.5).
type Layout int

const (
	// RID: tuples reside in memory as <key, payload> records.
	RID Layout = iota
	// VRID: column-store mode — the circuit reads only the key array and
	// appends a 4-byte virtual record ID on the FPGA, forming <4B key,
	// 4B VRID> output tuples. Halves the read traffic.
	VRID
)

func (l Layout) String() string {
	switch l {
	case RID:
		return "RID"
	case VRID:
		return "VRID"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ErrPartitionOverflow is returned by a PAD-mode run when a partition
// outgrows its preassigned padded size. The paper's system falls back to a
// CPU partitioner when this happens (Section 4.5); the partition package
// implements that fallback.
var ErrPartitionOverflow = errors.New("core: partition overflowed its padded size (PAD mode)")

// DefaultDummyKey fills the unused slots of partially filled cache lines
// during the flush (Section 4.2). Software consuming the partitions skips
// tuples bearing this key, so it must not occur in the data; the paper's key
// distributions (linear from 1, C rand() below 2^31, grid bytes in 1..128)
// all avoid 0xFFFFFFFF.
const DefaultDummyKey uint32 = 0xFFFFFFFF

// Config describes one partitioner circuit configuration. The zero value is
// not valid; use Validate (or the partition package, which fills defaults).
type Config struct {
	// NumPartitions is the fan-out; must be a power of two (the partition
	// index is the low bits of the hashed key).
	NumPartitions int

	// TupleWidth is the input tuple width in bytes: 8, 16, 32 or 64.
	// In VRID mode the circuit reads bare 4-byte keys and always emits
	// 8-byte <key, VRID> tuples, so TupleWidth must be 8.
	TupleWidth int

	// Hash selects murmur hashing; false selects radix bits (Code 3's
	// do_hash flag). On the FPGA the choice does not affect throughput.
	Hash bool

	Format Format
	Layout Layout

	// PadFraction is PAD mode's per-partition headroom: each partition is
	// sized ceil(N/P · (1+PadFraction)) tuples, rounded up to cache lines.
	PadFraction float64

	// DummyKey overrides DefaultDummyKey when nonzero-configured via
	// SetDummyKey; see DummyKeyValue.
	DummyKey *uint32

	// Stage1FIFODepth is the per-lane FIFO between hash module and write
	// combiner; OutFIFODepth is each combiner's output FIFO (Figure 5).
	Stage1FIFODepth int
	OutFIFODepth    int

	// DisableForwarding removes the forwarding registers of Code 4: the
	// write combiner must then stall for the fill-rate BRAM's read latency
	// whenever consecutive tuples hit the same partition. Ablation only.
	DisableForwarding bool

	// DisableWriteCombiner models the strawman of Section 4.2: every tuple
	// triggers a read-modify-write of its destination cache line, inflating
	// memory traffic 16×. Ablation only — output is still produced via the
	// combiner datapath, but the QPI accounting charges the naive traffic.
	DisableWriteCombiner bool

	// Trace attaches a simtrace session: the run reports its counters and
	// gauges into Trace.Metrics, and emits phase spans plus windowed
	// counter samples (every Trace.Window() cycles) into Trace.Tracer.
	// Successive runs on the same circuit accumulate into the session and
	// lay out sequentially on its timeline. Nil disables all tracing; the
	// per-cycle cost is then a single nil check and zero allocations.
	Trace *simtrace.Session
}

// DummyKeyValue returns the configured dummy key.
func (c *Config) DummyKeyValue() uint32 {
	if c.DummyKey != nil {
		return *c.DummyKey
	}
	return DefaultDummyKey
}

// RadixBits returns log2(NumPartitions).
func (c *Config) RadixBits() uint { return hashutil.Log2(c.NumPartitions) }

// Lanes returns the number of tuples the circuit handles per internal cycle:
// one cache line's worth. In VRID mode the circuit processes 8 generated
// <key, VRID> tuples per cycle, consuming half an input key line.
func (c *Config) Lanes() int {
	if c.Layout == VRID {
		return 8
	}
	return workload.CacheLineBytes / c.TupleWidth
}

// OutputTupleWidth returns the width of tuples in the produced partitions:
// the input width for RID, 8 bytes (<4B key, 4B VRID>) for VRID.
func (c *Config) OutputTupleWidth() int {
	if c.Layout == VRID {
		return 8
	}
	return c.TupleWidth
}

// WithDefaults returns a copy with unset tunables filled in.
func (c Config) WithDefaults() Config {
	if c.PadFraction == 0 {
		c.PadFraction = 0.15
	}
	if c.Stage1FIFODepth == 0 {
		c.Stage1FIFODepth = 16
	}
	if c.OutFIFODepth == 0 {
		c.OutFIFODepth = 8
	}
	return c
}

// Validate reports whether the configuration is one the circuit can be
// synthesized for.
func (c *Config) Validate() error {
	if !hashutil.IsPowerOfTwo(c.NumPartitions) {
		return fmt.Errorf("core: NumPartitions %d is not a power of two", c.NumPartitions)
	}
	if c.NumPartitions < 2 {
		return fmt.Errorf("core: NumPartitions %d < 2", c.NumPartitions)
	}
	switch c.TupleWidth {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("core: TupleWidth %d not in {8,16,32,64}", c.TupleWidth)
	}
	if c.Layout == VRID && c.TupleWidth != 8 {
		return fmt.Errorf("core: VRID mode emits 8-byte <key,VRID> tuples; TupleWidth must be 8, got %d", c.TupleWidth)
	}
	if c.PadFraction < 0 {
		return fmt.Errorf("core: negative PadFraction %v", c.PadFraction)
	}
	if c.Stage1FIFODepth < 8 {
		return fmt.Errorf("core: Stage1FIFODepth %d too shallow for the 5-stage hash pipeline", c.Stage1FIFODepth)
	}
	if c.OutFIFODepth < 2 {
		return fmt.Errorf("core: OutFIFODepth %d < 2", c.OutFIFODepth)
	}
	return nil
}
