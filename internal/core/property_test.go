package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fpgapart/internal/qpi"
	"fpgapart/platform"
	"fpgapart/workload"
)

// TestPropertyPartitionIsPermutation: for arbitrary inputs, modes and
// fan-outs, partition-then-reassemble is the identity on the (key, payload)
// multiset. This is the end-to-end soundness property of the whole circuit.
func TestPropertyPartitionIsPermutation(t *testing.T) {
	cfgIdx := 0
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%4000 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint32, n)
		for i := range keys {
			// Full 31-bit range; avoids only the dummy sentinel.
			keys[i] = rng.Uint32() & 0x7fffffff
		}
		rel, err := workload.FromKeys(keys, 8)
		if err != nil {
			return false
		}
		// Rotate through mode combinations deterministically.
		modes := []struct {
			f Format
			l Layout
		}{{HIST, RID}, {PAD, RID}, {HIST, VRID}, {PAD, VRID}}
		m := modes[cfgIdx%len(modes)]
		parts := []int{4, 32, 256}[cfgIdx%3]
		hash := cfgIdx%2 == 0
		cfgIdx++
		in := rel
		if m.l == VRID {
			in = rel.ToColumns()
		}
		cfg := Config{NumPartitions: parts, TupleWidth: 8, Hash: hash, Format: m.f,
			Layout: m.l, PadFraction: 4} // generous pad: tiny n is very skewed per-partition
		c, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			return false
		}
		out, stats, err := c.Partition(in)
		if err != nil {
			return false
		}
		if stats.TuplesIn != int64(n) || out.TotalTuples() != int64(n) {
			return false
		}
		// Reassemble and compare as sorted multisets of key<<32|payload.
		var got []uint64
		for p := 0; p < parts; p++ {
			out.Partition(p, func(k, pay uint32, _ []uint64) {
				if m.l == VRID {
					// payload is the VRID; map back to the original payload.
					pay = rel.Payload(int(pay))
				}
				got = append(got, uint64(k)<<32|uint64(pay))
			})
		}
		want := make([]uint64, n)
		for i, k := range keys {
			want[i] = uint64(k)<<32 | uint64(rel.Payload(i))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCountsMatchHistogram: output counts always equal the reference
// histogram, and base addresses are strictly ordered and non-overlapping.
func TestPropertyCountsMatchHistogram(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000) + 1
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() & 0x7fffffff
		}
		rel, _ := workload.FromKeys(keys, 8)
		cfg := Config{NumPartitions: 64, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
		c, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			return false
		}
		out, _, err := c.Partition(rel)
		if err != nil {
			return false
		}
		ref := referencePartitions(rel, 64, true)
		end := int64(0)
		for p := 0; p < 64; p++ {
			if out.Counts[p] != int64(len(ref[p])) {
				return false
			}
			if out.Base[p] < end {
				return false // overlapping regions
			}
			end = out.Base[p] + out.LinesUsed[p]
		}
		return end*8 <= int64(len(out.Lines))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoHazardStallsEver: for any input pattern, the forwarding
// design never takes a hazard stall — the paper's "no internal stalls or
// locks ... regardless of input type".
func TestPropertyNoHazardStallsEver(t *testing.T) {
	f := func(seed int64, skewed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000) + 100
		keys := make([]uint32, n)
		for i := range keys {
			if skewed {
				keys[i] = uint32(rng.Intn(3)) // pathological: 3 partitions
			} else {
				keys[i] = rng.Uint32() & 0x7fffffff
			}
		}
		rel, _ := workload.FromKeys(keys, 8)
		cfg := Config{NumPartitions: 32, TupleWidth: 8, Hash: false, Format: HIST, Layout: RID}
		c, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			return false
		}
		_, stats, err := c.Partition(rel)
		return err == nil && stats.StallsHazard == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPartitionIndexStableAcrossModes: the same key always lands in
// the same partition regardless of format/layout, so partitioned joins can
// pair R and S partitions produced by different modes.
func TestPropertyPartitionIndexStableAcrossModes(t *testing.T) {
	keys := make([]uint32, 2000)
	rng := rand.New(rand.NewSource(77))
	for i := range keys {
		keys[i] = rng.Uint32() & 0x7fffffff
	}
	rel, _ := workload.FromKeys(keys, 8)
	col := rel.ToColumns()
	locate := func(out *Output) map[uint32]int {
		m := make(map[uint32]int)
		for p := 0; p < out.NumPartitions; p++ {
			out.Partition(p, func(k, _ uint32, _ []uint64) { m[k] = p })
		}
		return m
	}
	var maps []map[uint32]int
	for _, mc := range []struct {
		f Format
		l Layout
	}{{HIST, RID}, {PAD, RID}, {HIST, VRID}, {PAD, VRID}} {
		in := rel
		if mc.l == VRID {
			in = col
		}
		cfg := Config{NumPartitions: 128, TupleWidth: 8, Hash: true, Format: mc.f, Layout: mc.l, PadFraction: 1}
		c, err := NewCircuit(cfg, 200e6, testCurve())
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := c.Partition(in)
		if err != nil {
			t.Fatal(err)
		}
		maps = append(maps, locate(out))
	}
	for k, p := range maps[0] {
		for i := 1; i < len(maps); i++ {
			if maps[i][k] != p {
				t.Fatalf("key %#x in partition %d under mode 0 but %d under mode %d", k, p, maps[i][k], i)
			}
		}
	}
}

// TestCoherenceOwnership: the output buffer must be FPGA-owned after a run —
// the state that triggers Table 1's snoop penalty for the CPU consumer.
func TestCoherenceOwnership(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 5000, 31)
	cfg := Config{NumPartitions: 32, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}
	c, err := NewCircuit(cfg, 200e6, platform.XeonFPGA().FPGAAlone)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := c.Partition(rel)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || stats.LinesWritten == 0 {
		t.Fatal("no output written")
	}
	// The run tracks ownership internally via memsys; LinesWritten lines
	// were marked. (Direct region access is exercised via run.Region in the
	// white-box test below.)
}

// TestRunRegionOwnership is a white-box check that the simulator marks its
// output lines as FPGA-written in the memsys region.
func TestRunRegionOwnership(t *testing.T) {
	rel := genRelation(t, workload.Random, 8, 4096, 37)
	ep, err := qpi.New(200e6, testCurve())
	if err != nil {
		t.Fatal(err)
	}
	r := &run{
		cfg:   Config{NumPartitions: 32, TupleWidth: 8, Hash: true, Format: HIST, Layout: RID}.WithDefaults(),
		rel:   rel,
		ep:    ep,
		clock: 200e6,
		stats: &Stats{},
	}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	if err := r.execute(); err != nil {
		t.Fatal(err)
	}
	region := r.Region()
	if region == nil {
		t.Fatal("no memsys region allocated")
	}
	_, fpgaLines := region.OwnerCounts()
	if int64(fpgaLines) != r.stats.LinesWritten {
		t.Errorf("FPGA-owned lines = %d, LinesWritten = %d", fpgaLines, r.stats.LinesWritten)
	}
}
