package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ErrHygiene enforces the project's error-flow contract: errors crossing
// package boundaries are wrapped with %w (so sentinel comparison works
// through the chain), sentinels are tested with errors.Is, and error strings
// are never matched textually. It flags:
//
//   - fmt.Errorf formatting an error value with %v/%s/%q instead of %w,
//   - string matching on err.Error() (strings.Contains and friends, or
//     direct ==/!= comparison against a literal),
//   - ==/!= comparison of two error values (use errors.Is; == breaks as
//     soon as any layer wraps the sentinel).
type ErrHygiene struct{}

// NewErrHygiene returns the analyzer.
func NewErrHygiene() *ErrHygiene { return &ErrHygiene{} }

func (*ErrHygiene) Name() string { return "error-hygiene" }

func (*ErrHygiene) Doc() string {
	return "boundary errors are wrapped with %w and matched with errors.Is, never compared as strings"
}

// stringMatchFuncs are the strings-package predicates that textually match
// error messages.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Count": true,
}

// Check implements Analyzer.
func (e *ErrHygiene) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				out = append(out, e.checkErrorf(pkg, n)...)
				out = append(out, e.checkStringMatch(pkg, n)...)
			case *ast.BinaryExpr:
				out = append(out, e.checkComparison(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// checkErrorf flags fmt.Errorf("... %v ...", err).
func (e *ErrHygiene) checkErrorf(pkg *Package, call *ast.CallExpr) []Finding {
	obj := pkg.objectOf(call.Fun)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil
	}
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) > len(call.Args)-1 {
		return nil // dynamic width/indexed verbs or vararg slice: skip
	}
	var out []Finding
	for i, verb := range verbs {
		if verb != 'v' && verb != 's' && verb != 'q' {
			continue
		}
		arg := call.Args[1+i]
		if implementsError(pkg.Info.TypeOf(arg)) {
			out = append(out, pkg.findingNode(e.Name(), arg,
				"error formatted with %%%c — wrap boundary errors with %%w so callers can errors.Is/errors.As through the chain", verb))
		}
	}
	return out
}

// formatVerbs returns the verb letter for each argument-consuming verb of a
// format string, in order. ok is false when the format uses dynamic widths
// (*) or explicit argument indexes ([n]), which this simple scanner does not
// model.
func formatVerbs(format string) (verbs []rune, ok bool) {
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(runes) {
			c := runes[i]
			if c == '*' || c == '[' {
				return nil, false
			}
			if c == '#' || c == '0' || c == '-' || c == ' ' || c == '+' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		verbs = append(verbs, runes[i])
	}
	return verbs, true
}

// errorStringCall reports whether expr is err.Error() on an error value.
func errorStringCall(pkg *Package, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return implementsError(pkg.Info.TypeOf(sel.X))
}

// checkStringMatch flags strings.Contains(err.Error(), ...) and friends.
func (e *ErrHygiene) checkStringMatch(pkg *Package, call *ast.CallExpr) []Finding {
	obj := pkg.objectOf(call.Fun)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "strings" || !stringMatchFuncs[obj.Name()] {
		return nil
	}
	for _, arg := range call.Args {
		if errorStringCall(pkg, arg) {
			f := pkg.findingNode(e.Name(), call,
				"strings.%s on err.Error() matches error text — compare sentinels with errors.Is (or errors.As for typed errors)", obj.Name())
			return []Finding{f}
		}
	}
	return nil
}

// checkComparison flags err.Error() ==/!= ... and err ==/!= sentinel.
func (e *ErrHygiene) checkComparison(pkg *Package, bin *ast.BinaryExpr) []Finding {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return nil
	}
	if errorStringCall(pkg, bin.X) || errorStringCall(pkg, bin.Y) {
		return []Finding{pkg.findingNode(e.Name(), bin,
			"comparing err.Error() text — compare sentinels with errors.Is instead of matching message strings")}
	}
	if isNil(pkg, bin.X) || isNil(pkg, bin.Y) {
		return nil
	}
	if implementsError(pkg.Info.TypeOf(bin.X)) && implementsError(pkg.Info.TypeOf(bin.Y)) {
		return []Finding{pkg.findingNode(e.Name(), bin,
			"comparing error values with %s — use errors.Is so the check survives %%w wrapping", bin.Op)}
	}
	return nil
}

// isNil reports whether expr is the predeclared nil.
func isNil(pkg *Package, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	return pkg.Info.Uses[id] == types.Universe.Lookup("nil")
}
