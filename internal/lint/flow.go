package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the value-flow ("taint") half of the analysis engine: a
// lightweight intra-procedural dataflow pass plus inter-procedural function
// summaries, built for one job — proving that values from a configured
// source set (the host clock, environment, host meters) can never reach a
// configured sink set (gated metrics, BENCH writers, virtual-time fields).
//
// The design trades precision for predictability:
//
//   - Taint is tracked per local variable as a bitmask: bit 0 means "tainted
//     by a real source", bits 1..62 mean "depends on parameter i". The
//     parameter bits are what make summaries composable: a function whose
//     return mask carries a parameter bit propagates its callers' taint, and
//     a function that passes parameter i into a sink turns every call site
//     with a tainted i-th argument into a finding.
//   - One level of field sensitivity: a composite literal or field write
//     taints only that field of the assigned variable, so a struct carrying
//     one host-derived field (joincore.Result.Elapsed) does not poison its
//     sibling deterministic fields (Matches, Checksum). Deeper nesting
//     collapses to whole-value taint.
//   - Function literals are analyzed inline as part of their enclosing
//     function, sharing its variable state (closures capture by reference,
//     so this is the faithful model).
//   - The inter-procedural fixpoint iterates summaries to convergence in
//     deterministic node order; reflection and dynamic dispatch through
//     foreign interfaces are not tracked (DESIGN.md §14).

// taint is a bitmask: bit 0 = source-tainted, bit i+1 = flows from param i.
type taint uint64

const taintSrc taint = 1

func paramBit(i int) taint {
	if i >= 62 {
		return 0 // parameter lists beyond 62 entries lose precision, not soundness for sources
	}
	return taint(2) << uint(i)
}

func (t taint) src() bool      { return t&taintSrc != 0 }
func (t taint) anyParam() bool { return t&^taintSrc != 0 }
func (t taint) params() []int {
	var out []int
	for i := 0; i < 62; i++ {
		if t&paramBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// TaintSpec configures one taint analysis.
type TaintSpec struct {
	// SourceCall reports whether a call to fn yields tainted results; desc
	// names the source class for finding messages ("time.Now", "host meter").
	SourceCall func(fn *types.Func) (desc string, ok bool)
	// SourceType reports whether values of type t are tainted at rest
	// (e.g. perfbench.HostSample).
	SourceType func(t types.Type) (desc string, ok bool)
	// SinkCall reports whether argument i (receiver counts as argument 0,
	// explicit arguments follow) of a call to fn is a sink.
	SinkCall func(fn *types.Func, i int) (desc string, ok bool)
	// SinkField reports whether a write to struct field f is a sink.
	SinkField func(f *types.Var) (desc string, ok bool)
}

// flowSummary is one function's inter-procedural behavior.
type flowSummary struct {
	// ret is the taint mask of the function's results (whole-value).
	ret taint
	// retFields carries one level of per-field result taint for functions
	// returning a struct (or pointer to struct) built locally.
	retFields map[string]taint
	// retDesc names the source class behind ret's source bit.
	retDesc string
	// paramSink[i] is non-"" when argument i flows into a sink inside the
	// function (directly or transitively).
	paramSink map[int]string
}

// flowFinding is one source-to-sink flow, reported at the sink site.
type flowFinding struct {
	site     ast.Node
	pkg      *Package
	srcDesc  string
	sinkDesc string
}

// flowEngine runs one TaintSpec over a call graph.
type flowEngine struct {
	spec      TaintSpec
	graph     *CallGraph
	summaries map[*types.Func]*flowSummary
	findings  []flowFinding
	// report toggles finding emission: false during fixpoint passes, true
	// on the final pass.
	report bool
}

// runTaint computes summaries to fixpoint, then reports every
// source-to-sink flow in the loaded packages.
func runTaint(spec TaintSpec, graph *CallGraph) []flowFinding {
	e := &flowEngine{spec: spec, graph: graph, summaries: map[*types.Func]*flowSummary{}}
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, n := range graph.Nodes() {
			if e.analyze(n) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	e.report = true
	for _, n := range graph.Nodes() {
		e.analyze(n)
	}
	return e.findings
}

// funcState is the per-function dataflow state.
type funcState struct {
	e   *flowEngine
	n   *Node
	pkg *Package
	// vars maps a local variable to its whole-value taint mask.
	vars map[*types.Var]taint
	// fields maps a local variable to per-field taint (one level deep).
	fields map[*types.Var]map[string]taint
	// params maps a parameter (receiver included) to its argument index.
	params map[*types.Var]int
	// summary under construction.
	sum *flowSummary
}

// analyze recomputes n's summary, reporting findings when e.report is set.
// It returns whether the summary changed.
func (e *flowEngine) analyze(n *Node) bool {
	st := &funcState{
		e:      e,
		n:      n,
		pkg:    n.Pkg,
		vars:   map[*types.Var]taint{},
		fields: map[*types.Var]map[string]taint{},
		params: map[*types.Var]int{},
		sum:    &flowSummary{retFields: map[string]taint{}, paramSink: map[int]string{}},
	}
	st.bindParams()

	// Iterate the body to a local fixpoint: loops can carry taint backward
	// (x tainted on iteration 1 flows into y read on iteration 2).
	for pass := 0; pass < 8; pass++ {
		if !st.walk(false) {
			break
		}
	}
	st.walk(e.report) // sink pass

	old := e.summaries[n.Fn]
	e.summaries[n.Fn] = st.sum
	return old == nil || !old.equal(st.sum)
}

func (s *flowSummary) equal(o *flowSummary) bool {
	if s.ret != o.ret || s.retDesc != o.retDesc ||
		len(s.retFields) != len(o.retFields) || len(s.paramSink) != len(o.paramSink) {
		return false
	}
	for k, v := range s.retFields {
		if o.retFields[k] != v {
			return false
		}
	}
	for k, v := range s.paramSink {
		if o.paramSink[k] != v {
			return false
		}
	}
	return true
}

// bindParams assigns argument indexes: receiver first, then parameters.
func (st *funcState) bindParams() {
	if _, ok := st.n.Fn.Type().(*types.Signature); !ok {
		return
	}
	// Bind by Defs so the *types.Var matches identifier uses in the body.
	if st.n.Decl.Recv != nil {
		for _, f := range st.n.Decl.Recv.List {
			for _, name := range f.Names {
				if v, ok := st.pkg.Info.Defs[name].(*types.Var); ok {
					st.params[v] = 0
				}
			}
		}
	}
	if st.n.Decl.Type.Params != nil {
		// Argument slot 0 is always the receiver (callArgs prepends a nil
		// placeholder for plain calls), so parameters start at 1 for
		// functions and methods alike.
		base := 1
		i := 0
		for _, f := range st.n.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, name := range f.Names {
				if v, ok := st.pkg.Info.Defs[name].(*types.Var); ok {
					st.params[v] = base + i
				}
				i++
			}
		}
	}
}

// walk runs one pass over the body. When report is set, sink hits with a
// source bit become findings (param bits become paramSink summary entries in
// every pass). It returns whether any variable's taint grew.
func (st *funcState) walk(report bool) bool {
	changed := false
	taintVar := func(v *types.Var, t taint) {
		if t == 0 {
			return
		}
		if st.vars[v]&t != t {
			st.vars[v] |= t
			changed = true
		}
	}
	taintField := func(v *types.Var, field string, t taint) {
		if t == 0 {
			return
		}
		m := st.fields[v]
		if m == nil {
			m = map[string]taint{}
			st.fields[v] = m
		}
		if m[field]&t != t {
			m[field] |= t
			changed = true
		}
	}

	ast.Inspect(st.n.Decl.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.AssignStmt:
			st.assign(n, taintVar, taintField)
			st.checkAssignSinks(n, report)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, ok := st.pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if len(n.Values) == len(n.Names) {
					t, fields := st.exprTaint(n.Values[i])
					taintVar(v, t)
					for f, ft := range fields {
						taintField(v, f, ft)
					}
				} else if len(n.Values) == 1 {
					t, _ := st.exprTaint(n.Values[0])
					taintVar(v, t)
				}
			}
		case *ast.RangeStmt:
			t, _ := st.exprTaint(n.X)
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := st.defOrUse(id); ok {
						taintVar(v, t)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				t, fields := st.exprTaint(res)
				if st.sum.ret|t != st.sum.ret {
					st.sum.ret |= t
					changed = true
				}
				if t.src() && st.sum.retDesc == "" {
					st.sum.retDesc = st.descOf(res)
				}
				for f, ft := range fields {
					if st.sum.retFields[f]|ft != st.sum.retFields[f] {
						st.sum.retFields[f] |= ft
						changed = true
					}
				}
			}
		case *ast.CallExpr:
			st.checkCallSinks(n, report)
		case *ast.CompositeLit:
			st.checkCompositeSinks(n, report)
		}
		return true
	})
	return changed
}

// assign propagates taint through one assignment statement.
func (st *funcState) assign(n *ast.AssignStmt, taintVar func(*types.Var, taint), taintField func(*types.Var, string, taint)) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			t, fields := st.exprTaint(n.Rhs[i])
			st.assignTo(lhs, t, fields, taintVar, taintField)
		}
		return
	}
	// Multi-value: x, y := f() — every lhs gets the call's whole taint.
	if len(n.Rhs) == 1 {
		t, _ := st.exprTaint(n.Rhs[0])
		for _, lhs := range n.Lhs {
			st.assignTo(lhs, t, nil, taintVar, taintField)
		}
	}
}

// assignTo routes taint into an assignment target: plain variables take the
// whole mask plus field detail; x.f writes take field-level taint; other
// targets (index expressions, dereferences) taint the root variable.
func (st *funcState) assignTo(lhs ast.Expr, t taint, fields map[string]taint, taintVar func(*types.Var, taint), taintField func(*types.Var, string, taint)) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := st.defOrUse(l); ok {
			taintVar(v, t)
			for f, ft := range fields {
				taintField(v, f, ft)
			}
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := st.defOrUse(id); ok {
				taintField(v, l.Sel.Name, t)
				return
			}
		}
		// Unrooted field write: fall back to tainting nothing (the value
		// escapes into a structure this pass does not model).
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := st.defOrUse(id); ok {
				taintVar(v, t)
			}
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := st.defOrUse(id); ok {
				taintVar(v, t)
			}
		}
	}
}

// defOrUse resolves an identifier to the variable it defines or uses.
func (st *funcState) defOrUse(id *ast.Ident) (*types.Var, bool) {
	if v, ok := st.pkg.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := st.pkg.Info.Uses[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// descOf names the source class of a tainted expression for messages. The
// engine does not track per-variable descriptions, so this searches the
// expression subtree for a source call (time.Now().UnixNano() → "time.Now"),
// consults callee summaries (elapsed() whose return is host time carries its
// retDesc), and otherwise falls back to a generic label.
func (st *funcState) descOf(e ast.Expr) string {
	if st.e.spec.SourceType != nil {
		if t := st.pkg.Info.TypeOf(e); t != nil {
			if d, ok := st.e.spec.SourceType(t); ok {
				return d
			}
		}
	}
	desc := ""
	ast.Inspect(e, func(node ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := st.pkg.objectOf(call.Fun).(*types.Func)
		if !ok {
			return true
		}
		if st.e.spec.SourceCall != nil {
			if d, ok := st.e.spec.SourceCall(fn.Origin()); ok {
				desc = d
				return false
			}
		}
		if sum := st.e.summaries[fn.Origin()]; sum != nil && sum.ret.src() && sum.retDesc != "" {
			desc = sum.retDesc
			return false
		}
		return true
	})
	if desc != "" {
		return desc
	}
	return "host-derived value"
}

// exprTaint computes the taint mask of an expression, plus one level of
// per-field taint for composite literals and variables with field detail.
func (st *funcState) exprTaint(e ast.Expr) (taint, map[string]taint) {
	if e == nil {
		return 0, nil
	}
	// Type-level sources taint every expression of the type.
	if st.e.spec.SourceType != nil {
		if t := st.pkg.Info.TypeOf(e); t != nil {
			if _, ok := st.e.spec.SourceType(t); ok {
				return taintSrc, nil
			}
		}
	}
	switch n := e.(type) {
	case *ast.Ident:
		if v, ok := st.defOrUse(n); ok {
			t := st.vars[v]
			if p, isParam := st.params[v]; isParam {
				t |= paramBit(p)
			}
			return t, st.fields[v]
		}
		return 0, nil
	case *ast.SelectorExpr:
		// x.f: field-level taint when tracked, else the root's whole taint.
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if v, ok := st.defOrUse(id); ok {
				t := st.vars[v]
				if p, isParam := st.params[v]; isParam {
					t |= paramBit(p)
				}
				if m := st.fields[v]; m != nil {
					return t | m[n.Sel.Name], nil
				}
				return t, nil
			}
		}
		t, _ := st.exprTaint(n.X)
		return t, nil
	case *ast.CallExpr:
		return st.callTaint(n)
	case *ast.CompositeLit:
		var whole taint
		fields := map[string]taint{}
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t, _ := st.exprTaint(kv.Value)
				if key, ok := kv.Key.(*ast.Ident); ok {
					fields[key.Name] |= t
				} else {
					whole |= t
				}
				continue
			}
			t, _ := st.exprTaint(el)
			whole |= t
		}
		if len(fields) == 0 {
			fields = nil
		}
		return whole, fields
	case *ast.UnaryExpr:
		t, f := st.exprTaint(n.X)
		return t, f
	case *ast.StarExpr:
		t, f := st.exprTaint(n.X)
		return t, f
	case *ast.ParenExpr:
		return st.exprTaint(n.X)
	case *ast.BinaryExpr:
		tx, _ := st.exprTaint(n.X)
		ty, _ := st.exprTaint(n.Y)
		return tx | ty, nil
	case *ast.IndexExpr:
		t, _ := st.exprTaint(n.X)
		return t, nil
	case *ast.SliceExpr:
		t, _ := st.exprTaint(n.X)
		return t, nil
	case *ast.TypeAssertExpr:
		t, _ := st.exprTaint(n.X)
		return t, nil
	case *ast.FuncLit:
		return 0, nil
	}
	return 0, nil
}

// callTaint computes the taint of a call's results — source calls, summary
// propagation, type conversions — plus the callee's per-field result taint
// translated into this call site's terms.
func (st *funcState) callTaint(call *ast.CallExpr) (taint, map[string]taint) {
	// Conversion T(x) carries x's taint.
	if tv, ok := st.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			t, f := st.exprTaint(call.Args[0])
			return t, f
		}
		return 0, nil
	}
	obj := st.pkg.objectOf(call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok {
		// Builtins and calls through function-typed values: fold argument
		// taint (len/cap/append of tainted data stay tainted).
		var t taint
		for _, a := range call.Args {
			at, _ := st.exprTaint(a)
			t |= at
		}
		return t, nil
	}
	fn = fn.Origin()
	if st.e.spec.SourceCall != nil {
		if _, ok := st.e.spec.SourceCall(fn); ok {
			return taintSrc, nil
		}
	}
	sum := st.e.summaries[fn]
	if sum == nil {
		// Unknown body (standard library, unloaded package): conservatively
		// carry receiver and argument taint through the call, so
		// time.Now().UnixNano() and d.Microseconds() stay tainted.
		var t taint
		for _, a := range st.callArgs(call) {
			if a == nil {
				continue
			}
			at, _ := st.exprTaint(a)
			t |= at
		}
		return t, nil
	}
	// resolve translates a summary mask into caller terms: the source bit
	// passes through, parameter bits pull in the matching argument's taint.
	args := st.callArgs(call)
	resolve := func(mask taint) taint {
		t := mask & taintSrc
		if mask.anyParam() {
			for i, arg := range args {
				if paramUsed(mask, i) {
					at, _ := st.exprTaint(arg)
					t |= at
				}
			}
		}
		return t
	}
	t := resolve(sum.ret)
	var fields map[string]taint
	for f, mask := range sum.retFields {
		if ft := resolve(mask); ft != 0 {
			if fields == nil {
				fields = map[string]taint{}
			}
			fields[f] = ft
		}
	}
	return t, fields
}

// paramUsed reports whether mask depends on argument index i.
func paramUsed(mask taint, i int) bool { return mask&paramBit(i) != 0 }

// callArgs returns the call's effective argument list with the receiver (if
// any) prepended as argument 0, mirroring summary parameter indexes.
func (st *funcState) callArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := st.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return append([]ast.Expr{nil}, call.Args...)
}

// checkCallSinks reports tainted arguments reaching sink calls (directly
// configured, or via a callee's paramSink summary).
func (st *funcState) checkCallSinks(call *ast.CallExpr, report bool) {
	obj := st.pkg.objectOf(call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	fn = fn.Origin()
	sum := st.e.summaries[fn]
	for i, arg := range st.callArgs(call) {
		if arg == nil {
			continue
		}
		var sinkDesc string
		if st.e.spec.SinkCall != nil {
			if d, ok := st.e.spec.SinkCall(fn, i); ok {
				sinkDesc = d
			}
		}
		if sinkDesc == "" && sum != nil {
			sinkDesc = sum.paramSink[i]
		}
		if sinkDesc == "" {
			continue
		}
		t, _ := st.exprTaint(arg)
		if t.src() && report {
			st.e.findings = append(st.e.findings, flowFinding{
				site: call, pkg: st.pkg, srcDesc: st.descOf(arg), sinkDesc: sinkDesc,
			})
		}
		for _, p := range t.params() {
			if st.sum.paramSink[p] == "" {
				st.sum.paramSink[p] = sinkDesc
			}
		}
	}
}

// checkCompositeSinks reports tainted values written into sink fields via
// composite literals (Record{Gated: tainted}).
func (st *funcState) checkCompositeSinks(lit *ast.CompositeLit, report bool) {
	if st.e.spec.SinkField == nil {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fv, ok := st.pkg.Info.Uses[key].(*types.Var)
		if !ok || !fv.IsField() {
			continue
		}
		desc, ok := st.e.spec.SinkField(fv)
		if !ok {
			continue
		}
		t, _ := st.exprTaint(kv.Value)
		if t.src() && report {
			st.e.findings = append(st.e.findings, flowFinding{
				site: kv, pkg: st.pkg, srcDesc: st.descOf(kv.Value), sinkDesc: desc,
			})
		}
		for _, p := range t.params() {
			if st.sum.paramSink[p] == "" {
				st.sum.paramSink[p] = desc
			}
		}
	}
}

// checkAssignSinks reports tainted x.f = v writes into sink fields.
func (st *funcState) checkAssignSinks(n *ast.AssignStmt, report bool) {
	if st.e.spec.SinkField == nil {
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fv, ok := st.pkg.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !fv.IsField() {
			continue
		}
		desc, ok := st.e.spec.SinkField(fv)
		if !ok {
			continue
		}
		t, _ := st.exprTaint(n.Rhs[i])
		if t.src() && report {
			st.e.findings = append(st.e.findings, flowFinding{
				site: n, pkg: st.pkg, srcDesc: st.descOf(n.Rhs[i]), sinkDesc: desc,
			})
		}
		for _, p := range t.params() {
			if st.sum.paramSink[p] == "" {
				st.sum.paramSink[p] = desc
			}
		}
	}
}

// position helpers shared by flow-based analyzers.
func (f flowFinding) finding(analyzer string) Finding {
	pos := f.pkg.Fset.Position(f.site.Pos())
	end := f.pkg.Fset.Position(f.site.End())
	return Finding{
		Pos:      pos,
		End:      end,
		Analyzer: analyzer,
		Message:  fmt.Sprintf("%s flows into %s — host-derived values must never reach the deterministic/gated path", f.srcDesc, f.sinkDesc),
	}
}
