// Package lint is fpgavet's analysis engine: a small, stdlib-only
// (go/parser + go/ast + go/types) static-analysis framework plus the
// project's analyzers. The analyzers machine-check the invariants this
// reproduction depends on but the compiler cannot see:
//
//   - determinism — the cycle simulator and the fault-tolerant exchange must
//     be bit-for-bit reproducible, so packages on the deterministic path may
//     not read the wall clock, draw from the unseeded global math/rand
//     source, or range over maps (Go randomizes map iteration order; the
//     multiset-checksum comparisons in partition/distjoin would still pass
//     while per-run traces, counters and timings silently diverge).
//   - panic-boundary — invariant violations inside internal/* panic; the
//     public partition/distjoin APIs must convert those panics into errors
//     wrapping ErrSimulatorFault before they cross an exported function.
//   - error-hygiene — errors crossing package boundaries are wrapped with %w
//     and tested with errors.Is, never matched as strings.
//   - clocked-component — types with a Tick/Cycle method live in simulated
//     time: they must not hold time.Time/time.Duration state, read the host
//     clock, or spawn goroutines inside a tick.
//   - bench-json — packages that write gated BENCH/golden reports must emit
//     them through the simtrace field-by-field writers; encoding/json's
//     reflective marshal side is banned there so the byte layout (and with
//     it the zero-noise perf gate) stays pinned.
//
// A finding can be suppressed by an explicit escape hatch — a comment of the
// form
//
//	//fpgavet:allow <analyzer>[,<analyzer>...] [reason]
//
// (or //fpgavet:allow * for every analyzer) placed on the offending line or
// on the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos token.Position
	// End is the position just past the offending node, when known. It lets
	// the //fpgavet:allow escape hatch match any line a multi-line statement
	// spans, not just the first. A zero End means the finding covers only
	// Pos's line.
	End      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers and terminals expect
// (file:line:col, clickable in most terminal emulators).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one type-checked package under analysis.
type Package struct {
	// Path is the import path (e.g. fpgapart/internal/core). Fixture
	// packages in tests may carry a synthetic path to opt into path-scoped
	// analyzers.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one checkable rule set.
type Analyzer interface {
	// Name is the analyzer's short identifier, used in output and in
	// //fpgavet:allow comments.
	Name() string
	// Doc is a one-line description, shown by `fpgavet -list`.
	Doc() string
	// Check returns the analyzer's findings for pkg. Implementations do not
	// apply allow-comment suppression; Run does.
	Check(pkg *Package) []Finding
}

// Module bundles the whole loaded package set with the call graph built
// over it — the input to module-level analyzers.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph
}

// ModuleAnalyzer is an analyzer that needs the whole module at once (the
// call-graph and taint analyzers). Its Check method is never called; Run
// invokes CheckModule exactly once over all packages.
type ModuleAnalyzer interface {
	Analyzer
	CheckModule(mod *Module) []Finding
}

// All returns the project's full analyzer set with default configuration:
// determinism, boundary-reach, error-hygiene, clocked-component,
// bench-json, hosttime-taint and hotpath-alloc. boundary-reach supersedes
// PR 2's per-package panic-boundary analyzer (kept in-tree only as the
// baseline its regression tests diff against).
func All() []Analyzer {
	return []Analyzer{
		DefaultDeterminism(),
		DefaultBoundaryReach(),
		NewErrHygiene(),
		NewClocked(),
		DefaultBenchJSON(),
		DefaultHostTimeTaint(),
		DefaultHotpathAlloc(),
	}
}

// Run applies every analyzer to every package (module analyzers once over
// the whole set), drops suppressed findings, and returns the rest sorted by
// position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	allowed := allows{}
	for _, pkg := range pkgs {
		allowed.merge(allowTable(pkg))
	}

	var mod *Module
	module := func() *Module {
		if mod == nil {
			mod = &Module{Pkgs: pkgs, Graph: BuildCallGraph(pkgs)}
		}
		return mod
	}

	var out []Finding
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			for _, f := range ma.CheckModule(module()) {
				if allowed.allows(f) {
					continue
				}
				out = append(out, f)
			}
			continue
		}
		for _, pkg := range pkgs {
			for _, f := range a.Check(pkg) {
				if allowed.allows(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowMarker is the escape-hatch comment prefix.
const allowMarker = "fpgavet:allow"

// allows maps filename → line → set of allowed analyzer names ("*" = all).
type allows map[string]map[int]map[string]bool

// allows reports whether a marker suppresses f. A marker matches on the
// line above the finding or on ANY line the offending node spans (Pos.Line
// through End.Line) — multi-line statements accept the marker on their
// closing line, where gofmt tends to leave room for it.
func (t allows) allows(f Finding) bool {
	lines := t[f.Pos.Filename]
	if lines == nil {
		return false
	}
	last := f.End.Line
	if f.End.Filename != f.Pos.Filename || last < f.Pos.Line {
		last = f.Pos.Line
	}
	for line := f.Pos.Line - 1; line <= last; line++ {
		if set := lines[line]; set != nil && (set["*"] || set[f.Analyzer]) {
			return true
		}
	}
	return false
}

// merge folds another table into t.
func (t allows) merge(o allows) {
	for file, lines := range o {
		if t[file] == nil {
			t[file] = lines
			continue
		}
		for line, set := range lines {
			if t[file][line] == nil {
				t[file][line] = set
				continue
			}
			for name := range set {
				t[file][line][name] = true
			}
		}
	}
}

// allowTable collects every //fpgavet:allow comment in the package.
func allowTable(pkg *Package) allows {
	t := allows{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := t[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					t[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						set[name] = true
					}
				}
			}
		}
	}
	return t
}

// finding builds a Finding at a node's position.
func (pkg *Package) finding(analyzer string, pos token.Pos, format string, args ...interface{}) Finding {
	return Finding{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// findingNode builds a Finding spanning a whole node, so //fpgavet:allow
// markers match any line of a multi-line statement.
func (pkg *Package) findingNode(analyzer string, n ast.Node, format string, args ...interface{}) Finding {
	f := pkg.finding(analyzer, n.Pos(), format, args...)
	f.End = pkg.Fset.Position(n.End())
	return f
}

// objectOf resolves the object a call expression's function refers to, for
// plain identifiers (local calls) and selector expressions (pkg.Func,
// recv.Method). It returns nil for anonymous functions, conversions to
// unnamed types, and other unresolvable callees.
func (pkg *Package) objectOf(fun ast.Expr) types.Object {
	switch fn := fun.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	case *ast.ParenExpr:
		return pkg.objectOf(fn.X)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return pkg.objectOf(fn.X)
	case *ast.IndexListExpr:
		return pkg.objectOf(fn.X)
	}
	return nil
}

// calleeFromPackage reports whether a call expression invokes a function or
// method belonging to a package whose import path satisfies match.
func (pkg *Package) calleeFromPackage(call *ast.CallExpr, match func(path string) bool) bool {
	obj := pkg.objectOf(call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	return match(obj.Pkg().Path())
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t's value satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType)
}

// isErrorInterface reports whether t is exactly the error interface type.
func isErrorInterface(t types.Type) bool {
	return t != nil && types.Identical(t, errorType.Underlying()) ||
		t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isRecoverCall reports whether call invokes the recover builtin.
func (pkg *Package) isRecoverCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "recover"
}
