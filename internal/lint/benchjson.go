package lint

import (
	"go/ast"
	"go/types"
)

// BenchJSON forbids reflection-driven JSON marshaling on the BENCH write
// path. The perf gate's zero-noise guarantee rests on BENCH files being
// byte-identical for a fixed seed; encoding/json's marshal side walks
// structs (and maps, in randomized-by-spec-then-sorted but
// implementation-defined ways for some shapes) via reflection and has
// changed its output formatting across Go releases. Gated reports must go
// through the simtrace field-by-field writers, whose byte layout is spelled
// out in this repo and covered by golden tests. The read path (Unmarshal,
// Decoder) is fine — parsing is not byte-layout-sensitive.
type BenchJSON struct {
	// Paths is the exact set of import paths on the BENCH write path.
	Paths map[string]bool
}

// BenchWritePathPackages are the packages that produce gated BENCH/golden
// JSON and therefore may not marshal through reflection.
var BenchWritePathPackages = []string{
	"fpgapart/internal/perfbench",
	"fpgapart/internal/simtrace",
}

// DefaultBenchJSON returns the analyzer scoped to the BENCH write path.
func DefaultBenchJSON() *BenchJSON {
	paths := make(map[string]bool, len(BenchWritePathPackages))
	for _, p := range BenchWritePathPackages {
		paths[p] = true
	}
	return &BenchJSON{Paths: paths}
}

func (*BenchJSON) Name() string { return "bench-json" }

func (*BenchJSON) Doc() string {
	return "BENCH/golden write-path packages marshal field by field, never through encoding/json reflection"
}

// marshalFuncs are the encoding/json package-level entry points that
// serialize via reflection.
var marshalFuncs = map[string]bool{
	"Marshal": true, "MarshalIndent": true, "NewEncoder": true,
}

// Check implements Analyzer.
func (b *BenchJSON) Check(pkg *Package) []Finding {
	if !b.Paths[pkg.Path] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := b.checkCall(pkg, call); f != nil {
				out = append(out, *f)
			}
			return true
		})
	}
	return out
}

func (b *BenchJSON) checkCall(pkg *Package, call *ast.CallExpr) *Finding {
	obj := pkg.objectOf(call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods: (*Encoder).Encode marshals; (*Decoder).Decode and the
		// rest of the read side do not.
		recv := sig.Recv().Type().String()
		if name == "Encode" && recv == "*encoding/json.Encoder" {
			f := pkg.findingNode(b.Name(), call,
				"json.Encoder.Encode marshals via reflection on the BENCH write path — gated reports must use the simtrace field-by-field writers so the byte layout stays pinned")
			return &f
		}
		return nil
	}
	if marshalFuncs[name] {
		f := pkg.findingNode(b.Name(), call,
			"json.%s marshals via reflection on the BENCH write path — gated reports must use the simtrace field-by-field writers so the byte layout stays pinned", name)
		return &f
	}
	return nil
}
