package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one module using only the
// standard library: module-local imports are resolved from the module
// directory, everything else (the standard library — the module has no
// third-party dependencies) through go/importer's source importer.
type Loader struct {
	Fset    *token.FileSet
	ModDir  string
	ModPath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModDir:  abs,
		ModPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule loads every package of the module (skipping testdata, vendor
// and hidden directories), sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if goSource(e) {
			return true, nil
		}
	}
	return false, nil
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// Load type-checks one module-local package by import path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModDir, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: package %s: %w", path, err)
	}
	var filenames []string
	for _, e := range ents {
		if goSource(e) {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: package %s has no Go files", path)
	}
	return l.CheckFiles(path, filenames)
}

// CheckFiles parses and type-checks an explicit file list as one package
// under the given import path. Tests use it to load fixture packages with a
// synthetic path.
func (l *Loader) CheckFiles(path string, filenames []string) (*Package, error) {
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModDir, 0)
}

// ImportFrom implements types.ImporterFrom, routing module-local paths to
// the module tree and everything else to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
