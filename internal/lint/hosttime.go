package lint

import (
	"go/types"
	"strings"
)

// HostTimeTaint is the static complement of the perf gate's "wall-clock
// jitter never fails" rule. The determinism analyzer bans host-clock READS
// inside deterministic-path packages; this analyzer bans host-derived
// VALUES from flowing into the deterministic side from anywhere in the
// module: a value originating at time.Now/Since/Until, os.Getenv, an
// unseeded math/rand draw, or a host meter (perfbench.HostSample,
// HostMeter.Measure, the hostmeter package) must never reach
//
//   - a simtrace metric mutation (Counter.Add, Gauge.Observe,
//     Histogram.Observe, Tracer.Span/Instant/Sample) — gated metrics and
//     golden traces replay byte-for-byte only if every recorded value is a
//     pure function of (code, seed);
//   - a gated snapshot (Snapshot.With, the BENCH record's Gated field) —
//     the zero-noise perf gate diffs these bytes, so host jitter here turns
//     into CI flake;
//   - virtual-time state: struct fields of deterministic-path packages
//     whose names carry simulated time or identity (…US, …Cycles,
//     …Checksum) — e.g. partserver.JobSpec.ArrivalUS.
//
// Flows are tracked by the flow.go taint engine: intra-procedurally through
// assignments, arithmetic, composites and conversions, and across calls via
// function summaries, with one level of field sensitivity (so
// joincore.Result's host-measured Elapsed does not poison its deterministic
// Matches/Checksum siblings).
type HostTimeTaint struct {
	// DetPathPrefixes scopes the virtual-time field sink: only fields of
	// structs declared in these packages count.
	DetPath map[string]bool
}

// DefaultHostTimeTaint returns the analyzer scoped to the project's
// deterministic path (the same list the determinism analyzer uses).
func DefaultHostTimeTaint() *HostTimeTaint {
	paths := make(map[string]bool, len(DeterministicPathPackages))
	for _, p := range DeterministicPathPackages {
		paths[p] = true
	}
	return &HostTimeTaint{DetPath: paths}
}

func (*HostTimeTaint) Name() string { return "hosttime-taint" }

func (*HostTimeTaint) Doc() string {
	return "host clock/env/meter values never flow into simtrace metrics, gated BENCH snapshots, or virtual-time fields"
}

// Check implements Analyzer; hosttime-taint only runs at module scope.
func (*HostTimeTaint) Check(*Package) []Finding { return nil }

// hostSourceFuncs names the wall-clock reads that RETURN host time (Sleep
// and the timer constructors are covered by the determinism analyzer; here
// only value-producing reads matter).
var hostSourceFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// envSourceFuncs are the os functions exposing ambient host state.
var envSourceFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// simtraceMutators are the metric/trace entry points whose arguments land
// in gated snapshots and golden traces: receiver type → method names.
var simtraceMutators = map[string]map[string]bool{
	"Counter":   {"Add": true},
	"Gauge":     {"Observe": true, "Set": true},
	"Histogram": {"Observe": true},
	"Tracer":    {"Span": true, "Instant": true, "Sample": true, "FlowStart": true, "FlowEnd": true},
	"Snapshot":  {"With": true},
}

// reqtraceMutators are the causal-recorder entry points whose arguments land
// in request traces, flight postmortems, and the gated reqtrace suite:
// receiver type → method names.
var reqtraceMutators = map[string]map[string]bool{
	"Recorder": {"Admit": true, "Attempt": true, "Finish": true, "Event": true},
	"Flight":   {"Record": true},
}

// CheckModule implements ModuleAnalyzer.
func (h *HostTimeTaint) CheckModule(mod *Module) []Finding {
	spec := TaintSpec{
		SourceCall: h.sourceCall,
		SourceType: h.sourceType,
		SinkCall:   h.sinkCall,
		SinkField:  h.sinkField,
	}
	var out []Finding
	for _, f := range runTaint(spec, mod.Graph) {
		out = append(out, f.finding(h.Name()))
	}
	return out
}

func (h *HostTimeTaint) sourceCall(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if sig != nil && sig.Recv() == nil && hostSourceFuncs[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "os":
		if sig != nil && sig.Recv() == nil && envSourceFuncs[fn.Name()] {
			return "os." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() == nil && !seededRandFuncs[fn.Name()] {
			return "rand." + fn.Name(), true
		}
	case "fpgapart/internal/perfbench/hostmeter":
		return "hostmeter." + fn.Name(), true
	case "fpgapart/internal/perfbench":
		// The HostMeter interface is declared on the deterministic side so
		// perfbench itself stays off the clock; a call through it is still
		// a host measurement.
		if sig != nil && sig.Recv() != nil && fn.Name() == "Measure" {
			recv := sig.Recv().Type()
			if named, ok := derefNamed(recv); ok && named.Obj().Name() == "HostMeter" {
				return "HostMeter.Measure", true
			}
		}
	}
	return "", false
}

func (h *HostTimeTaint) sourceType(t types.Type) (string, bool) {
	named, ok := derefNamed(t)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "fpgapart/internal/perfbench" && obj.Name() == "HostSample" {
		return "perfbench.HostSample", true
	}
	return "", false
}

func (h *HostTimeTaint) sinkCall(fn *types.Func, i int) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	var roster map[string]map[string]bool
	var label string
	switch fn.Pkg().Path() {
	case "fpgapart/internal/simtrace":
		roster, label = simtraceMutators, "simtrace."
	case "fpgapart/internal/reqtrace":
		roster, label = reqtraceMutators, "reqtrace."
	default:
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	named, ok := derefNamed(sig.Recv().Type())
	if !ok {
		return "", false
	}
	methods, ok := roster[named.Obj().Name()]
	if !ok || !methods[fn.Name()] {
		return "", false
	}
	if i == 0 {
		return "", false // the receiver itself carries no recorded value
	}
	return label + named.Obj().Name() + "." + fn.Name(), true
}

func (h *HostTimeTaint) sinkField(f *types.Var) (string, bool) {
	owner := fieldOwnerPath(f)
	if owner == "" {
		return "", false
	}
	if owner == "fpgapart/internal/perfbench" && f.Name() == "Gated" {
		return "the gated BENCH metric set", true
	}
	if !h.DetPath[owner] {
		return "", false
	}
	name := f.Name()
	if strings.HasSuffix(name, "US") || strings.HasSuffix(name, "Cycles") ||
		name == "Cycle" || strings.HasSuffix(name, "Checksum") {
		return "virtual-time field " + name, true
	}
	return "", false
}

// fieldOwnerPath returns the import path of the package declaring field f.
func fieldOwnerPath(f *types.Var) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// derefNamed unwraps pointers and returns the named type underneath.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
