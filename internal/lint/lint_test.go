package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader (and its type-checked standard library)
// across all tests; fixture packages get synthetic import paths so they can
// never collide with real module packages.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

// loadFixture type-checks testdata/src/<dir> under a synthetic import path.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	l := testLoader(t)
	file, err := filepath.Abs(filepath.Join("testdata", "src", dir, dir+".go"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("fpgapart/fixture/"+dir, []string{file})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// expectations parses the fixture's `// want a b c` markers into a set of
// "line analyzer" keys.
func expectations(t *testing.T, pkg *Package, analyzers map[string]bool) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, name := range strings.Fields(strings.TrimPrefix(text, "want ")) {
					if analyzers[name] {
						want[fmt.Sprintf("%d %s", line, name)] = true
					}
				}
			}
		}
	}
	return want
}

// checkFixture runs the analyzers over the fixture and compares the found
// (line, analyzer) pairs against the `// want` markers, both directions.
func checkFixture(t *testing.T, pkg *Package, analyzers []Analyzer) []Finding {
	t.Helper()
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name()] = true
	}
	want := expectations(t, pkg, names)
	findings := Run([]*Package{pkg}, analyzers)

	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%d %s", f.Pos.Line, f.Analyzer)] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("expected finding at line %s, got none", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding at line %s", key)
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %v", f)
		}
	}
	return findings
}

func TestDeterminismFixture(t *testing.T) {
	pkg := loadFixture(t, "determfix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{det, NewClocked()})

	// The acceptance-named seeded violations must be among the catches: a
	// wall-clock read inside a ticked component and an unsorted map range in
	// a checksum path.
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "rand.")
	assertFinding(t, findings, "clocked-component", "time.Now")
}

func TestDeterminismIgnoresOffPathPackages(t *testing.T) {
	pkg := loadFixture(t, "determfix")
	det := &Determinism{Paths: map[string]bool{"fpgapart/experiments": true}}
	if findings := det.Check(pkg); len(findings) != 0 {
		t.Errorf("off-path package flagged: %v", findings)
	}
}

func TestClockedFixture(t *testing.T) {
	pkg := loadFixture(t, "clockedfix")
	findings := checkFixture(t, pkg, []Analyzer{NewClocked()})
	assertFinding(t, findings, "clocked-component", "host-time state")
	assertFinding(t, findings, "clocked-component", "goroutine")
	if len(findings) < 2 {
		t.Fatalf("clocked-component caught %d violations, want ≥ 2", len(findings))
	}
}

func TestPanicBoundaryFixture(t *testing.T) {
	pkg := loadFixture(t, "panicfix")
	pb := &PanicBoundary{
		Boundary:       map[string]bool{pkg.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
	}
	findings := checkFixture(t, pkg, []Analyzer{pb})
	assertFinding(t, findings, "panic-boundary", "without a deferred recover guard")
	assertFinding(t, findings, "panic-boundary", "without wrapping ErrSimulatorFault")
	if len(findings) < 2 {
		t.Fatalf("panic-boundary caught %d violations, want ≥ 2", len(findings))
	}
}

// TestMembudgetFixture pins the memory-budget accounting to the determinism
// contract: internal/membudget joined the deterministic path in the
// budgeted-join work, and this known-bad twin shows the analyzer catches a
// wall-clock high-water stamp, map-ordered spill victims, and randomized
// admission.
func TestMembudgetFixture(t *testing.T) {
	pkg := loadFixture(t, "membudgetfix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{det})
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "rand.")
	if len(findings) < 3 {
		t.Fatalf("determinism caught %d violations in the membudget fixture, want ≥ 3", len(findings))
	}
}

// TestBudgetPackagesCovered pins the list membership the budgeted join
// relies on: membudget is on the deterministic path, and hashjoin — whose
// exported joins now reach internal/* budget machinery — is a
// panic-boundary package.
func TestBudgetPackagesCovered(t *testing.T) {
	onPath := false
	for _, p := range DeterministicPathPackages {
		if p == "fpgapart/internal/membudget" {
			onPath = true
		}
	}
	if !onPath {
		t.Error("fpgapart/internal/membudget missing from DeterministicPathPackages")
	}
	if !DefaultPanicBoundary().Boundary["fpgapart/hashjoin"] {
		t.Error("fpgapart/hashjoin missing from the panic-boundary set")
	}
}

func TestErrHygieneFixture(t *testing.T) {
	pkg := loadFixture(t, "errfix")
	findings := checkFixture(t, pkg, []Analyzer{NewErrHygiene()})
	assertFinding(t, findings, "error-hygiene", "%w")
	assertFinding(t, findings, "error-hygiene", "errors.Is")
	if len(findings) < 2 {
		t.Fatalf("error-hygiene caught %d violations, want ≥ 2", len(findings))
	}
}

func TestBenchJSONFixture(t *testing.T) {
	pkg := loadFixture(t, "benchfix")
	bj := &BenchJSON{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{bj})
	assertFinding(t, findings, "bench-json", "json.Marshal")
	assertFinding(t, findings, "bench-json", "json.NewEncoder")
	assertFinding(t, findings, "bench-json", "Encoder.Encode")
	if len(findings) < 4 {
		t.Fatalf("bench-json caught %d violations, want ≥ 4", len(findings))
	}
}

func TestBenchJSONIgnoresOffPathPackages(t *testing.T) {
	pkg := loadFixture(t, "benchfix")
	bj := &BenchJSON{Paths: map[string]bool{"fpgapart/experiments": true}}
	if findings := bj.Check(pkg); len(findings) != 0 {
		t.Errorf("off-path package flagged: %v", findings)
	}
}

func assertFinding(t *testing.T, findings []Finding, analyzer, fragment string) {
	t.Helper()
	for _, f := range findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, fragment) {
			return
		}
	}
	t.Errorf("no %s finding mentioning %q", analyzer, fragment)
}

// TestModuleIsClean is the `make lint` gate as a unit test: the real tree
// must be violation-free under the full default analyzer set.
func TestModuleIsClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded — loader is missing module packages", len(pkgs))
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	for _, must := range []string{"fpgapart/internal/core", "fpgapart/distjoin", "fpgapart/partition", "fpgapart/internal/lint"} {
		i := sort.SearchStrings(paths, must)
		if i >= len(paths) || paths[i] != must {
			t.Fatalf("package %s not loaded (have %v)", must, paths)
		}
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("module not lint-clean: %v", f)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"%w: %v", "wv", true},
		{"100%% done %q", "q", true},
		{"%+v %#x %6.2f", "vxf", true},
		{"%*d", "", false},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.verbs, c.ok)
		}
	}
}

// TestAllowMarkerParsing covers the escape-hatch table directly.
func TestAllowMarkerParsing(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //fpgavet:allow determinism reason here
	//fpgavet:allow error-hygiene,clocked-component
	_ = 2
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{file}}
	table := allowTable(pkg)
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "determinism", true},
		{4, "error-hygiene", false},
		{6, "error-hygiene", true}, // marker on the line above
		{6, "clocked-component", true},
		{6, "determinism", false},
	}
	for _, c := range cases {
		f := Finding{Pos: token.Position{Filename: "allow.go", Line: c.line}, Analyzer: c.analyzer}
		if got := table.allows(f); got != c.want {
			t.Errorf("line %d %s: allowed=%v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
