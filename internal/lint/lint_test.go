package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one loader (and its type-checked standard library)
// across all tests; fixture packages get synthetic import paths so they can
// never collide with real module packages.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

// loadFixture type-checks testdata/src/<dir> under a synthetic import path.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	return loadFixtureAs(t, "fpgapart/fixture/"+dir, dir)
}

// loadFixtureAs type-checks testdata/src/<dir> under an explicit synthetic
// import path (memoized, so fixtures can import each other: pre-load the
// dependency, then load the importer — the loader resolves the path from
// its cache).
func loadFixtureAs(t *testing.T, path, dir string) *Package {
	t.Helper()
	l := testLoader(t)
	if pkg, ok := l.pkgs[path]; ok {
		return pkg
	}
	file, err := filepath.Abs(filepath.Join("testdata", "src", dir, dir+".go"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles(path, []string{file})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// loadBoundaryFixtures loads the boundary-reach fixture chain in dependency
// order: the synthetic internal package, the sibling helper, the boundary.
func loadBoundaryFixtures(t *testing.T) (pkgs []*Package, boundfix *Package) {
	t.Helper()
	internal := loadFixtureAs(t, "fpgapart/internal/fixpanic", "fixpanic")
	helper := loadFixture(t, "boundhelper")
	boundfix = loadFixture(t, "boundfix")
	return []*Package{internal, helper, boundfix}, boundfix
}

// expectations parses the fixture's `// want a b c` markers into a set of
// "line analyzer" keys.
func expectations(t *testing.T, pkg *Package, analyzers map[string]bool) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(strings.TrimPrefix(text, "want ")) {
					if analyzers[name] {
						want[fmt.Sprintf("%s:%d %s", filepath.Base(pos.Filename), pos.Line, name)] = true
					}
				}
			}
		}
	}
	return want
}

// checkFixture runs the analyzers over the fixture and compares the found
// (line, analyzer) pairs against the `// want` markers, both directions.
func checkFixture(t *testing.T, pkg *Package, analyzers []Analyzer) []Finding {
	t.Helper()
	return checkFixtureModule(t, []*Package{pkg}, analyzers)
}

// checkFixtureModule is checkFixture over a multi-package fixture set:
// `// want` markers are collected from every package, and module analyzers
// see the whole set at once.
func checkFixtureModule(t *testing.T, pkgs []*Package, analyzers []Analyzer) []Finding {
	t.Helper()
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name()] = true
	}
	want := map[string]bool{}
	for _, pkg := range pkgs {
		for key := range expectations(t, pkg, names) {
			want[key] = true
		}
	}
	findings := Run(pkgs, analyzers)

	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("expected finding at %s, got none", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding at %s", key)
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %v", f)
		}
	}
	return findings
}

func TestDeterminismFixture(t *testing.T) {
	pkg := loadFixture(t, "determfix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{det, NewClocked()})

	// The acceptance-named seeded violations must be among the catches: a
	// wall-clock read inside a ticked component and an unsorted map range in
	// a checksum path.
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "rand.")
	assertFinding(t, findings, "clocked-component", "time.Now")
}

func TestDeterminismIgnoresOffPathPackages(t *testing.T) {
	pkg := loadFixture(t, "determfix")
	det := &Determinism{Paths: map[string]bool{"fpgapart/experiments": true}}
	if findings := det.Check(pkg); len(findings) != 0 {
		t.Errorf("off-path package flagged: %v", findings)
	}
}

func TestClockedFixture(t *testing.T) {
	pkg := loadFixture(t, "clockedfix")
	findings := checkFixture(t, pkg, []Analyzer{NewClocked()})
	assertFinding(t, findings, "clocked-component", "host-time state")
	assertFinding(t, findings, "clocked-component", "goroutine")
	if len(findings) < 2 {
		t.Fatalf("clocked-component caught %d violations, want ≥ 2", len(findings))
	}
}

func TestPanicBoundaryFixture(t *testing.T) {
	pkg := loadFixture(t, "panicfix")
	pb := &PanicBoundary{
		Boundary:       map[string]bool{pkg.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
	}
	findings := checkFixture(t, pkg, []Analyzer{pb})
	assertFinding(t, findings, "panic-boundary", "without a deferred recover guard")
	assertFinding(t, findings, "panic-boundary", "without wrapping ErrSimulatorFault")
	if len(findings) < 2 {
		t.Fatalf("panic-boundary caught %d violations, want ≥ 2", len(findings))
	}
}

// TestMembudgetFixture pins the memory-budget accounting to the determinism
// contract: internal/membudget joined the deterministic path in the
// budgeted-join work, and this known-bad twin shows the analyzer catches a
// wall-clock high-water stamp, map-ordered spill victims, and randomized
// admission.
func TestMembudgetFixture(t *testing.T) {
	pkg := loadFixture(t, "membudgetfix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{det})
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "rand.")
	if len(findings) < 3 {
		t.Fatalf("determinism caught %d violations in the membudget fixture, want ≥ 3", len(findings))
	}
}

// TestBudgetPackagesCovered pins the list membership the budgeted join
// relies on: membudget is on the deterministic path, and hashjoin — whose
// exported joins now reach internal/* budget machinery — is a
// panic-boundary package.
func TestBudgetPackagesCovered(t *testing.T) {
	onPath := false
	for _, p := range DeterministicPathPackages {
		if p == "fpgapart/internal/membudget" {
			onPath = true
		}
	}
	if !onPath {
		t.Error("fpgapart/internal/membudget missing from DeterministicPathPackages")
	}
	if !DefaultPanicBoundary().Boundary["fpgapart/hashjoin"] {
		t.Error("fpgapart/hashjoin missing from the panic-boundary set")
	}
}

func TestErrHygieneFixture(t *testing.T) {
	pkg := loadFixture(t, "errfix")
	findings := checkFixture(t, pkg, []Analyzer{NewErrHygiene()})
	assertFinding(t, findings, "error-hygiene", "%w")
	assertFinding(t, findings, "error-hygiene", "errors.Is")
	if len(findings) < 2 {
		t.Fatalf("error-hygiene caught %d violations, want ≥ 2", len(findings))
	}
}

func TestBenchJSONFixture(t *testing.T) {
	pkg := loadFixture(t, "benchfix")
	bj := &BenchJSON{Paths: map[string]bool{pkg.Path: true}}
	findings := checkFixture(t, pkg, []Analyzer{bj})
	assertFinding(t, findings, "bench-json", "json.Marshal")
	assertFinding(t, findings, "bench-json", "json.NewEncoder")
	assertFinding(t, findings, "bench-json", "Encoder.Encode")
	if len(findings) < 4 {
		t.Fatalf("bench-json caught %d violations, want ≥ 4", len(findings))
	}
}

func TestBenchJSONIgnoresOffPathPackages(t *testing.T) {
	pkg := loadFixture(t, "benchfix")
	bj := &BenchJSON{Paths: map[string]bool{"fpgapart/experiments": true}}
	if findings := bj.Check(pkg); len(findings) != 0 {
		t.Errorf("off-path package flagged: %v", findings)
	}
}

func assertFinding(t *testing.T, findings []Finding, analyzer, fragment string) {
	t.Helper()
	for _, f := range findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, fragment) {
			return
		}
	}
	t.Errorf("no %s finding mentioning %q", analyzer, fragment)
}

// TestModuleIsClean is the `make lint` gate as a unit test: the real tree
// must be violation-free under the full default analyzer set.
func TestModuleIsClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded — loader is missing module packages", len(pkgs))
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	for _, must := range []string{"fpgapart/internal/core", "fpgapart/distjoin", "fpgapart/partition", "fpgapart/internal/lint"} {
		i := sort.SearchStrings(paths, must)
		if i >= len(paths) || paths[i] != must {
			t.Fatalf("package %s not loaded (have %v)", must, paths)
		}
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("module not lint-clean: %v", f)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"%w: %v", "wv", true},
		{"100%% done %q", "q", true},
		{"%+v %#x %6.2f", "vxf", true},
		{"%*d", "", false},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, string(verbs), ok, c.verbs, c.ok)
		}
	}
}

// TestBoundaryReachFixture: the call-graph analyzer over the three-package
// fixture chain — marker-checked in both directions, so the guarded, the
// panic-free and the non-error-returning shapes must all stay quiet.
func TestBoundaryReachFixture(t *testing.T) {
	pkgs, boundfix := loadBoundaryFixtures(t)
	br := &BoundaryReach{
		Boundary:       map[string]bool{boundfix.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
		MaxHops:        6,
	}
	findings := checkFixtureModule(t, pkgs, []Analyzer{br})
	assertFinding(t, findings, "boundary-reach", "boundhelper.Route")
	assertFinding(t, findings, "boundary-reach", "fixpanic")
	assertFinding(t, findings, "boundary-reach", "without wrapping ErrSimulatorFault")
}

// TestBoundaryReachCatchesWhatPanicBoundaryMisses is the acceptance
// differential: the 2+ hop transitive chain boundfix → boundhelper →
// internal/fixpanic is provably invisible to PR 2's per-package analyzer
// (it only closes reachability over same-package callees) and caught by the
// call-graph upgrade. The reverse precision gain is asserted too: the
// per-package analyzer flags an exported API whose only internal callee is
// panic-free; boundary-reach, requiring a reachable panic SITE, does not.
func TestBoundaryReachCatchesWhatPanicBoundaryMisses(t *testing.T) {
	pkgs, boundfix := loadBoundaryFixtures(t)

	old := &PanicBoundary{
		Boundary:       map[string]bool{boundfix.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
	}
	oldFindings := Run(pkgs, []Analyzer{old})
	for _, f := range oldFindings {
		if strings.Contains(f.Message, "TwoHop") || strings.Contains(f.Message, "Swallow") {
			t.Errorf("panic-boundary unexpectedly sees the cross-package chain: %v", f)
		}
	}
	found := false
	for _, f := range oldFindings {
		if strings.Contains(f.Message, "PanicFree") {
			found = true
		}
	}
	if !found {
		t.Error("panic-boundary should flag PanicFree (any internal/* call is suspect to it) — fixture no longer demonstrates the precision gap")
	}

	br := &BoundaryReach{
		Boundary:       map[string]bool{boundfix.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
		MaxHops:        6,
	}
	newFindings := Run(pkgs, []Analyzer{br})
	assertFinding(t, newFindings, "boundary-reach", "TwoHop")
	assertFinding(t, newFindings, "boundary-reach", "Swallow")
	for _, f := range newFindings {
		if strings.Contains(f.Message, "PanicFree") {
			t.Errorf("boundary-reach flags a function that cannot reach a panic site: %v", f)
		}
	}
}

func TestHostTimeTaintFixture(t *testing.T) {
	pkg := loadFixture(t, "taintfix")
	ht := DefaultHostTimeTaint()
	ht.DetPath[pkg.Path] = true // the fixture's *US fields count as virtual time
	findings := checkFixture(t, pkg, []Analyzer{ht})
	assertFinding(t, findings, "hosttime-taint", "time.Now")
	assertFinding(t, findings, "hosttime-taint", "simtrace.Counter.Add")
	assertFinding(t, findings, "hosttime-taint", "virtual-time field DoneUS")
	assertFinding(t, findings, "hosttime-taint", "os.Getenv")
	if len(findings) < 6 {
		t.Fatalf("hosttime-taint caught %d flows, want ≥ 6", len(findings))
	}
}

func TestHotpathAllocFixture(t *testing.T) {
	pkg := loadFixture(t, "hotfix")
	findings := checkFixture(t, pkg, []Analyzer{DefaultHotpathAlloc()})
	assertFinding(t, findings, "hotpath-alloc", "boxes")
	assertFinding(t, findings, "hotpath-alloc", "calls make")
	assertFinding(t, findings, "hotpath-alloc", "fmt.Sprintf")
	assertFinding(t, findings, "hotpath-alloc", "closure capturing")
	assertFinding(t, findings, "hotpath-alloc", "starts empty")
	assertFinding(t, findings, "hotpath-alloc", "address of a composite literal")
	if len(findings) < 7 {
		t.Fatalf("hotpath-alloc caught %d allocations, want ≥ 7", len(findings))
	}
}

// TestAllSeven pins the default analyzer roster: boundary-reach supersedes
// panic-boundary, and the two engine-backed analyzers are always on.
func TestAllSeven(t *testing.T) {
	want := []string{
		"determinism", "boundary-reach", "error-hygiene", "clocked-component",
		"bench-json", "hosttime-taint", "hotpath-alloc",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name() != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no Doc()", a.Name())
		}
	}
}

// TestAllowMultilineStatement is the regression test for the escape-hatch
// fix: before findings carried an End position, a marker on any line of a
// multi-line statement other than the first (where gofmt leaves no room on
// wrapped calls) was silently ignored.
func TestAllowMultilineStatement(t *testing.T) {
	table := allows{"multi.go": {
		8: {"determinism": true},
	}}
	multi := Finding{
		Pos:      token.Position{Filename: "multi.go", Line: 5},
		End:      token.Position{Filename: "multi.go", Line: 8},
		Analyzer: "determinism",
	}
	if !table.allows(multi) {
		t.Error("marker on the closing line of a multi-line statement not honored")
	}
	single := Finding{
		Pos:      token.Position{Filename: "multi.go", Line: 5},
		Analyzer: "determinism",
	}
	if table.allows(single) {
		t.Error("zero-End finding must only match its own line and the line above")
	}
	wrongAnalyzer := Finding{
		Pos:      token.Position{Filename: "multi.go", Line: 5},
		End:      token.Position{Filename: "multi.go", Line: 8},
		Analyzer: "error-hygiene",
	}
	if table.allows(wrongAnalyzer) {
		t.Error("marker for a different analyzer suppressed the finding")
	}
}

// TestAllowMultilineEndToEnd drives the same fix through the real pipeline:
// a determinism finding on a wrapped call with the allow marker on the
// closing parenthesis line.
func TestAllowMultilineEndToEnd(t *testing.T) {
	l := testLoader(t)
	dir := t.TempDir()
	src := `package allowfix

import "time"

func Wait(d time.Duration) {
	time.Sleep(
		d,
	) //fpgavet:allow determinism test helper sleeps on purpose
}
`
	file := filepath.Join(dir, "allowfix.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("fpgapart/fixture/allowfix", []string{file})
	if err != nil {
		t.Fatal(err)
	}
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	if findings := Run([]*Package{pkg}, []Analyzer{det}); len(findings) != 0 {
		t.Errorf("allow marker on the closing line ignored: %v", findings)
	}
}

// TestAllowMarkerParsing covers the escape-hatch table directly.
func TestAllowMarkerParsing(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //fpgavet:allow determinism reason here
	//fpgavet:allow error-hygiene,clocked-component
	_ = 2
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{file}}
	table := allowTable(pkg)
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "determinism", true},
		{4, "error-hygiene", false},
		{6, "error-hygiene", true}, // marker on the line above
		{6, "clocked-component", true},
		{6, "determinism", false},
	}
	for _, c := range cases {
		f := Finding{Pos: token.Position{Filename: "allow.go", Line: c.line}, Analyzer: c.analyzer}
		if got := table.allows(f); got != c.want {
			t.Errorf("line %d %s: allowed=%v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestClusterFixture runs the deterministic-path and boundary-reach
// analyzers — configured exactly as for the real fpgapart/cluster package —
// over the known-bad cluster twin: a map-range load gather, a wall-clock
// admission stamp, a global-rand failover backoff, an exported router
// API reaching an internal panic site unguarded, a map-range rebalance
// plan, and a wall-clock hedge deadline. Marker-checked in both
// directions, so the fixture also proves the analyzers stay quiet on its
// clean lines.
func TestClusterFixture(t *testing.T) {
	internal := loadFixtureAs(t, "fpgapart/internal/fixpanic", "fixpanic")
	pkg := loadFixture(t, "clusterfix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	br := &BoundaryReach{
		Boundary:       map[string]bool{pkg.Path: true},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
		MaxHops:        6,
	}
	findings := checkFixtureModule(t, []*Package{internal, pkg}, []Analyzer{det, br})
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "determinism", "time.Since")
	assertFinding(t, findings, "determinism", "rand.")
	assertFinding(t, findings, "boundary-reach", "fixpanic")
	if len(findings) < 6 {
		t.Fatalf("cluster fixture produced %d findings, want ≥ 6", len(findings))
	}
}

// TestClusterOnAnalyzerRosters pins the roster membership the routing tier
// relies on: fpgapart/cluster replays bit-for-bit (deterministic path, which
// also scopes hosttime-taint) and its exported APIs guard reachable
// internal/* panics (boundary-reach).
func TestClusterOnAnalyzerRosters(t *testing.T) {
	onPath := false
	for _, p := range DeterministicPathPackages {
		if p == "fpgapart/cluster" {
			onPath = true
		}
	}
	if !onPath {
		t.Error("fpgapart/cluster missing from DeterministicPathPackages")
	}
	if !DefaultBoundaryReach().Boundary["fpgapart/cluster"] {
		t.Error("fpgapart/cluster missing from the boundary-reach set")
	}
}

// TestReqtraceFixture runs the determinism, hosttime-taint, and
// hotpath-alloc analyzers — configured as for the real causal-tracing
// package — over the known-bad reqtrace twin: host-clock admission and
// flight stamps (direct and laundered), a map-range merge of per-shard
// flight timelines, and a marker-declared hot recording wrapper that
// allocates per event. Marker-checked in both directions, so the fixture
// also proves the analyzers stay quiet on its clean recording path.
func TestReqtraceFixture(t *testing.T) {
	pkg := loadFixture(t, "reqtracefix")
	det := &Determinism{Paths: map[string]bool{pkg.Path: true}}
	ht := DefaultHostTimeTaint()
	ht.DetPath[pkg.Path] = true
	findings := checkFixtureModule(t, []*Package{pkg}, []Analyzer{det, ht, DefaultHotpathAlloc()})
	assertFinding(t, findings, "hosttime-taint", "reqtrace.Recorder.Admit")
	assertFinding(t, findings, "hosttime-taint", "reqtrace.Recorder.Event")
	assertFinding(t, findings, "hosttime-taint", "reqtrace.Flight.Record")
	assertFinding(t, findings, "determinism", "range over map")
	assertFinding(t, findings, "determinism", "time.Now")
	assertFinding(t, findings, "hotpath-alloc", "literal")
	if len(findings) < 6 {
		t.Fatalf("reqtrace fixture produced %d findings, want ≥ 6", len(findings))
	}
}

// TestReqtraceOnAnalyzerRosters pins the roster membership the causal layer
// relies on: fpgapart/internal/reqtrace replays bit-for-bit (deterministic
// path), its recording entry points are statically allocation-free
// (hotpath-alloc roots), and host-derived values cannot reach its recorder
// or flight ring (hosttime-taint sinks).
func TestReqtraceOnAnalyzerRosters(t *testing.T) {
	onPath := false
	for _, p := range DeterministicPathPackages {
		if p == "fpgapart/internal/reqtrace" {
			onPath = true
		}
	}
	if !onPath {
		t.Error("fpgapart/internal/reqtrace missing from DeterministicPathPackages")
	}
	roots := DefaultHotpathAlloc().Roots
	for _, r := range []string{
		"fpgapart/internal/reqtrace.Recorder.Admit",
		"fpgapart/internal/reqtrace.Recorder.Attempt",
		"fpgapart/internal/reqtrace.Recorder.Finish",
		"fpgapart/internal/reqtrace.Recorder.Event",
		"fpgapart/internal/reqtrace.Flight.Record",
	} {
		if !roots[r] {
			t.Errorf("%s missing from the hotpath-alloc roots", r)
		}
	}
	for recv, methods := range map[string][]string{
		"Recorder": {"Admit", "Attempt", "Finish", "Event"},
		"Flight":   {"Record"},
	} {
		for _, m := range methods {
			if !reqtraceMutators[recv][m] {
				t.Errorf("reqtrace.%s.%s missing from the hosttime-taint sink roster", recv, m)
			}
		}
	}
	for _, m := range []string{"FlowStart", "FlowEnd"} {
		if !simtraceMutators["Tracer"][m] {
			t.Errorf("simtrace.Tracer.%s missing from the hosttime-taint sink roster", m)
		}
	}
}
