package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the whole-module half of the analysis engine: a type-driven
// call graph over every loaded package. The per-function analyzers of PR 2
// saw one package at a time and closed facts only over package-local calls;
// the graph built here lets analyzers ask reachability questions across the
// entire module — "can this exported API reach a panic site in internal/*?",
// "is this function on a Tick-rooted hot path?" — which is what turns the
// dynamically-checked determinism and allocation contracts into static ones.
//
// Three edge kinds are tracked:
//
//   - static: a direct call of a named function or a method on a concrete
//     receiver. Always sound.
//   - interface: a call through a method of an interface DECLARED IN THIS
//     MODULE (platform curves, simtrace probe hooks, perfbench.HostMeter,
//     joincore.Partitions, …), resolved to every module type whose method
//     set satisfies the interface. Dynamic dispatch through foreign
//     interfaces (io.Writer, error, sort.Interface) is NOT resolved — those
//     callees are treated as leaves, a deliberate soundness limit recorded
//     in DESIGN.md §14.
//   - funcvalue: a reference to a same-package function as a value (stored
//     in a variable, passed as a callback). The reference site is treated
//     as a possible call, over-approximating when the value is only invoked
//     elsewhere; cross-package function values are not tracked.
//
// Function literals are inlined into their enclosing declaration: a call
// inside a closure counts as a call by the function that created the
// closure. That over-approximates (the literal may never run) in exactly
// the direction reachability analyzers want.

// EdgeKind classifies how a call edge was discovered.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a named function or concrete method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a dynamic call resolved through a module-declared
	// interface's method set.
	EdgeInterface
	// EdgeFuncValue is a same-package function referenced as a value.
	EdgeFuncValue
)

// Edge is one possible call.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression (or value reference) position.
	Site token.Pos
	Kind EdgeKind
}

// Node is one function in the graph. Functions whose bodies were not loaded
// (standard library, interface method declarations) appear as leaves with a
// nil Decl.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil when the body is outside the loaded set
	Pkg  *Package      // defining package when loaded, else nil
	Out  []*Edge
	// HasPanic marks a body containing a direct call of the panic builtin.
	HasPanic bool
}

// PkgPath returns the import path of the node's defining package ("" for
// builtins and universe functions).
func (n *Node) PkgPath() string {
	if n.Fn.Pkg() == nil {
		return ""
	}
	return n.Fn.Pkg().Path()
}

// String renders the node as pkgpath.Func or pkgpath.(Recv).Method, the
// form used in finding messages and call-chain traces.
func (n *Node) String() string {
	fn := n.Fn
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name
	}
	return fn.Pkg().Path() + "." + name
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	nodes map[*types.Func]*Node
	// order lists nodes with declarations in deterministic (package, file,
	// declaration) order, so analyzer output is stable run to run.
	order []*Node
	// moduleTypes are the named non-interface types declared across the
	// loaded packages, in deterministic order — the candidate set for
	// interface method resolution.
	moduleTypes []*types.Named
	// implCache memoizes interface-method → implementations resolution.
	implCache map[*types.Func][]*types.Func
	// modulePrefix scopes which interfaces are resolved ("fpgapart").
	modulePrefix string
}

// Nodes returns every node with a loaded body, in deterministic order.
func (g *CallGraph) Nodes() []*Node { return g.order }

// Node returns the node for fn (normalizing generic instantiations to their
// origin), or nil if fn is unknown to the graph.
func (g *CallGraph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// BuildCallGraph builds the graph over the given packages. The module
// prefix (derived from the first package's path) scopes interface
// resolution to module-declared interfaces.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:     map[*types.Func]*Node{},
		implCache: map[*types.Func][]*types.Func{},
	}
	if len(pkgs) > 0 {
		if i := strings.IndexByte(pkgs[0].Path, '/'); i > 0 {
			g.modulePrefix = pkgs[0].Path[:i]
		} else {
			g.modulePrefix = pkgs[0].Path
		}
	}

	// Pass 1: index every declared function and named type.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named.Underlying()) {
				continue
			}
			g.moduleTypes = append(g.moduleTypes, named)
		}
	}

	// Pass 2: edges.
	for _, n := range g.order {
		g.addEdges(n)
	}
	return g
}

// leaf returns (creating on demand) the bodyless node for an out-of-module
// or undeclared function.
func (g *CallGraph) leaf(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &Node{Fn: fn}
	g.nodes[fn] = n
	return n
}

// addEdges walks n's body (function literals inlined) and records call,
// interface-dispatch and function-value edges.
func (g *CallGraph) addEdges(n *Node) {
	pkg := n.Pkg
	// calleeIdents marks identifiers that ARE the function of a call
	// expression, so pass 2 can tell value references from call sites.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id := calleeIdent(call.Fun); id != nil {
			calleeIdents[id] = true
		}
		if pkg.isPanicCall(call) {
			n.HasPanic = true
			return true
		}
		obj := pkg.objectOf(call.Fun)
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		fn = fn.Origin()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Dynamic dispatch: resolve through module interfaces only.
			for _, impl := range g.implementations(fn) {
				n.link(g.leaf(impl), call.Pos(), EdgeInterface)
			}
			// Keep the interface method itself as a leaf so the edge is
			// visible even when no module implementation exists.
			n.link(g.leaf(fn), call.Pos(), EdgeInterface)
			return true
		}
		n.link(g.leaf(fn), call.Pos(), EdgeStatic)
		return true
	})

	// Pass 2 over identifiers: same-package functions referenced as values.
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		fn, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		fn = fn.Origin()
		if fn.Pkg() != pkg.Types {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			return true
		}
		n.link(g.leaf(fn), id.Pos(), EdgeFuncValue)
		return true
	})
}

// link appends an edge, deduplicating repeat (callee, kind) pairs to keep
// the graph small on hot call sites.
func (n *Node) link(callee *Node, site token.Pos, kind EdgeKind) {
	for _, e := range n.Out {
		if e.Callee == callee && e.Kind == kind {
			return
		}
	}
	n.Out = append(n.Out, &Edge{Caller: n, Callee: callee, Site: site, Kind: kind})
}

// calleeIdent returns the identifier naming the called function, unwrapping
// selectors, parens and generic instantiation.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch fn := fun.(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	case *ast.ParenExpr:
		return calleeIdent(fn.X)
	case *ast.IndexExpr:
		return calleeIdent(fn.X)
	case *ast.IndexListExpr:
		return calleeIdent(fn.X)
	}
	return nil
}

// implementations resolves an interface method to the matching methods of
// every module type whose method set satisfies the interface. Only
// module-declared interfaces are resolved; foreign interfaces return nil.
func (g *CallGraph) implementations(ifaceMethod *types.Func) []*types.Func {
	if impls, ok := g.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*types.Func
	defer func() { g.implCache[ifaceMethod] = impls }()

	if ifaceMethod.Pkg() == nil || !g.inModule(ifaceMethod.Pkg().Path()) {
		return impls
	}
	sig := ifaceMethod.Type().(*types.Signature)
	recv := sig.Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return impls
	}
	for _, named := range g.moduleTypes {
		var impl types.Type = named
		if !types.Implements(named, iface) {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) {
				continue
			}
			impl = ptr
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m.Origin())
		}
	}
	return impls
}

// inModule reports whether path belongs to the analyzed module.
func (g *CallGraph) inModule(path string) bool {
	return path == g.modulePrefix || strings.HasPrefix(path, g.modulePrefix+"/")
}

// isPanicCall reports whether call invokes the panic builtin.
func (pkg *Package) isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// Reach walks the graph from start, visiting every node reachable through
// edges whose kinds are in follow, skipping nodes for which cut returns
// true (the cut node itself is not visited). Visit order is deterministic.
// visit returning false stops the whole walk.
func (g *CallGraph) Reach(start *Node, follow func(*Edge) bool, cut func(*Node) bool, visit func(path []*Edge, n *Node) bool) {
	seen := map[*Node]bool{}
	var path []*Edge
	var dfs func(n *Node) bool
	dfs = func(n *Node) bool {
		if seen[n] {
			return true
		}
		seen[n] = true
		if cut != nil && cut(n) {
			return true
		}
		if !visit(path, n) {
			return false
		}
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			path = append(path, e)
			ok := dfs(e.Callee)
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(start)
}
