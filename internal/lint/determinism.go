package lint

import (
	"go/ast"
	"go/types"
)

// Determinism forbids sources of run-to-run nondeterminism in packages on
// the deterministic path: wall-clock reads, draws from the unseeded global
// math/rand source, and ranging over maps. PR 1's fault injector replays
// scenarios as a pure hash of (seed, message identity); one map range in an
// aggregation loop is enough to silently break that contract — exactly the
// class of bug Balkesen et al.'s multiset-checksum comparisons cannot catch,
// because the multiset is order-insensitive while traces and counters are
// not.
type Determinism struct {
	// Paths is the exact set of import paths on the deterministic path.
	// Packages outside the set are not checked (the CLI and experiments
	// packages may time and randomize freely).
	Paths map[string]bool
}

// DeterministicPathPackages is the project's deterministic path: every
// package whose outputs must replay bit-for-bit for a fixed seed.
var DeterministicPathPackages = []string{
	"fpgapart/internal/core",
	"fpgapart/internal/fpga",
	"fpgapart/internal/faults",
	"fpgapart/internal/rdma",
	"fpgapart/internal/qpi",
	"fpgapart/internal/simtrace",
	"fpgapart/internal/reqtrace",
	"fpgapart/internal/perfbench",
	"fpgapart/internal/membudget",
	"fpgapart/partition",
	"fpgapart/distjoin",
	"fpgapart/partserver",
	"fpgapart/cluster",
}

// DefaultDeterminism returns the analyzer scoped to the project's
// deterministic-path packages.
func DefaultDeterminism() *Determinism {
	paths := make(map[string]bool, len(DeterministicPathPackages))
	for _, p := range DeterministicPathPackages {
		paths[p] = true
	}
	return &Determinism{Paths: paths}
}

func (*Determinism) Name() string { return "determinism" }

func (*Determinism) Doc() string {
	return "deterministic-path packages may not read the wall clock, draw global randomness, or range over maps"
}

// wallClockFuncs are the package-level time functions that read or schedule
// against the host clock. time.Duration arithmetic and constants are fine —
// simulated time is expressed in time.Duration.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand package-level functions that construct
// explicitly seeded generators rather than drawing from the global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Check implements Analyzer.
func (d *Determinism) Check(pkg *Package) []Finding {
	if !d.Paths[pkg.Path] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if f := d.checkCall(pkg, n); f != nil {
					out = append(out, *f)
				}
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						out = append(out, pkg.findingNode(d.Name(), n,
							"range over map %s: iteration order is randomized per run — collect and sort the keys (or iterate the defining slice) so replays stay byte-identical", typeString(t)))
					}
				}
			}
			return true
		})
	}
	return out
}

func (d *Determinism) checkCall(pkg *Package, call *ast.CallExpr) *Finding {
	obj := pkg.objectOf(call.Fun)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods (e.g. (*rand.Rand).Intn on an explicitly seeded source,
		// (time.Duration).Seconds) are deterministic.
		return nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			f := pkg.findingNode(d.Name(), call,
				"time.%s reads the host clock on the deterministic path — simulated time must be derived from cycle counts and the platform clock", fn.Name())
			return &f
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			f := pkg.findingNode(d.Name(), call,
				"rand.%s draws from the global math/rand source on the deterministic path — use a generator seeded from the scenario (rand.New(rand.NewSource(seed))) or a hash of the decision identity", fn.Name())
			return &f
		}
	}
	return nil
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
